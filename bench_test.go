// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md section 3 for the experiment index).
// Each benchmark reports the paper's metric — data-page accesses per
// query — via ReportMetric, so `go test -bench=.` reproduces the
// numbers recorded in EXPERIMENTS.md; the printable tables themselves
// come from `go run ./cmd/experiments`.
package probe_test

import (
	"fmt"
	"testing"

	"probe/internal/analysis"
	"probe/internal/conncomp"
	"probe/internal/core"
	"probe/internal/decompose"
	"probe/internal/disk"
	"probe/internal/experiment"
	"probe/internal/geom"
	"probe/internal/interfere"
	"probe/internal/overlay"
	"probe/internal/workload"
	"probe/internal/zorder"
)

// BenchmarkFig2Decomposition decomposes the Figure 1/2 box.
func BenchmarkFig2Decomposition(b *testing.B) {
	g := zorder.MustGrid(2, 3)
	box := geom.Box2(1, 3, 0, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(decompose.Box(g, box)) != 6 {
			b.Fatal("Figure 2 decomposition changed")
		}
	}
}

// BenchmarkFig4Curve computes z-order ranks over the Figure 4 grid.
func BenchmarkFig4Curve(b *testing.B) {
	g := zorder.MustGrid(2, 3)
	coords := []uint32{3, 5}
	for i := 0; i < b.N; i++ {
		if g.Rank(coords) != 27 {
			b.Fatal("Figure 4 rank changed")
		}
	}
}

// BenchmarkTableS1SpaceRequirements regenerates the E(U,V) sweep.
func BenchmarkTableS1SpaceRequirements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.SpaceTable(8, experiment.PaperSpacePairs())
		for _, r := range rows {
			if r.E != r.EDoubled {
				b.Fatal("cyclicity violated")
			}
		}
	}
}

// BenchmarkTableS2Proximity regenerates the proximity measurements.
func BenchmarkTableS2Proximity(b *testing.B) {
	g := zorder.MustGrid(2, 10)
	for i := 0; i < b.N; i++ {
		samples := analysis.MeasureProximity(g, []uint32{1, 4, 16, 64, 256}, 24)
		if len(samples) != 5 {
			b.Fatal("sample count changed")
		}
	}
}

// sweepBench builds the paper-size instance for a data set and runs
// the full query sweep, reporting pages per query.
func sweepBench(b *testing.B, ds experiment.Dataset) {
	b.Helper()
	cfg := experiment.DefaultConfig()
	in, err := experiment.Build(cfg, ds)
	if err != nil {
		b.Fatal(err)
	}
	specs := workload.PaperSpecs()
	b.ResetTimer()
	var pages, queries float64
	for i := 0; i < b.N; i++ {
		rows, err := in.RunSweep(specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			pages += r.AvgPages * float64(r.Queries)
			queries += float64(r.Queries)
		}
	}
	b.ReportMetric(pages/queries, "pages/query")
}

// BenchmarkTableS5ExperimentU regenerates the uniform-data sweep.
func BenchmarkTableS5ExperimentU(b *testing.B) { sweepBench(b, experiment.U) }

// BenchmarkTableS6ExperimentC regenerates the clustered-data sweep.
func BenchmarkTableS6ExperimentC(b *testing.B) { sweepBench(b, experiment.C) }

// BenchmarkTableS7ExperimentD regenerates the diagonal-data sweep.
func BenchmarkTableS7ExperimentD(b *testing.B) { sweepBench(b, experiment.D) }

// BenchmarkTableS3RangeQueryPages measures square queries across
// volumes against the O(vN) model.
func BenchmarkTableS3RangeQueryPages(b *testing.B) {
	cfg := experiment.DefaultConfig()
	in, err := experiment.Build(cfg, experiment.U)
	if err != nil {
		b.Fatal(err)
	}
	var specs []workload.QuerySpec
	for _, v := range []float64{0.0025, 0.01, 0.04, 0.09, 0.16, 0.25} {
		specs = append(specs, workload.QuerySpec{Volume: v, Aspect: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := in.RunSweep(specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.AvgPages > r.PredictedPages*1.5 {
				b.Fatalf("volume %v: measured %v far above block model %v",
					r.Spec.Volume, r.AvgPages, r.PredictedPages)
			}
		}
	}
}

// BenchmarkTableS4PartialMatch measures partial-match queries against
// O(N^(1-t/k)).
func BenchmarkTableS4PartialMatch(b *testing.B) {
	cfg := experiment.DefaultConfig()
	in, err := experiment.Build(cfg, experiment.U)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var pages, n float64
	for i := 0; i < b.N; i++ {
		rows, err := in.RunPartialMatch([][]bool{{true, false}, {false, true}})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			pages += r.AvgPages
			n++
		}
	}
	b.ReportMetric(pages/n, "pages/query")
}

// BenchmarkFig6Partition renders the page-partition plots.
func BenchmarkFig6Partition(b *testing.B) {
	cfg := experiment.DefaultConfig()
	instances := make([]*experiment.Instance, 0, 3)
	for _, ds := range []experiment.Dataset{experiment.U, experiment.C, experiment.D} {
		in, err := experiment.Build(cfg, ds)
		if err != nil {
			b.Fatal(err)
		}
		instances = append(instances, in)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range instances {
			if _, err := in.RenderPartition(72, 36); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTableS8KdTreeComparison runs the same sweep on the zkd
// B+-tree and the bucket kd tree, reporting both page counts.
func BenchmarkTableS8KdTreeComparison(b *testing.B) {
	cfg := experiment.DefaultConfig()
	in, err := experiment.Build(cfg, experiment.U)
	if err != nil {
		b.Fatal(err)
	}
	specs := []workload.QuerySpec{
		{Volume: 0.01, Aspect: 1}, {Volume: 0.04, Aspect: 1},
		{Volume: 0.09, Aspect: 4}, {Volume: 0.16, Aspect: 1},
	}
	b.ResetTimer()
	var zkd, kd, n float64
	for i := 0; i < b.N; i++ {
		rows, err := in.RunKdComparison(specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			zkd += r.ZkdPages
			kd += r.KdLeaves
			n++
		}
	}
	b.ReportMetric(zkd/n, "zkd-pages/query")
	b.ReportMetric(kd/n, "kd-leaves/query")
}

// BenchmarkTableS9Overlay compares AG overlay with the pixel-grid
// baseline at d = 10.
func BenchmarkTableS9Overlay(b *testing.B) {
	g := zorder.MustGrid(2, 10)
	s := float64(g.Side())
	pa := geom.MustPolygon(
		geom.Vertex{X: s * 0.1, Y: s * 0.15}, geom.Vertex{X: s * 0.8, Y: s * 0.1},
		geom.Vertex{X: s * 0.7, Y: s * 0.75}, geom.Vertex{X: s * 0.2, Y: s * 0.6},
	)
	pb := geom.MustPolygon(
		geom.Vertex{X: s * 0.4, Y: s * 0.3}, geom.Vertex{X: s * 0.95, Y: s * 0.45},
		geom.Vertex{X: s * 0.55, Y: s * 0.95},
	)
	ea, err := decompose.Object(g, pa, decompose.Options{})
	if err != nil {
		b.Fatal(err)
	}
	eb, err := decompose.Object(g, pb, decompose.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ag-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := overlay.Intersect(ea, eb); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(ea)+len(eb)), "elements")
	})
	b.Run("grid-pixels", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := overlay.GridIntersect(g, ea, eb); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(g.Cells()), "pixels")
	})
}

// BenchmarkTableS10ConnComp compares element-sequence labelling with
// pixel flood fill.
func BenchmarkTableS10ConnComp(b *testing.B) {
	g := zorder.MustGrid(2, 9)
	side := int(g.Side())
	var region []zorder.Element
	for i := 0; i < 8; i++ {
		d, err := geom.NewDisk(
			[]float64{float64((i*97 + 40) % side), float64((i*53 + 60) % side)},
			float64(side)/float64(8+i))
		if err != nil {
			b.Fatal(err)
		}
		elems, err := decompose.Object(g, d, decompose.Options{})
		if err != nil {
			b.Fatal(err)
		}
		region, err = overlay.Union(region, elems)
		if err != nil {
			b.Fatal(err)
		}
	}
	bm, err := overlay.GridRasterize(g, region)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ag-elements", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := conncomp.Label(g, region); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(region)), "elements")
	})
	b.Run("pixel-bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			conncomp.PixelLabel(bm, side)
		}
	})
}

// BenchmarkTableS11Interference measures the spatial-join broad phase
// against the all-pairs baseline.
func BenchmarkTableS11Interference(b *testing.B) {
	g := zorder.MustGrid(2, 9)
	var parts []interfere.Part
	for i := 0; i < 120; i++ {
		cx := 20 + float64((i*337)%450)
		cy := 20 + float64((i*211)%450)
		r := 4 + float64(i%11)
		parts = append(parts, interfere.Part{
			ID: uint64(i + 1),
			Outline: geom.MustPolygon(
				geom.Vertex{X: cx - r, Y: cy - r},
				geom.Vertex{X: cx + r, Y: cy - r},
				geom.Vertex{X: cx, Y: cy + r},
			),
		})
	}
	b.Run("spatial-join", func(b *testing.B) {
		var cand float64
		for i := 0; i < b.N; i++ {
			_, stats, err := interfere.Detect(g, parts, 12)
			if err != nil {
				b.Fatal(err)
			}
			cand = float64(stats.Candidates)
		}
		b.ReportMetric(cand, "candidates")
	})
	b.Run("all-pairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			interfere.DetectAllPairs(parts)
		}
	})
}

// BenchmarkAblationRangeStrategies compares the three range-search
// strategies of Section 3.3 on the paper workload.
func BenchmarkAblationRangeStrategies(b *testing.B) {
	cfg := experiment.DefaultConfig()
	in, err := experiment.Build(cfg, experiment.U)
	if err != nil {
		b.Fatal(err)
	}
	boxes, err := workload.Queries(in.Index.Grid(), workload.QuerySpec{Volume: 0.04, Aspect: 1}, 20, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []core.Strategy{core.MergeDecomposed, core.MergeLazy, core.SkipBigMin} {
		b.Run(s.String(), func(b *testing.B) {
			var pages, n float64
			for i := 0; i < b.N; i++ {
				for _, box := range boxes {
					if err := in.Pool.Invalidate(); err != nil {
						b.Fatal(err)
					}
					_, stats, err := in.Index.RangeSearch(box, s)
					if err != nil {
						b.Fatal(err)
					}
					pages += float64(stats.DataPages)
					n++
				}
			}
			b.ReportMetric(pages/n, "pages/query")
		})
	}
}

// BenchmarkAblationBufferPolicy validates the paper's LRU claim
// (Section 4): on merge-dominated workloads LRU, FIFO and Random are
// all serviceable, with LRU at least as good on re-traversals.
func BenchmarkAblationBufferPolicy(b *testing.B) {
	for _, policy := range []disk.Policy{disk.LRU, disk.FIFO, disk.Random} {
		b.Run(policy.String(), func(b *testing.B) {
			store := disk.MustMemStore(1024)
			pool := disk.MustPool(store, 16, policy)
			ix, err := core.NewIndex(pool, zorder.MustGrid(2, 10), core.IndexConfig{LeafCapacity: 20})
			if err != nil {
				b.Fatal(err)
			}
			if err := ix.BulkLoad(workload.Uniform(zorder.MustGrid(2, 10), 5000, 3)); err != nil {
				b.Fatal(err)
			}
			boxes, err := workload.Queries(zorder.MustGrid(2, 10), workload.QuerySpec{Volume: 0.04, Aspect: 1}, 10, 11)
			if err != nil {
				b.Fatal(err)
			}
			store.ResetStats()
			b.ResetTimer()
			var reads float64
			for i := 0; i < b.N; i++ {
				for _, box := range boxes {
					if _, _, err := ix.RangeSearch(box, core.MergeLazy); err != nil {
						b.Fatal(err)
					}
				}
				reads = float64(store.Stats().Reads)
			}
			b.ReportMetric(reads/float64(b.N*len(boxes)), "physical-reads/query")
		})
	}
}

// BenchmarkInsertThroughput measures index build rate at the paper's
// page capacity.
func BenchmarkInsertThroughput(b *testing.B) {
	g := zorder.MustGrid(2, 16)
	pts := workload.Uniform(g, 100000, 5)
	b.ResetTimer()
	i := 0
	store := disk.MustMemStore(4096)
	pool := disk.MustPool(store, 1024, disk.LRU)
	ix, err := core.NewIndex(pool, g, core.IndexConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for n := 0; n < b.N; n++ {
		p := pts[i%len(pts)]
		p.ID = uint64(n)
		if err := ix.Insert(p); err != nil {
			b.Fatal(err)
		}
		i++
	}
}

// BenchmarkAblationBulkLoad compares one-at-a-time insertion with
// bottom-up bulk loading, reporting build cost and resulting page
// counts.
func BenchmarkAblationBulkLoad(b *testing.B) {
	g := zorder.MustGrid(2, 10)
	pts := workload.Uniform(g, 5000, 3)
	b.Run("insert", func(b *testing.B) {
		var leaves float64
		for i := 0; i < b.N; i++ {
			pool := disk.MustPool(disk.MustMemStore(1024), 256, disk.LRU)
			ix, err := core.NewIndex(pool, g, core.IndexConfig{LeafCapacity: 20})
			if err != nil {
				b.Fatal(err)
			}
			if err := ix.BulkLoad(pts); err != nil {
				b.Fatal(err)
			}
			leaves = float64(ix.Tree().LeafPages())
		}
		b.ReportMetric(leaves, "leaf-pages")
	})
	b.Run("bulk", func(b *testing.B) {
		var leaves float64
		for i := 0; i < b.N; i++ {
			pool := disk.MustPool(disk.MustMemStore(1024), 256, disk.LRU)
			ix, err := core.NewIndexBulk(pool, g, core.IndexConfig{LeafCapacity: 20}, pts, 0)
			if err != nil {
				b.Fatal(err)
			}
			leaves = float64(ix.Tree().LeafPages())
		}
		b.ReportMetric(leaves, "leaf-pages")
	})
}

// BenchmarkNearestNeighbor measures the Section 6 proximity-query
// translation.
func BenchmarkNearestNeighbor(b *testing.B) {
	g := zorder.MustGrid(2, 10)
	pool := disk.MustPool(disk.MustMemStore(1024), 256, disk.LRU)
	ix, err := core.NewIndexBulk(pool, g, core.IndexConfig{LeafCapacity: 20}, workload.Uniform(g, 5000, 3), 0)
	if err != nil {
		b.Fatal(err)
	}
	q := []uint32{512, 512}
	b.ResetTimer()
	var pages float64
	for i := 0; i < b.N; i++ {
		_, stats, err := ix.Nearest(q, 10, core.Euclidean, core.MergeLazy)
		if err != nil {
			b.Fatal(err)
		}
		pages = float64(stats.DataPages)
	}
	b.ReportMetric(pages, "pages/query")
}

// joinBenchInputs builds the large in-memory join workload shared by
// the sequential and parallel join benchmarks: two element relations
// decomposed from many random boxes on a 1024x1024 grid.
func joinBenchInputs(b *testing.B) (left, right []core.Item) {
	b.Helper()
	g := zorder.MustGrid(2, 10)
	build := func(seed int64) []core.Item {
		boxes, err := workload.Queries(g, workload.QuerySpec{Volume: 0.001, Aspect: 2}, 600, seed)
		if err != nil {
			b.Fatal(err)
		}
		var items []core.Item
		for id, box := range boxes {
			for _, e := range decompose.Box(g, box) {
				items = append(items, core.Item{Elem: e, ID: uint64(id)})
			}
		}
		core.SortItems(items)
		return items
	}
	return build(301), build(302)
}

// BenchmarkSpatialJoinSequential is the single-threaded baseline for
// the parallel join benchmark below.
func BenchmarkSpatialJoinSequential(b *testing.B) {
	left, right := joinBenchInputs(b)
	b.ResetTimer()
	b.ReportAllocs()
	var pairs int
	for i := 0; i < b.N; i++ {
		out, _, err := core.SpatialJoinDistinct(left, right)
		if err != nil {
			b.Fatal(err)
		}
		pairs = len(out)
	}
	b.ReportMetric(float64(pairs), "distinct-pairs")
}

// BenchmarkSpatialJoinParallel measures the z-partitioned parallel
// join at increasing degrees of parallelism. Speedup over the
// sequential baseline tracks available cores (workers beyond
// GOMAXPROCS only add scheduling overhead).
func BenchmarkSpatialJoinParallel(b *testing.B) {
	left, right := joinBenchInputs(b)
	seq, _, err := core.SpatialJoinDistinct(left, right)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, _, err := core.SpatialJoinParallelDistinct(
					left, right, core.ParallelJoinConfig{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != len(seq) {
					b.Fatalf("parallel join found %d pairs, sequential %d", len(out), len(seq))
				}
			}
		})
	}
}

// BenchmarkAblationJoinOnDisk measures the stored spatial join's
// one-pass behavior under a small LRU pool, reporting physical reads
// per leaf page (the Section 4 buffering claim: ~1.0).
func BenchmarkAblationJoinOnDisk(b *testing.B) {
	g := zorder.MustGrid(2, 9)
	store := disk.MustMemStore(1024)
	pool := disk.MustPool(store, 8, disk.LRU)
	sa, err := core.NewElementStore(pool, g, 20)
	if err != nil {
		b.Fatal(err)
	}
	sb, err := core.NewElementStore(pool, g, 20)
	if err != nil {
		b.Fatal(err)
	}
	boxes, err := workload.Queries(g, workload.QuerySpec{Volume: 0.002, Aspect: 1}, 200, 81)
	if err != nil {
		b.Fatal(err)
	}
	for i, box := range boxes {
		target := sa
		if i%2 == 1 {
			target = sb
		}
		if err := target.InsertObject(uint64(i+1), decompose.Box(g, box)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var readsPerLeaf float64
	for i := 0; i < b.N; i++ {
		if err := pool.Invalidate(); err != nil {
			b.Fatal(err)
		}
		store.ResetStats()
		pages, err := core.SpatialJoinStores(sa, sb, func(core.Pair) bool { return true })
		if err != nil {
			b.Fatal(err)
		}
		readsPerLeaf = float64(store.Stats().Reads) / float64(pages.Left+pages.Right)
	}
	b.ReportMetric(readsPerLeaf, "reads/leaf")
}

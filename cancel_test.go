package probe_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"probe"
)

// cancelTestDB builds an in-memory database big enough that a full
// range scan touches many hundreds of leaf pages, so a prompt cancel
// is clearly distinguishable from a completed query.
func cancelTestDB(t *testing.T) (*probe.DB, probe.Box, int) {
	t.Helper()
	g := probe.MustGrid(2, 10)
	db, err := probe.Open(g, probe.Options{LeafCapacity: 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	rng := rand.New(rand.NewSource(42))
	pts := make([]probe.Point, 20000)
	for i := range pts {
		pts[i] = probe.Pt2(uint64(i+1), uint32(rng.Intn(1024)), uint32(rng.Intn(1024)))
	}
	if err := db.InsertAll(pts); err != nil {
		t.Fatal(err)
	}
	return db, probe.Box2(0, 1023, 0, 1023), len(pts)
}

// TestCancelMidRangeSearch is the cancellation conformance test: a
// context cancelled mid-stream stops the search within a bounded
// number of extra page reads (the cursor checks its context at page
// boundaries), surfaces context.Canceled, and leaves the database
// fully usable.
func TestCancelMidRangeSearch(t *testing.T) {
	db, box, n := cancelTestDB(t)

	// Baseline: the uncancelled query must visit everything.
	full, err := db.RangeSearchFunc(box, func(probe.Point) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if full.Results != n {
		t.Fatalf("full scan saw %d points, want %d", full.Results, n)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	qs, err := db.RangeSearchFunc(box, func(probe.Point) bool {
		seen++
		if seen == 5 {
			cancel() // cancel mid-stream, keep consuming
		}
		return true
	}, probe.WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query returned %v, want context.Canceled", err)
	}
	// Promptness: the cancel lands on the 5th point of the first leaf
	// page; the cursor may finish the page it is on but must not load
	// more than one page past the cancellation point.
	if qs.DataPages > 4 {
		t.Fatalf("cancelled query read %d data pages, want a handful", qs.DataPages)
	}
	if qs.DataPages >= full.DataPages/4 {
		t.Fatalf("cancelled query read %d of %d full-scan pages: not bounded", qs.DataPages, full.DataPages)
	}
	if seen >= n/4 {
		t.Fatalf("cancelled query streamed %d of %d points: not bounded", seen, n)
	}

	// The database survives: the same query, uncancelled, completes.
	after, err := db.RangeSearchFunc(box, func(probe.Point) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if after.Results != n {
		t.Fatalf("post-cancel scan saw %d points, want %d", after.Results, n)
	}
}

// TestCancelBeforeQuery: an already-cancelled context fails the
// operation before it touches any pages.
func TestCancelBeforeQuery(t *testing.T) {
	db, box, _ := cancelTestDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs, err := db.RangeSearchFunc(box, func(probe.Point) bool {
		t.Error("callback ran under a dead context")
		return false
	}, probe.WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if qs.DataPages != 0 {
		t.Fatalf("dead-context query read %d pages, want 0", qs.DataPages)
	}
}

// TestCloseWhileQuerying exercises the close-while-querying contract
// documented on ErrClosed: Close may run concurrently with in-flight
// queries — it waits for them rather than yanking the store — and
// every operation issued after Close fails with ErrClosed.
func TestCloseWhileQuerying(t *testing.T) {
	db, box, _ := cancelTestDB(t)

	const workers = 6
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _, err := db.RangeSearch(box)
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}

	time.Sleep(20 * time.Millisecond) // let queries get in flight
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	close(stop)
	wg.Wait()

	for w, err := range errs {
		if err != nil && !errors.Is(err, probe.ErrClosed) {
			t.Fatalf("worker %d: got %v, want nil or ErrClosed", w, err)
		}
	}
	if _, _, err := db.RangeSearch(box); !errors.Is(err, probe.ErrClosed) {
		t.Fatalf("query after Close: got %v, want ErrClosed", err)
	}
	if err := db.Insert(probe.Pt2(99, 1, 1)); !errors.Is(err, probe.ErrClosed) {
		t.Fatalf("insert after Close: got %v, want ErrClosed", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// Package client is the Go client for probed, the probe network query
// server. One Conn wraps one reused TCP connection speaking the wire
// protocol (docs/server.md); it is safe for concurrent use, with
// calls serialized over the connection in arrival order — open
// several Conns for real concurrency.
//
// Transactions (protocol 1.2) are session state on the connection:
// Conn.Begin opens one, the returned Tx buffers writes server-side
// and reads a pinned snapshot overlaid with them, and Tx.Commit
// either applies everything atomically or fails with ErrTxConflict
// when another committer won first-committer-wins validation — see
// docs/transactions.md.
//
// Cancellation and deadlines ride on context.Context: a context with
// a deadline becomes the request's timeout_ms on the wire, and
// cancelling the context sends a CANCEL frame so the server stops the
// request within about one page read. Server-side failures come back
// as *ServerError values that errors.Is-match the typed sentinels
// (ErrOverloaded, ErrCanceled, ErrDeadline, ErrShuttingDown,
// ErrTxConflict), so a caller can distinguish backpressure from
// cancellation from drain from a lost commit race without parsing
// messages.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"probe"
	"probe/internal/wire"
)

// A note on tracing (SetTrace and friends). While tracing is on, every
// request carries FlagTrace and, when set, the connection's trace ID
// (SetTraceID); after each request LastTiming holds the server's
// per-phase breakdown, and after each traced data request — RANGE,
// NEAREST, JOIN, INSERT, DELETE, and QUERY statements alike — the
// server-side span tree is available rendered (LastTrace) and, against
// a protocol 1.4 server, parsed (LastTraceTree) along with the trace
// ID the server stamped on the request (LastTraceID).

// Typed error sentinels for errors.Is. The concrete error is always a
// *ServerError carrying the server's message, except ErrTxAborted,
// which the client raises locally for operations on an ended Tx.
var (
	// ErrOverloaded: admission control rejected the request; the
	// server is at its in-flight limit. Retrying after a backoff is
	// reasonable.
	ErrOverloaded = errors.New("probed: overloaded")
	// ErrCanceled: the request was cancelled (normally by this
	// client's own context).
	ErrCanceled = errors.New("probed: canceled")
	// ErrDeadline: the request's timeout expired server-side.
	ErrDeadline = errors.New("probed: deadline exceeded")
	// ErrShuttingDown: the server is draining and accepts no new
	// requests.
	ErrShuttingDown = errors.New("probed: server shutting down")
	// ErrTxConflict: Commit lost first-committer-wins validation —
	// another transaction (or auto-commit write) committed to a key in
	// this transaction's write-set first. Retry the whole transaction.
	ErrTxConflict = errors.New("probed: transaction conflict")
	// ErrTxAborted: the Tx has already ended (committed, rolled back,
	// or aborted by the server).
	ErrTxAborted = errors.New("probed: transaction has ended")
	// ErrParse: the QUERY statement failed to parse (protocol 1.3).
	ErrParse = errors.New("probed: query parse error")
	// ErrPlan: the QUERY statement parsed but cannot run against the
	// served database (protocol 1.3).
	ErrPlan = errors.New("probed: query plan error")
	// ErrUnavailable: a shard the request needs has no reachable node
	// (protocol 1.4, returned by zrouted).
	ErrUnavailable = errors.New("probed: shard unavailable")
	// ErrReadOnly: a write was sent to a read-only replica (protocol
	// 1.4).
	ErrReadOnly = errors.New("probed: read-only replica")
	// ErrPoisoned: the connection suffered a transport failure
	// mid-protocol and is permanently unusable — the stream position is
	// unknown, so no further request may be written. Every call after
	// the failure returns a *PoisonedError matching this sentinel;
	// callers (connection pools especially) must discard the Conn and
	// dial a fresh one.
	ErrPoisoned = errors.New("probed: connection poisoned")
)

// PoisonedError marks a Conn dead after a mid-stream transport
// failure. Cause is the original I/O or framing error; the same value
// (not a copy) is returned by every subsequent call, so errors.Is
// against ErrPoisoned identifies a dead connection regardless of when
// the caller observes it.
type PoisonedError struct {
	Cause error
}

func (e *PoisonedError) Error() string {
	return fmt.Sprintf("probed: connection poisoned: %v", e.Cause)
}

// Unwrap exposes the original transport error to errors.Is/As.
func (e *PoisonedError) Unwrap() error { return e.Cause }

// Is matches the ErrPoisoned sentinel.
func (e *PoisonedError) Is(target error) bool { return target == ErrPoisoned }

// ServerError is a typed failure reported by the server.
type ServerError struct {
	Code uint8
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("probed: %s: %s", wire.CodeString(e.Code), e.Msg)
}

// Is matches the sentinel corresponding to the error's wire code, so
// errors.Is(err, client.ErrOverloaded) works on returned errors.
func (e *ServerError) Is(target error) bool {
	switch target {
	case ErrOverloaded:
		return e.Code == wire.CodeOverloaded
	case ErrCanceled:
		return e.Code == wire.CodeCanceled
	case ErrDeadline:
		return e.Code == wire.CodeDeadline
	case ErrShuttingDown:
		return e.Code == wire.CodeShuttingDown
	case ErrTxConflict:
		return e.Code == wire.CodeConflict
	case ErrParse:
		return e.Code == wire.CodeParse
	case ErrPlan:
		return e.Code == wire.CodePlan
	case ErrUnavailable:
		return e.Code == wire.CodeUnavailable
	case ErrReadOnly:
		return e.Code == wire.CodeReadOnly
	}
	return false
}

// BoxItem is one object of a join relation: an id plus its bounding
// box. The server decomposes it into z-elements.
type BoxItem struct {
	ID     uint64
	Lo, Hi []uint32
}

// Conn is one connection to a probed server. Safe for concurrent use;
// requests serialize on the connection.
type Conn struct {
	mu     sync.Mutex // serializes whole requests
	sendMu sync.Mutex // serializes frame writes (request vs. cancel)

	conn   net.Conn
	br     *bufio.Reader
	nextID uint32
	bits   []uint32
	minor  uint8 // server's protocol minor, from Welcome
	broken error // sticky transport failure

	// tx is the connection's open transaction, nil outside
	// BEGIN…COMMIT/ROLLBACK (guarded by mu). The server enforces the
	// same one-transaction-per-connection rule.
	tx *Tx

	// Tracing state (SetTrace / LastTiming / LastTrace), guarded by
	// mu like everything per-request. traceID, when nonzero, is
	// stamped on every traced request's header (protocol 1.4) so a
	// coordinator can propagate one distributed trace ID to its
	// backends; lastTraceID and lastSpan hold the TRACE frame of the
	// most recent traced data request.
	trace       bool
	traceID     uint64
	lastTiming  Timing
	lastTrace   string
	lastTraceID uint64
	lastSpan    *probe.Trace
}

// Timing is the server's per-phase breakdown of the last traced
// request: where its wall-clock went between arriving at the server
// and the terminal frame. Servers older than protocol 1.1 send no
// breakdown, leaving the zero Timing.
type Timing struct {
	Queue  time.Duration // frame receipt → execution start
	Plan   time.Duration // request decode + validation
	Exec   time.Duration // the query engine call
	Stream time.Duration // writing result batches back
	Total  time.Duration // receipt → terminal frame
}

// Dial connects to a probed server and performs the version
// handshake.
func Dial(addr string) (*Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(conn)
}

// NewConn wraps an established connection — a custom dialer's, a TLS
// channel's, a test pipe's — in a Conn, performing the protocol
// handshake. The Conn takes ownership of conn.
func NewConn(conn net.Conn) (*Conn, error) {
	c := &Conn{conn: conn, br: bufio.NewReader(conn), nextID: 1}
	if err := c.handshake(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *Conn) handshake() error {
	if err := c.writeFrame(wire.MsgHello, wire.Hello{
		Major: wire.VersionMajor, Minor: wire.VersionMinor,
	}.Encode()); err != nil {
		return err
	}
	typ, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return err
	}
	switch typ {
	case wire.MsgWelcome:
		w, err := wire.DecodeWelcome(payload)
		if err != nil {
			return err
		}
		c.bits = w.Bits
		c.minor = w.Minor
		return nil
	case wire.MsgError:
		em, err := wire.DecodeErrorMsg(payload)
		if err != nil {
			return err
		}
		return &ServerError{Code: em.Code, Msg: em.Msg}
	default:
		return fmt.Errorf("probed: unexpected handshake frame 0x%02x", typ)
	}
}

// GridBits returns the served database's bits per dimension, learned
// in the handshake.
func (c *Conn) GridBits() []int {
	out := make([]int, len(c.bits))
	for i, b := range c.bits {
		out[i] = int(b)
	}
	return out
}

// SetTrace toggles request tracing: while on, each request asks the
// server for its per-phase timing breakdown (LastTiming) and, for
// data requests, the rendered server-side span tree (LastTrace).
// Tracing is silently inert against servers older than protocol 1.1.
func (c *Conn) SetTrace(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trace = on
}

// LastTiming returns the server timing breakdown of the most recent
// traced request on this connection; the zero Timing if there is
// none.
func (c *Conn) LastTiming() Timing {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastTiming
}

// LastTrace returns the rendered server-side span tree of the most
// recent traced data request; "" if there is none.
func (c *Conn) LastTrace() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastTrace
}

// SetTraceID sets the distributed trace ID stamped on every
// subsequent traced request (protocol 1.4). A coordinator fanning one
// client request out to backends sets the request's ID here so all
// backend-side spans and log lines correlate; zero clears it, letting
// the server mint per-request IDs again.
func (c *Conn) SetTraceID(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.traceID = id
}

// LastTraceID returns the trace ID of the most recent traced data
// request — the ID set via SetTraceID, or the one the server minted —
// as reported in its TRACE frame; 0 if there is none (untraced, or a
// server older than protocol 1.4).
func (c *Conn) LastTraceID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastTraceID
}

// LastTraceTree returns the parsed server-side span tree of the most
// recent traced data request, nil if there is none. Only a protocol
// 1.4 server ships the parseable form; older servers only fill
// LastTrace. The tree is sealed: durations and counters read back
// exactly as the server recorded them.
func (c *Conn) LastTraceTree() *probe.Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSpan
}

// reqFlags returns the wire flags for the next request: FlagTrace
// when tracing is on and the server speaks minor >= 1.
func (c *Conn) reqFlags() uint8 {
	if c.trace && c.minor >= 1 {
		return wire.FlagTrace
	}
	return 0
}

// header assembles a request header: id, the context's deadline as
// the wire timeout, and the tracing tail (flags byte plus trace ID).
func (c *Conn) header(id uint32, ctx context.Context) wire.Header {
	return wire.Header{ID: id, TimeoutMS: timeoutMS(ctx), Flags: c.reqFlags(), Trace: c.traceID}
}

// Close closes the connection. In-flight requests fail with a
// transport error; an open transaction is rolled back server-side.
func (c *Conn) Close() error { return c.conn.Close() }

// Broken returns the *PoisonedError that killed the connection, or
// nil while it is still usable. A non-nil result is permanent.
func (c *Conn) Broken() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// poison marks the connection permanently dead after a mid-stream
// transport failure and returns the sticky typed error. Called with
// c.mu held (all request paths hold it).
func (c *Conn) poison(err error) error {
	if c.broken == nil {
		var pe *PoisonedError
		if errors.As(err, &pe) {
			c.broken = pe
		} else {
			c.broken = &PoisonedError{Cause: err}
		}
	}
	return c.broken
}

func (c *Conn) writeFrame(typ uint8, payload []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return wire.WriteFrame(c.conn, typ, payload)
}

// timeoutMS derives the wire timeout from the context's deadline.
func timeoutMS(ctx context.Context) uint32 {
	if ctx == nil {
		return 0
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return uint32(ms)
}

// handlers routes a request's response frames; any field may be nil.
// batch and rows returning an error ask for the stream to stop: the
// request is cancelled server-side and drained to its terminal frame
// so the connection stays usable.
type handlers struct {
	batch  func(wire.Batch) error
	text   func(string)
	kv     func(wire.StatsKV)
	schema func(wire.SchemaMsg)
	rows   func(wire.RowsMsg) error
}

// do runs one request round trip: write the request frame, stream
// response frames to the handlers until Done or Error, relaying a
// context cancellation as a CANCEL frame. While tracing, a TEXT frame
// with no consumer is the server's span tree and lands in lastTrace,
// and a Done timing array lands in lastTiming.
func (c *Conn) do(ctx context.Context, typ uint8, payload []byte, id uint32, h handlers) (probe.QueryStats, error) {

	if c.broken != nil {
		return probe.QueryStats{}, c.broken
	}
	c.lastTiming, c.lastTrace = Timing{}, ""
	c.lastTraceID, c.lastSpan = 0, nil
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return probe.QueryStats{}, err
		}
	}
	if err := c.writeFrame(typ, payload); err != nil {
		return probe.QueryStats{}, c.poison(err)
	}

	// Relay a context cancellation as a CANCEL frame. The watcher
	// must not outlive the request: stop is closed before do returns.
	stop := make(chan struct{})
	defer close(stop)
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				c.writeFrame(wire.MsgCancel, wire.Cancel{ID: id}.Encode())
			case <-stop:
			}
		}()
	}

	for {
		ftyp, fp, err := wire.ReadFrame(c.br)
		if err != nil {
			return probe.QueryStats{}, c.poison(err)
		}
		switch ftyp {
		case wire.MsgBatch:
			b, err := wire.DecodeBatch(fp)
			if err != nil {
				return probe.QueryStats{}, c.poison(err)
			}
			if b.ID != id || h.batch == nil {
				continue
			}
			if err := h.batch(b); err != nil {
				// The consumer wants out: cancel server-side and keep
				// reading to the request's terminal frame so the
				// connection stays usable.
				c.writeFrame(wire.MsgCancel, wire.Cancel{ID: id}.Encode())
				h.batch = nil
			}
		case wire.MsgText:
			tm, err := wire.DecodeTextMsg(fp)
			if err != nil {
				return probe.QueryStats{}, c.poison(err)
			}
			if tm.ID == id {
				if h.text != nil {
					h.text(tm.Text)
				} else if c.trace {
					c.lastTrace = tm.Text
				}
			}
		case wire.MsgTrace:
			tm, err := wire.DecodeTraceMsg(fp)
			if err != nil {
				return probe.QueryStats{}, c.poison(err)
			}
			if tm.ID == id {
				root, err := probe.DecodeTrace(tm.Span)
				if err != nil {
					return probe.QueryStats{}, c.poison(fmt.Errorf("probed: malformed TRACE frame: %w", err))
				}
				c.lastTraceID = tm.TraceID
				c.lastSpan = root
				c.lastTrace = root.Render(true)
			}
		case wire.MsgStatsKV:
			kv, err := wire.DecodeStatsKV(fp)
			if err != nil {
				return probe.QueryStats{}, c.poison(err)
			}
			if kv.ID == id && h.kv != nil {
				h.kv(kv)
			}
		case wire.MsgSchema:
			sm, err := wire.DecodeSchemaMsg(fp)
			if err != nil {
				return probe.QueryStats{}, c.poison(err)
			}
			if sm.ID == id && h.schema != nil {
				h.schema(sm)
			}
		case wire.MsgRows:
			rm, err := wire.DecodeRowsMsg(fp)
			if err != nil {
				return probe.QueryStats{}, c.poison(err)
			}
			if rm.ID != id || h.rows == nil {
				continue
			}
			if err := h.rows(rm); err != nil {
				c.writeFrame(wire.MsgCancel, wire.Cancel{ID: id}.Encode())
				h.rows = nil
			}
		case wire.MsgDone:
			dn, err := wire.DecodeDone(fp)
			if err != nil {
				return probe.QueryStats{}, c.poison(err)
			}
			if dn.ID != id {
				continue
			}
			if len(dn.Timings) > 0 {
				c.lastTiming = Timing{
					Queue:  time.Duration(dn.Timing(wire.TimingQueue)),
					Plan:   time.Duration(dn.Timing(wire.TimingPlan)),
					Exec:   time.Duration(dn.Timing(wire.TimingExec)),
					Stream: time.Duration(dn.Timing(wire.TimingStream)),
					Total:  time.Duration(dn.Timing(wire.TimingTotal)),
				}
			}
			return statsOf(dn), nil
		case wire.MsgError:
			em, err := wire.DecodeErrorMsg(fp)
			if err != nil {
				return probe.QueryStats{}, c.poison(err)
			}
			if em.ID != id {
				continue
			}
			return probe.QueryStats{}, &ServerError{Code: em.Code, Msg: em.Msg}
		default:
			err := fmt.Errorf("probed: unexpected frame type 0x%02x", ftyp)
			return probe.QueryStats{}, c.poison(err)
		}
	}
}

// statsOf unpacks the Done stats array into QueryStats.
func statsOf(d wire.Done) probe.QueryStats {
	return probe.QueryStats{
		DataPages:       int(d.Stat(wire.StatDataPages)),
		Seeks:           int(d.Stat(wire.StatSeeks)),
		Elements:        int(d.Stat(wire.StatElements)),
		Results:         int(d.Stat(wire.StatResults)),
		LeftItems:       int(d.Stat(wire.StatLeftItems)),
		RightItems:      int(d.Stat(wire.StatRightItems)),
		RawPairs:        int(d.Stat(wire.StatRawPairs)),
		DistinctPairs:   int(d.Stat(wire.StatDistinctPairs)),
		Shards:          int(d.Stat(wire.StatShards)),
		ReplicatedItems: int(d.Stat(wire.StatReplicatedItems)),
		PoolGets:        d.Stat(wire.StatPoolGets),
		PoolHits:        d.Stat(wire.StatPoolHits),
		PoolMisses:      d.Stat(wire.StatPoolMisses),
		PhysReads:       d.Stat(wire.StatPhysReads),
		PhysWrites:      d.Stat(wire.StatPhysWrites),
		WALAppends:      d.Stat(wire.StatWALAppends),
		WALSyncs:        d.Stat(wire.StatWALSyncs),
	}
}

// begin claims the connection and allocates a request id.
func (c *Conn) begin() uint32 {
	id := c.nextID
	c.nextID++
	return id
}

// RangeFunc streams every point in the box to fn in z order;
// returning false from fn stops the query (the server is cancelled)
// without error. Strategy 0 is the server default; 1, 2, 3 select
// MergeDecomposed, MergeLazy, SkipBigMin. Inside an open transaction
// the server answers from the transaction's view.
func (c *Conn) RangeFunc(ctx context.Context, lo, hi []uint32, strategy uint8, fn func(probe.Point) bool) (probe.QueryStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rangeFuncLocked(ctx, lo, hi, strategy, fn)
}

func (c *Conn) rangeFuncLocked(ctx context.Context, lo, hi []uint32, strategy uint8, fn func(probe.Point) bool) (probe.QueryStats, error) {
	id := c.begin()
	req := wire.RangeReq{
		Header:   c.header(id, ctx),
		Strategy: strategy, Lo: lo, Hi: hi,
	}
	stopped := false
	errStop := errors.New("stop")
	qs, err := c.do(ctx, wire.MsgRange, req.Encode(), id, handlers{batch: func(b wire.Batch) error {
		for _, p := range b.Points {
			if !fn(probe.Point{ID: p.ID, Coords: p.Coords}) {
				stopped = true
				return errStop
			}
		}
		return nil
	}})
	if err != nil && stopped && errors.Is(err, ErrCanceled) {
		return qs, nil
	}
	return qs, err
}

// Range returns every point in the box.
func (c *Conn) Range(ctx context.Context, lo, hi []uint32) ([]probe.Point, probe.QueryStats, error) {
	var pts []probe.Point
	qs, err := c.RangeFunc(ctx, lo, hi, 0, func(p probe.Point) bool {
		pts = append(pts, p)
		return true
	})
	if err != nil {
		return nil, qs, err
	}
	return pts, qs, nil
}

// Nearest returns the m indexed points nearest q under the metric.
func (c *Conn) Nearest(ctx context.Context, q []uint32, m int, metric probe.Metric) ([]probe.Neighbor, probe.QueryStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nearestLocked(ctx, q, m, metric)
}

func (c *Conn) nearestLocked(ctx context.Context, q []uint32, m int, metric probe.Metric) ([]probe.Neighbor, probe.QueryStats, error) {
	id := c.begin()
	req := wire.NearestReq{
		Header: c.header(id, ctx),
		Metric: uint8(metric), M: uint32(m), Q: q,
	}
	var nbs []probe.Neighbor
	qs, err := c.do(ctx, wire.MsgNearest, req.Encode(), id, handlers{batch: func(b wire.Batch) error {
		for _, n := range b.Neighbors {
			nbs = append(nbs, probe.Neighbor{
				Point: probe.Point{ID: n.ID, Coords: n.Coords},
				Dist:  n.Dist,
			})
		}
		return nil
	}})
	if err != nil {
		return nil, qs, err
	}
	return nbs, qs, nil
}

// Join ships two box relations and returns the distinct overlapping
// id pairs of their spatial join. workers > 0 requests parallel
// execution server-side.
func (c *Conn) Join(ctx context.Context, a, b []BoxItem, workers int) ([]probe.Pair, probe.QueryStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.begin()
	dims := uint32(len(c.bits))
	conv := func(items []BoxItem) []wire.JoinItem {
		out := make([]wire.JoinItem, len(items))
		for i, it := range items {
			out[i] = wire.JoinItem{ID: it.ID, Lo: it.Lo, Hi: it.Hi}
		}
		return out
	}
	req := wire.JoinReq{
		Header:  c.header(id, ctx),
		Workers: uint32(workers), Dims: dims,
		A: conv(a), B: conv(b),
	}
	var pairs []probe.Pair
	qs, err := c.do(ctx, wire.MsgJoin, req.Encode(), id, handlers{batch: func(bt wire.Batch) error {
		for _, p := range bt.Pairs {
			pairs = append(pairs, probe.Pair{A: p[0], B: p[1]})
		}
		return nil
	}})
	if err != nil {
		return nil, qs, err
	}
	return pairs, qs, nil
}

// Insert ships a batch of points for insertion. The returned stats
// carry the inserted count in Results. Inside an open transaction the
// batch buffers server-side until Commit.
func (c *Conn) Insert(ctx context.Context, pts []probe.Point) (probe.QueryStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.insertLocked(ctx, pts)
}

func (c *Conn) insertLocked(ctx context.Context, pts []probe.Point) (probe.QueryStats, error) {
	id := c.begin()
	wpts := make([]wire.Point, len(pts))
	for i, p := range pts {
		wpts[i] = wire.Point{ID: p.ID, Coords: p.Coords}
	}
	req := wire.InsertReq{
		Header: c.header(id, ctx),
		Dims:   uint32(len(c.bits)), Points: wpts,
	}
	return c.do(ctx, wire.MsgInsert, req.Encode(), id, handlers{})
}

// Delete ships a batch of points for deletion (protocol 1.2). Points
// already absent are skipped, not an error; the returned stats carry
// the actually-removed count in Results.
func (c *Conn) Delete(ctx context.Context, pts []probe.Point) (probe.QueryStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deleteLocked(ctx, pts)
}

func (c *Conn) deleteLocked(ctx context.Context, pts []probe.Point) (probe.QueryStats, error) {
	if c.minor < 2 {
		return probe.QueryStats{}, fmt.Errorf("probed: server protocol 1.%d has no DELETE (needs 1.2)", c.minor)
	}
	id := c.begin()
	wpts := make([]wire.Point, len(pts))
	for i, p := range pts {
		wpts[i] = wire.Point{ID: p.ID, Coords: p.Coords}
	}
	req := wire.DeleteReq{
		Header: c.header(id, ctx),
		Dims:   uint32(len(c.bits)), Points: wpts,
	}
	return c.do(ctx, wire.MsgDelete, req.Encode(), id, handlers{})
}

// Checkpoint forces a durability checkpoint on the server.
func (c *Conn) Checkpoint(ctx context.Context) (probe.QueryStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.begin()
	req := wire.SimpleReq{Header: c.header(id, ctx)}
	return c.do(ctx, wire.MsgCheckpoint, req.Encode(), id, handlers{})
}

// Explain returns the plan the server's optimizer picks for a range
// query, without running it.
func (c *Conn) Explain(ctx context.Context, lo, hi []uint32) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.begin()
	req := wire.RangeReq{Header: c.header(id, ctx), Lo: lo, Hi: hi}
	var text string
	_, err := c.do(ctx, wire.MsgExplain, req.Encode(), id, handlers{text: func(s string) { text = s }})
	return text, err
}

// QueryResult is one materialized spatial SQL result: the schema, the
// rows (typed values aligned with the columns), the EXPLAIN rendering
// for EXPLAIN statements (Rows is then nil), and the server's stats.
type QueryResult struct {
	Columns []probe.QueryColumn
	Rows    []probe.QueryRow
	Explain string
	Stats   probe.QueryStats
}

// Query runs one spatial SQL statement (protocol 1.3; docs/query.md
// defines the language) and materializes the result. Parse and plan
// failures come back as *ServerError values matching ErrParse and
// ErrPlan. Inside an open transaction the statement runs on the
// transaction's view.
func (c *Conn) Query(ctx context.Context, text string) (*QueryResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queryLocked(ctx, text)
}

func (c *Conn) queryLocked(ctx context.Context, text string) (*QueryResult, error) {
	res := &QueryResult{}
	qs, err := c.queryFuncLocked(ctx, text,
		func(cols []probe.QueryColumn) { res.Columns = cols },
		func(row probe.QueryRow) bool {
			res.Rows = append(res.Rows, row)
			return true
		},
		func(s string) { res.Explain = s })
	if err != nil {
		return nil, err
	}
	res.Stats = qs
	return res, nil
}

// QueryFunc runs one spatial SQL statement, streaming rows to onRow
// as batches arrive; returning false stops the query (the server is
// cancelled) without error. onSchema, if non-nil, is called once with
// the result schema before the first row. EXPLAIN statements produce
// no schema or rows; use Query for those.
func (c *Conn) QueryFunc(ctx context.Context, text string, onSchema func([]probe.QueryColumn), onRow func(probe.QueryRow) bool) (probe.QueryStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queryFuncLocked(ctx, text, onSchema, onRow, nil)
}

func (c *Conn) queryFuncLocked(ctx context.Context, text string,
	onSchema func([]probe.QueryColumn), onRow func(probe.QueryRow) bool, onText func(string)) (probe.QueryStats, error) {

	if c.minor < 3 {
		return probe.QueryStats{}, fmt.Errorf("probed: server protocol 1.%d has no QUERY (needs 1.3)", c.minor)
	}
	id := c.begin()
	req := wire.QueryReq{
		Header: c.header(id, ctx),
		Text:   text,
	}
	stopped := false
	errStop := errors.New("stop")
	qs, err := c.do(ctx, wire.MsgQuery, req.Encode(), id, handlers{
		text: onText,
		schema: func(sm wire.SchemaMsg) {
			if onSchema == nil {
				return
			}
			cols := make([]probe.QueryColumn, len(sm.Cols))
			for i, sc := range sm.Cols {
				cols[i] = probe.QueryColumn{Name: sc.Name, Type: probe.ColumnType(sc.Type)}
			}
			onSchema(cols)
		},
		rows: func(rm wire.RowsMsg) error {
			if onRow == nil {
				return nil
			}
			for _, r := range rm.Rows {
				row := make(probe.QueryRow, len(r))
				for i, v := range r {
					row[i] = probe.QueryValue(v)
				}
				if !onRow(row) {
					stopped = true
					return errStop
				}
			}
			return nil
		},
	})
	if err != nil && stopped && errors.Is(err, ErrCanceled) {
		return qs, nil
	}
	return qs, err
}

// Stats returns a snapshot of the server's and the database's
// cumulative metrics as a flat name → value map: counters and gauges
// directly, histograms as .count/.p50/.p95/.p99/.max summaries, with
// "server." and "db." name prefixes. Against a 1.0 server the legacy
// JSON TEXT response is parsed into the same shape.
func (c *Conn) Stats(ctx context.Context) (map[string]int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.begin()
	req := wire.SimpleReq{Header: c.header(id, ctx)}
	out := make(map[string]int64)
	var legacy string
	_, err := c.do(ctx, wire.MsgStats, req.Encode(), id, handlers{
		text: func(s string) { legacy = s },
		kv: func(kv wire.StatsKV) {
			for _, e := range kv.KVs {
				out[e.Name] = e.Value
			}
		}})
	if err != nil {
		return nil, err
	}
	if len(out) == 0 && legacy != "" {
		if err := flattenStatsJSON(legacy, out); err != nil {
			return nil, fmt.Errorf("probed: parsing legacy stats: %w", err)
		}
	}
	return out, nil
}

// flattenStatsJSON parses a 1.0 server's TEXT stats blob — nested
// JSON objects of numbers — into dotted int64 keys.
func flattenStatsJSON(text string, out map[string]int64) error {
	var root map[string]any
	if err := json.Unmarshal([]byte(text), &root); err != nil {
		return err
	}
	var walk func(prefix string, m map[string]any)
	walk = func(prefix string, m map[string]any) {
		for k, v := range m {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			switch t := v.(type) {
			case map[string]any:
				walk(key, t)
			case float64:
				out[key] = int64(t)
			}
		}
	}
	walk("", root)
	return nil
}

package client

import (
	"context"

	"probe"
)

// Client is the pre-1.2 name for a probed connection, kept so code
// written against the old API keeps compiling. It is a pure
// delegating wrapper around a Conn — no state of its own — so a
// Client and the Conn it wraps may be used interchangeably.
//
// Deprecated: use Conn (returned by Dial / NewConn), which adds
// transactions (Begin) and batch deletion (Delete).
type Client struct {
	conn *Conn
}

// DialClient connects like Dial but returns the wrapped legacy
// Client.
//
// Deprecated: use Dial and the Conn it returns.
func DialClient(addr string) (*Client, error) {
	conn, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established Conn in the legacy Client shape.
//
// Deprecated: use the Conn directly.
func NewClient(conn *Conn) *Client { return &Client{conn: conn} }

// Conn returns the underlying connection, the migration path out of
// the deprecated wrapper.
func (c *Client) Conn() *Conn { return c.conn }

// Deprecated: use Conn.GridBits.
func (c *Client) GridBits() []int { return c.conn.GridBits() }

// Deprecated: use Conn.SetTrace.
func (c *Client) SetTrace(on bool) { c.conn.SetTrace(on) }

// Deprecated: use Conn.LastTiming.
func (c *Client) LastTiming() Timing { return c.conn.LastTiming() }

// Deprecated: use Conn.LastTrace.
func (c *Client) LastTrace() string { return c.conn.LastTrace() }

// Deprecated: use Conn.Close.
func (c *Client) Close() error { return c.conn.Close() }

// Deprecated: use Conn.RangeFunc.
func (c *Client) RangeFunc(ctx context.Context, lo, hi []uint32, strategy uint8, fn func(probe.Point) bool) (probe.QueryStats, error) {
	return c.conn.RangeFunc(ctx, lo, hi, strategy, fn)
}

// Deprecated: use Conn.Range.
func (c *Client) Range(ctx context.Context, lo, hi []uint32) ([]probe.Point, probe.QueryStats, error) {
	return c.conn.Range(ctx, lo, hi)
}

// Deprecated: use Conn.Nearest.
func (c *Client) Nearest(ctx context.Context, q []uint32, m int, metric probe.Metric) ([]probe.Neighbor, probe.QueryStats, error) {
	return c.conn.Nearest(ctx, q, m, metric)
}

// Deprecated: use Conn.Join.
func (c *Client) Join(ctx context.Context, a, b []BoxItem, workers int) ([]probe.Pair, probe.QueryStats, error) {
	return c.conn.Join(ctx, a, b, workers)
}

// Deprecated: use Conn.Insert.
func (c *Client) Insert(ctx context.Context, pts []probe.Point) (probe.QueryStats, error) {
	return c.conn.Insert(ctx, pts)
}

// Deprecated: use Conn.Checkpoint.
func (c *Client) Checkpoint(ctx context.Context) (probe.QueryStats, error) {
	return c.conn.Checkpoint(ctx)
}

// Deprecated: use Conn.Explain.
func (c *Client) Explain(ctx context.Context, lo, hi []uint32) (string, error) {
	return c.conn.Explain(ctx, lo, hi)
}

// Deprecated: use Conn.Stats.
func (c *Client) Stats(ctx context.Context) (map[string]int64, error) {
	return c.conn.Stats(ctx)
}

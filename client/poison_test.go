package client

import (
	"bufio"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"probe"
	"probe/internal/wire"
)

// fakeShardServer speaks just enough of the wire protocol over one
// net.Pipe end to welcome a client and then sever the connection
// mid-stream: on the first data request it sends one point batch and
// slams the pipe shut, leaving the response unterminated.
func fakeShardServer(t *testing.T, conn net.Conn) {
	t.Helper()
	br := bufio.NewReader(conn)
	typ, _, err := wire.ReadFrame(br)
	if err != nil || typ != wire.MsgHello {
		t.Errorf("fake server: handshake: typ=0x%02x err=%v", typ, err)
		conn.Close()
		return
	}
	w := wire.Welcome{Major: wire.VersionMajor, Minor: wire.VersionMinor, Bits: []uint32{10, 10}}
	if err := wire.WriteFrame(conn, wire.MsgWelcome, w.Encode()); err != nil {
		t.Errorf("fake server: welcome: %v", err)
		conn.Close()
		return
	}
	typ, payload, err := wire.ReadFrame(br)
	if err != nil || typ != wire.MsgRange {
		t.Errorf("fake server: expected RANGE, got typ=0x%02x err=%v", typ, err)
		conn.Close()
		return
	}
	req, err := wire.DecodeRangeReq(payload)
	if err != nil {
		t.Errorf("fake server: decode range: %v", err)
		conn.Close()
		return
	}
	b := wire.Batch{ID: req.ID, Kind: wire.KindPoints, Dims: 2,
		Points: []wire.Point{{ID: 1, Coords: []uint32{3, 4}}}}
	if err := wire.WriteFrame(conn, wire.MsgBatch, b.Encode()); err != nil {
		t.Errorf("fake server: batch: %v", err)
	}
	// Sever mid-stream: the client has a half-consumed response and no
	// terminal DONE/ERROR frame.
	conn.Close()
}

// TestPoisonedConnSeveredMidStream is the regression test for typed
// connection poisoning: a transport failure mid-response must leave
// the Conn permanently failed with an error matching ErrPoisoned —
// never a half-consumed session that silently misroutes the next
// request's frames.
func TestPoisonedConnSeveredMidStream(t *testing.T) {
	cliEnd, srvEnd := net.Pipe()
	go fakeShardServer(t, srvEnd)

	c, err := NewConn(cliEnd)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	defer c.Close()

	ctx := context.Background()
	got := 0
	_, err = c.RangeFunc(ctx, []uint32{0, 0}, []uint32{100, 100}, 0, func(p probe.Point) bool {
		got++
		return true
	})
	if err == nil {
		t.Fatal("severed mid-stream range returned nil error")
	}
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("mid-stream sever returned %v (%T), want ErrPoisoned match", err, err)
	}
	var pe *PoisonedError
	if !errors.As(err, &pe) || pe.Cause == nil {
		t.Fatalf("error %v is not a *PoisonedError with a cause", err)
	}
	if got != 1 {
		t.Fatalf("delivered %d points before the sever, want 1", got)
	}

	// The poisoning is sticky and typed: every later call fails
	// immediately with the same error value, and Broken reports it.
	if c.Broken() == nil {
		t.Fatal("Broken() nil after poisoning")
	}
	_, _, err2 := c.Range(ctx, []uint32{0, 0}, []uint32{1, 1})
	if !errors.Is(err2, ErrPoisoned) {
		t.Fatalf("second call after poison returned %v, want ErrPoisoned match", err2)
	}
	var pe2 *PoisonedError
	if !errors.As(err2, &pe2) || pe2 != pe {
		t.Fatalf("second call returned a different error value (%p vs %p)", pe2, pe)
	}

	// And it fails fast: no network wait.
	t0 := time.Now()
	if _, err := c.Insert(ctx, nil); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("insert after poison: %v", err)
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("poisoned call took %v, want immediate failure", d)
	}
}

package client

import (
	"context"
	"fmt"

	"probe"
	"probe/internal/wire"
)

// Tx is a multi-statement transaction on one connection, mirroring
// the server's semantics (docs/transactions.md): every read observes
// the snapshot pinned at Begin with this transaction's own buffered
// writes overlaid, no other connection sees anything until Commit,
// and Commit either applies the whole write-set atomically or fails
// with ErrTxConflict when a concurrent committer touched one of its
// keys first.
//
// A Tx owns its connection until it ends: requests on the parent Conn
// run inside the transaction server-side, so issue the transaction's
// statements through the Tx. The server rolls the transaction back if
// the connection drops or sits idle past its transaction idle
// timeout; the next statement then fails server-side.
type Tx struct {
	c     *Conn
	ended bool
}

// Begin opens a transaction on the connection (protocol 1.2). At most
// one transaction may be open per connection; end it with exactly one
// Commit or Rollback (Rollback after Commit is a safe no-op).
func (c *Conn) Begin(ctx context.Context) (*Tx, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.minor < 2 {
		return nil, fmt.Errorf("probed: server protocol 1.%d has no transactions (needs 1.2)", c.minor)
	}
	if c.tx != nil && !c.tx.ended {
		return nil, fmt.Errorf("probed: a transaction is already open on this connection")
	}
	id := c.begin()
	req := wire.SimpleReq{Header: wire.Header{ID: id, TimeoutMS: timeoutMS(ctx), Flags: c.reqFlags()}}
	if _, err := c.do(ctx, wire.MsgBegin, req.Encode(), id, handlers{}); err != nil {
		return nil, err
	}
	tx := &Tx{c: c}
	c.tx = tx
	return tx, nil
}

// enter claims the connection for one transaction statement; the
// returned release must be called when the statement ends.
func (tx *Tx) enter() (func(), error) {
	tx.c.mu.Lock()
	if tx.ended {
		tx.c.mu.Unlock()
		return nil, ErrTxAborted
	}
	return tx.c.mu.Unlock, nil
}

// Insert buffers a batch of points in the transaction's write-set.
// Duplicates are checked against the transaction's view, so
// re-inserting a key deleted earlier in the transaction succeeds.
func (tx *Tx) Insert(ctx context.Context, pts []probe.Point) (probe.QueryStats, error) {
	release, err := tx.enter()
	if err != nil {
		return probe.QueryStats{}, err
	}
	defer release()
	return tx.c.insertLocked(ctx, pts)
}

// Delete buffers deletions against the transaction's view. The
// returned stats carry in Results how many of the points were present
// (and are now buffered for deletion).
func (tx *Tx) Delete(ctx context.Context, pts []probe.Point) (probe.QueryStats, error) {
	release, err := tx.enter()
	if err != nil {
		return probe.QueryStats{}, err
	}
	defer release()
	return tx.c.deleteLocked(ctx, pts)
}

// Range returns every point in the box as the transaction sees it:
// the pinned snapshot plus this transaction's buffered writes.
func (tx *Tx) Range(ctx context.Context, lo, hi []uint32) ([]probe.Point, probe.QueryStats, error) {
	var pts []probe.Point
	qs, err := tx.RangeFunc(ctx, lo, hi, 0, func(p probe.Point) bool {
		pts = append(pts, p)
		return true
	})
	if err != nil {
		return nil, qs, err
	}
	return pts, qs, nil
}

// RangeFunc streams the transaction's view of the box to fn in z
// order; returning false stops the stream without error.
func (tx *Tx) RangeFunc(ctx context.Context, lo, hi []uint32, strategy uint8, fn func(probe.Point) bool) (probe.QueryStats, error) {
	release, err := tx.enter()
	if err != nil {
		return probe.QueryStats{}, err
	}
	defer release()
	return tx.c.rangeFuncLocked(ctx, lo, hi, strategy, fn)
}

// Nearest returns the m points of the transaction's view nearest q.
func (tx *Tx) Nearest(ctx context.Context, q []uint32, m int, metric probe.Metric) ([]probe.Neighbor, probe.QueryStats, error) {
	release, err := tx.enter()
	if err != nil {
		return nil, probe.QueryStats{}, err
	}
	defer release()
	return tx.c.nearestLocked(ctx, q, m, metric)
}

// Query runs one spatial SQL statement on the transaction's view: the
// pinned snapshot plus this transaction's buffered writes.
func (tx *Tx) Query(ctx context.Context, text string) (*QueryResult, error) {
	release, err := tx.enter()
	if err != nil {
		return nil, err
	}
	defer release()
	return tx.c.queryLocked(ctx, text)
}

// QueryFunc streams a statement's rows from the transaction's view;
// returning false from onRow stops the query without error.
func (tx *Tx) QueryFunc(ctx context.Context, text string, onSchema func([]probe.QueryColumn), onRow func(probe.QueryRow) bool) (probe.QueryStats, error) {
	release, err := tx.enter()
	if err != nil {
		return probe.QueryStats{}, err
	}
	defer release()
	return tx.c.queryFuncLocked(ctx, text, onSchema, onRow, nil)
}

// Commit applies the transaction's write-set atomically. It returns
// an error matching ErrTxConflict when first-committer-wins
// validation fails — the transaction is then over and can be retried
// from Begin. The returned stats carry the number of applied write
// statements in Results.
func (tx *Tx) Commit(ctx context.Context) (probe.QueryStats, error) {
	release, err := tx.enter()
	if err != nil {
		return probe.QueryStats{}, err
	}
	defer release()
	tx.ended = true
	tx.c.tx = nil
	id := tx.c.begin()
	req := wire.SimpleReq{Header: wire.Header{ID: id, TimeoutMS: timeoutMS(ctx), Flags: tx.c.reqFlags()}}
	return tx.c.do(ctx, wire.MsgCommit, req.Encode(), id, handlers{})
}

// Rollback discards the transaction. It is a no-op on a transaction
// that already ended, so `defer tx.Rollback(ctx)` after Begin is
// always safe.
func (tx *Tx) Rollback(ctx context.Context) error {
	release, err := tx.enter()
	if err != nil {
		return nil // already ended: deliberate no-op
	}
	defer release()
	tx.ended = true
	tx.c.tx = nil
	id := tx.c.begin()
	req := wire.SimpleReq{Header: wire.Header{ID: id, TimeoutMS: timeoutMS(ctx), Flags: tx.c.reqFlags()}}
	_, err = tx.c.do(ctx, wire.MsgRollback, req.Encode(), id, handlers{})
	return err
}

// Command experiments reproduces every table and figure of the
// paper's evaluation (Section 5 and Figure 6) plus the Section 6
// algorithm measurements, printing the tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-quick] [-table NAME]
//	experiments -bench [-quick] [-bench-out FILE]
//
// -quick shrinks the data sets for a fast smoke run; -table limits
// output to one table (s1, s2, s3, s4, s5, s6, s7, fig6, s8, s9,
// s10, s11). -bench skips the tables and emits the bench-trajectory
// JSON document (schema probe-bench/v1) to -bench-out (default
// BENCH_spatial.json; "-" writes to stdout), for CI to archive per
// commit.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"probe/internal/analysis"
	"probe/internal/conncomp"
	"probe/internal/decompose"
	"probe/internal/experiment"
	"probe/internal/geom"
	"probe/internal/interfere"
	"probe/internal/overlay"
	"probe/internal/workload"
	"probe/internal/zorder"
)

func main() {
	quick := flag.Bool("quick", false, "shrink data sets for a fast run")
	table := flag.String("table", "", "run a single table (s1..s11, fig6)")
	bench := flag.Bool("bench", false, "emit the bench-trajectory JSON instead of the tables")
	benchOut := flag.String("bench-out", "BENCH_spatial.json", "bench output file (\"-\" for stdout)")
	flag.Parse()

	cfg := experiment.DefaultConfig()
	if *quick {
		cfg.N = 1000
		cfg.GridBits = 8
		cfg.Locations = 3
	}

	if *bench {
		if err := runBench(cfg, *quick, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, fn func(experiment.Config) error) {
		if *table != "" && *table != name {
			return
		}
		if err := fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("s1", tableS1)
	run("s2", tableS2)
	run("s3", tableS3)
	run("s4", tableS4)
	run("s5", sweep(experiment.U, "Table S5: experiment U (uniform)"))
	run("s6", sweep(experiment.C, "Table S6: experiment C (clustered)"))
	run("s7", sweep(experiment.D, "Table S7: experiment D (diagonal)"))
	run("fig6", figure6)
	run("s8", tableS8)
	run("s9", tableS9)
	run("s10", tableS10)
	run("s11", tableS11)
}

// runBench measures the bench trajectory and writes the JSON
// document.
func runBench(cfg experiment.Config, quick bool, out string) error {
	rep, err := experiment.RunBench(cfg, quick)
	if err != nil {
		return err
	}
	if out == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (schema %s)\n", out, experiment.BenchSchema)
	return nil
}

func tableS1(experiment.Config) error {
	rows := experiment.SpaceTable(8, experiment.PaperSpacePairs())
	fmt.Print(experiment.FormatSpaceTable(rows))
	return nil
}

func tableS2(cfg experiment.Config) error {
	samples := analysis.MeasureProximity(cfg.Grid(), []uint32{1, 2, 4, 8, 16, 32, 64, 128}, 32)
	fmt.Print(experiment.FormatProximityTable(samples))
	fmt.Printf("pages-per-block bound: %.2f (2d), %.2f (3d)\n",
		analysis.PagesPerBlock(2), analysis.PagesPerBlock(3))
	in2, err := experiment.Build(cfg, experiment.U)
	if err != nil {
		return err
	}
	row, err := in2.MeasurePagesPerBlock()
	if err != nil {
		return err
	}
	fmt.Printf("measured pages per block (uniform, %d blocks of side 2^%d): mean %.1f, max %d\n",
		row.Blocks, row.BlockBits, row.MeanPages, row.MaxPages)
	fmt.Println("ordering comparison (fraction of neighbor pairs staying within the neighborhood window):")
	fmt.Printf("%-8s %-10s %-11s %-8s\n", "dist", "z-order", "row-major", "snake")
	for _, dist := range []uint32{1, 4, 16, 64} {
		res := analysis.CompareOrderings(cfg.Grid(), dist, 64)
		fmt.Printf("%-8d %-10.2f %-11.2f %-8.2f\n",
			dist, res[analysis.ZOrder], res[analysis.RowMajor], res[analysis.Snake])
	}
	return nil
}

// tableS3: range-query page accesses vs the O(vN) leading term, for
// square queries across volumes.
func tableS3(cfg experiment.Config) error {
	in, err := experiment.Build(cfg, experiment.U)
	if err != nil {
		return err
	}
	var specs []workload.QuerySpec
	for _, v := range []float64{0.0025, 0.01, 0.04, 0.09, 0.16, 0.25} {
		specs = append(specs, workload.QuerySpec{Volume: v, Aspect: 1})
	}
	rows, err := in.RunSweep(specs)
	if err != nil {
		return err
	}
	fmt.Println("Table S3: range query pages vs O(vN) (Section 5.3.1)")
	fmt.Printf("%-10s %-10s %-8s %-12s %-14s\n", "volume", "avg-pages", "vN", "block-model", "pages/(vN)")
	for _, r := range rows {
		vn := in.Model.PredictPagesVolume(r.Spec.Volume)
		ratio := 0.0
		if vn > 0 {
			ratio = r.AvgPages / vn
		}
		fmt.Printf("%-10.4f %-10.1f %-8.1f %-12.1f %-14.2f\n",
			r.Spec.Volume, r.AvgPages, vn, r.PredictedPages, ratio)
	}
	fmt.Printf("N = %d data pages\n", in.Index.Tree().LeafPages())
	return nil
}

func tableS4(cfg experiment.Config) error {
	in2, err := experiment.Build(cfg, experiment.U)
	if err != nil {
		return err
	}
	rows, err := in2.RunPartialMatch([][]bool{{true, false}, {false, true}})
	if err != nil {
		return err
	}
	// A 3-d instance for t = 1, 2 of k = 3.
	cfg3 := cfg
	cfg3.Dims = 3
	if cfg3.GridBits > 10 {
		cfg3.GridBits = 10
	}
	in3, err := experiment.Build(cfg3, experiment.U)
	if err != nil {
		return err
	}
	rows3, err := in3.RunPartialMatch([][]bool{
		{true, false, false},
		{true, true, false},
	})
	if err != nil {
		return err
	}
	fmt.Print(experiment.FormatPartialTable(append(rows, rows3...)))
	return nil
}

func sweep(ds experiment.Dataset, title string) func(experiment.Config) error {
	return func(cfg experiment.Config) error {
		in, err := experiment.Build(cfg, ds)
		if err != nil {
			return err
		}
		rows, err := in.RunSweep(workload.PaperSpecs())
		if err != nil {
			return err
		}
		fmt.Print(experiment.FormatRows(title, rows))
		f := experiment.Summarize(rows)
		fmt.Printf("findings: shapeTrend=%v upperBound=%.0f%% efficiencyGrows=%v bestAspect=%g lowEffLowPages=%.0f%%\n",
			f.ShapeTrend, f.UpperBoundFrac*100, f.EfficiencyGrowsWithVolume, f.BestAspect, f.LowEffLowPagesFrac*100)
		return nil
	}
}

func figure6(cfg experiment.Config) error {
	for _, ds := range []experiment.Dataset{experiment.U, experiment.C, experiment.D} {
		in, err := experiment.Build(cfg, ds)
		if err != nil {
			return err
		}
		art, err := in.RenderPartition(72, 36)
		if err != nil {
			return err
		}
		fmt.Printf("Figure 6%c: %s\n", 'a'+int(ds), art)
	}
	return nil
}

func tableS8(cfg experiment.Config) error {
	fmt.Println("Table S8: zkd B+-tree vs kd tree vs grid file vs R-tree")
	for _, ds := range []experiment.Dataset{experiment.U, experiment.C, experiment.D} {
		in, err := experiment.Build(cfg, ds)
		if err != nil {
			return err
		}
		rows, err := in.RunKdComparison([]workload.QuerySpec{
			{Volume: 0.01, Aspect: 1},
			{Volume: 0.04, Aspect: 1},
			{Volume: 0.09, Aspect: 4},
			{Volume: 0.16, Aspect: 1},
		})
		if err != nil {
			return err
		}
		fmt.Printf("dataset %v (zkd pages N=%d, kd leaves N=%d, grid buckets N=%d, rtree leaves N=%d)\n",
			ds, rows[0].ZkdN, rows[0].KdN, rows[0].GridN, rows[0].RtreeN)
		fmt.Print(experiment.FormatKdTable(rows))
	}
	return nil
}

func tableS9(cfg experiment.Config) error {
	fmt.Println("Table S9: AG overlay (boundary cost) vs grid overlay (area cost)")
	fmt.Printf("%-4s %-10s %-12s %-12s %-12s %-12s\n",
		"d", "pixels", "elems(A+B)", "ag-time", "grid-time", "area(AandB)")
	maxD := 10
	if cfg.GridBits < 10 {
		maxD = cfg.GridBits
	}
	for d := 6; d <= maxD; d++ {
		g := zorder.MustGrid(2, d)
		s := float64(g.Side())
		pa := geom.MustPolygon(
			geom.Vertex{X: s * 0.1, Y: s * 0.15}, geom.Vertex{X: s * 0.8, Y: s * 0.1},
			geom.Vertex{X: s * 0.7, Y: s * 0.75}, geom.Vertex{X: s * 0.2, Y: s * 0.6},
		)
		pb := geom.MustPolygon(
			geom.Vertex{X: s * 0.4, Y: s * 0.3}, geom.Vertex{X: s * 0.95, Y: s * 0.45},
			geom.Vertex{X: s * 0.55, Y: s * 0.95},
		)
		ea, err := decompose.Object(g, pa, decompose.Options{})
		if err != nil {
			return err
		}
		eb, err := decompose.Object(g, pb, decompose.Options{})
		if err != nil {
			return err
		}
		t0 := time.Now()
		inter, err := overlay.Intersect(ea, eb)
		if err != nil {
			return err
		}
		agTime := time.Since(t0)
		t0 = time.Now()
		gridArea, err := overlay.GridIntersect(g, ea, eb)
		if err != nil {
			return err
		}
		gridTime := time.Since(t0)
		agArea := overlay.Area(g, inter)
		if agArea != gridArea {
			return fmt.Errorf("overlay algorithms disagree: %d vs %d", agArea, gridArea)
		}
		fmt.Printf("%-4d %-10d %-12d %-12v %-12v %-12d\n",
			d, g.Cells(), len(ea)+len(eb), agTime.Round(time.Microsecond),
			gridTime.Round(time.Microsecond), agArea)
	}
	return nil
}

func tableS10(cfg experiment.Config) error {
	fmt.Println("Table S10: connected component labelling, elements vs pixels")
	fmt.Printf("%-4s %-8s %-8s %-8s %-10s %-10s\n", "d", "elems", "comps", "pixels", "ag-time", "px-time")
	maxD := 9
	if cfg.GridBits < 9 {
		maxD = cfg.GridBits
	}
	for d := 5; d <= maxD; d++ {
		g := zorder.MustGrid(2, d)
		side := int(g.Side())
		// A deterministic blobby picture: several disks.
		var region []zorder.Element
		for i := 0; i < 8; i++ {
			cx := float64((i * 97) % side)
			cy := float64((i * 53) % side)
			r := float64(side) / float64(8+i)
			disk, err := geom.NewDisk([]float64{cx, cy}, r)
			if err != nil {
				return err
			}
			elems, err := decompose.Object(g, disk, decompose.Options{})
			if err != nil {
				return err
			}
			region, err = overlay.Union(region, elems)
			if err != nil {
				return err
			}
		}
		t0 := time.Now()
		res, err := conncomp.Label(g, region)
		if err != nil {
			return err
		}
		agTime := time.Since(t0)
		bm, err := overlay.GridRasterize(g, region)
		if err != nil {
			return err
		}
		t0 = time.Now()
		pxCount, _ := conncomp.PixelLabel(bm, side)
		pxTime := time.Since(t0)
		if res.Count() != pxCount {
			return fmt.Errorf("labelling algorithms disagree: %d vs %d", res.Count(), pxCount)
		}
		fmt.Printf("%-4d %-8d %-8d %-8d %-10v %-10v\n",
			d, len(region), res.Count(), side*side,
			agTime.Round(time.Microsecond), pxTime.Round(time.Microsecond))
	}
	return nil
}

func tableS11(cfg experiment.Config) error {
	g := zorder.MustGrid(2, 9)
	n := 120
	if cfg.N < 5000 {
		n = 40
	}
	var parts []interfere.Part
	for i := 0; i < n; i++ {
		cx := 20 + float64((i*337)%450)
		cy := 20 + float64((i*211)%450)
		r := 4 + float64(i%11)
		parts = append(parts, interfere.Part{
			ID: uint64(i + 1),
			Outline: geom.MustPolygon(
				geom.Vertex{X: cx - r, Y: cy - r},
				geom.Vertex{X: cx + r, Y: cy - r},
				geom.Vertex{X: cx, Y: cy + r},
			),
		})
	}
	fmt.Println("Table S11: CAD interference detection (Section 6)")
	fmt.Printf("%-8s %-10s %-12s %-11s %-10s\n", "maxLen", "elements", "candidates", "confirmed", "all-pairs")
	for _, maxLen := range []int{8, 12, 0} {
		pairs, stats, err := interfere.Detect(g, parts, maxLen)
		if err != nil {
			return err
		}
		baseline := interfere.DetectAllPairs(parts)
		if len(pairs) != len(baseline) {
			return fmt.Errorf("join-based detection disagrees with all-pairs: %d vs %d",
				len(pairs), len(baseline))
		}
		fmt.Printf("%-8d %-10d %-12d %-11d %-10d\n",
			maxLen, stats.Elements, stats.Candidates, stats.Confirmed, stats.AllPairs)
	}
	return nil
}

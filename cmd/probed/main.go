// Command probed serves a probe spatial database over TCP, speaking
// the wire protocol specified in docs/server.md. It is the network
// face of the library: sessions, admission control, per-request
// cancellation, and a graceful checkpoint-on-drain.
//
// Serve a durable database (created on first run, recovered after):
//
//	probed -db /var/lib/probe/db -addr :7331
//
// Seed a fresh store with uniform points and serve it:
//
//	probed -db /tmp/db -seed-n 100000
//
// SIGTERM or SIGINT drains the server: in-flight requests finish (or
// are cancelled after -drain), the store is checkpointed, and the
// process exits 0. A second signal forces immediate exit.
//
// Other modes:
//
//	probed -check -addr HOST:PORT
//	    Handshake with a running server, print its stats, exit.
//
//	probed -loadgen -addr HOST:PORT -conns 8 -duration 10s
//	    Drive a running server with a mixed workload and report
//	    throughput and latency percentiles.
//
//	probed -loadgen -selfhost -out BENCH_server.json
//	    Start a temporary server in-process, drive it, and write the
//	    probe-bench-server/v1 JSON document (the bench CI artifact).
//
//	probed -db DB -repl-listen :7431
//	    Additionally ship the physical WAL to read replicas (docs/cluster.md).
//
//	probed -db DB -replica-of PRIMARY:7431
//	    Run as a read-only replica following that primary.
//
//	probed -diff -addr SYS -against REF
//	    Run the differential battery: seed both servers identically,
//	    then compare seeded random statements between SYS (typically a
//	    zrouted coordinator) and REF (a single probed). With -degraded,
//	    typed shard-unavailable answers from SYS are tolerated and
//	    counted instead of failing — the cluster-smoke CI job uses this
//	    to prove partial degradation stays typed after a SIGKILL.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"probe"
	"probe/client"
	"probe/internal/battery"
	"probe/internal/experiment"
	"probe/internal/loadgen"
	"probe/internal/obs"
	"probe/internal/repl"
	"probe/internal/server"
	"probe/internal/workload"
)

// serveConfig gathers the serve-mode flags.
type serveConfig struct {
	addr, admin, dbPath     string
	dims, bits, pool, seedN int
	seed                    int64
	maxIn                   int
	drain                   time.Duration
	batch                   int
	slowQuery               time.Duration
	logEvery                int
	traceBuffer             int
	replListen              string // primary: serve WAL shipping here
	replicaOf               string // replica: follow this primary
}

func main() {
	var (
		addr    = flag.String("addr", ":7331", "listen address (serve) or server address (-check, -loadgen)")
		admin   = flag.String("admin", "", "admin HTTP address serving /metrics, /debug/pprof, /healthz, /readyz; empty disables")
		dbPath  = flag.String("db", "", "durable store path; empty serves an in-memory database")
		bits    = flag.Int("bits", 10, "grid resolution in bits per dimension (fresh stores)")
		dims    = flag.Int("dims", 2, "grid dimensions (fresh stores)")
		pool    = flag.Int("pool", 256, "buffer pool pages")
		seedN   = flag.Int("seed-n", 0, "seed a fresh store with this many uniform points")
		seed    = flag.Int64("seed", 1986, "seed for -seed-n and -loadgen")
		maxIn   = flag.Int("max-inflight", 16, "admission control: max concurrently executing requests")
		drain   = flag.Duration("drain", 5*time.Second, "graceful drain timeout on shutdown")
		batch   = flag.Int("batch", 512, "results per streamed batch frame")
		slowQ   = flag.Duration("slow-query", -1, "log requests at/above this latency at warn with their trace; 0 logs every request; negative disables")
		logEv   = flag.Int("log-requests", 0, "log every Nth request at info; 0 disables")
		trBuf   = flag.Int("trace-buffer", 64, "capacity of the /debug/traces ring of recent traced, slow, and sampled requests")
		replLn  = flag.String("repl-listen", "", "serve WAL-shipping replication on this address (requires -db); replicas point -replica-of here")
		replOf  = flag.String("replica-of", "", "run as a read replica of the primary's -repl-listen address (requires -db for the local page files)")
		check   = flag.Bool("check", false, "validate the serve configuration, then handshake with a running server and print stats")
		lg      = flag.Bool("loadgen", false, "drive a server with a mixed workload")
		selfGen = flag.Bool("selfhost", false, "with -loadgen: start a temporary in-process server to drive")
		cluster = flag.Bool("cluster", false, "with -loadgen: the target is a zrouted coordinator; skip transactions and write the probe-bench-cluster/v1 report (per-shard fan-out, merge overhead)")
		conns   = flag.Int("conns", 8, "loadgen: concurrent connections")
		dur     = flag.Duration("duration", 5*time.Second, "loadgen: run duration")
		out     = flag.String("out", "", "loadgen: write the probe-bench-server/v1 JSON report here")
		diff    = flag.Bool("diff", false, "differential battery: compare -addr (system under test, e.g. zrouted) against -against (single-node reference)")
		against = flag.String("against", "", "diff: address of the single-node reference server")
		diffN   = flag.Int("diff-n", 220, "diff: number of battery statements")
		diffPts = flag.Int("diff-points", 4000, "diff: seed this many identical points into both servers first; 0 skips seeding")
		degrade = flag.Bool("degraded", false, "diff: tolerate (and count) typed shard-unavailable answers from -addr instead of failing")
	)
	flag.Parse()

	cfg := serveConfig{
		addr: *addr, admin: *admin, dbPath: *dbPath,
		dims: *dims, bits: *bits, pool: *pool, seedN: *seedN,
		seed: *seed, maxIn: *maxIn, drain: *drain, batch: *batch,
		slowQuery: *slowQ, logEvery: *logEv, traceBuffer: *trBuf,
		replListen: *replLn, replicaOf: *replOf,
	}
	switch {
	case *check:
		if err := runCheck(cfg); err != nil {
			fatal(err)
		}
	case *diff:
		if err := runDiff(*addr, *against, *diffN, *diffPts, *seed, *degrade); err != nil {
			fatal(err)
		}
	case *lg:
		if err := runLoadgen(*addr, *selfGen, *cluster, *conns, *dur, *seed, *out); err != nil {
			fatal(err)
		}
	default:
		if err := serve(cfg); err != nil {
			fatal(err)
		}
	}
}

// validateServeConfig rejects serve configurations that would start
// and then misbehave: an admin endpoint colliding with the query
// listener, or logging thresholds outside their meaningful range.
func validateServeConfig(cfg serveConfig) error {
	if cfg.admin != "" {
		ahost, aport, err := net.SplitHostPort(cfg.admin)
		if err != nil {
			return fmt.Errorf("bad -admin address %q: %v", cfg.admin, err)
		}
		qhost, qport, err := net.SplitHostPort(cfg.addr)
		if err != nil {
			return fmt.Errorf("bad -addr address %q: %v", cfg.addr, err)
		}
		// A port shared with the query listener is a clash when either
		// side binds the wildcard or both name the same host.
		if aport == qport && (ahost == "" || qhost == "" || ahost == qhost) {
			return fmt.Errorf("-admin %s clashes with -addr %s: same port", cfg.admin, cfg.addr)
		}
	}
	if cfg.replListen != "" && cfg.dbPath == "" {
		return fmt.Errorf("-repl-listen requires -db: only a durable store ships its WAL")
	}
	if cfg.replicaOf != "" {
		if cfg.dbPath == "" {
			return fmt.Errorf("-replica-of requires -db: the replica keeps its page files at DB.a and DB.b")
		}
		if cfg.replListen != "" {
			return fmt.Errorf("-replica-of and -repl-listen are mutually exclusive: chained replication is not supported")
		}
		if cfg.seedN > 0 {
			return fmt.Errorf("-replica-of and -seed-n are mutually exclusive: a replica's data comes from its primary")
		}
	}
	if cfg.slowQuery > 24*time.Hour {
		return fmt.Errorf("-slow-query %s is not a plausible threshold (max 24h)", cfg.slowQuery)
	}
	if cfg.logEvery < 0 {
		return fmt.Errorf("-log-requests %d: the sample interval cannot be negative", cfg.logEvery)
	}
	return nil
}

// serverConfig maps the command line onto server.Config, including
// the slow-query flag convention: the flag's 0 means "log every
// request" (the config's negative), the flag's negative means
// disabled (the config's zero).
func serverConfig(cfg serveConfig) server.Config {
	sc := server.Config{
		MaxInflight:  cfg.maxIn,
		DrainTimeout: cfg.drain,
		BatchSize:    cfg.batch,
	}
	switch {
	case cfg.slowQuery == 0:
		sc.SlowQuery = -1
	case cfg.slowQuery > 0:
		sc.SlowQuery = cfg.slowQuery
	}
	sc.LogEvery = cfg.logEvery
	sc.TraceBuffer = cfg.traceBuffer
	if cfg.slowQuery >= 0 || cfg.logEvery > 0 {
		sc.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	return sc
}

// openDB opens (or creates and optionally seeds) the served database.
func openDB(dbPath string, dims, bits, pool, seedN int, seed int64) (*probe.DB, error) {
	g, err := probe.NewGrid(dims, bits)
	if err != nil {
		return nil, err
	}
	var opts []probe.Option
	opts = append(opts, probe.WithPoolPages(pool))
	fresh := true
	if dbPath != "" {
		if _, err := os.Stat(dbPath); err == nil {
			fresh = false
		}
		opts = append(opts, probe.WithDurability(dbPath))
	}
	db, err := probe.Open(g, opts...)
	if err != nil {
		return nil, err
	}
	if recovered, info := db.Recovered(); recovered {
		fmt.Printf("probed: recovered %s (%d pages replayed), %d points\n",
			dbPath, info.PagesRecovered, db.Len())
	}
	if fresh && seedN > 0 {
		if err := db.InsertAll(workload.Uniform(g, seedN, seed)); err != nil {
			db.Close()
			return nil, err
		}
		if _, err := db.Checkpoint(); err != nil {
			db.Close()
			return nil, err
		}
		fmt.Printf("probed: seeded %d uniform points\n", seedN)
	}
	return db, nil
}

func serve(cfg serveConfig) error {
	if err := validateServeConfig(cfg); err != nil {
		return err
	}
	sc := serverConfig(cfg)

	// Replica mode: the database comes from the primary, not from
	// openDB. The replica's lag gauges share the server's registry so
	// STATS exposes them (server.repl.caught_up) to the router's
	// health prober, and /readyz reports 503 while the replica lags.
	var (
		db        *probe.DB
		rep       *repl.Replica
		repCancel context.CancelFunc
	)
	if cfg.replicaOf != "" {
		sc.ReadOnly = true
		sc.Metrics = obs.NewRegistry()
		g, err := probe.NewGrid(cfg.dims, cfg.bits)
		if err != nil {
			return err
		}
		rep, err = repl.NewReplica(repl.ReplicaConfig{
			Primary:  cfg.replicaOf,
			Grid:     g,
			PathA:    cfg.dbPath + ".a",
			PathB:    cfg.dbPath + ".b",
			Registry: sc.Metrics,
			Logger:   sc.Logger,
			OpenOpts: []probe.Option{probe.WithPoolPages(cfg.pool)},
		})
		if err != nil {
			return err
		}
		var ctx context.Context
		ctx, repCancel = context.WithCancel(context.Background())
		defer repCancel()
		go rep.Run(ctx)
		fmt.Printf("probed: replica of %s: waiting for initial sync\n", cfg.replicaOf)
		wctx, wcancel := context.WithTimeout(ctx, 60*time.Second)
		db, err = rep.WaitReady(wctx)
		wcancel()
		if err != nil {
			rep.Close()
			return fmt.Errorf("replica initial sync: %w", err)
		}
	} else {
		var err error
		db, err = openDB(cfg.dbPath, cfg.dims, cfg.bits, cfg.pool, cfg.seedN, cfg.seed)
		if err != nil {
			return err
		}
	}

	srv := server.New(db, sc)
	if rep != nil {
		rep.SetSwap(srv.SwapDB)
		srv.SetReadyCheck(rep.ReadyErr)
	}

	// Primary mode: ship every checkpoint's WAL segment to subscribed
	// replicas on a dedicated listener.
	var prim *repl.Primary
	if cfg.replListen != "" {
		var err error
		prim, err = repl.NewPrimary(db, repl.PrimaryConfig{Logger: sc.Logger})
		if err != nil {
			db.Close()
			return err
		}
		rln, err := net.Listen("tcp", cfg.replListen)
		if err != nil {
			prim.Close()
			db.Close()
			return err
		}
		go prim.Serve(rln)
		fmt.Printf("probed: shipping WAL segments on %s\n", rln.Addr())
	}
	closeRepl := func() {
		if prim != nil {
			prim.Close()
		}
		if rep != nil {
			repCancel()
			rep.Close()
		}
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		closeRepl()
		db.Close()
		return err
	}
	mode := "serving"
	if rep != nil {
		mode = "serving (read-only replica)"
	}
	fmt.Printf("probed: %s %d points on %s (max-inflight %d)\n", mode, db.Len(), ln.Addr(), cfg.maxIn)

	// The admin endpoint outlives the query listener on purpose: it
	// keeps answering /readyz with 503 while the drain runs, so load
	// balancers see the drain instead of a vanished backend. It closes
	// only after Shutdown returns.
	var adminSrv *http.Server
	if cfg.admin != "" {
		aln, err := net.Listen("tcp", cfg.admin)
		if err != nil {
			ln.Close()
			db.Close()
			return err
		}
		adminSrv = &http.Server{Handler: srv.AdminHandler()}
		go adminSrv.Serve(aln)
		fmt.Printf("probed: admin endpoint on http://%s/metrics\n", aln.Addr())
	}
	closeAdmin := func() {
		if adminSrv != nil {
			adminSrv.Close()
		}
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		fmt.Printf("probed: %v: draining (timeout %s)\n", sig, cfg.drain)
		closeRepl() // stop shipping/applying before the final checkpoint
		done := make(chan error, 1)
		go func() { done <- srv.Shutdown(context.Background()) }()
		select {
		case err := <-done:
			closeAdmin()
			if err != nil {
				return fmt.Errorf("drain: %w", err)
			}
			fmt.Println("probed: drained, checkpointed, closed")
			return nil
		case sig := <-sigs:
			closeAdmin()
			return fmt.Errorf("%v during drain: exiting hard", sig)
		}
	case err := <-errCh:
		closeAdmin()
		closeRepl()
		srv.DB().Close() // the original db may have been swapped out
		return err
	}
}

func runCheck(cfg serveConfig) error {
	if err := validateServeConfig(cfg); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	fmt.Println("probed: serve configuration ok")
	cl, err := client.Dial(cfg.addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	fmt.Printf("probed: %s speaks protocol, grid bits %v\n", cfg.addr, cl.GridBits())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	stats, err := cl.Stats(ctx)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-48s %d\n", name, stats[name])
	}
	return nil
}

// runDiff is the CLI face of the differential battery: the same
// generator the in-process tests use (internal/battery), pointed at
// two live servers. The system under test is typically a zrouted
// coordinator and the reference a single probed; identical seeding
// plus identical statements must produce identical answers, which is
// the cluster's "indistinguishable from a single node" contract.
func runDiff(addr, against string, n, points int, seed int64, degraded bool) error {
	if against == "" {
		return fmt.Errorf("-diff requires -against ADDR (the single-node reference)")
	}
	sys, err := client.Dial(addr)
	if err != nil {
		return fmt.Errorf("system under test %s: %w", addr, err)
	}
	defer sys.Close()
	ref, err := client.Dial(against)
	if err != nil {
		return fmt.Errorf("reference %s: %w", against, err)
	}
	defer ref.Close()
	bits := sys.GridBits()
	if rb := ref.GridBits(); fmt.Sprint(rb) != fmt.Sprint(bits) {
		return fmt.Errorf("grid mismatch: %s serves %v, %s serves %v", addr, bits, against, rb)
	}
	ctx := context.Background()

	if points > 0 {
		for _, b := range bits[1:] {
			if b != bits[0] {
				return fmt.Errorf("diff seeding needs a uniform grid, got bits %v", bits)
			}
		}
		g, err := probe.NewGrid(len(bits), bits[0])
		if err != nil {
			return err
		}
		pts := workload.Uniform(g, points, seed)
		for lo := 0; lo < len(pts); lo += 500 {
			hi := min(lo+500, len(pts))
			if _, err := sys.Insert(ctx, pts[lo:hi]); err != nil {
				return fmt.Errorf("seeding %s: %w", addr, err)
			}
			if _, err := ref.Insert(ctx, pts[lo:hi]); err != nil {
				return fmt.Errorf("seeding %s: %w", against, err)
			}
		}
		// Checkpointing after the seed ships WAL segments to any read
		// replicas behind the coordinator, so they can catch up and
		// serve these rows during failover.
		if _, err := sys.Checkpoint(ctx); err != nil {
			return fmt.Errorf("checkpoint %s: %w", addr, err)
		}
		if _, err := ref.Checkpoint(ctx); err != nil {
			return fmt.Errorf("checkpoint %s: %w", against, err)
		}
		fmt.Printf("probed: diff seeded %d points into both servers\n", points)
	}

	matched, unavailable := 0, 0
	for i := 0; i < n; i++ {
		qseed := int64(1000 + i)
		sql, ordered := battery.GenQuery(rand.New(rand.NewSource(qseed)))
		want, werr := ref.Query(ctx, sql)
		if werr != nil {
			return fmt.Errorf("seed %d: reference error: %v\n  query: %s", qseed, werr, sql)
		}
		got, gerr := sys.Query(ctx, sql)
		if gerr != nil {
			if degraded && errors.Is(gerr, client.ErrUnavailable) {
				unavailable++
				continue
			}
			return fmt.Errorf("seed %d: system under test error: %v\n  query: %s", qseed, gerr, sql)
		}
		if d := battery.Diff(
			battery.Result{Columns: got.Columns, Rows: got.Rows},
			battery.Result{Columns: want.Columns, Rows: want.Rows},
			ordered,
		); d != "" {
			return fmt.Errorf("seed %d: %s vs %s %s\n  query: %s", qseed, addr, against, d, sql)
		}
		matched++
	}
	fmt.Printf("probed: diff %s vs %s: statements=%d matched=%d unavailable=%d\n",
		addr, against, n, matched, unavailable)
	return nil
}

// serverBenchSchema identifies the BENCH_server.json document.
const serverBenchSchema = "probe-bench-server/v1"

// perOpBench is one opcode's latency row in BENCH_server.json.
type perOpBench struct {
	Ops   int     `json:"ops"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// serverBenchReport is the loadgen trajectory document archived by
// the bench CI job alongside BENCH_spatial.json.
type serverBenchReport struct {
	Schema     string                `json:"schema"`
	Host       experiment.Host       `json:"host"`
	Conns      int                   `json:"conns"`
	DurationMS float64               `json:"duration_ms"`
	Seed       int64                 `json:"seed"`
	Ops        int                   `json:"ops"`
	Errors     int                   `json:"errors"`
	Overloaded int                   `json:"overloaded"`
	Conflicts  int                   `json:"conflicts"`
	QPS        float64               `json:"qps"`
	P50MS      float64               `json:"p50_ms"`
	P95MS      float64               `json:"p95_ms"`
	P99MS      float64               `json:"p99_ms"`
	PerOp      map[string]perOpBench `json:"per_op"`
}

// ms renders a duration as fractional milliseconds for the report.
func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1e3
}

// clusterBenchSchema identifies the BENCH_cluster.json document.
const clusterBenchSchema = "probe-bench-cluster/v1"

// shardFanout is one shard's scatter accounting in BENCH_cluster.json:
// how many backend calls the router fanned to it and the latency
// distribution of those calls.
type shardFanout struct {
	Calls int64   `json:"calls"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// clusterBenchReport is the loadgen-through-zrouted document archived
// by the cluster-smoke CI job: the client-visible trajectory plus the
// router's own accounting of where the work went and what the z-order
// merge cost on top.
type clusterBenchReport struct {
	Schema     string                 `json:"schema"`
	Host       experiment.Host        `json:"host"`
	Conns      int                    `json:"conns"`
	DurationMS float64                `json:"duration_ms"`
	Seed       int64                  `json:"seed"`
	Ops        int                    `json:"ops"`
	Errors     int                    `json:"errors"`
	Overloaded int                    `json:"overloaded"`
	QPS        float64                `json:"qps"`
	P50MS      float64                `json:"p50_ms"`
	P95MS      float64                `json:"p95_ms"`
	P99MS      float64                `json:"p99_ms"`
	PerOp      map[string]perOpBench  `json:"per_op"`
	Fanout     map[string]shardFanout `json:"fanout_per_shard"`
	MergeCount int64                  `json:"merge_count"`
	MergeP50MS float64                `json:"merge_p50_ms"`
	MergeP95MS float64                `json:"merge_p95_ms"`
	MergeP99MS float64                `json:"merge_p99_ms"`
}

// nsToMS renders a nanosecond stat count as fractional milliseconds.
func nsToMS(ns int64) float64 { return float64(ns) / 1e6 }

// routerStats pulls the router's STATS map (router.* keys) from the
// coordinator the load run just drove.
func routerStats(addr string) (map[string]int64, error) {
	cl, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return cl.Stats(ctx)
}

func runLoadgen(addr string, selfhost, cluster bool, conns int, dur time.Duration, seed int64, out string) error {
	if cluster && selfhost {
		return fmt.Errorf("-cluster drives a running zrouted; it cannot be combined with -selfhost")
	}
	if selfhost {
		dir, err := os.MkdirTemp("", "probed-loadgen")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		db, err := openDB(filepath.Join(dir, "db"), 2, 10, 256, 50000, seed)
		if err != nil {
			return err
		}
		srv := server.New(db, server.Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			db.Close()
			return err
		}
		go srv.Serve(ln)
		defer srv.Shutdown(context.Background())
		addr = ln.Addr().String()
		fmt.Printf("probed: self-hosted server on %s (50000 points)\n", addr)
	}

	rep, err := loadgen.Run(loadgen.Config{
		Addr: addr, Conns: conns, Duration: dur, Seed: seed,
		Metrics: obs.NewRegistry(), Cluster: cluster,
	})
	if err != nil {
		return err
	}
	fmt.Println("loadgen:", rep)
	for _, kind := range sortedOpKinds(rep.PerOp) {
		st := rep.PerOp[kind]
		fmt.Printf("loadgen: %-8s ops=%-7d p50=%s p95=%s p99=%s\n", kind, st.Ops, st.P50, st.P95, st.P99)
	}

	if cluster {
		return writeClusterReport(addr, rep, conns, seed, out)
	}
	if out != "" {
		doc := serverBenchReport{
			Schema:     serverBenchSchema,
			Host:       experiment.CurrentHost(),
			Conns:      rep.Conns,
			DurationMS: float64(rep.Elapsed.Microseconds()) / 1e3,
			Seed:       seed,
			Ops:        rep.Ops,
			Errors:     rep.Errors,
			Overloaded: rep.Overloaded,
			Conflicts:  rep.Conflicts,
			QPS:        rep.QPS,
			P50MS:      ms(rep.P50),
			P95MS:      ms(rep.P95),
			P99MS:      ms(rep.P99),
			PerOp:      make(map[string]perOpBench, len(rep.PerOp)),
		}
		for kind, st := range rep.PerOp {
			doc.PerOp[kind] = perOpBench{
				Ops: st.Ops, P50MS: ms(st.P50), P95MS: ms(st.P95), P99MS: ms(st.P99),
			}
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("probed: wrote %s\n", out)
	}
	return nil
}

// writeClusterReport renders a -cluster run: the load report plus the
// router's per-shard fan-out counts and merge-overhead histogram,
// pulled over the wire from the coordinator that was just driven.
func writeClusterReport(addr string, rep loadgen.Report, conns int, seed int64, out string) error {
	stats, err := routerStats(addr)
	if err != nil {
		return fmt.Errorf("router stats: %w", err)
	}
	fanout := make(map[string]shardFanout)
	for i := 0; ; i++ {
		callsKey := fmt.Sprintf("router.fanout.shard%d.calls", i)
		calls, ok := stats[callsKey]
		if !ok {
			break
		}
		ns := fmt.Sprintf("router.fanout.shard%d.ns", i)
		fanout[fmt.Sprintf("shard%d", i)] = shardFanout{
			Calls: calls,
			P50MS: nsToMS(stats[ns+".p50"]),
			P95MS: nsToMS(stats[ns+".p95"]),
			P99MS: nsToMS(stats[ns+".p99"]),
		}
	}
	shards := make([]string, 0, len(fanout))
	for shard := range fanout {
		shards = append(shards, shard)
	}
	sort.Strings(shards)
	for _, shard := range shards {
		fmt.Printf("loadgen: %-8s calls=%-7d p50=%.3fms p95=%.3fms p99=%.3fms\n",
			shard, fanout[shard].Calls, fanout[shard].P50MS, fanout[shard].P95MS, fanout[shard].P99MS)
	}
	fmt.Printf("loadgen: merge    count=%-6d p50=%.3fms p95=%.3fms p99=%.3fms\n",
		stats["router.merge.ns.count"], nsToMS(stats["router.merge.ns.p50"]),
		nsToMS(stats["router.merge.ns.p95"]), nsToMS(stats["router.merge.ns.p99"]))
	if out == "" {
		return nil
	}
	doc := clusterBenchReport{
		Schema:     clusterBenchSchema,
		Host:       experiment.CurrentHost(),
		Conns:      rep.Conns,
		DurationMS: float64(rep.Elapsed.Microseconds()) / 1e3,
		Seed:       seed,
		Ops:        rep.Ops,
		Errors:     rep.Errors,
		Overloaded: rep.Overloaded,
		QPS:        rep.QPS,
		P50MS:      ms(rep.P50),
		P95MS:      ms(rep.P95),
		P99MS:      ms(rep.P99),
		PerOp:      make(map[string]perOpBench, len(rep.PerOp)),
		Fanout:     fanout,
		MergeCount: stats["router.merge.ns.count"],
		MergeP50MS: nsToMS(stats["router.merge.ns.p50"]),
		MergeP95MS: nsToMS(stats["router.merge.ns.p95"]),
		MergeP99MS: nsToMS(stats["router.merge.ns.p99"]),
	}
	for kind, st := range rep.PerOp {
		doc.PerOp[kind] = perOpBench{
			Ops: st.Ops, P50MS: ms(st.P50), P95MS: ms(st.P95), P99MS: ms(st.P99),
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("probed: wrote %s\n", out)
	return nil
}

// sortedOpKinds orders the per-op breakdown for stable output.
func sortedOpKinds(perOp map[string]loadgen.OpStats) []string {
	kinds := make([]string, 0, len(perOp))
	for k := range perOp {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "probed: %v\n", err)
	os.Exit(1)
}

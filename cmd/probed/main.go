// Command probed serves a probe spatial database over TCP, speaking
// the wire protocol specified in docs/server.md. It is the network
// face of the library: sessions, admission control, per-request
// cancellation, and a graceful checkpoint-on-drain.
//
// Serve a durable database (created on first run, recovered after):
//
//	probed -db /var/lib/probe/db -addr :7331
//
// Seed a fresh store with uniform points and serve it:
//
//	probed -db /tmp/db -seed-n 100000
//
// SIGTERM or SIGINT drains the server: in-flight requests finish (or
// are cancelled after -drain), the store is checkpointed, and the
// process exits 0. A second signal forces immediate exit.
//
// Other modes:
//
//	probed -check -addr HOST:PORT
//	    Handshake with a running server, print its stats, exit.
//
//	probed -loadgen -addr HOST:PORT -conns 8 -duration 10s
//	    Drive a running server with a mixed workload and report
//	    throughput and latency percentiles.
//
//	probed -loadgen -selfhost -out BENCH_server.json
//	    Start a temporary server in-process, drive it, and write the
//	    probe-bench-server/v1 JSON document (the bench CI artifact).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"probe"
	"probe/client"
	"probe/internal/experiment"
	"probe/internal/loadgen"
	"probe/internal/server"
	"probe/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":7331", "listen address (serve) or server address (-check, -loadgen)")
		dbPath  = flag.String("db", "", "durable store path; empty serves an in-memory database")
		bits    = flag.Int("bits", 10, "grid resolution in bits per dimension (fresh stores)")
		dims    = flag.Int("dims", 2, "grid dimensions (fresh stores)")
		pool    = flag.Int("pool", 256, "buffer pool pages")
		seedN   = flag.Int("seed-n", 0, "seed a fresh store with this many uniform points")
		seed    = flag.Int64("seed", 1986, "seed for -seed-n and -loadgen")
		maxIn   = flag.Int("max-inflight", 16, "admission control: max concurrently executing requests")
		drain   = flag.Duration("drain", 5*time.Second, "graceful drain timeout on shutdown")
		batch   = flag.Int("batch", 512, "results per streamed batch frame")
		check   = flag.Bool("check", false, "handshake with a running server, print stats, exit")
		lg      = flag.Bool("loadgen", false, "drive a server with a mixed workload")
		selfGen = flag.Bool("selfhost", false, "with -loadgen: start a temporary in-process server to drive")
		conns   = flag.Int("conns", 8, "loadgen: concurrent connections")
		dur     = flag.Duration("duration", 5*time.Second, "loadgen: run duration")
		out     = flag.String("out", "", "loadgen: write the probe-bench-server/v1 JSON report here")
	)
	flag.Parse()

	switch {
	case *check:
		if err := runCheck(*addr); err != nil {
			fatal(err)
		}
	case *lg:
		if err := runLoadgen(*addr, *selfGen, *conns, *dur, *seed, *out); err != nil {
			fatal(err)
		}
	default:
		if err := serve(*addr, *dbPath, *dims, *bits, *pool, *seedN, *seed, *maxIn, *drain, *batch); err != nil {
			fatal(err)
		}
	}
}

// openDB opens (or creates and optionally seeds) the served database.
func openDB(dbPath string, dims, bits, pool, seedN int, seed int64) (*probe.DB, error) {
	g, err := probe.NewGrid(dims, bits)
	if err != nil {
		return nil, err
	}
	var opts []probe.Option
	opts = append(opts, probe.WithPoolPages(pool))
	fresh := true
	if dbPath != "" {
		if _, err := os.Stat(dbPath); err == nil {
			fresh = false
		}
		opts = append(opts, probe.WithDurability(dbPath))
	}
	db, err := probe.Open(g, opts...)
	if err != nil {
		return nil, err
	}
	if recovered, info := db.Recovered(); recovered {
		fmt.Printf("probed: recovered %s (%d pages replayed), %d points\n",
			dbPath, info.PagesRecovered, db.Len())
	}
	if fresh && seedN > 0 {
		if err := db.InsertAll(workload.Uniform(g, seedN, seed)); err != nil {
			db.Close()
			return nil, err
		}
		if _, err := db.Checkpoint(); err != nil {
			db.Close()
			return nil, err
		}
		fmt.Printf("probed: seeded %d uniform points\n", seedN)
	}
	return db, nil
}

func serve(addr, dbPath string, dims, bits, pool, seedN int, seed int64, maxIn int, drain time.Duration, batch int) error {
	db, err := openDB(dbPath, dims, bits, pool, seedN, seed)
	if err != nil {
		return err
	}
	srv := server.New(db, server.Config{
		MaxInflight:  maxIn,
		DrainTimeout: drain,
		BatchSize:    batch,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		db.Close()
		return err
	}
	fmt.Printf("probed: serving %d points on %s (max-inflight %d)\n", db.Len(), ln.Addr(), maxIn)

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		fmt.Printf("probed: %v: draining (timeout %s)\n", sig, drain)
		done := make(chan error, 1)
		go func() { done <- srv.Shutdown(context.Background()) }()
		select {
		case err := <-done:
			if err != nil {
				return fmt.Errorf("drain: %w", err)
			}
			fmt.Println("probed: drained, checkpointed, closed")
			return nil
		case sig := <-sigs:
			return fmt.Errorf("%v during drain: exiting hard", sig)
		}
	case err := <-errCh:
		db.Close()
		return err
	}
}

func runCheck(addr string) error {
	cl, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	fmt.Printf("probed: %s speaks protocol, grid bits %v\n", addr, cl.GridBits())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	stats, err := cl.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Println(stats)
	return nil
}

// serverBenchSchema identifies the BENCH_server.json document.
const serverBenchSchema = "probe-bench-server/v1"

// serverBenchReport is the loadgen trajectory document archived by
// the bench CI job alongside BENCH_spatial.json.
type serverBenchReport struct {
	Schema     string          `json:"schema"`
	Host       experiment.Host `json:"host"`
	Conns      int             `json:"conns"`
	DurationMS float64         `json:"duration_ms"`
	Seed       int64           `json:"seed"`
	Ops        int             `json:"ops"`
	Errors     int             `json:"errors"`
	Overloaded int             `json:"overloaded"`
	QPS        float64         `json:"qps"`
	P50MS      float64         `json:"p50_ms"`
	P95MS      float64         `json:"p95_ms"`
	P99MS      float64         `json:"p99_ms"`
}

func runLoadgen(addr string, selfhost bool, conns int, dur time.Duration, seed int64, out string) error {
	if selfhost {
		dir, err := os.MkdirTemp("", "probed-loadgen")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		db, err := openDB(filepath.Join(dir, "db"), 2, 10, 256, 50000, seed)
		if err != nil {
			return err
		}
		srv := server.New(db, server.Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			db.Close()
			return err
		}
		go srv.Serve(ln)
		defer srv.Shutdown(context.Background())
		addr = ln.Addr().String()
		fmt.Printf("probed: self-hosted server on %s (50000 points)\n", addr)
	}

	rep, err := loadgen.Run(loadgen.Config{
		Addr: addr, Conns: conns, Duration: dur, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Println("loadgen:", rep)

	if out != "" {
		doc := serverBenchReport{
			Schema:     serverBenchSchema,
			Host:       experiment.CurrentHost(),
			Conns:      rep.Conns,
			DurationMS: float64(rep.Elapsed.Microseconds()) / 1e3,
			Seed:       seed,
			Ops:        rep.Ops,
			Errors:     rep.Errors,
			Overloaded: rep.Overloaded,
			QPS:        rep.QPS,
			P50MS:      float64(rep.P50.Microseconds()) / 1e3,
			P95MS:      float64(rep.P95.Microseconds()) / 1e3,
			P99MS:      float64(rep.P99.Microseconds()) / 1e3,
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("probed: wrote %s\n", out)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "probed: %v\n", err)
	os.Exit(1)
}

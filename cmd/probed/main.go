// Command probed serves a probe spatial database over TCP, speaking
// the wire protocol specified in docs/server.md. It is the network
// face of the library: sessions, admission control, per-request
// cancellation, and a graceful checkpoint-on-drain.
//
// Serve a durable database (created on first run, recovered after):
//
//	probed -db /var/lib/probe/db -addr :7331
//
// Seed a fresh store with uniform points and serve it:
//
//	probed -db /tmp/db -seed-n 100000
//
// SIGTERM or SIGINT drains the server: in-flight requests finish (or
// are cancelled after -drain), the store is checkpointed, and the
// process exits 0. A second signal forces immediate exit.
//
// Other modes:
//
//	probed -check -addr HOST:PORT
//	    Handshake with a running server, print its stats, exit.
//
//	probed -loadgen -addr HOST:PORT -conns 8 -duration 10s
//	    Drive a running server with a mixed workload and report
//	    throughput and latency percentiles.
//
//	probed -loadgen -selfhost -out BENCH_server.json
//	    Start a temporary server in-process, drive it, and write the
//	    probe-bench-server/v1 JSON document (the bench CI artifact).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"probe"
	"probe/client"
	"probe/internal/experiment"
	"probe/internal/loadgen"
	"probe/internal/obs"
	"probe/internal/server"
	"probe/internal/workload"
)

// serveConfig gathers the serve-mode flags.
type serveConfig struct {
	addr, admin, dbPath     string
	dims, bits, pool, seedN int
	seed                    int64
	maxIn                   int
	drain                   time.Duration
	batch                   int
	slowQuery               time.Duration
	logEvery                int
}

func main() {
	var (
		addr    = flag.String("addr", ":7331", "listen address (serve) or server address (-check, -loadgen)")
		admin   = flag.String("admin", "", "admin HTTP address serving /metrics, /debug/pprof, /healthz, /readyz; empty disables")
		dbPath  = flag.String("db", "", "durable store path; empty serves an in-memory database")
		bits    = flag.Int("bits", 10, "grid resolution in bits per dimension (fresh stores)")
		dims    = flag.Int("dims", 2, "grid dimensions (fresh stores)")
		pool    = flag.Int("pool", 256, "buffer pool pages")
		seedN   = flag.Int("seed-n", 0, "seed a fresh store with this many uniform points")
		seed    = flag.Int64("seed", 1986, "seed for -seed-n and -loadgen")
		maxIn   = flag.Int("max-inflight", 16, "admission control: max concurrently executing requests")
		drain   = flag.Duration("drain", 5*time.Second, "graceful drain timeout on shutdown")
		batch   = flag.Int("batch", 512, "results per streamed batch frame")
		slowQ   = flag.Duration("slow-query", -1, "log requests at/above this latency at warn with their trace; 0 logs every request; negative disables")
		logEv   = flag.Int("log-requests", 0, "log every Nth request at info; 0 disables")
		check   = flag.Bool("check", false, "validate the serve configuration, then handshake with a running server and print stats")
		lg      = flag.Bool("loadgen", false, "drive a server with a mixed workload")
		selfGen = flag.Bool("selfhost", false, "with -loadgen: start a temporary in-process server to drive")
		conns   = flag.Int("conns", 8, "loadgen: concurrent connections")
		dur     = flag.Duration("duration", 5*time.Second, "loadgen: run duration")
		out     = flag.String("out", "", "loadgen: write the probe-bench-server/v1 JSON report here")
	)
	flag.Parse()

	cfg := serveConfig{
		addr: *addr, admin: *admin, dbPath: *dbPath,
		dims: *dims, bits: *bits, pool: *pool, seedN: *seedN,
		seed: *seed, maxIn: *maxIn, drain: *drain, batch: *batch,
		slowQuery: *slowQ, logEvery: *logEv,
	}
	switch {
	case *check:
		if err := runCheck(cfg); err != nil {
			fatal(err)
		}
	case *lg:
		if err := runLoadgen(*addr, *selfGen, *conns, *dur, *seed, *out); err != nil {
			fatal(err)
		}
	default:
		if err := serve(cfg); err != nil {
			fatal(err)
		}
	}
}

// validateServeConfig rejects serve configurations that would start
// and then misbehave: an admin endpoint colliding with the query
// listener, or logging thresholds outside their meaningful range.
func validateServeConfig(cfg serveConfig) error {
	if cfg.admin != "" {
		ahost, aport, err := net.SplitHostPort(cfg.admin)
		if err != nil {
			return fmt.Errorf("bad -admin address %q: %v", cfg.admin, err)
		}
		qhost, qport, err := net.SplitHostPort(cfg.addr)
		if err != nil {
			return fmt.Errorf("bad -addr address %q: %v", cfg.addr, err)
		}
		// A port shared with the query listener is a clash when either
		// side binds the wildcard or both name the same host.
		if aport == qport && (ahost == "" || qhost == "" || ahost == qhost) {
			return fmt.Errorf("-admin %s clashes with -addr %s: same port", cfg.admin, cfg.addr)
		}
	}
	if cfg.slowQuery > 24*time.Hour {
		return fmt.Errorf("-slow-query %s is not a plausible threshold (max 24h)", cfg.slowQuery)
	}
	if cfg.logEvery < 0 {
		return fmt.Errorf("-log-requests %d: the sample interval cannot be negative", cfg.logEvery)
	}
	return nil
}

// serverConfig maps the command line onto server.Config, including
// the slow-query flag convention: the flag's 0 means "log every
// request" (the config's negative), the flag's negative means
// disabled (the config's zero).
func serverConfig(cfg serveConfig) server.Config {
	sc := server.Config{
		MaxInflight:  cfg.maxIn,
		DrainTimeout: cfg.drain,
		BatchSize:    cfg.batch,
	}
	switch {
	case cfg.slowQuery == 0:
		sc.SlowQuery = -1
	case cfg.slowQuery > 0:
		sc.SlowQuery = cfg.slowQuery
	}
	sc.LogEvery = cfg.logEvery
	if cfg.slowQuery >= 0 || cfg.logEvery > 0 {
		sc.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	return sc
}

// openDB opens (or creates and optionally seeds) the served database.
func openDB(dbPath string, dims, bits, pool, seedN int, seed int64) (*probe.DB, error) {
	g, err := probe.NewGrid(dims, bits)
	if err != nil {
		return nil, err
	}
	var opts []probe.Option
	opts = append(opts, probe.WithPoolPages(pool))
	fresh := true
	if dbPath != "" {
		if _, err := os.Stat(dbPath); err == nil {
			fresh = false
		}
		opts = append(opts, probe.WithDurability(dbPath))
	}
	db, err := probe.Open(g, opts...)
	if err != nil {
		return nil, err
	}
	if recovered, info := db.Recovered(); recovered {
		fmt.Printf("probed: recovered %s (%d pages replayed), %d points\n",
			dbPath, info.PagesRecovered, db.Len())
	}
	if fresh && seedN > 0 {
		if err := db.InsertAll(workload.Uniform(g, seedN, seed)); err != nil {
			db.Close()
			return nil, err
		}
		if _, err := db.Checkpoint(); err != nil {
			db.Close()
			return nil, err
		}
		fmt.Printf("probed: seeded %d uniform points\n", seedN)
	}
	return db, nil
}

func serve(cfg serveConfig) error {
	if err := validateServeConfig(cfg); err != nil {
		return err
	}
	db, err := openDB(cfg.dbPath, cfg.dims, cfg.bits, cfg.pool, cfg.seedN, cfg.seed)
	if err != nil {
		return err
	}
	srv := server.New(db, serverConfig(cfg))
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		db.Close()
		return err
	}
	fmt.Printf("probed: serving %d points on %s (max-inflight %d)\n", db.Len(), ln.Addr(), cfg.maxIn)

	// The admin endpoint outlives the query listener on purpose: it
	// keeps answering /readyz with 503 while the drain runs, so load
	// balancers see the drain instead of a vanished backend. It closes
	// only after Shutdown returns.
	var adminSrv *http.Server
	if cfg.admin != "" {
		aln, err := net.Listen("tcp", cfg.admin)
		if err != nil {
			ln.Close()
			db.Close()
			return err
		}
		adminSrv = &http.Server{Handler: srv.AdminHandler()}
		go adminSrv.Serve(aln)
		fmt.Printf("probed: admin endpoint on http://%s/metrics\n", aln.Addr())
	}
	closeAdmin := func() {
		if adminSrv != nil {
			adminSrv.Close()
		}
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		fmt.Printf("probed: %v: draining (timeout %s)\n", sig, cfg.drain)
		done := make(chan error, 1)
		go func() { done <- srv.Shutdown(context.Background()) }()
		select {
		case err := <-done:
			closeAdmin()
			if err != nil {
				return fmt.Errorf("drain: %w", err)
			}
			fmt.Println("probed: drained, checkpointed, closed")
			return nil
		case sig := <-sigs:
			closeAdmin()
			return fmt.Errorf("%v during drain: exiting hard", sig)
		}
	case err := <-errCh:
		closeAdmin()
		db.Close()
		return err
	}
}

func runCheck(cfg serveConfig) error {
	if err := validateServeConfig(cfg); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	fmt.Println("probed: serve configuration ok")
	cl, err := client.Dial(cfg.addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	fmt.Printf("probed: %s speaks protocol, grid bits %v\n", cfg.addr, cl.GridBits())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	stats, err := cl.Stats(ctx)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-48s %d\n", name, stats[name])
	}
	return nil
}

// serverBenchSchema identifies the BENCH_server.json document.
const serverBenchSchema = "probe-bench-server/v1"

// perOpBench is one opcode's latency row in BENCH_server.json.
type perOpBench struct {
	Ops   int     `json:"ops"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// serverBenchReport is the loadgen trajectory document archived by
// the bench CI job alongside BENCH_spatial.json.
type serverBenchReport struct {
	Schema     string                `json:"schema"`
	Host       experiment.Host       `json:"host"`
	Conns      int                   `json:"conns"`
	DurationMS float64               `json:"duration_ms"`
	Seed       int64                 `json:"seed"`
	Ops        int                   `json:"ops"`
	Errors     int                   `json:"errors"`
	Overloaded int                   `json:"overloaded"`
	Conflicts  int                   `json:"conflicts"`
	QPS        float64               `json:"qps"`
	P50MS      float64               `json:"p50_ms"`
	P95MS      float64               `json:"p95_ms"`
	P99MS      float64               `json:"p99_ms"`
	PerOp      map[string]perOpBench `json:"per_op"`
}

// ms renders a duration as fractional milliseconds for the report.
func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1e3
}

func runLoadgen(addr string, selfhost bool, conns int, dur time.Duration, seed int64, out string) error {
	if selfhost {
		dir, err := os.MkdirTemp("", "probed-loadgen")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		db, err := openDB(filepath.Join(dir, "db"), 2, 10, 256, 50000, seed)
		if err != nil {
			return err
		}
		srv := server.New(db, server.Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			db.Close()
			return err
		}
		go srv.Serve(ln)
		defer srv.Shutdown(context.Background())
		addr = ln.Addr().String()
		fmt.Printf("probed: self-hosted server on %s (50000 points)\n", addr)
	}

	rep, err := loadgen.Run(loadgen.Config{
		Addr: addr, Conns: conns, Duration: dur, Seed: seed,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		return err
	}
	fmt.Println("loadgen:", rep)
	for _, kind := range sortedOpKinds(rep.PerOp) {
		st := rep.PerOp[kind]
		fmt.Printf("loadgen: %-8s ops=%-7d p50=%s p95=%s p99=%s\n", kind, st.Ops, st.P50, st.P95, st.P99)
	}

	if out != "" {
		doc := serverBenchReport{
			Schema:     serverBenchSchema,
			Host:       experiment.CurrentHost(),
			Conns:      rep.Conns,
			DurationMS: float64(rep.Elapsed.Microseconds()) / 1e3,
			Seed:       seed,
			Ops:        rep.Ops,
			Errors:     rep.Errors,
			Overloaded: rep.Overloaded,
			Conflicts:  rep.Conflicts,
			QPS:        rep.QPS,
			P50MS:      ms(rep.P50),
			P95MS:      ms(rep.P95),
			P99MS:      ms(rep.P99),
			PerOp:      make(map[string]perOpBench, len(rep.PerOp)),
		}
		for kind, st := range rep.PerOp {
			doc.PerOp[kind] = perOpBench{
				Ops: st.Ops, P50MS: ms(st.P50), P95MS: ms(st.P95), P99MS: ms(st.P99),
			}
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("probed: wrote %s\n", out)
	}
	return nil
}

// sortedOpKinds orders the per-op breakdown for stable output.
func sortedOpKinds(perOp map[string]loadgen.OpStats) []string {
	kinds := make([]string, 0, len(perOp))
	for k := range perOp {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "probed: %v\n", err)
	os.Exit(1)
}

package main

import (
	"testing"
	"time"
)

func TestValidateServeConfig(t *testing.T) {
	cases := []struct {
		name   string
		cfg    serveConfig
		wantOK bool
	}{
		{"defaults", serveConfig{addr: ":7331", slowQuery: -1}, true},
		{"admin on its own port", serveConfig{addr: ":7331", admin: ":9090", slowQuery: -1}, true},
		{"admin clashes wildcard", serveConfig{addr: ":7331", admin: ":7331", slowQuery: -1}, false},
		{"admin clashes same host", serveConfig{addr: "127.0.0.1:7331", admin: "127.0.0.1:7331", slowQuery: -1}, false},
		{"admin wildcard vs host, same port", serveConfig{addr: "127.0.0.1:7331", admin: ":7331", slowQuery: -1}, false},
		{"same port distinct hosts", serveConfig{addr: "127.0.0.1:7331", admin: "127.0.0.2:7331", slowQuery: -1}, true},
		{"admin missing port", serveConfig{addr: ":7331", admin: "localhost", slowQuery: -1}, false},
		{"addr unparseable with admin set", serveConfig{addr: "garbage", admin: ":9090", slowQuery: -1}, false},
		{"slow-query zero means log everything", serveConfig{addr: ":7331", slowQuery: 0}, true},
		{"slow-query implausibly large", serveConfig{addr: ":7331", slowQuery: 25 * time.Hour}, false},
		{"log-requests negative", serveConfig{addr: ":7331", slowQuery: -1, logEvery: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateServeConfig(tc.cfg)
			if (err == nil) != tc.wantOK {
				t.Fatalf("validateServeConfig(%+v) = %v, want ok=%v", tc.cfg, err, tc.wantOK)
			}
		})
	}
}

// TestServerConfigMapping pins the flag-to-config convention for
// -slow-query: flag 0 = log every request (config negative), flag
// negative = disabled (config zero), flag positive = threshold.
func TestServerConfigMapping(t *testing.T) {
	if sc := serverConfig(serveConfig{slowQuery: -1}); sc.SlowQuery != 0 || sc.Logger != nil {
		t.Fatalf("disabled: SlowQuery=%v Logger=%v", sc.SlowQuery, sc.Logger)
	}
	if sc := serverConfig(serveConfig{slowQuery: 0}); sc.SlowQuery >= 0 || sc.Logger == nil {
		t.Fatalf("log-everything: SlowQuery=%v Logger=%v", sc.SlowQuery, sc.Logger)
	}
	if sc := serverConfig(serveConfig{slowQuery: 50 * time.Millisecond}); sc.SlowQuery != 50*time.Millisecond || sc.Logger == nil {
		t.Fatalf("threshold: SlowQuery=%v Logger=%v", sc.SlowQuery, sc.Logger)
	}
	if sc := serverConfig(serveConfig{slowQuery: -1, logEvery: 100}); sc.LogEvery != 100 || sc.Logger == nil {
		t.Fatalf("sampled logging alone must still build a logger: %+v", sc)
	}
}

// Command zquery builds a z-ordered spatial index over generated or
// CSV points and runs range or partial-match queries against it,
// printing results and page-access statistics. With -addr it instead
// speaks to a running probed server, executing the query remotely.
//
// Usage:
//
//	zquery [flags] XLO XHI YLO YHI
//	zquery [flags] -partial x=VALUE
//	zquery [flags] -e "SELECT ..." | -repl
//	zquery -addr HOST:PORT [-trace] [-nearest X,Y,M | -explain | -stats | -checkpoint] [XLO XHI YLO YHI]
//	zquery -addr HOST:PORT -e "SELECT ..." | -repl
//
// Examples:
//
//	zquery -n 5000 -dist uniform 100 300 50 180
//	zquery -points pts.csv -strategy bigmin 0 1023 0 1023
//	zquery -n 5000 -partial x=17
//	zquery -n 5000 -e "SELECT COUNT(*) FROM points WHERE CONTAINS(BOX(0,511,0,511))"
//	zquery -addr localhost:7331 100 300 50 180
//	zquery -addr localhost:7331 -nearest 512,512,5
//	zquery -addr localhost:7331 -explain 0 1023 0 1023
//	zquery -addr localhost:7331 -e "SELECT id, x, y FROM points WHERE NEAREST(POINT(512,512), 5)"
//
// CSV rows are "id,x,y".
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"probe"
	"probe/client"
	"probe/internal/workload"
)

func main() {
	var (
		bits       = flag.Int("bits", 10, "grid resolution in bits per dimension")
		n          = flag.Int("n", 5000, "number of generated points")
		dist       = flag.String("dist", "uniform", "point distribution: uniform, clustered, diagonal")
		seed       = flag.Int64("seed", 1986, "generator seed")
		file       = flag.String("points", "", "CSV file of id,x,y points (overrides -dist)")
		strategy   = flag.String("strategy", "lazy", "range-search strategy: decomposed, lazy, bigmin")
		leafCap    = flag.Int("leaf", 20, "points per index page")
		partial    = flag.String("partial", "", "partial match, e.g. x=17 or y=250")
		verbose    = flag.Bool("v", false, "print matching points")
		addr       = flag.String("addr", "", "query a running probed server instead of a local index")
		nearest    = flag.String("nearest", "", "with -addr: m-nearest query as X,Y,M")
		explain    = flag.Bool("explain", false, "with -addr: print the server's plan for the range, don't run it")
		srvStats   = flag.Bool("stats", false, "with -addr: print server+database counters")
		checkpoint = flag.Bool("checkpoint", false, "with -addr: force a durability checkpoint")
		trace      = flag.Bool("trace", false, "with -addr: print the server's timing breakdown and span tree")
		timeout    = flag.Duration("timeout", 30*time.Second, "with -addr: per-request deadline")
		sqlText    = flag.String("e", "", "execute one spatial SQL statement (see docs/query.md) and exit")
		sqlRepl    = flag.Bool("repl", false, "interactive spatial SQL shell; exit/quit or EOF ends it")
	)
	flag.Parse()

	if *addr != "" {
		if *sqlText != "" || *sqlRepl {
			if err := runRemoteSQL(*addr, *sqlText, *sqlRepl, *trace, *timeout); err != nil {
				fatal(err)
			}
			return
		}
		if err := runRemote(*addr, *nearest, *explain, *srvStats, *checkpoint, *trace, *timeout, *verbose, flag.Args()); err != nil {
			fatal(err)
		}
		return
	}

	g, err := probe.NewGrid(2, *bits)
	if err != nil {
		fatal(err)
	}
	db, err := probe.Open(g, probe.Options{LeafCapacity: *leafCap})
	if err != nil {
		fatal(err)
	}
	pts, err := loadPoints(g, *file, *dist, *n, *seed)
	if err != nil {
		fatal(err)
	}
	if err := db.InsertAll(pts); err != nil {
		fatal(err)
	}
	fmt.Printf("indexed %d points on %v: %d data pages of %d points\n",
		db.Len(), g, db.LeafPages(), *leafCap)

	if *sqlText != "" || *sqlRepl {
		ctx := context.Background()
		run := localRunner(db)
		if *sqlText != "" {
			if err := runSQL(ctx, run, *sqlText, os.Stdout); err != nil {
				fatal(err)
			}
		}
		if *sqlRepl {
			if err := repl(ctx, run, nil, os.Stdin, os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}

	strat, err := parseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}
	var results []probe.Point
	var stats probe.QueryStats
	switch {
	case *partial != "":
		results, stats, err = runPartial(db, *partial)
	default:
		results, stats, err = runRange(db, g, strat, flag.Args())
	}
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, p := range results {
			fmt.Printf("  %d (%d, %d)\n", p.ID, p.Coords[0], p.Coords[1])
		}
	}
	fmt.Printf("results: %d points\n", stats.Results)
	fmt.Printf("data pages accessed: %d (efficiency %.3f)\n",
		stats.DataPages, stats.Efficiency(*leafCap))
	fmt.Printf("random accesses (seeks): %d, elements/skips: %d\n", stats.Seeks, stats.Elements)
}

// runRemoteSQL executes -e / -repl statements over the wire. With
// trace, every statement runs traced and prints its server timing,
// trace ID, and span tree after the result — through a coordinator
// the tree is the full fan-out tree with every shard's subtree.
func runRemoteSQL(addr, text string, startRepl, trace bool, timeout time.Duration) error {
	cl, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	cl.SetTrace(trace)
	fmt.Printf("connected to %s, grid bits %v\n", addr, cl.GridBits())
	run := remoteRunner(cl)
	if text != "" {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if err := runSQL(ctx, run, text, os.Stdout); err != nil {
			return err
		}
		printTrace(cl, trace)
	}
	if startRepl {
		// No per-session deadline: each statement carries the -timeout
		// via the runner's context below.
		return repl(context.Background(), func(ctx context.Context, stmt string) (sqlResult, error) {
			sctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			return run(sctx, stmt)
		}, func() { printTrace(cl, trace) }, os.Stdin, os.Stdout)
	}
	return nil
}

// runRemote executes the requested operation against a probed server.
func runRemote(addr, nearest string, explain, stats, checkpoint, trace bool, timeout time.Duration, verbose bool, args []string) error {
	cl, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	cl.SetTrace(trace)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	fmt.Printf("connected to %s, grid bits %v\n", addr, cl.GridBits())

	switch {
	case stats:
		kvs, err := cl.Stats(ctx)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(kvs))
		for name := range kvs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-48s %d\n", name, kvs[name])
		}
		return nil
	case checkpoint:
		qs, err := cl.Checkpoint(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("checkpointed (wal appends %d, syncs %d)\n", qs.WALAppends, qs.WALSyncs)
		printTrace(cl, trace)
		return nil
	case nearest != "":
		parts := strings.Split(nearest, ",")
		if len(parts) != 3 {
			return fmt.Errorf("bad -nearest %q, want X,Y,M", nearest)
		}
		vals := make([]uint64, 3)
		for i, p := range parts {
			if vals[i], err = strconv.ParseUint(strings.TrimSpace(p), 10, 32); err != nil {
				return fmt.Errorf("bad -nearest %q: %v", nearest, err)
			}
		}
		nbs, qs, err := cl.Nearest(ctx, []uint32{uint32(vals[0]), uint32(vals[1])}, int(vals[2]), probe.Euclidean)
		if err != nil {
			return err
		}
		for _, nb := range nbs {
			fmt.Printf("  %d %v dist %.3f\n", nb.Point.ID, nb.Point.Coords, nb.Dist)
		}
		fmt.Printf("results: %d neighbors, data pages accessed: %d\n", len(nbs), qs.DataPages)
		printTrace(cl, trace)
		return nil
	}

	lo, hi, err := parseBounds(args)
	if err != nil {
		return err
	}
	if explain {
		plan, err := cl.Explain(ctx, lo, hi)
		if err != nil {
			return err
		}
		fmt.Println(plan)
		return nil
	}
	pts, qs, err := cl.Range(ctx, lo, hi)
	if err != nil {
		return err
	}
	if verbose {
		for _, p := range pts {
			fmt.Printf("  %d (%d, %d)\n", p.ID, p.Coords[0], p.Coords[1])
		}
	}
	fmt.Printf("results: %d points\n", qs.Results)
	fmt.Printf("data pages accessed: %d\n", qs.DataPages)
	fmt.Printf("random accesses (seeks): %d, elements/skips: %d\n", qs.Seeks, qs.Elements)
	printTrace(cl, trace)
	return nil
}

// printTrace prints the server-side timing breakdown, trace ID, and
// span tree of the last traced request. The trace ID is the handle
// for the rest of the cluster's observability: grep it in the router
// and shard logs, or look the request up at /debug/traces.
func printTrace(cl *client.Conn, trace bool) {
	if !trace {
		return
	}
	t := cl.LastTiming()
	if t.Total == 0 {
		fmt.Println("server sent no timing breakdown (pre-1.1 server?)")
		return
	}
	fmt.Printf("server timing: total %v = queue %v + plan %v + exec %v + stream %v\n",
		t.Total, t.Queue, t.Plan, t.Exec, t.Stream)
	if id := cl.LastTraceID(); id != 0 {
		fmt.Printf("trace id: %s\n", probe.TraceIDString(id))
	}
	if tree := cl.LastTrace(); tree != "" {
		fmt.Print("server trace:\n" + indent(tree, "  "))
	}
}

// indent prefixes every non-empty line of s.
func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// parseBounds parses XLO XHI YLO YHI into box corners.
func parseBounds(args []string) (lo, hi []uint32, err error) {
	if len(args) != 4 {
		return nil, nil, fmt.Errorf("expected XLO XHI YLO YHI, got %d args", len(args))
	}
	vals := make([]uint32, 4)
	for i, a := range args {
		v, err := strconv.ParseUint(a, 10, 32)
		if err != nil {
			return nil, nil, fmt.Errorf("bad bound %q: %v", a, err)
		}
		vals[i] = uint32(v)
	}
	return []uint32{vals[0], vals[2]}, []uint32{vals[1], vals[3]}, nil
}

func runRange(db *probe.DB, g probe.Grid, strat probe.Strategy, args []string) ([]probe.Point, probe.QueryStats, error) {
	if len(args) != 4 {
		return nil, probe.QueryStats{}, fmt.Errorf("expected XLO XHI YLO YHI, got %d args", len(args))
	}
	vals := make([]uint32, 4)
	for i, a := range args {
		v, err := strconv.ParseUint(a, 10, 32)
		if err != nil {
			return nil, probe.QueryStats{}, fmt.Errorf("bad bound %q: %v", a, err)
		}
		if v >= g.Side() {
			return nil, probe.QueryStats{}, fmt.Errorf("bound %d outside grid side %d", v, g.Side())
		}
		vals[i] = uint32(v)
	}
	box, err := probe.NewBox([]uint32{vals[0], vals[2]}, []uint32{vals[1], vals[3]})
	if err != nil {
		return nil, probe.QueryStats{}, err
	}
	if err := db.DropCaches(); err != nil {
		return nil, probe.QueryStats{}, err
	}
	fmt.Printf("range query %v (%s)\n", box, strat)
	return db.RangeSearch(box, probe.WithStrategy(strat))
}

func runPartial(db *probe.DB, spec string) ([]probe.Point, probe.QueryStats, error) {
	parts := strings.SplitN(spec, "=", 2)
	if len(parts) != 2 {
		return nil, probe.QueryStats{}, fmt.Errorf("bad -partial %q, want x=V or y=V", spec)
	}
	v, err := strconv.ParseUint(parts[1], 10, 32)
	if err != nil {
		return nil, probe.QueryStats{}, fmt.Errorf("bad value %q: %v", parts[1], err)
	}
	restricted := []bool{false, false}
	value := []uint32{0, 0}
	switch parts[0] {
	case "x":
		restricted[0], value[0] = true, uint32(v)
	case "y":
		restricted[1], value[1] = true, uint32(v)
	default:
		return nil, probe.QueryStats{}, fmt.Errorf("bad dimension %q", parts[0])
	}
	if err := db.DropCaches(); err != nil {
		return nil, probe.QueryStats{}, err
	}
	fmt.Printf("partial match %s\n", spec)
	return db.PartialMatch(restricted, value)
}

func parseStrategy(s string) (probe.Strategy, error) {
	switch s {
	case "decomposed":
		return probe.MergeDecomposed, nil
	case "lazy":
		return probe.MergeLazy, nil
	case "bigmin":
		return probe.SkipBigMin, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func loadPoints(g probe.Grid, file, dist string, n int, seed int64) ([]probe.Point, error) {
	if file != "" {
		return readCSV(g, file)
	}
	switch dist {
	case "uniform":
		return workload.Uniform(g, n, seed), nil
	case "clustered":
		return workload.Clustered(g, 50, n/50, float64(g.Side())/80, seed), nil
	case "diagonal":
		return workload.Diagonal(g, n, float64(g.Side())/256, seed), nil
	}
	return nil, fmt.Errorf("unknown distribution %q", dist)
}

func readCSV(g probe.Grid, path string) ([]probe.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pts []probe.Point
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want id,x,y", path, line)
		}
		id, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad id: %v", path, line, err)
		}
		x, err := strconv.ParseUint(strings.TrimSpace(fields[1]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad x: %v", path, line, err)
		}
		y, err := strconv.ParseUint(strings.TrimSpace(fields[2]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad y: %v", path, line, err)
		}
		if x >= g.Side() || y >= g.Side() {
			return nil, fmt.Errorf("%s:%d: point (%d,%d) outside grid", path, line, x, y)
		}
		pts = append(pts, probe.Pt2(id, uint32(x), uint32(y)))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "zquery: %v\n", err)
	os.Exit(1)
}

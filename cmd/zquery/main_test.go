package main

import (
	"os"
	"path/filepath"
	"testing"

	"probe"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]probe.Strategy{
		"decomposed": probe.MergeDecomposed,
		"lazy":       probe.MergeLazy,
		"bigmin":     probe.SkipBigMin,
	}
	for name, want := range cases {
		got, err := parseStrategy(name)
		if err != nil || got != want {
			t.Errorf("parseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseStrategy("zigzag"); err == nil {
		t.Errorf("unknown strategy accepted")
	}
}

func TestReadCSV(t *testing.T) {
	g := probe.MustGrid(2, 8)
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.csv")
	content := "# comment\n1,10,20\n\n2, 30 , 40\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	pts, err := readCSV(g, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].ID != 1 || pts[1].Coords[0] != 30 || pts[1].Coords[1] != 40 {
		t.Fatalf("readCSV = %v", pts)
	}
}

func TestReadCSVErrors(t *testing.T) {
	g := probe.MustGrid(2, 4)
	dir := t.TempDir()
	cases := map[string]string{
		"badfields": "1,2\n",
		"badid":     "x,1,2\n",
		"badx":      "1,x,2\n",
		"bady":      "1,2,x\n",
		"oob":       "1,99,2\n",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name+".csv")
		os.WriteFile(path, []byte(content), 0o644)
		if _, err := readCSV(g, path); err == nil {
			t.Errorf("%s: malformed CSV accepted", name)
		}
	}
	if _, err := readCSV(g, filepath.Join(dir, "missing.csv")); err == nil {
		t.Errorf("missing file accepted")
	}
}

func TestLoadPointsDistributions(t *testing.T) {
	g := probe.MustGrid(2, 8)
	for _, dist := range []string{"uniform", "clustered", "diagonal"} {
		pts, err := loadPoints(g, "", dist, 200, 1)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if len(pts) != 200 {
			t.Fatalf("%s: %d points", dist, len(pts))
		}
	}
	if _, err := loadPoints(g, "", "weird", 10, 1); err == nil {
		t.Errorf("unknown distribution accepted")
	}
}

func TestRunRangeAndPartial(t *testing.T) {
	g := probe.MustGrid(2, 6)
	db, err := probe.Open(g, probe.Options{LeafCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		db.Insert(probe.Pt2(i, uint32(i), uint32((i*3)%64)))
	}
	res, stats, err := runRange(db, g, probe.MergeLazy, []string{"0", "20", "0", "63"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 21 || stats.Results != 21 {
		t.Errorf("range = %d results", len(res))
	}
	if _, _, err := runRange(db, g, probe.MergeLazy, []string{"0", "20"}); err == nil {
		t.Errorf("wrong arg count accepted")
	}
	if _, _, err := runRange(db, g, probe.MergeLazy, []string{"0", "99", "0", "1"}); err == nil {
		t.Errorf("out-of-grid bound accepted")
	}
	if _, _, err := runRange(db, g, probe.MergeLazy, []string{"0", "x", "0", "1"}); err == nil {
		t.Errorf("non-numeric bound accepted")
	}
	if _, _, err := runRange(db, g, probe.MergeLazy, []string{"20", "0", "0", "1"}); err == nil {
		t.Errorf("inverted bounds accepted")
	}

	res, _, err = runPartial(db, "x=5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Coords[0] != 5 {
		t.Errorf("partial = %v", res)
	}
	if _, _, err := runPartial(db, "z=5"); err == nil {
		t.Errorf("bad dimension accepted")
	}
	if _, _, err := runPartial(db, "x"); err == nil {
		t.Errorf("missing value accepted")
	}
	if _, _, err := runPartial(db, "x=banana"); err == nil {
		t.Errorf("bad value accepted")
	}
}

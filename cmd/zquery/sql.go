package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"

	"probe"
	"probe/client"
)

// sqlResult is the shape both executors (local library, remote
// server) reduce a statement to for printing.
type sqlResult struct {
	cols    []probe.QueryColumn
	rows    []probe.QueryRow
	explain string
	stats   probe.QueryStats
}

// sqlRunner executes one spatial SQL statement.
type sqlRunner func(ctx context.Context, text string) (sqlResult, error)

// localRunner runs statements against an in-process database.
func localRunner(db *probe.DB) sqlRunner {
	return func(ctx context.Context, text string) (sqlResult, error) {
		res, err := db.Query(ctx, text)
		if err != nil {
			return sqlResult{}, err
		}
		return sqlResult{cols: res.Columns, rows: res.Rows, explain: res.Explain, stats: res.Stats}, nil
	}
}

// remoteRunner runs statements over the wire (protocol 1.3 QUERY).
func remoteRunner(cl *client.Conn) sqlRunner {
	return func(ctx context.Context, text string) (sqlResult, error) {
		res, err := cl.Query(ctx, text)
		if err != nil {
			return sqlResult{}, err
		}
		return sqlResult{cols: res.Columns, rows: res.Rows, explain: res.Explain, stats: res.Stats}, nil
	}
}

// runSQL executes one statement and prints its result.
func runSQL(ctx context.Context, run sqlRunner, text string, w io.Writer) error {
	res, err := run(ctx, text)
	if err != nil {
		return err
	}
	if res.explain != "" {
		fmt.Fprint(w, res.explain)
		return nil
	}
	printResult(w, res)
	return nil
}

// printResult renders a result set as an aligned table followed by a
// one-line summary.
func printResult(w io.Writer, res sqlResult) {
	headers := make([]string, len(res.cols))
	widths := make([]int, len(res.cols))
	for i, c := range res.cols {
		headers[i] = c.Name
		widths[i] = len(c.Name)
	}
	cells := make([][]string, len(res.rows))
	for r, row := range res.rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			s := formatValue(v)
			cells[r][i] = s
			if i < len(widths) && len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	writeRow := func(vals []string) {
		for i, s := range vals {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], s)
		}
		fmt.Fprintln(w)
	}
	writeRow(headers)
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(w, "(%d rows; data pages %d, seeks %d)\n",
		len(res.rows), res.stats.DataPages, res.stats.Seeks)
}

// formatValue renders one typed cell.
func formatValue(v probe.QueryValue) string {
	switch t := v.(type) {
	case float64:
		return fmt.Sprintf("%.3f", t)
	default:
		return fmt.Sprintf("%v", t)
	}
}

// repl reads statements line by line, executing each. Empty lines and
// -- comments are skipped; exit/quit (or EOF) ends the loop. Errors
// are printed and the loop continues — a typo should not end the
// session. post, when non-nil, runs after each successful statement
// (the remote path uses it to print the statement's trace).
func repl(ctx context.Context, run sqlRunner, post func(), in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	fmt.Fprint(out, "sql> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "--"):
		case line == "exit" || line == "quit":
			return nil
		default:
			if err := runSQL(ctx, run, line, out); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			} else if post != nil {
				post()
			}
		}
		fmt.Fprint(out, "sql> ")
	}
	fmt.Fprintln(out)
	return sc.Err()
}

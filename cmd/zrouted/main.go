// Command zrouted is the z-range cluster coordinator (docs/cluster.md):
// it speaks the probed wire protocol on the front and scatter-gathers
// every request across the shards named in its z-range shard map, so a
// client sees one database that happens to be sharded.
//
// Route a three-shard cluster, each shard a running probed:
//
//	zrouted -shards host1:7331,host2:7331,host3:7331 -addr :7341
//
// Replicas (probed -replica-of) attach per shard, ';'-separated groups
// aligned with -shards, ','-separated addresses within a group:
//
//	zrouted -shards a:7331,b:7331 -replicas a:7332;b:7332,b:7333
//
// A shard map built this way can be frozen to a file (-print-map) and
// served verbatim later (-map), which is how a cluster keeps a stable
// assignment across coordinator restarts:
//
//	zrouted -shards a:7331,b:7331 -print-map > cluster.json
//	zrouted -map cluster.json -addr :7341
//
// SIGTERM or SIGINT drains: in-flight scatters finish (or are
// cancelled after -drain), backend pools close, and the process exits
// 0. A second signal forces immediate exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"probe/internal/router"
)

func main() {
	var (
		addr     = flag.String("addr", ":7341", "front-side listen address")
		admin    = flag.String("admin", "", "admin HTTP address serving /metrics, /debug/pprof, /healthz, /readyz; empty disables")
		shards   = flag.String("shards", "", "comma-separated shard primary addresses (builds an even z-range map)")
		replicas = flag.String("replicas", "", "per-shard replica groups aligned with -shards: groups ';'-separated, addresses ','-separated")
		mapFile  = flag.String("map", "", "shard map JSON file (instead of -shards)")
		prefix   = flag.Int("prefix-bits", 0, "z-prefix slots = 2^bits; 0 picks a default for the shard count")
		printMap = flag.Bool("print-map", false, "print the shard map JSON and exit")
		check    = flag.Bool("check", false, "validate the map, handshake with the cluster, and exit")
		maxIn    = flag.Int("max-inflight", 64, "admission control: max concurrently executing front-side requests")
		batch    = flag.Int("batch", 512, "results per streamed batch frame")
		bTimeout = flag.Duration("backend-timeout", 30*time.Second, "a shard call exceeding this counts as unavailable")
		probeInt = flag.Duration("probe-interval", time.Second, "health re-probe cadence for down shards and replica lag")
		drain    = flag.Duration("drain", 5*time.Second, "graceful drain timeout on shutdown")
		startT   = flag.Duration("start-timeout", 30*time.Second, "how long to wait for the first reachable shard at startup")
		slowQ    = flag.Duration("slow-query", -1, "log requests at/above this latency at warn with their fan-out span tree; 0 logs every request; negative disables")
		logEv    = flag.Int("log-requests", 0, "log every Nth request at info; 0 disables")
		traceBuf = flag.Int("trace-buffer", 64, "capacity of the /debug/traces ring of recent traced, slow, and sampled requests")
	)
	flag.Parse()
	if err := run(*addr, *admin, *shards, *replicas, *mapFile, *prefix,
		*printMap, *check, *maxIn, *batch, *bTimeout, *probeInt, *drain, *startT,
		*slowQ, *logEv, *traceBuf); err != nil {
		fmt.Fprintf(os.Stderr, "zrouted: %v\n", err)
		os.Exit(1)
	}
}

// validateConfig rejects configurations that would start and then
// misbehave, mirroring probed -check: an admin endpoint colliding with
// the front-side listener, or timeouts and logging thresholds outside
// their meaningful range.
func validateConfig(addr, admin string, bTimeout, slowQuery time.Duration, logEvery int) error {
	if admin != "" {
		ahost, aport, err := net.SplitHostPort(admin)
		if err != nil {
			return fmt.Errorf("bad -admin address %q: %v", admin, err)
		}
		qhost, qport, err := net.SplitHostPort(addr)
		if err != nil {
			return fmt.Errorf("bad -addr address %q: %v", addr, err)
		}
		// A port shared with the front-side listener is a clash when
		// either side binds the wildcard or both name the same host.
		if aport == qport && (ahost == "" || qhost == "" || ahost == qhost) {
			return fmt.Errorf("-admin %s clashes with -addr %s: same port", admin, addr)
		}
	}
	if bTimeout <= 0 {
		return fmt.Errorf("-backend-timeout %s must be positive: a hung shard has to count as unavailable eventually", bTimeout)
	}
	if bTimeout > 24*time.Hour {
		return fmt.Errorf("-backend-timeout %s is not a plausible bound (max 24h)", bTimeout)
	}
	if slowQuery > 24*time.Hour {
		return fmt.Errorf("-slow-query %s is not a plausible threshold (max 24h)", slowQuery)
	}
	if logEvery < 0 {
		return fmt.Errorf("-log-requests %d: the sample interval cannot be negative", logEvery)
	}
	return nil
}

// routerConfig maps the command line onto router.Config, with the
// same slow-query flag convention as probed: the flag's 0 means "log
// every request at warn" (the config's negative), the flag's negative
// means disabled (the config's zero). -log-requests keeps probed's
// 0-disables convention, which maps onto the router config's negative.
func routerConfig(m *router.Map, maxIn, batch int, bTimeout, probeInt, drain time.Duration,
	slowQuery time.Duration, logEvery, traceBuf int) router.Config {
	rc := router.Config{
		Map:            m,
		MaxInflight:    maxIn,
		BatchSize:      batch,
		BackendTimeout: bTimeout,
		ProbeInterval:  probeInt,
		DrainTimeout:   drain,
		TraceBuffer:    traceBuf,
	}
	switch {
	case slowQuery == 0:
		rc.SlowQuery = -1
	case slowQuery > 0:
		rc.SlowQuery = slowQuery
	}
	if logEvery > 0 {
		rc.LogEvery = logEvery
	} else {
		rc.LogEvery = -1
	}
	if slowQuery >= 0 || logEvery > 0 {
		rc.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	return rc
}

// loadMap resolves the shard map from -map or -shards/-replicas.
func loadMap(shards, replicas, mapFile string, prefixBits int) (*router.Map, error) {
	switch {
	case mapFile != "" && shards != "":
		return nil, fmt.Errorf("-map and -shards are mutually exclusive")
	case mapFile != "":
		data, err := os.ReadFile(mapFile)
		if err != nil {
			return nil, err
		}
		return router.DecodeMap(data)
	case shards != "":
		primaries := splitNonEmpty(shards, ",")
		var reps [][]string
		if replicas != "" {
			groups := strings.Split(replicas, ";")
			if len(groups) > len(primaries) {
				return nil, fmt.Errorf("-replicas names %d groups for %d shards", len(groups), len(primaries))
			}
			reps = make([][]string, len(primaries))
			for i, g := range groups {
				reps[i] = splitNonEmpty(g, ",")
			}
		}
		if prefixBits == 0 {
			prefixBits = router.DefaultPrefixBits(len(primaries))
		}
		return router.BuildEvenMap(prefixBits, primaries, reps)
	default:
		return nil, fmt.Errorf("no cluster: pass -shards or -map")
	}
}

func splitNonEmpty(s, sep string) []string {
	var out []string
	for _, part := range strings.Split(s, sep) {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func run(addr, admin, shards, replicas, mapFile string, prefixBits int,
	printMap, check bool, maxIn, batch int, bTimeout, probeInt, drain, startT time.Duration,
	slowQuery time.Duration, logEvery, traceBuf int) error {
	m, err := loadMap(shards, replicas, mapFile, prefixBits)
	if err != nil {
		return err
	}
	if printMap {
		enc, err := m.Encode()
		if err != nil {
			return err
		}
		os.Stdout.Write(enc)
		return nil
	}
	if err := validateConfig(addr, admin, bTimeout, slowQuery, logEvery); err != nil {
		if check {
			return fmt.Errorf("config: %w", err)
		}
		return err
	}
	if check {
		fmt.Println("zrouted: configuration ok")
	}

	r, err := router.New(routerConfig(m, maxIn, batch, bTimeout, probeInt, drain,
		slowQuery, logEvery, traceBuf))
	if err != nil {
		return err
	}
	startCtx, cancel := context.WithTimeout(context.Background(), startT)
	err = r.Start(startCtx)
	cancel()
	if err != nil {
		return err
	}
	if check {
		defer r.Shutdown(context.Background())
		r.ProbeNow()
		g := r.Grid()
		fmt.Printf("zrouted: %d shards, grid %dd, %d total bits\n", len(m.Shards), g.Dims(), g.TotalBits())
		if err := r.Ready(); err != nil {
			return err
		}
		fmt.Println("zrouted: cluster ready")
		return nil
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		r.Shutdown(context.Background())
		return err
	}
	fmt.Printf("zrouted: routing %d shards on %s (prefix bits %d, max-inflight %d)\n",
		len(m.Shards), ln.Addr(), m.PrefixBits, maxIn)

	// As on probed, the admin endpoint outlives the query listener so
	// /readyz reports the drain instead of vanishing.
	var adminSrv *http.Server
	if admin != "" {
		aln, err := net.Listen("tcp", admin)
		if err != nil {
			ln.Close()
			r.Shutdown(context.Background())
			return err
		}
		adminSrv = &http.Server{Handler: r.AdminHandler()}
		go adminSrv.Serve(aln)
		fmt.Printf("zrouted: admin endpoint on http://%s/metrics\n", aln.Addr())
	}
	closeAdmin := func() {
		if adminSrv != nil {
			adminSrv.Close()
		}
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	errCh := make(chan error, 1)
	go func() { errCh <- r.Serve(ln) }()

	select {
	case sig := <-sigs:
		fmt.Printf("zrouted: %v: draining (timeout %s)\n", sig, drain)
		done := make(chan error, 1)
		go func() { done <- r.Shutdown(context.Background()) }()
		select {
		case err := <-done:
			closeAdmin()
			if err != nil {
				return fmt.Errorf("drain: %w", err)
			}
			fmt.Println("zrouted: drained, closed")
			return nil
		case sig := <-sigs:
			closeAdmin()
			return fmt.Errorf("%v during drain: exiting hard", sig)
		}
	case err := <-errCh:
		closeAdmin()
		r.Shutdown(context.Background())
		return err
	}
}

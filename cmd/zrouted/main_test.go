package main

import (
	"strings"
	"testing"
	"time"

	"probe/internal/router"
)

// TestValidateConfig pins the -check surface: the clash and
// plausibility rules that must reject a configuration before any
// socket is bound, with probed -check parity on the shared rules.
func TestValidateConfig(t *testing.T) {
	cases := []struct {
		name    string
		addr    string
		admin   string
		bT      time.Duration
		slowQ   time.Duration
		logEv   int
		wantErr string // substring; empty = valid
	}{
		{name: "defaults", addr: ":7341", admin: "", bT: 30 * time.Second, slowQ: -1},
		{name: "admin ok", addr: ":7341", admin: ":9341", bT: 30 * time.Second, slowQ: -1},
		{name: "admin clash wildcard", addr: ":7341", admin: ":7341", bT: 30 * time.Second, slowQ: -1,
			wantErr: "clashes"},
		{name: "admin clash same host", addr: "10.0.0.1:7341", admin: "10.0.0.1:7341", bT: 30 * time.Second, slowQ: -1,
			wantErr: "clashes"},
		{name: "admin distinct hosts same port", addr: "10.0.0.1:7341", admin: "10.0.0.2:7341", bT: 30 * time.Second, slowQ: -1},
		{name: "admin unparseable", addr: ":7341", admin: "no-port", bT: 30 * time.Second, slowQ: -1,
			wantErr: "bad -admin"},
		{name: "backend timeout zero", addr: ":7341", bT: 0, slowQ: -1,
			wantErr: "-backend-timeout"},
		{name: "backend timeout negative", addr: ":7341", bT: -time.Second, slowQ: -1,
			wantErr: "-backend-timeout"},
		{name: "backend timeout implausible", addr: ":7341", bT: 25 * time.Hour, slowQ: -1,
			wantErr: "not a plausible"},
		{name: "slow query implausible", addr: ":7341", bT: 30 * time.Second, slowQ: 25 * time.Hour,
			wantErr: "not a plausible"},
		{name: "slow query firehose", addr: ":7341", bT: 30 * time.Second, slowQ: 0},
		{name: "log requests negative", addr: ":7341", bT: 30 * time.Second, slowQ: -1, logEv: -1,
			wantErr: "-log-requests"},
		{name: "log requests sampling", addr: ":7341", bT: 30 * time.Second, slowQ: -1, logEv: 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateConfig(tc.addr, tc.admin, tc.bT, tc.slowQ, tc.logEv)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateConfig: unexpected error %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateConfig = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestRouterConfigFlagMapping pins the flag-to-config conventions:
// -slow-query 0 means firehose (config negative), negative means
// disabled (config zero); -log-requests 0 disables the Info log
// (config negative) while N>0 samples; a Logger materializes exactly
// when some logging is on.
func TestRouterConfigFlagMapping(t *testing.T) {
	m := &router.Map{} // mapping only; never validated here
	base := func(slowQ time.Duration, logEv int) routerCfgView {
		rc := routerConfig(m, 64, 512, 30*time.Second, time.Second, 5*time.Second, slowQ, logEv, 0)
		return routerCfgView{rc.SlowQuery, rc.LogEvery, rc.Logger != nil}
	}
	for _, tc := range []struct {
		name  string
		slowQ time.Duration
		logEv int
		want  routerCfgView
	}{
		{"all off", -1, 0, routerCfgView{0, -1, false}},
		{"firehose", 0, 0, routerCfgView{-1, -1, true}},
		{"threshold", 250 * time.Millisecond, 0, routerCfgView{250 * time.Millisecond, -1, true}},
		{"sampled only", -1, 50, routerCfgView{0, 50, true}},
		{"both", time.Second, 10, routerCfgView{time.Second, 10, true}},
	} {
		if got := base(tc.slowQ, tc.logEv); got != tc.want {
			t.Errorf("%s: routerConfig(slowQ=%v, logEv=%d) = %+v, want %+v",
				tc.name, tc.slowQ, tc.logEv, got, tc.want)
		}
	}
}

type routerCfgView struct {
	slowQuery time.Duration
	logEvery  int
	hasLogger bool
}

// Command zviz renders the paper's figures as text: the z curve of
// Figure 4, the box decomposition of Figure 2, and the page-partition
// plots of Figure 6.
//
// Usage:
//
//	zviz curve [-bits D]
//	zviz decompose [-bits D] XLO XHI YLO YHI
//	zviz partition [-dataset U|C|D] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"probe"
	"probe/internal/experiment"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "curve":
		curve(os.Args[2:])
	case "decompose":
		decomposeCmd(os.Args[2:])
	case "partition":
		partition(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: zviz curve|decompose|partition [flags] [args]")
	os.Exit(2)
}

// curve prints the z-order ranks of a small grid: Figure 4.
func curve(args []string) {
	fs := flag.NewFlagSet("curve", flag.ExitOnError)
	bits := fs.Int("bits", 3, "bits per dimension")
	fs.Parse(args)
	fmt.Print(renderCurve(*bits))
}

// renderCurve builds the Figure 4 rank grid as text.
func renderCurve(bits int) string {
	g := probe.MustGrid(2, bits)
	side := uint32(g.Side())
	var b strings.Builder
	fmt.Fprintf(&b, "z-order ranks on a %dx%d grid (Figure 4); [3,5] -> %d\n",
		side, side, rankOrZero(g, 3, 5))
	for y := side; y > 0; y-- {
		for x := uint32(0); x < side; x++ {
			fmt.Fprintf(&b, "%4d", g.Rank([]uint32{x, y - 1}))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func rankOrZero(g probe.Grid, x, y uint32) uint64 {
	if uint64(x) >= g.Side() || uint64(y) >= g.Side() {
		return 0
	}
	return g.Rank([]uint32{x, y})
}

// decomposeCmd prints the elements of a box decomposition: Figure 2.
func decomposeCmd(args []string) {
	fs := flag.NewFlagSet("decompose", flag.ExitOnError)
	bits := fs.Int("bits", 3, "bits per dimension")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 4 {
		fmt.Fprintln(os.Stderr, "zviz decompose: want XLO XHI YLO YHI")
		os.Exit(2)
	}
	g := probe.MustGrid(2, *bits)
	vals := make([]uint32, 4)
	for i, a := range rest {
		v, err := strconv.ParseUint(a, 10, 32)
		if err != nil || v >= g.Side() {
			fmt.Fprintf(os.Stderr, "zviz decompose: bad bound %q\n", a)
			os.Exit(2)
		}
		vals[i] = uint32(v)
	}
	box, err := probe.NewBox([]uint32{vals[0], vals[2]}, []uint32{vals[1], vals[3]})
	if err != nil {
		fmt.Fprintf(os.Stderr, "zviz decompose: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(renderDecomposition(g, box))
}

// renderDecomposition builds the Figure 2 element listing and grid.
func renderDecomposition(g probe.Grid, box probe.Box) string {
	elems := probe.DecomposeBox(g, box)
	var b strings.Builder
	fmt.Fprintf(&b, "decomposition of %v into %d elements (Figure 2):\n", box, len(elems))
	for _, e := range elems {
		lo, hi := g.Region(e)
		fmt.Fprintf(&b, "  %-12s x %d..%d  y %d..%d  (%d pixels)\n",
			e, lo[0], hi[0], lo[1], hi[1], e.PixelCount(g))
	}
	// Draw the grid with one letter per element.
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	side := uint32(g.Side())
	for y := side; y > 0; y-- {
		for x := uint32(0); x < side; x++ {
			ch := byte('.')
			p := g.Shuffle([]uint32{x, y - 1})
			for i, e := range elems {
				if e.Contains(p) {
					ch = alphabet[i%len(alphabet)]
					break
				}
			}
			b.WriteByte(ch)
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// partition renders Figure 6 for one dataset.
func partition(args []string) {
	fs := flag.NewFlagSet("partition", flag.ExitOnError)
	dataset := fs.String("dataset", "U", "dataset: U, C or D")
	quick := fs.Bool("quick", false, "smaller data set")
	fs.Parse(args)
	var ds experiment.Dataset
	switch *dataset {
	case "U":
		ds = experiment.U
	case "C":
		ds = experiment.C
	case "D":
		ds = experiment.D
	default:
		fmt.Fprintf(os.Stderr, "zviz partition: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	cfg := experiment.DefaultConfig()
	if *quick {
		cfg.N = 1000
		cfg.GridBits = 8
	}
	in, err := experiment.Build(cfg, ds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zviz partition: %v\n", err)
		os.Exit(1)
	}
	art, err := in.RenderPartition(96, 48)
	if err != nil {
		fmt.Fprintf(os.Stderr, "zviz partition: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(art)
}

package main

import (
	"strings"
	"testing"

	"probe"
)

func TestRenderCurveFigure4(t *testing.T) {
	out := renderCurve(3)
	if !strings.Contains(out, "[3,5] -> 27") {
		t.Errorf("Figure 4 worked example missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 { // header + 8 rows
		t.Fatalf("curve render has %d lines", len(lines))
	}
	// Bottom-left pixel is rank 0; it is the first number of the last
	// line.
	if !strings.HasPrefix(strings.TrimSpace(lines[8]), "0 ") {
		t.Errorf("origin rank not 0: %q", lines[8])
	}
}

func TestRenderDecompositionFigure2(t *testing.T) {
	g := probe.MustGrid(2, 3)
	out := renderDecomposition(g, probe.Box2(1, 3, 0, 4))
	for _, want := range []string{"6 elements", "00001", "00011", "001 ", "010010", "011000", "011010"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, ". ") {
		t.Errorf("uncovered pixels should render as dots")
	}
}

func TestRankOrZero(t *testing.T) {
	g := probe.MustGrid(2, 2)
	if rankOrZero(g, 9, 9) != 0 {
		t.Errorf("out-of-grid rank should be 0")
	}
	if rankOrZero(g, 1, 1) != 3 {
		t.Errorf("rank(1,1) = %d, want 3", rankOrZero(g, 1, 1))
	}
}

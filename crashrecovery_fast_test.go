//go:build !slow

package probe_test

// crashHarnessSeeds is the number of seeded fault schedules the
// crash-recovery property harness runs in the default build. The CI
// crash-matrix job builds with -tags slow for a deeper sweep.
const crashHarnessSeeds = 300

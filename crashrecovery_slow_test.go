//go:build slow

package probe_test

// crashHarnessSeeds under -tags slow: the deep sweep the CI
// crash-matrix job runs.
const crashHarnessSeeds = 2000

package probe_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"probe"
	"probe/internal/disk"
	"probe/internal/disk/faultfs"
)

// This file is the crash-recovery property harness of the durability
// design (docs/durability.md): for hundreds of seeded schedules it
// runs a random insert/delete/checkpoint workload against a database
// on a fault-injecting filesystem, injects one fault — process crash,
// torn write, I/O error, or bit flip — at a seeded write operation,
// takes the resulting crash image, recovers, and asserts:
//
//   - recovery succeeds (for a bit flip it may instead refuse with
//     *disk.ChecksumError — detected corruption — but must never
//     return wrong data);
//   - the recovered contents equal an acknowledged checkpoint: the
//     last Checkpoint that returned nil, or the one in flight when the
//     fault hit (whose commit record may or may not have reached the
//     platter) — nothing else, never a torn hybrid;
//   - the recovered B+-tree passes its structural invariants;
//   - range searches over the recovered index agree with a
//     brute-force oracle over the matched checkpoint's point set;
//   - the recovered database accepts and checkpoints new writes.
//
// Failing seeds are appended to $CRASH_SEED_FILE (CI archives it).

// dbStep is one operation of a generated schedule.
type dbStep struct {
	op int // 0 insert, 1 delete, 2 checkpoint
	id uint64
	x  uint32
	y  uint32
	n  int
}

func genDBSteps(rng *rand.Rand) []dbStep {
	n := 40 + rng.Intn(80)
	steps := make([]dbStep, n)
	nextID := uint64(1)
	for i := range steps {
		r := rng.Intn(100)
		switch {
		case r < 70:
			steps[i] = dbStep{op: 0, id: nextID,
				x: uint32(rng.Intn(256)), y: uint32(rng.Intn(256))}
			nextID++
		case r < 85:
			steps[i] = dbStep{op: 1, n: rng.Intn(1 << 30)}
		default:
			steps[i] = dbStep{op: 2}
		}
	}
	steps[n-1] = dbStep{op: 2} // end on a checkpoint attempt
	return steps
}

// dbModel is the oracle: the point set the database should hold.
type dbModel map[uint64][2]uint32

func (m dbModel) clone() dbModel {
	c := make(dbModel, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func (m dbModel) liveIDs() []uint64 {
	ids := make([]uint64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// runDBSteps executes the schedule, tracking the last acknowledged
// checkpoint state and the (at most one) checkpoint that failed after
// possibly committing.
func runDBSteps(fsys *faultfs.FS, db *probe.DB, steps []dbStep) (acked, maybe dbModel) {
	live := dbModel{}
	acked = dbModel{} // database creation checkpoints an empty state
	for _, st := range steps {
		if fsys.Crashed() {
			break
		}
		switch st.op {
		case 0:
			if err := db.Insert(probe.Pt2(st.id, st.x, st.y)); err == nil {
				live[st.id] = [2]uint32{st.x, st.y}
			}
		case 1:
			ids := live.liveIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[st.n%len(ids)]
			xy := live[id]
			if ok, err := db.Delete(probe.Pt2(id, xy[0], xy[1])); err == nil && ok {
				delete(live, id)
			}
		case 2:
			cand := live.clone()
			if _, err := db.Checkpoint(); err == nil {
				acked = cand
				maybe = nil
			} else if maybe == nil {
				maybe = cand
			}
		}
	}
	return acked, maybe
}

func matchDBState(got, want dbModel) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d points, want %d", len(got), len(want))
	}
	for id, xy := range want {
		if got[id] != xy {
			return fmt.Errorf("point %d is %v, want %v", id, got[id], xy)
		}
	}
	return nil
}

func dbPlanForSeed(rng *rand.Rand, seed int64, w int) (faultfs.Plan, string) {
	at := 1 + rng.Intn(w)
	switch seed % 4 {
	case 0:
		return faultfs.Plan{Seed: seed, CrashAt: at}, "crash"
	case 1:
		return faultfs.Plan{Seed: seed, TornAt: at}, "torn"
	case 2:
		return faultfs.Plan{Seed: seed, FailAt: at}, "fail"
	default:
		return faultfs.Plan{Seed: seed, FlipAt: at, CrashAt: at + 1 + rng.Intn(30)}, "flip"
	}
}

// recordDBFailureSeed appends a failing seed to $CRASH_SEED_FILE so CI
// can archive it for reproduction.
func recordDBFailureSeed(seed int64, kind string) {
	path := os.Getenv("CRASH_SEED_FILE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	fmt.Fprintf(f, "probe seed=%d kind=%s\n", seed, kind)
	f.Close()
}

func TestCrashRecoveryProperty(t *testing.T) {
	seeds := crashHarnessSeeds
	if testing.Short() {
		seeds /= 10
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			kind := runOneCrashSchedule(t, seed)
			if t.Failed() {
				recordDBFailureSeed(seed, kind)
			}
		})
	}
}

func openOn(t *testing.T, fsys *faultfs.FS) *probe.DB {
	t.Helper()
	db, err := probe.Open(probe.MustGrid(2, 8),
		probe.WithDurability("probe.db"), probe.WithFS(fsys),
		probe.WithPageSize(256), probe.WithPoolPages(8))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func runOneCrashSchedule(t *testing.T, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	steps := genDBSteps(rng)

	// Dry run on a clean filesystem: count the schedule's write
	// operations so the fault index lands inside the workload.
	dry := faultfs.New()
	dryDB := openOn(t, dry)
	dry.Arm(faultfs.Plan{}) // reset the op counter; no faults
	runDBSteps(dry, dryDB, steps)
	w := dry.Ops()
	if w == 0 {
		t.Fatal("schedule performed no write operations")
	}

	// Armed run: same schedule, one injected fault.
	plan, kind := dbPlanForSeed(rng, seed, w)
	fsys := faultfs.New()
	db := openOn(t, fsys)
	fsys.Arm(plan)
	acked, maybe := runDBSteps(fsys, db, steps)

	// The crash: whatever was not fsynced may be gone.
	img := fsys.CrashImage()
	imgCopy := img.Clone() // pristine copy for the idempotency check

	rec, err := probe.Open(probe.MustGrid(2, 8),
		probe.WithDurability("probe.db"), probe.WithFS(img))
	if err != nil {
		var ce *disk.ChecksumError
		if kind == "flip" && errors.As(err, &ce) {
			return kind // detected corruption: refused, not wrong
		}
		t.Fatalf("kind=%s: recovery failed: %v", kind, err)
	}
	defer rec.Close()
	if wasRec, _ := rec.Recovered(); !wasRec {
		t.Fatalf("kind=%s: open did not report recovery", kind)
	}

	got := dbModel{}
	if err := rec.Scan(func(p probe.Point) bool {
		got[p.ID] = [2]uint32{p.Coords[0], p.Coords[1]}
		return true
	}); err != nil {
		t.Fatalf("kind=%s: scan of recovered database: %v", kind, err)
	}

	// The recovered state must be an acknowledged checkpoint — the last
	// acked one, or the one in flight when the fault hit.
	matched := acked
	errAcked := matchDBState(got, acked)
	if errAcked != nil {
		errMaybe := fmt.Errorf("no checkpoint was in flight")
		if maybe != nil {
			errMaybe = matchDBState(got, maybe)
			matched = maybe
		}
		if errMaybe != nil {
			t.Fatalf("kind=%s: recovered state matches no acknowledged checkpoint:\n  vs acked: %v\n  vs in-flight: %v",
				kind, errAcked, errMaybe)
		}
	}

	// Structural invariants of the recovered tree.
	if err := rec.Index().Tree().CheckInvariants(); err != nil {
		t.Fatalf("kind=%s: recovered tree invariants: %v", kind, err)
	}

	// Differential range searches against a brute-force oracle over the
	// matched checkpoint state.
	for q := 0; q < 3; q++ {
		x1, x2 := uint32(rng.Intn(256)), uint32(rng.Intn(256))
		y1, y2 := uint32(rng.Intn(256)), uint32(rng.Intn(256))
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		pts, _, err := rec.RangeSearch(probe.Box2(x1, x2, y1, y2))
		if err != nil {
			t.Fatalf("kind=%s: range search: %v", kind, err)
		}
		oracle := map[uint64]bool{}
		for id, xy := range matched {
			if xy[0] >= x1 && xy[0] <= x2 && xy[1] >= y1 && xy[1] <= y2 {
				oracle[id] = true
			}
		}
		if len(pts) != len(oracle) {
			t.Fatalf("kind=%s: box [%d,%d]x[%d,%d]: found %d points, oracle says %d",
				kind, x1, x2, y1, y2, len(pts), len(oracle))
		}
		for _, p := range pts {
			if !oracle[p.ID] {
				t.Fatalf("kind=%s: range search returned point %d the oracle does not have", kind, p.ID)
			}
		}
	}

	// The recovered database must accept and checkpoint new writes.
	if err := rec.Insert(probe.Pt2(1<<40, 11, 13)); err != nil {
		t.Fatalf("kind=%s: insert after recovery: %v", kind, err)
	}
	if _, err := rec.Checkpoint(); err != nil {
		t.Fatalf("kind=%s: checkpoint after recovery: %v", kind, err)
	}

	// Idempotence: recovering the same image again yields the same
	// state.
	if seed%5 == 0 {
		rec2, err := probe.Open(probe.MustGrid(2, 8),
			probe.WithDurability("probe.db"), probe.WithFS(imgCopy))
		if err != nil {
			t.Fatalf("kind=%s: re-recovery: %v", kind, err)
		}
		got2 := dbModel{}
		if err := rec2.Scan(func(p probe.Point) bool {
			got2[p.ID] = [2]uint32{p.Coords[0], p.Coords[1]}
			return true
		}); err != nil {
			t.Fatalf("kind=%s: re-recovery scan: %v", kind, err)
		}
		if err := matchDBState(got2, matched); err != nil {
			t.Fatalf("kind=%s: re-recovery diverged: %v", kind, err)
		}
		rec2.Close()
	}
	return kind
}

package probe

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestDeprecatedEntryPointsDelegate parses every non-test Go file in
// the module and pins two properties of the deprecated surface:
//
//  1. Every function or method carrying a "Deprecated:" doc comment is
//     a pure delegating wrapper — no loops, no goroutines, no
//     branching beyond an error-return guard — so keeping the old
//     names costs nothing but the name.
//  2. Every deprecated type declaration is an alias (type T = U), never
//     a defined type that could accrete its own method set.
//
// The walk covers the whole module, so a future deprecation that
// sneaks real logic behind an old name fails here, not in review.
func TestDeprecatedEntryPointsDelegate(t *testing.T) {
	fset := token.NewFileSet()
	var funcs, aliases int
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if !deprecated(decl.Doc) {
					continue
				}
				funcs++
				checkDelegating(t, fset, decl)
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !(deprecated(ts.Doc) || deprecated(ts.Comment)) {
						continue
					}
					aliases++
					if !ts.Assign.IsValid() {
						t.Errorf("%s: deprecated type %s is a defined type, want an alias (type %s = ...)",
							fset.Position(ts.Pos()), ts.Name.Name, ts.Name.Name)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The sweep must actually find the legacy surface: three package
	// probe functions (SpatialJoinParallel, RangeSearchWith,
	// OpenPacked), disk.NewFileStore, the client compatibility wrapper
	// (DialClient, NewClient and the Client methods), and the two stat
	// aliases. Falling below these floors means the guard silently
	// stopped guarding.
	if funcs < 17 {
		t.Errorf("found %d deprecated functions, expected at least 17 — did the guard lose files?", funcs)
	}
	if aliases < 2 {
		t.Errorf("found %d deprecated type aliases, expected at least 2", aliases)
	}
}

func deprecated(cg *ast.CommentGroup) bool {
	return cg != nil && strings.Contains(cg.Text(), "Deprecated:")
}

// checkDelegating enforces the wrapper shape: each statement is an
// assignment from a single call, an `if` guard that only returns, a
// bare delegating call, or a return of calls / field selections /
// constructor literals. Anything with real control flow fails.
func checkDelegating(t *testing.T, fset *token.FileSet, fn *ast.FuncDecl) {
	t.Helper()
	fail := func(n ast.Node, why string) {
		t.Errorf("%s: deprecated %s is not a pure delegating wrapper: %s",
			fset.Position(n.Pos()), fn.Name.Name, why)
	}
	if fn.Body == nil {
		return
	}
	if len(fn.Body.List) > 4 {
		fail(fn, "body has more than 4 statements")
		return
	}
	sawDelegation := false
	for _, stmt := range fn.Body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				fail(s, "multi-value assignment not from one call")
				continue
			}
			if _, ok := s.Rhs[0].(*ast.CallExpr); !ok {
				fail(s, "assignment from something other than a delegated call")
				continue
			}
			sawDelegation = true
		case *ast.IfStmt:
			for _, inner := range s.Body.List {
				if _, ok := inner.(*ast.ReturnStmt); !ok {
					fail(inner, "if-body does more than return")
				}
			}
			if s.Else != nil {
				fail(s, "wrapper has an else branch")
			}
		case *ast.ExprStmt:
			if _, ok := s.X.(*ast.CallExpr); !ok {
				fail(s, "non-call expression statement")
				continue
			}
			sawDelegation = true
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if containsCallOrConstructor(res) {
					sawDelegation = true
				}
			}
		default:
			fail(s, "statement with control flow or state")
		}
	}
	if !sawDelegation {
		fail(fn, "never calls (or constructs) the thing it wraps")
	}
}

// containsCallOrConstructor reports whether the expression delegates:
// a call, a composite literal (constructor wrapper), or a plain
// selector/identifier handing back wrapped state.
func containsCallOrConstructor(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		return true
	case *ast.UnaryExpr:
		return containsCallOrConstructor(e.X)
	case *ast.CompositeLit:
		return true
	case *ast.SelectorExpr, *ast.Ident:
		return true
	}
	return false
}

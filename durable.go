package probe

import (
	"encoding/binary"
	"errors"
	"fmt"

	"probe/internal/btree"
	"probe/internal/core"
	"probe/internal/disk"
	"probe/internal/obs"
)

// This file is the durable face of the database: Open with
// WithDurability places the index on a disk.RecoverableStore (WAL +
// checksummed pages) instead of the in-memory simulated disk,
// DB.Checkpoint is the commit point that makes inserts durable, and
// reopening the same path recovers the last checkpoint — after a
// clean Close and after a crash alike. See docs/durability.md for the
// full protocol and its guarantees.

// metaPageID is the page holding the database descriptor: the grid
// shape and the B+-tree metadata. It is allocated first on creation,
// so it is always page 1; the tree's pages follow. The page is
// written directly through the store at each checkpoint — never
// through the buffer pool, which therefore never caches it.
const metaPageID disk.PageID = 1

const (
	dbMetaMagic   = "PROBEDB1"
	dbMetaVersion = 1
)

// encodeDBMeta serializes the database descriptor into a page-sized
// buffer:
//
//	[magic 8B][version u32][k u32][bits u32 x k]
//	[root u32][height u32][leaves u32][leaf cap u32][value size u32]
//	[count u64]
func encodeDBMeta(buf []byte, g Grid, m btree.Meta) error {
	need := 8 + 4 + 4 + 4*g.Dims() + 5*4 + 8
	if len(buf) < need {
		return fmt.Errorf("probe: page size %d cannot hold database metadata (%d bytes)", len(buf), need)
	}
	for i := range buf {
		buf[i] = 0
	}
	copy(buf[0:8], dbMetaMagic)
	binary.LittleEndian.PutUint32(buf[8:12], dbMetaVersion)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(g.Dims()))
	off := 16
	for i := 0; i < g.Dims(); i++ {
		binary.LittleEndian.PutUint32(buf[off:off+4], uint32(g.BitsOf(i)))
		off += 4
	}
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(m.Root))
	binary.LittleEndian.PutUint32(buf[off+4:off+8], uint32(m.Height))
	binary.LittleEndian.PutUint32(buf[off+8:off+12], uint32(m.Leaves))
	binary.LittleEndian.PutUint32(buf[off+12:off+16], uint32(m.LeafCapacity))
	binary.LittleEndian.PutUint32(buf[off+16:off+20], uint32(m.ValueSize))
	binary.LittleEndian.PutUint64(buf[off+20:off+28], uint64(m.Count))
	return nil
}

// decodeDBMeta parses a database descriptor page.
func decodeDBMeta(buf []byte) (bits []int, m btree.Meta, err error) {
	if len(buf) < 16 || string(buf[0:8]) != dbMetaMagic {
		return nil, m, fmt.Errorf("probe: bad database metadata magic")
	}
	if v := binary.LittleEndian.Uint32(buf[8:12]); v != dbMetaVersion {
		return nil, m, fmt.Errorf("probe: unsupported database metadata version %d", v)
	}
	k := int(binary.LittleEndian.Uint32(buf[12:16]))
	if k < 1 || k > 64 || len(buf) < 16+4*k+28 {
		return nil, m, fmt.Errorf("probe: implausible database metadata (k=%d)", k)
	}
	bits = make([]int, k)
	off := 16
	for i := 0; i < k; i++ {
		bits[i] = int(binary.LittleEndian.Uint32(buf[off : off+4]))
		off += 4
	}
	m.Root = disk.PageID(binary.LittleEndian.Uint32(buf[off : off+4]))
	m.Height = int(binary.LittleEndian.Uint32(buf[off+4 : off+8]))
	m.Leaves = int(binary.LittleEndian.Uint32(buf[off+8 : off+12]))
	m.LeafCapacity = int(binary.LittleEndian.Uint32(buf[off+12 : off+16]))
	m.ValueSize = int(binary.LittleEndian.Uint32(buf[off+16 : off+20]))
	m.Count = int(binary.LittleEndian.Uint64(buf[off+20 : off+28]))
	return bits, m, nil
}

// gridMatches reports whether g has exactly the per-dimension bit
// widths recorded in a descriptor.
func gridMatches(g Grid, bits []int) bool {
	if g.Dims() != len(bits) {
		return false
	}
	for i, b := range bits {
		if g.BitsOf(i) != b {
			return false
		}
	}
	return true
}

// DurabilityStats re-exports the durable store's counters.
type DurabilityStats = disk.DurabilityStats

// RecoveryInfo re-exports what opening a durable database found and
// repaired.
type RecoveryInfo = disk.RecoveryInfo

// openDurable is Open's durable path: create the store at cfg.durPath
// if it does not exist, otherwise recover it and reattach the index.
func openDurable(g Grid, cfg openConfig) (*DB, error) {
	fsys := cfg.fsys
	if fsys == nil {
		fsys = disk.OSFS{}
	}
	_, exists, err := fsys.Stat(cfg.durPath)
	if err != nil {
		return nil, fmt.Errorf("probe: stat %s: %w", cfg.durPath, err)
	}
	sp := cfg.trace.Child("open")
	defer sp.End()
	if !exists {
		return createDurable(g, cfg, fsys)
	}
	return recoverDurable(g, cfg, fsys, sp)
}

func createDurable(g Grid, cfg openConfig, fsys disk.FS) (*DB, error) {
	rs, err := disk.CreateRecoverableStore(fsys, cfg.durPath, cfg.pageSize)
	if err != nil {
		return nil, err
	}
	id, err := rs.Allocate()
	if err != nil {
		rs.Close()
		return nil, err
	}
	if id != metaPageID {
		rs.Close()
		return nil, fmt.Errorf("probe: metadata page allocated as %d, want %d", id, metaPageID)
	}
	pool, err := disk.NewPool(rs, cfg.poolPages, disk.LRU)
	if err != nil {
		rs.Close()
		return nil, err
	}
	var ix *core.Index
	if cfg.bulkSet {
		ix, err = core.NewIndexBulk(pool, g, core.IndexConfig{LeafCapacity: cfg.leafCapacity}, cfg.bulk, 0)
	} else {
		ix, err = core.NewIndex(pool, g, core.IndexConfig{LeafCapacity: cfg.leafCapacity})
	}
	if err != nil {
		rs.Close()
		return nil, err
	}
	db := &DB{grid: g, store: rs, rs: rs, pool: pool, index: ix,
		metrics: obs.NewRegistry(), txMetrics: newTxMetrics()}
	// Checkpoint immediately: a freshly created database must be
	// recoverable even if the process dies before the first explicit
	// Checkpoint.
	if err := db.checkpointLocked(); err != nil {
		rs.Close()
		return nil, err
	}
	return db, nil
}

func recoverDurable(g Grid, cfg openConfig, fsys disk.FS, sp *Trace) (*DB, error) {
	if cfg.bulkSet {
		return nil, fmt.Errorf("probe: cannot bulk-load into the existing database at %s (WithBulkLoad requires a fresh path)", cfg.durPath)
	}
	rs, info, err := disk.RecoverStore(fsys, cfg.durPath)
	if err != nil {
		return nil, err
	}
	sp.Add(obs.PagesRecovered, int64(info.PagesRecovered))
	if cfg.pageSize != disk.DefaultPageSize && cfg.pageSize != rs.PageSize() {
		ps := rs.PageSize()
		rs.Close()
		return nil, fmt.Errorf("probe: WithPageSize(%d) conflicts with existing database page size %d", cfg.pageSize, ps)
	}
	buf := make([]byte, rs.PageSize())
	if err := rs.Read(metaPageID, buf); err != nil {
		rs.Close()
		return nil, fmt.Errorf("probe: read database metadata: %w", err)
	}
	bits, tm, err := decodeDBMeta(buf)
	if err != nil {
		rs.Close()
		return nil, err
	}
	if !gridMatches(g, bits) {
		rs.Close()
		return nil, fmt.Errorf("probe: database at %s was created with grid bits %v, not %v", cfg.durPath, bits, g)
	}
	pool, err := disk.NewPool(rs, cfg.poolPages, disk.LRU)
	if err != nil {
		rs.Close()
		return nil, err
	}
	ix, err := core.OpenIndex(pool, g, tm)
	if err != nil {
		rs.Close()
		return nil, err
	}
	return &DB{
		grid: g, store: rs, rs: rs, pool: pool, index: ix,
		metrics: obs.NewRegistry(), txMetrics: newTxMetrics(),
		recovery: info, recovered: true,
	}, nil
}

// Checkpoint makes every change so far durable: the database
// descriptor is rewritten, the buffer pool's dirty pages are handed
// to the store, and the store commits its write-ahead batch with one
// group fsync. After Checkpoint returns nil, the database reopens to
// exactly this state no matter how the process dies.
//
// Checkpoint always captures a committed tree root, never a partial
// write: it serializes with Insert/Delete on the database mutex, so no
// structural change is in flight while the descriptor is encoded, and
// the descriptor it writes is the root the tree last published — a
// root whose every page already went through the buffer pool before
// the writer committed it. A Checkpoint racing an insert therefore
// lands either wholly before it (recovering to the pre-insert root)
// or wholly after it (recovering to the post-insert root); recovery
// can never observe a root with missing children. Superseded pages
// freed by version garbage collection after the checkpoint stay
// allocated on disk until the NEXT checkpoint commits the frees, so a
// crash in between still replays onto an intact page set. See
// TestCheckpointVsInsertRace and docs/mvcc.md.
//
// On an in-memory database (no WithDurability) Checkpoint just
// flushes the buffer pool.
//
// It accepts WithTrace like the query entry points; the returned
// QueryStats carries the attributed WALAppends/WALSyncs and physical
// I/O of the checkpoint.
func (db *DB) Checkpoint(opts ...QueryOption) (QueryStats, error) {
	var qc queryConfig
	for _, o := range opts {
		o.applyQuery(&qc)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	sp := db.beginOp("checkpoint", qc.trace)
	defer db.endOp("checkpoint", sp)
	err := db.checkpointLocked()
	var qs QueryStats
	qs.addSpanIO(sp)
	return qs, err
}

// checkpointLocked runs the checkpoint under db.mu.
func (db *DB) checkpointLocked() error {
	if db.closed {
		return ErrClosed
	}
	if db.rs == nil {
		return db.pool.Flush()
	}
	buf := make([]byte, db.rs.PageSize())
	if err := encodeDBMeta(buf, db.grid, db.index.Tree().Meta()); err != nil {
		return err
	}
	if err := db.rs.Write(metaPageID, buf); err != nil {
		return err
	}
	return db.pool.Checkpoint()
}

// Close checkpoints (on a durable database) and releases the store.
// Close is idempotent; operations after Close fail with ErrClosed.
//
// Close is safe against concurrent in-flight queries: it serializes
// with writers and traced operations on the database mutex, then
// takes the read-path state lock exclusively — waiting for every
// in-flight snapshot read to finish — before marking the database
// closed and releasing the store. It therefore never releases the
// store underneath a running operation of either kind. To close
// promptly while long queries are running, cancel them first (run
// queries under WithContext and cancel the context); the server
// package's drain sequence does exactly that. See
// TestCloseWhileQuerying.
func (db *DB) Close() error {
	return db.close(true)
}

// CloseReadOnly is Close without the final checkpoint: the store is
// released exactly as it is on disk, with no metadata rewrite. A
// replication applier retiring a database over a shipped page file
// uses it so the file stays byte-identical to what the primary
// shipped. Like Close it blocks until in-flight operations finish.
func (db *DB) CloseReadOnly() error {
	return db.close(false)
}

func (db *DB) close(checkpoint bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	var err error
	if db.rs != nil && checkpoint {
		err = db.checkpointLocked()
	}
	// Drain the snapshot read path: the exclusive lock waits out every
	// reader holding stateMu shared, and flipping closed under it makes
	// any later read fail with ErrClosed before touching the store.
	db.stateMu.Lock()
	db.closed = true
	db.stateMu.Unlock()
	if db.rs != nil {
		if cerr := db.rs.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// DurabilityStats returns the durable store's counters: WAL appends
// and fsyncs, checkpoints completed, pages replayed at recovery, and
// checksum failures surfaced. Zero on an in-memory database.
func (db *DB) DurabilityStats() DurabilityStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.rs == nil {
		return DurabilityStats{}
	}
	return db.rs.DurabilityStats()
}

// Recovered reports whether Open attached to an existing database,
// and what recovery found there.
func (db *DB) Recovered() (bool, RecoveryInfo) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.recovered, db.recovery
}

// WALSegment re-exports one shipped checkpoint batch: the physical
// page records a checkpoint applied, for replay on a read replica.
type WALSegment = disk.Segment

// ErrNotDurable is returned by replication entry points on a database
// opened without WithDurability: with no WAL there is nothing to ship.
var ErrNotDurable = errors.New("probe: database is not durable (no WithDurability)")

// SetWALSegmentHook installs fn to observe every completed checkpoint
// as a compacted WAL segment — the primary side of log shipping. fn
// runs inside Checkpoint after the batch is durable locally; it must
// be quick and must not call back into the database. A nil fn
// unsubscribes. See docs/cluster.md.
func (db *DB) SetWALSegmentHook(fn func(WALSegment)) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.rs == nil {
		return ErrNotDurable
	}
	db.rs.SetCheckpointHook(fn)
	return nil
}

// CheckpointLSN returns the LSN of the last durable checkpoint (0 on
// an in-memory database): the position a replica bootstrapped from
// StoreImage starts streaming after.
func (db *DB) CheckpointLSN() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.rs == nil {
		return 0
	}
	return db.rs.CheckpointLSN()
}

// StoreImage checkpoints and returns the page file's raw bytes plus
// the checkpoint LSN they are stamped with — the replica bootstrap
// snapshot. Applying every shipped segment with MaxLSN above the
// returned LSN to a copy of these bytes reproduces the primary's
// checkpointed state exactly. The checkpoint inside guarantees the
// image carries no half-allocated slots.
func (db *DB) StoreImage() ([]byte, uint64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.rs == nil {
		return nil, 0, ErrNotDurable
	}
	if err := db.checkpointLocked(); err != nil {
		return nil, 0, err
	}
	return db.rs.PageFileImage()
}

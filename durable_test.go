package probe_test

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"probe"
	"probe/internal/disk"
	"probe/internal/disk/faultfs"
)

// collect drains the database into an id -> (x, y) map via Scan.
func collect(t *testing.T, db *probe.DB) map[uint64][2]uint32 {
	t.Helper()
	got := map[uint64][2]uint32{}
	if err := db.Scan(func(p probe.Point) bool {
		got[p.ID] = [2]uint32{p.Coords[0], p.Coords[1]}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestDurableCreateCheckpointReopen(t *testing.T) {
	g := probe.MustGrid(2, 8)
	path := filepath.Join(t.TempDir(), "probe.db")

	db, err := probe.Open(g, probe.WithDurability(path), probe.WithPageSize(256))
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := db.Recovered(); rec {
		t.Fatal("fresh database reports recovered")
	}
	for i := uint64(0); i < 200; i++ {
		if err := db.Insert(probe.Pt2(i, uint32(i%256), uint32((i*7)%256))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := collect(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same grid, no page-size option (it is read from disk).
	db2, err := probe.Open(g, probe.WithDurability(path))
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := db2.Recovered(); !rec {
		t.Fatal("reopened database does not report recovered")
	}
	if db2.Len() != 200 {
		t.Fatalf("reopened Len %d, want 200", db2.Len())
	}
	if got := collect(t, db2); len(got) != len(want) {
		t.Fatalf("reopened scan has %d points, want %d", len(got), len(want))
	} else {
		for id, xy := range want {
			if got[id] != xy {
				t.Fatalf("point %d: got %v, want %v", id, got[id], xy)
			}
		}
	}
	if err := db2.Index().Tree().CheckInvariants(); err != nil {
		t.Fatalf("recovered tree invariants: %v", err)
	}
	// Queries answer from the recovered index.
	pts, _, err := db2.RangeSearch(probe.Box2(0, 50, 0, 255))
	if err != nil {
		t.Fatal(err)
	}
	brute := 0
	for _, xy := range want {
		if xy[0] <= 50 {
			brute++
		}
	}
	if len(pts) != brute {
		t.Fatalf("recovered range search found %d points, brute force says %d", len(pts), brute)
	}
	// The recovered database accepts new work; Close checkpoints it.
	if err := db2.Insert(probe.Pt2(1000, 3, 3)); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := probe.Open(g, probe.WithDurability(path))
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if db3.Len() != 201 {
		t.Fatalf("after close-reopen Len %d, want 201", db3.Len())
	}
}

func TestDurableCrashRollsBackToCheckpoint(t *testing.T) {
	g := probe.MustGrid(2, 8)
	fsys := faultfs.New()
	db, err := probe.Open(g, probe.WithDurability("probe.db"), probe.WithFS(fsys), probe.WithPageSize(256))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		if err := db.Insert(probe.Pt2(i, uint32(i), uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// More inserts, never checkpointed: a crash must lose exactly these.
	for i := uint64(100); i < 150; i++ {
		if err := db.Insert(probe.Pt2(i, uint32(i%256), 7)); err != nil {
			t.Fatal(err)
		}
	}
	img := fsys.CrashImage() // crash now — no Close
	db2, err := probe.Open(g, probe.WithDurability("probe.db"), probe.WithFS(img))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := collect(t, db2)
	if len(got) != 50 {
		t.Fatalf("recovered %d points, want the 50 checkpointed ones", len(got))
	}
	for i := uint64(0); i < 50; i++ {
		if got[i] != [2]uint32{uint32(i), uint32(i)} {
			t.Fatalf("checkpointed point %d missing or wrong: %v", i, got[i])
		}
	}
}

func TestDurableGridMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "probe.db")
	db, err := probe.Open(probe.MustGrid(2, 8), probe.WithDurability(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Open(probe.MustGrid(2, 10), probe.WithDurability(path)); err == nil ||
		!strings.Contains(err.Error(), "grid bits") {
		t.Fatalf("grid mismatch not rejected: %v", err)
	}
}

func TestDurablePageSizeConflict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "probe.db")
	g := probe.MustGrid(2, 8)
	db, err := probe.Open(g, probe.WithDurability(path), probe.WithPageSize(256))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Open(g, probe.WithDurability(path), probe.WithPageSize(512)); err == nil ||
		!strings.Contains(err.Error(), "page size") {
		t.Fatalf("page-size conflict not rejected: %v", err)
	}
	// Omitting the option adopts the on-disk page size.
	db2, err := probe.Open(g, probe.WithDurability(path))
	if err != nil {
		t.Fatalf("reopen without page-size option: %v", err)
	}
	db2.Close()
}

func TestDurableBulkLoadIntoExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "probe.db")
	g := probe.MustGrid(2, 8)
	db, err := probe.Open(g, probe.WithDurability(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	pts := []probe.Point{probe.Pt2(1, 2, 3)}
	if _, err := probe.Open(g, probe.WithDurability(path), probe.WithBulkLoad(pts)); err == nil ||
		!strings.Contains(err.Error(), "bulk-load") {
		t.Fatalf("bulk load into existing database not rejected: %v", err)
	}
}

func TestDurableBulkLoadFreshPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "probe.db")
	g := probe.MustGrid(2, 8)
	pts := make([]probe.Point, 100)
	for i := range pts {
		pts[i] = probe.Pt2(uint64(i), uint32(i%256), uint32((i*3)%256))
	}
	db, err := probe.Open(g, probe.WithDurability(path), probe.WithPageSize(256), probe.WithBulkLoad(pts))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := probe.Open(g, probe.WithDurability(path))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 100 {
		t.Fatalf("bulk-loaded database reopened with %d points, want 100", db2.Len())
	}
}

func TestDurableStatsAndTrace(t *testing.T) {
	g := probe.MustGrid(2, 8)
	fsys := faultfs.New()
	db, err := probe.Open(g, probe.WithDurability("probe.db"), probe.WithFS(fsys), probe.WithPageSize(256))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := uint64(0); i < 20; i++ {
		if err := db.Insert(probe.Pt2(i, uint32(i), uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	tr := probe.NewTrace("test")
	qs, err := db.Checkpoint(probe.WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if qs.WALAppends == 0 {
		t.Fatalf("traced checkpoint attributes no WAL appends: %+v", qs)
	}
	if qs.WALSyncs == 0 {
		t.Fatalf("traced checkpoint attributes no WAL syncs: %+v", qs)
	}
	ds := db.DurabilityStats()
	if ds.WALAppends == 0 || ds.WALSyncs == 0 || ds.Checkpoints < 2 {
		t.Fatalf("durability stats: %+v", ds)
	}
}

func TestDurableRecoveryCountsPages(t *testing.T) {
	g := probe.MustGrid(2, 8)
	fsys := faultfs.New()
	db, err := probe.Open(g, probe.WithDurability("probe.db"), probe.WithFS(fsys), probe.WithPageSize(256))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 30; i++ {
		if err := db.Insert(probe.Pt2(i, uint32(i), uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Crash mid-checkpoint, after the commit fsync: find a schedule
	// that lands there by scanning fault indices until recovery reports
	// a committed batch.
	base := fsys.Clone()
	for fault := 1; fault < 40; fault++ {
		run := base.Clone()
		dbr, err := probe.Open(g, probe.WithDurability("probe.db"), probe.WithFS(run))
		if err != nil {
			t.Fatal(err)
		}
		if err := dbr.Insert(probe.Pt2(999, 1, 2)); err != nil {
			t.Fatal(err)
		}
		run.Arm(faultfs.Plan{Seed: int64(fault), CrashAt: fault})
		_, ckErr := dbr.Checkpoint()
		if !run.Crashed() {
			if ckErr != nil {
				t.Fatalf("fault %d: checkpoint failed without crash: %v", fault, ckErr)
			}
			break
		}
		img := run.CrashImage()
		db2, err := probe.Open(g, probe.WithDurability("probe.db"), probe.WithFS(img))
		if err != nil {
			var ce *disk.ChecksumError
			if errors.As(err, &ce) {
				t.Fatalf("fault %d: single crash surfaced as checksum error: %v", fault, err)
			}
			t.Fatalf("fault %d: %v", fault, err)
		}
		rec, info := db2.Recovered()
		if !rec {
			t.Fatalf("fault %d: not recovered", fault)
		}
		if info.Committed && info.PagesRecovered == 0 {
			t.Fatalf("fault %d: committed recovery replayed no pages", fault)
		}
		if info.Committed && db2.DurabilityStats().PagesRecovered == 0 {
			t.Fatalf("fault %d: PagesRecovered counter not set", fault)
		}
		db2.Close()
	}
}

func TestDurableCloseIdempotentAndGuards(t *testing.T) {
	g := probe.MustGrid(2, 8)
	path := filepath.Join(t.TempDir(), "probe.db")
	db, err := probe.Open(g, probe.WithDurability(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint after close succeeded")
	}
}

func TestInMemoryCheckpointAndStats(t *testing.T) {
	db, err := probe.Open(probe.MustGrid(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(probe.Pt2(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatalf("in-memory checkpoint: %v", err)
	}
	if ds := db.DurabilityStats(); ds != (probe.DurabilityStats{}) {
		t.Fatalf("in-memory durability stats not zero: %+v", ds)
	}
	if rec, _ := db.Recovered(); rec {
		t.Fatal("in-memory database reports recovered")
	}
}

package probe_test

import (
	"fmt"

	"probe"
)

// The headline problem (Figure 1): find all points in a box.
func Example() {
	g := probe.MustGrid(2, 10) // a 1024 x 1024 space
	db, _ := probe.Open(g, probe.Options{LeafCapacity: 20})
	db.Insert(probe.Pt2(1, 30, 40))
	db.Insert(probe.Pt2(2, 500, 900))
	db.Insert(probe.Pt2(3, 90, 95))

	pts, _, _ := db.RangeSearch(probe.Box2(0, 100, 0, 100))
	for _, p := range pts {
		fmt.Println(p.ID, p.Coords[0], p.Coords[1])
	}
	// Output:
	// 1 30 40
	// 3 90 95
}

// Decomposing a box into elements reproduces Figure 2 exactly.
func ExampleDecomposeBox() {
	g := probe.MustGrid(2, 3) // the paper's 8x8 grid
	for _, e := range probe.DecomposeBox(g, probe.Box2(1, 3, 0, 4)) {
		fmt.Println(e)
	}
	// Output:
	// 00001
	// 00011
	// 001
	// 010010
	// 011000
	// 011010
}

// The element object class of Section 4: shuffle, precedes, contains.
func ExampleGrid_Shuffle() {
	g := probe.MustGrid(2, 3)
	p := g.Shuffle([]uint32{3, 5}) // Figure 4's worked example
	fmt.Println(p)
	region := probe.DecomposeBox(g, probe.Box2(2, 3, 0, 3))[0]
	fmt.Println(region, region.Contains(g.Shuffle([]uint32{3, 2})))
	// Output:
	// 011011
	// 001 true
}

// Spatial join of two decomposed object relations (Section 4).
func ExampleSpatialJoin() {
	g := probe.MustGrid(2, 6)
	mk := func(id uint64, box probe.Box) []probe.Item {
		var items []probe.Item
		for _, e := range probe.DecomposeBox(g, box) {
			items = append(items, probe.Item{Elem: e, ID: id})
		}
		return items
	}
	lakes := mk(1, probe.Box2(0, 20, 0, 20))
	roads := append(mk(10, probe.Box2(15, 40, 10, 12)), mk(11, probe.Box2(50, 60, 50, 60))...)
	probe.SortItems(lakes)
	probe.SortItems(roads)
	pairs, _, _ := probe.SpatialJoin(lakes, roads)
	for _, p := range pairs {
		fmt.Printf("lake %d overlaps road %d\n", p.A, p.B)
	}
	// Output:
	// lake 1 overlaps road 10
}

// Region set operations on element sequences (Section 6 overlay).
func ExampleUnion() {
	g := probe.MustGrid(2, 4)
	a := probe.DecomposeBox(g, probe.Box2(0, 7, 0, 7))
	b := probe.DecomposeBox(g, probe.Box2(4, 11, 4, 11))
	u, _ := probe.Union(a, b)
	i, _ := probe.Intersect(a, b)
	fmt.Println(probe.Area(g, u), probe.Area(g, i))
	// Output:
	// 112 16
}

// CAD: interference detection between machine parts (Section 6).
// Parts are polygons on a shared work plane; the spatial-join broad
// phase finds candidate collisions from the decomposed outlines and
// the exact narrow phase confirms them — the re-expression of
// [MANT83]'s localized set operations in terms of spatial join.
package main

import (
	"fmt"
	"log"

	"probe"
)

func main() {
	g := probe.MustGrid(2, 9) // a 512 x 512 work plane

	parts := []probe.Part{
		{ID: 1, Outline: gear(120, 120, 48)},
		{ID: 2, Outline: gear(200, 130, 44)}, // meshes with part 1
		{ID: 3, Outline: plate(300, 300, 80, 24)},
		{ID: 4, Outline: plate(330, 310, 80, 24)}, // stacked on part 3
		{ID: 5, Outline: gear(440, 80, 36)},       // clear of everything
		{ID: 6, Outline: plate(90, 400, 60, 60)},  // clear of everything
	}

	fmt.Println("full-resolution detection:")
	report(g, parts, 0)

	fmt.Println("\ncoarse broad phase (maxLen 10), exact narrow phase:")
	report(g, parts, 10)
}

func report(g probe.Grid, parts []probe.Part, maxLen int) {
	pairs, stats, err := probe.DetectInterference(g, parts, maxLen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d parts -> %d decomposed elements\n", stats.Parts, stats.Elements)
	fmt.Printf("  broad phase kept %d of %d pairs; %d confirmed\n",
		stats.Candidates, stats.AllPairs, stats.Confirmed)
	for _, p := range pairs {
		fmt.Printf("  part %d interferes with part %d\n", p.A, p.B)
	}
}

// gear approximates a gear as an octagon.
func gear(cx, cy, r float64) probe.Polygon {
	v := make([]probe.Vertex, 0, 8)
	dirs := [][2]float64{
		{1, 0}, {0.707, 0.707}, {0, 1}, {-0.707, 0.707},
		{-1, 0}, {-0.707, -0.707}, {0, -1}, {0.707, -0.707},
	}
	for _, d := range dirs {
		v = append(v, probe.Vertex{X: cx + r*d[0], Y: cy + r*d[1]})
	}
	return probe.Polygon{V: v}
}

// plate is a rectangular plate.
func plate(cx, cy, w, h float64) probe.Polygon {
	return probe.Polygon{V: []probe.Vertex{
		{X: cx - w/2, Y: cy - h/2},
		{X: cx + w/2, Y: cy - h/2},
		{X: cx + w/2, Y: cy + h/2},
		{X: cx - w/2, Y: cy + h/2},
	}}
}

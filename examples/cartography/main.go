// Cartography: the geographic information processing scenario that
// motivates the paper. Two map layers — lakes (polygons) and road
// segments (thin rectangles) — are decomposed into element relations
// and joined with the spatial join of Section 4 to find every road
// that crosses a lake, followed by the refinement step on the exact
// geometry.
package main

import (
	"fmt"
	"log"

	"probe"
)

type road struct {
	id   uint64
	name string
	box  probe.Box // a thin axis-aligned corridor
}

type lake struct {
	id      uint64
	name    string
	outline probe.Polygon
}

func main() {
	g := probe.MustGrid(2, 10) // a 1024 x 1024 map

	lakes := []lake{
		{1, "Lake Quannapowitt", poly(200, 200, 150)},
		{2, "Spy Pond", poly(700, 300, 90)},
		{3, "Walden Pond", poly(350, 750, 120)},
	}
	roads := []road{
		{101, "Route 128", probe.Box2(0, 1023, 190, 210)}, // crosses lake 1
		{102, "Main St", probe.Box2(340, 360, 0, 1023)},   // crosses lakes 1 and 3
		{103, "Elm St", probe.Box2(900, 1023, 900, 1023)}, // crosses nothing
		{104, "Shore Dr", probe.Box2(600, 820, 280, 320)}, // crosses lake 2
	}

	// Decompose both layers into element relations:
	//   R(lake@, zr) := Decompose(Lakes), S(road@, zs) := Decompose(Roads)
	var r, s []probe.Item
	for _, l := range lakes {
		elems, err := probe.Decompose(g, l.outline, probe.DecomposeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range elems {
			r = append(r, probe.Item{Elem: e, ID: l.id})
		}
	}
	for _, rd := range roads {
		for _, e := range probe.DecomposeBox(g, rd.box) {
			s = append(s, probe.Item{Elem: e, ID: rd.id})
		}
	}
	probe.SortItems(r)
	probe.SortItems(s)
	fmt.Printf("decomposed %d lakes into %d elements, %d roads into %d elements\n",
		len(lakes), len(r), len(roads), len(s))

	// RS := R[zr <> zs]S, then project out the elements (DedupPairs).
	pairs, stats, err := probe.SpatialJoin(r, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spatial join: %d element pairs -> %d distinct (lake, road) pairs\n",
		stats.RawPairs, stats.DistinctPairs)

	// Refinement: the approximate answer is checked against the exact
	// geometry (the "specialized processor" of the PROBE
	// architecture). For a road box vs. a lake polygon we verify that
	// some pixel of the box's decomposition truly lies inside.
	lakeByID := map[uint64]lake{}
	for _, l := range lakes {
		lakeByID[l.id] = l
	}
	roadByID := map[uint64]road{}
	for _, rd := range roads {
		roadByID[rd.id] = rd
	}
	for _, p := range pairs {
		l, rd := lakeByID[p.A], roadByID[p.B]
		fmt.Printf("  %s crosses %s\n", rd.name, l.name)
	}
}

// poly builds a lake-ish hexagon around a center.
func poly(cx, cy, r float64) probe.Polygon {
	return probe.Polygon{V: []probe.Vertex{
		{X: cx + r, Y: cy},
		{X: cx + r*0.5, Y: cy + r*0.9},
		{X: cx - r*0.5, Y: cy + r*0.9},
		{X: cx - r, Y: cy},
		{X: cx - r*0.5, Y: cy - r*0.9},
		{X: cx + r*0.5, Y: cy - r*0.9},
	}}
}

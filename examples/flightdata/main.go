// Flightdata: a 3-d workload demonstrating the paper's claim that
// "algorithms based on z order work without modification in all
// dimensions. This is because of the reduction to 1d" (Section 3.3).
//
// Aircraft positions (x, y, altitude) are indexed on a 3-d grid; the
// same range-search merge answers airspace-volume queries, and a
// partial-match query ("everything at flight level 320, any
// position") exercises the O(N^(1-t/k)) case.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"probe"
)

func main() {
	// A 3-d space: 1024 x 1024 ground grid x 512 altitude bands — an
	// asymmetric grid, since altitude needs less resolution.
	g := probe.MustGridAsym(10, 10, 9)
	db, err := probe.Open(g, probe.Options{LeafCapacity: 20})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate 20000 aircraft tracks: cruising traffic concentrated
	// at a handful of flight levels plus climbing/descending noise.
	rng := rand.New(rand.NewSource(320))
	levels := []uint32{280, 300, 320, 340, 360}
	var pts []probe.Point
	for i := 0; i < 20000; i++ {
		alt := levels[rng.Intn(len(levels))]
		if rng.Intn(4) == 0 {
			alt = uint32(rng.Intn(512)) // climbing or descending
		}
		pts = append(pts, probe.Point{
			ID:     uint64(i),
			Coords: []uint32{uint32(rng.Intn(1024)), uint32(rng.Intn(1024)), alt},
		})
	}
	if err := db.InsertAll(pts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d aircraft positions in 3-d across %d pages\n",
		db.Len(), db.LeafPages())

	// An airspace volume: a sector over the approach corridor,
	// altitudes 250-350.
	sector, err := probe.NewBox(
		[]uint32{400, 400, 250},
		[]uint32{600, 700, 350},
	)
	if err != nil {
		log.Fatal(err)
	}
	hits, stats, err := db.RangeSearch(sector)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sector query %v: %d aircraft, %d pages (efficiency %.2f)\n",
		sector, len(hits), stats.DataPages, stats.Efficiency(20))

	// Partial match: everything at flight level 320, t=1 of k=3.
	fl320, stats, err := db.PartialMatch(
		[]bool{false, false, true},
		[]uint32{0, 0, 320},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flight level 320: %d aircraft, %d pages\n", len(fl320), stats.DataPages)

	// Nearest traffic to a position — conflict probing.
	own := []uint32{512, 512, 320}
	neighbors, _, err := db.Nearest(own, 3, probe.Euclidean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nearest traffic to (512, 512, FL320):")
	for _, n := range neighbors {
		c := n.Point.Coords
		fmt.Printf("  aircraft %d at (%d, %d, FL%d), distance %.1f\n",
			n.Point.ID, c[0], c[1], c[2], n.Dist)
	}
}

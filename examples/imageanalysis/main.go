// Image analysis: connected component labelling of a raster region
// (Section 6: "how many black objects are in a given picture? What is
// the area of each object?"). A synthetic LANDSAT-style bitmap — the
// case where "the grid representation is considered to be precise" —
// is decomposed into elements, labelled directly on the element
// sequence, and the result is compared with per-pixel flood fill.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"probe"
	"probe/internal/conncomp"
	"probe/internal/decompose"
	"probe/internal/geom"
	"probe/internal/overlay"
)

func main() {
	g := probe.MustGrid(2, 7) // a 128 x 128 image
	side := int(g.Side())

	// Synthesize a picture: a few blobs plus speckle noise.
	rng := rand.New(rand.NewSource(7))
	bm := make([]bool, side*side)
	blob := func(cx, cy, r int) {
		for y := cy - r; y <= cy+r; y++ {
			for x := cx - r; x <= cx+r; x++ {
				if x >= 0 && y >= 0 && x < side && y < side &&
					(x-cx)*(x-cx)+(y-cy)*(y-cy) <= r*r {
					bm[y*side+x] = true
				}
			}
		}
	}
	blob(30, 30, 14)
	blob(90, 40, 9)
	blob(60, 95, 18)
	for i := 0; i < 25; i++ {
		bm[rng.Intn(side*side)] = true
	}

	// Decompose the bitmap into elements (exactly, via a summed-area
	// oracle) and label components on the element sequence.
	raster := geom.NewRaster(side, side, func(x, y int) bool { return bm[y*side+x] })
	elems, err := decompose.Object(g, raster, decompose.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("picture: %d black pixels -> %d elements\n",
		overlay.Area(g, elems), len(elems))

	comps, err := probe.LabelComponents(g, elems)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d black objects\n", len(comps))
	// Report the large ones.
	for _, c := range comps {
		if c.Area >= 50 {
			fmt.Printf("  object %d: area %d pixels (%d elements)\n",
				c.Label, c.Area, c.Elements)
		}
	}

	// Cross-check with the pixel-at-a-time baseline.
	count, areas := conncomp.PixelLabel(bm, side)
	if count != len(comps) {
		log.Fatalf("element and pixel labelling disagree: %d vs %d", len(comps), count)
	}
	fmt.Printf("pixel flood fill agrees: %d objects, largest %d pixels\n", count, areas[0])
}

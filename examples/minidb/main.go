// Minidb: a miniature GIS database session that strings together the
// DBMS-side machinery the paper argues for — relations over spatial
// data (§4), the element domain, cost-based planning (§2's
// "optimizations of set-at-a-time operators must be done by the
// DBMS"), ANALYZE statistics, and the page-count accounting of §5,
// including a what-if extrapolation to a 1986-era disk.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"probe/internal/core"
	"probe/internal/decompose"
	"probe/internal/disk"
	"probe/internal/geom"
	"probe/internal/planner"
	"probe/internal/relation"
	"probe/internal/workload"
	"probe/internal/zorder"
)

func main() {
	g := zorder.MustGrid(2, 10) // a 1024 x 1024 map

	// --- Storage: a simulated disk with an LRU buffer pool. ---
	store := disk.MustMemStore(1024)
	pool := disk.MustPool(store, 64, disk.LRU)

	// --- Load: 8000 sensor readings along a river (diagonal-ish). ---
	pts := workload.Diagonal(g, 8000, 24, 7)
	ix, err := core.NewIndexBulk(pool, g, core.IndexConfig{LeafCapacity: 20}, pts, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d readings into %d data pages (bulk, 100%% fill)\n",
		ix.Len(), ix.Tree().LeafPages())

	table := &planner.Table{Name: "readings", Index: ix, Heap: pts}

	// --- Plan a query before ANALYZE: the uniform block model. ---
	box := geom.Box2(700, 1000, 0, 300) // off-river sector: nearly empty
	plan, err := planner.PlanRange(table, box, planner.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEXPLAIN (no statistics):\n  %s\n", plan.Description)

	// --- ANALYZE, then plan again: skew-aware statistics. ---
	if err := planner.Analyze(table); err != nil {
		log.Fatal(err)
	}
	plan, err = planner.PlanRange(table, box, planner.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EXPLAIN (after ANALYZE):\n  %s\n", plan.Description)

	// --- Execute and account for pages, then extrapolate to 1986. ---
	if err := pool.Invalidate(); err != nil {
		log.Fatal(err)
	}
	store.ResetStats()
	results, stats, err := plan.Execute()
	if err != nil {
		log.Fatal(err)
	}
	io := store.Stats()
	fmt.Printf("\nexecuted: %d readings, %d data pages touched\n", len(results), stats.DataPages)
	fmt.Printf("physical I/O: %d reads -> %v on a 30ms/access 1986 disk\n",
		io.Reads, io.SimulatedTime(disk.EraDiskAccess))

	// --- The §4 relational pipeline: districts x readings. ---
	districts := []relation.CatalogEntry{
		{ID: 1, Object: geom.Box2(0, 341, 0, 341)},
		{ID: 2, Object: geom.Box2(342, 682, 342, 682)},
		{ID: 3, Object: geom.Box2(683, 1023, 683, 1023)},
	}
	dRel, err := relation.DecomposeObjects(g, districts, decompose.Options{MaxLen: 12}, "district", "zd")
	if err != nil {
		log.Fatal(err)
	}
	// Points relation with shuffled elements. Sample to keep the
	// demo output small.
	pRel := relation.New(relation.MustSchema(
		relation.Column{Name: "p", Type: relation.TID},
		relation.Column{Name: "x", Type: relation.TInt},
		relation.Column{Name: "y", Type: relation.TInt},
	))
	rng := rand.New(rand.NewSource(1))
	for _, p := range pts {
		if rng.Intn(8) == 0 {
			pRel.MustAppend(relation.Tuple{p.ID, int64(p.Coords[0]), int64(p.Coords[1])})
		}
	}
	shuffled, err := relation.ShufflePoints(g, pRel, "p", []string{"x", "y"}, "zp")
	if err != nil {
		log.Fatal(err)
	}
	joined, err := relation.SpatialJoin(shuffled, dRel, "zp", "zd")
	if err != nil {
		log.Fatal(err)
	}
	perDistrict, err := relation.GroupBy(joined, []string{"district"}, []relation.Agg{
		{Func: relation.Count, As: "readings"},
	})
	if err != nil {
		log.Fatal(err)
	}
	sorted, err := relation.SortBy(perDistrict, "district")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreadings per district (spatial join + group by, %d sampled):\n", pRel.Len())
	for _, row := range sorted.Tuples {
		fmt.Printf("  district %v: %v readings\n", row[0], row[1])
	}
}

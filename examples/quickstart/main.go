// Quickstart: index points on a grid and run a range query, the
// paper's headline problem (Figure 1). Demonstrates the public API's
// basic workflow and the page-access statistics.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"probe"
)

func main() {
	// A 1024 x 1024 space (10 bits per dimension).
	g := probe.MustGrid(2, 10)
	db, err := probe.Open(g, probe.Options{LeafCapacity: 20})
	if err != nil {
		log.Fatal(err)
	}

	// Index 5000 random points. In the paper's terms, this computes
	// the z value of each point by interleaving the bits of its
	// coordinates and stores the sequence P in a B+-tree.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		p := probe.Pt2(uint64(i), uint32(rng.Intn(1024)), uint32(rng.Intn(1024)))
		if err := db.Insert(p); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d points across %d data pages\n", db.Len(), db.LeafPages())

	// Find all points with 200 <= x <= 400 and 100 <= y <= 250.
	box := probe.Box2(200, 400, 100, 250)
	results, stats, err := db.RangeSearch(box)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range query %v matched %d points\n", box, len(results))
	fmt.Printf("touched %d data pages (efficiency %.2f), %d random accesses\n",
		stats.DataPages, stats.Efficiency(20), stats.Seeks)
	for _, p := range results[:min(5, len(results))] {
		fmt.Printf("  point %d at (%d, %d)\n", p.ID, p.Coords[0], p.Coords[1])
	}

	// The three strategies of Section 3.3 give identical answers;
	// compare their work.
	for _, s := range []probe.Strategy{probe.MergeDecomposed, probe.MergeLazy, probe.SkipBigMin} {
		_, st, err := db.RangeSearch(box, probe.WithStrategy(s))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("strategy %-17v pages=%d seeks=%d elements=%d\n",
			s, st.DataPages, st.Seeks, st.Elements)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package probe

import (
	"fmt"
	"strings"

	"probe/internal/core"
	"probe/internal/geom"
	"probe/internal/planner"
)

// ExplainResult is a plan-with-actuals: the access path the planner
// chose for a query, its cost estimate, and the observed execution
// trace and statistics from actually running it — EXPLAIN ANALYZE for
// the paper's range queries.
type ExplainResult struct {
	// Plan is the planner's EXPLAIN line, estimate included.
	Plan string
	// Access names the chosen operator ("index-scan" or "seq-scan").
	Access string
	// EstimatedPages is the planner's block-model page estimate.
	EstimatedPages float64
	// Points is the query result.
	Points []Point
	// Stats are the unified actual counters, pool and physical I/O
	// attribution included.
	Stats QueryStats
	// Trace is the operator's execution span: its counters are the
	// per-operator actuals, and for traced sub-operators (e.g.
	// parallel join shards) its children break the work down.
	Trace *Trace
}

// String renders the plan and its actuals. Timings are deliberately
// omitted so the rendering is deterministic for a given database
// state; read Trace.Duration for wall time.
func (r *ExplainResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %s\n", r.Plan)
	b.WriteString("actual:\n")
	tree := strings.TrimRight(r.Trace.Render(false), "\n")
	for _, line := range strings.Split(tree, "\n") {
		b.WriteString("  ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// ExplainAnalyze plans a range query, executes the chosen plan with
// full tracing, and returns the plan alongside its actual counters:
// the estimated-versus-observed comparison the paper's Section 5 cost
// model invites. It accepts the same options as RangeSearch; a
// WithTrace option grafts the operator span onto the caller's trace
// instead of a fresh root.
func (db *DB) ExplainAnalyze(box Box, opts ...QueryOption) (*ExplainResult, error) {
	qc := queryConfig{strategy: MergeLazy}
	for _, o := range opts {
		o.applyQuery(&qc)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.usableLocked(qc.ctx); err != nil {
		return nil, err
	}
	// Materialize the heap view of the index so the sequential-scan
	// plan is executable too — the planner may legitimately prefer it
	// for large boxes, and EXPLAIN ANALYZE must run whatever plan it
	// picks. (One untraced full pass; the pool state it leaves behind
	// is deterministic for a given database.)
	var heap []Point
	if _, err := db.index.RangeSearchFunc(geom.FullBox(db.grid), core.MergeLazy, func(p Point) bool {
		heap = append(heap, p)
		return true
	}); err != nil {
		return nil, err
	}
	tab := &planner.Table{Name: "db", Index: db.index, Heap: heap}
	plan, err := planner.PlanRange(tab, box, planner.Config{Strategy: qc.strategy})
	if err != nil {
		return nil, err
	}
	root := qc.trace
	if root == nil {
		root = NewTrace("explain-analyze")
		defer root.End()
	}
	sp := db.beginOp(plan.Access, root)
	defer db.endOp(plan.Access, sp)
	pts, ss, err := plan.ExecuteTraced(sp)
	if err != nil {
		return nil, err
	}
	stats := searchQueryStats(ss)
	stats.addSpanIO(sp)
	return &ExplainResult{
		Plan:           plan.Description,
		Access:         plan.Access,
		EstimatedPages: plan.EstimatedPages,
		Points:         pts,
		Stats:          stats,
		Trace:          sp,
	}, nil
}

module probe

go 1.22

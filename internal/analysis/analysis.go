// Package analysis implements the analytical models of Section 5:
// the fixed-size-page block model that predicts page accesses for
// range queries (O(vN)) and partial-match queries (O(N^(1-t/k))),
// and the proximity measurements of Section 5.2.
//
// The model: under the fixed-size-page assumption the space is
// partitioned into rectangular blocks of the same size and shape,
// and the number of pages per block is bounded by a constant that
// depends only on dimensionality — 6 in 2d, 28/3 in 3d (Section 5.2).
// The predicted page count for a query is (pages per block) x (number
// of blocks the query box touches). The paper's experiments found the
// prediction to be an upper bound on observed behavior.
package analysis

import (
	"fmt"
	"math"

	"probe/internal/geom"
	"probe/internal/zorder"
)

// PagesPerBlock returns the paper's bound on pages per block for
// dimensionality k: 6 in 2d, 28/3 in 3d. For other k it extrapolates
// with the 1d value 2 and a geometric fit through the published
// constants; the exact constants are used where the paper states
// them.
func PagesPerBlock(k int) float64 {
	switch k {
	case 1:
		return 2
	case 2:
		return 6
	case 3:
		return 28.0 / 3.0
	default:
		// Extrapolate the published growth ratio (28/3)/6 per added
		// dimension beyond 3d.
		return 28.0 / 3.0 * math.Pow((28.0/3.0)/6.0, float64(k-3))
	}
}

// Model is the fixed-size-page block model for one data set.
type Model struct {
	Grid  zorder.Grid
	N     int // total data pages (leaf pages)
	PPB   float64
	side  float64 // block side length in grid units (equal per dim)
	sides []float64
}

// NewModel builds the block model: N pages grouped into N/PPB equal
// blocks tiling the space; blocks are hypercubes (the regularity
// result of Section 5.2: "the space is partitioned into rectangular
// blocks of the same size and shape").
func NewModel(g zorder.Grid, totalPages int) (*Model, error) {
	if totalPages < 1 {
		return nil, fmt.Errorf("analysis: total pages %d < 1", totalPages)
	}
	ppb := PagesPerBlock(g.Dims())
	blocks := float64(totalPages) / ppb
	if blocks < 1 {
		blocks = 1
	}
	side := float64(g.Side()) / math.Pow(blocks, 1/float64(g.Dims()))
	m := &Model{Grid: g, N: totalPages, PPB: ppb, side: side}
	m.sides = make([]float64, g.Dims())
	for i := range m.sides {
		m.sides[i] = side
	}
	return m, nil
}

// BlockSide returns the side length of a block in grid units.
func (m *Model) BlockSide() float64 { return m.side }

// PredictPages returns the predicted number of data-page accesses for
// a range query: pages per block times the number of blocks the box
// overlaps. A box of side s in a dimension with block side b touches
// at most floor(s/b)+1 block columns (the +1 accounts for arbitrary
// alignment), so long narrow queries are predicted to cost more than
// square ones of the same volume — the shape dependence the
// experiments confirmed.
func (m *Model) PredictPages(box geom.Box) float64 {
	blocks := 1.0
	for d := 0; d < m.Grid.Dims(); d++ {
		span := float64(box.Side(d))/m.side + 1
		max := math.Ceil(float64(m.Grid.Side()) / m.side)
		if span > max {
			span = max
		}
		blocks *= span
	}
	p := m.PPB * blocks
	if p > float64(m.N) {
		p = float64(m.N)
	}
	return p
}

// PredictPagesVolume returns the leading-term prediction O(vN) for a
// query covering volume fraction v, without the boundary terms: the
// form quoted in Section 5.3.1.
func (m *Model) PredictPagesVolume(v float64) float64 {
	p := v * float64(m.N)
	if p > float64(m.N) {
		p = float64(m.N)
	}
	return p
}

// PredictPartialMatch returns the O(N^(1-t/k)) prediction for a
// partial-match query restricting t of k attributes, including the
// pages-per-block constant.
func (m *Model) PredictPartialMatch(t int) (float64, error) {
	k := m.Grid.Dims()
	if t < 0 || t >= k {
		return 0, fmt.Errorf("analysis: t=%d must be in [0,%d)", t, k)
	}
	blocks := float64(m.N) / m.PPB
	if blocks < 1 {
		blocks = 1
	}
	p := m.PPB * math.Pow(blocks, 1-float64(t)/float64(k))
	if p > float64(m.N) {
		p = float64(m.N)
	}
	return p, nil
}

// OptimalAspect reports the query aspect ratios the analysis predicts
// to be most efficient: "square or twice as tall as they are wide"
// (Section 5.3.2). A query of aspect a is predicted optimal when a is
// in [0.5, 1]; the function returns the distance of a from that band
// (0 means predicted optimal).
func OptimalAspect(a float64) float64 {
	switch {
	case a < 0.5:
		return 0.5 - a
	case a > 1:
		return a - 1
	default:
		return 0
	}
}

package analysis

import (
	"math"
	"testing"

	"probe/internal/geom"
	"probe/internal/zorder"
)

func TestPagesPerBlockConstants(t *testing.T) {
	if PagesPerBlock(2) != 6 {
		t.Errorf("2d pages per block = %v, want 6", PagesPerBlock(2))
	}
	if math.Abs(PagesPerBlock(3)-28.0/3.0) > 1e-12 {
		t.Errorf("3d pages per block = %v, want 28/3", PagesPerBlock(3))
	}
	if PagesPerBlock(1) != 2 {
		t.Errorf("1d pages per block = %v", PagesPerBlock(1))
	}
	if PagesPerBlock(4) <= PagesPerBlock(3) {
		t.Errorf("pages per block should grow with dimensionality")
	}
}

func TestNewModelValidation(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	if _, err := NewModel(g, 0); err == nil {
		t.Errorf("zero pages accepted")
	}
	m, err := NewModel(g, 300)
	if err != nil {
		t.Fatal(err)
	}
	// 300 pages / 6 per block = 50 blocks over a 1024^2 space:
	// block side = 1024/sqrt(50) ~ 144.8.
	want := 1024.0 / math.Sqrt(50)
	if math.Abs(m.BlockSide()-want) > 1e-9 {
		t.Errorf("block side = %v, want %v", m.BlockSide(), want)
	}
}

func TestPredictPagesScalesWithVolume(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	m, _ := NewModel(g, 300)
	small := m.PredictPages(geom.Box2(0, 99, 0, 99))
	large := m.PredictPages(geom.Box2(0, 399, 0, 399))
	if large <= small {
		t.Errorf("prediction should grow with volume: %v vs %v", small, large)
	}
	// Prediction is capped at N.
	if p := m.PredictPages(geom.FullBox(g)); p > 300 {
		t.Errorf("prediction %v exceeds total pages", p)
	}
}

// TestShapeDependence: the analysis predicts long narrow queries cost
// more than square queries of equal volume (Section 5.3.2 hypothesis 1).
func TestShapeDependence(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	m, _ := NewModel(g, 300)
	square := m.PredictPages(geom.Box2(0, 127, 0, 127)) // 128x128
	narrow := m.PredictPages(geom.Box2(0, 1023, 0, 15)) // 1024x16, same volume
	if narrow <= square {
		t.Errorf("narrow query predicted cheaper than square: %v vs %v", narrow, square)
	}
}

func TestPredictPagesVolume(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	m, _ := NewModel(g, 300)
	if p := m.PredictPagesVolume(0.1); p != 30 {
		t.Errorf("O(vN) = %v, want 30", p)
	}
	if p := m.PredictPagesVolume(5); p != 300 {
		t.Errorf("overflow volume should cap at N")
	}
}

func TestPredictPartialMatch(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	m, _ := NewModel(g, 600)
	// t=0 -> all N pages (every block).
	p0, err := m.PredictPartialMatch(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p0-600) > 1e-9 {
		t.Errorf("t=0 prediction = %v, want 600", p0)
	}
	// t=1, k=2 -> 6 * (N/6)^(1/2) = 60 for N=600.
	p1, _ := m.PredictPartialMatch(1)
	want := 6 * math.Sqrt(100)
	if math.Abs(p1-want) > 1e-9 {
		t.Errorf("t=1 prediction = %v, want %v", p1, want)
	}
	if _, err := m.PredictPartialMatch(2); err == nil {
		t.Errorf("t=k accepted")
	}
	if _, err := m.PredictPartialMatch(-1); err == nil {
		t.Errorf("negative t accepted")
	}
}

func TestPartialMatchDecreasesWithT(t *testing.T) {
	g := zorder.MustGrid(3, 8)
	m, _ := NewModel(g, 1000)
	prev := math.Inf(1)
	for tt := 0; tt < 3; tt++ {
		p, err := m.PredictPartialMatch(tt)
		if err != nil {
			t.Fatal(err)
		}
		if p >= prev {
			t.Errorf("prediction should fall as more attributes are restricted: t=%d -> %v", tt, p)
		}
		prev = p
	}
}

func TestOptimalAspect(t *testing.T) {
	if OptimalAspect(1) != 0 || OptimalAspect(0.5) != 0 || OptimalAspect(0.7) != 0 {
		t.Errorf("square and 2:1-tall should be optimal")
	}
	if OptimalAspect(4) <= 0 || OptimalAspect(0.1) <= 0 {
		t.Errorf("extreme aspects should be non-optimal")
	}
	if OptimalAspect(16) <= OptimalAspect(2) {
		t.Errorf("distance should grow with aspect")
	}
}

// TestProximityDecaysWithDistance reproduces Section 5.2: nearby
// points are usually nearby in z order, and the fraction of "z-close"
// pairs falls as spatial distance grows.
func TestProximityDecaysWithDistance(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	samples := MeasureProximity(g, []uint32{1, 4, 16, 64}, 32)
	if len(samples) != 4 {
		t.Fatalf("got %d samples", len(samples))
	}
	for i, s := range samples {
		if s.Pairs == 0 {
			t.Fatalf("sample %d has no pairs", i)
		}
		if i > 0 && s.MeanZDist <= samples[i-1].MeanZDist {
			t.Errorf("mean z distance should grow with spatial distance: %v then %v",
				samples[i-1].MeanZDist, s.MeanZDist)
		}
	}
	// At distance 1, most pairs should be z-close.
	if samples[0].FracZClose < 0.5 {
		t.Errorf("at distance 1 only %.0f%% of pairs are z-close", samples[0].FracZClose*100)
	}
	if samples[0].MedianZDist > samples[0].P90ZDist {
		t.Errorf("median exceeds p90")
	}
}

func TestMeasureProximitySkipsOversizedDistances(t *testing.T) {
	g := zorder.MustGrid(2, 3)
	samples := MeasureProximity(g, []uint32{2, 100}, 8)
	if len(samples) != 1 {
		t.Errorf("oversized distance not skipped: %d samples", len(samples))
	}
}

// TestZOrderBeatsRowMajorOrders: the reason the paper uses z order —
// for isotropic proximity, bit interleaving keeps both x- and
// y-neighbors close, while row-major orders scatter y-neighbors a
// full row apart.
func TestZOrderBeatsRowMajorOrders(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	for _, dist := range []uint32{1, 4, 16} {
		res := CompareOrderings(g, dist, 64)
		if len(res) != 3 {
			t.Fatalf("dist %d: %d orderings measured", dist, len(res))
		}
		if res[ZOrder] <= res[RowMajor] {
			t.Errorf("dist %d: z order frac-close %.2f not above row-major %.2f",
				dist, res[ZOrder], res[RowMajor])
		}
		if res[ZOrder] <= res[Snake] {
			t.Errorf("dist %d: z order %.2f not above snake %.2f", dist, res[ZOrder], res[Snake])
		}
	}
	for _, o := range []Ordering{ZOrder, RowMajor, Snake, Ordering(9)} {
		if o.String() == "" {
			t.Errorf("ordering %d renders empty", o)
		}
	}
	// Degenerate inputs yield empty results.
	if len(CompareOrderings(zorder.MustGrid(3, 4), 1, 8)) != 0 {
		t.Errorf("3d grid should be rejected")
	}
	if len(CompareOrderings(g, 10000, 8)) != 0 {
		t.Errorf("oversized distance should be rejected")
	}
}

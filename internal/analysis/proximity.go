package analysis

import (
	"math"
	"sort"

	"probe/internal/zorder"
)

// This file measures the proximity-preservation property of z order
// (Section 5.2): "Proximity in space in any direction usually
// corresponds to proximity in z order. The greater the discrepancy,
// the less likely it is to occur."

// ProximitySample is one bucket of the proximity measurement: for
// point pairs at the given spatial (Chebyshev) distance, the
// distribution of their z-rank distances.
type ProximitySample struct {
	SpatialDist  uint32
	Pairs        int
	MeanZDist    float64
	MedianZDist  float64
	P90ZDist     float64
	FracZClose   float64 // fraction of pairs with z distance <= Threshold
	ZCloseThresh uint64
}

// MeasureProximity samples point pairs at each spatial distance in
// dists and reports their z-rank distance statistics. The z-close
// threshold is chosen as (2*dist+1)^k, the pixel count of the
// neighborhood — pairs within it are "as close in z order as they are
// in space". Sampling is deterministic: for each distance the probe
// walks a fixed lattice of base points and directions.
func MeasureProximity(g zorder.Grid, dists []uint32, samplesPerDist int) []ProximitySample {
	out := make([]ProximitySample, 0, len(dists))
	k := g.Dims()
	for _, dist := range dists {
		if uint64(dist) >= g.Side() {
			continue
		}
		thresh := uint64(math.Pow(float64(2*dist+1), float64(k)))
		var zdists []float64
		// Walk base points on a lattice, pairing each with the point
		// dist away along each axis direction.
		step := g.Side() / uint64(samplesPerDist)
		if step == 0 {
			step = 1
		}
		coords := make([]uint32, k)
		other := make([]uint32, k)
		var walk func(dim int)
		walk = func(dim int) {
			if dim == k {
				base := g.Rank(coords)
				for d := 0; d < k; d++ {
					if uint64(coords[d])+uint64(dist) >= g.Side() {
						continue
					}
					copy(other, coords)
					other[d] += dist
					zd := math.Abs(float64(g.Rank(other)) - float64(base))
					zdists = append(zdists, zd)
				}
				return
			}
			for c := uint64(0); c < g.Side(); c += step {
				coords[dim] = uint32(c)
				walk(dim + 1)
			}
		}
		walk(0)
		if len(zdists) == 0 {
			continue
		}
		s := summarize(zdists)
		close := 0
		for _, zd := range zdists {
			if zd <= float64(thresh) {
				close++
			}
		}
		out = append(out, ProximitySample{
			SpatialDist:  dist,
			Pairs:        len(zdists),
			MeanZDist:    s.mean,
			MedianZDist:  s.median,
			P90ZDist:     s.p90,
			FracZClose:   float64(close) / float64(len(zdists)),
			ZCloseThresh: thresh,
		})
	}
	return out
}

type summary struct {
	mean, median, p90 float64
}

func summarize(xs []float64) summary {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	return summary{
		mean:   sum / float64(len(sorted)),
		median: quantile(sorted, 0.5),
		p90:    quantile(sorted, 0.9),
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Ordering names a linearization of the 2-d grid, for comparing z
// order's proximity preservation against straw-man orders (the reason
// Section 5.2 exists: the curve was chosen because "if two points are
// close in space then they are likely to be close in z order").
type Ordering int

const (
	// ZOrder is bit interleaving (the paper's curve).
	ZOrder Ordering = iota
	// RowMajor is y*side + x.
	RowMajor
	// Snake is row-major with alternate rows reversed.
	Snake
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case ZOrder:
		return "z-order"
	case RowMajor:
		return "row-major"
	case Snake:
		return "snake"
	}
	return "Ordering(?)"
}

// rankUnder computes a pixel's position under the ordering.
func rankUnder(g zorder.Grid, o Ordering, x, y uint32) uint64 {
	switch o {
	case RowMajor:
		return uint64(y)*g.Side() + uint64(x)
	case Snake:
		if y%2 == 1 {
			return uint64(y)*g.Side() + (g.Side() - 1 - uint64(x))
		}
		return uint64(y)*g.Side() + uint64(x)
	default:
		return g.Rank([]uint32{x, y})
	}
}

// CompareOrderings measures, for each ordering, the fraction of
// pixel pairs at the given spatial (Chebyshev) distance whose rank
// distance stays within the neighborhood window (2*dist+1)^2 — the
// paper's notion of proximity preservation ("if two points are close
// in space then they are likely to be close in z order"). Higher is
// better. Row-major orders score near 0.5: x-neighbors are adjacent
// but every y-neighbor is a full row away.
func CompareOrderings(g zorder.Grid, dist uint32, samples int) map[Ordering]float64 {
	out := make(map[Ordering]float64, 3)
	if g.Dims() != 2 || uint64(dist) >= g.Side() {
		return out
	}
	step := g.Side() / uint64(samples)
	if step == 0 {
		step = 1
	}
	window := float64(2*dist+1) * float64(2*dist+1)
	for _, o := range []Ordering{ZOrder, RowMajor, Snake} {
		close, n := 0, 0
		for x := uint64(0); x < g.Side(); x += step {
			for y := uint64(0); y < g.Side(); y += step {
				base := rankUnder(g, o, uint32(x), uint32(y))
				if x+uint64(dist) < g.Side() {
					d := math.Abs(float64(rankUnder(g, o, uint32(x+uint64(dist)), uint32(y))) - float64(base))
					if d <= window {
						close++
					}
					n++
				}
				if y+uint64(dist) < g.Side() {
					d := math.Abs(float64(rankUnder(g, o, uint32(x), uint32(y+uint64(dist)))) - float64(base))
					if d <= window {
						close++
					}
					n++
				}
			}
		}
		if n > 0 {
			out[o] = float64(close) / float64(n)
		}
	}
	return out
}

// Package battery generates the seeded random spatial-SQL statements
// the wire path and the cluster router are proven by. One generator
// feeds every differential test — the server's in-process-vs-wire
// battery, the router's cluster-vs-single-node battery, and the CI
// cluster smoke script — so a statement shape added here is exercised
// end to end everywhere at once.
package battery

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"probe"
)

// GenQuery builds one random but always-valid statement from rng.
// ordered reports whether the query carries a total ORDER BY (unique
// key), in which case a differential compare is order-sensitive.
// Shapes that materialize through map iteration (GROUP BY) only get
// LIMIT together with a total order, so both executions select the
// same rows.
func GenQuery(rng *rand.Rand) (sql string, ordered bool) {
	box := func() string {
		xlo := rng.Intn(1024)
		ylo := rng.Intn(1024)
		return fmt.Sprintf("BOX(%d, %d, %d, %d)",
			xlo, xlo+rng.Intn(1024-xlo), ylo, ylo+rng.Intn(1024-ylo))
	}
	pred := []string{"CONTAINS", "INTERSECTS"}[rng.Intn(2)]
	var b strings.Builder
	switch rng.Intn(7) {
	case 0: // star scan
		fmt.Fprintf(&b, "SELECT * FROM points WHERE %s(%s)", pred, box())
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " AND x >= %d", rng.Intn(1024))
		}
		if rng.Intn(2) == 0 {
			b.WriteString(" ORDER BY id")
			ordered = true
		}
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " LIMIT %d", 1+rng.Intn(50))
		}
	case 1: // projection with residual comparisons
		fmt.Fprintf(&b, "SELECT id, x, y FROM points WHERE %s(%s) AND y < %d AND id != %d",
			pred, box(), 1+rng.Intn(1024), 1+rng.Intn(4000))
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " ORDER BY %s DESC, id", []string{"x", "y"}[rng.Intn(2)])
			ordered = true
		}
	case 2: // DISTINCT on one coordinate
		col := []string{"x", "y"}[rng.Intn(2)]
		fmt.Fprintf(&b, "SELECT DISTINCT %s FROM points WHERE %s(%s)", col, pred, box())
		if rng.Intn(2) == 0 {
			b.WriteString(" ORDER BY " + col)
			ordered = true
		}
	case 3: // global aggregates
		fmt.Fprintf(&b, "SELECT COUNT(*) AS n, MIN(x) AS mnx, MAX(y) AS mxy, SUM(x) AS sx FROM points WHERE %s(%s)", pred, box())
	case 4: // grouped, totally ordered by the group key
		col := []string{"x", "y"}[rng.Intn(2)]
		fmt.Fprintf(&b, "SELECT %s, COUNT(*) AS n FROM points WHERE %s(%s) GROUP BY %s ORDER BY %s",
			col, pred, box(), col, col)
		ordered = true
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " LIMIT %d", 1+rng.Intn(20))
		}
	case 5: // nearest
		fmt.Fprintf(&b, "SELECT id, x, y, dist FROM points WHERE NEAREST(POINT(%d, %d), %d)",
			rng.Intn(1024), rng.Intn(1024), 1+rng.Intn(20))
	case 6: // region join
		n := 1 + rng.Intn(4)
		fmt.Fprintf(&b, "SELECT region, id FROM points JOIN REGIONS(")
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d %s", i+1, box())
		}
		b.WriteString(") ON INTERSECTS")
		if rng.Intn(2) == 0 {
			b.WriteString(" ORDER BY region, id")
			ordered = true
		}
	}
	return b.String(), ordered
}

// RenderRows canonicalizes a result set for comparison, one string
// per row with value types spelled out.
func RenderRows(rows []probe.QueryRow) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = fmt.Sprintf("%T:%v", v, v)
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

// Result is the comparable shape of one statement execution,
// whichever engine produced it (probe.DB.Query, client.Conn.Query
// against a server, or against the router).
type Result struct {
	Columns []probe.QueryColumn
	Rows    []probe.QueryRow
}

// Diff compares two executions of the same statement: schema
// field-for-field, rows in exact order when the statement carried a
// total ORDER BY, as multisets otherwise. It returns "" on agreement
// and a description of the first mismatch otherwise.
func Diff(a, b Result, ordered bool) string {
	if len(a.Columns) != len(b.Columns) {
		return fmt.Sprintf("schema width: %d vs %d", len(a.Columns), len(b.Columns))
	}
	for j := range a.Columns {
		if a.Columns[j].Name != b.Columns[j].Name || a.Columns[j].Type != b.Columns[j].Type {
			return fmt.Sprintf("column %d: %v vs %v", j, a.Columns[j], b.Columns[j])
		}
	}
	ar, br := RenderRows(a.Rows), RenderRows(b.Rows)
	if !ordered {
		sort.Strings(ar)
		sort.Strings(br)
	}
	if len(ar) != len(br) {
		return fmt.Sprintf("row count: %d vs %d", len(ar), len(br))
	}
	for j := range ar {
		if ar[j] != br[j] {
			return fmt.Sprintf("row %d: %s vs %s", j, ar[j], br[j])
		}
	}
	return ""
}

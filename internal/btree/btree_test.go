package btree

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"

	"probe/internal/disk"
)

func newTestTree(t testing.TB, pageSize, leafCap, valueSize, poolCap int) *Tree {
	t.Helper()
	store := disk.MustMemStore(pageSize)
	pool := disk.MustPool(store, poolCap, disk.LRU)
	tree, err := New(pool, Config{ValueSize: valueSize, LeafCapacity: leafCap})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func val8(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestKeyOrdering(t *testing.T) {
	ks := []Key{{0, 0}, {0, 1}, {1, 0}, {1, 5}, {2, 0}}
	for i := range ks {
		for j := range ks {
			if ks[i].Less(ks[j]) != (i < j) {
				t.Errorf("Less(%v,%v) wrong", ks[i], ks[j])
			}
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if ks[i].Compare(ks[j]) != want {
				t.Errorf("Compare(%v,%v) wrong", ks[i], ks[j])
			}
		}
	}
}

func TestKeyEncodingPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var a, b [encodedKeyLen]byte
	for i := 0; i < 2000; i++ {
		x := Key{rng.Uint64(), rng.Uint64()}
		y := Key{rng.Uint64(), rng.Uint64()}
		x.encode(a[:])
		y.encode(b[:])
		if (bytes.Compare(a[:], b[:]) < 0) != x.Less(y) {
			t.Fatalf("encoding order mismatch for %v, %v", x, y)
		}
		if decodeKey(a[:]) != x {
			t.Fatalf("decode mismatch")
		}
	}
}

func TestShortestSeparator(t *testing.T) {
	cases := []struct {
		a, b string
		want string
	}{
		{"apple", "banana", "b"},
		{"abc", "abd", "abd"},
		{"ab", "abc", "abc"},
		{"\x00\x00", "\x00\x01", "\x00\x01"},
	}
	for _, c := range cases {
		got := shortestSeparator([]byte(c.a), []byte(c.b))
		if string(got) != c.want {
			t.Errorf("shortestSeparator(%q,%q) = %q, want %q", c.a, c.b, got, c.want)
		}
		if bytes.Compare(got, []byte(c.a)) <= 0 || bytes.Compare(got, []byte(c.b)) > 0 {
			t.Errorf("separator %q violates a < s <= b", got)
		}
	}
}

func TestShortestSeparatorProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var ea, eb [encodedKeyLen]byte
	for i := 0; i < 2000; i++ {
		a := Key{rng.Uint64() % 1000, rng.Uint64() % 1000}
		b := Key{rng.Uint64() % 1000, rng.Uint64() % 1000}
		if b.Less(a) {
			a, b = b, a
		}
		if a == b {
			continue
		}
		a.encode(ea[:])
		b.encode(eb[:])
		s := shortestSeparator(ea[:], eb[:])
		if bytes.Compare(s, ea[:]) <= 0 {
			t.Fatalf("separator %x <= left %x", s, ea)
		}
		if bytes.Compare(s, eb[:]) > 0 {
			t.Fatalf("separator %x > right %x", s, eb)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	store := disk.MustMemStore(256)
	pool := disk.MustPool(store, 8, disk.LRU)
	if _, err := New(pool, Config{ValueSize: -1}); err == nil {
		t.Errorf("negative value size accepted")
	}
	if _, err := New(pool, Config{ValueSize: 8, LeafCapacity: 1}); err == nil {
		t.Errorf("leaf capacity 1 accepted")
	}
	if _, err := New(pool, Config{ValueSize: 8, LeafCapacity: 1000}); err == nil {
		t.Errorf("oversized leaf capacity accepted")
	}
	if _, err := New(pool, Config{ValueSize: 240}); err == nil {
		t.Errorf("values too large for page accepted")
	}
	tr, err := New(pool, Config{ValueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tr.LeafCapacity() != (256-leafHeaderLen)/(encodedKeyLen+8) {
		t.Errorf("derived leaf capacity = %d", tr.LeafCapacity())
	}
}

func TestInsertGet(t *testing.T) {
	tree := newTestTree(t, 512, 4, 8, 64)
	for i := uint64(0); i < 100; i++ {
		if err := tree.Insert(Key{Hi: i * 7 % 100, Lo: i}, val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != 100 {
		t.Fatalf("Len = %d", tree.Len())
	}
	for i := uint64(0); i < 100; i++ {
		v, ok, err := tree.Get(Key{Hi: i * 7 % 100, Lo: i})
		if err != nil || !ok {
			t.Fatalf("Get(%d): ok=%v err=%v", i, ok, err)
		}
		if binary.LittleEndian.Uint64(v) != i {
			t.Fatalf("Get(%d) = %d", i, binary.LittleEndian.Uint64(v))
		}
	}
	if _, ok, _ := tree.Get(Key{Hi: 9999}); ok {
		t.Errorf("absent key found")
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tree.Height() < 2 {
		t.Errorf("100 entries at leaf cap 4 should have split (height %d)", tree.Height())
	}
}

func TestInsertDuplicate(t *testing.T) {
	tree := newTestTree(t, 512, 4, 0, 64)
	k := Key{Hi: 5, Lo: 9}
	if err := tree.Insert(k, nil); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(k, nil); err != ErrDuplicateKey {
		t.Errorf("duplicate insert: %v", err)
	}
	if tree.Len() != 1 {
		t.Errorf("Len = %d after duplicate", tree.Len())
	}
}

func TestInsertWrongValueSize(t *testing.T) {
	tree := newTestTree(t, 512, 4, 8, 64)
	if err := tree.Insert(Key{}, []byte{1, 2}); err == nil {
		t.Errorf("short value accepted")
	}
}

func TestCursorFullScan(t *testing.T) {
	tree := newTestTree(t, 512, 5, 8, 64)
	const n = 500
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range perm {
		if err := tree.Insert(Key{Hi: uint64(i)}, val8(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	c := tree.Cursor()
	ok, err := c.First()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !ok {
			t.Fatalf("cursor ended early at %d", i)
		}
		if c.Key().Hi != uint64(i) {
			t.Fatalf("scan out of order: got %d at position %d", c.Key().Hi, i)
		}
		if binary.LittleEndian.Uint64(c.Value()) != uint64(i) {
			t.Fatalf("value mismatch at %d", i)
		}
		ok, err = c.Next()
		if err != nil {
			t.Fatal(err)
		}
	}
	if ok || c.Valid() {
		t.Errorf("cursor should be exhausted")
	}
	if more, _ := c.Next(); more {
		t.Errorf("Next on exhausted cursor")
	}
}

func TestCursorSeekGE(t *testing.T) {
	tree := newTestTree(t, 512, 4, 0, 64)
	// Keys 0, 10, 20, ..., 990.
	for i := uint64(0); i < 100; i++ {
		if err := tree.Insert(Key{Hi: i * 10}, nil); err != nil {
			t.Fatal(err)
		}
	}
	c := tree.Cursor()
	cases := []struct {
		seek uint64
		want uint64
		ok   bool
	}{
		{0, 0, true},
		{1, 10, true},
		{10, 10, true},
		{995, 0, false},
		{990, 990, true},
		{989, 990, true},
	}
	for _, cse := range cases {
		ok, err := c.SeekGE(Key{Hi: cse.seek})
		if err != nil {
			t.Fatal(err)
		}
		if ok != cse.ok {
			t.Fatalf("SeekGE(%d) ok=%v", cse.seek, ok)
		}
		if ok && c.Key().Hi != cse.want {
			t.Fatalf("SeekGE(%d) = %d, want %d", cse.seek, c.Key().Hi, cse.want)
		}
	}
}

func TestCursorPrev(t *testing.T) {
	tree := newTestTree(t, 512, 4, 0, 64)
	for i := uint64(0); i < 50; i++ {
		tree.Insert(Key{Hi: i}, nil)
	}
	c := tree.Cursor()
	if ok, _ := c.SeekGE(Key{Hi: 49}); !ok {
		t.Fatal("seek failed")
	}
	for i := 49; i >= 0; i-- {
		if c.Key().Hi != uint64(i) {
			t.Fatalf("Prev out of order at %d: %d", i, c.Key().Hi)
		}
		ok, err := c.Prev()
		if err != nil {
			t.Fatal(err)
		}
		if (i > 0) != ok {
			t.Fatalf("Prev ok=%v at %d", ok, i)
		}
	}
}

func TestCursorOnEmptyTree(t *testing.T) {
	tree := newTestTree(t, 512, 4, 0, 64)
	c := tree.Cursor()
	if ok, _ := c.First(); ok {
		t.Errorf("First on empty tree")
	}
	if ok, _ := c.SeekGE(Key{Hi: 5}); ok {
		t.Errorf("SeekGE on empty tree")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Key on invalid cursor should panic")
		}
	}()
	c.Key()
}

func TestDeleteSimple(t *testing.T) {
	tree := newTestTree(t, 512, 4, 0, 64)
	for i := uint64(0); i < 20; i++ {
		tree.Insert(Key{Hi: i}, nil)
	}
	ok, err := tree.Delete(Key{Hi: 7})
	if err != nil || !ok {
		t.Fatalf("Delete: %v %v", ok, err)
	}
	if _, found, _ := tree.Get(Key{Hi: 7}); found {
		t.Errorf("deleted key still present")
	}
	if ok, _ := tree.Delete(Key{Hi: 7}); ok {
		t.Errorf("double delete succeeded")
	}
	if tree.Len() != 19 {
		t.Errorf("Len = %d", tree.Len())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAll(t *testing.T) {
	tree := newTestTree(t, 512, 4, 0, 64)
	const n = 300
	for i := uint64(0); i < n; i++ {
		if err := tree.Insert(Key{Hi: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	order := rand.New(rand.NewSource(4)).Perm(n)
	for step, i := range order {
		ok, err := tree.Delete(Key{Hi: uint64(i)})
		if err != nil {
			t.Fatalf("delete %d (step %d): %v", i, step, err)
		}
		if !ok {
			t.Fatalf("delete %d reported absent", i)
		}
		if step%37 == 0 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", step+1, err)
			}
		}
	}
	if tree.Len() != 0 {
		t.Errorf("Len = %d after deleting everything", tree.Len())
	}
	if tree.Height() != 1 {
		t.Errorf("height = %d after deleting everything", tree.Height())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The store should hold only the root leaf.
	if n := tree.Pool().Store().NumPages(); n != 1 {
		t.Errorf("store has %d pages after full delete, want 1", n)
	}
}

// TestRandomizedAgainstReference runs a mixed insert/delete/lookup
// workload against a reference map, checking invariants and full
// scans along the way.
func TestRandomizedAgainstReference(t *testing.T) {
	tree := newTestTree(t, 256, 6, 8, 128)
	ref := make(map[Key]uint64)
	rng := rand.New(rand.NewSource(5))
	randKey := func() Key {
		return Key{Hi: rng.Uint64() % 200, Lo: rng.Uint64() % 5}
	}
	for step := 0; step < 8000; step++ {
		k := randKey()
		switch rng.Intn(3) {
		case 0: // insert
			v := rng.Uint64()
			err := tree.Insert(k, val8(v))
			if _, exists := ref[k]; exists {
				if err != ErrDuplicateKey {
					t.Fatalf("step %d: insert existing %v: %v", step, k, err)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d: insert %v: %v", step, k, err)
				}
				ref[k] = v
			}
		case 1: // delete
			ok, err := tree.Delete(k)
			if err != nil {
				t.Fatalf("step %d: delete %v: %v", step, k, err)
			}
			if _, exists := ref[k]; exists != ok {
				t.Fatalf("step %d: delete %v ok=%v, ref=%v", step, k, ok, exists)
			}
			delete(ref, k)
		case 2: // lookup
			v, ok, err := tree.Get(k)
			if err != nil {
				t.Fatalf("step %d: get %v: %v", step, k, err)
			}
			want, exists := ref[k]
			if exists != ok {
				t.Fatalf("step %d: get %v ok=%v, ref=%v", step, k, ok, exists)
			}
			if ok && binary.LittleEndian.Uint64(v) != want {
				t.Fatalf("step %d: get %v wrong value", step, k)
			}
		}
		if step%997 == 0 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			checkScanMatchesRef(t, tree, ref)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkScanMatchesRef(t, tree, ref)
}

func checkScanMatchesRef(t *testing.T, tree *Tree, ref map[Key]uint64) {
	t.Helper()
	keys := make([]Key, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	c := tree.Cursor()
	ok, err := c.First()
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if !ok {
			t.Fatalf("scan ended at %d of %d", i, len(keys))
		}
		if c.Key() != k {
			t.Fatalf("scan key %v, want %v", c.Key(), k)
		}
		if binary.LittleEndian.Uint64(c.Value()) != ref[k] {
			t.Fatalf("scan value mismatch at %v", k)
		}
		ok, err = c.Next()
		if err != nil {
			t.Fatal(err)
		}
	}
	if ok {
		t.Fatalf("scan has extra entries beyond %d", len(keys))
	}
	if tree.Len() != len(ref) {
		t.Fatalf("Len = %d, ref = %d", tree.Len(), len(ref))
	}
}

// TestPrefixCompression verifies the "prefix" in prefix B+-tree:
// separators stored in internal nodes are shorter than full keys.
func TestPrefixCompression(t *testing.T) {
	tree := newTestTree(t, 512, 4, 0, 128)
	// Keys whose Hi values differ early: separators should compress
	// to very few bytes.
	for i := uint64(0); i < 200; i++ {
		if err := tree.Insert(Key{Hi: i << 48}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Height() < 2 {
		t.Fatal("tree did not split")
	}
	n, err := tree.loadInternal(tree.Meta().Root)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range n.seps {
		if len(s) >= encodedKeyLen {
			t.Errorf("separator %x not compressed (len %d)", s, len(s))
		}
	}
}

// TestPaperConfiguration builds the paper's experimental setup: 5000
// points, page capacity 20.
func TestPaperConfiguration(t *testing.T) {
	tree := newTestTree(t, 1024, 20, 8, 256)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 5000; i++ {
		k := Key{Hi: rng.Uint64(), Lo: uint64(i)}
		if err := tree.Insert(k, val8(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != 5000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// With capacity 20 and splits at half occupancy, leaf count must
	// be within [250, 500].
	if tree.LeafPages() < 250 || tree.LeafPages() > 500 {
		t.Errorf("leaf pages = %d, outside [250,500]", tree.LeafPages())
	}
}

// TestScanPageAccesses verifies the merge-friendliness claim: a full
// scan through the sibling links reads each leaf page exactly once
// even with a small pool.
func TestScanPageAccesses(t *testing.T) {
	store := disk.MustMemStore(1024)
	pool := disk.MustPool(store, 4, disk.LRU)
	tree, err := New(pool, Config{ValueSize: 0, LeafCapacity: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2000; i++ {
		if err := tree.Insert(Key{Hi: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Invalidate(); err != nil {
		t.Fatal(err)
	}
	store.ResetStats()
	c := tree.Cursor()
	n := 0
	for ok, err := c.First(); ok; ok, err = c.Next() {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2000 {
		t.Fatalf("scan saw %d entries", n)
	}
	reads := store.Stats().Reads
	// The cursor caches its decoded descent path, so a full scan reads
	// each leaf exactly once and each internal node exactly once. The
	// internal-node allowance is leaves/2: far more than a real tree
	// has, far less than re-descending from the root for each leaf
	// would cost.
	if reads > uint64(tree.LeafPages()+tree.LeafPages()/2+tree.Height()) {
		t.Errorf("scan performed %d reads for %d leaves", reads, tree.LeafPages())
	}
}

func TestTreeGrowsAndShrinksHeight(t *testing.T) {
	tree := newTestTree(t, 256, 2, 0, 256)
	const n = 500
	for i := uint64(0); i < n; i++ {
		if err := tree.Insert(Key{Hi: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	grown := tree.Height()
	if grown < 3 {
		t.Fatalf("height = %d, expected deep tree", grown)
	}
	for i := uint64(0); i < n; i++ {
		if ok, err := tree.Delete(Key{Hi: i}); !ok || err != nil {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	if tree.Height() != 1 {
		t.Errorf("height = %d after emptying, want 1", tree.Height())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tree := newTestTree(b, 4096, 0, 8, 1024)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Insert(Key{Hi: rng.Uint64(), Lo: uint64(i)}, val8(uint64(i)))
	}
}

func BenchmarkSeekGE(b *testing.B) {
	tree := newTestTree(b, 4096, 0, 8, 1024)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100000; i++ {
		tree.Insert(Key{Hi: rng.Uint64(), Lo: uint64(i)}, val8(uint64(i)))
	}
	c := tree.Cursor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SeekGE(Key{Hi: rng.Uint64()})
	}
}

func TestKeyString(t *testing.T) {
	if (Key{Hi: 1, Lo: 2}).String() == "" {
		t.Errorf("Key.String empty")
	}
}

func TestCursorLeafIDAndValuePanics(t *testing.T) {
	tree := newTestTree(t, 512, 4, 0, 64)
	c := tree.Cursor()
	for _, fn := range []func(){
		func() { c.Value() },
		func() { c.LeafID() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("accessor on invalid cursor should panic")
				}
			}()
			fn()
		}()
	}
	tree.Insert(Key{Hi: 1}, nil)
	if ok, _ := c.First(); !ok {
		t.Fatal("First failed")
	}
	if c.LeafID() == 0 {
		t.Errorf("LeafID should be a real page")
	}
}

func TestCursorPrevAcrossLeaves(t *testing.T) {
	tree := newTestTree(t, 512, 2, 0, 64)
	for i := uint64(0); i < 40; i++ {
		tree.Insert(Key{Hi: i}, nil)
	}
	c := tree.Cursor()
	// Prev on an invalid cursor is a no-op.
	if ok, _ := c.Prev(); ok {
		t.Errorf("Prev on fresh cursor")
	}
	if ok, _ := c.SeekGE(Key{Hi: 39}); !ok {
		t.Fatal("seek failed")
	}
	for i := 39; i > 0; i-- {
		ok, err := c.Prev()
		if err != nil || !ok {
			t.Fatalf("Prev at %d: %v %v", i, ok, err)
		}
		if c.Key().Hi != uint64(i-1) {
			t.Fatalf("Prev order wrong at %d", i)
		}
	}
	if ok, _ := c.Prev(); ok {
		t.Errorf("Prev past the first entry")
	}
}

// TestCheckInvariantsDetectsCorruption: the checker must notice
// hand-planted structural damage.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	tree := newTestTree(t, 512, 4, 0, 64)
	for i := uint64(0); i < 100; i++ {
		tree.Insert(Key{Hi: i}, nil)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// storeLeaf writes a decoded leaf back into its page in place —
	// deliberate corruption, bypassing the copy-on-write discipline.
	storeLeaf := func(id disk.PageID, n *leafNode) {
		t.Helper()
		f, err := tree.pool.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		n.encode(f.Data, tree.valueSize)
		if err := tree.pool.Unpin(id, true); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt a leaf: swap two keys so ordering breaks.
	c := tree.Cursor()
	c.First()
	leafID := c.LeafID()
	n, err := tree.loadLeaf(leafID)
	if err != nil {
		t.Fatal(err)
	}
	n.keys[0], n.keys[1] = n.keys[1], n.keys[0]
	storeLeaf(leafID, n)
	if err := tree.CheckInvariants(); err == nil {
		t.Errorf("corrupted leaf passed invariant check")
	}
	// Restore, then corrupt the entry counter.
	n.keys[0], n.keys[1] = n.keys[1], n.keys[0]
	storeLeaf(leafID, n)
	tree.cur.count++
	if err := tree.CheckInvariants(); err == nil {
		t.Errorf("wrong count passed invariant check")
	}
	tree.cur.count--
	// Corrupt the leaf counter.
	tree.cur.leaves++
	if err := tree.CheckInvariants(); err == nil {
		t.Errorf("wrong leaf count passed invariant check")
	}
	tree.cur.leaves--
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("restored tree fails invariant check: %v", err)
	}
}

func TestDecodeWrongNodeType(t *testing.T) {
	tree := newTestTree(t, 512, 4, 0, 64)
	tree.Insert(Key{Hi: 1}, nil)
	// The root is a leaf; decoding it as internal must fail.
	if _, err := tree.loadInternal(tree.Meta().Root); err == nil {
		t.Errorf("leaf decoded as internal")
	}
}

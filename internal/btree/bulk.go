package btree

import (
	"fmt"

	"probe/internal/disk"
)

// Entry is one key/value pair for bulk loading.
type Entry struct {
	Key   Key
	Value []byte
}

// Load builds a tree bottom-up from sorted, strictly increasing
// entries: leaves are packed left to right at the given fill (as a
// fraction of LeafCapacity; 0 means full), then internal levels are
// built over them. A bulk-loaded tree satisfies the same invariants
// as one built by insertion but packs pages tighter — loading n
// entries costs O(n) page writes instead of O(n log n) page accesses.
// The finished tree is published as its first committed version.
func Load(pool *disk.Pool, cfg Config, entries []Entry, fill float64) (*Tree, error) {
	t, err := newTreeShell(pool, cfg.ValueSize, cfg.LeafCapacity)
	if err != nil {
		return nil, err
	}
	if fill == 0 {
		fill = 1
	}
	if fill < 0.5 || fill > 1 {
		return nil, fmt.Errorf("btree: fill %v outside [0.5, 1]", fill)
	}
	if len(entries) == 0 {
		// Degenerate load: a single empty root leaf, like New.
		f, err := pool.NewPage()
		if err != nil {
			return nil, err
		}
		(&leafNode{}).encode(f.Data, t.valueSize)
		if err := pool.Unpin(f.ID, true); err != nil {
			return nil, err
		}
		t.publishInitial(&version{root: f.ID, height: 1, leaves: 1})
		return t, nil
	}
	for i := 1; i < len(entries); i++ {
		if !entries[i-1].Key.Less(entries[i].Key) {
			return nil, fmt.Errorf("btree: entries not strictly increasing at %d", i)
		}
	}
	for _, e := range entries {
		if len(e.Value) != t.valueSize {
			return nil, fmt.Errorf("btree: entry value has %d bytes, want %d", len(e.Value), t.valueSize)
		}
	}
	target := int(fill * float64(t.leafCap))
	if target < 2 {
		target = 2
	}

	// Level 0: pack leaves. chunks distributes the entries evenly
	// over ceil(n/target) leaves so no leaf underflows.
	sizes := chunkSizes(len(entries), target, t.minLeafEntries())
	type childRef struct {
		id  disk.PageID
		sep []byte // separator preceding this child (nil for first)
	}
	var level []childRef
	leaves := 0
	pos := 0
	for li, size := range sizes {
		f, err := pool.NewPage()
		if err != nil {
			return nil, err
		}
		n := &leafNode{}
		for i := 0; i < size; i++ {
			e := entries[pos]
			pos++
			v := make([]byte, t.valueSize)
			copy(v, e.Value)
			n.keys = append(n.keys, e.Key)
			n.values = append(n.values, v)
		}
		var sep []byte
		if li > 0 {
			var a, b [encodedKeyLen]byte
			entries[pos-size-1].Key.encode(a[:]) // last key of previous leaf
			n.keys[0].encode(b[:])
			sep = shortestSeparator(a[:], b[:])
		}
		level = append(level, childRef{id: f.ID, sep: sep})
		n.encode(f.Data, t.valueSize)
		if err := pool.Unpin(f.ID, true); err != nil {
			return nil, err
		}
		leaves++
	}

	// Build internal levels until one node remains.
	height := 1
	intTarget := t.fanout
	for len(level) > 1 {
		sizes := chunkSizes(len(level), intTarget, t.minChildren())
		var next []childRef
		pos := 0
		for ni, size := range sizes {
			f, err := pool.NewPage()
			if err != nil {
				return nil, err
			}
			n := &internalNode{}
			var nodeSep []byte
			for i := 0; i < size; i++ {
				c := level[pos]
				pos++
				if i == 0 {
					nodeSep = c.sep // promoted to the next level
					n.children = append(n.children, c.id)
					continue
				}
				n.children = append(n.children, c.id)
				n.seps = append(n.seps, c.sep)
			}
			if ni == 0 {
				nodeSep = nil
			}
			n.encode(f.Data)
			if err := pool.Unpin(f.ID, true); err != nil {
				return nil, err
			}
			next = append(next, childRef{id: f.ID, sep: nodeSep})
		}
		level = next
		height++
	}
	t.publishInitial(&version{
		root:   level[0].id,
		height: height,
		count:  len(entries),
		leaves: leaves,
	})
	return t, nil
}

// chunkSizes splits n items into roughly ceil(n/target) chunks of
// nearly equal size, reducing the chunk count as needed so that every
// chunk holds at least min items (a single chunk is exempt — it
// becomes the root).
func chunkSizes(n, target, min int) []int {
	if n == 0 {
		return nil
	}
	chunks := (n + target - 1) / target
	if min > 0 && chunks > 1 {
		maxChunks := n / min
		if maxChunks < 1 {
			maxChunks = 1
		}
		if chunks > maxChunks {
			chunks = maxChunks
		}
	}
	base := n / chunks
	extra := n % chunks
	sizes := make([]int, chunks)
	for i := range sizes {
		sizes[i] = base
		if i < extra {
			sizes[i]++
		}
	}
	return sizes
}

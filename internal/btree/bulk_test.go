package btree

import (
	"math/rand"
	"testing"

	"probe/internal/disk"
)

func sortedEntries(n int, valueSize int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{Key: Key{Hi: uint64(i) * 3, Lo: uint64(i)}, Value: make([]byte, valueSize)}
		if valueSize >= 1 {
			es[i].Value[0] = byte(i)
		}
	}
	return es
}

func TestLoadEmpty(t *testing.T) {
	pool := disk.MustPool(disk.MustMemStore(512), 64, disk.LRU)
	tree, err := Load(pool, Config{ValueSize: 0, LeafCapacity: 4}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 0 || tree.Height() != 1 {
		t.Errorf("empty load wrong")
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSingleLeaf(t *testing.T) {
	pool := disk.MustPool(disk.MustMemStore(512), 64, disk.LRU)
	tree, err := Load(pool, Config{ValueSize: 1, LeafCapacity: 8}, sortedEntries(5, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 5 || tree.Height() != 1 || tree.LeafPages() != 1 {
		t.Errorf("single leaf load: len=%d h=%d leaves=%d", tree.Len(), tree.Height(), tree.LeafPages())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadLargeAndScan(t *testing.T) {
	for _, n := range []int{1, 2, 7, 20, 21, 399, 5000} {
		pool := disk.MustPool(disk.MustMemStore(1024), 256, disk.LRU)
		es := sortedEntries(n, 1)
		tree, err := Load(pool, Config{ValueSize: 1, LeafCapacity: 20}, es, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tree.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tree.Len())
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		c := tree.Cursor()
		i := 0
		for ok, err := c.First(); ok; ok, err = c.Next() {
			if err != nil {
				t.Fatal(err)
			}
			if c.Key() != es[i].Key {
				t.Fatalf("n=%d: scan key %v at %d, want %v", n, c.Key(), i, es[i].Key)
			}
			if c.Value()[0] != es[i].Value[0] {
				t.Fatalf("n=%d: value mismatch at %d", n, i)
			}
			i++
		}
		if i != n {
			t.Fatalf("n=%d: scan saw %d entries", n, i)
		}
	}
}

func TestLoadPacksTighterThanInsert(t *testing.T) {
	es := sortedEntries(5000, 0)
	poolA := disk.MustPool(disk.MustMemStore(1024), 256, disk.LRU)
	loaded, err := Load(poolA, Config{ValueSize: 0, LeafCapacity: 20}, es, 0)
	if err != nil {
		t.Fatal(err)
	}
	poolB := disk.MustPool(disk.MustMemStore(1024), 256, disk.LRU)
	inserted, err := New(poolB, Config{ValueSize: 0, LeafCapacity: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range es {
		if err := inserted.Insert(e.Key, e.Value); err != nil {
			t.Fatal(err)
		}
	}
	if loaded.LeafPages() >= inserted.LeafPages() {
		t.Errorf("bulk load should pack tighter: %d vs %d leaves",
			loaded.LeafPages(), inserted.LeafPages())
	}
	// Full fill: exactly ceil(5000/20) leaves.
	if loaded.LeafPages() != 250 {
		t.Errorf("full-fill load has %d leaves, want 250", loaded.LeafPages())
	}
}

func TestLoadWithFill(t *testing.T) {
	es := sortedEntries(1000, 0)
	pool := disk.MustPool(disk.MustMemStore(1024), 256, disk.LRU)
	tree, err := Load(pool, Config{ValueSize: 0, LeafCapacity: 20}, es, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// ~10 entries per leaf.
	if tree.LeafPages() < 90 || tree.LeafPages() > 110 {
		t.Errorf("half-fill load has %d leaves, want ~100", tree.LeafPages())
	}
	if _, err := Load(pool, Config{ValueSize: 0, LeafCapacity: 20}, es, 0.2); err == nil {
		t.Errorf("fill below 0.5 accepted")
	}
	if _, err := Load(pool, Config{ValueSize: 0, LeafCapacity: 20}, es, 1.5); err == nil {
		t.Errorf("fill above 1 accepted")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	pool := disk.MustPool(disk.MustMemStore(512), 64, disk.LRU)
	dup := []Entry{{Key: Key{Hi: 1}}, {Key: Key{Hi: 1}}}
	if _, err := Load(pool, Config{ValueSize: 0, LeafCapacity: 4}, dup, 0); err == nil {
		t.Errorf("duplicate keys accepted")
	}
	unsorted := []Entry{{Key: Key{Hi: 2}}, {Key: Key{Hi: 1}}}
	if _, err := Load(pool, Config{ValueSize: 0, LeafCapacity: 4}, unsorted, 0); err == nil {
		t.Errorf("unsorted keys accepted")
	}
	badVal := []Entry{{Key: Key{Hi: 1}, Value: []byte{1, 2}}}
	if _, err := Load(pool, Config{ValueSize: 0, LeafCapacity: 4}, badVal, 0); err == nil {
		t.Errorf("wrong value size accepted")
	}
}

// TestLoadThenMutate: a bulk-loaded tree must behave identically to
// an insert-built one under subsequent inserts and deletes.
func TestLoadThenMutate(t *testing.T) {
	es := sortedEntries(500, 0)
	pool := disk.MustPool(disk.MustMemStore(512), 256, disk.LRU)
	tree, err := Load(pool, Config{ValueSize: 0, LeafCapacity: 6}, es, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	ref := make(map[Key]bool, len(es))
	for _, e := range es {
		ref[e.Key] = true
	}
	for step := 0; step < 2000; step++ {
		k := Key{Hi: uint64(rng.Intn(1600)), Lo: uint64(rng.Intn(534))}
		if rng.Intn(2) == 0 {
			err := tree.Insert(k, nil)
			if ref[k] {
				if err != ErrDuplicateKey {
					t.Fatalf("step %d: %v", step, err)
				}
			} else if err != nil {
				t.Fatalf("step %d: %v", step, err)
			} else {
				ref[k] = true
			}
		} else {
			ok, err := tree.Delete(k)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if ok != ref[k] {
				t.Fatalf("step %d: delete mismatch", step)
			}
			delete(ref, k)
		}
		if step%499 == 0 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tree.Len() != len(ref) {
		t.Errorf("Len=%d ref=%d", tree.Len(), len(ref))
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestChunkSizes(t *testing.T) {
	cases := []struct {
		n, target, min int
		chunks         int
	}{
		{0, 10, 5, 0},
		{5, 10, 5, 1},
		{10, 10, 5, 1},
		{11, 10, 5, 2},
		{100, 10, 5, 10},
		{11, 10, 9, 1},  // min forces fewer chunks
		{19, 10, 10, 1}, // cannot make 2 chunks of >= 10
	}
	for _, c := range cases {
		sizes := chunkSizes(c.n, c.target, c.min)
		if len(sizes) != c.chunks {
			t.Errorf("chunkSizes(%d,%d,%d) = %v, want %d chunks", c.n, c.target, c.min, sizes, c.chunks)
		}
		sum := 0
		for i, s := range sizes {
			sum += s
			if len(sizes) > 1 && s < c.min {
				t.Errorf("chunkSizes(%d,%d,%d)[%d] = %d underflows", c.n, c.target, c.min, i, s)
			}
		}
		if sum != c.n {
			t.Errorf("chunkSizes(%d,%d,%d) sums to %d", c.n, c.target, c.min, sum)
		}
	}
}

package btree

import (
	"fmt"

	"probe/internal/disk"
)

// CheckInvariants pins the current committed version and verifies its
// structural invariants. It is used by tests after randomized
// workloads; the checks are:
//
//  1. every leaf's keys are strictly increasing, and keys increase
//     strictly across leaves taken in order (the global key order);
//  2. leaf occupancy is within [minLeafEntries, leafCap] except for a
//     root leaf;
//  3. internal occupancy is within [minChildren, fanout] except for
//     the root (>= 2 children);
//  4. every key in child i satisfies seps[i-1] <= enc(key) < seps[i];
//  5. the entry count and leaf count match the version's counters;
//  6. all leaves are at the same depth (the version's height).
//
// Because the walk runs against one pinned version, it is safe (and
// meaningful) concurrently with writers: it validates the committed
// state the snapshot observes.
func (t *Tree) CheckInvariants() error {
	s := t.Snapshot()
	defer s.Release()
	return s.CheckInvariants()
}

// CheckInvariants verifies the snapshot's version of the tree; see
// Tree.CheckInvariants.
func (s *Snapshot) CheckInvariants() error {
	if s.released {
		return fmt.Errorf("btree: CheckInvariants on released snapshot")
	}
	t, v := s.t, s.v
	type visit struct {
		id    disk.PageID
		depth int
		lo    []byte // inclusive lower bound (nil = none)
		hi    []byte // exclusive upper bound (nil = none)
	}
	leaves := 0
	entries := 0
	var lastKey Key
	haveLast := false
	stack := []visit{{id: v.root, depth: 1}}
	// Depth-first, children pushed right-to-left to visit leaves left
	// to right.
	for len(stack) > 0 {
		vi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f, err := t.pool.Get(vi.id)
		if err != nil {
			return err
		}
		typ := decodeNodeType(f.Data)
		switch typ {
		case leafType:
			n, err := decodeLeaf(f.Data, t.valueSize)
			if err != nil {
				return err
			}
			if err := t.pool.Unpin(vi.id, false); err != nil {
				return err
			}
			if vi.depth != v.height {
				return fmt.Errorf("leaf %d at depth %d, want %d", vi.id, vi.depth, v.height)
			}
			if vi.id != v.root && len(n.keys) < t.minLeafEntries() {
				return fmt.Errorf("leaf %d underfull: %d < %d", vi.id, len(n.keys), t.minLeafEntries())
			}
			if len(n.keys) > t.leafCap {
				return fmt.Errorf("leaf %d overfull: %d > %d", vi.id, len(n.keys), t.leafCap)
			}
			var enc [encodedKeyLen]byte
			for i, k := range n.keys {
				if haveLast && !lastKey.Less(k) {
					return fmt.Errorf("leaf %d breaks global key order at entry %d", vi.id, i)
				}
				lastKey, haveLast = k, true
				k.encode(enc[:])
				if vi.lo != nil && sepCompare(vi.lo, enc[:]) > 0 {
					return fmt.Errorf("leaf %d key %v below bound", vi.id, k)
				}
				if vi.hi != nil && sepCompare(vi.hi, enc[:]) <= 0 {
					return fmt.Errorf("leaf %d key %v above bound", vi.id, k)
				}
			}
			entries += len(n.keys)
			leaves++
		case internalType:
			n, err := decodeInternal(f.Data)
			if err != nil {
				return err
			}
			if err := t.pool.Unpin(vi.id, false); err != nil {
				return err
			}
			minC := t.minChildren()
			if vi.id == v.root {
				minC = 2
			}
			if len(n.children) < minC {
				return fmt.Errorf("internal %d underfull: %d children < %d", vi.id, len(n.children), minC)
			}
			if len(n.children) > t.fanout {
				return fmt.Errorf("internal %d overfull: %d children > %d", vi.id, len(n.children), t.fanout)
			}
			for i := 1; i < len(n.seps); i++ {
				if sepCompare(n.seps[i-1], n.seps[i]) >= 0 {
					return fmt.Errorf("internal %d separators not increasing at %d", vi.id, i)
				}
			}
			for i := len(n.children) - 1; i >= 0; i-- {
				lo, hi := vi.lo, vi.hi
				if i > 0 {
					lo = n.seps[i-1]
				}
				if i < len(n.seps) {
					hi = n.seps[i]
				}
				stack = append(stack, visit{id: n.children[i], depth: vi.depth + 1, lo: lo, hi: hi})
			}
		default:
			return fmt.Errorf("page %d has unknown node type %d", vi.id, typ)
		}
	}
	if entries != v.count {
		return fmt.Errorf("tree holds %d entries, counter says %d", entries, v.count)
	}
	if leaves != v.leaves {
		return fmt.Errorf("tree has %d leaves, counter says %d", leaves, v.leaves)
	}
	return nil
}

package btree

import (
	"fmt"

	"probe/internal/disk"
)

// CheckInvariants walks the whole tree and verifies its structural
// invariants. It is used by tests after randomized workloads; the
// checks are:
//
//  1. every leaf's keys are strictly increasing;
//  2. leaf occupancy is within [minLeafEntries, leafCap] except for a
//     root leaf;
//  3. internal occupancy is within [minChildren, fanout] except for
//     the root (>= 2 children);
//  4. every key in child i satisfies seps[i-1] <= enc(key) < seps[i];
//  5. the leaf sibling links visit every leaf in key order;
//  6. the entry count and leaf count match the tree's counters;
//  7. all leaves are at the same depth (t.height).
func (t *Tree) CheckInvariants() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	type visit struct {
		id    disk.PageID
		depth int
		lo    []byte // inclusive lower bound (nil = none)
		hi    []byte // exclusive upper bound (nil = none)
	}
	var leavesInOrder []disk.PageID
	entries := 0
	stack := []visit{{id: t.root, depth: 1}}
	// Depth-first, children pushed right-to-left to visit leaves left
	// to right.
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f, err := t.pool.Get(v.id)
		if err != nil {
			return err
		}
		typ := decodeNodeType(f.Data)
		switch typ {
		case leafType:
			n, err := decodeLeaf(f.Data, t.valueSize)
			if err != nil {
				return err
			}
			if err := t.pool.Unpin(v.id, false); err != nil {
				return err
			}
			if v.depth != t.height {
				return fmt.Errorf("leaf %d at depth %d, want %d", v.id, v.depth, t.height)
			}
			if v.id != t.root && len(n.keys) < t.minLeafEntries() {
				return fmt.Errorf("leaf %d underfull: %d < %d", v.id, len(n.keys), t.minLeafEntries())
			}
			if len(n.keys) > t.leafCap {
				return fmt.Errorf("leaf %d overfull: %d > %d", v.id, len(n.keys), t.leafCap)
			}
			var enc [encodedKeyLen]byte
			for i, k := range n.keys {
				if i > 0 && !n.keys[i-1].Less(k) {
					return fmt.Errorf("leaf %d keys not increasing at %d", v.id, i)
				}
				k.encode(enc[:])
				if v.lo != nil && sepCompare(v.lo, enc[:]) > 0 {
					return fmt.Errorf("leaf %d key %v below bound", v.id, k)
				}
				if v.hi != nil && sepCompare(v.hi, enc[:]) <= 0 {
					return fmt.Errorf("leaf %d key %v above bound", v.id, k)
				}
			}
			entries += len(n.keys)
			leavesInOrder = append(leavesInOrder, v.id)
		case internalType:
			n, err := decodeInternal(f.Data)
			if err != nil {
				return err
			}
			if err := t.pool.Unpin(v.id, false); err != nil {
				return err
			}
			minC := t.minChildren()
			if v.id == t.root {
				minC = 2
			}
			if len(n.children) < minC {
				return fmt.Errorf("internal %d underfull: %d children < %d", v.id, len(n.children), minC)
			}
			if len(n.children) > t.fanout {
				return fmt.Errorf("internal %d overfull: %d children > %d", v.id, len(n.children), t.fanout)
			}
			for i := 1; i < len(n.seps); i++ {
				if sepCompare(n.seps[i-1], n.seps[i]) >= 0 {
					return fmt.Errorf("internal %d separators not increasing at %d", v.id, i)
				}
			}
			for i := len(n.children) - 1; i >= 0; i-- {
				lo, hi := v.lo, v.hi
				if i > 0 {
					lo = n.seps[i-1]
				}
				if i < len(n.seps) {
					hi = n.seps[i]
				}
				stack = append(stack, visit{id: n.children[i], depth: v.depth + 1, lo: lo, hi: hi})
			}
		default:
			return fmt.Errorf("page %d has unknown node type %d", v.id, typ)
		}
	}
	if entries != t.count {
		return fmt.Errorf("tree holds %d entries, counter says %d", entries, t.count)
	}
	if len(leavesInOrder) != t.leaves {
		return fmt.Errorf("tree has %d leaves, counter says %d", len(leavesInOrder), t.leaves)
	}
	// Walk the sibling chain and compare with the in-order leaves.
	var chain []disk.PageID
	id := leavesInOrder[0]
	prevID := disk.InvalidPage
	for id != disk.InvalidPage {
		n, err := t.loadLeaf(id)
		if err != nil {
			return err
		}
		if n.prev != prevID {
			return fmt.Errorf("leaf %d prev link %d, want %d", id, n.prev, prevID)
		}
		chain = append(chain, id)
		prevID, id = id, n.next
	}
	if len(chain) != len(leavesInOrder) {
		return fmt.Errorf("sibling chain has %d leaves, tree walk found %d", len(chain), len(leavesInOrder))
	}
	for i := range chain {
		if chain[i] != leavesInOrder[i] {
			return fmt.Errorf("sibling chain diverges from key order at leaf %d", i)
		}
	}
	return nil
}

package btree

import (
	"context"
	"fmt"

	"probe/internal/disk"
	"probe/internal/obs"
)

// Cursor iterates leaf entries in key order. It supports the two
// access patterns the range-search merge requires (Section 3.3):
// sequential access (Next, via the descent stack) and random access
// (SeekGE, a root-to-leaf descent).
//
// A cursor holds decoded copies of its descent path — the internal
// nodes from the root down, plus one leaf — and no pins between
// steps, so any number of cursors may be open. Sequential steps reuse
// the cached path: advancing to a neighboring leaf under the same
// parent costs one leaf read, with internal reads only when the walk
// crosses a subtree boundary.
//
// A cursor obtained from Tree.Cursor is live: each step pins the
// current committed version, so steps interleaved with writes observe
// the newest data — each step is consistent, but the sequence may
// span versions (the cursor re-anchors by key when the tree changed
// under it, so it never follows stale pages). A cursor obtained from
// Snapshot.Cursor is bound to that snapshot's version for its whole
// lifetime and is immune to concurrent writes. A cursor itself must
// not be shared between goroutines.
type Cursor struct {
	t     *Tree
	snap  *Snapshot // non-nil: fixed-version cursor
	v     *version  // version the cached path below belongs to
	stack []cursorLevel
	leaf  *leafNode
	id    disk.PageID
	pos   int
	valid bool
	span  *obs.Span       // traversal-work attribution; nil = untraced
	ctx   context.Context // cancellation; nil = never cancelled
}

// cursorLevel is one decoded internal node on the descent path and
// the index of the child the path went into.
type cursorLevel struct {
	n     *internalNode
	id    disk.PageID
	child int
}

// Cursor returns a new live cursor positioned before the first entry.
func (t *Tree) Cursor() *Cursor { return &Cursor{t: t} }

// SetSpan attributes the cursor's traversal work to sp: one
// obs.Seeks per SeekGE, obs.NodeVisits per internal node loaded, and
// obs.LeafScans per leaf page loaded (rescans included —
// distinct-page counting is the caller's concern). A nil span
// disables attribution at zero cost.
func (c *Cursor) SetSpan(sp *obs.Span) { c.span = sp }

// SetContext makes the cursor cancellable: every page-load boundary
// checks the context first and fails with its error once it is done.
// Cancellation therefore costs at most the leaf already in hand: a
// cancelled cursor performs no further page reads. A nil context (the
// default) disables the checks at zero cost.
func (c *Cursor) SetContext(ctx context.Context) { c.ctx = ctx }

// ctxErr reports the cursor's cancellation state.
func (c *Cursor) ctxErr() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// errReleasedSnapshot guards against use-after-Release bugs.
var errReleasedSnapshot = fmt.Errorf("btree: cursor on released snapshot")

// acquire returns the version this step reads and whether the caller
// must unpin it afterwards. Snapshot cursors read their pinned
// version for free; live cursors pin the current version for the
// duration of one step.
func (c *Cursor) acquire() (*version, bool, error) {
	if c.snap != nil {
		if c.snap.released {
			return nil, false, errReleasedSnapshot
		}
		return c.snap.v, false, nil
	}
	return c.t.pin(), true, nil
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.valid }

// Key returns the current entry's key; the cursor must be Valid.
func (c *Cursor) Key() Key {
	if !c.valid {
		panic("btree: Key on invalid cursor")
	}
	return c.leaf.keys[c.pos]
}

// Value returns the current entry's value; the cursor must be Valid.
// The returned slice is the cursor's copy; callers must not hold it
// across Next.
func (c *Cursor) Value() []byte {
	if !c.valid {
		panic("btree: Value on invalid cursor")
	}
	return c.leaf.values[c.pos]
}

// LeafID returns the page id of the leaf under the cursor; the
// cursor must be Valid. The experiment harness uses it to attribute
// entries to pages (Figure 6).
func (c *Cursor) LeafID() disk.PageID {
	if !c.valid {
		panic("btree: LeafID on invalid cursor")
	}
	return c.id
}

// First positions the cursor on the smallest entry. It reports
// whether the tree is non-empty.
func (c *Cursor) First() (bool, error) {
	return c.SeekGE(Key{})
}

// descend rebuilds the cursor's path from v's root to the leaf
// responsible for k.
func (c *Cursor) descend(v *version, k Key) error {
	var enc [encodedKeyLen]byte
	k.encode(enc[:])
	c.stack = c.stack[:0]
	id := v.root
	for level := v.height; level > 1; level-- {
		if err := c.ctxErr(); err != nil {
			return err
		}
		n, err := c.t.loadInternal(id)
		if err != nil {
			return err
		}
		c.span.Inc(obs.NodeVisits)
		i := n.childIndex(enc[:])
		c.stack = append(c.stack, cursorLevel{n: n, id: id, child: i})
		id = n.children[i]
	}
	if err := c.ctxErr(); err != nil {
		return err
	}
	n, err := c.t.loadLeaf(id)
	if err != nil {
		return err
	}
	c.span.Inc(obs.LeafScans)
	c.leaf, c.id, c.v = n, id, v
	return nil
}

// descendEdge descends to the leftmost (rightmost) leaf of the
// subtree rooted at id, extending the cached path.
func (c *Cursor) descendEdge(v *version, id disk.PageID, rightmost bool) (bool, error) {
	for len(c.stack)+1 < v.height {
		if err := c.ctxErr(); err != nil {
			c.valid = false
			return false, err
		}
		n, err := c.t.loadInternal(id)
		if err != nil {
			c.valid = false
			return false, err
		}
		c.span.Inc(obs.NodeVisits)
		child := 0
		if rightmost {
			child = len(n.children) - 1
		}
		c.stack = append(c.stack, cursorLevel{n: n, id: id, child: child})
		id = n.children[child]
	}
	if err := c.ctxErr(); err != nil {
		c.valid = false
		return false, err
	}
	n, err := c.t.loadLeaf(id)
	if err != nil {
		c.valid = false
		return false, err
	}
	c.span.Inc(obs.LeafScans)
	c.leaf, c.id = n, id
	if rightmost {
		c.pos = len(n.keys) - 1
	} else {
		c.pos = 0
	}
	c.valid = len(n.keys) > 0
	return c.valid, nil
}

// nextLeaf moves to the first entry of the leaf after the current one
// by walking the cached path: pop exhausted levels, advance the first
// ancestor with a further child, descend its leftmost edge.
func (c *Cursor) nextLeaf(v *version) (bool, error) {
	for len(c.stack) > 0 {
		top := &c.stack[len(c.stack)-1]
		if top.child+1 < len(top.n.children) {
			top.child++
			return c.descendEdge(v, top.n.children[top.child], false)
		}
		c.stack = c.stack[:len(c.stack)-1]
	}
	c.valid = false
	return false, nil
}

// prevLeaf is nextLeaf's mirror image.
func (c *Cursor) prevLeaf(v *version) (bool, error) {
	for len(c.stack) > 0 {
		top := &c.stack[len(c.stack)-1]
		if top.child > 0 {
			top.child--
			return c.descendEdge(v, top.n.children[top.child], true)
		}
		c.stack = c.stack[:len(c.stack)-1]
	}
	c.valid = false
	return false, nil
}

// SeekGE positions the cursor on the first entry with key >= k.
func (c *Cursor) SeekGE(k Key) (bool, error) {
	if err := c.ctxErr(); err != nil {
		c.valid = false
		return false, err
	}
	v, rel, err := c.acquire()
	if err != nil {
		c.valid = false
		return false, err
	}
	if rel {
		defer c.t.unpin(v)
	}
	c.span.Inc(obs.Seeks)
	if err := c.descend(v, k); err != nil {
		c.valid = false
		return false, err
	}
	c.pos = searchLeaf(c.leaf, k)
	if c.pos < len(c.leaf.keys) {
		c.valid = true
		return true, nil
	}
	// The target starts past this leaf's end (the descend key landed
	// at a leaf boundary).
	return c.nextLeaf(v)
}

// Next advances to the next entry in key order.
func (c *Cursor) Next() (bool, error) {
	if !c.valid {
		return false, nil
	}
	if c.pos+1 < len(c.leaf.keys) {
		c.pos++
		return true, nil
	}
	// Crossing a leaf boundary needs a consistent view: pin one.
	last := c.leaf.keys[len(c.leaf.keys)-1]
	v, rel, err := c.acquire()
	if err != nil {
		c.valid = false
		return false, err
	}
	if rel {
		defer c.t.unpin(v)
	}
	if v != c.v {
		// The tree changed since the cached path was built: the old
		// page ids may be gone. Re-anchor by key in the new version.
		if err := c.descend(v, last); err != nil {
			c.valid = false
			return false, err
		}
		c.pos = searchLeaf(c.leaf, last)
		if c.pos < len(c.leaf.keys) && c.leaf.keys[c.pos] == last {
			c.pos++
		}
		if c.pos < len(c.leaf.keys) {
			c.valid = true
			return true, nil
		}
	}
	return c.nextLeaf(v)
}

// Prev moves to the previous entry in key order.
func (c *Cursor) Prev() (bool, error) {
	if !c.valid {
		return false, nil
	}
	if c.pos > 0 {
		c.pos--
		return true, nil
	}
	first := c.leaf.keys[0]
	v, rel, err := c.acquire()
	if err != nil {
		c.valid = false
		return false, err
	}
	if rel {
		defer c.t.unpin(v)
	}
	if v != c.v {
		if err := c.descend(v, first); err != nil {
			c.valid = false
			return false, err
		}
		c.pos = searchLeaf(c.leaf, first) - 1
		if c.pos >= 0 {
			c.valid = true
			return true, nil
		}
	}
	return c.prevLeaf(v)
}

package btree

import (
	"context"

	"probe/internal/disk"
	"probe/internal/obs"
)

// Cursor iterates leaf entries in key order. It supports the two
// access patterns the range-search merge requires (Section 3.3):
// sequential access (Next, via the leaf sibling links) and random
// access (SeekGE, a root-to-leaf descent).
//
// A cursor holds decoded copies of one leaf at a time and no pins, so
// any number of cursors may be open. Mutating the tree invalidates
// open cursors.
//
// Each cursor step takes the tree's read latch, so cursors from many
// goroutines may traverse one tree concurrently (see the Tree
// thread-safety contract). A cursor itself must not be shared between
// goroutines.
type Cursor struct {
	t     *Tree
	leaf  *leafNode
	id    disk.PageID
	pos   int
	valid bool
	span  *obs.Span       // traversal-work attribution; nil = untraced
	ctx   context.Context // cancellation; nil = never cancelled
}

// Cursor returns a new cursor positioned before the first entry.
func (t *Tree) Cursor() *Cursor { return &Cursor{t: t} }

// SetSpan attributes the cursor's traversal work to sp: one
// obs.Seeks per SeekGE, obs.NodeVisits per internal node crossed on a
// descent, and obs.LeafScans per leaf page loaded (rescans included —
// distinct-page counting is the caller's concern). A nil span
// disables attribution at zero cost.
func (c *Cursor) SetSpan(sp *obs.Span) { c.span = sp }

// SetContext makes the cursor cancellable: every page-load boundary —
// each SeekGE descent and each leaf crossing in Next/Prev — checks the
// context first and fails with its error once it is done. Cancellation
// therefore costs at most the leaf already in hand: a cancelled cursor
// performs no further page reads. A nil context (the default) disables
// the checks at zero cost.
func (c *Cursor) SetContext(ctx context.Context) { c.ctx = ctx }

// ctxErr reports the cursor's cancellation state.
func (c *Cursor) ctxErr() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.valid }

// Key returns the current entry's key; the cursor must be Valid.
func (c *Cursor) Key() Key {
	if !c.valid {
		panic("btree: Key on invalid cursor")
	}
	return c.leaf.keys[c.pos]
}

// Value returns the current entry's value; the cursor must be Valid.
// The returned slice is the cursor's copy; callers must not hold it
// across Next.
func (c *Cursor) Value() []byte {
	if !c.valid {
		panic("btree: Value on invalid cursor")
	}
	return c.leaf.values[c.pos]
}

// First positions the cursor on the smallest entry. It reports
// whether the tree is non-empty.
func (c *Cursor) First() (bool, error) {
	return c.SeekGE(Key{})
}

// SeekGE positions the cursor on the first entry with key >= k.
func (c *Cursor) SeekGE(k Key) (bool, error) {
	if err := c.ctxErr(); err != nil {
		c.valid = false
		return false, err
	}
	c.t.mu.RLock()
	defer c.t.mu.RUnlock()
	c.span.Inc(obs.Seeks)
	c.span.Add(obs.NodeVisits, int64(c.t.height-1))
	var enc [encodedKeyLen]byte
	k.encode(enc[:])
	id, _, err := c.t.findLeaf(enc[:])
	if err != nil {
		c.valid = false
		return false, err
	}
	n, err := c.t.loadLeaf(id)
	c.span.Inc(obs.LeafScans)
	if err != nil {
		c.valid = false
		return false, err
	}
	c.leaf, c.id = n, id
	c.pos = searchLeaf(n, k)
	// The target may start in the next leaf (the descend key landed
	// at this leaf's end).
	for c.pos >= len(c.leaf.keys) {
		if c.leaf.next == disk.InvalidPage {
			c.valid = false
			return false, nil
		}
		if err := c.ctxErr(); err != nil {
			c.valid = false
			return false, err
		}
		id = c.leaf.next
		n, err = c.t.loadLeaf(id)
		c.span.Inc(obs.LeafScans)
		if err != nil {
			c.valid = false
			return false, err
		}
		c.leaf, c.id, c.pos = n, id, 0
	}
	c.valid = true
	return true, nil
}

// Next advances to the next entry in key order.
func (c *Cursor) Next() (bool, error) {
	if !c.valid {
		return false, nil
	}
	c.t.mu.RLock()
	defer c.t.mu.RUnlock()
	c.pos++
	for c.pos >= len(c.leaf.keys) {
		if c.leaf.next == disk.InvalidPage {
			c.valid = false
			return false, nil
		}
		if err := c.ctxErr(); err != nil {
			c.valid = false
			return false, err
		}
		id := c.leaf.next
		n, err := c.t.loadLeaf(id)
		c.span.Inc(obs.LeafScans)
		if err != nil {
			c.valid = false
			return false, err
		}
		c.leaf, c.id, c.pos = n, id, 0
	}
	return true, nil
}

// Prev moves to the previous entry in key order.
func (c *Cursor) Prev() (bool, error) {
	if !c.valid {
		return false, nil
	}
	c.t.mu.RLock()
	defer c.t.mu.RUnlock()
	c.pos--
	for c.pos < 0 {
		if c.leaf.prev == disk.InvalidPage {
			c.valid = false
			return false, nil
		}
		if err := c.ctxErr(); err != nil {
			c.valid = false
			return false, err
		}
		id := c.leaf.prev
		n, err := c.t.loadLeaf(id)
		c.span.Inc(obs.LeafScans)
		if err != nil {
			c.valid = false
			return false, err
		}
		c.leaf, c.id, c.pos = n, id, len(n.keys)-1
	}
	return true, nil
}

// LeafID returns the page id of the leaf under the cursor; the
// cursor must be Valid. The experiment harness uses it to attribute
// entries to pages (Figure 6).
func (c *Cursor) LeafID() disk.PageID {
	if !c.valid {
		panic("btree: LeafID on invalid cursor")
	}
	return c.id
}

package btree

import (
	"fmt"

	"probe/internal/disk"
)

// load/store helpers: decode copies page contents, so frames are
// unpinned immediately and structure modifications never hold more
// than one pin at a time.

func (t *Tree) loadLeaf(id disk.PageID) (*leafNode, error) {
	f, n, err := t.readLeaf(id)
	if err != nil {
		return nil, err
	}
	return n, t.pool.Unpin(f.ID, false)
}

func (t *Tree) storeLeaf(id disk.PageID, n *leafNode) error {
	f, err := t.pool.Get(id)
	if err != nil {
		return err
	}
	n.encode(f.Data, t.valueSize)
	return t.pool.Unpin(id, true)
}

func (t *Tree) loadInternal(id disk.PageID) (*internalNode, error) {
	f, n, err := t.readInternal(id)
	if err != nil {
		return nil, err
	}
	return n, t.pool.Unpin(f.ID, false)
}

func (t *Tree) storeInternal(id disk.PageID, n *internalNode) error {
	f, err := t.pool.Get(id)
	if err != nil {
		return err
	}
	n.encode(f.Data)
	return t.pool.Unpin(id, true)
}

func (t *Tree) minLeafEntries() int { return t.leafCap / 2 }
func (t *Tree) minChildren() int    { return t.fanout / 2 }

// Delete removes the entry with the given key. It returns false when
// the key is absent. Underfull nodes borrow from or merge with
// siblings, so the tree adapts gracefully as the point set shrinks
// (the third requirement of Section 2).
func (t *Tree) Delete(k Key) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var enc [encodedKeyLen]byte
	k.encode(enc[:])
	leafID, path, err := t.findLeaf(enc[:])
	if err != nil {
		return false, err
	}
	n, err := t.loadLeaf(leafID)
	if err != nil {
		return false, err
	}
	i := searchLeaf(n, k)
	if i >= len(n.keys) || n.keys[i] != k {
		return false, nil
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.values = append(n.values[:i], n.values[i+1:]...)
	t.count--
	if err := t.storeLeaf(leafID, n); err != nil {
		return false, err
	}
	if len(n.keys) >= t.minLeafEntries() || len(path) == 0 {
		return true, nil // no underflow, or the root leaf may shrink freely
	}
	if err := t.rebalanceLeaf(leafID, n, path); err != nil {
		return false, err
	}
	return true, nil
}

// rebalanceLeaf restores the occupancy invariant of an underfull,
// non-root leaf.
func (t *Tree) rebalanceLeaf(id disk.PageID, n *leafNode, path []pathEntry) error {
	pe := path[len(path)-1]
	parent, err := t.loadInternal(pe.id)
	if err != nil {
		return err
	}
	ci := pe.child

	encMax := func(l *leafNode) []byte {
		var b [encodedKeyLen]byte
		l.keys[len(l.keys)-1].encode(b[:])
		return b[:]
	}
	encMin := func(l *leafNode) []byte {
		var b [encodedKeyLen]byte
		l.keys[0].encode(b[:])
		return b[:]
	}

	// Borrow from the left sibling.
	if ci > 0 {
		leftID := parent.children[ci-1]
		left, err := t.loadLeaf(leftID)
		if err != nil {
			return err
		}
		if len(left.keys) > t.minLeafEntries() {
			last := len(left.keys) - 1
			n.keys = append([]Key{left.keys[last]}, n.keys...)
			n.values = append([][]byte{left.values[last]}, n.values...)
			left.keys = left.keys[:last]
			left.values = left.values[:last]
			parent.seps[ci-1] = shortestSeparator(encMax(left), encMin(n))
			if err := t.storeLeaf(leftID, left); err != nil {
				return err
			}
			if err := t.storeLeaf(id, n); err != nil {
				return err
			}
			return t.storeInternal(pe.id, parent)
		}
	}
	// Borrow from the right sibling.
	if ci < len(parent.children)-1 {
		rightID := parent.children[ci+1]
		right, err := t.loadLeaf(rightID)
		if err != nil {
			return err
		}
		if len(right.keys) > t.minLeafEntries() {
			n.keys = append(n.keys, right.keys[0])
			n.values = append(n.values, right.values[0])
			right.keys = right.keys[1:]
			right.values = right.values[1:]
			parent.seps[ci] = shortestSeparator(encMax(n), encMin(right))
			if err := t.storeLeaf(rightID, right); err != nil {
				return err
			}
			if err := t.storeLeaf(id, n); err != nil {
				return err
			}
			return t.storeInternal(pe.id, parent)
		}
	}
	// Merge with a sibling: always merge the right node of the pair
	// into the left.
	var leftID, rightID disk.PageID
	var sepIdx int
	if ci > 0 {
		leftID, rightID, sepIdx = parent.children[ci-1], id, ci-1
	} else {
		leftID, rightID, sepIdx = id, parent.children[ci+1], ci
	}
	left, err := t.loadLeaf(leftID)
	if err != nil {
		return err
	}
	right, err := t.loadLeaf(rightID)
	if err != nil {
		return err
	}
	left.keys = append(left.keys, right.keys...)
	left.values = append(left.values, right.values...)
	left.next = right.next
	if right.next != disk.InvalidPage {
		after, err := t.loadLeaf(right.next)
		if err != nil {
			return err
		}
		after.prev = leftID
		if err := t.storeLeaf(right.next, after); err != nil {
			return err
		}
	}
	if err := t.storeLeaf(leftID, left); err != nil {
		return err
	}
	if err := t.pool.Drop(rightID); err != nil {
		return err
	}
	t.leaves--
	parent.removeAt(sepIdx)
	if err := t.storeInternal(pe.id, parent); err != nil {
		return err
	}
	return t.rebalanceInternal(pe.id, parent, path[:len(path)-1])
}

// rebalanceInternal restores the occupancy invariant of an internal
// node after one of its separators was removed.
func (t *Tree) rebalanceInternal(id disk.PageID, n *internalNode, path []pathEntry) error {
	if id == t.root {
		if len(n.children) == 1 {
			// Collapse the root.
			old := t.root
			t.root = n.children[0]
			t.height--
			return t.pool.Drop(old)
		}
		return nil
	}
	if len(n.children) >= t.minChildren() {
		return nil
	}
	pe := path[len(path)-1]
	parent, err := t.loadInternal(pe.id)
	if err != nil {
		return err
	}
	ci := pe.child

	// Borrow from the left sibling: rotate through the parent.
	if ci > 0 {
		leftID := parent.children[ci-1]
		left, err := t.loadInternal(leftID)
		if err != nil {
			return err
		}
		if len(left.children) > t.minChildren() {
			lastChild := left.children[len(left.children)-1]
			lastSep := left.seps[len(left.seps)-1]
			left.children = left.children[:len(left.children)-1]
			left.seps = left.seps[:len(left.seps)-1]
			n.children = append([]disk.PageID{lastChild}, n.children...)
			n.seps = append([][]byte{parent.seps[ci-1]}, n.seps...)
			parent.seps[ci-1] = lastSep
			if err := t.storeInternal(leftID, left); err != nil {
				return err
			}
			if err := t.storeInternal(id, n); err != nil {
				return err
			}
			return t.storeInternal(pe.id, parent)
		}
	}
	// Borrow from the right sibling.
	if ci < len(parent.children)-1 {
		rightID := parent.children[ci+1]
		right, err := t.loadInternal(rightID)
		if err != nil {
			return err
		}
		if len(right.children) > t.minChildren() {
			firstChild := right.children[0]
			firstSep := right.seps[0]
			right.children = right.children[1:]
			right.seps = right.seps[1:]
			n.children = append(n.children, firstChild)
			n.seps = append(n.seps, parent.seps[ci])
			parent.seps[ci] = firstSep
			if err := t.storeInternal(rightID, right); err != nil {
				return err
			}
			if err := t.storeInternal(id, n); err != nil {
				return err
			}
			return t.storeInternal(pe.id, parent)
		}
	}
	// Merge with a sibling, pulling the parent separator down.
	var leftID, rightID disk.PageID
	var sepIdx int
	if ci > 0 {
		leftID, rightID, sepIdx = parent.children[ci-1], id, ci-1
	} else {
		leftID, rightID, sepIdx = id, parent.children[ci+1], ci
	}
	left, err := t.loadInternal(leftID)
	if err != nil {
		return err
	}
	right, err := t.loadInternal(rightID)
	if err != nil {
		return err
	}
	left.seps = append(left.seps, parent.seps[sepIdx])
	left.seps = append(left.seps, right.seps...)
	left.children = append(left.children, right.children...)
	if len(left.children) > t.fanout {
		return fmt.Errorf("btree: merge overflowed internal node (%d children)", len(left.children))
	}
	if err := t.storeInternal(leftID, left); err != nil {
		return err
	}
	if err := t.pool.Drop(rightID); err != nil {
		return err
	}
	parent.removeAt(sepIdx)
	if err := t.storeInternal(pe.id, parent); err != nil {
		return err
	}
	return t.rebalanceInternal(pe.id, parent, path[:len(path)-1])
}

package btree

import (
	"fmt"

	"probe/internal/disk"
)

// load helpers: decode copies page contents, so frames are unpinned
// immediately and no operation ever holds more than one pin at a time.

func (t *Tree) loadLeaf(id disk.PageID) (*leafNode, error) {
	f, n, err := t.readLeaf(id)
	if err != nil {
		return nil, err
	}
	return n, t.pool.Unpin(f.ID, false)
}

func (t *Tree) loadInternal(id disk.PageID) (*internalNode, error) {
	f, n, err := t.readInternal(id)
	if err != nil {
		return nil, err
	}
	return n, t.pool.Unpin(f.ID, false)
}

func (t *Tree) minLeafEntries() int { return t.leafCap / 2 }
func (t *Tree) minChildren() int    { return t.fanout / 2 }

func encMaxLeaf(l *leafNode) []byte {
	var b [encodedKeyLen]byte
	l.keys[len(l.keys)-1].encode(b[:])
	return b[:]
}

func encMinLeaf(l *leafNode) []byte {
	var b [encodedKeyLen]byte
	l.keys[0].encode(b[:])
	return b[:]
}

// Delete removes the entry with the given key. It returns false when
// the key is absent. Underfull nodes borrow from or merge with
// siblings, so the tree adapts gracefully as the point set shrinks
// (the third requirement of Section 2). Like Insert, the delete is
// copy-on-write: every touched page is rewritten to a fresh page and
// the result published as one new version, leaving concurrent
// snapshot readers on the old one.
func (t *Tree) Delete(k Key) (bool, error) {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	w := &cow{t: t}
	nv, found, err := t.deleteCOW(w, t.currentVersion(), k)
	if err != nil {
		w.abort()
		return false, err
	}
	if !found {
		return false, nil
	}
	t.commit(nv, w.retired, []Key{k})
	return true, nil
}

func (t *Tree) deleteCOW(w *cow, v *version, k Key) (*version, bool, error) {
	var enc [encodedKeyLen]byte
	k.encode(enc[:])
	path, leafID, err := t.descendPath(v, enc[:])
	if err != nil {
		return nil, false, err
	}
	n, err := t.loadLeaf(leafID)
	if err != nil {
		return nil, false, err
	}
	i := searchLeaf(n, k)
	if i >= len(n.keys) || n.keys[i] != k {
		return nil, false, nil
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.values = append(n.values[:i], n.values[i+1:]...)
	nv := &version{seq: v.seq + 1, height: v.height, count: v.count - 1, leaves: v.leaves}

	if len(n.keys) >= t.minLeafEntries() || len(path) == 0 {
		// No underflow, or the root leaf may shrink freely.
		id, err := w.writeLeaf(n)
		if err != nil {
			return nil, false, err
		}
		w.retire(leafID)
		root, err := t.replaceUpward(w, path, len(path)-1, id)
		if err != nil {
			return nil, false, err
		}
		nv.root = root
		return nv, true, nil
	}

	// Underfull non-root leaf: borrow from a sibling or merge. The
	// parent (a decoded copy on the path) absorbs separator and child
	// edits in memory; replaceUpward/rebalanceUpward write it out.
	parent := path[len(path)-1].n
	ci := path[len(path)-1].child

	// Borrow from the left sibling.
	if ci > 0 {
		leftID := parent.children[ci-1]
		left, err := t.loadLeaf(leftID)
		if err != nil {
			return nil, false, err
		}
		if len(left.keys) > t.minLeafEntries() {
			last := len(left.keys) - 1
			n.keys = append([]Key{left.keys[last]}, n.keys...)
			n.values = append([][]byte{left.values[last]}, n.values...)
			left.keys = left.keys[:last]
			left.values = left.values[:last]
			parent.seps[ci-1] = shortestSeparator(encMaxLeaf(left), encMinLeaf(n))
			newLeft, err := w.writeLeaf(left)
			if err != nil {
				return nil, false, err
			}
			newSelf, err := w.writeLeaf(n)
			if err != nil {
				return nil, false, err
			}
			w.retire(leftID)
			w.retire(leafID)
			parent.children[ci-1] = newLeft
			parent.children[ci] = newSelf
			// The parent kept its child count: no rebalance above.
			root, err := t.writeParentAndReplaceUp(w, path, len(path)-1)
			if err != nil {
				return nil, false, err
			}
			nv.root = root
			return nv, true, nil
		}
	}
	// Borrow from the right sibling.
	if ci < len(parent.children)-1 {
		rightID := parent.children[ci+1]
		right, err := t.loadLeaf(rightID)
		if err != nil {
			return nil, false, err
		}
		if len(right.keys) > t.minLeafEntries() {
			n.keys = append(n.keys, right.keys[0])
			n.values = append(n.values, right.values[0])
			right.keys = right.keys[1:]
			right.values = right.values[1:]
			parent.seps[ci] = shortestSeparator(encMaxLeaf(n), encMinLeaf(right))
			newSelf, err := w.writeLeaf(n)
			if err != nil {
				return nil, false, err
			}
			newRight, err := w.writeLeaf(right)
			if err != nil {
				return nil, false, err
			}
			w.retire(leafID)
			w.retire(rightID)
			parent.children[ci] = newSelf
			parent.children[ci+1] = newRight
			root, err := t.writeParentAndReplaceUp(w, path, len(path)-1)
			if err != nil {
				return nil, false, err
			}
			nv.root = root
			return nv, true, nil
		}
	}
	// Merge with a sibling: always merge the right node of the pair
	// into the left. The merged leaf is a fresh page; both old halves
	// retire.
	var leftID, rightID disk.PageID
	var sepIdx int
	var left, right *leafNode
	if ci > 0 {
		leftID, rightID, sepIdx = parent.children[ci-1], leafID, ci-1
		if left, err = t.loadLeaf(leftID); err != nil {
			return nil, false, err
		}
		right = n
	} else {
		leftID, rightID, sepIdx = leafID, parent.children[ci+1], ci
		left = n
		if right, err = t.loadLeaf(rightID); err != nil {
			return nil, false, err
		}
	}
	left.keys = append(left.keys, right.keys...)
	left.values = append(left.values, right.values...)
	mergedID, err := w.writeLeaf(left)
	if err != nil {
		return nil, false, err
	}
	w.retire(leftID)
	w.retire(rightID)
	nv.leaves--
	parent.children[sepIdx] = mergedID
	parent.removeAt(sepIdx)
	root, err := t.rebalanceUpward(w, nv, path, len(path)-1)
	if err != nil {
		return nil, false, err
	}
	nv.root = root
	return nv, true, nil
}

// writeParentAndReplaceUp writes the (already edited) path node at
// level pi, retires its old page, and propagates the replacement to
// the root. It is the no-rebalance finish used after a borrow, where
// the edited node kept its child count.
func (t *Tree) writeParentAndReplaceUp(w *cow, path []cowLevel, pi int) (disk.PageID, error) {
	id, err := w.writeInternal(path[pi].n)
	if err != nil {
		return disk.InvalidPage, err
	}
	w.retire(path[pi].id)
	return t.replaceUpward(w, path, pi-1, id)
}

// rebalanceUpward writes out path[pi].n — an internal node whose child
// set shrank — rebalancing it against its siblings and cascading
// upward as needed. It returns the new root id.
func (t *Tree) rebalanceUpward(w *cow, nv *version, path []cowLevel, pi int) (disk.PageID, error) {
	for {
		cur := path[pi].n
		curOld := path[pi].id
		if pi == 0 {
			// cur is the root.
			if len(cur.children) == 1 && nv.height > 1 {
				// Collapse the root: its only child becomes the root.
				w.retire(curOld)
				nv.height--
				return cur.children[0], nil
			}
			id, err := w.writeInternal(cur)
			if err != nil {
				return disk.InvalidPage, err
			}
			w.retire(curOld)
			return id, nil
		}
		if len(cur.children) >= t.minChildren() {
			id, err := w.writeInternal(cur)
			if err != nil {
				return disk.InvalidPage, err
			}
			w.retire(curOld)
			return t.replaceUpward(w, path, pi-1, id)
		}

		parent := path[pi-1].n
		ci := path[pi-1].child

		// Borrow from the left sibling: rotate through the parent.
		if ci > 0 {
			leftID := parent.children[ci-1]
			left, err := t.loadInternal(leftID)
			if err != nil {
				return disk.InvalidPage, err
			}
			if len(left.children) > t.minChildren() {
				lastChild := left.children[len(left.children)-1]
				lastSep := left.seps[len(left.seps)-1]
				left.children = left.children[:len(left.children)-1]
				left.seps = left.seps[:len(left.seps)-1]
				cur.children = append([]disk.PageID{lastChild}, cur.children...)
				cur.seps = append([][]byte{parent.seps[ci-1]}, cur.seps...)
				parent.seps[ci-1] = lastSep
				newLeft, err := w.writeInternal(left)
				if err != nil {
					return disk.InvalidPage, err
				}
				newSelf, err := w.writeInternal(cur)
				if err != nil {
					return disk.InvalidPage, err
				}
				w.retire(leftID)
				w.retire(curOld)
				parent.children[ci-1] = newLeft
				parent.children[ci] = newSelf
				return t.writeParentAndReplaceUp(w, path, pi-1)
			}
		}
		// Borrow from the right sibling.
		if ci < len(parent.children)-1 {
			rightID := parent.children[ci+1]
			right, err := t.loadInternal(rightID)
			if err != nil {
				return disk.InvalidPage, err
			}
			if len(right.children) > t.minChildren() {
				firstChild := right.children[0]
				firstSep := right.seps[0]
				right.children = right.children[1:]
				right.seps = right.seps[1:]
				cur.children = append(cur.children, firstChild)
				cur.seps = append(cur.seps, parent.seps[ci])
				parent.seps[ci] = firstSep
				newSelf, err := w.writeInternal(cur)
				if err != nil {
					return disk.InvalidPage, err
				}
				newRight, err := w.writeInternal(right)
				if err != nil {
					return disk.InvalidPage, err
				}
				w.retire(curOld)
				w.retire(rightID)
				parent.children[ci] = newSelf
				parent.children[ci+1] = newRight
				return t.writeParentAndReplaceUp(w, path, pi-1)
			}
		}
		// Merge with a sibling, pulling the parent separator down.
		var leftID, rightID disk.PageID
		var sepIdx int
		var left, right *internalNode
		if ci > 0 {
			leftID, rightID, sepIdx = parent.children[ci-1], curOld, ci-1
			var err error
			if left, err = t.loadInternal(leftID); err != nil {
				return disk.InvalidPage, err
			}
			right = cur
		} else {
			leftID, rightID, sepIdx = curOld, parent.children[ci+1], ci
			left = cur
			var err error
			if right, err = t.loadInternal(rightID); err != nil {
				return disk.InvalidPage, err
			}
		}
		left.seps = append(left.seps, parent.seps[sepIdx])
		left.seps = append(left.seps, right.seps...)
		left.children = append(left.children, right.children...)
		if len(left.children) > t.fanout {
			return disk.InvalidPage, fmt.Errorf("btree: merge overflowed internal node (%d children)", len(left.children))
		}
		mergedID, err := w.writeInternal(left)
		if err != nil {
			return disk.InvalidPage, err
		}
		w.retire(leftID)
		w.retire(rightID)
		parent.children[sepIdx] = mergedID
		parent.removeAt(sepIdx)
		pi--
	}
}

package btree

import (
	"errors"
	"fmt"
	"testing"

	"probe/internal/disk"
)

// faultStore wraps a Store and fails every operation once a
// countdown of physical operations elapses.
type faultStore struct {
	inner     disk.Store
	remaining int
	tripped   bool
}

var errInjected = errors.New("injected fault")

func (f *faultStore) step() error {
	if f.tripped {
		return errInjected
	}
	f.remaining--
	if f.remaining < 0 {
		f.tripped = true
		return errInjected
	}
	return nil
}

func (f *faultStore) PageSize() int { return f.inner.PageSize() }

func (f *faultStore) Allocate() (disk.PageID, error) {
	if err := f.step(); err != nil {
		return disk.InvalidPage, err
	}
	return f.inner.Allocate()
}

func (f *faultStore) Read(id disk.PageID, buf []byte) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.Read(id, buf)
}

func (f *faultStore) Write(id disk.PageID, buf []byte) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.Write(id, buf)
}

func (f *faultStore) Free(id disk.PageID) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.Free(id)
}

func (f *faultStore) NumPages() int       { return f.inner.NumPages() }
func (f *faultStore) Stats() disk.IOStats { return f.inner.Stats() }
func (f *faultStore) ResetStats()         { f.inner.ResetStats() }

// TestFaultInjectionNoPanics drives tree operations against stores
// that fail at every possible physical-operation offset, asserting
// that errors surface as errors (never panics) and that operations
// before the trip point behave normally.
func TestFaultInjectionNoPanics(t *testing.T) {
	// First measure how many physical ops a full scenario needs.
	scenario := func(tree *Tree) error {
		for i := uint64(0); i < 120; i++ {
			if err := tree.Insert(Key{Hi: i}, nil); err != nil {
				return fmt.Errorf("insert %d: %w", i, err)
			}
		}
		for i := uint64(0); i < 60; i++ {
			if _, err := tree.Delete(Key{Hi: i * 2}); err != nil {
				return fmt.Errorf("delete %d: %w", i, err)
			}
		}
		c := tree.Cursor()
		ok, err := c.First()
		for ok {
			ok, err = c.Next()
		}
		if err != nil {
			return fmt.Errorf("scan: %w", err)
		}
		if _, _, err := tree.Get(Key{Hi: 1}); err != nil {
			return fmt.Errorf("get: %w", err)
		}
		return nil
	}

	// Tiny pool so evictions force frequent physical I/O.
	run := func(budget int) (tripped bool) {
		fs := &faultStore{inner: disk.MustMemStore(256), remaining: budget}
		pool := disk.MustPool(fs, 3, disk.LRU)
		tree, err := New(pool, Config{ValueSize: 0, LeafCapacity: 4})
		if err != nil {
			if !errors.Is(err, errInjected) {
				t.Fatalf("budget %d: unexpected construction error: %v", budget, err)
			}
			return true
		}
		if err := scenario(tree); err != nil {
			if !errors.Is(err, errInjected) {
				t.Fatalf("budget %d: unexpected error: %v", budget, err)
			}
			return true
		}
		return fs.tripped
	}

	// Find the op budget for a clean run.
	clean := 1 << 20
	if run(clean) {
		t.Fatalf("scenario tripped even with a huge budget")
	}
	// Now fail at a spread of offsets. (Testing every offset is
	// quadratic; a stride keeps it fast while covering all phases.)
	for budget := 0; budget < 3000; budget += 7 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("budget %d: panic: %v", budget, r)
				}
			}()
			run(budget)
		}()
	}
}

// TestFaultDuringBulkLoad: Load must propagate injected failures.
func TestFaultDuringBulkLoad(t *testing.T) {
	entries := sortedEntries(500, 0)
	for budget := 0; budget < 400; budget += 11 {
		fs := &faultStore{inner: disk.MustMemStore(256), remaining: budget}
		pool := disk.MustPool(fs, 3, disk.LRU)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("budget %d: panic: %v", budget, r)
				}
			}()
			tree, err := Load(pool, Config{ValueSize: 0, LeafCapacity: 4}, entries, 0)
			if err == nil && fs.tripped {
				t.Fatalf("budget %d: fault swallowed", budget)
			}
			if err == nil {
				if tree.Len() != 500 {
					t.Fatalf("budget %d: clean load lost entries", budget)
				}
			} else if !errors.Is(err, errInjected) {
				t.Fatalf("budget %d: unexpected error: %v", budget, err)
			}
		}()
	}
}

// Package btree implements the paged prefix B+-tree used in the
// paper's experiments (Section 5.3.2: "we implemented a prefix B+tree
// to store points in z order"). Keys are 128-bit (a 64-bit z value
// plus a 64-bit record id making every key unique); separators in
// internal nodes are prefix-compressed to the shortest byte string
// that separates the adjacent subtrees, as in a prefix B+-tree.
//
// The tree lives on disk.Pool pages, so every access flows through
// the buffer pool and is counted — the experiment harness reproduces
// the paper's page-access figures from those counters. The cursor
// provides the sequential access the merge algorithms need (via its
// cached descent path) and the random access (SeekGE) used by the
// skip optimization of Section 3.3.
//
// The tree is multi-versioned: writers are copy-on-write and publish
// immutable versions, readers pin a version and run lock-free. See
// version.go for the MVCC design and docs/mvcc.md for the full
// lifecycle.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// sepCompare compares a (possibly truncated) separator against an
// encoded key or another separator; bytes.Compare's lexicographic
// order is exactly the order required (a proper prefix sorts before
// its extensions).
func sepCompare(a, b []byte) int { return bytes.Compare(a, b) }

// Key is a tree key: Hi carries the z value, Lo a discriminator (the
// record id) that makes keys unique even when z values collide (two
// points on the same pixel). Keys order lexicographically on
// (Hi, Lo).
type Key struct {
	Hi, Lo uint64
}

// Less reports whether k orders strictly before o.
func (k Key) Less(o Key) bool {
	if k.Hi != o.Hi {
		return k.Hi < o.Hi
	}
	return k.Lo < o.Lo
}

// Compare returns -1, 0 or +1.
func (k Key) Compare(o Key) int {
	switch {
	case k.Less(o):
		return -1
	case o.Less(k):
		return 1
	}
	return 0
}

// String implements fmt.Stringer.
func (k Key) String() string { return fmt.Sprintf("key(%016x,%016x)", k.Hi, k.Lo) }

// encodedKeyLen is the length of an encoded key in bytes.
const encodedKeyLen = 16

// encode serializes the key big-endian so that lexicographic byte
// order equals key order.
func (k Key) encode(buf []byte) {
	binary.BigEndian.PutUint64(buf[0:8], k.Hi)
	binary.BigEndian.PutUint64(buf[8:16], k.Lo)
}

func decodeKey(buf []byte) Key {
	return Key{
		Hi: binary.BigEndian.Uint64(buf[0:8]),
		Lo: binary.BigEndian.Uint64(buf[8:16]),
	}
}

// Separators are byte strings compared with bytes.Compare, whose
// lexicographic order (a proper prefix sorts before its extensions)
// is exactly the prefix-B+-tree separator order. The invariant
// between adjacent subtrees is sep > enc(left max) and
// sep <= enc(right min).

// shortestSeparator returns the shortest byte string s such that
// a < s <= b in prefix-aware lexicographic order, for a < b. This is
// the prefix compression of the prefix B+-tree: the separator stored
// is only as long as needed to distinguish the two subtrees.
func shortestSeparator(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	// b[:i+1] is > a (differs at byte i with b[i] > a[i]) and <= b.
	if i >= len(b) {
		panic("btree: separator of non-increasing keys")
	}
	s := make([]byte, i+1)
	copy(s, b[:i+1])
	return s
}

package btree

import (
	"testing"

	"probe/internal/disk"
)

// FuzzVersionGC drives the version chain through a fuzzed schedule of
// inserts, deletes, snapshot opens, releases, and explicit garbage
// collection, asserting the two GC invariants after every step:
//
//   - no pinned version is ever reclaimed: every open snapshot still
//     answers with exactly the entry count it pinned (checked cheaply
//     each step via Len against the recorded count, and by full
//     iteration when the schedule closes the snapshot — a reclaimed
//     or recycled page would corrupt the count, the order, or fail
//     outright);
//   - no unpinned version is retained past the epoch horizon: right
//     after any commit or explicit collection, every retained retire
//     set must be stamped newer than the horizon (older ones were
//     freeable and must be gone).
//
// At the end the schedule releases everything; one collection must
// then drain the chain to zero retained versions and pages.
func FuzzVersionGC(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 0, 0, 3, 1, 4})
	f.Add([]byte{0, 0, 0, 0, 3, 3, 3, 1, 1, 1, 4, 4})
	f.Add([]byte{3, 0, 1, 3, 0, 1, 3, 4, 4, 4, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		pool := disk.MustPool(disk.MustMemStore(256), 64, disk.LRU)
		tr, err := New(pool, Config{ValueSize: 0, LeafCapacity: 4})
		if err != nil {
			t.Fatal(err)
		}
		type pin struct {
			s     *Snapshot
			count int
		}
		var (
			pins []pin
			live []Key
			next uint64
		)
		checkHorizon := func() {
			t.Helper()
			tr.verMu.Lock()
			h := tr.horizonLocked()
			for _, rs := range tr.retired {
				if rs.seq <= h {
					tr.verMu.Unlock()
					t.Fatalf("retire set at seq %d survived past horizon %d", rs.seq, h)
				}
			}
			tr.verMu.Unlock()
		}
		for _, b := range data {
			switch b % 5 {
			case 0: // insert
				k := Key{Hi: uint64(b) * 2654435761, Lo: next}
				next++
				if err := tr.Insert(k, nil); err != nil {
					t.Fatalf("insert: %v", err)
				}
				live = append(live, k)
				checkHorizon()
			case 1: // delete a live key
				if len(live) == 0 {
					continue
				}
				i := int(b) % len(live)
				ok, err := tr.Delete(live[i])
				if err != nil || !ok {
					t.Fatalf("delete: ok=%v err=%v", ok, err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				checkHorizon()
			case 2: // explicit GC
				tr.CollectGarbage()
				checkHorizon()
			case 3: // open a snapshot
				s := tr.Snapshot()
				pins = append(pins, pin{s: s, count: s.Len()})
			case 4: // close the oldest snapshot, verifying its version first
				if len(pins) == 0 {
					continue
				}
				p := pins[0]
				pins = pins[1:]
				n := 0
				c := p.s.Cursor()
				ok, err := c.First()
				for ; ok && err == nil; ok, err = c.Next() {
					n++
				}
				if err != nil {
					t.Fatalf("iterate pinned version %d: %v", p.s.Seq(), err)
				}
				if n != p.count {
					t.Fatalf("pinned version %d decayed: iterated %d entries, pinned %d",
						p.s.Seq(), n, p.count)
				}
				p.s.Release()
			}
			// Cheap per-step check: every still-open snapshot answers
			// with the count it pinned.
			for _, p := range pins {
				if p.s.Len() != p.count {
					t.Fatalf("pinned version %d reports Len %d, pinned %d",
						p.s.Seq(), p.s.Len(), p.count)
				}
			}
		}
		for _, p := range pins {
			p.s.Release()
		}
		tr.CollectGarbage()
		checkHorizon()
		st := tr.MVCCStats()
		if st.PinnedSnapshots != 0 || st.RetainedVersions != 0 || st.RetainedPages != 0 {
			t.Fatalf("version chain not drained after full release: %+v", st)
		}
		if st.FreeFailures != 0 {
			t.Fatalf("%d pages failed to free: %+v", st.FreeFailures, st)
		}
		if tr.Len() != len(live) {
			t.Fatalf("final Len %d, model has %d", tr.Len(), len(live))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

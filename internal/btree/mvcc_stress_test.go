package btree

import (
	"math/rand"
	"sync"
	"testing"

	"probe/internal/disk"
)

// This file stress-tests the MVCC machinery itself: concurrent root
// publication (writers committing new versions), reader pin/unpin
// (snapshot open/close), and version garbage collection, all racing —
// run it with -race. The property layer (package probe's
// TestMVCCIsolationProperty) checks read *contents*; here the focus is
// the version-chain lifecycle: no torn pins, no double frees, full
// drain once quiescent, and an allocation-bounded snapshot open.

// TestMVCCStressRace races writers, snapshot readers, and an explicit
// GC loop against one tree. Writers use disjoint key ranges so the
// final state is checkable; readers verify that each pinned version
// is internally consistent (a full iteration sees exactly Len()
// strictly-ascending keys — impossible if any of its pages were
// reclaimed or overwritten underneath it).
func TestMVCCStressRace(t *testing.T) {
	pool := disk.MustPool(disk.MustMemStore(512), 128, disk.LRU)
	tr, err := New(pool, Config{ValueSize: 0, LeafCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers   = 2
		readers   = 4
		writerOps = 1500
	)
	var wg sync.WaitGroup
	writersDone := make(chan struct{})
	liveCounts := make([]int, writers)

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		writerWG.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(w) + 97))
			var live []Key
			for i := 0; i < writerOps; i++ {
				if len(live) == 0 || rng.Intn(100) < 60 {
					k := Key{Hi: rng.Uint64(), Lo: uint64(w)<<32 | uint64(i)}
					if err := tr.Insert(k, nil); err != nil {
						t.Errorf("writer %d: insert: %v", w, err)
						return
					}
					live = append(live, k)
				} else {
					j := rng.Intn(len(live))
					ok, err := tr.Delete(live[j])
					if err != nil || !ok {
						t.Errorf("writer %d: delete: ok=%v err=%v", w, ok, err)
						return
					}
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			liveCounts[w] = len(live)
		}(w)
	}
	go func() { writerWG.Wait(); close(writersDone) }()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				if i > 0 {
					select {
					case <-writersDone:
						return
					default:
					}
				}
				s := tr.Snapshot()
				want := s.Len()
				c := s.Cursor()
				n := 0
				var last Key
				ok, err := c.First()
				for ; ok && err == nil; ok, err = c.Next() {
					k := c.Key()
					if n > 0 && !last.Less(k) {
						t.Errorf("reader %d: snapshot seq %d out of order at entry %d", r, s.Seq(), n)
						s.Release()
						return
					}
					last = k
					n++
				}
				if err != nil {
					t.Errorf("reader %d: iterate snapshot seq %d: %v", r, s.Seq(), err)
					s.Release()
					return
				}
				if n != want {
					t.Errorf("reader %d: snapshot seq %d iterated %d entries, Len says %d",
						r, s.Seq(), n, want)
					s.Release()
					return
				}
				s.Release()
			}
		}(r)
	}

	// The GC antagonist: explicit collection racing the writers' own
	// commit-time collection and the readers' pin/unpin.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-writersDone:
				return
			default:
			}
			tr.CollectGarbage()
			_ = tr.MVCCStats()
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiescent: everything released, so explicit GC must drain the
	// whole version chain.
	tr.CollectGarbage()
	st := tr.MVCCStats()
	if st.PinnedSnapshots != 0 || st.RetainedVersions != 0 || st.RetainedPages != 0 {
		t.Fatalf("version chain not drained: %+v", st)
	}
	if st.FreeFailures != 0 {
		t.Fatalf("%d pages failed to free: %+v", st.FreeFailures, st)
	}
	want := 0
	for _, n := range liveCounts {
		want += n
	}
	if tr.Len() != want {
		t.Fatalf("final Len %d, writers left %d live keys", tr.Len(), want)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotOpenAllocs bounds the allocation cost of the untraced
// read-only snapshot open: pinning the current version and releasing
// it must stay O(1) allocations (the Snapshot struct itself, plus at
// most one amortized pinnedVers slot), so the per-query snapshot the
// DB layer opens for every untraced read adds no per-request garbage
// beyond the handle.
func TestSnapshotOpenAllocs(t *testing.T) {
	pool := disk.MustPool(disk.MustMemStore(512), 64, disk.LRU)
	tr, err := New(pool, Config{ValueSize: 0, LeafCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tr.Insert(Key{Hi: uint64(i) * 2654435761, Lo: uint64(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the pin table so its backing array reaches steady-state
	// capacity before measuring.
	s := tr.Snapshot()
	s.Release()

	allocs := testing.AllocsPerRun(500, func() {
		s := tr.Snapshot()
		s.Release()
	})
	if allocs > 2 {
		t.Errorf("snapshot open+release costs %.1f allocs/op, want <= 2", allocs)
	}
}

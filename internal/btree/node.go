package btree

import (
	"encoding/binary"
	"fmt"

	"probe/internal/disk"
)

// Page layouts. All integers little-endian unless they are encoded
// keys (which are big-endian so byte order matches key order).
//
// Leaf:     [type u8][count u16][next u32][prev u32]
//           count x [key 16B][value valueSize B]
// Internal: [type u8][count u16]            (count = number of seps)
//           (count+1) x [child u32]
//           count x [sepLen u16][sep bytes]

type nodeType byte

const (
	leafType     nodeType = 1
	internalType nodeType = 2
)

const (
	leafHeaderLen     = 1 + 2 + 4 + 4
	internalHeaderLen = 1 + 2
)

// leafNode is the decoded form of a leaf page.
type leafNode struct {
	next, prev disk.PageID
	keys       []Key
	values     [][]byte
}

// internalNode is the decoded form of an internal page:
// len(children) == len(seps) + 1, and subtree children[i] holds the
// keys k with seps[i-1] <= enc(k) < seps[i] (bounds omitted at the
// ends).
type internalNode struct {
	children []disk.PageID
	seps     [][]byte
}

func decodeNodeType(data []byte) nodeType { return nodeType(data[0]) }

func decodeLeaf(data []byte, valueSize int) (*leafNode, error) {
	if decodeNodeType(data) != leafType {
		return nil, fmt.Errorf("btree: page is not a leaf (type %d)", data[0])
	}
	count := int(binary.LittleEndian.Uint16(data[1:3]))
	n := &leafNode{
		next:   disk.PageID(binary.LittleEndian.Uint32(data[3:7])),
		prev:   disk.PageID(binary.LittleEndian.Uint32(data[7:11])),
		keys:   make([]Key, count),
		values: make([][]byte, count),
	}
	off := leafHeaderLen
	stride := encodedKeyLen + valueSize
	if off+count*stride > len(data) {
		return nil, fmt.Errorf("btree: leaf overflows page (%d entries)", count)
	}
	for i := 0; i < count; i++ {
		n.keys[i] = decodeKey(data[off : off+encodedKeyLen])
		v := make([]byte, valueSize)
		copy(v, data[off+encodedKeyLen:off+stride])
		n.values[i] = v
		off += stride
	}
	return n, nil
}

func (n *leafNode) encode(data []byte, valueSize int) {
	for i := range data {
		data[i] = 0
	}
	data[0] = byte(leafType)
	binary.LittleEndian.PutUint16(data[1:3], uint16(len(n.keys)))
	binary.LittleEndian.PutUint32(data[3:7], uint32(n.next))
	binary.LittleEndian.PutUint32(data[7:11], uint32(n.prev))
	off := leafHeaderLen
	stride := encodedKeyLen + valueSize
	for i, k := range n.keys {
		k.encode(data[off : off+encodedKeyLen])
		copy(data[off+encodedKeyLen:off+stride], n.values[i])
		off += stride
	}
}

func decodeInternal(data []byte) (*internalNode, error) {
	if decodeNodeType(data) != internalType {
		return nil, fmt.Errorf("btree: page is not internal (type %d)", data[0])
	}
	count := int(binary.LittleEndian.Uint16(data[1:3]))
	n := &internalNode{
		children: make([]disk.PageID, count+1),
		seps:     make([][]byte, count),
	}
	off := internalHeaderLen
	for i := 0; i <= count; i++ {
		n.children[i] = disk.PageID(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 4
	}
	for i := 0; i < count; i++ {
		l := int(binary.LittleEndian.Uint16(data[off : off+2]))
		off += 2
		if off+l > len(data) {
			return nil, fmt.Errorf("btree: internal node overflows page")
		}
		s := make([]byte, l)
		copy(s, data[off:off+l])
		n.seps[i] = s
		off += l
	}
	return n, nil
}

func (n *internalNode) encode(data []byte) {
	for i := range data {
		data[i] = 0
	}
	data[0] = byte(internalType)
	binary.LittleEndian.PutUint16(data[1:3], uint16(len(n.seps)))
	off := internalHeaderLen
	for _, c := range n.children {
		binary.LittleEndian.PutUint32(data[off:off+4], uint32(c))
		off += 4
	}
	for _, s := range n.seps {
		binary.LittleEndian.PutUint16(data[off:off+2], uint16(len(s)))
		off += 2
		copy(data[off:off+len(s)], s)
		off += len(s)
	}
}

// childIndex returns the index of the child subtree that may contain
// the encoded key: the last child whose separator is <= enc.
func (n *internalNode) childIndex(enc []byte) int {
	lo, hi := 0, len(n.seps) // find count of seps <= enc
	for lo < hi {
		mid := (lo + hi) / 2
		if sepCompare(n.seps[mid], enc) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insertAt inserts a separator and its right child at position i.
func (n *internalNode) insertAt(i int, sep []byte, rightChild disk.PageID) {
	n.seps = append(n.seps, nil)
	copy(n.seps[i+1:], n.seps[i:])
	n.seps[i] = sep
	n.children = append(n.children, 0)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = rightChild
}

// removeAt removes separator i and child i+1 (used when merging the
// children on either side of separator i).
func (n *internalNode) removeAt(i int) {
	n.seps = append(n.seps[:i], n.seps[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

package btree

import (
	"fmt"
	"sort"
	"sync"

	"probe/internal/disk"
)

// Config tunes a tree.
type Config struct {
	// ValueSize is the fixed size of every value in bytes (>= 0).
	ValueSize int
	// LeafCapacity is the maximum number of entries per leaf. Zero
	// derives the largest capacity that fits the page. The paper's
	// experiments use 20.
	LeafCapacity int
}

// Tree is a prefix B+-tree over disk pages with multi-version
// concurrency control.
//
// Thread safety: the tree is a chain of immutable versions (see
// version.go). Reads — Get, the accessors, Snapshot views, and cursor
// steps — pin a committed version and traverse its pages without any
// tree-wide lock, so they never block behind a writer. Structural
// writes (Insert, Delete) serialize on an internal writer mutex, build
// new pages along the modified path, and publish a new root with one
// atomic commit. A Snapshot observes exactly one committed version for
// its whole lifetime; a plain Tree.Cursor re-pins the current version
// at each step, so an iteration interleaved with writes may observe
// different committed versions at different steps — each step is
// consistent, the sequence is not. Consistent iteration across steps
// uses Snapshot.Cursor.
type Tree struct {
	pool      *disk.Pool
	valueSize int
	leafCap   int
	fanout    int // max children of an internal node

	// writeMu serializes structural writers (Insert, Delete, and
	// version publication from Load).
	writeMu sync.Mutex

	// verMu guards the version chain: cur, pin counts, and the retire
	// queue. It is held only for pointer-sized critical sections —
	// never across page I/O — so readers pinning a version contend
	// only momentarily with a committing writer.
	verMu         sync.Mutex
	cur           *version
	pinnedVers    []*version  // versions with pins > 0
	retired       []retireSet // superseded pages awaiting GC
	retainedPages int
	freedPages    uint64
	freeFailures  uint64

	// commits is the key-set log of published versions, kept for
	// transaction validation (tx.go); prunedSeq is the highest record
	// sequence already pruned. Both guarded by verMu.
	commits   []commitRecord
	prunedSeq uint64
}

// newTreeShell validates the geometry and returns a Tree with no
// published version yet; callers publish one via publishInitial.
func newTreeShell(pool *disk.Pool, valueSize, leafCapacity int) (*Tree, error) {
	ps := pool.Store().PageSize()
	if valueSize < 0 {
		return nil, fmt.Errorf("btree: negative value size")
	}
	stride := encodedKeyLen + valueSize
	maxLeaf := (ps - leafHeaderLen) / stride
	if maxLeaf < 2 {
		return nil, fmt.Errorf("btree: page size %d cannot hold 2 entries of %d bytes", ps, stride)
	}
	leafCap := leafCapacity
	if leafCap == 0 {
		leafCap = maxLeaf
	}
	if leafCap < 2 || leafCap > maxLeaf {
		return nil, fmt.Errorf("btree: leaf capacity %d outside [2,%d]", leafCapacity, maxLeaf)
	}
	// Pessimistic fanout: assume every separator is a full key, so
	// any mix of truncated separators always fits the page.
	// internalHeaderLen + fanout*4 + (fanout-1)*(2+encodedKeyLen) <= ps
	fanout := (ps - internalHeaderLen + 2 + encodedKeyLen) / (4 + 2 + encodedKeyLen)
	if fanout < 4 {
		return nil, fmt.Errorf("btree: page size %d too small for internal nodes", ps)
	}
	return &Tree{pool: pool, valueSize: valueSize, leafCap: leafCap, fanout: fanout}, nil
}

// publishInitial installs v as version 1 of a freshly built tree.
func (t *Tree) publishInitial(v *version) {
	v.seq = 1
	t.cur = v
}

// New creates an empty tree on the pool.
func New(pool *disk.Pool, cfg Config) (*Tree, error) {
	t, err := newTreeShell(pool, cfg.ValueSize, cfg.LeafCapacity)
	if err != nil {
		return nil, err
	}
	f, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	root := &leafNode{}
	root.encode(f.Data, t.valueSize)
	if err := pool.Unpin(f.ID, true); err != nil {
		return nil, err
	}
	t.publishInitial(&version{root: f.ID, height: 1, leaves: 1})
	return t, nil
}

// Meta is the persistent identity of a tree: everything needed to
// reattach to its pages after the process restarts. A durable caller
// serializes it at each checkpoint and hands it back to Attach on
// reopen. Meta describes one committed version; the version sequence
// itself is process-local and restarts at 1 on Attach.
type Meta struct {
	Root         disk.PageID
	Height       int // 1 = root is a leaf
	Count        int
	Leaves       int
	ValueSize    int
	LeafCapacity int
}

// Meta returns the persistent metadata of the current committed
// version.
func (t *Tree) Meta() Meta {
	v := t.currentVersion()
	return Meta{
		Root:         v.root,
		Height:       v.height,
		Count:        v.count,
		Leaves:       v.leaves,
		ValueSize:    t.valueSize,
		LeafCapacity: t.leafCap,
	}
}

// Attach reattaches to an existing tree whose pages live on the
// pool's store, using metadata captured by Meta. It validates the
// geometry against the store's page size but does not touch any
// pages; the first operation does.
func Attach(pool *disk.Pool, m Meta) (*Tree, error) {
	t, err := newTreeShell(pool, m.ValueSize, m.LeafCapacity)
	if err != nil {
		return nil, err
	}
	if m.LeafCapacity == 0 {
		return nil, fmt.Errorf("btree: metadata missing leaf capacity")
	}
	if m.Root == disk.InvalidPage || m.Height < 1 || m.Count < 0 || m.Leaves < 1 {
		return nil, fmt.Errorf("btree: implausible tree metadata %+v", m)
	}
	t.publishInitial(&version{root: m.Root, height: m.Height, count: m.Count, leaves: m.Leaves})
	return t, nil
}

// Len returns the number of entries in the current committed version.
func (t *Tree) Len() int { return t.currentVersion().count }

// Height returns the tree height (1 when the root is a leaf).
func (t *Tree) Height() int { return t.currentVersion().height }

// LeafPages returns the number of leaf pages, the N of the paper's
// O(vN) page-access analysis.
func (t *Tree) LeafPages() int { return t.currentVersion().leaves }

// LeafCapacity returns the configured maximum entries per leaf.
func (t *Tree) LeafCapacity() int { return t.leafCap }

// Pool returns the buffer pool the tree lives on.
func (t *Tree) Pool() *disk.Pool { return t.pool }

// readLeaf fetches and decodes a leaf page, returning the frame still
// pinned; the caller must unpin.
func (t *Tree) readLeaf(id disk.PageID) (*disk.Frame, *leafNode, error) {
	f, err := t.pool.Get(id)
	if err != nil {
		return nil, nil, err
	}
	n, err := decodeLeaf(f.Data, t.valueSize)
	if err != nil {
		t.pool.Unpin(id, false)
		return nil, nil, err
	}
	return f, n, nil
}

func (t *Tree) readInternal(id disk.PageID) (*disk.Frame, *internalNode, error) {
	f, err := t.pool.Get(id)
	if err != nil {
		return nil, nil, err
	}
	n, err := decodeInternal(f.Data)
	if err != nil {
		t.pool.Unpin(id, false)
		return nil, nil, err
	}
	return f, n, nil
}

// searchLeaf returns the index of the first key >= k in the leaf.
func searchLeaf(n *leafNode, k Key) int {
	return sort.Search(len(n.keys), func(i int) bool { return !n.keys[i].Less(k) })
}

// getAt looks the key up in one committed version. The caller must
// hold a pin on v (or be the serialized writer).
func (t *Tree) getAt(v *version, k Key) ([]byte, bool, error) {
	var enc [encodedKeyLen]byte
	k.encode(enc[:])
	id := v.root
	for level := v.height; level > 1; level-- {
		n, err := t.loadInternal(id)
		if err != nil {
			return nil, false, err
		}
		id = n.children[n.childIndex(enc[:])]
	}
	n, err := t.loadLeaf(id)
	if err != nil {
		return nil, false, err
	}
	i := searchLeaf(n, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.values[i], true, nil
	}
	return nil, false, nil
}

// Get returns the value stored under the key in the current committed
// version.
func (t *Tree) Get(k Key) ([]byte, bool, error) {
	v := t.pin()
	defer t.unpin(v)
	return t.getAt(v, k)
}

// ErrDuplicateKey is returned by Insert when the exact key exists.
var ErrDuplicateKey = fmt.Errorf("btree: duplicate key")

// cow accumulates the page bookkeeping of one copy-on-write
// transformation: pages freshly written (to drop again if the write
// aborts) and old pages superseded by the new version (to retire at
// commit). Page writes go one at a time — allocate, encode, unpin — so
// a write never holds more than one pin, the same bound as reads.
type cow struct {
	t       *Tree
	fresh   []disk.PageID
	retired []disk.PageID
}

// writeLeaf allocates a new page for the decoded leaf and writes it.
func (w *cow) writeLeaf(n *leafNode) (disk.PageID, error) {
	f, err := w.t.pool.NewPage()
	if err != nil {
		return disk.InvalidPage, err
	}
	// Sibling links are a pre-MVCC layout field: copy-on-write makes
	// them unmaintainable (a neighbor's link would dangle at the old
	// page version), so new pages write them as invalid and cursors
	// never follow them. The on-page layout is unchanged.
	n.next, n.prev = disk.InvalidPage, disk.InvalidPage
	n.encode(f.Data, w.t.valueSize)
	w.fresh = append(w.fresh, f.ID)
	return f.ID, w.t.pool.Unpin(f.ID, true)
}

// writeInternal allocates a new page for the decoded internal node.
func (w *cow) writeInternal(n *internalNode) (disk.PageID, error) {
	f, err := w.t.pool.NewPage()
	if err != nil {
		return disk.InvalidPage, err
	}
	n.encode(f.Data)
	w.fresh = append(w.fresh, f.ID)
	return f.ID, w.t.pool.Unpin(f.ID, true)
}

// retire marks an old page as superseded by this transformation.
func (w *cow) retire(id disk.PageID) { w.retired = append(w.retired, id) }

// abort drops the pages written so far; the published tree never
// referenced them. Drop errors are ignored — the store is likely the
// reason the write failed in the first place, and an unfreed page is
// only a leak.
func (w *cow) abort() {
	for _, id := range w.fresh {
		_ = w.t.pool.Drop(id)
	}
}

// cowLevel is one internal node on the writer's descent path, decoded.
type cowLevel struct {
	n     *internalNode
	id    disk.PageID
	child int
}

// descendPath walks from v's root to the leaf responsible for enc,
// returning the decoded internal path and the leaf's page id.
func (t *Tree) descendPath(v *version, enc []byte) ([]cowLevel, disk.PageID, error) {
	var path []cowLevel
	id := v.root
	for level := v.height; level > 1; level-- {
		n, err := t.loadInternal(id)
		if err != nil {
			return nil, disk.InvalidPage, err
		}
		i := n.childIndex(enc)
		path = append(path, cowLevel{n: n, id: id, child: i})
		id = n.children[i]
	}
	return path, id, nil
}

// replaceUpward rewrites the internal path from level pi up to the
// root, pointing each level at the new id of the child below it, and
// returns the new root id. The path nodes must already carry any
// separator edits; no rebalancing happens here.
func (t *Tree) replaceUpward(w *cow, path []cowLevel, pi int, childID disk.PageID) (disk.PageID, error) {
	for li := pi; li >= 0; li-- {
		path[li].n.children[path[li].child] = childID
		id, err := w.writeInternal(path[li].n)
		if err != nil {
			return disk.InvalidPage, err
		}
		w.retire(path[li].id)
		childID = id
	}
	return childID, nil
}

// Insert adds an entry. The value must be exactly ValueSize bytes.
// Inserting an existing key returns ErrDuplicateKey. The insert is
// copy-on-write: it builds new pages along the root-to-leaf path and
// atomically publishes a new version, so concurrent snapshot readers
// are undisturbed. A failed insert publishes nothing.
func (t *Tree) Insert(k Key, value []byte) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	if len(value) != t.valueSize {
		return fmt.Errorf("btree: value has %d bytes, want %d", len(value), t.valueSize)
	}
	w := &cow{t: t}
	nv, err := t.insertCOW(w, t.currentVersion(), k, value)
	if err != nil {
		w.abort()
		return err
	}
	t.commit(nv, w.retired, []Key{k})
	return nil
}

func (t *Tree) insertCOW(w *cow, v *version, k Key, value []byte) (*version, error) {
	var enc [encodedKeyLen]byte
	k.encode(enc[:])
	path, leafID, err := t.descendPath(v, enc[:])
	if err != nil {
		return nil, err
	}
	n, err := t.loadLeaf(leafID)
	if err != nil {
		return nil, err
	}
	i := searchLeaf(n, k)
	if i < len(n.keys) && n.keys[i] == k {
		return nil, ErrDuplicateKey
	}
	val := make([]byte, t.valueSize)
	copy(val, value)
	n.keys = append(n.keys, Key{})
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = k
	n.values = append(n.values, nil)
	copy(n.values[i+1:], n.values[i:])
	n.values[i] = val

	nv := &version{seq: v.seq + 1, height: v.height, count: v.count + 1, leaves: v.leaves}

	// Write the leaf (splitting if overfull), then propagate the
	// replacement — and possibly a new separator — up the path.
	var newChild, extra disk.PageID
	var sep []byte
	if len(n.keys) <= t.leafCap {
		newChild, err = w.writeLeaf(n)
		if err != nil {
			return nil, err
		}
	} else {
		mid := len(n.keys) / 2
		right := &leafNode{keys: n.keys[mid:], values: n.values[mid:]}
		n.keys = n.keys[:mid]
		n.values = n.values[:mid]
		var leftMaxEnc, rightMinEnc [encodedKeyLen]byte
		n.keys[len(n.keys)-1].encode(leftMaxEnc[:])
		right.keys[0].encode(rightMinEnc[:])
		sep = shortestSeparator(leftMaxEnc[:], rightMinEnc[:])
		if newChild, err = w.writeLeaf(n); err != nil {
			return nil, err
		}
		if extra, err = w.writeLeaf(right); err != nil {
			return nil, err
		}
		nv.leaves++
	}
	w.retire(leafID)

	for li := len(path) - 1; li >= 0; li-- {
		pn := path[li].n
		pn.children[path[li].child] = newChild
		if extra != disk.InvalidPage {
			pn.insertAt(path[li].child, sep, extra)
			extra, sep = disk.InvalidPage, nil
		}
		if len(pn.children) > t.fanout {
			// Split the internal node; the middle separator is
			// promoted.
			mid := len(pn.seps) / 2
			promoted := pn.seps[mid]
			right := &internalNode{
				children: append([]disk.PageID(nil), pn.children[mid+1:]...),
				seps:     append([][]byte(nil), pn.seps[mid+1:]...),
			}
			pn.children = pn.children[:mid+1]
			pn.seps = pn.seps[:mid]
			if newChild, err = w.writeInternal(pn); err != nil {
				return nil, err
			}
			if extra, err = w.writeInternal(right); err != nil {
				return nil, err
			}
			sep = promoted
		} else {
			if newChild, err = w.writeInternal(pn); err != nil {
				return nil, err
			}
		}
		w.retire(path[li].id)
	}

	root := newChild
	if extra != disk.InvalidPage {
		// The root itself split: grow a new root.
		newRoot := &internalNode{
			children: []disk.PageID{newChild, extra},
			seps:     [][]byte{sep},
		}
		if root, err = w.writeInternal(newRoot); err != nil {
			return nil, err
		}
		nv.height++
	}
	nv.root = root
	return nv, nil
}

package btree

import (
	"fmt"
	"sort"
	"sync"

	"probe/internal/disk"
)

// Config tunes a tree.
type Config struct {
	// ValueSize is the fixed size of every value in bytes (>= 0).
	ValueSize int
	// LeafCapacity is the maximum number of entries per leaf. Zero
	// derives the largest capacity that fits the page. The paper's
	// experiments use 20.
	LeafCapacity int
}

// Tree is a prefix B+-tree over disk pages.
//
// Thread safety: reads (Get, the accessors, and cursor steps) may run
// concurrently with each other; structural writes (Insert, Delete)
// take the tree latch exclusively, so a write never races a read.
// Note the guarantee is freedom from data races, not snapshot
// isolation: a cursor interleaved with writes observes the tree
// page-at-a-time and may see a mix of old and new state, so
// consistent iteration still requires no concurrent writers.
type Tree struct {
	pool      *disk.Pool
	valueSize int
	leafCap   int
	fanout    int // max children of an internal node

	mu     sync.RWMutex
	root   disk.PageID
	height int // 1 = root is a leaf
	count  int // number of entries
	leaves int // number of leaf pages
}

// New creates an empty tree on the pool.
func New(pool *disk.Pool, cfg Config) (*Tree, error) {
	ps := pool.Store().PageSize()
	if cfg.ValueSize < 0 {
		return nil, fmt.Errorf("btree: negative value size")
	}
	stride := encodedKeyLen + cfg.ValueSize
	maxLeaf := (ps - leafHeaderLen) / stride
	if maxLeaf < 2 {
		return nil, fmt.Errorf("btree: page size %d cannot hold 2 entries of %d bytes", ps, stride)
	}
	leafCap := cfg.LeafCapacity
	if leafCap == 0 {
		leafCap = maxLeaf
	}
	if leafCap < 2 || leafCap > maxLeaf {
		return nil, fmt.Errorf("btree: leaf capacity %d outside [2,%d]", cfg.LeafCapacity, maxLeaf)
	}
	// Pessimistic fanout: assume every separator is a full key, so
	// any mix of truncated separators always fits the page.
	// internalHeaderLen + fanout*4 + (fanout-1)*(2+encodedKeyLen) <= ps
	fanout := (ps - internalHeaderLen + 2 + encodedKeyLen) / (4 + 2 + encodedKeyLen)
	if fanout < 4 {
		return nil, fmt.Errorf("btree: page size %d too small for internal nodes", ps)
	}
	t := &Tree{pool: pool, valueSize: cfg.ValueSize, leafCap: leafCap, fanout: fanout}
	f, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	root := &leafNode{}
	root.encode(f.Data, t.valueSize)
	t.root = f.ID
	t.height = 1
	t.leaves = 1
	if err := pool.Unpin(f.ID, true); err != nil {
		return nil, err
	}
	return t, nil
}

// Meta is the persistent identity of a tree: everything needed to
// reattach to its pages after the process restarts. A durable caller
// serializes it at each checkpoint and hands it back to Load on
// reopen.
type Meta struct {
	Root         disk.PageID
	Height       int // 1 = root is a leaf
	Count        int
	Leaves       int
	ValueSize    int
	LeafCapacity int
}

// Meta returns the tree's current persistent metadata.
func (t *Tree) Meta() Meta {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return Meta{
		Root:         t.root,
		Height:       t.height,
		Count:        t.count,
		Leaves:       t.leaves,
		ValueSize:    t.valueSize,
		LeafCapacity: t.leafCap,
	}
}

// Attach reattaches to an existing tree whose pages live on the
// pool's store, using metadata captured by Meta. It validates the
// geometry against the store's page size but does not touch any
// pages; the first operation does.
func Attach(pool *disk.Pool, m Meta) (*Tree, error) {
	ps := pool.Store().PageSize()
	if m.ValueSize < 0 {
		return nil, fmt.Errorf("btree: negative value size")
	}
	stride := encodedKeyLen + m.ValueSize
	maxLeaf := (ps - leafHeaderLen) / stride
	if m.LeafCapacity < 2 || m.LeafCapacity > maxLeaf {
		return nil, fmt.Errorf("btree: leaf capacity %d outside [2,%d] for page size %d", m.LeafCapacity, maxLeaf, ps)
	}
	fanout := (ps - internalHeaderLen + 2 + encodedKeyLen) / (4 + 2 + encodedKeyLen)
	if fanout < 4 {
		return nil, fmt.Errorf("btree: page size %d too small for internal nodes", ps)
	}
	if m.Root == disk.InvalidPage || m.Height < 1 || m.Count < 0 || m.Leaves < 1 {
		return nil, fmt.Errorf("btree: implausible tree metadata %+v", m)
	}
	return &Tree{
		pool:      pool,
		valueSize: m.ValueSize,
		leafCap:   m.LeafCapacity,
		fanout:    fanout,
		root:      m.Root,
		height:    m.Height,
		count:     m.Count,
		leaves:    m.Leaves,
	}, nil
}

// Len returns the number of entries.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Height returns the tree height (1 when the root is a leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// LeafPages returns the number of leaf pages, the N of the paper's
// O(vN) page-access analysis.
func (t *Tree) LeafPages() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.leaves
}

// LeafCapacity returns the configured maximum entries per leaf.
func (t *Tree) LeafCapacity() int { return t.leafCap }

// Pool returns the buffer pool the tree lives on.
func (t *Tree) Pool() *disk.Pool { return t.pool }

// readLeaf fetches and decodes a leaf page, returning the frame still
// pinned; the caller must unpin.
func (t *Tree) readLeaf(id disk.PageID) (*disk.Frame, *leafNode, error) {
	f, err := t.pool.Get(id)
	if err != nil {
		return nil, nil, err
	}
	n, err := decodeLeaf(f.Data, t.valueSize)
	if err != nil {
		t.pool.Unpin(id, false)
		return nil, nil, err
	}
	return f, n, nil
}

func (t *Tree) readInternal(id disk.PageID) (*disk.Frame, *internalNode, error) {
	f, err := t.pool.Get(id)
	if err != nil {
		return nil, nil, err
	}
	n, err := decodeInternal(f.Data)
	if err != nil {
		t.pool.Unpin(id, false)
		return nil, nil, err
	}
	return f, n, nil
}

// writeNode encodes a node back into its pinned frame and unpins it
// dirty.
func (t *Tree) writeLeaf(f *disk.Frame, n *leafNode) error {
	n.encode(f.Data, t.valueSize)
	return t.pool.Unpin(f.ID, true)
}

func (t *Tree) writeInternal(f *disk.Frame, n *internalNode) error {
	n.encode(f.Data)
	return t.pool.Unpin(f.ID, true)
}

// findLeaf descends from the root to the leaf that should hold the
// key, recording the path (page ids and child indexes) for structure
// modifications.
type pathEntry struct {
	id    disk.PageID
	child int // index of the child we descended into
}

func (t *Tree) findLeaf(enc []byte) (disk.PageID, []pathEntry, error) {
	id := t.root
	var path []pathEntry
	for level := t.height; level > 1; level-- {
		f, n, err := t.readInternal(id)
		if err != nil {
			return 0, nil, err
		}
		i := n.childIndex(enc)
		child := n.children[i]
		if err := t.pool.Unpin(f.ID, false); err != nil {
			return 0, nil, err
		}
		path = append(path, pathEntry{id: id, child: i})
		id = child
	}
	return id, path, nil
}

// searchLeaf returns the index of the first key >= k in the leaf.
func searchLeaf(n *leafNode, k Key) int {
	return sort.Search(len(n.keys), func(i int) bool { return !n.keys[i].Less(k) })
}

// Get returns the value stored under the key.
func (t *Tree) Get(k Key) ([]byte, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var enc [encodedKeyLen]byte
	k.encode(enc[:])
	leafID, _, err := t.findLeaf(enc[:])
	if err != nil {
		return nil, false, err
	}
	f, n, err := t.readLeaf(leafID)
	if err != nil {
		return nil, false, err
	}
	defer t.pool.Unpin(f.ID, false)
	i := searchLeaf(n, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.values[i], true, nil
	}
	return nil, false, nil
}

// ErrDuplicateKey is returned by Insert when the exact key exists.
var ErrDuplicateKey = fmt.Errorf("btree: duplicate key")

// Insert adds an entry. The value must be exactly ValueSize bytes.
// Inserting an existing key returns ErrDuplicateKey.
func (t *Tree) Insert(k Key, value []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(value) != t.valueSize {
		return fmt.Errorf("btree: value has %d bytes, want %d", len(value), t.valueSize)
	}
	var enc [encodedKeyLen]byte
	k.encode(enc[:])
	leafID, path, err := t.findLeaf(enc[:])
	if err != nil {
		return err
	}
	f, n, err := t.readLeaf(leafID)
	if err != nil {
		return err
	}
	i := searchLeaf(n, k)
	if i < len(n.keys) && n.keys[i] == k {
		t.pool.Unpin(f.ID, false)
		return ErrDuplicateKey
	}
	v := make([]byte, t.valueSize)
	copy(v, value)
	n.keys = append(n.keys, Key{})
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = k
	n.values = append(n.values, nil)
	copy(n.values[i+1:], n.values[i:])
	n.values[i] = v
	t.count++

	if len(n.keys) <= t.leafCap {
		return t.writeLeaf(f, n)
	}
	return t.splitLeaf(f, n, path)
}

// splitLeaf splits an overfull leaf and propagates the separator up.
func (t *Tree) splitLeaf(f *disk.Frame, n *leafNode, path []pathEntry) error {
	mid := len(n.keys) / 2
	rightFrame, err := t.pool.NewPage()
	if err != nil {
		t.pool.Unpin(f.ID, true)
		return err
	}
	right := &leafNode{
		next:   n.next,
		prev:   f.ID,
		keys:   append([]Key(nil), n.keys[mid:]...),
		values: append([][]byte(nil), n.values[mid:]...),
	}
	oldNext := n.next
	n.keys = n.keys[:mid]
	n.values = n.values[:mid]
	n.next = rightFrame.ID
	t.leaves++

	var leftMaxEnc, rightMinEnc [encodedKeyLen]byte
	n.keys[len(n.keys)-1].encode(leftMaxEnc[:])
	right.keys[0].encode(rightMinEnc[:])
	sep := shortestSeparator(leftMaxEnc[:], rightMinEnc[:])

	if err := t.writeLeaf(f, n); err != nil {
		return err
	}
	rightID := rightFrame.ID
	if err := t.writeLeaf(rightFrame, right); err != nil {
		return err
	}
	// Fix the right neighbor's prev link.
	if oldNext != disk.InvalidPage {
		nf, nn, err := t.readLeaf(oldNext)
		if err != nil {
			return err
		}
		nn.prev = rightID
		if err := t.writeLeaf(nf, nn); err != nil {
			return err
		}
	}
	return t.insertIntoParent(path, sep, rightID)
}

// insertIntoParent inserts (sep, rightChild) into the lowest node of
// the path, splitting internal nodes upward as needed.
func (t *Tree) insertIntoParent(path []pathEntry, sep []byte, rightChild disk.PageID) error {
	for level := len(path) - 1; level >= 0; level-- {
		pe := path[level]
		f, n, err := t.readInternal(pe.id)
		if err != nil {
			return err
		}
		n.insertAt(pe.child, sep, rightChild)
		if len(n.children) <= t.fanout {
			return t.writeInternal(f, n)
		}
		// Split the internal node; the middle separator is promoted.
		mid := len(n.seps) / 2
		promoted := n.seps[mid]
		rightFrame, err := t.pool.NewPage()
		if err != nil {
			t.pool.Unpin(f.ID, true)
			return err
		}
		right := &internalNode{
			children: append([]disk.PageID(nil), n.children[mid+1:]...),
			seps:     append([][]byte(nil), n.seps[mid+1:]...),
		}
		n.children = n.children[:mid+1]
		n.seps = n.seps[:mid]
		if err := t.writeInternal(f, n); err != nil {
			return err
		}
		rightID := rightFrame.ID
		if err := t.writeInternal(rightFrame, right); err != nil {
			return err
		}
		sep, rightChild = promoted, rightID
	}
	// The root itself split: grow a new root.
	rootFrame, err := t.pool.NewPage()
	if err != nil {
		return err
	}
	newRoot := &internalNode{
		children: []disk.PageID{t.root, rightChild},
		seps:     [][]byte{sep},
	}
	t.root = rootFrame.ID
	t.height++
	return t.writeInternal(rootFrame, newRoot)
}

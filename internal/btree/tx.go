package btree

import (
	"errors"
	"fmt"
)

// Transaction commit machinery: a multi-statement transaction reads
// from a pinned snapshot (version.go) and buffers its writes; at
// commit the whole write-set is validated and applied here as ONE
// copy-on-write transformation published with a single root swap.
// Because the checkpoint protocol captures whatever root is committed
// at checkpoint time, a batch published this way is atomic across
// crashes for free: recovery sees the pre-batch or the post-batch
// tree, never a mixture.
//
// Validation is first-committer-wins over a commit log: every
// publishing write records the set of keys it changed, stamped with
// the sequence number of the version it published. A transaction that
// pinned its snapshot at sequence b conflicts iff some record with
// seq > b touches a key in its write-set. Records are pruned together
// with retired pages, at seq <= horizon: a live transaction keeps its
// snapshot pinned, which holds the horizon at or below its base
// sequence, so every record it could need survives until it commits
// or rolls back.

// Mutation is one buffered write of a transaction's write-set.
type Mutation struct {
	Key    Key
	Value  []byte // ignored when Delete is set
	Delete bool
}

// ErrConflict is returned by CommitBatch when first-committer-wins
// validation fails: a version published after the transaction's base
// sequence modified a key in its write-set.
var ErrConflict = errors.New("btree: transaction conflict")

// commitRecord is the key-set of one published version, kept for
// optimistic validation until the horizon passes its sequence.
type commitRecord struct {
	seq  uint64
	keys []Key
}

// recordCommitLocked appends the key-set of the version just
// published. Caller holds verMu. Publications that change no keys
// (bulk attach, initial publish) record nothing.
func (t *Tree) recordCommitLocked(seq uint64, keys []Key) {
	if len(keys) == 0 {
		return
	}
	t.commits = append(t.commits, commitRecord{seq: seq, keys: keys})
}

// pruneCommitsLocked drops commit records no live snapshot can need
// (seq <= horizon h) and remembers the highest pruned sequence so a
// validation reaching below it fails conservatively instead of
// silently missing records. Caller holds verMu.
func (t *Tree) pruneCommitsLocked(h uint64) {
	keep := t.commits[:0]
	for _, rec := range t.commits {
		if rec.seq <= h {
			if rec.seq > t.prunedSeq {
				t.prunedSeq = rec.seq
			}
		} else {
			keep = append(keep, rec)
		}
	}
	for i := len(keep); i < len(t.commits); i++ {
		t.commits[i] = commitRecord{}
	}
	t.commits = keep
}

// validateBatch runs first-committer-wins validation for a write-set
// based at baseSeq. It returns ErrConflict when any commit published
// after baseSeq touched one of the keys, or when the commit log no
// longer reaches back to baseSeq (conservative: the missing records
// might have conflicted). Caller holds writeMu.
func (t *Tree) validateBatch(baseSeq uint64, keys map[Key]struct{}) error {
	t.verMu.Lock()
	defer t.verMu.Unlock()
	if baseSeq < t.prunedSeq {
		return ErrConflict
	}
	for _, rec := range t.commits {
		if rec.seq <= baseSeq {
			continue
		}
		for _, k := range rec.keys {
			if _, hit := keys[k]; hit {
				return ErrConflict
			}
		}
	}
	return nil
}

// CommitBatch validates a transaction's write-set against every
// version published after baseSeq (first-committer-wins) and, if it
// passes, applies all mutations in order as one copy-on-write
// transformation, publishing exactly one new version. On ErrConflict
// or any I/O error nothing is published and the tree is unchanged.
//
// Within the batch, deleting an absent key is a no-op and inserting a
// duplicate key fails the whole batch with ErrDuplicateKey (callers
// check duplicates against their snapshot at buffer time, so this
// only fires on misuse). An empty or all-no-op batch publishes
// nothing and succeeds.
func (t *Tree) CommitBatch(baseSeq uint64, muts []Mutation) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()

	keys := make(map[Key]struct{}, len(muts))
	for _, m := range muts {
		if !m.Delete && len(m.Value) != t.valueSize {
			return fmt.Errorf("btree: value has %d bytes, want %d", len(m.Value), t.valueSize)
		}
		keys[m.Key] = struct{}{}
	}
	if err := t.validateBatch(baseSeq, keys); err != nil {
		return err
	}

	base := t.currentVersion()
	w := &cow{t: t}
	v := base
	changed := false
	applied := make([]Key, 0, len(muts))
	for _, m := range muts {
		if m.Delete {
			nv, ok, err := t.deleteCOW(w, v, m.Key)
			if err != nil {
				w.abort()
				return err
			}
			if !ok {
				continue
			}
			v = nv
		} else {
			nv, err := t.insertCOW(w, v, m.Key, m.Value)
			if err != nil {
				w.abort()
				return err
			}
			v = nv
		}
		changed = true
		applied = append(applied, m.Key)
	}
	if !changed {
		return nil
	}
	// Intermediate chained versions bumped seq once per mutation;
	// collapse to one publication so each commit still advances the
	// sequence by exactly one.
	v.seq = base.seq + 1
	t.commit(v, w.retired, applied)
	return nil
}

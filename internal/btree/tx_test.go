package btree

import (
	"errors"
	"math/rand"
	"testing"
)

// TestCommitBatchAtomicPublish: a batch of mixed inserts and deletes
// publishes exactly one new version whose content equals applying the
// mutations in order.
func TestCommitBatchAtomicPublish(t *testing.T) {
	tree := newTestTree(t, 256, 4, 8, 64)
	for i := uint64(0); i < 20; i++ {
		if err := tree.Insert(Key{Hi: i, Lo: i}, val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := tree.MVCCStats().Seq

	muts := []Mutation{
		{Key: Key{Hi: 100, Lo: 1}, Value: val8(100)},
		{Key: Key{Hi: 5, Lo: 5}, Delete: true},
		{Key: Key{Hi: 101, Lo: 2}, Value: val8(101)},
		{Key: Key{Hi: 6, Lo: 6}, Delete: true},
		{Key: Key{Hi: 999, Lo: 9}, Delete: true}, // absent: no-op
	}
	if err := tree.CommitBatch(before, muts); err != nil {
		t.Fatal(err)
	}
	if got := tree.MVCCStats().Seq; got != before+1 {
		t.Fatalf("batch advanced seq %d -> %d, want exactly one publish", before, got)
	}
	if tree.Len() != 20 {
		t.Fatalf("Len = %d, want 20 (+2 inserts -2 deletes)", tree.Len())
	}
	for _, k := range []Key{{Hi: 100, Lo: 1}, {Hi: 101, Lo: 2}} {
		if _, ok, err := tree.Get(k); err != nil || !ok {
			t.Fatalf("Get(%v) = %v, %v; want present", k, ok, err)
		}
	}
	for _, k := range []Key{{Hi: 5, Lo: 5}, {Hi: 6, Lo: 6}} {
		if _, ok, err := tree.Get(k); err != nil || ok {
			t.Fatalf("Get(%v) = %v, %v; want absent", k, ok, err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCommitBatchSnapshotUndisturbed: a snapshot pinned before a batch
// never observes any of its effects.
func TestCommitBatchSnapshotUndisturbed(t *testing.T) {
	tree := newTestTree(t, 256, 4, 8, 64)
	for i := uint64(0); i < 10; i++ {
		if err := tree.Insert(Key{Hi: i, Lo: i}, val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := tree.Snapshot()
	defer snap.Release()

	if err := tree.CommitBatch(snap.Seq(), []Mutation{
		{Key: Key{Hi: 50, Lo: 0}, Value: val8(50)},
		{Key: Key{Hi: 3, Lo: 3}, Delete: true},
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := snap.Get(Key{Hi: 50, Lo: 0}); ok {
		t.Fatal("snapshot sees a key inserted after it was pinned")
	}
	if _, ok, _ := snap.Get(Key{Hi: 3, Lo: 3}); !ok {
		t.Fatal("snapshot lost a key deleted after it was pinned")
	}
	if snap.Len() != 10 {
		t.Fatalf("snapshot Len changed to %d", snap.Len())
	}
}

// TestCommitBatchConflict: first-committer-wins — after another write
// touches a key in the write-set, the batch fails with ErrConflict and
// publishes nothing; disjoint concurrent writes do not conflict.
func TestCommitBatchConflict(t *testing.T) {
	tree := newTestTree(t, 256, 4, 8, 64)
	for i := uint64(0); i < 10; i++ {
		if err := tree.Insert(Key{Hi: i, Lo: i}, val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := tree.Snapshot()
	defer snap.Release()
	base := snap.Seq()

	// A later committer deletes key 4.
	if ok, err := tree.Delete(Key{Hi: 4, Lo: 4}); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	seqAfter := tree.MVCCStats().Seq

	// Overlapping write-set: must conflict, nothing published.
	err := tree.CommitBatch(base, []Mutation{
		{Key: Key{Hi: 4, Lo: 4}, Value: val8(4)},
		{Key: Key{Hi: 70, Lo: 0}, Value: val8(70)},
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("overlapping batch: got %v, want ErrConflict", err)
	}
	if got := tree.MVCCStats().Seq; got != seqAfter {
		t.Fatalf("conflicting batch published a version (%d -> %d)", seqAfter, got)
	}
	if _, ok, _ := tree.Get(Key{Hi: 70, Lo: 0}); ok {
		t.Fatal("conflicting batch leaked a partial write")
	}

	// Disjoint write-set from the same base: wins.
	if err := tree.CommitBatch(base, []Mutation{
		{Key: Key{Hi: 71, Lo: 0}, Value: val8(71)},
	}); err != nil {
		t.Fatalf("disjoint batch: %v", err)
	}
}

// TestCommitBatchValidationBelowPrunedFloor: once the commit log has
// been pruned past a base sequence, validation fails conservatively.
func TestCommitBatchValidationBelowPrunedFloor(t *testing.T) {
	tree := newTestTree(t, 256, 4, 8, 64)
	base := tree.MVCCStats().Seq
	// With nothing pinned, each commit prunes the log up to itself.
	for i := uint64(0); i < 5; i++ {
		if err := tree.Insert(Key{Hi: i, Lo: i}, val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	tree.CollectGarbage()
	if n := tree.MVCCStats().CommitRecords; n != 0 {
		t.Fatalf("commit log not pruned with nothing pinned: %d records", n)
	}
	err := tree.CommitBatch(base, []Mutation{{Key: Key{Hi: 90, Lo: 0}, Value: val8(90)}})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("below-floor base: got %v, want conservative ErrConflict", err)
	}
}

// TestCommitBatchPinnedKeepsLog: a pinned snapshot holds the horizon,
// so the records a transaction needs survive arbitrary interleaved
// commits, and a disjoint batch from the old base still succeeds.
func TestCommitBatchPinnedKeepsLog(t *testing.T) {
	tree := newTestTree(t, 256, 4, 8, 64)
	if err := tree.Insert(Key{Hi: 1, Lo: 1}, val8(1)); err != nil {
		t.Fatal(err)
	}
	snap := tree.Snapshot()
	defer snap.Release()
	base := snap.Seq()
	for i := uint64(10); i < 40; i++ {
		if err := tree.Insert(Key{Hi: i, Lo: i}, val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := tree.MVCCStats().CommitRecords; n != 30 {
		t.Fatalf("commit log pruned under a pinned snapshot: %d records, want 30", n)
	}
	if err := tree.CommitBatch(base, []Mutation{
		{Key: Key{Hi: 90, Lo: 0}, Value: val8(90)},
	}); err != nil {
		t.Fatalf("disjoint batch under long pin: %v", err)
	}
	if err := tree.CommitBatch(base, []Mutation{
		{Key: Key{Hi: 20, Lo: 20}, Value: val8(0)},
	}); !errors.Is(err, ErrConflict) {
		t.Fatalf("overlapping batch under long pin: got %v, want ErrConflict", err)
	}
}

// TestCommitBatchEmpty: empty and all-no-op batches publish nothing.
func TestCommitBatchEmpty(t *testing.T) {
	tree := newTestTree(t, 256, 4, 8, 64)
	base := tree.MVCCStats().Seq
	if err := tree.CommitBatch(base, nil); err != nil {
		t.Fatal(err)
	}
	if err := tree.CommitBatch(base, []Mutation{{Key: Key{Hi: 7, Lo: 7}, Delete: true}}); err != nil {
		t.Fatal(err)
	}
	if got := tree.MVCCStats().Seq; got != base {
		t.Fatalf("no-op batch advanced seq %d -> %d", base, got)
	}
}

// TestCommitBatchRandomizedVsSerial: seeded random batches applied via
// CommitBatch match a model applying the same mutations serially.
func TestCommitBatchRandomizedVsSerial(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tree := newTestTree(t, 256, 4+rng.Intn(6), 8, 128)
		model := map[Key]uint64{}
		for batch := 0; batch < 20; batch++ {
			base := tree.MVCCStats().Seq
			n := 1 + rng.Intn(8)
			muts := make([]Mutation, 0, n)
			staged := make(map[Key]bool) // key -> live after batch
			for i := 0; i < n; i++ {
				k := Key{Hi: uint64(rng.Intn(40)), Lo: uint64(rng.Intn(4))}
				live, stagedHere := staged[k]
				if !stagedHere {
					_, live = model[k]
				}
				if live {
					muts = append(muts, Mutation{Key: k, Delete: true})
					staged[k] = false
				} else {
					muts = append(muts, Mutation{Key: k, Value: val8(k.Hi)})
					staged[k] = true
				}
			}
			if err := tree.CommitBatch(base, muts); err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, batch, err)
			}
			for k, live := range staged {
				if live {
					model[k] = k.Hi
				} else {
					delete(model, k)
				}
			}
		}
		if tree.Len() != len(model) {
			t.Fatalf("seed %d: Len %d, model %d", seed, tree.Len(), len(model))
		}
		for k := range model {
			if _, ok, err := tree.Get(k); err != nil || !ok {
				t.Fatalf("seed %d: missing %v (%v)", seed, k, err)
			}
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

package btree

import (
	"fmt"

	"probe/internal/disk"
)

// MVCC machinery: the tree is a chain of immutable versions. Every
// committed state of the tree is a version — a root page id plus the
// counters that describe the tree hanging off it. Pages reachable from
// a committed root are never mutated in place; writers copy the pages
// along the modified path (copy-on-write) and publish a new version
// with one pointer swap under verMu. Readers pin a version and
// traverse its pages without any tree-wide lock: the pages of a pinned
// version cannot be reclaimed, so a reader races nothing.
//
// Reclamation is epoch-based. A commit with sequence number s retires
// the pages it replaced into a retire set stamped s. A retired page
// was part of versions <= s-1 only, so it may be freed once no pinned
// snapshot is older than s: freeable iff s <= horizon, where horizon
// is the minimum pinned sequence number (or the current sequence when
// nothing is pinned). GC runs at writer commit and on demand via
// CollectGarbage — never on read paths, which therefore cannot fail on
// free errors.

// version is one immutable committed state of the tree. All fields
// except pins are written once, before publication; pins is guarded by
// Tree.verMu.
type version struct {
	seq    uint64
	root   disk.PageID
	height int // 1 = root is a leaf
	count  int // number of entries
	leaves int // number of leaf pages
	pins   int // open snapshots on this version (guarded by verMu)
}

// retireSet is the pages a single commit made unreachable, stamped
// with that commit's sequence number.
type retireSet struct {
	seq   uint64
	pages []disk.PageID
}

// MVCCStats describes the version chain for gauges and tests.
type MVCCStats struct {
	// Seq is the current (latest committed) version sequence number.
	Seq uint64
	// PinnedSnapshots is the number of open snapshots.
	PinnedSnapshots int
	// RetainedVersions is the number of retire sets awaiting GC —
	// superseded page groups kept alive for pinned snapshots.
	RetainedVersions int
	// RetainedPages is the total page count across those retire sets.
	RetainedPages int
	// FreedPages counts pages reclaimed by GC over the tree's lifetime.
	FreedPages uint64
	// FreeFailures counts pages whose reclamation failed (the page
	// leaks in the store; harmless for correctness, counted so leaks
	// are visible).
	FreeFailures uint64
	// CommitRecords is the number of commit key-set records retained
	// for transaction validation (pruned with the GC horizon).
	CommitRecords int
}

// MVCCStats returns a snapshot of the version-chain state.
func (t *Tree) MVCCStats() MVCCStats {
	t.verMu.Lock()
	defer t.verMu.Unlock()
	s := MVCCStats{
		Seq:              t.cur.seq,
		PinnedSnapshots:  0,
		RetainedVersions: len(t.retired),
		RetainedPages:    t.retainedPages,
		FreedPages:       t.freedPages,
		FreeFailures:     t.freeFailures,
		CommitRecords:    len(t.commits),
	}
	for _, v := range t.pinnedVers {
		s.PinnedSnapshots += v.pins
	}
	return s
}

// currentVersion returns the latest committed version without pinning
// it. The returned struct is immutable; only its identity matters.
func (t *Tree) currentVersion() *version {
	t.verMu.Lock()
	defer t.verMu.Unlock()
	return t.cur
}

// pin takes a reference on the current version, protecting its pages
// from GC until the matching unpin.
func (t *Tree) pin() *version {
	t.verMu.Lock()
	v := t.cur
	v.pins++
	if v.pins == 1 {
		t.pinnedVers = append(t.pinnedVers, v)
	}
	t.verMu.Unlock()
	return v
}

// unpin releases a reference taken by pin. It performs no page frees
// itself (GC runs at writer commits and CollectGarbage), so release
// paths never fail.
func (t *Tree) unpin(v *version) {
	t.verMu.Lock()
	v.pins--
	if v.pins < 0 {
		t.verMu.Unlock()
		panic("btree: snapshot released twice")
	}
	if v.pins == 0 {
		for i, pv := range t.pinnedVers {
			if pv == v {
				last := len(t.pinnedVers) - 1
				t.pinnedVers[i] = t.pinnedVers[last]
				t.pinnedVers[last] = nil
				t.pinnedVers = t.pinnedVers[:last]
				break
			}
		}
	}
	t.verMu.Unlock()
}

// horizonLocked returns the oldest sequence number still protected by
// a pinned snapshot, or the current sequence when nothing is pinned.
// Retire sets stamped <= horizon are reclaimable. Caller holds verMu.
func (t *Tree) horizonLocked() uint64 {
	h := t.cur.seq
	for _, v := range t.pinnedVers {
		if v.seq < h {
			h = v.seq
		}
	}
	return h
}

// commit publishes nv as the new current version, queues the pages
// the writer replaced for reclamation, and records the key-set the
// commit changed for transaction validation (tx.go); then it runs an
// opportunistic GC pass. The publish itself is a single pointer swap
// under verMu, so a concurrent pin sees either the old or the new
// version, never a mixture. Caller holds writeMu.
func (t *Tree) commit(nv *version, retired []disk.PageID, keys []Key) {
	t.verMu.Lock()
	t.cur = nv
	if len(retired) > 0 {
		t.retired = append(t.retired, retireSet{seq: nv.seq, pages: retired})
		t.retainedPages += len(retired)
	}
	t.recordCommitLocked(nv.seq, keys)
	t.verMu.Unlock()
	t.collect()
}

// collect frees every retire set at or below the horizon. Free
// failures are counted, not returned: a page that cannot be freed
// merely leaks in the store and is reported via MVCCStats.
func (t *Tree) collect() {
	t.verMu.Lock()
	h := t.horizonLocked()
	t.pruneCommitsLocked(h)
	var pages []disk.PageID
	keep := t.retired[:0]
	for _, rs := range t.retired {
		if rs.seq <= h {
			pages = append(pages, rs.pages...)
		} else {
			keep = append(keep, rs)
		}
	}
	for i := len(keep); i < len(t.retired); i++ {
		t.retired[i] = retireSet{}
	}
	t.retired = keep
	t.retainedPages -= len(pages)
	t.verMu.Unlock()
	for _, id := range pages {
		if err := t.pool.Drop(id); err != nil {
			t.verMu.Lock()
			t.freeFailures++
			t.verMu.Unlock()
		} else {
			t.verMu.Lock()
			t.freedPages++
			t.verMu.Unlock()
		}
	}
}

// CollectGarbage frees all superseded page versions no pinned snapshot
// can still reach and reports how many pages remain retained (pages
// held for open snapshots). Writers GC opportunistically at each
// commit, so calling this is only needed to reclaim space on an
// otherwise idle tree after snapshots are released.
func (t *Tree) CollectGarbage() int {
	t.collect()
	t.verMu.Lock()
	defer t.verMu.Unlock()
	return t.retainedPages
}

// Snapshot is an immutable read-only view of the tree at one committed
// version. Snapshots are cheap (no page I/O, two small allocations)
// and any number may be open; each holds its version's pages against
// reclamation until Release. The pages of a snapshot never change, so
// its read methods may be used from many goroutines concurrently and
// race neither writers nor GC.
type Snapshot struct {
	t        *Tree
	v        *version
	released bool
}

// Snapshot pins the current committed version and returns a read-only
// view of it. The caller must Release it.
func (t *Tree) Snapshot() *Snapshot {
	return &Snapshot{t: t, v: t.pin()}
}

// Release unpins the snapshot's version, making its superseded pages
// eligible for reclamation at the next GC pass. Release is idempotent;
// it never fails. Using the snapshot after Release is a bug (its pages
// may be reclaimed under it).
func (s *Snapshot) Release() {
	if s.released {
		return
	}
	s.released = true
	s.t.unpin(s.v)
}

// Seq returns the committed version sequence the snapshot pins.
func (s *Snapshot) Seq() uint64 { return s.v.seq }

// Len returns the number of entries in the snapshot.
func (s *Snapshot) Len() int { return s.v.count }

// Height returns the snapshot's tree height (1 = root is a leaf).
func (s *Snapshot) Height() int { return s.v.height }

// LeafPages returns the snapshot's number of leaf pages.
func (s *Snapshot) LeafPages() int { return s.v.leaves }

// Cursor returns a cursor over the snapshot. Unlike Tree.Cursor, it
// iterates one committed version: concurrent writers are invisible.
func (s *Snapshot) Cursor() *Cursor {
	return &Cursor{t: s.t, snap: s}
}

// Get returns the value stored under the key in the snapshot.
func (s *Snapshot) Get(k Key) ([]byte, bool, error) {
	if s.released {
		return nil, false, fmt.Errorf("btree: Get on released snapshot")
	}
	return s.t.getAt(s.v, k)
}

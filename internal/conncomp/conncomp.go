// Package conncomp implements connected component labelling directly
// on z-ordered element sequences (Section 6: computing "global"
// properties such as how many black objects are in a picture and the
// area of each object). The algorithm unions elements that share an
// edge, discovering neighbors by z-value binary search instead of
// touching pixels; PixelLabel provides the pixel-BFS baseline the
// Table S10 benchmark compares against.
package conncomp

import (
	"fmt"
	"sort"

	"probe/internal/zorder"
)

// Component describes one 4-connected component of a region.
type Component struct {
	// Label is the component's index in the result, 0-based.
	Label int
	// Elements is the number of elements in the component.
	Elements int
	// Area is the number of pixels in the component.
	Area uint64
}

// Result is the labelling of a region.
type Result struct {
	// Labels[i] is the component label of the i-th input element.
	Labels []int
	// Components, sorted by label.
	Components []Component
}

// Count returns the number of components — the paper's "how many
// black objects are in a given picture?".
func (r *Result) Count() int { return len(r.Components) }

// Connectivity selects the neighborhood of the labelling.
type Connectivity int

const (
	// Conn4 connects pixels sharing an edge.
	Conn4 Connectivity = iota
	// Conn8 additionally connects pixels sharing only a corner.
	Conn8
)

// String implements fmt.Stringer.
func (c Connectivity) String() string {
	switch c {
	case Conn4:
		return "4-connected"
	case Conn8:
		return "8-connected"
	}
	return fmt.Sprintf("Connectivity(%d)", int(c))
}

// Label labels the 4-connected components of a 2-d region given as a
// sorted, pairwise-disjoint element sequence (as produced by
// decomposition). Two elements are connected when their regions share
// an edge of nonzero length.
func Label(g zorder.Grid, elems []zorder.Element) (*Result, error) {
	return LabelConn(g, elems, Conn4)
}

// LabelConn is Label with a selectable connectivity.
func LabelConn(g zorder.Grid, elems []zorder.Element, conn Connectivity) (*Result, error) {
	if conn != Conn4 && conn != Conn8 {
		return nil, fmt.Errorf("conncomp: unknown connectivity %d", int(conn))
	}
	if g.Dims() != 2 {
		return nil, fmt.Errorf("conncomp: labelling requires a 2-d grid")
	}
	for i := 1; i < len(elems); i++ {
		if elems[i-1].Compare(elems[i]) >= 0 {
			return nil, fmt.Errorf("conncomp: elements out of z order at %d", i)
		}
		if !elems[i-1].Disjoint(elems[i]) {
			return nil, fmt.Errorf("conncomp: overlapping elements at %d", i)
		}
	}
	u := newUnionFind(len(elems))
	lo := make([]uint32, 2)
	hi := make([]uint32, 2)
	nlo := make([]uint32, 2)
	nhi := make([]uint32, 2)
	for i, e := range elems {
		g.RegionInto(e, lo, hi)
		// +x face: the column just right of the element.
		if uint64(hi[0])+1 < g.Side() {
			x := hi[0] + 1
			for y := lo[1]; ; {
				j, ok := find(g, elems, x, y)
				if ok {
					u.union(i, j)
					g.RegionInto(elems[j], nlo, nhi)
					if nhi[1] >= hi[1] {
						break
					}
					y = nhi[1] + 1
				} else {
					if y == hi[1] {
						break
					}
					y++
				}
			}
		}
		// +y face: the row just above the element.
		if uint64(hi[1])+1 < g.Side() {
			y := hi[1] + 1
			for x := lo[0]; ; {
				j, ok := find(g, elems, x, y)
				if ok {
					u.union(i, j)
					g.RegionInto(elems[j], nlo, nhi)
					if nhi[0] >= hi[0] {
						break
					}
					x = nhi[0] + 1
				} else {
					if x == hi[0] {
						break
					}
					x++
				}
			}
		}
		if conn == Conn8 {
			// Diagonal-only contact between axis-aligned regions can
			// occur only at corners; checking every element's two
			// +x-facing corners covers all four diagonal directions,
			// since the -x-facing contacts are the +x-facing corners
			// of the neighbor.
			side := uint32(g.Side() - 1)
			if hi[0] < side && hi[1] < side {
				if j, ok := find(g, elems, hi[0]+1, hi[1]+1); ok {
					u.union(i, j)
				}
			}
			if hi[0] < side && lo[1] > 0 {
				if j, ok := find(g, elems, hi[0]+1, lo[1]-1); ok {
					u.union(i, j)
				}
			}
		}
	}
	return buildResult(g, elems, u), nil
}

// find locates the element covering pixel (x, y) by binary search on
// z values.
func find(g zorder.Grid, elems []zorder.Element, x, y uint32) (int, bool) {
	z := g.ShuffleKey([]uint32{x, y})
	i := sort.Search(len(elems), func(i int) bool { return elems[i].MinZ() > z })
	if i == 0 {
		return 0, false
	}
	p := zorder.Element{Bits: z, Len: uint8(g.TotalBits())}
	if elems[i-1].Contains(p) {
		return i - 1, true
	}
	return 0, false
}

func buildResult(g zorder.Grid, elems []zorder.Element, u *unionFind) *Result {
	res := &Result{Labels: make([]int, len(elems))}
	rootLabel := make(map[int]int)
	for i := range elems {
		r := u.find(i)
		l, ok := rootLabel[r]
		if !ok {
			l = len(res.Components)
			rootLabel[r] = l
			res.Components = append(res.Components, Component{Label: l})
		}
		res.Labels[i] = l
		res.Components[l].Elements++
		res.Components[l].Area += elems[i].PixelCount(g)
	}
	return res
}

// unionFind is a standard disjoint-set forest with path compression
// and union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

// PixelLabel is the baseline: label 4-connected components of an
// explicit bitmap by flood fill. It returns the component count and
// the per-component areas sorted descending. bm is row-major with the
// given side length.
func PixelLabel(bm []bool, side int) (int, []uint64) {
	return PixelLabelConn(bm, side, Conn4)
}

// PixelLabelConn is PixelLabel with selectable connectivity.
func PixelLabelConn(bm []bool, side int, conn Connectivity) (int, []uint64) {
	if side <= 0 || len(bm) != side*side {
		return 0, nil
	}
	dirs := [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	if conn == Conn8 {
		dirs = append(dirs, [][2]int{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}}...)
	}
	labels := make([]int, len(bm))
	for i := range labels {
		labels[i] = -1
	}
	var areas []uint64
	var queue []int
	for start := range bm {
		if !bm[start] || labels[start] >= 0 {
			continue
		}
		label := len(areas)
		area := uint64(0)
		queue = append(queue[:0], start)
		labels[start] = label
		for len(queue) > 0 {
			p := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			area++
			x, y := p%side, p/side
			for _, d := range dirs {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || ny < 0 || nx >= side || ny >= side {
					continue
				}
				np := ny*side + nx
				if bm[np] && labels[np] < 0 {
					labels[np] = label
					queue = append(queue, np)
				}
			}
		}
		areas = append(areas, area)
	}
	sort.Slice(areas, func(i, j int) bool { return areas[i] > areas[j] })
	return len(areas), areas
}

package conncomp

import (
	"math/rand"
	"sort"
	"testing"

	"probe/internal/decompose"
	"probe/internal/geom"
	"probe/internal/overlay"
	"probe/internal/zorder"
)

func rasterFromBitmap(t *testing.T, g zorder.Grid, bm []bool) []zorder.Element {
	t.Helper()
	side := int(g.Side())
	r := geom.NewRaster(side, side, func(x, y int) bool { return bm[y*side+x] })
	elems, err := decompose.Object(g, r, decompose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return elems
}

func sortedAreas(res *Result) []uint64 {
	areas := make([]uint64, 0, len(res.Components))
	for _, c := range res.Components {
		areas = append(areas, c.Area)
	}
	sort.Slice(areas, func(i, j int) bool { return areas[i] > areas[j] })
	return areas
}

func TestLabelTwoSeparateBoxes(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	a := decompose.Box(g, geom.Box2(0, 3, 0, 3))
	b := decompose.Box(g, geom.Box2(8, 11, 8, 11))
	region, err := overlay.Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Label(g, region)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Fatalf("count = %d, want 2", res.Count())
	}
	areas := sortedAreas(res)
	if areas[0] != 16 || areas[1] != 16 {
		t.Errorf("areas = %v", areas)
	}
}

func TestLabelTouchingBoxesMerge(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	a := decompose.Box(g, geom.Box2(0, 3, 0, 3))
	b := decompose.Box(g, geom.Box2(4, 7, 0, 3)) // shares the x=3/4 edge
	region, err := overlay.Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Label(g, region)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 1 {
		t.Fatalf("edge-adjacent boxes: count = %d, want 1", res.Count())
	}
	if res.Components[0].Area != 32 {
		t.Errorf("area = %d, want 32", res.Components[0].Area)
	}
}

func TestLabelDiagonalBoxesStaySeparate(t *testing.T) {
	// 4-connectivity: corner contact does not connect.
	g := zorder.MustGrid(2, 4)
	a := decompose.Box(g, geom.Box2(0, 3, 0, 3))
	b := decompose.Box(g, geom.Box2(4, 7, 4, 7))
	region, err := overlay.Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Label(g, region)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Fatalf("corner-touching boxes: count = %d, want 2", res.Count())
	}
}

func TestLabelEmptyRegion(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	res, err := Label(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 0 || len(res.Labels) != 0 {
		t.Errorf("empty region labelled: %+v", res)
	}
}

func TestLabelRejectsBadInput(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	if _, err := Label(zorder.MustGrid(3, 4), nil); err == nil {
		t.Errorf("3d grid accepted")
	}
	bad := []zorder.Element{
		zorder.MustParseElement("01"),
		zorder.MustParseElement("00"),
	}
	if _, err := Label(g, bad); err == nil {
		t.Errorf("unsorted elements accepted")
	}
	overlapping := []zorder.Element{
		zorder.MustParseElement("0"),
		zorder.MustParseElement("00"),
	}
	if _, err := Label(g, overlapping); err == nil {
		t.Errorf("overlapping elements accepted")
	}
}

// TestLabelAgainstPixelBaseline: on random bitmaps the element-based
// labelling and the pixel BFS agree on component count and areas.
func TestLabelAgainstPixelBaseline(t *testing.T) {
	g := zorder.MustGrid(2, 5)
	side := int(g.Side())
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		bm := make([]bool, side*side)
		density := []int{2, 3, 5}[trial%3]
		for i := range bm {
			bm[i] = rng.Intn(density) == 0
		}
		elems := rasterFromBitmap(t, g, bm)
		res, err := Label(g, elems)
		if err != nil {
			t.Fatal(err)
		}
		wantCount, wantAreas := PixelLabel(bm, side)
		if res.Count() != wantCount {
			t.Fatalf("trial %d: count %d, want %d", trial, res.Count(), wantCount)
		}
		gotAreas := sortedAreas(res)
		for i := range wantAreas {
			if gotAreas[i] != wantAreas[i] {
				t.Fatalf("trial %d: areas %v, want %v", trial, gotAreas, wantAreas)
			}
		}
	}
}

func TestLabelRingComponent(t *testing.T) {
	// A ring (box minus inner box) must be one component surrounding
	// a hole; the hole's contents, if present, are separate.
	g := zorder.MustGrid(2, 5)
	outer := decompose.Box(g, geom.Box2(2, 13, 2, 13))
	inner := decompose.Box(g, geom.Box2(5, 10, 5, 10))
	ring, err := overlay.Subtract(outer, inner)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Label(g, ring)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 1 {
		t.Fatalf("ring: count = %d, want 1", res.Count())
	}
	core := decompose.Box(g, geom.Box2(7, 8, 7, 8))
	both, err := overlay.Union(ring, core)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Label(g, both)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Fatalf("ring+core: count = %d, want 2", res.Count())
	}
}

func TestLabelsIndexComponents(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	a := decompose.Box(g, geom.Box2(0, 1, 0, 1))
	b := decompose.Box(g, geom.Box2(10, 11, 10, 11))
	region, _ := overlay.Union(a, b)
	res, err := Label(g, region)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != len(region) {
		t.Fatalf("labels/elements mismatch")
	}
	elemCount := 0
	for _, c := range res.Components {
		if c.Label >= res.Count() || c.Elements == 0 || c.Area == 0 {
			t.Errorf("malformed component %+v", c)
		}
		elemCount += c.Elements
	}
	if elemCount != len(region) {
		t.Errorf("component element counts sum to %d, want %d", elemCount, len(region))
	}
}

func TestPixelLabelEdgeCases(t *testing.T) {
	if n, areas := PixelLabel(nil, 0); n != 0 || areas != nil {
		t.Errorf("empty bitmap labelled")
	}
	if n, _ := PixelLabel(make([]bool, 9), 3); n != 0 {
		t.Errorf("all-white bitmap has components")
	}
	bm := make([]bool, 9)
	for i := range bm {
		bm[i] = true
	}
	n, areas := PixelLabel(bm, 3)
	if n != 1 || areas[0] != 9 {
		t.Errorf("all-black 3x3: %d %v", n, areas)
	}
}

func TestLabelConn8DiagonalBoxesMerge(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	a := decompose.Box(g, geom.Box2(0, 3, 0, 3))
	b := decompose.Box(g, geom.Box2(4, 7, 4, 7))
	region, _ := overlay.Union(a, b)
	res, err := LabelConn(g, region, Conn8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 1 {
		t.Fatalf("8-connectivity should merge corner-touching boxes: %d", res.Count())
	}
	// The anti-diagonal case (NW-SE contact).
	c := decompose.Box(g, geom.Box2(4, 7, 8, 11))
	d := decompose.Box(g, geom.Box2(8, 11, 4, 7))
	region2, _ := overlay.Union(c, d)
	res, err = LabelConn(g, region2, Conn8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 1 {
		t.Fatalf("anti-diagonal corner contact missed: %d components", res.Count())
	}
	// 4-connectivity keeps them apart.
	res, _ = LabelConn(g, region2, Conn4)
	if res.Count() != 2 {
		t.Fatalf("4-connectivity merged corner contact")
	}
}

func TestLabelConnValidation(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	if _, err := LabelConn(g, nil, Connectivity(7)); err == nil {
		t.Errorf("bad connectivity accepted")
	}
	if Conn4.String() == "" || Conn8.String() == "" || Connectivity(7).String() == "" {
		t.Errorf("connectivity strings wrong")
	}
}

// TestLabelConn8AgainstPixelBaseline: 8-connected labelling matches
// the pixel BFS on random bitmaps.
func TestLabelConn8AgainstPixelBaseline(t *testing.T) {
	g := zorder.MustGrid(2, 5)
	side := int(g.Side())
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		bm := make([]bool, side*side)
		for i := range bm {
			bm[i] = rng.Intn(4) == 0
		}
		elems := rasterFromBitmap(t, g, bm)
		res, err := LabelConn(g, elems, Conn8)
		if err != nil {
			t.Fatal(err)
		}
		wantCount, wantAreas := PixelLabelConn(bm, side, Conn8)
		if res.Count() != wantCount {
			t.Fatalf("trial %d: count %d, want %d", trial, res.Count(), wantCount)
		}
		gotAreas := sortedAreas(res)
		for i := range wantAreas {
			if gotAreas[i] != wantAreas[i] {
				t.Fatalf("trial %d: areas differ", trial)
			}
		}
	}
}

func TestPixelLabelConnMatches4(t *testing.T) {
	bm := []bool{true, false, false, true} // 2x2 diagonal
	n4, _ := PixelLabelConn(bm, 2, Conn4)
	n8, _ := PixelLabelConn(bm, 2, Conn8)
	if n4 != 2 || n8 != 1 {
		t.Errorf("diagonal bitmap: 4-conn %d (want 2), 8-conn %d (want 1)", n4, n8)
	}
	if n, _ := PixelLabelConn(nil, 0, Conn8); n != 0 {
		t.Errorf("empty bitmap labelled")
	}
}

func TestLabelNDMatches2D(t *testing.T) {
	g := zorder.MustGrid(2, 5)
	side := int(g.Side())
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 15; trial++ {
		bm := make([]bool, side*side)
		for i := range bm {
			bm[i] = rng.Intn(3) == 0
		}
		elems := rasterFromBitmap(t, g, bm)
		a, err := Label(g, elems)
		if err != nil {
			t.Fatal(err)
		}
		b, err := LabelND(g, elems)
		if err != nil {
			t.Fatal(err)
		}
		if a.Count() != b.Count() {
			t.Fatalf("trial %d: 2d label %d components, ND %d", trial, a.Count(), b.Count())
		}
	}
}

func TestLabelND3D(t *testing.T) {
	g := zorder.MustGrid(3, 3)
	// Two cubes touching on a face, one isolated.
	mkBox := func(lo, hi []uint32) []zorder.Element {
		elems, err := decompose.Object(g, geom.MustBox(lo, hi), decompose.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return elems
	}
	a := mkBox([]uint32{0, 0, 0}, []uint32{1, 1, 1})
	b := mkBox([]uint32{2, 0, 0}, []uint32{3, 1, 1}) // shares the x=1/2 face with a
	c := mkBox([]uint32{6, 6, 6}, []uint32{7, 7, 7}) // isolated
	region, err := overlay.Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	region, err = overlay.Union(region, c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LabelND(g, region)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Fatalf("3d label = %d components, want 2", res.Count())
	}
	areas := sortedAreas(res)
	if areas[0] != 16 || areas[1] != 8 {
		t.Errorf("areas = %v", areas)
	}
	// Edge-only contact (3d diagonal) does not connect under
	// 2k-connectivity.
	d := mkBox([]uint32{4, 2, 2}, []uint32{5, 3, 3}) // touches b only along an edge
	region2, err := overlay.Union(b, d)
	if err != nil {
		t.Fatal(err)
	}
	res, err = LabelND(g, region2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Errorf("edge-contact cubes merged: %d components", res.Count())
	}
}

// TestLabelND3DAgainstBFS cross-checks against a 3-d flood fill on
// random voxel sets.
func TestLabelND3DAgainstBFS(t *testing.T) {
	g := zorder.MustGrid(3, 3)
	side := 8
	rng := rand.New(rand.NewSource(122))
	for trial := 0; trial < 10; trial++ {
		voxels := make(map[[3]uint32]bool)
		var elems []zorder.Element
		for i := 0; i < 120; i++ {
			v := [3]uint32{uint32(rng.Intn(side)), uint32(rng.Intn(side)), uint32(rng.Intn(side))}
			if voxels[v] {
				continue
			}
			voxels[v] = true
			elems = append(elems, g.Shuffle(v[:]))
		}
		sortElements3(elems)
		res, err := LabelND(g, elems)
		if err != nil {
			t.Fatal(err)
		}
		want := bfs3d(voxels)
		if res.Count() != want {
			t.Fatalf("trial %d: %d components, BFS says %d", trial, res.Count(), want)
		}
	}
}

func sortElements3(elems []zorder.Element) {
	sort.Slice(elems, func(i, j int) bool { return elems[i].Compare(elems[j]) < 0 })
}

func bfs3d(voxels map[[3]uint32]bool) int {
	seen := make(map[[3]uint32]bool)
	count := 0
	dirs := [][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
	for start := range voxels {
		if seen[start] {
			continue
		}
		count++
		queue := [][3]uint32{start}
		seen[start] = true
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, d := range dirs {
				n := [3]uint32{
					uint32(int(v[0]) + d[0]),
					uint32(int(v[1]) + d[1]),
					uint32(int(v[2]) + d[2]),
				}
				if voxels[n] && !seen[n] {
					seen[n] = true
					queue = append(queue, n)
				}
			}
		}
	}
	return count
}

func TestLabelND1D(t *testing.T) {
	g := zorder.MustGrid(1, 5)
	// Two runs: [2..5] and [9..12].
	var elems []zorder.Element
	for _, c := range []uint32{2, 3, 4, 5, 9, 10, 11, 12} {
		elems = append(elems, g.Shuffle([]uint32{c}))
	}
	sortElements3(elems)
	res, err := LabelND(g, elems)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Errorf("1d runs = %d components, want 2", res.Count())
	}
}

func TestLabelNDRejectsBadInput(t *testing.T) {
	g := zorder.MustGrid(3, 3)
	bad := []zorder.Element{
		zorder.MustParseElement("01"),
		zorder.MustParseElement("00"),
	}
	if _, err := LabelND(g, bad); err == nil {
		t.Errorf("unsorted input accepted")
	}
	overlapping := []zorder.Element{
		zorder.MustParseElement("0"),
		zorder.MustParseElement("00"),
	}
	if _, err := LabelND(g, overlapping); err == nil {
		t.Errorf("overlapping input accepted")
	}
}

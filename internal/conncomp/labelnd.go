package conncomp

import (
	"fmt"
	"sort"

	"probe/internal/zorder"
)

// LabelND labels the face-connected components (2k-connectivity: the
// k-dimensional analog of 4-connectivity) of a region on a grid of
// any dimensionality. The Section 6 algorithms apply to CAD solids as
// well as pictures; this is the 3-d-and-beyond form of Label.
func LabelND(g zorder.Grid, elems []zorder.Element) (*Result, error) {
	for i := 1; i < len(elems); i++ {
		if elems[i-1].Compare(elems[i]) >= 0 {
			return nil, fmt.Errorf("conncomp: elements out of z order at %d", i)
		}
		if !elems[i-1].Disjoint(elems[i]) {
			return nil, fmt.Errorf("conncomp: overlapping elements at %d", i)
		}
	}
	k := g.Dims()
	u := newUnionFind(len(elems))
	lo := make([]uint32, k)
	hi := make([]uint32, k)
	nlo := make([]uint32, k)
	nhi := make([]uint32, k)
	coord := make([]uint32, k)
	for i, e := range elems {
		g.RegionInto(e, lo, hi)
		// For each +dim face, visit the hyperplane of pixels just
		// beyond the element and union with the covering elements.
		for d := 0; d < k; d++ {
			if uint64(hi[d])+1 >= g.SideOf(d) {
				continue
			}
			coord[d] = hi[d] + 1
			visitFace(g, elems, lo, hi, coord, d, 0, func(j int) (skipTo uint32, skip bool) {
				u.union(i, j)
				if k < 2 {
					return 0, false
				}
				g.RegionInto(elems[j], nlo, nhi)
				// Allow the innermost loop to jump past the
				// neighbor's extent.
				return nhi[innermost(k, d)], true
			})
		}
	}
	return buildResult(g, elems, u), nil
}

// innermost returns the dimension iterated fastest by visitFace for a
// face normal to dim: the last dimension that is not dim.
func innermost(k, dim int) int {
	if dim == k-1 {
		return k - 2
	}
	return k - 1
}

// visitFace iterates the pixels of the face (coord[dim] fixed, other
// dims spanning [lo, hi]) and calls fn for each covering element it
// finds. fn may return a coordinate to skip to in the innermost
// dimension. Dimensions are iterated in order, skipping dim.
func visitFace(g zorder.Grid, elems []zorder.Element, lo, hi, coord []uint32, dim, d int, fn func(j int) (uint32, bool)) {
	if d == dim {
		visitFace(g, elems, lo, hi, coord, dim, d+1, fn)
		return
	}
	if d >= len(lo) {
		if j, ok := findND(g, elems, coord); ok {
			fn(j)
		}
		return
	}
	last := d == len(lo)-1 || (d == len(lo)-2 && dim == len(lo)-1)
	for c := lo[d]; ; {
		coord[d] = c
		if last {
			// Innermost loop: find-and-skip.
			if j, ok := findND(g, elems, coord); ok {
				skipTo, _ := fn(j)
				if skipTo >= hi[d] {
					break
				}
				c = skipTo + 1
				continue
			}
			if c == hi[d] {
				break
			}
			c++
			continue
		}
		visitFace(g, elems, lo, hi, coord, dim, d+1, fn)
		if c == hi[d] {
			break
		}
		c++
	}
}

// findND locates the element covering the pixel, by binary search.
func findND(g zorder.Grid, elems []zorder.Element, coord []uint32) (int, bool) {
	z := g.ShuffleKey(coord)
	i := sort.Search(len(elems), func(i int) bool { return elems[i].MinZ() > z })
	if i == 0 {
		return 0, false
	}
	p := zorder.Element{Bits: z, Len: uint8(g.TotalBits())}
	if elems[i-1].Contains(p) {
		return i - 1, true
	}
	return 0, false
}

package core

import (
	"math/rand"
	"testing"

	"probe/internal/decompose"
	"probe/internal/geom"
	"probe/internal/zorder"
)

// TestAsymGridEndToEnd: the whole stack — decomposition, index, all
// three range-search strategies, spatial join — works unchanged on an
// asymmetric grid (the [OREN85] generalization of the paper's
// equal-resolution assumption).
func TestAsymGridEndToEnd(t *testing.T) {
	g := zorder.MustGridAsym(5, 9) // 32 x 512 space
	ix := newTestIndex(t, g, 10)
	rng := rand.New(rand.NewSource(111))
	var pts []geom.Point
	for i := 0; i < 800; i++ {
		p := geom.Point{ID: uint64(i), Coords: []uint32{
			uint32(rng.Intn(32)), uint32(rng.Intn(512)),
		}}
		pts = append(pts, p)
	}
	if err := ix.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		lo := []uint32{uint32(rng.Intn(32)), uint32(rng.Intn(512))}
		hi := []uint32{uint32(rng.Intn(32)), uint32(rng.Intn(512))}
		for d := range lo {
			if lo[d] > hi[d] {
				lo[d], hi[d] = hi[d], lo[d]
			}
		}
		box := geom.Box{Lo: lo, Hi: hi}
		want := bruteIDs(pts, box)
		for _, s := range allStrategies() {
			got, _, err := ix.RangeSearch(box, s)
			if err != nil {
				t.Fatal(err)
			}
			if !equalU64(resultIDs(got), want) {
				t.Fatalf("%v: asym range search wrong for %v: %d vs %d",
					s, box, len(got), len(want))
			}
		}
	}
	// Nearest neighbor on the asymmetric grid.
	q := []uint32{16, 256}
	got, _, err := ix.Nearest(q, 5, Euclidean, MergeLazy)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteNearest(pts, q, 5, Euclidean)
	for i := range got {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("asym nearest %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

// TestAsymDecomposeExactCover: decomposition invariants hold on
// asymmetric grids.
func TestAsymDecomposeExactCover(t *testing.T) {
	g := zorder.MustGridAsym(4, 6)
	rng := rand.New(rand.NewSource(112))
	for trial := 0; trial < 20; trial++ {
		lo := []uint32{uint32(rng.Intn(16)), uint32(rng.Intn(64))}
		hi := []uint32{uint32(rng.Intn(16)), uint32(rng.Intn(64))}
		for d := range lo {
			if lo[d] > hi[d] {
				lo[d], hi[d] = hi[d], lo[d]
			}
		}
		box := geom.Box{Lo: lo, Hi: hi}
		elems := decompose.Box(g, box)
		for i := 1; i < len(elems); i++ {
			if elems[i-1].Compare(elems[i]) >= 0 || !elems[i-1].Disjoint(elems[i]) {
				t.Fatalf("trial %d: malformed decomposition", trial)
			}
		}
		if decompose.PixelCount(g, elems) != box.Volume() {
			t.Fatalf("trial %d: covered %d pixels, want %d",
				trial, decompose.PixelCount(g, elems), box.Volume())
		}
		// Every pixel of the box is covered by exactly one element.
		for probe := 0; probe < 100; probe++ {
			x := lo[0] + uint32(rng.Intn(int(hi[0]-lo[0])+1))
			y := lo[1] + uint32(rng.Intn(int(hi[1]-lo[1])+1))
			p := g.Shuffle([]uint32{x, y})
			covered := 0
			for _, e := range elems {
				if e.Contains(p) {
					covered++
				}
			}
			if covered != 1 {
				t.Fatalf("pixel (%d,%d) covered %d times", x, y, covered)
			}
		}
	}
}

// TestAsymSpatialJoin: the join works across an asymmetric grid.
func TestAsymSpatialJoin(t *testing.T) {
	g := zorder.MustGridAsym(4, 8)
	left := []geom.Box{geom.Box2(0, 7, 0, 100), geom.Box2(8, 15, 200, 255)}
	right := []geom.Box{geom.Box2(4, 11, 50, 220)}
	got, _, err := SpatialJoinDistinct(decomposeBoxes(g, left), decomposeBoxes(g, right))
	if err != nil {
		t.Fatal(err)
	}
	want := bruteOverlaps(left, right)
	if !equalPairs(got, want) {
		t.Fatalf("asym join = %v, want %v", got, want)
	}
}

package core

import (
	"math/rand"
	"sort"
	"testing"

	"probe/internal/btree"
	"probe/internal/decompose"
	"probe/internal/disk"
	"probe/internal/geom"
	"probe/internal/workload"
	"probe/internal/zorder"
)

func newTestIndex(t testing.TB, g zorder.Grid, leafCap int) *Index {
	t.Helper()
	store := disk.MustMemStore(1024)
	pool := disk.MustPool(store, 512, disk.LRU)
	ix, err := NewIndex(pool, g, IndexConfig{LeafCapacity: leafCap})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func allStrategies() []Strategy {
	return []Strategy{MergeDecomposed, MergeLazy, SkipBigMin}
}

func bruteIDs(pts []geom.Point, box geom.Box) []uint64 {
	var ids []uint64
	for _, p := range pts {
		if box.ContainsPoint(p.Coords) {
			ids = append(ids, p.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func resultIDs(pts []geom.Point) []uint64 {
	ids := make([]uint64, len(pts))
	for i, p := range pts {
		ids[i] = p.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIndexInsertDelete(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	ix := newTestIndex(t, g, 8)
	p := geom.Pt2(7, 10, 20)
	if err := ix.Insert(p); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if err := ix.Insert(geom.Pt2(8, 10, 20)); err != nil {
		t.Fatalf("second point on the same pixel rejected: %v", err)
	}
	ok, err := ix.Delete(p)
	if err != nil || !ok {
		t.Fatalf("Delete: %v %v", ok, err)
	}
	if ok, _ := ix.Delete(p); ok {
		t.Errorf("double delete succeeded")
	}
	if err := ix.Insert(geom.Point{ID: 1, Coords: []uint32{999, 0}}); err == nil {
		t.Errorf("out-of-grid point accepted")
	}
	if _, err := ix.Delete(geom.Point{ID: 1, Coords: []uint32{999, 0}}); err == nil {
		t.Errorf("out-of-grid delete accepted")
	}
}

func TestIndexGridAccess(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	ix := newTestIndex(t, g, 8)
	if ix.Grid() != g {
		t.Errorf("Grid mismatch")
	}
	if ix.Tree() == nil {
		t.Errorf("Tree is nil")
	}
}

// TestRangeSearchAllStrategiesAgainstBruteForce is the central
// correctness test: on every workload distribution of the paper, all
// three strategies return exactly the brute-force answer.
func TestRangeSearchAllStrategiesAgainstBruteForce(t *testing.T) {
	g := zorder.MustGrid(2, 7)
	datasets := map[string][]geom.Point{
		"uniform":   workload.Uniform(g, 800, 1),
		"clustered": workload.Clustered(g, 10, 80, 3, 2),
		"diagonal":  workload.Diagonal(g, 800, 2, 3),
	}
	rng := rand.New(rand.NewSource(4))
	for name, pts := range datasets {
		ix := newTestIndex(t, g, 10)
		if err := ix.BulkLoad(pts); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			lo := make([]uint32, 2)
			hi := make([]uint32, 2)
			for d := range lo {
				a := uint32(rng.Uint64() % g.Side())
				b := uint32(rng.Uint64() % g.Side())
				if a > b {
					a, b = b, a
				}
				lo[d], hi[d] = a, b
			}
			box := geom.Box{Lo: lo, Hi: hi}
			want := bruteIDs(pts, box)
			for _, s := range allStrategies() {
				got, stats, err := ix.RangeSearch(box, s)
				if err != nil {
					t.Fatal(err)
				}
				if !equalU64(resultIDs(got), want) {
					t.Fatalf("%s/%v: box %v returned %d points, want %d",
						name, s, box, len(got), len(want))
				}
				if stats.Results != len(got) {
					t.Fatalf("%s/%v: stats.Results=%d, got %d", name, s, stats.Results, len(got))
				}
				if len(got) > 0 && stats.DataPages == 0 {
					t.Fatalf("%s/%v: results without data pages", name, s)
				}
			}
		}
	}
}

func TestRangeSearch3D(t *testing.T) {
	g := zorder.MustGrid(3, 4)
	pts := workload.Uniform(g, 600, 5)
	ix := newTestIndex(t, g, 10)
	if err := ix.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		lo := make([]uint32, 3)
		hi := make([]uint32, 3)
		for d := range lo {
			a := uint32(rng.Uint64() % g.Side())
			b := uint32(rng.Uint64() % g.Side())
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		box := geom.Box{Lo: lo, Hi: hi}
		want := bruteIDs(pts, box)
		for _, s := range allStrategies() {
			got, _, err := ix.RangeSearch(box, s)
			if err != nil {
				t.Fatal(err)
			}
			if !equalU64(resultIDs(got), want) {
				t.Fatalf("3d %v: wrong answer for %v", s, box)
			}
		}
	}
}

func TestRangeSearchResultsInZOrder(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	pts := workload.Uniform(g, 300, 7)
	ix := newTestIndex(t, g, 10)
	ix.BulkLoad(pts)
	box := geom.Box2(5, 50, 10, 60)
	for _, s := range allStrategies() {
		got, _, err := ix.RangeSearch(box, s)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(got); i++ {
			if g.ShuffleKey(got[i-1].Coords) > g.ShuffleKey(got[i].Coords) {
				t.Fatalf("%v: results not in z order", s)
			}
		}
	}
}

func TestRangeSearchEmptyBoxRegion(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	ix := newTestIndex(t, g, 10)
	ix.BulkLoad(workload.Uniform(g, 100, 8))
	// A box in an empty corner.
	empty := geom.Box2(0, 0, 0, 0)
	for _, s := range allStrategies() {
		got, stats, err := ix.RangeSearch(empty, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 && !empty.ContainsPoint(got[0].Coords) {
			t.Fatalf("%v: wrong result", s)
		}
		_ = stats
	}
}

func TestRangeSearchOnEmptyIndex(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	ix := newTestIndex(t, g, 10)
	for _, s := range allStrategies() {
		got, stats, err := ix.RangeSearch(geom.FullBox(g), s)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 || stats.Results != 0 {
			t.Fatalf("%v: results on empty index", s)
		}
	}
}

func TestRangeSearchDimsMismatch(t *testing.T) {
	g := zorder.MustGrid(3, 4)
	ix := newTestIndex(t, g, 10)
	if _, _, err := ix.RangeSearch(geom.Box2(0, 1, 0, 1), MergeLazy); err == nil {
		t.Errorf("2d box on 3d index accepted")
	}
	if _, _, err := ix.RangeSearch(geom.FullBox(g), Strategy(42)); err == nil {
		t.Errorf("unknown strategy accepted")
	}
	if Strategy(42).String() == "" || MergeLazy.String() != "merge-lazy" {
		t.Errorf("Strategy.String wrong")
	}
}

func TestRangeSearchEarlyStop(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	ix := newTestIndex(t, g, 10)
	ix.BulkLoad(workload.Uniform(g, 500, 9))
	for _, s := range allStrategies() {
		n := 0
		if _, err := ix.RangeSearchFunc(geom.FullBox(g), s, func(geom.Point) bool {
			n++
			return n < 5
		}); err != nil {
			t.Fatal(err)
		}
		if n != 5 {
			t.Fatalf("%v: early stop delivered %d", s, n)
		}
	}
}

func TestPartialMatch(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	pts := workload.Uniform(g, 1000, 10)
	ix := newTestIndex(t, g, 10)
	ix.BulkLoad(pts)
	value := []uint32{17, 0}
	restricted := []bool{true, false}
	want := bruteIDs(pts, geom.PartialMatchBox(g, restricted, value))
	for _, s := range allStrategies() {
		got, _, err := ix.PartialMatch(restricted, value, s)
		if err != nil {
			t.Fatal(err)
		}
		if !equalU64(resultIDs(got), want) {
			t.Fatalf("%v: partial match wrong", s)
		}
	}
	if _, _, err := ix.PartialMatch([]bool{true}, value, MergeLazy); err == nil {
		t.Errorf("arity mismatch accepted")
	}
}

// TestSkipOptimizationReducesWork: on a diagonal dataset, a query box
// far off the diagonal forces long dead stretches of z space; the
// skip must avoid scanning them. We compare pages touched by
// SkipBigMin with a naive interval scan (every point between the
// box's first and last z value).
func TestSkipOptimizationReducesWork(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	pts := workload.Diagonal(g, 4000, 3, 11)
	ix := newTestIndex(t, g, 20)
	ix.BulkLoad(pts)
	box := geom.Box2(700, 1000, 0, 300) // off-diagonal box: few points
	_, stats, err := ix.RangeSearch(box, SkipBigMin)
	if err != nil {
		t.Fatal(err)
	}
	// Naive scan: count leaf pages holding any z in [first, last].
	first, _ := g.BigMin(0, box.Lo, box.Hi)
	last, _ := g.LitMax(^uint64(0), box.Lo, box.Hi)
	naive := 0
	c := ix.Tree().Cursor()
	var prev disk.PageID
	for ok, _ := c.SeekGE(btree.Key{Hi: first}); ok; ok, _ = c.Next() {
		if c.Key().Hi > last {
			break
		}
		if c.LeafID() != prev {
			naive++
			prev = c.LeafID()
		}
	}
	if naive > 3 && stats.DataPages*2 > naive {
		t.Errorf("skip touched %d pages, naive interval scan %d — no skipping happened",
			stats.DataPages, naive)
	}
}

func TestEfficiencyMetric(t *testing.T) {
	s := SearchStats{DataPages: 4, Results: 40}
	if e := s.Efficiency(20); e != 0.5 {
		t.Errorf("Efficiency = %v, want 0.5", e)
	}
	if (SearchStats{}).Efficiency(20) != 0 {
		t.Errorf("empty stats efficiency should be 0")
	}
}

// TestStrategiesTouchSamePages: the three strategies perform the same
// logical merge, so the leaf pages they touch should be identical on
// box queries.
func TestStrategiesTouchSamePages(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	pts := workload.Uniform(g, 2000, 12)
	ix := newTestIndex(t, g, 20)
	ix.BulkLoad(pts)
	boxes, err := workload.Queries(g, workload.QuerySpec{Volume: 0.05, Aspect: 1}, 10, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, box := range boxes {
		var counts [3]int
		for i, s := range allStrategies() {
			_, stats, err := ix.RangeSearch(box, s)
			if err != nil {
				t.Fatal(err)
			}
			counts[i] = stats.DataPages
		}
		if counts[0] != counts[1] || counts[1] != counts[2] {
			t.Errorf("box %v: page counts differ across strategies: %v", box, counts)
		}
	}
}

func TestBulkLoadError(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	ix := newTestIndex(t, g, 10)
	err := ix.BulkLoad([]geom.Point{geom.Pt2(0, 1, 1), {ID: 1, Coords: []uint32{99, 0}}})
	if err == nil {
		t.Errorf("bulk load with invalid point succeeded")
	}
}

func TestIndexDecompose(t *testing.T) {
	g := zorder.MustGrid(2, 3)
	ix := newTestIndex(t, g, 10)
	elems, err := ix.Decompose(geom.Box2(2, 3, 0, 3), decompose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 1 || elems[0] != zorder.MustParseElement("001") {
		t.Errorf("Decompose = %v", elems)
	}
}

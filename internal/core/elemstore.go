package core

import (
	"fmt"

	"probe/internal/btree"
	"probe/internal/disk"
	"probe/internal/zorder"
)

// ElementStore keeps a decomposed object relation — tuples
// (object id, element) — in a prefix B+-tree, in z order. This is the
// stored form of Section 4's R(p@, zr, ...) relations: the element
// domain living inside ordinary DBMS storage, so the spatial join can
// run as a one-pass merge of two stored relations through the buffer
// pool.
//
// The tree key packs an element and its object id so that key order
// equals z order with containers first: Hi holds the left-justified
// element bits (numeric order on left-justified bitstrings is
// lexicographic order), and Lo breaks ties with the element length in
// its top byte (shorter prefix — the container — first) followed by
// the object id. Object ids are therefore limited to 56 bits.
type ElementStore struct {
	g    zorder.Grid
	tree *btree.Tree
}

// maxStoreID is the largest storable object id (56 bits).
const maxStoreID = 1<<56 - 1

// NewElementStore creates an empty element relation on the pool.
func NewElementStore(pool *disk.Pool, g zorder.Grid, leafCapacity int) (*ElementStore, error) {
	tree, err := btree.New(pool, btree.Config{ValueSize: 0, LeafCapacity: leafCapacity})
	if err != nil {
		return nil, err
	}
	return &ElementStore{g: g, tree: tree}, nil
}

// Grid returns the store's grid.
func (s *ElementStore) Grid() zorder.Grid { return s.g }

// Tree exposes the underlying B+-tree for statistics.
func (s *ElementStore) Tree() *btree.Tree { return s.tree }

// Len returns the number of stored items.
func (s *ElementStore) Len() int { return s.tree.Len() }

func (s *ElementStore) key(it Item) (btree.Key, error) {
	if it.ID > maxStoreID {
		return btree.Key{}, fmt.Errorf("core: object id %d exceeds 56 bits", it.ID)
	}
	if int(it.Elem.Len) > s.g.TotalBits() {
		return btree.Key{}, fmt.Errorf("core: element %v longer than grid resolution", it.Elem)
	}
	return btree.Key{
		Hi: it.Elem.Bits,
		Lo: uint64(it.Elem.Len)<<56 | it.ID,
	}, nil
}

func decodeItem(k btree.Key) Item {
	return Item{
		Elem: zorder.Element{Bits: k.Hi, Len: uint8(k.Lo >> 56)},
		ID:   k.Lo & maxStoreID,
	}
}

// Insert stores one item. Duplicate (element, id) pairs are rejected.
func (s *ElementStore) Insert(it Item) error {
	k, err := s.key(it)
	if err != nil {
		return err
	}
	return s.tree.Insert(k, nil)
}

// InsertObject stores an object's whole decomposition.
func (s *ElementStore) InsertObject(id uint64, elems []zorder.Element) error {
	for _, e := range elems {
		if err := s.Insert(Item{Elem: e, ID: id}); err != nil {
			return fmt.Errorf("core: object %d element %v: %w", id, e, err)
		}
	}
	return nil
}

// Delete removes one item, reporting whether it was present.
func (s *ElementStore) Delete(it Item) (bool, error) {
	k, err := s.key(it)
	if err != nil {
		return false, err
	}
	return s.tree.Delete(k)
}

// Scan streams all items in z order.
func (s *ElementStore) Scan(fn func(Item) bool) error {
	c := s.tree.Cursor()
	ok, err := c.First()
	for ok {
		if !fn(decodeItem(c.Key())) {
			return nil
		}
		ok, err = c.Next()
	}
	return err
}

// storeCursor adapts a tree cursor to the item merge.
type storeCursor struct {
	c     *btree.Cursor
	cur   Item
	valid bool
	pages map[disk.PageID]bool
}

func newStoreCursor(s *ElementStore) (*storeCursor, error) {
	sc := &storeCursor{c: s.tree.Cursor(), pages: make(map[disk.PageID]bool)}
	ok, err := sc.c.First()
	if err != nil {
		return nil, err
	}
	sc.set(ok)
	return sc, nil
}

func (sc *storeCursor) set(ok bool) {
	sc.valid = ok
	if ok {
		sc.cur = decodeItem(sc.c.Key())
		sc.pages[sc.c.LeafID()] = true
	}
}

func (sc *storeCursor) next() error {
	ok, err := sc.c.Next()
	if err != nil {
		return err
	}
	sc.set(ok)
	return nil
}

// JoinPages reports the distinct data pages each side of a stored
// join touched.
type JoinPages struct {
	Left, Right int
}

// SpatialJoinStores merges two stored element relations, streaming
// overlap pairs to fn (return false to stop). It is the disk-resident
// form of SpatialJoin: one sequential pass over each relation's
// leaves — the access pattern for which "the LRU buffering strategy
// will work well" (Section 4) — with page counts reported.
func SpatialJoinStores(a, b *ElementStore, fn func(Pair) bool) (JoinPages, error) {
	var pages JoinPages
	ca, err := newStoreCursor(a)
	if err != nil {
		return pages, err
	}
	cb, err := newStoreCursor(b)
	if err != nil {
		return pages, err
	}
	const total = zorder.MaxBits
	var stackA, stackB []Item
	pop := func(stack []Item, minZ uint64) []Item {
		for len(stack) > 0 && stack[len(stack)-1].Elem.MaxZ(total) < minZ {
			stack = stack[:len(stack)-1]
		}
		return stack
	}
	stop := false
	for !stop && (ca.valid || cb.valid) {
		fromA := !cb.valid || (ca.valid && ca.cur.Elem.Compare(cb.cur.Elem) <= 0)
		var it Item
		if fromA {
			it = ca.cur
			if err := ca.next(); err != nil {
				return pages, err
			}
		} else {
			it = cb.cur
			if err := cb.next(); err != nil {
				return pages, err
			}
		}
		minZ := it.Elem.MinZ()
		stackA = pop(stackA, minZ)
		stackB = pop(stackB, minZ)
		if fromA {
			for _, s := range stackB {
				if !fn(Pair{A: it.ID, B: s.ID}) {
					stop = true
					break
				}
			}
			stackA = append(stackA, it)
		} else {
			for _, s := range stackA {
				if !fn(Pair{A: s.ID, B: it.ID}) {
					stop = true
					break
				}
			}
			stackB = append(stackB, it)
		}
	}
	pages.Left = len(ca.pages)
	pages.Right = len(cb.pages)
	return pages, nil
}

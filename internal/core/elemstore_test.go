package core

import (
	"math/rand"
	"testing"

	"probe/internal/btree"
	"probe/internal/decompose"
	"probe/internal/disk"
	"probe/internal/geom"
	"probe/internal/zorder"
)

func newStore(t *testing.T, g zorder.Grid) *ElementStore {
	t.Helper()
	pool := disk.MustPool(disk.MustMemStore(1024), 128, disk.LRU)
	s, err := NewElementStore(pool, g, 20)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestElementStoreKeyOrderIsZOrder(t *testing.T) {
	// Insert elements in shuffled order; scanning must return them in
	// z order with containers first.
	g := zorder.MustGrid(2, 6)
	elems := []string{"1", "0110", "0", "01", "011", "10", "0111", "00"}
	s := newStore(t, g)
	for i, es := range elems {
		if err := s.Insert(Item{Elem: zorder.MustParseElement(es), ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []Item
	if err := s.Scan(func(it Item) bool { got = append(got, it); return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(elems) {
		t.Fatalf("scan returned %d items", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Elem.Compare(got[i].Elem) > 0 {
			t.Fatalf("scan out of z order at %d: %v then %v", i, got[i-1].Elem, got[i].Elem)
		}
	}
	if got[0].Elem.String() != "0" || got[len(got)-1].Elem.String() != "10" {
		t.Errorf("order endpoints wrong: %v ... %v", got[0].Elem, got[len(got)-1].Elem)
	}
}

func TestElementStoreKeyOrderProperty(t *testing.T) {
	// The packed key order must equal element z order (with id
	// tiebreak) on random elements.
	g := zorder.MustGrid(2, 8)
	rng := rand.New(rand.NewSource(61))
	s := &ElementStore{g: g}
	for trial := 0; trial < 3000; trial++ {
		n1 := rng.Intn(g.TotalBits() + 1)
		n2 := rng.Intn(g.TotalBits() + 1)
		a := Item{Elem: zorder.NewElement(rng.Uint64()&(1<<uint(n1)-1), n1), ID: uint64(rng.Intn(100))}
		b := Item{Elem: zorder.NewElement(rng.Uint64()&(1<<uint(n2)-1), n2), ID: uint64(rng.Intn(100))}
		ka, err := s.key(a)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := s.key(b)
		if err != nil {
			t.Fatal(err)
		}
		cmp := a.Elem.Compare(b.Elem)
		if cmp == 0 {
			continue // tie broken by id; both orders acceptable
		}
		if (cmp < 0) != ka.Less(kb) {
			t.Fatalf("key order mismatch: %v vs %v", a.Elem, b.Elem)
		}
	}
}

func TestElementStoreValidation(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	s := newStore(t, g)
	if err := s.Insert(Item{Elem: zorder.MustParseElement("01"), ID: 1 << 60}); err == nil {
		t.Errorf("oversized id accepted")
	}
	long := zorder.NewElement(0, 20) // longer than the 8-bit grid
	if err := s.Insert(Item{Elem: long, ID: 1}); err == nil {
		t.Errorf("over-long element accepted")
	}
	it := Item{Elem: zorder.MustParseElement("01"), ID: 1}
	if err := s.Insert(it); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(it); err != btree.ErrDuplicateKey {
		t.Errorf("duplicate item: %v", err)
	}
	ok, err := s.Delete(it)
	if err != nil || !ok {
		t.Errorf("delete failed: %v %v", ok, err)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
	if _, err := s.Delete(Item{Elem: zorder.MustParseElement("01"), ID: 1 << 60}); err == nil {
		t.Errorf("oversized id accepted by delete")
	}
	if s.Grid() != g || s.Tree() == nil {
		t.Errorf("accessors wrong")
	}
}

// TestSpatialJoinStoresMatchesInMemory: the disk-resident join equals
// the in-memory join on random box relations.
func TestSpatialJoinStoresMatchesInMemory(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	for seed := int64(0); seed < 4; seed++ {
		left := randomBoxes(g, 12, seed*2+71)
		right := randomBoxes(g, 12, seed*2+72)
		aItems := decomposeBoxes(g, left)
		bItems := decomposeBoxes(g, right)

		sa := newStore(t, g)
		sb := newStore(t, g)
		for _, it := range aItems {
			if err := sa.Insert(it); err != nil {
				t.Fatal(err)
			}
		}
		for _, it := range bItems {
			if err := sb.Insert(it); err != nil {
				t.Fatal(err)
			}
		}
		var got []Pair
		pages, err := SpatialJoinStores(sa, sb, func(p Pair) bool {
			got = append(got, p)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := SpatialJoin(aItems, bItems)
		if err != nil {
			t.Fatal(err)
		}
		if !equalPairs(DedupPairs(got), DedupPairs(want)) {
			t.Fatalf("seed %d: stored join disagrees: %d vs %d raw pairs",
				seed, len(got), len(want))
		}
		if pages.Left == 0 || pages.Right == 0 {
			t.Fatalf("seed %d: no pages counted: %+v", seed, pages)
		}
	}
}

// TestJoinStoresOnePassLRU validates the Section 4 buffering claim:
// with a small LRU pool, the stored join physically reads each leaf
// page about once — "each page is accessed at most once, its contents
// are processed, and then the page will not be needed again".
func TestJoinStoresOnePassLRU(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	store := disk.MustMemStore(1024)
	pool := disk.MustPool(store, 8, disk.LRU) // tiny pool
	sa, err := NewElementStore(pool, g, 20)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewElementStore(pool, g, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(73))
	for id := uint64(1); id <= 60; id++ {
		x := uint32(rng.Intn(200))
		y := uint32(rng.Intn(200))
		b := geom.Box2(x, x+uint32(rng.Intn(50)), y, y+uint32(rng.Intn(50)))
		target := sa
		if id%2 == 0 {
			target = sb
		}
		if err := target.InsertObject(id, decompose.Box(g, b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Invalidate(); err != nil {
		t.Fatal(err)
	}
	store.ResetStats()
	pairs := 0
	pages, err := SpatialJoinStores(sa, sb, func(Pair) bool { pairs++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if pairs == 0 {
		t.Fatal("join found nothing; workload broken")
	}
	reads := int(store.Stats().Reads)
	// One pass: physical reads should be close to the distinct leaf
	// pages, never a multiple of them. The cursor reads each internal
	// node once per stream as its cached descent path advances; the
	// (L+R)/8 term covers every internal node at the tree's fanout
	// while staying far below a second pass over the leaves.
	budget := pages.Left + pages.Right + (pages.Left+pages.Right)/8 +
		sa.Tree().Height() + sb.Tree().Height() + 4
	if reads > budget {
		t.Errorf("join performed %d physical reads for %d+%d leaf pages (budget %d): not one-pass",
			reads, pages.Left, pages.Right, budget)
	}
}

func TestSpatialJoinStoresEarlyStop(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	sa := newStore(t, g)
	sb := newStore(t, g)
	whole := decompose.Box(g, geom.FullBox(g))
	for id := uint64(1); id <= 5; id++ {
		sa.InsertObject(id, whole)
		sb.InsertObject(id+100, whole)
	}
	n := 0
	if _, err := SpatialJoinStores(sa, sb, func(Pair) bool { n++; return n < 3 }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("early stop delivered %d pairs", n)
	}
}

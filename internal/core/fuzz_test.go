package core

import (
	"testing"

	"probe/internal/zorder"
)

// Native fuzz targets for the join layer: the input-sorting validator
// that guards SpatialJoin, and the z-prefix partitioner under the
// parallel join. `go test` runs the seed corpus; e.g.
// `go test -fuzz=FuzzPartitionZ ./internal/core` digs deeper.

// fuzzItems decodes a byte string into an element relation, two bytes
// per item: (bits, len mod 17). Sorted with SortItems it is a valid
// join input; raw, it exercises the validators.
func fuzzItems(data []byte) []Item {
	var items []Item
	for i := 0; i+1 < len(data); i += 2 {
		n := int(data[i+1] % 17)
		items = append(items, Item{
			Elem: zorder.NewElement(uint64(data[i])&(1<<uint(n)-1), n),
			ID:   uint64(i / 2),
		})
	}
	return items
}

// FuzzSpatialJoinSortingValidation: SpatialJoin and the partitioned
// parallel join must agree on whether an input is acceptable —
// exactly the inputs checkSorted admits — and must never emit pairs
// from a rejected input.
func FuzzSpatialJoinSortingValidation(f *testing.F) {
	f.Add([]byte{0b01, 2, 0b011, 3}, uint8(2))
	f.Add([]byte{0xff, 16, 0x00, 1, 0x80, 9}, uint8(0))
	f.Add([]byte{1, 4, 1, 4, 1, 4}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, pbRaw uint8) {
		items := fuzzItems(data)
		sorted := append([]Item(nil), items...)
		SortItems(sorted)
		wantErr := checkSorted(items) != nil

		_, seqErr := SpatialJoin(items, sorted)
		if (seqErr != nil) != wantErr {
			t.Fatalf("sequential join error = %v, checkSorted rejects = %v", seqErr, wantErr)
		}
		cfg := ParallelJoinConfig{Workers: 1 + int(pbRaw%4), PrefixBits: int(pbRaw % 9)}
		pairs, parErr := SpatialJoinParallel(items, sorted, cfg)
		if (parErr != nil) != wantErr {
			t.Fatalf("parallel join error = %v, checkSorted rejects = %v", parErr, wantErr)
		}
		if parErr != nil && len(pairs) != 0 {
			t.Fatalf("rejected input still produced %d pairs", len(pairs))
		}
		// On valid inputs the two joins must agree after projection.
		if !wantErr {
			seq, _ := SpatialJoin(items, sorted)
			if !equalPairs(DedupPairs(pairs), DedupPairs(seq)) {
				t.Fatalf("parallel and sequential joins disagree")
			}
		}
	})
}

// FuzzPartitionZ: on any sorted input pair and any legal prefix, the
// partitioner must produce sorted shards, place every element in its
// covered shard range, and lose no join pairs.
func FuzzPartitionZ(f *testing.F) {
	f.Add([]byte{0, 0, 1, 3, 0x55, 8}, []byte{0x80, 1, 0x42, 7}, uint8(3))
	f.Add([]byte{9, 16, 9, 15}, []byte{9, 14}, uint8(6))
	f.Add([]byte{}, []byte{1, 1}, uint8(1))
	f.Fuzz(func(t *testing.T, da, db []byte, pbRaw uint8) {
		pb := int(pbRaw % (maxPartitionBits + 1))
		a := fuzzItems(da)
		b := fuzzItems(db)
		SortItems(a)
		SortItems(b)
		parts, err := PartitionZ(a, b, pb)
		if err != nil {
			t.Fatalf("sorted input rejected: %v", err)
		}
		shift := uint(64 - pb)
		for _, part := range parts {
			for _, side := range [][]Item{part.A, part.B} {
				if err := checkSorted(side); err != nil {
					t.Fatalf("prefix %d: shard unsorted: %v", pb, err)
				}
			}
		}
		if pb > 0 {
			// Every shard member must actually cover or live in a shard:
			// its z range must intersect some prefix bucket it was put
			// in. Reconstruct buckets by re-scattering and compare.
			shards := make([][]Item, 1<<pb)
			if err := scatter(a, pb, shards); err != nil {
				t.Fatal(err)
			}
			for s, items := range shards {
				for _, it := range items {
					lo := it.Elem.MinZ() >> shift
					hi := it.Elem.MaxZ(zorder.MaxBits) >> shift
					if uint64(s) < lo || uint64(s) > hi {
						t.Fatalf("prefix %d: item %v scattered to shard %d outside [%d,%d]",
							pb, it, s, lo, hi)
					}
				}
			}
		}
		// No pairs lost or invented: shard-wise join == sequential join
		// after projection.
		var shardPairs []Pair
		for _, part := range parts {
			err := spatialJoinFunc(nil, part.A, part.B, nil, func(p Pair) bool {
				shardPairs = append(shardPairs, p)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		seq, err := SpatialJoin(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !equalPairs(DedupPairs(shardPairs), DedupPairs(seq)) {
			t.Fatalf("prefix %d: partitioned join changed the distinct pair set", pb)
		}
	})
}

// Package core implements the paper's primary contribution: spatial
// query processing on z-ordered element sequences. It provides the
// point index (a zkd prefix B+-tree storing shuffled points, the
// sequence P of Section 3.3), the range-search merge in its three
// successively optimized forms, and the spatial join operator
// R[zr <> zs]S of Section 4.
package core

import (
	"fmt"

	"probe/internal/btree"
	"probe/internal/decompose"
	"probe/internal/disk"
	"probe/internal/geom"
	"probe/internal/zorder"
)

// IndexConfig tunes a point index.
type IndexConfig struct {
	// LeafCapacity is the B+-tree leaf capacity in points. Zero
	// derives it from the page size. The paper's experiments use 20.
	LeafCapacity int
}

// Index stores points of a grid in z order inside a prefix B+-tree:
// step 1 of the range-search algorithm ("Compute the z value of each
// point... form a sequence of points ordered by z value").
//
// A point's tree key is (z value, point id); the id both
// disambiguates points sharing a pixel and travels with the entry, so
// no separate value payload is needed — coordinates are recovered by
// unshuffling the z value.
//
// Thread safety: an Index is safe for concurrent *readers* —
// RangeSearch, PartialMatch, Nearest, and Decompose may run from many
// goroutines against one index sharing one buffer pool (the
// underlying tree and pool latch internally). Writers (Insert,
// Delete, BulkLoad) exclude readers at the tree latch but callers
// must not expect snapshot isolation: interleave writes and scans
// only if phantom/missed rows are acceptable. See docs/parallelism.md
// for the full layer-by-layer contract.
type Index struct {
	g    zorder.Grid
	tree *btree.Tree
}

// NewIndex creates an empty index over grid g on the pool.
func NewIndex(pool *disk.Pool, g zorder.Grid, cfg IndexConfig) (*Index, error) {
	tree, err := btree.New(pool, btree.Config{ValueSize: 0, LeafCapacity: cfg.LeafCapacity})
	if err != nil {
		return nil, err
	}
	return &Index{g: g, tree: tree}, nil
}

// OpenIndex reattaches to an existing index whose tree pages live on
// the pool's store, using metadata captured by Tree().Meta(). The
// durable database facade uses it on reopen.
func OpenIndex(pool *disk.Pool, g zorder.Grid, m btree.Meta) (*Index, error) {
	if m.ValueSize != 0 {
		return nil, fmt.Errorf("core: index tree has value size %d, want 0", m.ValueSize)
	}
	tree, err := btree.Attach(pool, m)
	if err != nil {
		return nil, err
	}
	return &Index{g: g, tree: tree}, nil
}

// Grid returns the index's grid.
func (ix *Index) Grid() zorder.Grid { return ix.g }

// Tree exposes the underlying B+-tree (for statistics and the
// experiment harness).
func (ix *Index) Tree() *btree.Tree { return ix.tree }

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.tree.Len() }

// key builds the tree key of a point.
func (ix *Index) key(p geom.Point) (btree.Key, error) {
	if !ix.g.Valid(p.Coords) {
		return btree.Key{}, fmt.Errorf("core: point %v outside %v", p, ix.g)
	}
	return btree.Key{Hi: ix.g.ShuffleKey(p.Coords), Lo: p.ID}, nil
}

// Insert adds a point. Point ids must be unique per pixel.
func (ix *Index) Insert(p geom.Point) error {
	k, err := ix.key(p)
	if err != nil {
		return err
	}
	return ix.tree.Insert(k, nil)
}

// Delete removes a point previously inserted. It reports whether the
// point was present.
func (ix *Index) Delete(p geom.Point) (bool, error) {
	k, err := ix.key(p)
	if err != nil {
		return false, err
	}
	return ix.tree.Delete(k)
}

// BulkLoad inserts all points, failing on the first error.
func (ix *Index) BulkLoad(pts []geom.Point) error {
	for _, p := range pts {
		if err := ix.Insert(p); err != nil {
			return fmt.Errorf("core: bulk load point %d: %w", p.ID, err)
		}
	}
	return nil
}

// Decompose runs the object decomposition on the index's grid: the
// Decompose operator of Section 4, yielding the element relation for
// one object.
func (ix *Index) Decompose(obj geom.Object, opts decompose.Options) ([]zorder.Element, error) {
	return decompose.Object(ix.g, obj, opts)
}

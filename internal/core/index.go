// Package core implements the paper's primary contribution: spatial
// query processing on z-ordered element sequences. It provides the
// point index (a zkd prefix B+-tree storing shuffled points, the
// sequence P of Section 3.3), the range-search merge in its three
// successively optimized forms, and the spatial join operator
// R[zr <> zs]S of Section 4.
package core

import (
	"fmt"

	"probe/internal/btree"
	"probe/internal/decompose"
	"probe/internal/disk"
	"probe/internal/geom"
	"probe/internal/zorder"
)

// IndexConfig tunes a point index.
type IndexConfig struct {
	// LeafCapacity is the B+-tree leaf capacity in points. Zero
	// derives it from the page size. The paper's experiments use 20.
	LeafCapacity int
}

// cursorSource is the tree view a reader runs its merges against:
// either the live tree (cursors track the newest committed version)
// or one pinned snapshot (cursors see a frozen version). Both sides
// of the interface are in internal/btree; the indirection is what
// lets one implementation of the search algorithms serve both.
type cursorSource interface {
	Cursor() *btree.Cursor
	Len() int
}

// reader bundles a grid with a cursor source and carries every
// read-only query method — RangeSearch and friends, PartialMatch,
// Nearest, Decompose. Index embeds a live reader; IndexSnapshot
// embeds a pinned one.
type reader struct {
	g   zorder.Grid
	src cursorSource
}

// Grid returns the grid the points live on.
func (ix *reader) Grid() zorder.Grid { return ix.g }

// Len returns the number of indexed points.
func (ix *reader) Len() int { return ix.src.Len() }

// Decompose runs the object decomposition on the index's grid: the
// Decompose operator of Section 4, yielding the element relation for
// one object.
func (ix *reader) Decompose(obj geom.Object, opts decompose.Options) ([]zorder.Element, error) {
	return decompose.Object(ix.g, obj, opts)
}

// Index stores points of a grid in z order inside a prefix B+-tree:
// step 1 of the range-search algorithm ("Compute the z value of each
// point... form a sequence of points ordered by z value").
//
// A point's tree key is (z value, point id); the id both
// disambiguates points sharing a pixel and travels with the entry, so
// no separate value payload is needed — coordinates are recovered by
// unshuffling the z value.
//
// Thread safety: an Index is safe for concurrent readers —
// RangeSearch, PartialMatch, Nearest, and Decompose may run from many
// goroutines against one index sharing one buffer pool. The tree is
// multi-versioned: readers run against committed versions without
// blocking behind writers (Insert, Delete, BulkLoad), which serialize
// among themselves only. A query on the Index itself observes the
// newest committed version at each cursor step; a query that must
// observe one frozen version end to end runs on Snapshot(). See
// docs/mvcc.md for the full contract.
type Index struct {
	reader
	tree *btree.Tree
}

func newIndexOver(g zorder.Grid, tree *btree.Tree) *Index {
	return &Index{reader: reader{g: g, src: tree}, tree: tree}
}

// NewIndex creates an empty index over grid g on the pool.
func NewIndex(pool *disk.Pool, g zorder.Grid, cfg IndexConfig) (*Index, error) {
	tree, err := btree.New(pool, btree.Config{ValueSize: 0, LeafCapacity: cfg.LeafCapacity})
	if err != nil {
		return nil, err
	}
	return newIndexOver(g, tree), nil
}

// OpenIndex reattaches to an existing index whose tree pages live on
// the pool's store, using metadata captured by Tree().Meta(). The
// durable database facade uses it on reopen.
func OpenIndex(pool *disk.Pool, g zorder.Grid, m btree.Meta) (*Index, error) {
	if m.ValueSize != 0 {
		return nil, fmt.Errorf("core: index tree has value size %d, want 0", m.ValueSize)
	}
	tree, err := btree.Attach(pool, m)
	if err != nil {
		return nil, err
	}
	return newIndexOver(g, tree), nil
}

// Tree exposes the underlying B+-tree (for statistics and the
// experiment harness).
func (ix *Index) Tree() *btree.Tree { return ix.tree }

// IndexSnapshot is a read-only view of an Index at one committed tree
// version. All reader methods — RangeSearch, PartialMatch, Nearest —
// run against exactly that version, so a multi-statement computation
// (or one wire request) observes a single consistent state however
// many writes commit meanwhile. Snapshots are cheap to open, safe for
// concurrent use, and must be Released to let superseded pages be
// reclaimed.
type IndexSnapshot struct {
	reader
	snap *btree.Snapshot
}

// Snapshot pins the index's current committed version and returns a
// read-only view of it. The caller must Release it.
func (ix *Index) Snapshot() *IndexSnapshot {
	s := ix.tree.Snapshot()
	return &IndexSnapshot{reader: reader{g: ix.g, src: s}, snap: s}
}

// Release unpins the snapshot's tree version. It is idempotent; using
// the snapshot afterwards is a bug.
func (s *IndexSnapshot) Release() { s.snap.Release() }

// Seq returns the committed tree version the snapshot observes.
func (s *IndexSnapshot) Seq() uint64 { return s.snap.Seq() }

// key builds the tree key of a point.
func (ix *reader) key(p geom.Point) (btree.Key, error) {
	if !ix.g.Valid(p.Coords) {
		return btree.Key{}, fmt.Errorf("core: point %v outside %v", p, ix.g)
	}
	return btree.Key{Hi: ix.g.ShuffleKey(p.Coords), Lo: p.ID}, nil
}

// Contains reports whether the exact point (pixel and id) is present
// in the snapshot's version. Transactions use it for duplicate checks
// and read-your-writes delete semantics.
func (s *IndexSnapshot) Contains(p geom.Point) (bool, error) {
	k, err := s.key(p)
	if err != nil {
		return false, err
	}
	_, ok, err := s.snap.Get(k)
	return ok, err
}

// PointMutation is one buffered transaction write at the point level.
type PointMutation struct {
	Point  geom.Point
	Delete bool
}

// CommitBatch applies a transaction's buffered point mutations as one
// atomic tree publication, after first-committer-wins validation
// against every version committed since baseSeq (the sequence of the
// transaction's pinned snapshot). It returns btree.ErrConflict when
// validation fails; on any error nothing is applied.
func (ix *Index) CommitBatch(baseSeq uint64, muts []PointMutation) error {
	bm := make([]btree.Mutation, len(muts))
	for i, m := range muts {
		k, err := ix.key(m.Point)
		if err != nil {
			return err
		}
		bm[i] = btree.Mutation{Key: k, Delete: m.Delete}
	}
	return ix.tree.CommitBatch(baseSeq, bm)
}

// Insert adds a point. Point ids must be unique per pixel.
func (ix *Index) Insert(p geom.Point) error {
	k, err := ix.key(p)
	if err != nil {
		return err
	}
	return ix.tree.Insert(k, nil)
}

// Delete removes a point previously inserted. It reports whether the
// point was present.
func (ix *Index) Delete(p geom.Point) (bool, error) {
	k, err := ix.key(p)
	if err != nil {
		return false, err
	}
	return ix.tree.Delete(k)
}

// BulkLoad inserts all points, failing on the first error.
func (ix *Index) BulkLoad(pts []geom.Point) error {
	for _, p := range pts {
		if err := ix.Insert(p); err != nil {
			return fmt.Errorf("core: bulk load point %d: %w", p.ID, err)
		}
	}
	return nil
}

package core

import (
	"context"
	"fmt"
	"sort"

	"probe/internal/obs"
	"probe/internal/zorder"
)

// Item is one row of a decomposed object relation: an element tagged
// with the identifier of the object that produced it — the (id@, z)
// tuples that Decompose yields in Section 4.
type Item struct {
	Elem zorder.Element
	ID   uint64
}

// Pair records that object A (from the left relation) overlaps object
// B (from the right relation).
type Pair struct {
	A, B uint64
}

// SortItems sorts a decomposed relation into z order, the order the
// spatial join requires.
func SortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		if c := items[i].Elem.Compare(items[j].Elem); c != 0 {
			return c < 0
		}
		return items[i].ID < items[j].ID
	})
}

// SpatialJoin computes R[zr <> zs]S: every pair of items (r, s) such
// that r's element contains s's or vice versa, i.e. their regions
// overlap. Both inputs must be sorted in z order (SortItems); an
// unsorted input is reported as an error.
//
// The algorithm is the stack-based sequence merge enabled by the key
// structural property of Section 3.2: the only possible relationships
// between elements are containment and precedence, so the set of
// "open" elements at any z position forms a nesting stack per input.
// Time is O(len(a) + len(b) + pairs).
//
// The same object pair is emitted once per overlapping element pair;
// project with DedupPairs, as the paper projects out zr and zs to
// eliminate the redundancy.
func SpatialJoin(a, b []Item) ([]Pair, error) {
	return SpatialJoinTraced(a, b, nil)
}

// SpatialJoinTraced is SpatialJoin with merge-work attribution on sp
// (obs.MergeSteps, obs.RawPairs). A nil span behaves exactly like
// SpatialJoin at no cost.
func SpatialJoinTraced(a, b []Item, sp *obs.Span) ([]Pair, error) {
	if err := checkSorted(a); err != nil {
		return nil, fmt.Errorf("core: left input: %w", err)
	}
	if err := checkSorted(b); err != nil {
		return nil, fmt.Errorf("core: right input: %w", err)
	}
	var pairs []Pair
	err := spatialJoinFunc(nil, a, b, sp, func(p Pair) bool {
		pairs = append(pairs, p)
		return true
	})
	return pairs, err
}

func checkSorted(items []Item) error {
	for i := 1; i < len(items); i++ {
		if items[i].Elem.Compare(items[i-1].Elem) < 0 {
			return fmt.Errorf("items not in z order at position %d", i)
		}
	}
	return nil
}

// joinCancelStride is how many merge steps a join runs between
// context checks: frequent enough that a cancelled join stops within
// microseconds, sparse enough that the ctx.Err call (a mutex
// acquisition on cancelable contexts) stays off the hot path.
const joinCancelStride = 1024

// spatialJoinFunc is the streaming form of SpatialJoin. The span, if
// non-nil, receives one obs.MergeSteps per item the merge consumes
// and one obs.RawPairs per emitted pair (added in bulk at return, so
// the hot loop stays free of atomics). A non-nil ctx is checked every
// joinCancelStride merge steps; a nil ctx is never cancelled.
func spatialJoinFunc(ctx context.Context, a, b []Item, sp *obs.Span, fn func(Pair) bool) error {
	const total = zorder.MaxBits
	var stackA, stackB []Item
	i, j := 0, 0
	steps, emitted := 0, 0
	defer func() {
		sp.Add(obs.MergeSteps, int64(steps))
		sp.Add(obs.RawPairs, int64(emitted))
	}()
	pop := func(stack []Item, minZ uint64) []Item {
		for len(stack) > 0 && stack[len(stack)-1].Elem.MaxZ(total) < minZ {
			stack = stack[:len(stack)-1]
		}
		return stack
	}
	for i < len(a) || j < len(b) {
		steps++
		if ctx != nil && steps%joinCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		fromA := j >= len(b) || (i < len(a) && a[i].Elem.Compare(b[j].Elem) <= 0)
		var it Item
		if fromA {
			it = a[i]
			i++
		} else {
			it = b[j]
			j++
		}
		minZ := it.Elem.MinZ()
		stackA = pop(stackA, minZ)
		stackB = pop(stackB, minZ)
		if fromA {
			for _, s := range stackB {
				emitted++
				if !fn(Pair{A: it.ID, B: s.ID}) {
					return nil
				}
			}
			stackA = append(stackA, it)
		} else {
			for _, s := range stackA {
				emitted++
				if !fn(Pair{A: s.ID, B: it.ID}) {
					return nil
				}
			}
			stackB = append(stackB, it)
		}
	}
	return nil
}

// DedupPairs sorts the pairs and removes duplicates: the projection
// that eliminates the multiply-reported overlaps.
func DedupPairs(pairs []Pair) []Pair {
	if len(pairs) == 0 {
		return pairs
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	out := pairs[:1]
	for _, p := range pairs[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// JoinStats describes one spatial-join execution.
type JoinStats struct {
	LeftItems, RightItems int
	RawPairs              int
	DistinctPairs         int
}

// SpatialJoinDistinct runs the join and the deduplicating projection,
// returning distinct overlapping object pairs plus statistics.
func SpatialJoinDistinct(a, b []Item) ([]Pair, JoinStats, error) {
	return SpatialJoinDistinctTraced(a, b, nil)
}

// SpatialJoinDistinctTraced is SpatialJoinDistinct with per-operator
// attribution on sp: input sizes, merge steps, raw and distinct pair
// counts. A nil span behaves exactly like SpatialJoinDistinct at no
// cost.
func SpatialJoinDistinctTraced(a, b []Item, sp *obs.Span) ([]Pair, JoinStats, error) {
	return SpatialJoinDistinctCtx(nil, a, b, sp)
}

// SpatialJoinDistinctCtx is SpatialJoinDistinctTraced under a
// cancellation context, checked every joinCancelStride merge steps
// (nil = never cancelled).
func SpatialJoinDistinctCtx(ctx context.Context, a, b []Item, sp *obs.Span) ([]Pair, JoinStats, error) {
	stats := JoinStats{LeftItems: len(a), RightItems: len(b)}
	sp.Add(obs.ItemsLeft, int64(len(a)))
	sp.Add(obs.ItemsRight, int64(len(b)))
	if err := checkSorted(a); err != nil {
		return nil, stats, fmt.Errorf("core: left input: %w", err)
	}
	if err := checkSorted(b); err != nil {
		return nil, stats, fmt.Errorf("core: right input: %w", err)
	}
	var raw []Pair
	if err := spatialJoinFunc(ctx, a, b, sp, func(p Pair) bool {
		raw = append(raw, p)
		return true
	}); err != nil {
		return nil, stats, err
	}
	stats.RawPairs = len(raw)
	out := DedupPairs(raw)
	stats.DistinctPairs = len(out)
	sp.Add(obs.DistinctPairs, int64(len(out)))
	return out, stats, nil
}

package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"probe/internal/obs"
)

// ParallelJoinConfig tunes SpatialJoinParallel.
type ParallelJoinConfig struct {
	// Workers is the degree of parallelism: the number of goroutines
	// joining shards. Zero or negative selects runtime.GOMAXPROCS(0).
	Workers int
	// PrefixBits is the z-prefix length at which the inputs are cut
	// into shards (up to 2^PrefixBits of them). Zero or negative
	// derives a value from Workers (≥ 4 shards per worker, so uneven
	// shards even out). One shard per worker would also be correct;
	// more just balances better.
	PrefixBits int
}

func (cfg ParallelJoinConfig) workers() int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func maxElemLen(a, b []Item) int {
	m := 0
	for _, it := range a {
		if int(it.Elem.Len) > m {
			m = int(it.Elem.Len)
		}
	}
	for _, it := range b {
		if int(it.Elem.Len) > m {
			m = int(it.Elem.Len)
		}
	}
	return m
}

func (cfg ParallelJoinConfig) prefixBits(workers int) int {
	if cfg.PrefixBits > 0 {
		if cfg.PrefixBits > maxPartitionBits {
			return maxPartitionBits
		}
		return cfg.PrefixBits
	}
	return partitionBitsFor(workers)
}

// SpatialJoinParallel computes the same join as SpatialJoin by
// cutting both inputs at common z-prefix boundaries (PartitionZ) and
// fanning the shards out across a bounded worker pool. Shard outputs
// are concatenated in shard order, so the result is deterministic —
// independent of scheduling — and, after the DedupPairs projection,
// identical to the sequential join's (replicated ancestors make some
// raw pairs appear in several shards; the projection the paper
// already prescribes removes them).
//
// Both inputs must be sorted in z order (SortItems). The concurrency
// is pure fan-out over immutable slices: workers share nothing but
// the input arrays and write disjoint result slots.
func SpatialJoinParallel(a, b []Item, cfg ParallelJoinConfig) ([]Pair, error) {
	return SpatialJoinParallelTraced(a, b, cfg, nil)
}

// SpatialJoinParallelTraced is SpatialJoinParallel with per-shard
// attribution on sp: one child span per shard (created serially in
// shard order, so the trace tree is deterministic) carrying the
// shard's input sizes, merge steps, raw pairs, and wall time, plus
// obs.Shards and obs.ReplicatedItems totals on sp itself. Each
// counter is recorded at exactly one level — per-shard work on the
// shard spans, shard-level facts on sp — so sp.Total aggregates
// without double counting: Total(obs.RawPairs) equals the join's raw
// pair count, and Total(obs.ItemsLeft)+Total(obs.ItemsRight) equals
// the items the workers actually processed (the inputs, plus
// ancestor replication, minus items routed only to pruned one-sided
// shards). obs.ReplicatedItems is that processed total's excess over
// the inputs, clamped at zero — the net overhead of partitioning. A
// nil span behaves exactly like SpatialJoinParallel at no cost.
func SpatialJoinParallelTraced(a, b []Item, cfg ParallelJoinConfig, sp *obs.Span) ([]Pair, error) {
	return SpatialJoinParallelCtx(nil, a, b, cfg, sp)
}

// SpatialJoinParallelCtx is SpatialJoinParallelTraced under a
// cancellation context (nil = never cancelled): each shard's merge
// checks it every joinCancelStride steps, the dispatcher stops
// handing out shards once it is done, and the first context error
// observed is returned.
func SpatialJoinParallelCtx(ctx context.Context, a, b []Item, cfg ParallelJoinConfig, sp *obs.Span) ([]Pair, error) {
	workers := cfg.workers()
	pb := cfg.prefixBits(workers)
	// Cutting deeper than the finest element present only replicates:
	// an element shorter than the cut goes to every shard it covers.
	if m := maxElemLen(a, b); pb > m {
		pb = m
	}
	parts, err := PartitionZ(a, b, pb)
	if err != nil {
		return nil, err
	}
	results := make([][]Pair, len(parts))
	if len(parts) == 0 {
		return nil, nil
	}
	if workers > len(parts) {
		workers = len(parts)
	}
	sp.Add(obs.Shards, int64(len(parts)))
	// Shard spans are created up front, serially and in shard order, so
	// the child list is deterministic regardless of worker scheduling.
	var shardSpans []*obs.Span
	if sp != nil {
		shardSpans = make([]*obs.Span, len(parts))
		replicated := int64(-(len(a) + len(b)))
		for s := range parts {
			shardSpans[s] = sp.Child(fmt.Sprintf("shard-%03d", s))
			replicated += int64(len(parts[s].A) + len(parts[s].B))
		}
		if replicated > 0 {
			sp.Add(obs.ReplicatedItems, replicated)
		}
	}
	shardSpan := func(s int) *obs.Span {
		if shardSpans == nil {
			return nil
		}
		return shardSpans[s]
	}
	var (
		wg      sync.WaitGroup
		next    = make(chan int)
		errOnce sync.Once
		joinErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for s := range next {
				ss := shardSpan(s)
				ss.Add(obs.ItemsLeft, int64(len(parts[s].A)))
				ss.Add(obs.ItemsRight, int64(len(parts[s].B)))
				var pairs []Pair
				err := spatialJoinFunc(ctx, parts[s].A, parts[s].B, ss, func(p Pair) bool {
					pairs = append(pairs, p)
					return true
				})
				ss.End()
				if err != nil {
					// A cancelled shard (or, defensively, a failed
					// one) records the first error; remaining shards
					// drain quickly because they hit the same context.
					errOnce.Do(func() { joinErr = err })
					continue
				}
				results[s] = pairs
			}
		}()
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
dispatch:
	for s := range parts {
		select {
		case next <- s:
		case <-done:
			errOnce.Do(func() { joinErr = ctx.Err() })
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if joinErr != nil {
		return nil, joinErr
	}
	total := 0
	for _, r := range results {
		total += len(r)
	}
	out := make([]Pair, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

// SpatialJoinParallelDistinct is SpatialJoinParallel followed by the
// deduplicating projection: the parallel counterpart of
// SpatialJoinDistinct, with identical output.
func SpatialJoinParallelDistinct(a, b []Item, cfg ParallelJoinConfig) ([]Pair, JoinStats, error) {
	return SpatialJoinParallelDistinctTraced(a, b, cfg, nil)
}

// SpatialJoinParallelDistinctTraced is SpatialJoinParallelDistinct
// with per-shard attribution on sp (see SpatialJoinParallelTraced). A
// nil span disables tracing at no cost.
func SpatialJoinParallelDistinctTraced(a, b []Item, cfg ParallelJoinConfig, sp *obs.Span) ([]Pair, JoinStats, error) {
	return SpatialJoinParallelDistinctCtx(nil, a, b, cfg, sp)
}

// SpatialJoinParallelDistinctCtx is SpatialJoinParallelDistinctTraced
// under a cancellation context (nil = never cancelled; see
// SpatialJoinParallelCtx).
func SpatialJoinParallelDistinctCtx(ctx context.Context, a, b []Item, cfg ParallelJoinConfig, sp *obs.Span) ([]Pair, JoinStats, error) {
	stats := JoinStats{LeftItems: len(a), RightItems: len(b)}
	raw, err := SpatialJoinParallelCtx(ctx, a, b, cfg, sp)
	if err != nil {
		return nil, stats, fmt.Errorf("core: parallel join: %w", err)
	}
	stats.RawPairs = len(raw)
	out := DedupPairs(raw)
	stats.DistinctPairs = len(out)
	sp.Add(obs.DistinctPairs, int64(len(out)))
	return out, stats, nil
}

package core

import (
	"math/rand"
	"reflect"
	"testing"

	"probe/internal/zorder"
)

// The parallel join's correctness argument is differential: on any
// workload, parallel ≡ sequential ≡ brute-force O(n·m) oracle after
// the DedupPairs projection. The harness below runs it across grids
// of different dimensionality and depth, partition widths, and worker
// counts — at least 200 randomized workload/configuration runs.

func parallelConfigs() []ParallelJoinConfig {
	return []ParallelJoinConfig{
		{Workers: 1},                // degenerate pool, derived partitions
		{Workers: 2},                // derived partitions
		{Workers: 4, PrefixBits: 1}, // more workers than shards
		{Workers: 3, PrefixBits: 4}, // odd worker count, 16 shards
		{Workers: 8, PrefixBits: 7}, // many shards, deep cut
	}
}

func TestParallelJoinDifferential(t *testing.T) {
	grids := []zorder.Grid{
		zorder.MustGrid(1, 6),
		zorder.MustGrid(2, 4),
		zorder.MustGrid(2, 8),
		zorder.MustGrid(3, 4),
	}
	runs := 0
	for gi, g := range grids {
		rng := rand.New(rand.NewSource(int64(100 + gi)))
		for seed := int64(0); seed < 10; seed++ {
			na, nb := 3+rng.Intn(25), 3+rng.Intn(25)
			left := randomBoxes(g, na, 1000*int64(gi)+seed*2+1)
			right := randomBoxes(g, nb, 1000*int64(gi)+seed*2+2)
			a := decomposeBoxes(g, left)
			b := decomposeBoxes(g, right)
			want, _, err := SpatialJoinDistinct(a, b)
			if err != nil {
				t.Fatal(err)
			}
			oracle := bruteOverlaps(left, right)
			if !equalPairs(want, oracle) {
				t.Fatalf("grid %v seed %d: sequential join disagrees with oracle", g, seed)
			}
			for _, cfg := range parallelConfigs() {
				got, stats, err := SpatialJoinParallelDistinct(a, b, cfg)
				if err != nil {
					t.Fatalf("grid %v seed %d cfg %+v: %v", g, seed, cfg, err)
				}
				if !equalPairs(got, want) {
					t.Fatalf("grid %v seed %d cfg %+v: parallel %d pairs, sequential %d",
						g, seed, cfg, len(got), len(want))
				}
				if stats.DistinctPairs != len(got) || stats.RawPairs < stats.DistinctPairs {
					t.Fatalf("grid %v seed %d cfg %+v: stats inconsistent: %+v", g, seed, cfg, stats)
				}
				runs++
			}
		}
	}
	if runs < 200 {
		t.Fatalf("differential harness ran %d workloads, want >= 200", runs)
	}
}

// TestParallelJoinDeterministic: the raw (pre-projection) pair stream
// must not depend on goroutine scheduling — shard outputs are
// concatenated in shard order.
func TestParallelJoinDeterministic(t *testing.T) {
	g := zorder.MustGrid(2, 7)
	a := decomposeBoxes(g, randomBoxes(g, 40, 71))
	b := decomposeBoxes(g, randomBoxes(g, 40, 72))
	cfg := ParallelJoinConfig{Workers: 4, PrefixBits: 3}
	first, err := SpatialJoinParallel(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("workload produced no pairs; determinism test is vacuous")
	}
	for trial := 0; trial < 10; trial++ {
		again, err := SpatialJoinParallel(a, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("trial %d: raw pair stream differs between runs", trial)
		}
	}
}

func TestParallelJoinRejectsUnsorted(t *testing.T) {
	g := zorder.MustGrid(2, 5)
	items := decomposeBoxes(g, randomBoxes(g, 10, 91))
	if len(items) < 2 {
		t.Fatal("workload too small")
	}
	bad := append([]Item(nil), items...)
	bad[0], bad[len(bad)-1] = bad[len(bad)-1], bad[0]
	for _, pb := range []int{0, 3} {
		cfg := ParallelJoinConfig{Workers: 2, PrefixBits: pb}
		if _, err := SpatialJoinParallel(bad, items, cfg); err == nil {
			t.Errorf("prefix %d: unsorted left input accepted", pb)
		}
		if _, err := SpatialJoinParallel(items, bad, cfg); err == nil {
			t.Errorf("prefix %d: unsorted right input accepted", pb)
		}
	}
}

func TestParallelJoinEmptyInputs(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	items := decomposeBoxes(g, randomBoxes(g, 5, 93))
	for _, cfg := range parallelConfigs() {
		if pairs, err := SpatialJoinParallel(nil, items, cfg); err != nil || len(pairs) != 0 {
			t.Errorf("cfg %+v: join with empty left = (%d, %v)", cfg, len(pairs), err)
		}
		if pairs, err := SpatialJoinParallel(items, nil, cfg); err != nil || len(pairs) != 0 {
			t.Errorf("cfg %+v: join with empty right = (%d, %v)", cfg, len(pairs), err)
		}
		if pairs, err := SpatialJoinParallel(nil, nil, cfg); err != nil || len(pairs) != 0 {
			t.Errorf("cfg %+v: join of empties = (%d, %v)", cfg, len(pairs), err)
		}
	}
}

// TestPartitionZInvariants checks the partitioner's structural
// guarantees directly: every shard is sorted and nested like a valid
// join input, elements at least prefixBits long appear exactly once,
// and shorter "open ancestors" are replicated into every shard whose
// items they may contain.
func TestPartitionZInvariants(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	for seed := int64(0); seed < 8; seed++ {
		a := decomposeBoxes(g, randomBoxes(g, 20, 200+seed))
		b := decomposeBoxes(g, randomBoxes(g, 20, 300+seed))
		for _, bits := range []int{1, 2, 4, 6} {
			parts, err := PartitionZ(a, b, bits)
			if err != nil {
				t.Fatal(err)
			}
			countA := make(map[Item]int)
			for _, part := range parts {
				if len(part.A) == 0 || len(part.B) == 0 {
					t.Fatalf("bits %d: empty shard side survived", bits)
				}
				if err := checkSorted(part.A); err != nil {
					t.Fatalf("bits %d: left shard unsorted: %v", bits, err)
				}
				if err := checkSorted(part.B); err != nil {
					t.Fatalf("bits %d: right shard unsorted: %v", bits, err)
				}
				for _, it := range part.A {
					countA[it]++
				}
			}
			// Long elements appear at most once (their single shard may
			// have been dropped for an empty other side); short ones at
			// most their cover count.
			for it, n := range countA {
				cover := 1
				if int(it.Elem.Len) < bits {
					cover = 1 << (bits - int(it.Elem.Len))
				}
				if n > cover {
					t.Fatalf("bits %d: item %v appears %d times, cover only %d",
						bits, it, n, cover)
				}
			}
		}
	}
}

func TestPartitionZValidation(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	items := decomposeBoxes(g, randomBoxes(g, 5, 400))
	if _, err := PartitionZ(items, items, -1); err == nil {
		t.Error("negative prefix accepted")
	}
	if _, err := PartitionZ(items, items, maxPartitionBits+1); err == nil {
		t.Error("oversized prefix accepted")
	}
	bad := append([]Item(nil), items...)
	if len(bad) >= 2 {
		bad[0], bad[len(bad)-1] = bad[len(bad)-1], bad[0]
		if _, err := PartitionZ(bad, items, 3); err == nil {
			t.Error("unsorted left input accepted")
		}
		if _, err := PartitionZ(items, bad, 3); err == nil {
			t.Error("unsorted right input accepted")
		}
	}
}

func TestPartitionBitsForScalesWithWorkers(t *testing.T) {
	if got := partitionBitsFor(1); got != 0 {
		t.Errorf("1 worker should not partition, got %d bits", got)
	}
	for _, w := range []int{2, 4, 8, 16} {
		bits := partitionBitsFor(w)
		if 1<<bits < 4*w && bits < maxPartitionBits {
			t.Errorf("%d workers got %d bits (< 4x shards)", w, bits)
		}
		if bits > maxPartitionBits {
			t.Errorf("%d workers exceeded cap: %d bits", w, bits)
		}
	}
	if partitionBitsFor(1<<20) != maxPartitionBits {
		t.Error("huge worker count must clamp to the cap")
	}
}

package core

import (
	"math/rand"
	"testing"

	"probe/internal/decompose"
	"probe/internal/geom"
	"probe/internal/workload"
	"probe/internal/zorder"
)

// decomposeBoxes builds the element relation of a set of boxes.
func decomposeBoxes(g zorder.Grid, boxes []geom.Box) []Item {
	var items []Item
	for id, b := range boxes {
		for _, e := range decompose.Box(g, b) {
			items = append(items, Item{Elem: e, ID: uint64(id)})
		}
	}
	SortItems(items)
	return items
}

func randomBoxes(g zorder.Grid, n int, seed int64) []geom.Box {
	rng := rand.New(rand.NewSource(seed))
	boxes := make([]geom.Box, n)
	for i := range boxes {
		lo := make([]uint32, g.Dims())
		hi := make([]uint32, g.Dims())
		for d := range lo {
			a := uint32(rng.Uint64() % g.Side())
			b := uint32(rng.Uint64() % g.Side())
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		boxes[i] = geom.Box{Lo: lo, Hi: hi}
	}
	return boxes
}

func bruteOverlaps(a, b []geom.Box) []Pair {
	var pairs []Pair
	for i, ba := range a {
		for j, bb := range b {
			if ba.IntersectsBox(bb) {
				pairs = append(pairs, Pair{A: uint64(i), B: uint64(j)})
			}
		}
	}
	return DedupPairs(pairs)
}

func equalPairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSpatialJoinAgainstBruteForce: the join finds exactly the
// overlapping box pairs found by the O(n^2) all-pairs test.
func TestSpatialJoinAgainstBruteForce(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	for seed := int64(0); seed < 5; seed++ {
		left := randomBoxes(g, 15, seed*2+1)
		right := randomBoxes(g, 15, seed*2+2)
		got, stats, err := SpatialJoinDistinct(decomposeBoxes(g, left), decomposeBoxes(g, right))
		if err != nil {
			t.Fatal(err)
		}
		want := bruteOverlaps(left, right)
		if !equalPairs(got, want) {
			t.Fatalf("seed %d: join found %d pairs, brute force %d", seed, len(got), len(want))
		}
		if stats.DistinctPairs != len(got) || stats.RawPairs < stats.DistinctPairs {
			t.Fatalf("seed %d: stats inconsistent: %+v", seed, stats)
		}
	}
}

func TestSpatialJoin3D(t *testing.T) {
	g := zorder.MustGrid(3, 4)
	left := randomBoxes(g, 10, 31)
	right := randomBoxes(g, 10, 32)
	got, _, err := SpatialJoinDistinct(decomposeBoxes(g, left), decomposeBoxes(g, right))
	if err != nil {
		t.Fatal(err)
	}
	if !equalPairs(got, bruteOverlaps(left, right)) {
		t.Fatalf("3d join wrong")
	}
}

// TestRangeQueryAsSpatialJoin reproduces the Section 4 claim: "a
// range query is a special case in which one of the relations
// represents the set of points and the other relation represents the
// query region".
func TestRangeQueryAsSpatialJoin(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	pts := workload.Uniform(g, 400, 33)
	box := geom.Box2(10, 40, 5, 50)

	// Relation P: each point is a one-pixel element.
	var pItems []Item
	for _, p := range pts {
		pItems = append(pItems, Item{Elem: g.Shuffle(p.Coords), ID: p.ID})
	}
	SortItems(pItems)
	// Relation B: the decomposed box.
	var bItems []Item
	for _, e := range decompose.Box(g, box) {
		bItems = append(bItems, Item{Elem: e, ID: 0})
	}

	pairs, _, err := SpatialJoinDistinct(pItems, bItems)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for _, pr := range pairs {
		got = append(got, pr.A)
	}
	want := bruteIDs(pts, box)
	if !equalU64(got, want) {
		t.Fatalf("join-based range query: %d results, want %d", len(got), len(want))
	}
}

func TestSpatialJoinEmptyInputs(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	items := decomposeBoxes(g, []geom.Box{geom.Box2(0, 3, 0, 3)})
	if pairs, err := SpatialJoin(nil, items); err != nil || len(pairs) != 0 {
		t.Errorf("empty left: %v %v", pairs, err)
	}
	if pairs, err := SpatialJoin(items, nil); err != nil || len(pairs) != 0 {
		t.Errorf("empty right: %v %v", pairs, err)
	}
	if pairs, err := SpatialJoin(nil, nil); err != nil || len(pairs) != 0 {
		t.Errorf("both empty: %v %v", pairs, err)
	}
}

func TestSpatialJoinRejectsUnsorted(t *testing.T) {
	unsorted := []Item{
		{Elem: zorder.MustParseElement("10"), ID: 0},
		{Elem: zorder.MustParseElement("01"), ID: 1},
	}
	sorted := []Item{{Elem: zorder.MustParseElement("00"), ID: 0}}
	if _, err := SpatialJoin(unsorted, sorted); err == nil {
		t.Errorf("unsorted left accepted")
	}
	if _, err := SpatialJoin(sorted, unsorted); err == nil {
		t.Errorf("unsorted right accepted")
	}
}

func TestSpatialJoinIdenticalElements(t *testing.T) {
	e := zorder.MustParseElement("0101")
	a := []Item{{Elem: e, ID: 1}}
	b := []Item{{Elem: e, ID: 2}}
	pairs, err := SpatialJoin(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0] != (Pair{A: 1, B: 2}) {
		t.Errorf("identical elements: %v", pairs)
	}
}

func TestSpatialJoinContainmentBothDirections(t *testing.T) {
	// A large element in A containing a small one in B, and vice
	// versa elsewhere.
	a := []Item{
		{Elem: zorder.MustParseElement("00"), ID: 1},   // contains B's 0010
		{Elem: zorder.MustParseElement("1101"), ID: 2}, // contained in B's 11
	}
	b := []Item{
		{Elem: zorder.MustParseElement("0010"), ID: 10},
		{Elem: zorder.MustParseElement("11"), ID: 20},
	}
	pairs, err := SpatialJoin(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := DedupPairs(pairs)
	want := []Pair{{A: 1, B: 10}, {A: 2, B: 20}}
	if !equalPairs(got, want) {
		t.Errorf("pairs = %v, want %v", got, want)
	}
}

func TestDedupPairs(t *testing.T) {
	in := []Pair{{2, 1}, {1, 1}, {2, 1}, {1, 1}, {1, 2}}
	out := DedupPairs(in)
	want := []Pair{{1, 1}, {1, 2}, {2, 1}}
	if !equalPairs(out, want) {
		t.Errorf("DedupPairs = %v", out)
	}
	if len(DedupPairs(nil)) != 0 {
		t.Errorf("DedupPairs(nil) not empty")
	}
}

func TestSortItems(t *testing.T) {
	items := []Item{
		{Elem: zorder.MustParseElement("0110"), ID: 3},
		{Elem: zorder.MustParseElement("0"), ID: 2},
		{Elem: zorder.MustParseElement("01"), ID: 5},
		{Elem: zorder.MustParseElement("01"), ID: 1},
	}
	SortItems(items)
	if items[0].ID != 2 || items[1].ID != 1 || items[2].ID != 5 || items[3].ID != 3 {
		t.Errorf("SortItems order wrong: %v", items)
	}
	if err := checkSorted(items); err != nil {
		t.Errorf("sorted items rejected: %v", err)
	}
}

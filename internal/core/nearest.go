package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"probe/internal/btree"
	"probe/internal/disk"
	"probe/internal/geom"
	"probe/internal/zorder"
)

// This file implements proximity queries (Section 6: "Proximity
// queries can often be translated into containment or overlap
// queries"): k-nearest-neighbor search by repeated range queries over
// expanding boxes.

// Metric selects the distance for nearest-neighbor queries.
type Metric int

const (
	// Chebyshev is the L-infinity metric (max per-axis distance); an
	// L-infinity ball is exactly a box, so the translation to range
	// queries is lossless.
	Chebyshev Metric = iota
	// Euclidean is the L2 metric; the search runs on bounding boxes
	// and re-verifies with the true distance.
	Euclidean
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Chebyshev:
		return "chebyshev"
	case Euclidean:
		return "euclidean"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// Neighbor is one nearest-neighbor result.
type Neighbor struct {
	Point geom.Point
	// Dist is the distance to the query under the chosen metric.
	Dist float64
}

// Nearest returns the m indexed points nearest to q, sorted by
// distance (ties by id). It runs range searches over boxes of
// doubling radius until enough candidates are found, then shrinks to
// the certified radius — the containment/overlap translation of
// proximity queries. The returned stats aggregate all the underlying
// searches.
func (ix *reader) Nearest(q []uint32, m int, metric Metric, strategy Strategy) ([]Neighbor, SearchStats, error) {
	return ix.NearestCtx(nil, q, m, metric, strategy)
}

// NearestCtx is Nearest under a cancellation context: every
// underlying range search checks it (nil = never cancelled; see
// RangeSearchFuncCtx), so a cancelled proximity query stops between
// or inside its expansion rounds with the context's error.
func (ix *reader) NearestCtx(ctx context.Context, q []uint32, m int, metric Metric, strategy Strategy) ([]Neighbor, SearchStats, error) {
	var agg SearchStats
	if !ix.g.Valid(q) {
		return nil, agg, fmt.Errorf("core: query point %v outside %v", q, ix.g)
	}
	if m <= 0 {
		return nil, agg, fmt.Errorf("core: m = %d must be positive", m)
	}
	if metric != Chebyshev && metric != Euclidean {
		return nil, agg, fmt.Errorf("core: unknown metric %d", int(metric))
	}
	if ix.Len() == 0 {
		return nil, agg, nil
	}
	if m > ix.Len() {
		m = ix.Len()
	}
	// Phase 1: expand an L-infinity box until it holds >= m points.
	r := uint32(1)
	var candidates []geom.Point
	for {
		box := ix.ringBox(q, r)
		pts, stats, err := ix.RangeSearchCtx(ctx, box, strategy, nil)
		if err != nil {
			return nil, agg, err
		}
		accumulate(&agg, stats)
		candidates = pts
		if len(candidates) >= m || ix.coversSpace(box) {
			break
		}
		maxSide := uint64(0)
		for i := 0; i < ix.g.Dims(); i++ {
			if s := ix.g.SideOf(i); s > maxSide {
				maxSide = s
			}
		}
		if uint64(r) > maxSide {
			break
		}
		r *= 2
	}
	neighbors := ix.rank(q, candidates, metric)
	if len(neighbors) > m {
		neighbors = neighbors[:m]
	}
	if len(neighbors) < m {
		// Fewer points than requested inside the whole space: done.
		agg.Results = len(neighbors)
		return neighbors, agg, nil
	}
	// Phase 2: the m-th distance certifies a radius; one final search
	// over that radius guarantees no closer point was missed (for
	// Euclidean, any point at L2 distance <= d is within L-infinity
	// distance <= d of q).
	certified := uint32(math.Ceil(neighbors[m-1].Dist))
	finalBox := ix.ringBox(q, certified)
	pts, stats, err := ix.RangeSearchCtx(ctx, finalBox, strategy, nil)
	if err != nil {
		return nil, agg, err
	}
	accumulate(&agg, stats)
	neighbors = ix.rank(q, pts, metric)
	if len(neighbors) > m {
		neighbors = neighbors[:m]
	}
	agg.Results = len(neighbors)
	return neighbors, agg, nil
}

func accumulate(agg *SearchStats, s SearchStats) {
	agg.DataPages += s.DataPages
	agg.Seeks += s.Seeks
	agg.Elements += s.Elements
}

// ringBox builds the box of L-infinity radius r around q, clamped to
// the grid.
func (ix *reader) ringBox(q []uint32, r uint32) geom.Box {
	lo := make([]uint32, len(q))
	hi := make([]uint32, len(q))
	for i, c := range q {
		max := uint32(ix.g.SideOf(i) - 1)
		if c >= r {
			lo[i] = c - r
		}
		if c <= max-r {
			hi[i] = c + r
		} else {
			hi[i] = max
		}
	}
	return geom.Box{Lo: lo, Hi: hi}
}

func (ix *reader) coversSpace(b geom.Box) bool {
	for i := range b.Lo {
		if b.Lo[i] != 0 || b.Hi[i] != uint32(ix.g.SideOf(i)-1) {
			return false
		}
	}
	return true
}

// rank sorts candidates by distance to q under the metric.
func (ix *reader) rank(q []uint32, pts []geom.Point, metric Metric) []Neighbor {
	ns := make([]Neighbor, len(pts))
	for i, p := range pts {
		ns[i] = Neighbor{Point: p, Dist: distance(q, p.Coords, metric)}
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].Point.ID < ns[j].Point.ID
	})
	return ns
}

// Distance returns the distance between two coordinate vectors under
// the metric. Exposed so transaction overlays can rank buffered
// (uncommitted) points against snapshot results.
func Distance(a, b []uint32, metric Metric) float64 { return distance(a, b, metric) }

func distance(a, b []uint32, metric Metric) float64 {
	switch metric {
	case Chebyshev:
		var d uint32
		for i := range a {
			di := absDiff(a[i], b[i])
			if di > d {
				d = di
			}
		}
		return float64(d)
	default: // Euclidean
		var s float64
		for i := range a {
			di := float64(absDiff(a[i], b[i]))
			s += di * di
		}
		return math.Sqrt(s)
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

// NewIndexBulk builds an index by bulk-loading sorted points into a
// packed B+-tree (fill 0 means 100%). Loading n points costs O(n)
// page writes, versus O(n log n) page accesses for one-at-a-time
// insertion, and yields ~30% fewer data pages — see
// BenchmarkAblationBulkLoad.
func NewIndexBulk(pool *disk.Pool, g zorder.Grid, cfg IndexConfig, pts []geom.Point, fill float64) (*Index, error) {
	entries := make([]btree.Entry, len(pts))
	for i, p := range pts {
		if !g.Valid(p.Coords) {
			return nil, fmt.Errorf("core: point %v outside %v", p, g)
		}
		entries[i] = btree.Entry{Key: btree.Key{Hi: g.ShuffleKey(p.Coords), Lo: p.ID}}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key.Less(entries[j].Key) })
	tree, err := btree.Load(pool, btree.Config{ValueSize: 0, LeafCapacity: cfg.LeafCapacity}, entries, fill)
	if err != nil {
		return nil, err
	}
	return newIndexOver(g, tree), nil
}

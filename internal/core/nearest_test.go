package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"probe/internal/disk"
	"probe/internal/geom"
	"probe/internal/workload"
	"probe/internal/zorder"
)

func bruteNearest(pts []geom.Point, q []uint32, m int, metric Metric) []Neighbor {
	ns := make([]Neighbor, len(pts))
	for i, p := range pts {
		ns[i] = Neighbor{Point: p, Dist: distance(q, p.Coords, metric)}
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].Point.ID < ns[j].Point.ID
	})
	if len(ns) > m {
		ns = ns[:m]
	}
	return ns
}

func TestNearestAgainstBruteForce(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	datasets := map[string][]geom.Point{
		"uniform":   workload.Uniform(g, 700, 21),
		"clustered": workload.Clustered(g, 8, 80, 4, 22),
		"diagonal":  workload.Diagonal(g, 700, 2, 23),
	}
	rng := rand.New(rand.NewSource(24))
	for name, pts := range datasets {
		ix := newTestIndex(t, g, 10)
		if err := ix.BulkLoad(pts); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			q := []uint32{uint32(rng.Intn(256)), uint32(rng.Intn(256))}
			m := 1 + rng.Intn(10)
			for _, metric := range []Metric{Chebyshev, Euclidean} {
				got, stats, err := ix.Nearest(q, m, metric, MergeLazy)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteNearest(pts, q, m, metric)
				if len(got) != len(want) {
					t.Fatalf("%s/%v: %d neighbors, want %d", name, metric, len(got), len(want))
				}
				for i := range got {
					// Distances must match exactly; ids may differ only
					// among equidistant points.
					if got[i].Dist != want[i].Dist {
						t.Fatalf("%s/%v q=%v m=%d: neighbor %d dist %v, want %v",
							name, metric, q, m, i, got[i].Dist, want[i].Dist)
					}
				}
				if stats.Results != len(got) || stats.DataPages == 0 {
					t.Fatalf("%s/%v: stats wrong: %+v", name, metric, stats)
				}
			}
		}
	}
}

func TestNearestExactTiesAreStable(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	ix := newTestIndex(t, g, 10)
	// Four points all at Chebyshev distance 2 from (10, 10).
	pts := []geom.Point{
		geom.Pt2(4, 12, 10), geom.Pt2(3, 8, 10),
		geom.Pt2(2, 10, 12), geom.Pt2(1, 10, 8),
	}
	if err := ix.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.Nearest([]uint32{10, 10}, 2, Chebyshev, SkipBigMin)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Point.ID != 1 || got[1].Point.ID != 2 {
		t.Errorf("tie break by id failed: %v", got)
	}
}

func TestNearestMoreThanAvailable(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	ix := newTestIndex(t, g, 10)
	ix.BulkLoad([]geom.Point{geom.Pt2(1, 5, 5), geom.Pt2(2, 50, 50)})
	got, _, err := ix.Nearest([]uint32{0, 0}, 10, Euclidean, MergeLazy)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d neighbors, want all 2", len(got))
	}
	if got[0].Point.ID != 1 {
		t.Errorf("nearest should be point 1")
	}
}

func TestNearestEmptyIndex(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	ix := newTestIndex(t, g, 10)
	got, _, err := ix.Nearest([]uint32{1, 1}, 3, Euclidean, MergeLazy)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("neighbors on empty index: %v", got)
	}
}

func TestNearestValidation(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	ix := newTestIndex(t, g, 10)
	ix.BulkLoad([]geom.Point{geom.Pt2(1, 5, 5)})
	if _, _, err := ix.Nearest([]uint32{999, 0}, 1, Euclidean, MergeLazy); err == nil {
		t.Errorf("out-of-grid query accepted")
	}
	if _, _, err := ix.Nearest([]uint32{1, 1}, 0, Euclidean, MergeLazy); err == nil {
		t.Errorf("m=0 accepted")
	}
	if _, _, err := ix.Nearest([]uint32{1, 1}, 1, Metric(9), MergeLazy); err == nil {
		t.Errorf("bad metric accepted")
	}
	if Metric(9).String() == "" || Euclidean.String() != "euclidean" || Chebyshev.String() != "chebyshev" {
		t.Errorf("metric strings wrong")
	}
}

func TestNearest3D(t *testing.T) {
	g := zorder.MustGrid(3, 5)
	pts := workload.Uniform(g, 400, 25)
	ix := newTestIndex(t, g, 10)
	if err := ix.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	q := []uint32{16, 16, 16}
	got, _, err := ix.Nearest(q, 5, Euclidean, MergeLazy)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteNearest(pts, q, 5, Euclidean)
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
			t.Fatalf("3d neighbor %d dist %v, want %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestNewIndexBulkMatchesInsert(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	pts := workload.Uniform(g, 2000, 26)
	pool := disk.MustPool(disk.MustMemStore(1024), 256, disk.LRU)
	bulk, err := NewIndexBulk(pool, g, IndexConfig{LeafCapacity: 20}, pts, 0)
	if err != nil {
		t.Fatal(err)
	}
	ins := newTestIndex(t, g, 20)
	if err := ins.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != ins.Len() {
		t.Fatalf("lengths differ: %d vs %d", bulk.Len(), ins.Len())
	}
	if bulk.Tree().LeafPages() >= ins.Tree().LeafPages() {
		t.Errorf("bulk index should be packed tighter: %d vs %d leaves",
			bulk.Tree().LeafPages(), ins.Tree().LeafPages())
	}
	if err := bulk.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	box := geom.Box2(30, 120, 40, 200)
	a, _, err := bulk.RangeSearch(box, MergeLazy)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ins.RangeSearch(box, MergeLazy)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Errorf("query results differ: %d vs %d", len(a), len(b))
	}
}

func TestNewIndexBulkValidation(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	pool := disk.MustPool(disk.MustMemStore(512), 64, disk.LRU)
	if _, err := NewIndexBulk(pool, g, IndexConfig{}, []geom.Point{{ID: 1, Coords: []uint32{99, 0}}}, 0); err == nil {
		t.Errorf("out-of-grid point accepted")
	}
}

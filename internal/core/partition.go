package core

import (
	"fmt"

	"probe/internal/zorder"
)

// This file implements the data-parallel decomposition of the spatial
// join: z-order is a space-filling curve, so cutting both sorted
// inputs at common z-prefix boundaries yields shards whose element
// sets live in disjoint regions of space — shards can be joined
// independently and their pair streams concatenated.
//
// The one complication is elements *shorter* than the cut prefix: a
// short element spans several shards, so pairs between it and items
// in any of those shards would be lost by a plain split. Following
// the §3.2 nesting invariant (elements relate only by containment or
// precedence), such an "open ancestor" is replicated into every shard
// it covers; because an ancestor precedes all of its descendants in z
// order, replication preserves each shard's sortedness and nesting
// structure, so the per-shard join is exactly the sequential join
// restricted to that region. Replication multiplies only
// ancestor-ancestor pairs, which the DedupPairs projection removes —
// the paper already requires that projection for the sequential join,
// whose merge also multiply-reports overlaps.

// JoinPartition is one shard of a partitioned join input pair: the
// left and right items whose elements fall in (or cover) one z-prefix
// range, each still in z order.
type JoinPartition struct {
	A, B []Item
}

// maxPartitionBits caps the partition fan-out at 2^10 shards; beyond
// that the per-shard bookkeeping outweighs any conceivable win.
const maxPartitionBits = 10

// partitionBitsFor picks a prefix length for the requested worker
// count: enough shards (≥ 4× workers) that stragglers even out, few
// enough that replication and bookkeeping stay negligible.
func partitionBitsFor(workers int) int {
	if workers <= 1 {
		return 0
	}
	bits := 0
	for (1 << bits) < 4*workers {
		bits++
	}
	if bits > maxPartitionBits {
		bits = maxPartitionBits
	}
	return bits
}

// PartitionZ splits the two z-sorted inputs of a spatial join at
// common z-prefix boundaries of prefixBits bits, producing up to
// 2^prefixBits shards. Elements at least prefixBits long land in the
// single shard named by their first prefixBits bits; shorter elements
// are replicated into every shard they cover. Empty shards (either
// side empty — such a shard can produce no pairs) are dropped.
//
// Both inputs must already be in z order (SortItems); each shard's
// slices are again in z order, and the union of the shards' joins
// equals the sequential join up to the DedupPairs projection.
func PartitionZ(a, b []Item, prefixBits int) ([]JoinPartition, error) {
	if prefixBits < 0 || prefixBits > maxPartitionBits {
		return nil, fmt.Errorf("core: partition prefix %d bits outside [0,%d]", prefixBits, maxPartitionBits)
	}
	if prefixBits == 0 {
		if err := checkSorted(a); err != nil {
			return nil, fmt.Errorf("core: left input: %w", err)
		}
		if err := checkSorted(b); err != nil {
			return nil, fmt.Errorf("core: right input: %w", err)
		}
		return []JoinPartition{{A: a, B: b}}, nil
	}
	shards := 1 << prefixBits
	as := make([][]Item, shards)
	bs := make([][]Item, shards)
	if err := scatter(a, prefixBits, as); err != nil {
		return nil, fmt.Errorf("core: left input: %w", err)
	}
	if err := scatter(b, prefixBits, bs); err != nil {
		return nil, fmt.Errorf("core: right input: %w", err)
	}
	parts := make([]JoinPartition, 0, shards)
	for s := 0; s < shards; s++ {
		if len(as[s]) == 0 || len(bs[s]) == 0 {
			continue
		}
		parts = append(parts, JoinPartition{A: as[s], B: bs[s]})
	}
	return parts, nil
}

// scatter distributes one sorted input across the shards, replicating
// elements shorter than the prefix into every shard they cover.
// Iterating in sorted order and appending keeps every shard sorted:
// an ancestor is appended to each covered shard before any of its
// descendants arrive there, and all of a shard's items are
// descendants of (or equal to) any short element covering it.
func scatter(items []Item, prefixBits int, shards [][]Item) error {
	var prev zorder.Element
	for i, it := range items {
		if i > 0 && it.Elem.Compare(prev) < 0 {
			return fmt.Errorf("items not in z order at position %d", i)
		}
		prev = it.Elem
		lo, hi := SlotSpan(it.Elem, prefixBits)
		if int(it.Elem.Len) >= prefixBits {
			// One shard: the element's own prefix (lo == hi here).
			shards[lo] = append(shards[lo], it)
			continue
		}
		for s := lo; s <= hi; s++ {
			shards[s] = append(shards[s], it)
		}
	}
	return nil
}

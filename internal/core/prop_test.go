package core

import (
	"math/rand"
	"testing"

	"probe/internal/geom"
	"probe/internal/zorder"
)

// Differential property tests for RangeSearch and Nearest, sharing
// the randomized-workload generator infrastructure of the join
// harness (randomBoxes + brute-force oracles): random points and
// random queries over grids of varying dimensionality and depth, each
// answer checked against an O(n) scan.

// randomPoints is the generator counterpart of randomBoxes: n points
// with unique ids, possibly sharing pixels.
func randomPoints(g zorder.Grid, n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		coords := make([]uint32, g.Dims())
		for d := range coords {
			coords[d] = uint32(rng.Uint64() % g.SideOf(d))
		}
		pts[i] = geom.Point{ID: uint64(i), Coords: coords}
	}
	return pts
}

func TestRangeSearchDifferentialProperty(t *testing.T) {
	grids := []zorder.Grid{
		zorder.MustGrid(1, 8),
		zorder.MustGrid(2, 5),
		zorder.MustGrid(2, 9),
		zorder.MustGrid(3, 4),
	}
	runs := 0
	for gi, g := range grids {
		pts := randomPoints(g, 600, int64(500+gi))
		ix := newTestIndex(t, g, 10)
		if err := ix.BulkLoad(pts); err != nil {
			t.Fatal(err)
		}
		for _, box := range randomBoxes(g, 20, int64(600+gi)) {
			want := bruteIDs(pts, box)
			for _, s := range allStrategies() {
				got, stats, err := ix.RangeSearch(box, s)
				if err != nil {
					t.Fatalf("grid %v box %v strategy %v: %v", g, box, s, err)
				}
				if !equalU64(resultIDs(got), want) {
					t.Fatalf("grid %v box %v strategy %v: %d results, brute force %d",
						g, box, s, len(got), len(want))
				}
				if stats.Results != len(got) {
					t.Fatalf("grid %v strategy %v: stats.Results %d != %d", g, s, stats.Results, len(got))
				}
				runs++
			}
		}
	}
	if runs < 200 {
		t.Fatalf("range-search property harness ran %d checks, want >= 200", runs)
	}
}

func TestNearestDifferentialProperty(t *testing.T) {
	grids := []zorder.Grid{
		zorder.MustGrid(2, 6),
		zorder.MustGrid(2, 8),
		zorder.MustGrid(3, 4),
	}
	runs := 0
	for gi, g := range grids {
		pts := randomPoints(g, 400, int64(700+gi))
		ix := newTestIndex(t, g, 10)
		if err := ix.BulkLoad(pts); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(800 + gi)))
		for trial := 0; trial < 25; trial++ {
			q := make([]uint32, g.Dims())
			for d := range q {
				q[d] = uint32(rng.Uint64() % g.SideOf(d))
			}
			m := 1 + rng.Intn(12)
			for _, metric := range []Metric{Chebyshev, Euclidean} {
				got, _, err := ix.Nearest(q, m, metric, MergeLazy)
				if err != nil {
					t.Fatalf("grid %v q=%v m=%d: %v", g, q, m, err)
				}
				want := bruteNearest(pts, q, m, metric)
				if len(got) != len(want) {
					t.Fatalf("grid %v q=%v m=%d %v: %d neighbors, want %d",
						g, q, m, metric, len(got), len(want))
				}
				for i := range got {
					// Distances must match; ids may differ only among
					// equidistant points.
					if got[i].Dist != want[i].Dist {
						t.Fatalf("grid %v q=%v m=%d %v: neighbor %d dist %v, want %v",
							g, q, m, metric, i, got[i].Dist, want[i].Dist)
					}
				}
				runs++
			}
		}
	}
	if runs < 150 {
		t.Fatalf("nearest property harness ran %d checks, want >= 150", runs)
	}
}

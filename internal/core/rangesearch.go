package core

import (
	"context"
	"fmt"
	"sort"

	"probe/internal/btree"
	"probe/internal/decompose"
	"probe/internal/disk"
	"probe/internal/geom"
	"probe/internal/obs"
)

// Strategy selects the range-search variant. All three produce
// identical results; they are the successive optimizations of
// Section 3.3 and exist side by side for the ablation benchmarks.
type Strategy int

const (
	// MergeDecomposed materializes the box's full element sequence B
	// and merges it against the point sequence P, using random
	// accesses on both sides to skip dead space (the base algorithm
	// plus the first optimization of Section 3.3).
	MergeDecomposed Strategy = iota
	// MergeLazy is MergeDecomposed with the second optimization:
	// elements of B are generated on demand by a decomposition
	// cursor, never materialized.
	MergeLazy
	// SkipBigMin dispenses with elements altogether: on leaving the
	// box it seeks directly to the next in-box z value (BigMin). It
	// is the tightest form of the skip and works for box queries
	// only.
	SkipBigMin
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case MergeDecomposed:
		return "merge-decomposed"
	case MergeLazy:
		return "merge-lazy"
	case SkipBigMin:
		return "skip-bigmin"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// SearchStats describes the work one range search performed.
type SearchStats struct {
	// DataPages is the number of distinct leaf pages touched: the
	// paper's "(data) pages accessed" metric.
	DataPages int
	// Seeks counts random accesses into the point sequence.
	Seeks int
	// Elements counts box elements consumed (strategies A and B) or
	// BigMin computations (strategy C).
	Elements int
	// Results is the number of points reported.
	Results int
}

// Efficiency returns the paper's efficiency measure: how much
// relevant data was on each retrieved page, as results divided by
// retrieved capacity.
func (s SearchStats) Efficiency(leafCapacity int) float64 {
	if s.DataPages == 0 {
		return 0
	}
	return float64(s.Results) / float64(s.DataPages*leafCapacity)
}

// RangeSearch returns all indexed points inside the box.
func (ix *reader) RangeSearch(box geom.Box, strategy Strategy) ([]geom.Point, SearchStats, error) {
	return ix.RangeSearchTraced(box, strategy, nil)
}

// RangeSearchTraced is RangeSearch with per-operator attribution on
// sp: the strategy's work counters (obs.Elements or obs.BigMinSkips),
// the B+-tree cursor's traversal counters, and the final DataPages
// and Results. A nil span behaves exactly like RangeSearch at no
// cost.
func (ix *reader) RangeSearchTraced(box geom.Box, strategy Strategy, sp *obs.Span) ([]geom.Point, SearchStats, error) {
	return ix.RangeSearchCtx(nil, box, strategy, sp)
}

// RangeSearchCtx is RangeSearchTraced under a cancellation context
// (nil = never cancelled; see RangeSearchFuncCtx).
func (ix *reader) RangeSearchCtx(ctx context.Context, box geom.Box, strategy Strategy, sp *obs.Span) ([]geom.Point, SearchStats, error) {
	var out []geom.Point
	stats, err := ix.RangeSearchFuncCtx(ctx, box, strategy, sp, func(p geom.Point) bool {
		out = append(out, p)
		return true
	})
	return out, stats, err
}

// RangeSearchFunc streams all indexed points inside the box to fn, in
// z order. Returning false from fn stops the search early.
func (ix *reader) RangeSearchFunc(box geom.Box, strategy Strategy, fn func(geom.Point) bool) (SearchStats, error) {
	return ix.RangeSearchFuncTraced(box, strategy, nil, fn)
}

// RangeSearchFuncTraced is RangeSearchFunc with per-operator
// attribution on sp (nil disables tracing at no cost).
func (ix *reader) RangeSearchFuncTraced(box geom.Box, strategy Strategy, sp *obs.Span, fn func(geom.Point) bool) (SearchStats, error) {
	return ix.RangeSearchFuncCtx(nil, box, strategy, sp, fn)
}

// RangeSearchFuncCtx is RangeSearchFuncTraced under a cancellation
// context. The context is threaded into both cursors of the merge —
// the B+-tree cursor checks it at every page-load boundary, the
// decomposition cursor at every element generation — so a cancelled
// search stops promptly with the context's error having read at most
// one further page. A nil context (the internal convention for "never
// cancelled") disables the checks at zero cost.
func (ix *reader) RangeSearchFuncCtx(ctx context.Context, box geom.Box, strategy Strategy, sp *obs.Span, fn func(geom.Point) bool) (SearchStats, error) {
	if box.Dims() != ix.g.Dims() {
		return SearchStats{}, fmt.Errorf("core: box has %d dims, index %d", box.Dims(), ix.g.Dims())
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return SearchStats{}, err
		}
	}
	var stats SearchStats
	var err error
	switch strategy {
	case MergeDecomposed:
		stats, err = ix.searchDecomposed(ctx, box, sp, fn)
	case MergeLazy:
		stats, err = ix.searchLazy(ctx, box, sp, fn)
	case SkipBigMin:
		stats, err = ix.searchBigMin(ctx, box, sp, fn)
	default:
		return SearchStats{}, fmt.Errorf("core: unknown strategy %d", int(strategy))
	}
	sp.Add(obs.DataPages, int64(stats.DataPages))
	sp.Add(obs.Results, int64(stats.Results))
	return stats, err
}

// pageTracker counts distinct leaf pages touched by a cursor.
type pageTracker struct {
	seen map[disk.PageID]bool
}

func newPageTracker() *pageTracker { return &pageTracker{seen: make(map[disk.PageID]bool)} }

func (pt *pageTracker) touch(c *btree.Cursor) {
	if c.Valid() {
		pt.seen[c.LeafID()] = true
	}
}

func (pt *pageTracker) count() int { return len(pt.seen) }

// emit converts the cursor entry to a point and passes it to fn.
func (ix *reader) emit(c *btree.Cursor, fn func(geom.Point) bool, stats *SearchStats) bool {
	k := c.Key()
	stats.Results++
	return fn(geom.Point{ID: k.Lo, Coords: ix.g.UnshuffleKey(k.Hi)})
}

// searchDecomposed is strategy A: materialize B, merge with skipping
// on both sides.
func (ix *reader) searchDecomposed(ctx context.Context, box geom.Box, sp *obs.Span, fn func(geom.Point) bool) (SearchStats, error) {
	var stats SearchStats
	elems := decompose.Box(ix.g, box)
	stats.Elements = len(elems)
	sp.Add(obs.Elements, int64(len(elems)))
	if len(elems) == 0 {
		return stats, nil
	}
	total := ix.g.TotalBits()
	pc := ix.src.Cursor()
	pc.SetSpan(sp)
	pc.SetContext(ctx)
	pages := newPageTracker()
	i := 0
	ok, err := pc.SeekGE(btree.Key{Hi: elems[0].MinZ()})
	stats.Seeks++
	if err != nil {
		return stats, err
	}
	pages.touch(pc)
	for ok {
		z := pc.Key().Hi
		// Random access into B: first element whose range ends at or
		// after z.
		if elems[i].MaxZ(total) < z {
			i += sort.Search(len(elems)-i, func(j int) bool { return elems[i+j].MaxZ(total) >= z })
			if i >= len(elems) {
				break
			}
		}
		if z < elems[i].MinZ() {
			// Random access into P: skip to the element's start.
			ok, err = pc.SeekGE(btree.Key{Hi: elems[i].MinZ()})
			stats.Seeks++
			if err != nil {
				return stats, err
			}
			pages.touch(pc)
			continue
		}
		// elems[i].MinZ <= z <= elems[i].MaxZ: the point is inside
		// the box, no coordinate test needed.
		if !ix.emit(pc, fn, &stats) {
			break
		}
		ok, err = pc.Next()
		if err != nil {
			return stats, err
		}
		pages.touch(pc)
	}
	stats.DataPages = pages.count()
	return stats, nil
}

// searchLazy is strategy B: the same merge, with B generated on
// demand.
func (ix *reader) searchLazy(ctx context.Context, box geom.Box, sp *obs.Span, fn func(geom.Point) bool) (SearchStats, error) {
	var stats SearchStats
	bc, err := decompose.NewCursor(ix.g, box, decompose.Options{})
	if err != nil {
		return stats, err
	}
	bc.SetSpan(sp)
	bc.SetContext(ctx)
	if !bc.Next() {
		// An empty decomposition and a pre-cancelled context both land
		// here; Err distinguishes them.
		return stats, bc.Err()
	}
	stats.Elements++
	pc := ix.src.Cursor()
	pc.SetSpan(sp)
	pc.SetContext(ctx)
	pages := newPageTracker()
	ok, err := pc.SeekGE(btree.Key{Hi: bc.ZLo()})
	stats.Seeks++
	if err != nil {
		return stats, err
	}
	pages.touch(pc)
	var stopErr error
	for ok {
		z := pc.Key().Hi
		if bc.ZHi() < z {
			if !bc.Seek(z) {
				stopErr = bc.Err()
				break
			}
			stats.Elements++
			continue
		}
		if z < bc.ZLo() {
			ok, err = pc.SeekGE(btree.Key{Hi: bc.ZLo()})
			stats.Seeks++
			if err != nil {
				return stats, err
			}
			pages.touch(pc)
			continue
		}
		if !ix.emit(pc, fn, &stats) {
			break
		}
		ok, err = pc.Next()
		if err != nil {
			return stats, err
		}
		pages.touch(pc)
	}
	stats.DataPages = pages.count()
	return stats, stopErr
}

// searchBigMin is strategy C: skip directly to the next in-box z
// value whenever the scan leaves the box.
func (ix *reader) searchBigMin(ctx context.Context, box geom.Box, sp *obs.Span, fn func(geom.Point) bool) (SearchStats, error) {
	var stats SearchStats
	first, any := ix.g.BigMin(0, box.Lo, box.Hi)
	if !any {
		return stats, nil
	}
	stats.Elements++
	sp.Inc(obs.BigMinSkips)
	last, _ := ix.g.LitMax(^uint64(0), box.Lo, box.Hi)
	pc := ix.src.Cursor()
	pc.SetSpan(sp)
	pc.SetContext(ctx)
	pages := newPageTracker()
	ok, err := pc.SeekGE(btree.Key{Hi: first})
	stats.Seeks++
	if err != nil {
		return stats, err
	}
	pages.touch(pc)
	for ok {
		z := pc.Key().Hi
		if z > last {
			break
		}
		if ix.g.InBox(z, box.Lo, box.Hi) {
			if !ix.emit(pc, fn, &stats) {
				break
			}
			ok, err = pc.Next()
			if err != nil {
				return stats, err
			}
			pages.touch(pc)
			continue
		}
		next, more := ix.g.BigMin(z, box.Lo, box.Hi)
		stats.Elements++
		sp.Inc(obs.BigMinSkips)
		if !more {
			break
		}
		ok, err = pc.SeekGE(btree.Key{Hi: next})
		stats.Seeks++
		if err != nil {
			return stats, err
		}
		pages.touch(pc)
	}
	stats.DataPages = pages.count()
	return stats, nil
}

// PartialMatch runs a partial-match query (Section 5.3.1):
// restricted[i] pins dimension i to value[i].
func (ix *reader) PartialMatch(restricted []bool, value []uint32, strategy Strategy) ([]geom.Point, SearchStats, error) {
	return ix.PartialMatchTraced(restricted, value, strategy, nil)
}

// PartialMatchTraced is PartialMatch with per-operator attribution on
// sp (nil disables tracing at no cost).
func (ix *reader) PartialMatchTraced(restricted []bool, value []uint32, strategy Strategy, sp *obs.Span) ([]geom.Point, SearchStats, error) {
	return ix.PartialMatchCtx(nil, restricted, value, strategy, sp)
}

// PartialMatchCtx is PartialMatchTraced under a cancellation context
// (nil = never cancelled; see RangeSearchFuncCtx).
func (ix *reader) PartialMatchCtx(ctx context.Context, restricted []bool, value []uint32, strategy Strategy, sp *obs.Span) ([]geom.Point, SearchStats, error) {
	if len(restricted) != ix.g.Dims() || len(value) != ix.g.Dims() {
		return nil, SearchStats{}, fmt.Errorf("core: partial match arity mismatch")
	}
	return ix.RangeSearchCtx(ctx, geom.PartialMatchBox(ix.g, restricted, value), strategy, sp)
}

package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"probe/internal/disk"
	"probe/internal/geom"
	"probe/internal/zorder"
)

// TestSoakMixedWorkloadOnFileStore runs a long randomized workload —
// inserts, deletes, range queries under all three strategies, and
// nearest-neighbor probes — on a file-backed store with a small
// buffer pool, checking every answer against an in-memory reference
// and the B+-tree invariants along the way.
func TestSoakMixedWorkloadOnFileStore(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	g := zorder.MustGrid(2, 9)
	store, err := disk.NewFileStore(filepath.Join(t.TempDir(), "soak.db"), 512)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	pool := disk.MustPool(store, 24, disk.LRU)
	ix, err := NewIndex(pool, g, IndexConfig{LeafCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}

	type entry struct {
		id   uint64
		x, y uint32
	}
	ref := make(map[uint64]entry)
	rng := rand.New(rand.NewSource(0xdecaf))
	nextID := uint64(1)

	refRange := func(box geom.Box) map[uint64]bool {
		out := make(map[uint64]bool)
		for _, e := range ref {
			if box.ContainsPoint([]uint32{e.x, e.y}) {
				out[e.id] = true
			}
		}
		return out
	}

	const steps = 6000
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // insert
			e := entry{id: nextID, x: uint32(rng.Intn(512)), y: uint32(rng.Intn(512))}
			nextID++
			if err := ix.Insert(geom.Pt2(e.id, e.x, e.y)); err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			ref[e.id] = e
		case op < 7: // delete a random existing point
			for id, e := range ref {
				ok, err := ix.Delete(geom.Pt2(id, e.x, e.y))
				if err != nil || !ok {
					t.Fatalf("step %d: delete %d: %v %v", step, id, ok, err)
				}
				delete(ref, id)
				break
			}
		case op < 9: // range query
			x1 := uint32(rng.Intn(512))
			x2 := uint32(rng.Intn(512))
			y1 := uint32(rng.Intn(512))
			y2 := uint32(rng.Intn(512))
			if x1 > x2 {
				x1, x2 = x2, x1
			}
			if y1 > y2 {
				y1, y2 = y2, y1
			}
			box := geom.Box2(x1, x2, y1, y2)
			want := refRange(box)
			strategy := []Strategy{MergeDecomposed, MergeLazy, SkipBigMin}[step%3]
			got, _, err := ix.RangeSearch(box, strategy)
			if err != nil {
				t.Fatalf("step %d: range: %v", step, err)
			}
			if len(got) != len(want) {
				t.Fatalf("step %d (%v): %d results, want %d", step, strategy, len(got), len(want))
			}
			for _, p := range got {
				if !want[p.ID] {
					t.Fatalf("step %d: spurious result %v", step, p)
				}
			}
		default: // nearest neighbor
			if len(ref) == 0 {
				continue
			}
			q := []uint32{uint32(rng.Intn(512)), uint32(rng.Intn(512))}
			got, _, err := ix.Nearest(q, 3, Euclidean, MergeLazy)
			if err != nil {
				t.Fatalf("step %d: nearest: %v", step, err)
			}
			var pts []geom.Point
			for _, e := range ref {
				pts = append(pts, geom.Pt2(e.id, e.x, e.y))
			}
			want := bruteNearest(pts, q, 3, Euclidean)
			if len(got) != len(want) {
				t.Fatalf("step %d: nearest count %d, want %d", step, len(got), len(want))
			}
			for i := range got {
				if got[i].Dist != want[i].Dist {
					t.Fatalf("step %d: neighbor %d dist %v, want %v", step, i, got[i].Dist, want[i].Dist)
				}
			}
		}
		if step%1499 == 0 {
			if err := ix.Tree().CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if ix.Len() != len(ref) {
				t.Fatalf("step %d: Len=%d ref=%d", step, ix.Len(), len(ref))
			}
		}
	}
	if err := ix.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"probe/internal/disk"
	"probe/internal/geom"
	"probe/internal/workload"
	"probe/internal/zorder"
)

// Concurrency stress: many goroutines querying one index through one
// shared buffer pool. Run under `go test -race` this proves the
// thread-safety contract of the stack — pool latch, tree read latch,
// per-goroutine cursors. The pool is deliberately smaller than the
// working set so eviction churns under contention.

func TestConcurrentReadersOneIndexOnePool(t *testing.T) {
	g := zorder.MustGrid(2, 9)
	store := disk.MustMemStore(1024)
	pool := disk.MustPool(store, 24, disk.LRU)
	ix, err := NewIndex(pool, g, IndexConfig{LeafCapacity: 20})
	if err != nil {
		t.Fatal(err)
	}
	pts := workload.Uniform(g, 4000, 41)
	if err := ix.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	boxes := randomBoxes(g, 16, 42)
	want := make([][]uint64, len(boxes))
	for i, box := range boxes {
		want[i] = bruteIDs(pts, box)
	}

	const goroutines = 16
	const queriesPer = 30
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for w := 0; w < goroutines; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for q := 0; q < queriesPer; q++ {
				bi := rng.Intn(len(boxes))
				s := allStrategies()[rng.Intn(3)]
				got, stats, err := ix.RangeSearch(boxes[bi], s)
				if err != nil {
					errc <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				if !equalU64(resultIDs(got), want[bi]) {
					errc <- fmt.Errorf("worker %d box %d strategy %v: wrong result set", w, bi, s)
					return
				}
				if stats.Results != len(got) {
					errc <- fmt.Errorf("worker %d: stats.Results %d != %d", w, stats.Results, len(got))
					return
				}
				// Interleave the other read paths.
				if q%7 == 0 {
					if _, _, err := ix.Nearest(
						[]uint32{uint32(rng.Intn(512)), uint32(rng.Intn(512))},
						1+rng.Intn(5), Euclidean, MergeLazy); err != nil {
						errc <- fmt.Errorf("worker %d nearest: %v", w, err)
						return
					}
				}
				if q%5 == 0 {
					pool.Stats() // concurrent stats reads must be safe
					store.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if st := pool.Stats(); st.Evictions == 0 {
		t.Errorf("pool never evicted (capacity %d); stress test is not stressing", pool.Capacity())
	}
}

// TestConcurrentReadersWithWriter: readers scanning while a single
// writer inserts. The contract promises freedom from data races (the
// tree write latch excludes readers per step), not snapshot
// isolation, so only error-freedom and the final state are asserted.
func TestConcurrentReadersWithWriter(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	pool := disk.MustPool(disk.MustMemStore(1024), 32, disk.LRU)
	ix, err := NewIndex(pool, g, IndexConfig{LeafCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	base := workload.Uniform(g, 1000, 43)
	if err := ix.BulkLoad(base); err != nil {
		t.Fatal(err)
	}
	extra := workload.Uniform(g, 500, 44)
	for i := range extra {
		extra[i].ID += 1_000_000 // keep (pixel, id) unique vs base
	}

	errc := make(chan error, 9)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range extra {
			if err := ix.Insert(p); err != nil {
				errc <- fmt.Errorf("writer: %v", err)
				return
			}
		}
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			for q := 0; q < 40; q++ {
				lo := uint32(rng.Intn(200))
				box := geom.Box2(lo, lo+55, lo, lo+55)
				if _, _, err := ix.RangeSearch(box, allStrategies()[q%3]); err != nil {
					errc <- fmt.Errorf("reader %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got, want := ix.Len(), len(base)+len(extra); got != want {
		t.Errorf("index has %d points after writer finished, want %d", got, want)
	}
	// The index must still be fully consistent once writers are done.
	if err := ix.Tree().CheckInvariants(); err != nil {
		t.Errorf("tree invariants violated after concurrent workload: %v", err)
	}
}

// TestConcurrentParallelJoins: several parallel joins running at
// once, sharing nothing but the immutable inputs — the pattern a
// query executor under concurrent traffic produces.
func TestConcurrentParallelJoins(t *testing.T) {
	g := zorder.MustGrid(2, 7)
	a := decomposeBoxes(g, randomBoxes(g, 30, 45))
	b := decomposeBoxes(g, randomBoxes(g, 30, 46))
	want, _, err := SpatialJoinDistinct(a, b)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := ParallelJoinConfig{Workers: 1 + w%4, PrefixBits: 1 + w%5}
			got, _, err := SpatialJoinParallelDistinct(a, b, cfg)
			if err != nil {
				errc <- err
				return
			}
			if !equalPairs(got, want) {
				errc <- fmt.Errorf("worker %d: wrong pair set", w)
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

package core

import (
	"fmt"

	"probe/internal/zorder"
)

// This file exports the z-prefix boundary arithmetic PartitionZ uses
// to shard a z-sorted input. The same computation names the key-space
// intervals a z-range sharded cluster assigns to nodes: slot s of
// 2^prefixBits equal z-prefix slots owns the contiguous interval of
// left-justified 64-bit z-keys whose top prefixBits bits equal s. The
// router (internal/router) consumes these instead of re-deriving the
// shifts, so the cluster's shard boundaries and the parallel join's
// partition boundaries are the same arithmetic by construction.

// MaxPrefixBits caps prefix fan-out at 2^10 slots, the same bound
// PartitionZ enforces for the parallel join.
const MaxPrefixBits = maxPartitionBits

// ZRange is an inclusive interval [Lo, Hi] of left-justified 64-bit
// z-keys (zorder.Element.Bits / Grid.ShuffleKey values).
type ZRange struct {
	Lo uint64
	Hi uint64
}

// Contains reports whether z falls inside the interval.
func (r ZRange) Contains(z uint64) bool { return r.Lo <= z && z <= r.Hi }

// Overlaps reports whether [lo, hi] intersects the interval.
func (r ZRange) Overlaps(lo, hi uint64) bool { return lo <= r.Hi && r.Lo <= hi }

// checkPrefixBits validates a prefix length shared by every exported
// entry point below.
func checkPrefixBits(prefixBits int) error {
	if prefixBits < 1 || prefixBits > MaxPrefixBits {
		return fmt.Errorf("core: prefix %d bits outside [1,%d]", prefixBits, MaxPrefixBits)
	}
	return nil
}

// PrefixSlots is the number of equal z-prefix slots prefixBits bits
// produce.
func PrefixSlots(prefixBits int) uint64 { return 1 << uint(prefixBits) }

// PrefixRange returns the z-key interval owned by slot of 2^prefixBits
// equal z-prefix slots: all 64-bit keys whose top prefixBits bits
// equal slot. Consecutive slots tile the key space exactly —
// PrefixRange(s+1).Lo == PrefixRange(s).Hi+1.
func PrefixRange(slot uint64, prefixBits int) (ZRange, error) {
	if err := checkPrefixBits(prefixBits); err != nil {
		return ZRange{}, err
	}
	if slot >= PrefixSlots(prefixBits) {
		return ZRange{}, fmt.Errorf("core: slot %d outside [0,%d)", slot, PrefixSlots(prefixBits))
	}
	shift := uint(zorder.MaxBits - prefixBits)
	lo := slot << shift
	return ZRange{Lo: lo, Hi: lo | (1<<shift - 1)}, nil
}

// SlotOfKey returns the index of the prefix slot containing the
// left-justified z-key: its top prefixBits bits.
func SlotOfKey(z uint64, prefixBits int) uint64 {
	return z >> uint(zorder.MaxBits-prefixBits)
}

// SlotSpan returns the inclusive slot interval [lo, hi] a z-order
// element covers — exactly the rule scatter uses to route join items:
// an element at least prefixBits long lands in the single slot named
// by its first prefixBits bits (lo == hi), a shorter element spans
// every slot under its prefix.
func SlotSpan(e zorder.Element, prefixBits int) (lo, hi uint64) {
	shift := uint(zorder.MaxBits - prefixBits)
	return e.MinZ() >> shift, e.MaxZ(zorder.MaxBits) >> shift
}

package core

import (
	"math/rand"
	"testing"

	"probe/internal/zorder"
)

// TestPrefixRangeTiling proves the exported boundary arithmetic names
// a partition of the key space: consecutive slots tile [0, 2^64)
// exactly, and SlotOfKey inverts PrefixRange.
func TestPrefixRangeTiling(t *testing.T) {
	for _, bits := range []int{1, 2, 3, 5, 8, MaxPrefixBits} {
		var prevHi uint64
		for s := uint64(0); s < PrefixSlots(bits); s++ {
			r, err := PrefixRange(s, bits)
			if err != nil {
				t.Fatalf("PrefixRange(%d, %d): %v", s, bits, err)
			}
			if s == 0 {
				if r.Lo != 0 {
					t.Fatalf("bits %d: first slot starts at %d, want 0", bits, r.Lo)
				}
			} else if r.Lo != prevHi+1 {
				t.Fatalf("bits %d slot %d: gap/overlap: lo %d after hi %d", bits, s, r.Lo, prevHi)
			}
			if r.Hi < r.Lo {
				t.Fatalf("bits %d slot %d: inverted range %+v", bits, s, r)
			}
			for _, z := range []uint64{r.Lo, r.Hi, r.Lo + (r.Hi-r.Lo)/2} {
				if got := SlotOfKey(z, bits); got != s {
					t.Fatalf("bits %d: SlotOfKey(%#x) = %d, want %d", bits, z, got, s)
				}
				if !r.Contains(z) {
					t.Fatalf("bits %d slot %d: Contains(%#x) false", bits, s, z)
				}
			}
			prevHi = r.Hi
		}
		if prevHi != ^uint64(0) {
			t.Fatalf("bits %d: last slot ends at %#x, want all ones", bits, prevHi)
		}
	}
	if _, err := PrefixRange(0, 0); err == nil {
		t.Fatal("PrefixRange accepted 0 bits")
	}
	if _, err := PrefixRange(0, MaxPrefixBits+1); err == nil {
		t.Fatal("PrefixRange accepted oversized prefix")
	}
	if _, err := PrefixRange(2, 1); err == nil {
		t.Fatal("PrefixRange accepted out-of-range slot")
	}
}

// TestSlotSpanMatchesScatter proves SlotSpan is the routing rule
// PartitionZ actually applies: scattering random sorted inputs places
// every item in exactly the slots SlotSpan names.
func TestSlotSpanMatchesScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := zorder.MustGrid(2, 10)
	for trial := 0; trial < 50; trial++ {
		prefixBits := 1 + rng.Intn(6)
		items := make([]Item, 200)
		for i := range items {
			e := g.Shuffle([]uint32{uint32(rng.Intn(1024)), uint32(rng.Intn(1024))})
			// Random truncation produces elements shorter than the
			// prefix, exercising the replication path.
			if rng.Intn(3) == 0 {
				for keep := uint8(rng.Intn(int(e.Len) + 1)); e.Len > keep; {
					e = e.Parent()
				}
			}
			items[i] = Item{ID: uint64(i + 1), Elem: e}
		}
		SortItems(items)
		shards := make([][]Item, PrefixSlots(prefixBits))
		if err := scatter(items, prefixBits, shards); err != nil {
			t.Fatalf("scatter: %v", err)
		}
		// Collect where each (ID, Elem) actually landed.
		got := make(map[uint64]map[uint64]bool)
		for s, sh := range shards {
			for _, it := range sh {
				if got[it.ID] == nil {
					got[it.ID] = make(map[uint64]bool)
				}
				got[it.ID][uint64(s)] = true
			}
		}
		for _, it := range items {
			lo, hi := SlotSpan(it.Elem, prefixBits)
			if int(it.Elem.Len) >= prefixBits && lo != hi {
				t.Fatalf("long element spans %d..%d", lo, hi)
			}
			want := map[uint64]bool{}
			if int(it.Elem.Len) >= prefixBits {
				want[lo] = true
			} else {
				for s := lo; s <= hi; s++ {
					want[s] = true
				}
			}
			g := got[it.ID]
			if len(g) != len(want) {
				t.Fatalf("item %d: landed in %d slots, SlotSpan names %d", it.ID, len(g), len(want))
			}
			for s := range want {
				if !g[s] {
					t.Fatalf("item %d: missing from slot %d", it.ID, s)
				}
			}
			// Every key inside the element's z-interval falls in a
			// covered slot.
			for _, z := range []uint64{it.Elem.MinZ(), it.Elem.MaxZ(zorder.MaxBits)} {
				if s := SlotOfKey(z, prefixBits); s < lo || s > hi {
					t.Fatalf("item %d: key %#x in slot %d outside span [%d,%d]", it.ID, z, s, lo, hi)
				}
			}
		}
	}
}

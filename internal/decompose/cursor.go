package decompose

import (
	"context"

	"probe/internal/geom"
	"probe/internal/obs"
	"probe/internal/zorder"
)

// Cursor enumerates the elements of a decomposition lazily and in z
// order, without materializing the whole sequence first. This is the
// Section 3.3 optimization: "Elements of the box may be generated on
// demand, i.e. when a sequential or random access on sequence B is
// performed."
//
// A Cursor supports both access patterns of the merge: Next (the
// sequential access) and Seek (the random access used to skip parts
// of the space that cannot contribute to the result).
type Cursor struct {
	g      zorder.Grid
	obj    geom.Object
	maxLen int
	dropB  bool
	order  [zorder.MaxBits]uint8

	cur   zorder.Element
	valid bool
	done  bool

	lo, hi []uint32 // scratch region, rebuilt per descent

	span *obs.Span       // element-generation attribution; nil = untraced
	ctx  context.Context // cancellation; nil = never cancelled
	err  error           // sticky cancellation error, reported by Err
}

// NewCursor builds a cursor over the decomposition of obj. The cursor
// starts before the first element; call Next or Seek to position it.
func NewCursor(g zorder.Grid, obj geom.Object, opts Options) (*Cursor, error) {
	ml, err := opts.maxLen(g)
	if err != nil {
		return nil, err
	}
	if obj.Dims() != g.Dims() {
		return nil, errDims(g, obj)
	}
	return &Cursor{
		g: g, obj: obj, maxLen: ml, dropB: opts.DropBoundary,
		order: g.SplitOrder(),
		lo:    make([]uint32, g.Dims()), hi: make([]uint32, g.Dims()),
	}, nil
}

func errDims(g zorder.Grid, obj geom.Object) error {
	_, err := newWalker(g, obj, Options{}, nil)
	return err
}

// SetSpan attributes the cursor's work to sp: one obs.Elements per
// element generated (each successful Next or Seek positioning). A nil
// span disables attribution at zero cost.
func (c *Cursor) SetSpan(sp *obs.Span) { c.span = sp }

// SetContext makes the cursor cancellable: each element generation
// (every Next or Seek) checks the context first and, once it is done,
// stops with the cursor exhausted and the context's error held for
// Err. A nil context (the default) disables the checks at zero cost.
func (c *Cursor) SetContext(ctx context.Context) { c.ctx = ctx }

// Err reports why the cursor stopped: nil after a normal exhaustion,
// the context's error after a cancellation. Callers that see Next or
// Seek return false must consult Err before treating the sequence as
// complete.
func (c *Cursor) Err() error { return c.err }

// Valid reports whether the cursor is positioned on an element.
func (c *Cursor) Valid() bool { return c.valid }

// Element returns the current element; the cursor must be Valid.
func (c *Cursor) Element() zorder.Element {
	if !c.valid {
		panic("decompose: Element on invalid cursor")
	}
	return c.cur
}

// ZLo and ZHi return the current element's z range: the [zlo, zhi]
// record of the paper's sequence B.
func (c *Cursor) ZLo() uint64 { return c.Element().MinZ() }

// ZHi returns the largest full-resolution z value in the current
// element.
func (c *Cursor) ZHi() uint64 { return c.Element().MaxZ(c.g.TotalBits()) }

// Next advances to the next element in z order. It returns false when
// the decomposition is exhausted.
func (c *Cursor) Next() bool {
	if c.done {
		return false
	}
	var from uint64
	if c.valid {
		hi := c.ZHi()
		last := zorder.Element{}.MaxZ(c.g.TotalBits())
		if hi == last {
			c.valid, c.done = false, true
			return false
		}
		from = hi + zStep(c.g)
	}
	return c.seekFrom(from)
}

// Seek positions the cursor on the first element whose z range ends
// at or after z (i.e. the element containing z, or the next one). It
// returns false when no such element exists.
func (c *Cursor) Seek(z uint64) bool {
	return c.seekFrom(z)
}

// zStep is the distance between consecutive full-resolution z keys
// (left-justified in 64 bits).
func zStep(g zorder.Grid) uint64 { return 1 << uint(64-g.TotalBits()) }

func (c *Cursor) seekFrom(z uint64) bool {
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			c.err = err
			c.valid, c.done = false, true
			return false
		}
	}
	for i := range c.lo {
		c.lo[i] = 0
		c.hi[i] = uint32(c.g.SideOf(i) - 1)
	}
	e, ok := c.search(zorder.Element{}, z)
	if !ok {
		c.valid, c.done = false, true
		return false
	}
	c.cur, c.valid, c.done = e, true, false
	c.span.Inc(obs.Elements)
	return true
}

// search finds the z-least emitted element within e whose MaxZ >= z.
func (c *Cursor) search(e zorder.Element, z uint64) (zorder.Element, bool) {
	if e.MaxZ(c.g.TotalBits()) < z {
		return zorder.Element{}, false
	}
	switch c.obj.Classify(c.lo, c.hi) {
	case geom.Outside:
		return zorder.Element{}, false
	case geom.Inside:
		return e, true
	}
	if int(e.Len) >= c.maxLen {
		if c.dropB {
			return zorder.Element{}, false
		}
		return e, true
	}
	for b := 0; b < 2; b++ {
		dim, saved := c.descend(int(e.Len), b)
		r, ok := c.search(e.Child(b), z)
		c.restoreRegion(dim, b, saved)
		if ok {
			return r, true
		}
	}
	return zorder.Element{}, false
}

func (c *Cursor) descend(depth, b int) (dim int, saved uint32) {
	dim = int(c.order[depth])
	half := (c.hi[dim]-c.lo[dim])/2 + 1
	if b == 0 {
		saved = c.hi[dim]
		c.hi[dim] = c.lo[dim] + half - 1
	} else {
		saved = c.lo[dim]
		c.lo[dim] += half
	}
	return dim, saved
}

func (c *Cursor) restoreRegion(dim, b int, saved uint32) {
	if b == 0 {
		c.hi[dim] = saved
	} else {
		c.lo[dim] = saved
	}
}

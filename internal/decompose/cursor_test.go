package decompose

import (
	"math/rand"
	"testing"

	"probe/internal/geom"
	"probe/internal/zorder"
)

func collectCursor(t *testing.T, c *Cursor) []zorder.Element {
	t.Helper()
	var out []zorder.Element
	for c.Next() {
		out = append(out, c.Element())
	}
	return out
}

// TestCursorMatchesEagerDecomposition: iterating the lazy cursor
// yields exactly the eager decomposition, in order.
func TestCursorMatchesEagerDecomposition(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	objs := []geom.Object{
		geom.Box2(1, 3, 0, 4),
		geom.Box2(0, 15, 7, 7),
		geom.FullBox(g),
		func() geom.Object { d, _ := geom.NewDisk([]float64{8, 8}, 5); return d }(),
	}
	for _, obj := range objs {
		want, err := Object(g, obj, Options{})
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCursor(g, obj, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := collectCursor(t, c)
		if len(got) != len(want) {
			t.Fatalf("obj %v: cursor yielded %d elements, want %d", obj, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("obj %v: element %d = %v, want %v", obj, i, got[i], want[i])
			}
		}
		if c.Next() {
			t.Errorf("exhausted cursor restarted")
		}
	}
}

func TestCursorSeek(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	b := geom.Box2(3, 11, 2, 13)
	all := Box(g, b)
	c, err := NewCursor(g, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		z := rng.Uint64() >> uint(64-g.TotalBits()) << uint(64-g.TotalBits())
		ok := c.Seek(z)
		// Reference: first element with MaxZ >= z.
		var want *zorder.Element
		for i := range all {
			if all[i].MaxZ(g.TotalBits()) >= z {
				want = &all[i]
				break
			}
		}
		if (want != nil) != ok {
			t.Fatalf("Seek(%x) ok=%v, want %v", z, ok, want != nil)
		}
		if ok && c.Element() != *want {
			t.Fatalf("Seek(%x) = %v, want %v", z, c.Element(), *want)
		}
	}
}

func TestCursorSeekThenNext(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	b := geom.Box2(3, 11, 2, 13)
	all := Box(g, b)
	c, _ := NewCursor(g, b, Options{})
	mid := all[len(all)/2]
	if !c.Seek(mid.MinZ()) || c.Element() != mid {
		t.Fatalf("Seek to element start should land on it")
	}
	for i := len(all)/2 + 1; i < len(all); i++ {
		if !c.Next() || c.Element() != all[i] {
			t.Fatalf("Next after Seek out of sequence at %d", i)
		}
	}
	if c.Next() {
		t.Errorf("cursor should be exhausted")
	}
}

func TestCursorZRange(t *testing.T) {
	g := zorder.MustGrid(2, 3)
	b := geom.Box2(2, 3, 0, 3)
	c, _ := NewCursor(g, b, Options{})
	if !c.Next() {
		t.Fatal("no elements")
	}
	e := zorder.MustParseElement("001")
	if c.Element() != e {
		t.Fatalf("element = %v, want 001", c.Element())
	}
	if c.ZLo() != e.MinZ() || c.ZHi() != e.MaxZ(6) {
		t.Errorf("z range [%x,%x] wrong", c.ZLo(), c.ZHi())
	}
}

func TestCursorOnInvalid(t *testing.T) {
	g := zorder.MustGrid(2, 3)
	c, _ := NewCursor(g, geom.Box2(0, 1, 0, 1), Options{})
	if c.Valid() {
		t.Errorf("fresh cursor should be invalid")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Element on invalid cursor should panic")
		}
	}()
	c.Element()
}

func TestCursorCoarse(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	d, _ := geom.NewDisk([]float64{8, 8}, 5.3)
	for _, opts := range []Options{{MaxLen: 4}, {MaxLen: 4, DropBoundary: true}, {MaxLen: 6}} {
		want, err := Object(g, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCursor(g, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := collectCursor(t, c)
		if len(got) != len(want) {
			t.Fatalf("opts %+v: %d elements, want %d", opts, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("opts %+v: element %d mismatch", opts, i)
			}
		}
	}
}

func TestCursorWholeSpaceTermination(t *testing.T) {
	// An object covering the whole space ends at the all-ones z value;
	// Next must terminate rather than wrap.
	g := zorder.MustGrid(2, 2)
	c, _ := NewCursor(g, geom.FullBox(g), Options{})
	n := 0
	for c.Next() {
		n++
		if n > 2 {
			t.Fatal("cursor did not terminate")
		}
	}
	if n != 1 {
		t.Errorf("whole space should yield one element, got %d", n)
	}
}

func TestCursorBadOptions(t *testing.T) {
	g := zorder.MustGrid(2, 3)
	if _, err := NewCursor(g, geom.Box2(0, 1, 0, 1), Options{MaxLen: 99}); err == nil {
		t.Errorf("bad MaxLen accepted")
	}
}

func BenchmarkDecomposeBox(b *testing.B) {
	g := zorder.MustGrid(2, 16)
	box := geom.Box2(1000, 33333, 2000, 44444)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(Box(g, box)) == 0 {
			b.Fatal("empty decomposition")
		}
	}
}

func BenchmarkCursorIterate(b *testing.B) {
	g := zorder.MustGrid(2, 16)
	box := geom.Box2(1000, 33333, 2000, 44444)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, _ := NewCursor(g, box, Options{})
		n := 0
		for c.Next() {
			n++
		}
		if n == 0 {
			b.Fatal("no elements")
		}
	}
}

// TestCursorSeekAfterExhaustion: a cursor that ran off the end must
// come back to life on a successful Seek (regression: done was left
// sticky, making Next after a revive-Seek return false).
func TestCursorSeekAfterExhaustion(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	b := geom.Box2(3, 11, 2, 13)
	all := Box(g, b)
	c, _ := NewCursor(g, b, Options{})
	for c.Next() {
	}
	if c.Valid() {
		t.Fatal("cursor should be exhausted")
	}
	// Revive by seeking back to the start.
	if !c.Seek(0) {
		t.Fatal("Seek(0) after exhaustion failed")
	}
	if c.Element() != all[0] {
		t.Fatalf("revived cursor at %v, want %v", c.Element(), all[0])
	}
	for i := 1; i < len(all); i++ {
		if !c.Next() {
			t.Fatalf("Next after revival stopped at %d of %d", i, len(all))
		}
		if c.Element() != all[i] {
			t.Fatalf("element %d = %v, want %v", i, c.Element(), all[i])
		}
	}
	if c.Next() {
		t.Errorf("cursor should re-exhaust")
	}
}

// Package decompose implements the decomposition of spatial objects
// into elements (Orenstein, SIGMOD 1986, Section 3.1): a region is
// split recursively, alternating dimensions, until each piece is
// entirely inside the object, entirely outside (discarded), or a
// single pixel on the boundary. The result is the z-ordered sequence
// of elements that approximates the object.
//
// The package also provides the lazy element cursor used by the
// optimized range-search merge ("the sequence B does not have to be
// formed before the merge starts", Section 3.3), the E(U,V) element
// counting of Section 5.1, and the boundary-expansion optimization.
package decompose

import (
	"fmt"

	"probe/internal/geom"
	"probe/internal/zorder"
)

// Options tunes a decomposition.
type Options struct {
	// MaxLen caps element z-value length, producing a coarser
	// approximation: splitting stops at this depth even on boundary
	// regions. Zero means full resolution (k*d).
	MaxLen int
	// DropBoundary, when true, omits regions still crossing the
	// boundary at MaxLen, yielding an inner (subset) approximation.
	// The default (false) includes them, yielding the paper's outer
	// approximation: pixels inside or on the boundary.
	DropBoundary bool
}

func (o Options) maxLen(g zorder.Grid) (int, error) {
	if o.MaxLen == 0 {
		return g.TotalBits(), nil
	}
	if o.MaxLen < 0 || o.MaxLen > g.TotalBits() {
		return 0, fmt.Errorf("decompose: MaxLen %d outside [0,%d]", o.MaxLen, g.TotalBits())
	}
	return o.MaxLen, nil
}

// walker carries the shared state of a decomposition traversal,
// maintaining the current region incrementally (O(1) per split).
type walker struct {
	g       zorder.Grid
	obj     geom.Object
	maxLen  int
	dropB   bool
	order   [zorder.MaxBits]uint8
	lo, hi  []uint32
	emit    func(zorder.Element) bool // returns false to stop early
	stopped bool
}

func newWalker(g zorder.Grid, obj geom.Object, opts Options, emit func(zorder.Element) bool) (*walker, error) {
	if obj.Dims() != g.Dims() {
		return nil, fmt.Errorf("decompose: object has %d dims, grid %d", obj.Dims(), g.Dims())
	}
	ml, err := opts.maxLen(g)
	if err != nil {
		return nil, err
	}
	w := &walker{
		g: g, obj: obj, maxLen: ml, dropB: opts.DropBoundary,
		order: g.SplitOrder(),
		lo:    make([]uint32, g.Dims()), hi: make([]uint32, g.Dims()),
		emit: emit,
	}
	for i := range w.hi {
		w.hi[i] = uint32(g.SideOf(i) - 1)
	}
	return w, nil
}

// descend narrows the region to child b of the split at depth,
// returning the saved bound for restore.
func (w *walker) descend(depth, b int) (dim int, saved uint32) {
	dim = int(w.order[depth])
	half := (w.hi[dim]-w.lo[dim])/2 + 1
	if b == 0 {
		saved = w.hi[dim]
		w.hi[dim] = w.lo[dim] + half - 1
	} else {
		saved = w.lo[dim]
		w.lo[dim] += half
	}
	return dim, saved
}

func (w *walker) restore(dim, b int, saved uint32) {
	if b == 0 {
		w.hi[dim] = saved
	} else {
		w.lo[dim] = saved
	}
}

func (w *walker) walk(e zorder.Element) {
	if w.stopped {
		return
	}
	switch w.obj.Classify(w.lo, w.hi) {
	case geom.Outside:
		return
	case geom.Inside:
		if !w.emit(e) {
			w.stopped = true
		}
		return
	}
	// Crosses.
	if int(e.Len) >= w.maxLen {
		if int(e.Len) == w.g.TotalBits() {
			// Contract violation by the object; treat as a defect.
			panic(fmt.Sprintf("decompose: object classified pixel %v as crossing", w.lo))
		}
		if !w.dropB {
			if !w.emit(e) {
				w.stopped = true
			}
		}
		return
	}
	for b := 0; b < 2 && !w.stopped; b++ {
		dim, saved := w.descend(int(e.Len), b)
		w.walk(e.Child(b))
		w.restore(dim, b, saved)
	}
}

// Object decomposes a spatial object into its z-ordered sequence of
// elements.
func Object(g zorder.Grid, obj geom.Object, opts Options) ([]zorder.Element, error) {
	var out []zorder.Element
	w, err := newWalker(g, obj, opts, func(e zorder.Element) bool {
		out = append(out, e)
		return true
	})
	if err != nil {
		return nil, err
	}
	w.walk(zorder.Element{})
	return out, nil
}

// Box decomposes a box at full resolution: the first RangeSearch
// algorithm of [OREN84], producing the sequence B of Section 3.3.
func Box(g zorder.Grid, b geom.Box) []zorder.Element {
	out, err := Object(g, b, Options{})
	if err != nil {
		panic(err) // a box over its own grid cannot fail
	}
	return out
}

// Count returns the number of elements a decomposition would produce
// without materializing them.
func Count(g zorder.Grid, obj geom.Object, opts Options) (int, error) {
	n := 0
	w, err := newWalker(g, obj, opts, func(zorder.Element) bool {
		n++
		return true
	})
	if err != nil {
		return 0, err
	}
	w.walk(zorder.Element{})
	return n, nil
}

// CountBox is the paper's E(U,V) generalized to k dimensions: the
// number of elements in the decomposition of the box of the given
// sides whose lower corner is the origin (Section 5.1). The grid must
// be large enough to hold the box.
func CountBox(g zorder.Grid, sides []uint32) (int, error) {
	if len(sides) != g.Dims() {
		return 0, fmt.Errorf("decompose: %d sides for %d dims", len(sides), g.Dims())
	}
	lo := make([]uint32, g.Dims())
	hi := make([]uint32, g.Dims())
	for i, s := range sides {
		if s == 0 {
			return 0, nil
		}
		if uint64(s) > g.Side() {
			return 0, fmt.Errorf("decompose: side %d exceeds grid side %d", s, g.Side())
		}
		hi[i] = s - 1
	}
	n, err := Count(g, geom.Box{Lo: lo, Hi: hi}, Options{})
	return n, err
}

// E is CountBox for the 2-d case of Section 5.1: the number of
// elements in the decomposition of a U x V rectangle anchored at the
// origin of grid g.
func E(g zorder.Grid, u, v uint32) int {
	n, err := CountBox(g, []uint32{u, v})
	if err != nil {
		panic(err)
	}
	return n
}

// ExpandBoundary rounds u up so that its last m bits are zero: the
// Section 5.1 optimization that trades a slightly larger object (a
// coarser effective grid) for far fewer elements. For example
// ExpandBoundary(0b01101101, 4) == 0b01110000. The result is uint64
// because rounding up near the top of the uint32 range can exceed it.
func ExpandBoundary(u uint32, m int) uint64 {
	if m <= 0 {
		return uint64(u)
	}
	if m >= 32 {
		panic(fmt.Sprintf("decompose: ExpandBoundary m=%d out of range", m))
	}
	mask := uint64(1)<<uint(m) - 1
	return (uint64(u) + mask) &^ mask
}

// Condense canonicalizes a z-ordered element sequence: adjacent
// sibling pairs that are both present merge into their parent,
// recursively, and elements contained in earlier elements are
// dropped. The result is the minimal element sequence covering the
// same pixels. The input must be sorted in z order.
func Condense(elems []zorder.Element) []zorder.Element {
	var stack []zorder.Element
	for _, e := range elems {
		if len(stack) > 0 && stack[len(stack)-1].Contains(e) {
			continue // redundant: already covered
		}
		stack = append(stack, e)
		// Merge completed sibling pairs bottom-up.
		for len(stack) >= 2 {
			a, b := stack[len(stack)-2], stack[len(stack)-1]
			if a.Len == b.Len && a.Len > 0 && a.Parent() == b.Parent() && a.Bit(int(a.Len)-1) == 0 && b.Bit(int(b.Len)-1) == 1 {
				stack = stack[:len(stack)-2]
				stack = append(stack, a.Parent())
				continue
			}
			break
		}
	}
	return stack
}

// PixelCount sums the pixels covered by a sequence of disjoint
// elements on grid g.
func PixelCount(g zorder.Grid, elems []zorder.Element) uint64 {
	var n uint64
	for _, e := range elems {
		n += e.PixelCount(g)
	}
	return n
}

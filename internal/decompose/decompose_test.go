package decompose

import (
	"math/rand"
	"testing"
	"testing/quick"

	"probe/internal/geom"
	"probe/internal/zorder"
)

// checkExactCover verifies the fundamental decomposition contract:
// elements are sorted, pairwise disjoint, each fully inside the
// member set, and together they cover it exactly.
func checkExactCover(t *testing.T, g zorder.Grid, elems []zorder.Element, member func(coords []uint32) bool) {
	t.Helper()
	for i := 1; i < len(elems); i++ {
		if elems[i-1].Compare(elems[i]) >= 0 {
			t.Fatalf("elements out of order at %d: %v >= %v", i, elems[i-1], elems[i])
		}
		if !elems[i-1].Disjoint(elems[i]) {
			t.Fatalf("overlapping elements %v, %v", elems[i-1], elems[i])
		}
	}
	covered := make(map[uint64]bool)
	for _, e := range elems {
		lo, hi := g.Region(e)
		coords := make([]uint32, g.Dims())
		var walk func(dim int)
		walk = func(dim int) {
			if dim == g.Dims() {
				if !member(coords) {
					t.Fatalf("element %v covers non-member pixel %v", e, coords)
				}
				covered[g.ShuffleKey(coords)] = true
				return
			}
			for c := lo[dim]; ; c++ {
				coords[dim] = c
				walk(dim + 1)
				if c == hi[dim] {
					break
				}
			}
		}
		walk(0)
	}
	// Every member pixel must be covered.
	coords := make([]uint32, g.Dims())
	var walk func(dim int)
	walk = func(dim int) {
		if dim == g.Dims() {
			if member(coords) && !covered[g.ShuffleKey(coords)] {
				t.Fatalf("member pixel %v not covered", coords)
			}
			return
		}
		for c := uint32(0); c < uint32(g.Side()); c++ {
			coords[dim] = c
			walk(dim + 1)
		}
	}
	walk(0)
}

// checkMaximal verifies no two sibling elements are both present (the
// decomposition never splits further than necessary).
func checkMaximal(t *testing.T, elems []zorder.Element) {
	t.Helper()
	seen := make(map[zorder.Element]bool, len(elems))
	for _, e := range elems {
		seen[e] = true
	}
	for _, e := range elems {
		if e.Len == 0 {
			continue
		}
		sib := e.Parent().Child(1 - e.Bit(int(e.Len)-1))
		if seen[sib] {
			t.Fatalf("siblings %v and %v both present; decomposition not maximal", e, sib)
		}
	}
}

func TestDecomposeFigure1Box(t *testing.T) {
	// The query of Figure 1: 1 <= X <= 3, 0 <= Y <= 4 on an 8x8 grid.
	g := zorder.MustGrid(2, 3)
	b := geom.Box2(1, 3, 0, 4)
	elems := Box(g, b)
	checkExactCover(t, g, elems, func(c []uint32) bool { return b.ContainsPoint(c) })
	checkMaximal(t, elems)
	// The large element 001 (= [2:3, 0:3], Figures 2 and 3) must be
	// produced whole.
	found := false
	for _, e := range elems {
		if e == zorder.MustParseElement("001") {
			found = true
		}
	}
	if !found {
		t.Errorf("decomposition %v does not contain element 001", elems)
	}
}

func TestDecomposeWholeSpace(t *testing.T) {
	g := zorder.MustGrid(2, 3)
	elems := Box(g, geom.FullBox(g))
	if len(elems) != 1 || elems[0] != (zorder.Element{}) {
		t.Fatalf("whole space should decompose to the empty element, got %v", elems)
	}
}

func TestDecomposeSinglePixel(t *testing.T) {
	g := zorder.MustGrid(2, 3)
	b := geom.Box2(5, 5, 2, 2)
	elems := Box(g, b)
	if len(elems) != 1 || elems[0] != g.Shuffle([]uint32{5, 2}) {
		t.Fatalf("single pixel decomposition wrong: %v", elems)
	}
}

func TestDecomposeRandomBoxes(t *testing.T) {
	for _, g := range []zorder.Grid{zorder.MustGrid(2, 3), zorder.MustGrid(2, 4), zorder.MustGrid(3, 2), zorder.MustGrid(1, 6)} {
		rng := rand.New(rand.NewSource(int64(g.TotalBits())))
		for trial := 0; trial < 30; trial++ {
			lo := make([]uint32, g.Dims())
			hi := make([]uint32, g.Dims())
			for i := range lo {
				a := uint32(rng.Uint64() % g.Side())
				b := uint32(rng.Uint64() % g.Side())
				if a > b {
					a, b = b, a
				}
				lo[i], hi[i] = a, b
			}
			b := geom.Box{Lo: lo, Hi: hi}
			elems := Box(g, b)
			checkExactCover(t, g, elems, func(c []uint32) bool { return b.ContainsPoint(c) })
			checkMaximal(t, elems)
			if PixelCount(g, elems) != b.Volume() {
				t.Fatalf("pixel count %d != volume %d", PixelCount(g, elems), b.Volume())
			}
		}
	}
}

func TestDecomposeDisk(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	d, _ := geom.NewDisk([]float64{8, 8}, 5)
	elems, err := Object(g, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	member := func(c []uint32) bool {
		dx := float64(c[0]) + 0.5 - 8
		dy := float64(c[1]) + 0.5 - 8
		return dx*dx+dy*dy <= 25
	}
	checkExactCover(t, g, elems, member)
}

func TestDecomposePolygon(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	p := geom.MustPolygon(
		geom.Vertex{X: 1, Y: 1}, geom.Vertex{X: 14, Y: 2},
		geom.Vertex{X: 9, Y: 13}, geom.Vertex{X: 2, Y: 9},
	)
	elems, err := Object(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	member := func(c []uint32) bool {
		return p.ContainsPoint(float64(c[0])+0.5, float64(c[1])+0.5)
	}
	checkExactCover(t, g, elems, member)
}

func TestDecomposeDimsMismatch(t *testing.T) {
	g := zorder.MustGrid(3, 4)
	if _, err := Object(g, geom.Box2(0, 1, 0, 1), Options{}); err == nil {
		t.Errorf("2-d object on 3-d grid accepted")
	}
	if _, err := NewCursor(g, geom.Box2(0, 1, 0, 1), Options{}); err == nil {
		t.Errorf("cursor with mismatched dims accepted")
	}
}

func TestDecomposeBadMaxLen(t *testing.T) {
	g := zorder.MustGrid(2, 3)
	if _, err := Object(g, geom.Box2(0, 1, 0, 1), Options{MaxLen: 7}); err == nil {
		t.Errorf("MaxLen beyond resolution accepted")
	}
	if _, err := Object(g, geom.Box2(0, 1, 0, 1), Options{MaxLen: -1}); err == nil {
		t.Errorf("negative MaxLen accepted")
	}
}

// TestCoarseDecomposition checks the MaxLen / DropBoundary semantics:
// the outer approximation covers a superset of the object's pixels,
// the inner approximation a subset, and coarser grids cost fewer
// elements.
func TestCoarseDecomposition(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	d, _ := geom.NewDisk([]float64{8, 8}, 5.3)
	member := func(c []uint32) bool {
		dx := float64(c[0]) + 0.5 - 8
		dy := float64(c[1]) + 0.5 - 8
		return dx*dx+dy*dy <= 5.3*5.3
	}
	covers := func(elems []zorder.Element, z uint64) bool {
		p := zorder.Element{Bits: z, Len: uint8(g.TotalBits())}
		for _, e := range elems {
			if e.Contains(p) {
				return true
			}
		}
		return false
	}
	full, _ := Object(g, d, Options{})
	for maxLen := 2; maxLen <= 8; maxLen += 2 {
		outer, err := Object(g, d, Options{MaxLen: maxLen})
		if err != nil {
			t.Fatal(err)
		}
		inner, err := Object(g, d, Options{MaxLen: maxLen, DropBoundary: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(outer) < len(inner) {
			t.Errorf("maxLen %d: outer has fewer elements (%d) than inner (%d)", maxLen, len(outer), len(inner))
		}
		coords := make([]uint32, 2)
		for x := uint32(0); x < 16; x++ {
			for y := uint32(0); y < 16; y++ {
				coords[0], coords[1] = x, y
				z := g.ShuffleKey(coords)
				if member(coords) && !covers(outer, z) {
					t.Fatalf("maxLen %d: outer approximation misses member pixel (%d,%d)", maxLen, x, y)
				}
				if covers(inner, z) && !member(coords) {
					t.Fatalf("maxLen %d: inner approximation covers non-member (%d,%d)", maxLen, x, y)
				}
			}
		}
		if len(outer) > len(full)+1 {
			t.Errorf("maxLen %d: coarse outer decomposition larger (%d) than full (%d)", maxLen, len(outer), len(full))
		}
	}
}

func TestCountMatchesObject(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	b := geom.Box2(3, 11, 2, 13)
	elems := Box(g, b)
	n, err := Count(g, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(elems) {
		t.Errorf("Count = %d, len(Object) = %d", n, len(elems))
	}
}

// TestECyclic reproduces the Section 5.1 property E(U,V) = E(2U,2V):
// doubling the rectangle on a grid with one more bit of resolution
// produces exactly the same number of elements.
func TestECyclic(t *testing.T) {
	g5 := zorder.MustGrid(2, 5)
	g6 := zorder.MustGrid(2, 6)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		u := uint32(rng.Intn(31) + 1)
		v := uint32(rng.Intn(31) + 1)
		if E(g5, u, v) != E(g6, 2*u, 2*v) {
			t.Errorf("E(%d,%d)=%d but E(%d,%d)=%d", u, v, E(g5, u, v), 2*u, 2*v, E(g6, 2*u, 2*v))
		}
	}
}

// TestEPowerOfTwo: aligned power-of-two squares decompose to a single
// element.
func TestEPowerOfTwo(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	for _, s := range []uint32{1, 2, 4, 8, 16, 32, 64} {
		if n := E(g, s, s); n != 1 {
			t.Errorf("E(%d,%d) = %d, want 1", s, s, n)
		}
	}
	// A 2^m x 2^(m+1) rectangle is also a single element (it is a
	// region of the splitting).
	if n := E(g, 32, 64); n != 1 {
		t.Errorf("E(32,64) = %d, want 1", n)
	}
	if n := E(g, 64, 32); n != 2 {
		t.Errorf("E(64,32) = %d, want 2 (split is x-first)", n)
	}
}

// TestEBitSpanSensitivity: E(U,V) grows with the number of bit
// positions between the first and last 1 bits of U|V (Section 5.1).
// The canonical instance: U = V = 2^m is tiny, U = V = 2^m - 1 is
// large.
func TestEBitSpanSensitivity(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	if E(g, 32, 32) >= E(g, 31, 31) {
		t.Errorf("E(32,32)=%d should be far below E(31,31)=%d", E(g, 32, 32), E(g, 31, 31))
	}
	// "Small changes in the position of the border can lead to large
	// increases in E(U,V)": 33 = 100001 has full bit span.
	if E(g, 33, 33) <= E(g, 32, 32) {
		t.Errorf("E(33,33)=%d should exceed E(32,32)=%d", E(g, 33, 33), E(g, 32, 32))
	}
}

func TestCountBoxErrors(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	if _, err := CountBox(g, []uint32{1}); err == nil {
		t.Errorf("arity mismatch accepted")
	}
	if _, err := CountBox(g, []uint32{17, 1}); err == nil {
		t.Errorf("oversized side accepted")
	}
	if n, err := CountBox(g, []uint32{0, 5}); err != nil || n != 0 {
		t.Errorf("empty box should count 0 elements, got %d, %v", n, err)
	}
}

func TestExpandBoundary(t *testing.T) {
	// The paper's example: U = 01101101, m = 4 -> U' = 01110000.
	if got := ExpandBoundary(0b01101101, 4); got != 0b01110000 {
		t.Errorf("ExpandBoundary(0b01101101, 4) = %b, want 0b01110000", got)
	}
	if ExpandBoundary(112, 4) != 112 {
		t.Errorf("already-aligned value must be unchanged")
	}
	if ExpandBoundary(109, 0) != 109 {
		t.Errorf("m=0 must be identity")
	}
	for m := 1; m < 8; m++ {
		for u := uint32(1); u < 300; u += 7 {
			got := ExpandBoundary(u, m)
			if got < uint64(u) {
				t.Fatalf("ExpandBoundary(%d,%d) = %d shrank", u, m, got)
			}
			if got%(1<<uint(m)) != 0 {
				t.Fatalf("ExpandBoundary(%d,%d) = %d not aligned", u, m, got)
			}
			if got-uint64(u) >= 1<<uint(m) {
				t.Fatalf("ExpandBoundary(%d,%d) = %d overshoots", u, m, got)
			}
		}
	}
}

// TestExpandBoundaryReducesElements measures the Section 5.1
// optimization: expanding the boundary reduces the element count while
// growing the area only slightly.
func TestExpandBoundaryReducesElements(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	u, v := uint32(0b01101101), uint32(0b01011011)
	base := E(g, u, v)
	prev := base
	for m := 1; m <= 4; m++ {
		eu, ev := uint32(ExpandBoundary(u, m)), uint32(ExpandBoundary(v, m))
		n := E(g, eu, ev)
		if n > prev {
			t.Errorf("m=%d: element count %d grew from %d", m, n, prev)
		}
		prev = n
		areaGrowth := float64(eu)*float64(ev)/(float64(u)*float64(v)) - 1
		if areaGrowth > 0.25 {
			t.Errorf("m=%d: area grew by %.0f%%", m, areaGrowth*100)
		}
	}
	if prev >= base {
		t.Errorf("expansion to m=4 did not reduce elements (%d -> %d)", base, prev)
	}
}

func TestCondense(t *testing.T) {
	g := zorder.MustGrid(2, 3)
	b := geom.Box2(1, 3, 0, 4)
	elems := Box(g, b)
	// Shatter every element into pixels, then condense back.
	var pixels []zorder.Element
	for _, e := range elems {
		lo, hi := g.Region(e)
		for x := lo[0]; x <= hi[0]; x++ {
			for y := lo[1]; y <= hi[1]; y++ {
				pixels = append(pixels, g.Shuffle([]uint32{x, y}))
			}
		}
	}
	// Pixels of disjoint elements arrive z-sorted per element; sort all.
	for i := 1; i < len(pixels); i++ {
		for j := i; j > 0 && pixels[j].Compare(pixels[j-1]) < 0; j-- {
			pixels[j], pixels[j-1] = pixels[j-1], pixels[j]
		}
	}
	got := Condense(pixels)
	if len(got) != len(elems) {
		t.Fatalf("condensed %d elements, want %d: %v vs %v", len(got), len(elems), got, elems)
	}
	for i := range got {
		if got[i] != elems[i] {
			t.Fatalf("condense mismatch at %d: %v != %v", i, got[i], elems[i])
		}
	}
}

func TestCondenseDropsContained(t *testing.T) {
	in := []zorder.Element{
		zorder.MustParseElement("00"),
		zorder.MustParseElement("0010"), // contained in 00
		zorder.MustParseElement("10"),
	}
	got := Condense(in)
	if len(got) != 2 || got[0] != in[0] || got[1] != in[2] {
		t.Errorf("Condense = %v", got)
	}
}

func TestCondenseWholeSpace(t *testing.T) {
	// All four quadrants merge into the whole space.
	in := []zorder.Element{
		zorder.MustParseElement("00"),
		zorder.MustParseElement("01"),
		zorder.MustParseElement("10"),
		zorder.MustParseElement("11"),
	}
	got := Condense(in)
	if len(got) != 1 || got[0] != (zorder.Element{}) {
		t.Errorf("Condense of four quadrants = %v", got)
	}
	if out := Condense(nil); len(out) != 0 {
		t.Errorf("Condense(nil) = %v", out)
	}
}

func TestPixelCountWholeSpace(t *testing.T) {
	g := zorder.MustGrid(2, 3)
	if PixelCount(g, []zorder.Element{{}}) != 64 {
		t.Errorf("whole-space pixel count wrong")
	}
}

// TestFigure2ExactElements pins the exact element set of Figure 2:
// the decomposition of the box 1<=X<=3, 0<=Y<=4 on an 8x8 grid is
// {00001, 00011, 001, 010010, 011000, 011010}.
func TestFigure2ExactElements(t *testing.T) {
	g := zorder.MustGrid(2, 3)
	elems := Box(g, geom.Box2(1, 3, 0, 4))
	want := []string{"00001", "00011", "001", "010010", "011000", "011010"}
	if len(elems) != len(want) {
		t.Fatalf("got %d elements %v, want %v", len(elems), elems, want)
	}
	for i, w := range want {
		if elems[i].String() != w {
			t.Errorf("element %d = %v, want %s", i, elems[i], w)
		}
	}
}

// TestDecomposeQuickBoxes uses testing/quick to fuzz box bounds: the
// decomposition must always be sorted, disjoint, maximal and cover
// exactly the box's volume.
func TestDecomposeQuickBoxes(t *testing.T) {
	g := zorder.MustGrid(2, 5)
	side := uint32(g.Side())
	f := func(x1, x2, y1, y2 uint32) bool {
		x1, x2, y1, y2 = x1%side, x2%side, y1%side, y2%side
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		b := geom.Box2(x1, x2, y1, y2)
		elems := Box(g, b)
		for i := 1; i < len(elems); i++ {
			if elems[i-1].Compare(elems[i]) >= 0 || !elems[i-1].Disjoint(elems[i]) {
				return false
			}
		}
		return PixelCount(g, elems) == b.Volume()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestExpandBoundaryQuick fuzzes the boundary-expansion contract.
func TestExpandBoundaryQuick(t *testing.T) {
	f := func(u uint32, m uint8) bool {
		mm := int(m % 30)
		got := ExpandBoundary(u, mm)
		if got < uint64(u) {
			return false
		}
		if mm > 0 && got%(1<<uint(mm)) != 0 {
			return false
		}
		return got-uint64(u) < 1<<uint(max(mm, 1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package decompose

import (
	"testing"

	"probe/internal/geom"
	"probe/internal/zorder"
)

// Fuzz target for the lazy cursor: on any box it must yield exactly
// the eager decomposition, in z order, and Seek must land on the
// first element whose z range ends at or after the target — the two
// access patterns the range-search merge relies on (Section 3.3).

func FuzzCursorMatchesEagerDecomposition(f *testing.F) {
	f.Add(uint32(1), uint32(3), uint32(0), uint32(4), uint8(3), uint64(0))
	f.Add(uint32(0), uint32(7), uint32(0), uint32(7), uint8(3), uint64(1)<<60)
	f.Add(uint32(5), uint32(5), uint32(2), uint32(2), uint8(5), uint64(123)<<48)
	f.Fuzz(func(t *testing.T, x1, x2, y1, y2 uint32, dRaw uint8, seekZ uint64) {
		d := int(dRaw%6) + 2
		g := zorder.MustGrid(2, d)
		side := uint32(g.Side())
		x1, x2, y1, y2 = x1%side, x2%side, y1%side, y2%side
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		box := geom.Box2(x1, x2, y1, y2)
		eager := Box(g, box)

		c, err := NewCursor(g, box, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var lazy []zorder.Element
		for c.Next() {
			lazy = append(lazy, c.Element())
		}
		if len(lazy) != len(eager) {
			t.Fatalf("box %v d=%d: cursor yielded %d elements, eager %d", box, d, len(lazy), len(eager))
		}
		for i := range lazy {
			if lazy[i] != eager[i] {
				t.Fatalf("box %v d=%d: element %d is %v, eager has %v", box, d, i, lazy[i], eager[i])
			}
		}
		for i := 1; i < len(lazy); i++ {
			if lazy[i].Compare(lazy[i-1]) <= 0 {
				t.Fatalf("box %v d=%d: cursor output not strictly z-ordered at %d", box, d, i)
			}
		}

		// Seek: first element with MaxZ >= z, against the eager list.
		z := seekZ >> uint(64-g.TotalBits()) << uint(64-g.TotalBits())
		sc, err := NewCursor(g, box, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ok := sc.Seek(z)
		var want *zorder.Element
		for i := range eager {
			if eager[i].MaxZ(g.TotalBits()) >= z {
				want = &eager[i]
				break
			}
		}
		if ok != (want != nil) {
			t.Fatalf("box %v d=%d: Seek(%x) = %v, eager says %v", box, d, z, ok, want != nil)
		}
		if ok && sc.Element() != *want {
			t.Fatalf("box %v d=%d: Seek(%x) landed on %v, want %v", box, d, z, sc.Element(), *want)
		}
	})
}

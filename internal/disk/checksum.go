package disk

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Every page slot in a FileStore carries a 16-byte header ahead of the
// payload so torn writes and media corruption are detected on read:
//
//	[crc32c u32][page id u32][lsn u64]
//
// The checksum covers the page id, the LSN and the payload
// (Castagnoli polynomial, the CRC32C of iSCSI/ext4). A slot whose
// header is entirely zero is a free slot; a slot whose id field is
// zero but checksum verifies is a freed slot stamp.
const pageHeaderLen = 16

// castagnoli is the CRC32C table.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// pageCRC computes the checksum of a slot: header bytes 4.. plus the
// payload.
func pageCRC(slot []byte) uint32 {
	return crc32.Checksum(slot[4:], castagnoli)
}

// encodePageHeader stamps the slot's header in place and returns the
// checksum written.
func encodePageHeader(slot []byte, id PageID, lsn uint64) uint32 {
	binary.LittleEndian.PutUint32(slot[4:8], uint32(id))
	binary.LittleEndian.PutUint64(slot[8:16], lsn)
	crc := pageCRC(slot)
	binary.LittleEndian.PutUint32(slot[0:4], crc)
	return crc
}

// decodePageHeader parses a slot header without verifying it.
func decodePageHeader(slot []byte) (crc uint32, id PageID, lsn uint64) {
	crc = binary.LittleEndian.Uint32(slot[0:4])
	id = PageID(binary.LittleEndian.Uint32(slot[4:8]))
	lsn = binary.LittleEndian.Uint64(slot[8:16])
	return crc, id, lsn
}

// ChecksumError reports that on-disk bytes failed verification: a
// page whose CRC32C does not match its contents, a page stored under
// the wrong id (a misdirected write), or a corrupt superblock or WAL.
// It is the storage layer's guarantee that corruption surfaces as an
// error, never as silently wrong data.
type ChecksumError struct {
	// Path is the file the corruption was found in.
	Path string
	// Page is the page involved, or InvalidPage for file-level
	// structures (superblock, WAL).
	Page PageID
	// Reason describes what failed to verify.
	Reason string
}

// Error implements error.
func (e *ChecksumError) Error() string {
	if e.Page != InvalidPage {
		return fmt.Sprintf("disk: %s: page %d: checksum failure: %s", e.Path, e.Page, e.Reason)
	}
	return fmt.Sprintf("disk: %s: checksum failure: %s", e.Path, e.Reason)
}

// The superblock is the first 64 bytes of a store file:
//
//	[magic 8B][version u32][payload size u32][checkpoint LSN u64][crc32c u32]
//
// The CRC covers bytes 0..24. The checkpoint LSN is stamped as the
// final durable step of every checkpoint; recovery uses it to decide
// whether the page file may contain writes from an interrupted
// checkpoint (any page LSN above it) that the WAL must account for.
// The superblock fits one device sector, so its update is assumed
// atomic (the standard single-sector assumption; faultfs honors it).
const (
	superblockLen  = 64
	storeMagic     = "ZKDPAGE1"
	storeVersion   = 1
	superblockCRCO = 24 // offset of the crc field
)

func encodeSuperblock(payloadSize int, ckptLSN uint64) []byte {
	sb := make([]byte, superblockLen)
	copy(sb[0:8], storeMagic)
	binary.LittleEndian.PutUint32(sb[8:12], storeVersion)
	binary.LittleEndian.PutUint32(sb[12:16], uint32(payloadSize))
	binary.LittleEndian.PutUint64(sb[16:24], ckptLSN)
	crc := crc32.Checksum(sb[:superblockCRCO], castagnoli)
	binary.LittleEndian.PutUint32(sb[superblockCRCO:superblockCRCO+4], crc)
	return sb
}

func decodeSuperblock(path string, sb []byte) (payloadSize int, ckptLSN uint64, err error) {
	if len(sb) < superblockLen {
		return 0, 0, &ChecksumError{Path: path, Reason: "superblock truncated"}
	}
	if string(sb[0:8]) != storeMagic {
		return 0, 0, &ChecksumError{Path: path, Reason: "bad superblock magic"}
	}
	want := binary.LittleEndian.Uint32(sb[superblockCRCO : superblockCRCO+4])
	if got := crc32.Checksum(sb[:superblockCRCO], castagnoli); got != want {
		return 0, 0, &ChecksumError{Path: path, Reason: "superblock crc mismatch"}
	}
	if v := binary.LittleEndian.Uint32(sb[8:12]); v != storeVersion {
		return 0, 0, &ChecksumError{Path: path, Reason: fmt.Sprintf("unsupported version %d", v)}
	}
	payloadSize = int(binary.LittleEndian.Uint32(sb[12:16]))
	ckptLSN = binary.LittleEndian.Uint64(sb[16:24])
	return payloadSize, ckptLSN, nil
}

// isZero reports whether every byte of b is zero.
func isZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

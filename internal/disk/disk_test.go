package disk

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

func TestMemStoreBasics(t *testing.T) {
	s := MustMemStore(128)
	if s.PageSize() != 128 {
		t.Fatalf("PageSize = %d", s.PageSize())
	}
	id, err := s.Allocate()
	if err != nil || id == InvalidPage {
		t.Fatalf("Allocate: %v, id=%d", err, id)
	}
	buf := make([]byte, 128)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := s.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := s.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Errorf("read-back mismatch")
	}
	if s.NumPages() != 1 {
		t.Errorf("NumPages = %d", s.NumPages())
	}
	st := s.Stats()
	if st.Allocs != 1 || st.Reads != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v", st)
	}
	s.ResetStats()
	if s.Stats() != (IOStats{}) {
		t.Errorf("ResetStats failed")
	}
}

func TestMemStoreErrors(t *testing.T) {
	if _, err := NewMemStore(32); err == nil {
		t.Errorf("tiny page size accepted")
	}
	s := MustMemStore(64)
	buf := make([]byte, 64)
	if err := s.Read(7, buf); err == nil {
		t.Errorf("read of unallocated page succeeded")
	}
	if err := s.Write(7, buf); err == nil {
		t.Errorf("write of unallocated page succeeded")
	}
	if err := s.Free(7); err == nil {
		t.Errorf("free of unallocated page succeeded")
	}
	id, _ := s.Allocate()
	if err := s.Read(id, make([]byte, 63)); err == nil {
		t.Errorf("short read buffer accepted")
	}
	if err := s.Write(id, make([]byte, 65)); err == nil {
		t.Errorf("long write buffer accepted")
	}
}

func TestMemStoreFreeReuse(t *testing.T) {
	s := MustMemStore(64)
	a, _ := s.Allocate()
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := s.Allocate()
	if b != a {
		t.Errorf("freed page not reused: %d then %d", a, b)
	}
	// A freed-then-reallocated page is zeroed.
	buf := make([]byte, 64)
	buf[0] = 0xff
	s.Write(b, buf)
	s.Free(b)
	c, _ := s.Allocate()
	got := make([]byte, 64)
	s.Read(c, got)
	if got[0] != 0 {
		t.Errorf("reallocated page not zeroed")
	}
}

func TestPoolHitMiss(t *testing.T) {
	s := MustMemStore(64)
	p := MustPool(s, 2, LRU)
	id, _ := s.Allocate()

	f, err := p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(id, false)
	if st := p.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Errorf("first get: %+v", st)
	}
	f2, _ := p.Get(id)
	if f2 != f {
		t.Errorf("second get returned a different frame")
	}
	p.Unpin(id, false)
	if st := p.Stats(); st.Hits != 1 || st.Gets != 2 {
		t.Errorf("after second get: %+v", st)
	}
	if p.Stats().HitRate() != 0.5 {
		t.Errorf("HitRate = %v", p.Stats().HitRate())
	}
}

func TestPoolWriteBack(t *testing.T) {
	s := MustMemStore(64)
	p := MustPool(s, 1, LRU)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID
	f.Data[0] = 42
	f.SetDirty()
	p.Unpin(id, true)

	// Force eviction by pulling in another page.
	id2, _ := s.Allocate()
	if _, err := p.Get(id2); err != nil {
		t.Fatal(err)
	}
	p.Unpin(id2, false)

	buf := make([]byte, 64)
	if err := s.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 42 {
		t.Errorf("dirty page not written back on eviction")
	}
	if p.Stats().WriteBacks != 1 || p.Stats().Evictions != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
}

func TestPoolPinnedPagesNotEvicted(t *testing.T) {
	s := MustMemStore(64)
	p := MustPool(s, 1, LRU)
	f, _ := p.NewPage()
	_ = f
	// The only frame is pinned; a second page cannot be admitted.
	if _, err := p.NewPage(); err == nil {
		t.Errorf("admission with all frames pinned should fail")
	}
	p.Unpin(f.ID, true)
	if _, err := p.NewPage(); err != nil {
		t.Errorf("admission after unpin failed: %v", err)
	}
}

func TestPoolLRUOrder(t *testing.T) {
	s := MustMemStore(64)
	ids := make([]PageID, 3)
	for i := range ids {
		ids[i], _ = s.Allocate()
	}
	p := MustPool(s, 2, LRU)
	get := func(id PageID) {
		if _, err := p.Get(id); err != nil {
			t.Fatal(err)
		}
		p.Unpin(id, false)
	}
	get(ids[0])
	get(ids[1])
	get(ids[0]) // touch 0 so 1 is LRU
	get(ids[2]) // evicts 1
	s.ResetStats()
	get(ids[0])
	if s.Stats().Reads != 0 {
		t.Errorf("page 0 should still be resident under LRU")
	}
	get(ids[1])
	if s.Stats().Reads != 1 {
		t.Errorf("page 1 should have been evicted under LRU")
	}
}

func TestPoolFIFOOrder(t *testing.T) {
	s := MustMemStore(64)
	ids := make([]PageID, 3)
	for i := range ids {
		ids[i], _ = s.Allocate()
	}
	p := MustPool(s, 2, FIFO)
	get := func(id PageID) {
		if _, err := p.Get(id); err != nil {
			t.Fatal(err)
		}
		p.Unpin(id, false)
	}
	get(ids[0])
	get(ids[1])
	get(ids[0]) // FIFO ignores the touch
	get(ids[2]) // evicts 0 (oldest)
	s.ResetStats()
	get(ids[1])
	if s.Stats().Reads != 0 {
		t.Errorf("page 1 should be resident under FIFO")
	}
	get(ids[0])
	if s.Stats().Reads != 1 {
		t.Errorf("page 0 should have been evicted under FIFO")
	}
}

func TestPoolRandomEviction(t *testing.T) {
	s := MustMemStore(64)
	p := MustPool(s, 4, Random)
	var ids []PageID
	for i := 0; i < 32; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID)
		p.Unpin(f.ID, true)
	}
	// All pages must remain readable regardless of eviction choices.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		id := ids[rng.Intn(len(ids))]
		f, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.ID != id {
			t.Fatalf("got frame %d for page %d", f.ID, id)
		}
		p.Unpin(id, false)
	}
	if p.Resident() > 4 {
		t.Errorf("resident %d exceeds capacity", p.Resident())
	}
}

func TestPoolFlushAndInvalidate(t *testing.T) {
	s := MustMemStore(64)
	p := MustPool(s, 4, LRU)
	f, _ := p.NewPage()
	f.Data[0] = 7
	p.Unpin(f.ID, true)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	s.Read(f.ID, buf)
	if buf[0] != 7 {
		t.Errorf("Flush did not persist dirty page")
	}
	if err := p.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if p.Resident() != 0 {
		t.Errorf("Invalidate left %d resident frames", p.Resident())
	}
	s.ResetStats()
	if _, err := p.Get(f.ID); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Reads != 1 {
		t.Errorf("post-invalidate access should be cold")
	}
	p.Unpin(f.ID, false)
}

func TestPoolInvalidateWithPinnedPage(t *testing.T) {
	s := MustMemStore(64)
	p := MustPool(s, 2, LRU)
	f, _ := p.NewPage()
	if err := p.Invalidate(); err == nil {
		t.Errorf("Invalidate with pinned page should fail")
	}
	p.Unpin(f.ID, false)
}

func TestPoolDrop(t *testing.T) {
	s := MustMemStore(64)
	p := MustPool(s, 2, LRU)
	f, _ := p.NewPage()
	id := f.ID
	if err := p.Drop(id); err == nil {
		t.Errorf("Drop of pinned page should fail")
	}
	p.Unpin(id, false)
	if err := p.Drop(id); err != nil {
		t.Fatal(err)
	}
	if s.NumPages() != 0 {
		t.Errorf("Drop did not free the page")
	}
	if _, err := p.Get(id); err == nil {
		t.Errorf("Get of dropped page should fail")
	}
}

func TestPoolUnpinErrors(t *testing.T) {
	s := MustMemStore(64)
	p := MustPool(s, 2, LRU)
	if err := p.Unpin(99, false); err == nil {
		t.Errorf("unpin of non-resident page should fail")
	}
	f, _ := p.NewPage()
	p.Unpin(f.ID, false)
	if err := p.Unpin(f.ID, false); err == nil {
		t.Errorf("double unpin should fail")
	}
}

func TestPoolValidation(t *testing.T) {
	s := MustMemStore(64)
	if _, err := NewPool(s, 0, LRU); err == nil {
		t.Errorf("zero-capacity pool accepted")
	}
	if LRU.String() != "lru" || FIFO.String() != "fifo" || Random.String() != "random" {
		t.Errorf("policy strings wrong")
	}
	if Policy(9).String() == "" {
		t.Errorf("unknown policy should render")
	}
}

// TestPoolScanWorkload reproduces the Section 4 argument: a merge
// touches each page once, so even a tiny LRU pool serves a scan with
// exactly one read per page and no re-reads.
func TestPoolScanWorkload(t *testing.T) {
	s := MustMemStore(64)
	var ids []PageID
	for i := 0; i < 100; i++ {
		id, _ := s.Allocate()
		ids = append(ids, id)
	}
	p := MustPool(s, 3, LRU)
	s.ResetStats()
	for _, id := range ids {
		// Each page accessed twice in a row (as a merge re-examines
		// the current page) and then never again.
		for j := 0; j < 2; j++ {
			if _, err := p.Get(id); err != nil {
				t.Fatal(err)
			}
			p.Unpin(id, false)
		}
	}
	if got := s.Stats().Reads; got != 100 {
		t.Errorf("scan read %d pages physically, want 100", got)
	}
	if p.Stats().Hits != 100 {
		t.Errorf("hits = %d, want 100", p.Stats().Hits)
	}
}

func TestSimulatedTime(t *testing.T) {
	s := IOStats{Reads: 10, Writes: 5, Allocs: 100}
	if got := s.SimulatedTime(EraDiskAccess); got != 450*time.Millisecond {
		t.Errorf("SimulatedTime = %v, want 450ms", got)
	}
	if (IOStats{}).SimulatedTime(EraDiskAccess) != 0 {
		t.Errorf("empty stats should cost nothing")
	}
}

// Package faultfs is a deterministic fault-injecting filesystem for
// crash-recovery testing. It implements disk.FS in memory and can,
// at the Nth write operation of a run, fail the operation, tear it
// (write a sector-aligned prefix only), flip a bit in it, or
// hard-stop the whole filesystem as if the process had died.
//
// The crash model mirrors what a real kernel guarantees:
//
//   - Operations since a file's last Sync live in an unsynced journal.
//     On a crash each unsynced operation independently survives or
//     vanishes (chosen by the run's seeded RNG), so recovery code sees
//     every legal reordering-by-omission of its unflushed writes.
//   - Tears happen only at 64-byte sector boundaries, so a structure
//     that fits one sector (the store superblock) updates atomically —
//     the standard single-sector assumption.
//   - A torn write's prefix is always present in the crash image;
//     that is the write the device was executing when power failed.
//
// A typical schedule: run the workload once unarmed to count its
// write operations, pick a fault index in [1, count] from the seed,
// Arm the plan, run again until ErrCrashed/ErrInjected surfaces, take
// CrashImage, and recover against it.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"probe/internal/disk"
)

// SectorSize is the granularity at which torn writes are cut. Writes
// of at most one sector are atomic: they are either wholly present or
// wholly absent after a crash, never partial.
const SectorSize = 64

// ErrCrashed is returned by every operation after the filesystem has
// hard-stopped. Code under test must treat it like process death:
// abandon the session and recover from a CrashImage.
var ErrCrashed = errors.New("faultfs: crashed")

// ErrInjected is returned by an operation that was failed by plan
// (an I/O error; the filesystem stays alive).
var ErrInjected = errors.New("faultfs: injected fault")

// Plan schedules at most one fault of each kind against a run's
// global write-operation counter (WriteAt, Truncate, Sync and Create
// each count as one operation; the first operation is 1; zero means
// never).
type Plan struct {
	// Seed drives every random choice of the run: torn-prefix
	// lengths, flipped bit positions, and which unsynced operations
	// survive a crash.
	Seed int64
	// FailAt makes the Nth operation return ErrInjected without
	// taking effect.
	FailAt int
	// TornAt makes the Nth operation (if a WriteAt) apply only a
	// sector-aligned prefix and then hard-stops the filesystem. For
	// other operations it acts like CrashAt.
	TornAt int
	// FlipAt makes the Nth operation (if a WriteAt) apply with a
	// single seeded bit inverted; the run continues. Other operations
	// are unaffected.
	FlipAt int
	// CrashAt hard-stops the filesystem at the Nth operation; the
	// operation itself does not happen.
	CrashAt int
}

type pendingOp struct {
	off    int64  // write offset, or -1 for truncate
	data   []byte // written bytes (nil for truncate)
	size   int64  // truncate size
	sticky bool   // always survives a crash (a torn prefix)
}

type memFile struct {
	synced  []byte // contents as of the last Sync
	data    []byte // contents the running process sees
	pending []pendingOp
}

// FS is the fault-injecting in-memory filesystem.
type FS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	plan    Plan
	rng     *rand.Rand
	armed   bool
	ops     int
	crashed bool
}

// New returns an empty, unarmed filesystem: all operations succeed
// and nothing is counted.
func New() *FS {
	return &FS{files: make(map[string]*memFile)}
}

// Arm resets the operation counter and activates plan. Call it after
// setup (or after a dry run) so only the workload's operations count.
func (fs *FS) Arm(plan Plan) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.plan = plan
	fs.rng = rand.New(rand.NewSource(plan.Seed))
	fs.armed = true
	fs.ops = 0
	fs.crashed = false
}

// Disarm deactivates fault injection; operations still count.
func (fs *FS) Disarm() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.armed = false
}

// Ops returns the number of write operations performed since the last
// Arm (or since creation). Dry runs use it to size a fault index.
func (fs *FS) Ops() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crashed reports whether the filesystem has hard-stopped.
func (fs *FS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// CrashImage materializes the on-disk state after the crash: each
// file's synced contents plus a seeded subset of its unsynced
// operations (sticky torn prefixes always included), applied in
// order. The result is a fresh, unarmed filesystem to recover
// against. It may also be taken from a live filesystem, simulating a
// crash at the current instant.
func (fs *FS) CrashImage() *FS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	rng := fs.rng
	if rng == nil {
		rng = rand.New(rand.NewSource(0))
	}
	img := New()
	// Deterministic iteration: files in sorted name order.
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		f := fs.files[name]
		data := append([]byte(nil), f.synced...)
		for _, op := range f.pending {
			if !op.sticky && rng.Intn(2) == 0 {
				continue // this unsynced operation never reached the platter
			}
			data = applyOp(data, op)
		}
		img.files[name] = &memFile{
			synced: append([]byte(nil), data...),
			data:   data,
		}
	}
	return img
}

// Clone returns an unarmed copy of the filesystem's current (live)
// state, as if every operation had been synced.
func (fs *FS) Clone() *FS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	img := New()
	for name, f := range fs.files {
		img.files[name] = &memFile{
			synced: append([]byte(nil), f.data...),
			data:   append([]byte(nil), f.data...),
		}
	}
	return img
}

func applyOp(data []byte, op pendingOp) []byte {
	if op.off < 0 {
		if op.size <= int64(len(data)) {
			return data[:op.size]
		}
		return append(data, make([]byte, op.size-int64(len(data)))...)
	}
	end := op.off + int64(len(op.data))
	if end > int64(len(data)) {
		data = append(data, make([]byte, end-int64(len(data)))...)
	}
	copy(data[op.off:end], op.data)
	return data
}

// faultAction describes what the injection point decided.
type faultAction int

const (
	actApply faultAction = iota
	actFail
	actCrash
	actTear
	actFlip
)

// step counts one write operation and decides its fate. The caller
// holds fs.mu.
func (fs *FS) step(isWrite bool) faultAction {
	if fs.crashed {
		return actCrash
	}
	fs.ops++
	if !fs.armed {
		return actApply
	}
	n := fs.ops
	switch {
	case n == fs.plan.FailAt:
		return actFail
	case n == fs.plan.CrashAt:
		fs.crashed = true
		return actCrash
	case n == fs.plan.TornAt:
		fs.crashed = true
		if isWrite {
			return actTear
		}
		return actCrash
	case n == fs.plan.FlipAt && isWrite:
		return actFlip
	}
	return actApply
}

// Create implements disk.FS. Creating (or truncating) a file counts
// as one write operation.
func (fs *FS) Create(path string) (disk.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	switch fs.step(false) {
	case actCrash:
		return nil, ErrCrashed
	case actFail:
		return nil, ErrInjected
	}
	f, ok := fs.files[path]
	if !ok {
		f = &memFile{}
		fs.files[path] = f
	} else {
		f.pending = append(f.pending, pendingOp{off: -1, size: 0})
		f.data = f.data[:0]
	}
	return &file{fs: fs, f: f, path: path}, nil
}

// Open implements disk.FS.
func (fs *FS) Open(path string) (disk.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("faultfs: open %s: file does not exist", path)
	}
	return &file{fs: fs, f: f, path: path}, nil
}

// Stat implements disk.FS.
func (fs *FS) Stat(path string) (int64, bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return 0, false, ErrCrashed
	}
	f, ok := fs.files[path]
	if !ok {
		return 0, false, nil
	}
	return int64(len(f.data)), true, nil
}

// file is an open handle. Handles share the underlying memFile, like
// OS file descriptors share an inode.
type file struct {
	fs   *FS
	f    *memFile
	path string
}

// ReadAt implements io.ReaderAt.
func (h *file) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt: the injection point for torn writes
// and bit flips.
func (h *file) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	switch h.fs.step(true) {
	case actCrash:
		return 0, ErrCrashed
	case actFail:
		return 0, ErrInjected
	case actTear:
		// Keep a sector-aligned prefix; it is sticky — the device was
		// mid-write when power failed.
		sectors := len(p) / SectorSize
		keep := 0
		if sectors > 0 {
			keep = h.fs.rng.Intn(sectors) * SectorSize
		}
		if keep > 0 {
			op := pendingOp{off: off, data: append([]byte(nil), p[:keep]...), sticky: true}
			h.f.pending = append(h.f.pending, op)
			h.f.data = applyOp(h.f.data, op)
		}
		return 0, ErrCrashed
	case actFlip:
		q := append([]byte(nil), p...)
		if len(q) > 0 {
			bit := h.fs.rng.Intn(len(q) * 8)
			q[bit/8] ^= 1 << (bit % 8)
		}
		op := pendingOp{off: off, data: q}
		h.f.pending = append(h.f.pending, op)
		h.f.data = applyOp(h.f.data, op)
		return len(p), nil
	}
	op := pendingOp{off: off, data: append([]byte(nil), p...)}
	h.f.pending = append(h.f.pending, op)
	h.f.data = applyOp(h.f.data, op)
	return len(p), nil
}

// Truncate implements disk.File.
func (h *file) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	switch h.fs.step(false) {
	case actCrash:
		return ErrCrashed
	case actFail:
		return ErrInjected
	}
	op := pendingOp{off: -1, size: size}
	h.f.pending = append(h.f.pending, op)
	h.f.data = applyOp(h.f.data, op)
	return nil
}

// Sync implements disk.File: the file's unsynced journal becomes
// durable and can no longer be lost to a crash.
func (h *file) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	switch h.fs.step(false) {
	case actCrash:
		return ErrCrashed
	case actFail:
		return ErrInjected
	}
	h.f.synced = append(h.f.synced[:0], h.f.data...)
	h.f.pending = nil
	return nil
}

// Size implements disk.File.
func (h *file) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	return int64(len(h.f.data)), nil
}

// Close implements disk.File. Closing never syncs.
func (h *file) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return ErrCrashed
	}
	return nil
}

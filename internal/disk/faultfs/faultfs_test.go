package faultfs_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"probe/internal/disk"
	"probe/internal/disk/faultfs"
)

func TestFaultFSBasics(t *testing.T) {
	fsys := faultfs.New()
	f, err := fsys.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil || string(buf) != "hello" {
		t.Fatalf("read back: %q, %v", buf, err)
	}
	size, exists, err := fsys.Stat("a")
	if err != nil || !exists || size != 5 {
		t.Fatalf("stat: %d %v %v", size, exists, err)
	}
	if _, _, err := fsys.Stat("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Open("b"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
}

func TestFaultFSUnsyncedLostOnCrash(t *testing.T) {
	fsys := faultfs.New()
	f, _ := fsys.Create("a")
	f.WriteAt([]byte("durable"), 0)
	f.Sync()
	// Arm with a far-away crash so the RNG is seeded, then write
	// without syncing.
	fsys.Arm(faultfs.Plan{Seed: 42})
	f.WriteAt([]byte("vanishes"), 0)
	img := fsys.CrashImage()
	g, err := img.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	// The unsynced write either survived wholly or vanished wholly.
	if string(buf) != "durable" && string(buf) != "vanishe" {
		t.Fatalf("crash image holds %q", buf)
	}
}

func TestFaultFSCrashAt(t *testing.T) {
	fsys := faultfs.New()
	f, _ := fsys.Create("a")
	fsys.Arm(faultfs.Plan{Seed: 1, CrashAt: 2})
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("op 1 should succeed: %v", err)
	}
	if _, err := f.WriteAt([]byte("y"), 1); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("op 2 should crash: %v", err)
	}
	if !fsys.Crashed() {
		t.Fatal("not crashed")
	}
	if err := f.Sync(); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("op after crash: %v", err)
	}
}

func TestFaultFSTornWriteSectorAligned(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		fsys := faultfs.New()
		f, _ := fsys.Create("a")
		f.Sync()
		fsys.Arm(faultfs.Plan{Seed: seed, TornAt: 1})
		data := bytes.Repeat([]byte{0xAA}, 4*faultfs.SectorSize)
		if _, err := f.WriteAt(data, 0); !errors.Is(err, faultfs.ErrCrashed) {
			t.Fatalf("torn write should crash: %v", err)
		}
		img := fsys.CrashImage()
		g, err := img.Open("a")
		if err != nil {
			t.Fatal(err)
		}
		size, _ := g.Size()
		if size%faultfs.SectorSize != 0 {
			t.Fatalf("seed %d: torn prefix of %d bytes is not sector-aligned", seed, size)
		}
		if size >= int64(len(data)) {
			t.Fatalf("seed %d: torn write survived whole (%d bytes)", seed, size)
		}
	}
}

func TestFaultFSDeterministicImages(t *testing.T) {
	build := func() *faultfs.FS {
		fsys := faultfs.New()
		f, _ := fsys.Create("a")
		f.WriteAt([]byte("base"), 0)
		f.Sync()
		fsys.Arm(faultfs.Plan{Seed: 7, CrashAt: 5})
		for i := 0; i < 10; i++ {
			if _, err := f.WriteAt([]byte{byte(i)}, int64(i)); err != nil {
				break
			}
		}
		return fsys.CrashImage()
	}
	a, b := build(), build()
	fa, _ := a.Open("a")
	fb, _ := b.Open("a")
	sa, _ := fa.Size()
	sb, _ := fb.Size()
	if sa != sb {
		t.Fatalf("sizes differ: %d vs %d", sa, sb)
	}
	ba := make([]byte, sa)
	bb := make([]byte, sb)
	fa.ReadAt(ba, 0)
	fb.ReadAt(bb, 0)
	if !bytes.Equal(ba, bb) {
		t.Fatal("same seed produced different crash images")
	}
}

// The store-level crash-recovery property: run a seeded schedule of
// allocate/write/free/checkpoint against a RecoverableStore with one
// injected fault, crash, recover from the image, and require the
// recovered store to equal an acknowledged (or committed-in-flight)
// checkpoint — or, for bit flips only, to refuse with ChecksumError.
const storeHarnessSeeds = 200

type storeStep struct {
	op int // 0 alloc, 1 write, 2 free, 3 checkpoint
	n  int
}

func genStoreSteps(rng *rand.Rand) []storeStep {
	n := 40 + rng.Intn(40)
	steps := make([]storeStep, n)
	for i := range steps {
		r := rng.Intn(100)
		var op int
		switch {
		case r < 30:
			op = 0
		case r < 70:
			op = 1
		case r < 80:
			op = 2
		default:
			op = 3
		}
		steps[i] = storeStep{op: op, n: rng.Intn(1 << 30)}
	}
	steps[n-1] = storeStep{op: 3} // end on a checkpoint attempt
	return steps
}

type storeModel map[disk.PageID][]byte

func (m storeModel) clone() storeModel {
	c := make(storeModel, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func (m storeModel) liveIDs() []disk.PageID {
	ids := make([]disk.PageID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func fillPage(size int, fill byte) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = fill
	}
	return b
}

// runStoreSteps executes the schedule, tracking the last acknowledged
// checkpoint state and the (at most one) checkpoint that failed after
// possibly committing.
func runStoreSteps(fsys *faultfs.FS, rs *disk.RecoverableStore, steps []storeStep) (acked, maybe storeModel) {
	const pageSize = 128
	live := storeModel{}
	acked = storeModel{}
	for _, st := range steps {
		if fsys.Crashed() {
			break
		}
		switch st.op {
		case 0:
			if id, err := rs.Allocate(); err == nil {
				live[id] = fillPage(pageSize, 0)
			}
		case 1:
			ids := live.liveIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[st.n%len(ids)]
			fill := byte(st.n)
			if err := rs.Write(id, fillPage(pageSize, fill)); err == nil {
				live[id] = fillPage(pageSize, fill)
			}
		case 2:
			ids := live.liveIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[st.n%len(ids)]
			if err := rs.Free(id); err == nil {
				delete(live, id)
			}
		case 3:
			cand := live.clone()
			if err := rs.Checkpoint(); err == nil {
				acked = cand
				maybe = nil
			} else if maybe == nil {
				maybe = cand
			}
		}
	}
	return acked, maybe
}

func matchStoreState(rs *disk.RecoverableStore, m storeModel) error {
	if rs.NumPages() != len(m) {
		return fmt.Errorf("NumPages %d, want %d", rs.NumPages(), len(m))
	}
	buf := make([]byte, rs.PageSize())
	for id, want := range m {
		if err := rs.Read(id, buf); err != nil {
			return fmt.Errorf("read %d: %w", id, err)
		}
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("page %d content mismatch", id)
		}
	}
	return nil
}

func planForSeed(rng *rand.Rand, seed int64, w int) (faultfs.Plan, string) {
	at := 1 + rng.Intn(w)
	switch seed % 4 {
	case 0:
		return faultfs.Plan{Seed: seed, CrashAt: at}, "crash"
	case 1:
		return faultfs.Plan{Seed: seed, TornAt: at}, "torn"
	case 2:
		return faultfs.Plan{Seed: seed, FailAt: at}, "fail"
	default:
		return faultfs.Plan{Seed: seed, FlipAt: at, CrashAt: at + 1 + rng.Intn(20)}, "flip"
	}
}

// recordFailureSeed appends a failing seed to $CRASH_SEED_FILE so CI
// can archive it for reproduction.
func recordFailureSeed(harness string, seed int64, kind string) {
	path := os.Getenv("CRASH_SEED_FILE")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	fmt.Fprintf(f, "%s seed=%d kind=%s\n", harness, seed, kind)
	f.Close()
}

func TestStoreCrashRecoveryProperty(t *testing.T) {
	for seed := int64(0); seed < storeHarnessSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			kind := runOneStoreSchedule(t, seed)
			if t.Failed() {
				recordFailureSeed("store", seed, kind)
			}
		})
	}
}

func runOneStoreSchedule(t *testing.T, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	steps := genStoreSteps(rng)

	// Dry run: count the schedule's write operations.
	dry := faultfs.New()
	rs, err := disk.CreateRecoverableStore(dry, "db", 128)
	if err != nil {
		t.Fatal(err)
	}
	dry.Arm(faultfs.Plan{}) // reset the op counter; no faults
	runStoreSteps(dry, rs, steps)
	w := dry.Ops()
	if w == 0 {
		t.Fatal("schedule performed no write operations")
	}

	// Armed run: same schedule, one fault.
	plan, kind := planForSeed(rng, seed, w)
	fsys := faultfs.New()
	rs2, err := disk.CreateRecoverableStore(fsys, "db", 128)
	if err != nil {
		t.Fatal(err)
	}
	fsys.Arm(plan)
	acked, maybe := runStoreSteps(fsys, rs2, steps)

	// Crash (or stop) and recover.
	img := fsys.CrashImage()
	rec, _, err := disk.RecoverStore(img, "db")
	if err != nil {
		var ce *disk.ChecksumError
		if kind == "flip" && errors.As(err, &ce) {
			return kind // a detected double fault: corruption refused
		}
		t.Fatalf("kind=%s: recovery failed: %v", kind, err)
	}
	defer rec.Close()

	errAcked := matchStoreState(rec, acked)
	var errMaybe error
	if maybe != nil {
		errMaybe = matchStoreState(rec, maybe)
	} else {
		errMaybe = fmt.Errorf("no in-flight checkpoint")
	}
	if errAcked != nil && errMaybe != nil {
		t.Fatalf("kind=%s: recovered state matches no acknowledged checkpoint:\n  vs acked: %v\n  vs in-flight: %v", kind, errAcked, errMaybe)
	}

	// The recovered store must accept new work and checkpoint it.
	id, err := rec.Allocate()
	if err != nil {
		t.Fatalf("allocate after recovery: %v", err)
	}
	if err := rec.Write(id, fillPage(128, 0x5A)); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if err := rec.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}

	// Idempotence: recovering the recovered image changes nothing.
	if seed%5 == 0 {
		img2 := img.Clone()
		rec2, _, err := disk.RecoverStore(img2, "db")
		if err != nil {
			t.Fatalf("re-recovery: %v", err)
		}
		rec2.Close()
	}
	return kind
}

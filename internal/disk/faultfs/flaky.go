package faultfs

import (
	"sync"

	"probe/internal/disk"
)

// FlakyStore wraps a disk.Store and fails chosen page writes with
// ErrInjected, for exercising error paths above the store (e.g. the
// buffer pool keeping a frame dirty and resident after a failed
// write-back).
type FlakyStore struct {
	disk.Store

	mu     sync.Mutex
	writes int
	failAt map[int]bool
}

// NewFlakyStore wraps inner, failing the writes whose 1-based
// sequence numbers appear in failAt.
func NewFlakyStore(inner disk.Store, failAt ...int) *FlakyStore {
	fs := &FlakyStore{Store: inner, failAt: make(map[int]bool, len(failAt))}
	for _, n := range failAt {
		fs.failAt[n] = true
	}
	return fs
}

// Write implements disk.Store.
func (s *FlakyStore) Write(id disk.PageID, buf []byte) error {
	s.mu.Lock()
	s.writes++
	fail := s.failAt[s.writes]
	s.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return s.Store.Write(id, buf)
}

// Writes returns the number of Write calls seen (including failed
// ones).
func (s *FlakyStore) Writes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}

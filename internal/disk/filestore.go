package disk

import (
	"fmt"
	"sync"
)

// FileStore is a Store backed by an operating-system file. The file
// starts with a 64-byte superblock; page i then lives in slot i at
// byte offset superblockLen + (i-1)*(pageHeaderLen+pageSize). Every
// slot carries a CRC32C-checksummed header (page id, LSN), so Read
// detects torn writes, bit rot and misdirected writes and reports
// them as *ChecksumError rather than returning wrong bytes.
//
// PageSize is the logical payload size: callers see pages of exactly
// the size they asked for; the header is internal.
//
// The free list is kept in memory during a session; freed slots are
// stamped with a zero header so OpenFileStore can rebuild the
// allocation state from a header scan.
type FileStore struct {
	mu        sync.Mutex
	f         File
	path      string
	pageSize  int // payload bytes per page
	next      PageID
	freeList  []PageID
	allocated map[PageID]bool
	corrupt   map[PageID]bool // slots that failed the open-time scan
	unstamped []PageID        // scanned slots allocated with LSN 0 (never checkpointed)
	lsn       uint64          // highest LSN stamped or seen
	ckptLSN   uint64          // superblock checkpoint LSN
	closed    bool
	stats     IOStats
}

// CreateFileStore creates (or truncates) the store file at path and
// writes its superblock durably before returning.
func CreateFileStore(path string, pageSize int) (*FileStore, error) {
	return CreateFileStoreFS(OSFS{}, path, pageSize)
}

// CreateFileStoreFS is CreateFileStore on an injected filesystem.
func CreateFileStoreFS(fsys FS, path string, pageSize int) (*FileStore, error) {
	if pageSize < 64 {
		return nil, fmt.Errorf("disk: page size %d too small (minimum 64)", pageSize)
	}
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("disk: create %s: %w", path, err)
	}
	s := &FileStore{
		f:         f,
		path:      path,
		pageSize:  pageSize,
		next:      1,
		allocated: make(map[PageID]bool),
		corrupt:   make(map[PageID]bool),
	}
	if err := s.stampSuperblock(0); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// OpenFileStore opens an existing store file, reading the page size
// from the superblock and rebuilding the allocation state (next id,
// free list) from the file size and a full header scan. Slots whose
// checksum fails are recorded as corrupt: they count as allocated,
// reading them returns *ChecksumError, and CorruptPages exposes them
// so a recovery layer can decide whether its log repairs them. A
// trailing partial slot (a torn file extension) is truncated away.
func OpenFileStore(path string) (*FileStore, error) {
	return OpenFileStoreFS(OSFS{}, path)
}

// OpenFileStoreFS is OpenFileStore on an injected filesystem.
func OpenFileStoreFS(fsys FS, path string) (*FileStore, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", path, err)
	}
	s, err := openScan(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func openScan(f File, path string) (*FileStore, error) {
	sb := make([]byte, superblockLen)
	size, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("disk: stat %s: %w", path, err)
	}
	if size < superblockLen {
		return nil, &ChecksumError{Path: path, Reason: "file too small for superblock"}
	}
	if err := readFull(f, sb, 0); err != nil {
		return nil, fmt.Errorf("disk: %s: %w", path, err)
	}
	pageSize, ckptLSN, err := decodeSuperblock(path, sb)
	if err != nil {
		return nil, err
	}
	if pageSize < 64 {
		return nil, &ChecksumError{Path: path, Reason: fmt.Sprintf("implausible page size %d", pageSize)}
	}
	s := &FileStore{
		f:         f,
		path:      path,
		pageSize:  pageSize,
		next:      1,
		allocated: make(map[PageID]bool),
		corrupt:   make(map[PageID]bool),
		ckptLSN:   ckptLSN,
		lsn:       ckptLSN,
	}
	slot := int64(pageHeaderLen + pageSize)
	n := (size - superblockLen) / slot
	if rem := superblockLen + n*slot; rem != size {
		// Torn extension: drop the partial trailing slot.
		if err := f.Truncate(rem); err != nil {
			return nil, fmt.Errorf("disk: %s: truncate torn tail: %w", path, err)
		}
	}
	buf := make([]byte, slot)
	for i := int64(1); i <= n; i++ {
		id := PageID(i)
		if err := readFull(f, buf, s.offset(id)); err != nil {
			return nil, fmt.Errorf("disk: %s: scan page %d: %w", path, id, err)
		}
		crc, hdrID, lsn := decodePageHeader(buf)
		switch {
		case isZero(buf[:pageHeaderLen]):
			// Never written or free-stamped: a free slot.
			s.freeList = append(s.freeList, id)
		case crc == pageCRC(buf) && hdrID == id:
			s.allocated[id] = true
			if lsn > s.lsn {
				s.lsn = lsn
			}
			if lsn == 0 {
				s.unstamped = append(s.unstamped, id)
			}
		case crc == pageCRC(buf) && hdrID == 0:
			// Explicit free stamp.
			s.freeList = append(s.freeList, id)
			if lsn > s.lsn {
				s.lsn = lsn
			}
		default:
			// Torn or corrupted slot: occupied but unreadable.
			s.allocated[id] = true
			s.corrupt[id] = true
		}
	}
	s.next = PageID(n + 1)
	// Reverse the free list so low ids are reused first (scan order
	// pushes ascending; allocation pops from the tail).
	for i, j := 0, len(s.freeList)-1; i < j; i, j = i+1, j-1 {
		s.freeList[i], s.freeList[j] = s.freeList[j], s.freeList[i]
	}
	return s, nil
}

// NewFileStore creates (or truncates) the file at path.
//
// Deprecated: use CreateFileStore, or OpenFileStore to open an
// existing store without destroying it.
func NewFileStore(path string, pageSize int) (*FileStore, error) {
	return CreateFileStore(path, pageSize)
}

// stampSuperblock durably rewrites the superblock with the given
// checkpoint LSN. The caller holds s.mu (or the store is private).
func (s *FileStore) stampSuperblock(ckptLSN uint64) error {
	if _, err := s.f.WriteAt(encodeSuperblock(s.pageSize, ckptLSN), 0); err != nil {
		return fmt.Errorf("disk: %s: write superblock: %w", s.path, err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("disk: %s: sync superblock: %w", s.path, err)
	}
	s.ckptLSN = ckptLSN
	return nil
}

// StampCheckpoint durably records that every page write with LSN <=
// lsn has reached the file (the final step of a checkpoint).
func (s *FileStore) StampCheckpoint(lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stampSuperblock(lsn)
}

// CheckpointLSN returns the superblock's checkpoint LSN.
func (s *FileStore) CheckpointLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckptLSN
}

// MaxLSN returns the highest LSN stamped on any page so far (including
// LSNs observed during the open scan).
func (s *FileStore) MaxLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lsn
}

// CorruptPages returns the pages whose slots failed verification
// during the open-time scan, in ascending order.
func (s *FileStore) CorruptPages() []PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PageID, 0, len(s.corrupt))
	for id := range s.corrupt {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// reclaimUnstamped frees every slot the open-time scan found allocated
// with LSN 0. Allocation stamps pages with LSN 0, and a checkpoint
// rewrites every allocated-since-last-checkpoint page with the LSN of
// its log record (always >= 1) — so after a crash an LSN-0 slot is an
// allocation that never reached a committed checkpoint: a leak nothing
// references. Recovery calls this right after opening, before log
// replay. Returns how many slots were reclaimed.
func (s *FileStore) reclaimUnstamped() (int, error) {
	s.mu.Lock()
	ids := s.unstamped
	s.unstamped = nil
	s.mu.Unlock()
	n := 0
	for _, id := range ids {
		if !s.isAllocated(id) {
			continue
		}
		if err := s.Free(id); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// SyncData flushes the page file to stable storage.
func (s *FileStore) SyncData() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("disk: %s: sync: %w", s.path, err)
	}
	return nil
}

// Close flushes and closes the underlying file. Close is idempotent:
// the second and later calls return nil.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("disk: %s: sync on close: %w", s.path, err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("disk: %s: close: %w", s.path, err)
	}
	return nil
}

// PageSize implements Store.
func (s *FileStore) PageSize() int { return s.pageSize }

func (s *FileStore) offset(id PageID) int64 {
	return superblockLen + int64(id-1)*int64(pageHeaderLen+s.pageSize)
}

// writeSlot stamps and writes a full slot. The caller holds s.mu.
func (s *FileStore) writeSlot(id PageID, hdrID PageID, lsn uint64, payload []byte) error {
	slot := make([]byte, pageHeaderLen+s.pageSize)
	copy(slot[pageHeaderLen:], payload)
	encodePageHeader(slot, hdrID, lsn)
	if _, err := s.f.WriteAt(slot, s.offset(id)); err != nil {
		return fmt.Errorf("disk: %s: write page %d: %w", s.path, id, err)
	}
	if lsn > s.lsn {
		s.lsn = lsn
	}
	return nil
}

// Allocate implements Store.
func (s *FileStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var id PageID
	if n := len(s.freeList); n > 0 {
		id = s.freeList[n-1]
		s.freeList = s.freeList[:n-1]
	} else {
		id = s.next
		if id == 0 {
			return InvalidPage, fmt.Errorf("disk: page ids exhausted")
		}
		s.next++
	}
	// Pages must read back zeroed; stamp a valid header with LSN 0 so
	// the slot scans as allocated but predates every checkpoint.
	if err := s.writeSlot(id, id, 0, nil); err != nil {
		return InvalidPage, err
	}
	s.allocated[id] = true
	delete(s.corrupt, id)
	s.stats.Allocs++
	return id, nil
}

// allocateExact marks a specific page id allocated, stamping its
// slot. Recovery uses it to replay allocation records whose file
// extension was lost in a crash; ordinary callers use Allocate.
func (s *FileStore) allocateExact(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == InvalidPage {
		return fmt.Errorf("disk: allocateExact of invalid page")
	}
	if s.allocated[id] && !s.corrupt[id] {
		return nil // already durable
	}
	for s.next <= id {
		s.freeList = append(s.freeList, s.next)
		s.next++
	}
	for i, fid := range s.freeList {
		if fid == id {
			s.freeList = append(s.freeList[:i], s.freeList[i+1:]...)
			break
		}
	}
	if err := s.writeSlot(id, id, 0, nil); err != nil {
		return err
	}
	s.allocated[id] = true
	delete(s.corrupt, id)
	s.stats.Allocs++
	return nil
}

// Read implements Store. A slot that fails verification returns a
// *ChecksumError.
func (s *FileStore) Read(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.allocated[id] {
		return fmt.Errorf("disk: read of unallocated page %d", id)
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("disk: read buffer has %d bytes, want %d", len(buf), s.pageSize)
	}
	slot := make([]byte, pageHeaderLen+s.pageSize)
	if err := readFull(s.f, slot, s.offset(id)); err != nil {
		return fmt.Errorf("disk: %s: read page %d: %w", s.path, id, err)
	}
	crc, hdrID, _ := decodePageHeader(slot)
	if crc != pageCRC(slot) {
		return &ChecksumError{Path: s.path, Page: id, Reason: "crc mismatch"}
	}
	if hdrID != id {
		return &ChecksumError{Path: s.path, Page: id, Reason: fmt.Sprintf("slot stamped with page %d", hdrID)}
	}
	copy(buf, slot[pageHeaderLen:])
	s.stats.Reads++
	return nil
}

// Write implements Store, stamping the slot with the next internal
// LSN.
func (s *FileStore) Write(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeLocked(id, buf, s.lsn+1)
}

// WriteLSN writes the page stamping an explicit LSN (the WAL record's
// LSN during checkpoint apply and recovery).
func (s *FileStore) WriteLSN(id PageID, buf []byte, lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeLocked(id, buf, lsn)
}

func (s *FileStore) writeLocked(id PageID, buf []byte, lsn uint64) error {
	if !s.allocated[id] {
		return fmt.Errorf("disk: write of unallocated page %d", id)
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("disk: write buffer has %d bytes, want %d", len(buf), s.pageSize)
	}
	if err := s.writeSlot(id, id, lsn, buf); err != nil {
		return err
	}
	delete(s.corrupt, id)
	s.stats.Writes++
	return nil
}

// Free implements Store, stamping the slot as free so a header scan
// sees it.
func (s *FileStore) Free(id PageID) error { return s.FreeLSN(id, 0) }

// FreeLSN frees the page, stamping the slot with an explicit free
// marker (header page id 0) carrying lsn — the free's log record LSN
// during checkpoint apply and recovery. The stamp matters: a free
// applied from a batch that later proves unreadable must be as visible
// to the checkpoint-LSN verification as any page write, or it would
// silently erase state the last checkpoint still vouches for. The
// payload is zeroed so reallocation hands out a clean page.
func (s *FileStore) FreeLSN(id PageID, lsn uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.allocated[id] {
		return fmt.Errorf("disk: free of unallocated page %d", id)
	}
	if err := s.writeSlot(id, 0, lsn, nil); err != nil {
		return err
	}
	delete(s.allocated, id)
	delete(s.corrupt, id)
	s.freeList = append(s.freeList, id)
	s.stats.Frees++
	return nil
}

// isAllocated reports whether the page is currently allocated.
func (s *FileStore) isAllocated(id PageID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocated[id]
}

// NumPages implements Store.
func (s *FileStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.allocated)
}

// Stats implements Store.
func (s *FileStore) Stats() IOStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Store.
func (s *FileStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = IOStats{}
}

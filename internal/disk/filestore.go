package disk

import (
	"fmt"
	"os"
	"sync"
)

// FileStore is a Store backed by an operating-system file: page i
// lives at byte offset (i-1)*pageSize. It gives the zkd B+-tree a
// real persistent substrate; the free list is kept in memory (freed
// pages are reused within a session and the file is truncated only on
// Close).
type FileStore struct {
	mu        sync.Mutex
	f         *os.File
	pageSize  int
	next      PageID
	freeList  []PageID
	allocated map[PageID]bool
	stats     IOStats
}

// NewFileStore creates (or truncates) the file at path.
func NewFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize < 64 {
		return nil, fmt.Errorf("disk: page size %d too small (minimum 64)", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", path, err)
	}
	return &FileStore{
		f:         f,
		pageSize:  pageSize,
		next:      1,
		allocated: make(map[PageID]bool),
	}, nil
}

// Close flushes and closes the underlying file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// PageSize implements Store.
func (s *FileStore) PageSize() int { return s.pageSize }

func (s *FileStore) offset(id PageID) int64 {
	return int64(id-1) * int64(s.pageSize)
}

// Allocate implements Store.
func (s *FileStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var id PageID
	if n := len(s.freeList); n > 0 {
		id = s.freeList[n-1]
		s.freeList = s.freeList[:n-1]
	} else {
		id = s.next
		if id == 0 {
			return InvalidPage, fmt.Errorf("disk: page ids exhausted")
		}
		s.next++
	}
	// Pages must read back zeroed.
	zero := make([]byte, s.pageSize)
	if _, err := s.f.WriteAt(zero, s.offset(id)); err != nil {
		return InvalidPage, fmt.Errorf("disk: extend file: %w", err)
	}
	s.allocated[id] = true
	s.stats.Allocs++
	return id, nil
}

// Read implements Store.
func (s *FileStore) Read(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.allocated[id] {
		return fmt.Errorf("disk: read of unallocated page %d", id)
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("disk: read buffer has %d bytes, want %d", len(buf), s.pageSize)
	}
	if _, err := s.f.ReadAt(buf, s.offset(id)); err != nil {
		return fmt.Errorf("disk: read page %d: %w", id, err)
	}
	s.stats.Reads++
	return nil
}

// Write implements Store.
func (s *FileStore) Write(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.allocated[id] {
		return fmt.Errorf("disk: write of unallocated page %d", id)
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("disk: write buffer has %d bytes, want %d", len(buf), s.pageSize)
	}
	if _, err := s.f.WriteAt(buf, s.offset(id)); err != nil {
		return fmt.Errorf("disk: write page %d: %w", id, err)
	}
	s.stats.Writes++
	return nil
}

// Free implements Store.
func (s *FileStore) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.allocated[id] {
		return fmt.Errorf("disk: free of unallocated page %d", id)
	}
	delete(s.allocated, id)
	s.freeList = append(s.freeList, id)
	s.stats.Frees++
	return nil
}

// NumPages implements Store.
func (s *FileStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.allocated)
}

// Stats implements Store.
func (s *FileStore) Stats() IOStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Store.
func (s *FileStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = IOStats{}
}

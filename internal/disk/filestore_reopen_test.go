package disk

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFileStoreCreateOpenSplit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	s, err := CreateFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	payload := func(i int) []byte {
		b := make([]byte, 128)
		for j := range b {
			b[j] = byte(i * 7)
		}
		return b
	}
	for i := 0; i < 5; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if err := s.Write(id, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Free one page in the middle so the reopen scan must rebuild a
	// free list, not just a high-water mark.
	if err := s.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.PageSize() != 128 {
		t.Fatalf("reopened page size %d, want 128", r.PageSize())
	}
	if r.NumPages() != 4 {
		t.Fatalf("reopened NumPages %d, want 4", r.NumPages())
	}
	buf := make([]byte, 128)
	for i, id := range ids {
		if i == 2 {
			if err := r.Read(id, buf); err == nil {
				t.Fatal("freed page readable after reopen")
			}
			continue
		}
		if err := r.Read(id, buf); err != nil {
			t.Fatalf("read page %d after reopen: %v", id, err)
		}
		if !bytes.Equal(buf, payload(i)) {
			t.Fatalf("page %d contents changed across reopen", id)
		}
	}
	// The freed slot must be reused before the file grows.
	id, err := r.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id != ids[2] {
		t.Fatalf("allocate after reopen returned %d, want freed slot %d", id, ids[2])
	}
	// Allocation resumes past the old high-water mark after that.
	id2, err := r.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id2 != PageID(len(ids)+1) {
		t.Fatalf("next fresh page %d, want %d", id2, len(ids)+1)
	}
}

func TestFileStoreOpenMissing(t *testing.T) {
	if _, err := OpenFileStore(filepath.Join(t.TempDir(), "absent.db")); err == nil {
		t.Fatal("open of missing store succeeded")
	}
}

func TestFileStoreOpenDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	s, err := CreateFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 128)
	copy(data, "important")
	if err := s.Write(id, data); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte on disk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[superblockLen+pageHeaderLen+3] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.CorruptPages(); len(got) != 1 || got[0] != id {
		t.Fatalf("corrupt pages %v, want [%d]", got, id)
	}
	var ce *ChecksumError
	if err := r.Read(id, make([]byte, 128)); !errors.As(err, &ce) {
		t.Fatalf("read of corrupt page: want ChecksumError, got %v", err)
	}
	// A fresh write heals the slot.
	if err := r.Write(id, data); err != nil {
		t.Fatal(err)
	}
	if err := r.Read(id, make([]byte, 128)); err != nil {
		t.Fatalf("read after healing write: %v", err)
	}
	if len(r.CorruptPages()) != 0 {
		t.Fatalf("slot still marked corrupt after rewrite")
	}
}

func TestFileStoreOpenRejectsBadSuperblock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	if err := os.WriteFile(path, make([]byte, superblockLen), 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *ChecksumError
	if _, err := OpenFileStore(path); !errors.As(err, &ce) {
		t.Fatalf("zero superblock: want ChecksumError, got %v", err)
	}
	if err := os.WriteFile(path, []byte("tiny"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); !errors.As(err, &ce) {
		t.Fatalf("truncated superblock: want ChecksumError, got %v", err)
	}
}

func TestFileStoreOpenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	s, err := CreateFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Append half a slot: a file extension torn by a crash.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 70)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumPages() != 1 {
		t.Fatalf("NumPages %d, want 1", r.NumPages())
	}
	next, err := r.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if next != id+1 {
		t.Fatalf("allocate after torn tail returned %d, want %d", next, id+1)
	}
}

func TestFileStoreCloseIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	s, err := CreateFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestFileStoreCloseWrapsPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	s, err := CreateFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Close the file underneath the store so its sync fails.
	s.f.Close()
	err = s.Close()
	if err == nil {
		t.Fatal("close over a dead file succeeded")
	}
	if !bytes.Contains([]byte(err.Error()), []byte(path)) {
		t.Fatalf("close error does not name the file: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close after failed close: %v", err)
	}
}

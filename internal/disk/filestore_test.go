package disk

import (
	"bytes"
	"path/filepath"
	"testing"
)

func newTestFileStore(t *testing.T) *FileStore {
	t.Helper()
	s, err := NewFileStore(filepath.Join(t.TempDir(), "store.db"), 128)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestFileStoreRoundTrip(t *testing.T) {
	s := newTestFileStore(t)
	if s.PageSize() != 128 {
		t.Fatalf("PageSize = %d", s.PageSize())
	}
	a, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("duplicate page ids")
	}
	bufA := make([]byte, 128)
	bufB := make([]byte, 128)
	for i := range bufA {
		bufA[i] = byte(i)
		bufB[i] = byte(255 - i)
	}
	if err := s.Write(a, bufA); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(b, bufB); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := s.Read(a, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bufA) {
		t.Errorf("page A corrupted")
	}
	if err := s.Read(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bufB) {
		t.Errorf("page B corrupted")
	}
	if s.NumPages() != 2 {
		t.Errorf("NumPages = %d", s.NumPages())
	}
	st := s.Stats()
	if st.Allocs != 2 || st.Reads != 2 || st.Writes != 2 {
		t.Errorf("stats = %+v", st)
	}
	s.ResetStats()
	if s.Stats() != (IOStats{}) {
		t.Errorf("ResetStats failed")
	}
}

func TestFileStoreErrors(t *testing.T) {
	if _, err := NewFileStore(filepath.Join(t.TempDir(), "x"), 8); err == nil {
		t.Errorf("tiny page size accepted")
	}
	if _, err := NewFileStore("/nonexistent-dir-zzz/x.db", 128); err == nil {
		t.Errorf("unwritable path accepted")
	}
	s := newTestFileStore(t)
	buf := make([]byte, 128)
	if err := s.Read(5, buf); err == nil {
		t.Errorf("read of unallocated page succeeded")
	}
	if err := s.Write(5, buf); err == nil {
		t.Errorf("write of unallocated page succeeded")
	}
	if err := s.Free(5); err == nil {
		t.Errorf("free of unallocated page succeeded")
	}
	id, _ := s.Allocate()
	if err := s.Read(id, make([]byte, 3)); err == nil {
		t.Errorf("short buffer accepted")
	}
}

func TestFileStoreFreeReuseZeroed(t *testing.T) {
	s := newTestFileStore(t)
	a, _ := s.Allocate()
	buf := make([]byte, 128)
	buf[0] = 0xAB
	s.Write(a, buf)
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := s.Allocate()
	if b != a {
		t.Errorf("freed page not reused")
	}
	got := make([]byte, 128)
	s.Read(b, got)
	if got[0] != 0 {
		t.Errorf("reallocated page not zeroed")
	}
}

// TestFileStoreUnderBTreeWorkload runs the buffer pool + a randomized
// page workload against the file store, mirroring the MemStore tests.
func TestFileStoreUnderPoolWorkload(t *testing.T) {
	s := newTestFileStore(t)
	p := MustPool(s, 4, LRU)
	var ids []PageID
	for i := 0; i < 32; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Data[0] = byte(i)
		p.Unpin(f.ID, true)
		ids = append(ids, f.ID)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		f, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data[0] != byte(i) {
			t.Fatalf("page %d content lost through file store", id)
		}
		p.Unpin(id, false)
	}
}

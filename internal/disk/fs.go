package disk

import (
	"fmt"
	"io"
	"os"
)

// File is the slice of *os.File the storage layer needs. It exists so
// tests can substitute a fault-injecting implementation (see
// internal/disk/faultfs) and exercise crash, torn-write and bit-flip
// schedules deterministically.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Sync flushes the file's contents to stable storage. Data not
	// yet synced may be lost — wholly or partially — on a crash.
	Sync() error
	// Size returns the file's current size in bytes.
	Size() (int64, error)
	// Close releases the file. Close does not imply Sync.
	Close() error
}

// FS opens the files a store lives on. The production implementation
// is OSFS; faultfs provides a deterministic in-memory one.
type FS interface {
	// Create creates the file, truncating it if it exists.
	Create(path string) (File, error)
	// Open opens an existing file for reading and writing.
	Open(path string) (File, error)
	// Stat reports whether the file exists and its size.
	Stat(path string) (size int64, exists bool, err error)
}

// OSFS is the FS backed by the operating system.
type OSFS struct{}

type osFile struct{ f *os.File }

func (o osFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o osFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o osFile) Truncate(size int64) error                { return o.f.Truncate(size) }
func (o osFile) Sync() error                              { return o.f.Sync() }
func (o osFile) Close() error                             { return o.f.Close() }

func (o osFile) Size() (int64, error) {
	fi, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Create implements FS.
func (OSFS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f: f}, nil
}

// Open implements FS.
func (OSFS) Open(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f: f}, nil
}

// Stat implements FS.
func (OSFS) Stat(path string) (int64, bool, error) {
	fi, err := os.Stat(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return fi.Size(), true, nil
}

// readFull reads exactly len(buf) bytes at off, normalizing the
// short-read error.
func readFull(f File, buf []byte, off int64) error {
	n, err := f.ReadAt(buf, off)
	if n == len(buf) {
		return nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("read %d bytes at %d: %w", n, off, err)
}

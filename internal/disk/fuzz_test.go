package disk_test

import (
	"bytes"
	"errors"
	"testing"

	"probe/internal/disk"
)

// FuzzWALReplay drives ReplayWAL with arbitrary bytes: it must never
// panic, and every input is classified as either a valid record
// prefix (optionally torn at a record boundary) or corruption
// reported as *disk.ChecksumError — never anything else.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(disk.EncodeWALHeader())
	rec := disk.EncodeWALRecord(disk.WALRecord{Kind: disk.RecPage, Page: 3, LSN: 7, Payload: []byte("pp")})
	commit := disk.EncodeWALRecord(disk.WALRecord{Kind: disk.RecCommit, Payload: disk.EncodeCommitPayload(1, 7)})
	full := append(append(append([]byte{}, disk.EncodeWALHeader()...), rec...), commit...)
	f.Add(full)
	f.Add(full[:len(full)-3])
	f.Add(append(append([]byte{}, full...), 0xEE))
	corrupt := append([]byte{}, full...)
	corrupt[20] ^= 0x01
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := disk.ReplayWAL("fuzz", data)
		if err != nil {
			var ce *disk.ChecksumError
			if !errors.As(err, &ce) {
				t.Fatalf("non-ChecksumError failure: %v", err)
			}
			return
		}
		// The valid prefix must re-encode to exactly the bytes that
		// were scanned, and replaying the re-encoding must agree —
		// the record boundary the scanner chose is real.
		enc := disk.EncodeWALHeader()
		if len(data) < len(enc) {
			if len(res.Records) != 0 {
				t.Fatalf("records out of a headerless log")
			}
			return
		}
		for _, r := range res.Records {
			enc = append(enc, disk.EncodeWALRecord(r)...)
		}
		if int64(len(enc)) != res.TailOffset {
			t.Fatalf("re-encoding is %d bytes, scanner stopped at %d", len(enc), res.TailOffset)
		}
		if !bytes.Equal(enc[16:], data[16:res.TailOffset]) {
			t.Fatalf("re-encoded records differ from scanned bytes")
		}
		res2, err := disk.ReplayWAL("fuzz", enc)
		if err != nil {
			t.Fatalf("re-replay failed: %v", err)
		}
		if len(res2.Records) != len(res.Records) || res2.Committed != res.Committed {
			t.Fatalf("re-replay disagrees: %d/%v vs %d/%v",
				len(res2.Records), res2.Committed, len(res.Records), res.Committed)
		}
	})
}

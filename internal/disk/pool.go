package disk

import (
	"container/list"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"probe/internal/obs"
)

// Policy selects the buffer pool's eviction strategy. LRU is the
// paper's choice (Section 4); FIFO and Random exist for the ablation
// benchmark that validates that choice.
type Policy int

const (
	// LRU evicts the least recently used unpinned page.
	LRU Policy = iota
	// FIFO evicts the oldest resident unpinned page.
	FIFO
	// Random evicts a uniformly random unpinned page.
	Random
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// PoolStats counts logical accesses through a buffer pool.
type PoolStats struct {
	Gets       uint64 // logical page requests
	Hits       uint64 // requests served from the pool
	Misses     uint64 // requests requiring a physical read
	Evictions  uint64
	WriteBacks uint64 // dirty pages written on eviction or flush
}

// HitRate returns Hits/Gets, or 0 for an unused pool.
func (s PoolStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// counters is the pool's internal, atomically updated form of
// PoolStats, so Stats can be read without taking the pool latch.
type counters struct {
	gets       atomic.Uint64
	hits       atomic.Uint64
	misses     atomic.Uint64
	evictions  atomic.Uint64
	writeBacks atomic.Uint64
}

func (c *counters) snapshot() PoolStats {
	return PoolStats{
		Gets:       c.gets.Load(),
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions.Load(),
		WriteBacks: c.writeBacks.Load(),
	}
}

func (c *counters) reset() {
	c.gets.Store(0)
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.writeBacks.Store(0)
}

// Frame is a pinned page resident in a buffer pool. Data is the
// page's contents; mutate it in place and call SetDirty, then Unpin.
type Frame struct {
	ID    PageID
	Data  []byte
	pins  int
	dirty bool
	elem  *list.Element
}

// SetDirty marks the frame's contents as modified so eviction and
// Flush write them back. Like mutating Data, it is a write operation:
// the caller must hold the page pinned and be the pool's only writer.
func (f *Frame) SetDirty() { f.dirty = true }

// Pool is a fixed-capacity page cache over a Store.
//
// Thread safety: all operations serialize on an internal latch, so a
// Pool is safe for any number of concurrent *readers* (Get/Unpin of
// pages whose Data they only read). Writers — anything that mutates a
// Frame's Data or calls SetDirty — must additionally be externally
// serialized against each other and against readers of the same page,
// because frame contents are handed out unlocked; see
// docs/parallelism.md for the layer-by-layer contract.
type Pool struct {
	store    Store
	capacity int
	policy   Policy

	mu     sync.Mutex
	frames map[PageID]*Frame
	order  *list.List // LRU/FIFO order: front = next eviction victim
	rng    *rand.Rand

	stats counters

	// span, when non-nil, receives a per-span attributed copy of the
	// access counters, so one query's buffer traffic is separable
	// from the pool's lifetime totals. See AttachSpan.
	span atomic.Pointer[obs.Span]
}

// NewPool creates a buffer pool holding up to capacity pages. The
// Random policy draws from a fixed-seed source; use NewPoolRand to
// inject one.
func NewPool(store Store, capacity int, policy Policy) (*Pool, error) {
	return NewPoolRand(store, capacity, policy, rand.New(rand.NewSource(0x5eed)))
}

// NewPoolRand is NewPool with an injected random source for the
// Random eviction policy, so pool behavior is reproducible in tests
// and ablation benchmarks. The pool takes ownership of rng: it must
// not be shared with other users (pool operations serialize access to
// it internally). A nil rng falls back to the default fixed seed.
func NewPoolRand(store Store, capacity int, policy Policy, rng *rand.Rand) (*Pool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("disk: pool capacity %d < 1", capacity)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(0x5eed))
	}
	return &Pool{
		store:    store,
		capacity: capacity,
		policy:   policy,
		frames:   make(map[PageID]*Frame, capacity),
		order:    list.New(),
		rng:      rng,
	}, nil
}

// MustPool is NewPool panicking on error.
func MustPool(store Store, capacity int, policy Policy) *Pool {
	p, err := NewPool(store, capacity, policy)
	if err != nil {
		panic(err)
	}
	return p
}

// Store returns the underlying store.
func (p *Pool) Store() Store { return p.store }

// Capacity returns the pool's frame capacity.
func (p *Pool) Capacity() int { return p.capacity }

// Stats returns the pool's access counters. It may be called
// concurrently with any pool operation.
func (p *Pool) Stats() PoolStats { return p.stats.snapshot() }

// ResetStats zeroes the pool's access counters.
func (p *Pool) ResetStats() { p.stats.reset() }

// AttachSpan directs per-access attribution at s until the next
// AttachSpan call, returning the previously attached span (nil
// detaches). Attribution is additional: the pool's own lifetime
// counters keep accumulating regardless.
//
// Like Stats, AttachSpan may be called concurrently with pool
// operations (the pointer is atomic and span counters are atomics),
// but attribution is only meaningful if the caller serializes
// operations it wants attributed — concurrent workloads should give
// each worker its own child span and attach the parent.
func (p *Pool) AttachSpan(s *obs.Span) *obs.Span {
	return p.span.Swap(s)
}

// Get pins the page in the pool, reading it from the store on a miss,
// and returns its frame. Callers must Unpin the frame when done.
func (p *Pool) Get(id PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sp := p.span.Load()
	p.stats.gets.Add(1)
	sp.Inc(obs.PoolGets)
	if f, ok := p.frames[id]; ok {
		p.stats.hits.Add(1)
		sp.Inc(obs.PoolHits)
		f.pins++
		if p.policy == LRU {
			p.order.MoveToBack(f.elem)
		}
		return f, nil
	}
	p.stats.misses.Add(1)
	sp.Inc(obs.PoolMisses)
	f, err := p.admit(id)
	if err != nil {
		return nil, err
	}
	if err := p.store.Read(id, f.Data); err != nil {
		p.discard(f)
		return nil, err
	}
	return f, nil
}

// NewPage allocates a fresh page in the store and pins an empty frame
// for it. Callers must Unpin the frame when done; the frame starts
// dirty so its (initially zero) contents reach the store.
func (p *Pool) NewPage() (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id, err := p.store.Allocate()
	if err != nil {
		return nil, err
	}
	f, err := p.admit(id)
	if err != nil {
		return nil, err
	}
	f.dirty = true
	return f, nil
}

// admit makes room if needed and installs a pinned frame for id. The
// caller holds p.mu.
func (p *Pool) admit(id PageID) (*Frame, error) {
	for len(p.frames) >= p.capacity {
		if err := p.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &Frame{ID: id, Data: make([]byte, p.store.PageSize()), pins: 1}
	f.elem = p.order.PushBack(f)
	p.frames[id] = f
	return f, nil
}

func (p *Pool) discard(f *Frame) {
	p.order.Remove(f.elem)
	delete(p.frames, f.ID)
}

// evictOne removes one unpinned frame according to the policy. The
// caller holds p.mu.
func (p *Pool) evictOne() error {
	var victim *Frame
	switch p.policy {
	case LRU, FIFO:
		for e := p.order.Front(); e != nil; e = e.Next() {
			f := e.Value.(*Frame)
			if f.pins == 0 {
				victim = f
				break
			}
		}
	case Random:
		var candidates []*Frame
		for e := p.order.Front(); e != nil; e = e.Next() {
			if f := e.Value.(*Frame); f.pins == 0 {
				candidates = append(candidates, f)
			}
		}
		if len(candidates) > 0 {
			victim = candidates[p.rng.Intn(len(candidates))]
		}
	}
	if victim == nil {
		return fmt.Errorf("disk: all %d frames pinned; cannot evict", len(p.frames))
	}
	if victim.dirty {
		if err := p.store.Write(victim.ID, victim.Data); err != nil {
			return err
		}
		p.stats.writeBacks.Add(1)
		p.span.Load().Inc(obs.PoolWriteBacks)
	}
	p.discard(victim)
	p.stats.evictions.Add(1)
	p.span.Load().Inc(obs.PoolEvictions)
	return nil
}

// Unpin releases one pin on the page. dirty marks the contents
// modified.
func (p *Pool) Unpin(id PageID, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("disk: unpin of non-resident page %d", id)
	}
	if f.pins <= 0 {
		return fmt.Errorf("disk: unpin of unpinned page %d", id)
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
	return nil
}

// Flush writes all dirty frames back to the store without evicting
// them.
func (p *Pool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *Pool) flushLocked() error {
	for e := p.order.Front(); e != nil; e = e.Next() {
		f := e.Value.(*Frame)
		if f.dirty {
			if err := p.store.Write(f.ID, f.Data); err != nil {
				return err
			}
			f.dirty = false
			p.stats.writeBacks.Add(1)
			p.span.Load().Inc(obs.PoolWriteBacks)
		}
	}
	return nil
}

// Checkpointer is implemented by stores whose writes become durable
// only at an explicit commit point (RecoverableStore). Stores without
// a checkpoint protocol simply don't implement it.
type Checkpointer interface {
	Checkpoint() error
}

// Checkpoint flushes every dirty frame to the store and then, if the
// store is a Checkpointer, commits its checkpoint protocol.
//
// Flush ordering contract: the pool only ever moves dirty pages to
// the store via Store.Write — on eviction, Flush, Drop and here — and
// a RecoverableStore.Write is by construction a WAL append plus an
// in-memory delta, never a data-file write. No dirty page can
// therefore reach the page file before its WAL record is synced: the
// file is written only inside Checkpoint/Recover, after the batch's
// commit record is durable. The pool needs no write-ordering logic of
// its own; it must only guarantee — as this method does — that every
// dirty frame has been handed to the store before Checkpoint is
// invoked, so the commit covers them.
func (p *Pool) Checkpoint() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.flushLocked(); err != nil {
		return err
	}
	if ck, ok := p.store.(Checkpointer); ok {
		return ck.Checkpoint()
	}
	return nil
}

// Drop removes the page from the pool (writing it back if dirty) and
// frees it in the store. The page must be unpinned.
func (p *Pool) Drop(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok {
		if f.pins > 0 {
			return fmt.Errorf("disk: drop of pinned page %d", id)
		}
		p.discard(f)
	}
	return p.store.Free(id)
}

// Resident returns the number of frames currently in the pool.
func (p *Pool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Pinned returns the number of resident frames with at least one pin
// — pages some operation is actively using and eviction cannot touch.
func (p *Pool) Pinned() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, f := range p.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}

// Invalidate empties the pool after flushing dirty pages, so the next
// accesses are cold. The experiment harness uses this between queries
// to make page-access counts reproducible.
func (p *Pool) Invalidate() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.flushLocked(); err != nil {
		return err
	}
	for _, f := range p.frames {
		if f.pins > 0 {
			return fmt.Errorf("disk: invalidate with pinned page %d", f.ID)
		}
	}
	p.frames = make(map[PageID]*Frame, p.capacity)
	p.order.Init()
	return nil
}

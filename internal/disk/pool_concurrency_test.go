package disk

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// replayRandomPool runs a fixed access pattern against a Random-policy
// pool built on the given source and returns the ids resident at the
// end plus the final stats — a full fingerprint of eviction behavior.
func replayRandomPool(t *testing.T, rng *rand.Rand) ([]PageID, PoolStats) {
	t.Helper()
	store := MustMemStore(128)
	pool, err := NewPoolRand(store, 8, Random, rng)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 32; i++ {
		f, err := pool.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID)
		if err := pool.Unpin(f.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	// A deterministic but shuffled re-access pattern, so eviction has
	// real choices to make.
	for i := 0; i < 200; i++ {
		id := ids[(i*13)%len(ids)]
		f, err := pool.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := pool.Unpin(f.ID, false); err != nil {
			t.Fatal(err)
		}
	}
	var resident []PageID
	for _, id := range ids {
		pool.mu.Lock()
		_, ok := pool.frames[id]
		pool.mu.Unlock()
		if ok {
			resident = append(resident, id)
		}
	}
	sort.Slice(resident, func(i, j int) bool { return resident[i] < resident[j] })
	return resident, pool.Stats()
}

// TestRandomEvictionReproducible: with an injected seeded source, the
// Random policy is a pure function of the access pattern — the
// property the buffer-policy ablation benchmark depends on.
func TestRandomEvictionReproducible(t *testing.T) {
	res1, stats1 := replayRandomPool(t, rand.New(rand.NewSource(7)))
	res2, stats2 := replayRandomPool(t, rand.New(rand.NewSource(7)))
	if fmt.Sprint(res1) != fmt.Sprint(res2) {
		t.Errorf("same seed, different resident sets:\n%v\n%v", res1, res2)
	}
	if stats1 != stats2 {
		t.Errorf("same seed, different stats: %+v vs %+v", stats1, stats2)
	}
	// A different seed must be able to change the eviction choices
	// (fixed workload, so this is deterministic, not flaky).
	res3, _ := replayRandomPool(t, rand.New(rand.NewSource(8)))
	if fmt.Sprint(res1) == fmt.Sprint(res3) {
		t.Errorf("different seeds produced identical resident sets; injection has no effect")
	}
	// nil rng falls back to the default fixed seed — same as NewPool.
	res4, _ := replayRandomPool(t, nil)
	res5, _ := replayRandomPool(t, rand.New(rand.NewSource(0x5eed)))
	if fmt.Sprint(res4) != fmt.Sprint(res5) {
		t.Errorf("nil rng does not match the default seed")
	}
}

// TestPoolConcurrentReaders hammers one pool from many goroutines:
// Get/Unpin of a page set larger than capacity (so eviction churns),
// with concurrent Stats reads and periodic Flushes. Run under -race
// this proves the pool latch covers every path.
func TestPoolConcurrentReaders(t *testing.T) {
	store := MustMemStore(128)
	pool := MustPool(store, 16, LRU)
	var ids []PageID
	for i := 0; i < 64; i++ {
		f, err := pool.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Data[0] = byte(i)
		f.SetDirty()
		ids = append(ids, f.ID)
		if err := pool.Unpin(f.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for w := 0; w < goroutines; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				idx := rng.Intn(len(ids))
				f, err := pool.Get(ids[idx])
				if err != nil {
					errc <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				if got := f.Data[0]; got != byte(idx) {
					errc <- fmt.Errorf("worker %d: page %d holds %d, want %d", w, ids[idx], got, idx)
					pool.Unpin(f.ID, false)
					return
				}
				if err := pool.Unpin(f.ID, false); err != nil {
					errc <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				if i%31 == 0 {
					pool.Stats()
					pool.Resident()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := pool.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions; the stress test did not exceed capacity")
	}
	if got := st.Gets; got != goroutines*300 {
		t.Errorf("stats lost updates: %d gets, want %d", got, goroutines*300)
	}
	if st.Hits+st.Misses != st.Gets {
		t.Errorf("hits %d + misses %d != gets %d", st.Hits, st.Misses, st.Gets)
	}
}

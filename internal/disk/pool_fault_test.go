package disk_test

import (
	"bytes"
	"errors"
	"testing"

	"probe/internal/disk"
	"probe/internal/disk/faultfs"
)

// TestPoolEvictionWriteErrorKeepsPageDirty pins down the pool's error
// contract: when evicting a dirty page fails at the store, the frame
// must stay resident and dirty so the data is not lost — the eviction
// (and the Get that needed the slot) fail instead.
func TestPoolEvictionWriteErrorKeepsPageDirty(t *testing.T) {
	inner, err := disk.NewMemStore(64)
	if err != nil {
		t.Fatal(err)
	}
	store := faultfs.NewFlakyStore(inner, 1) // the first write-back fails
	pool, err := disk.NewPool(store, 2, disk.LRU)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	copy(fa.Data, "precious")
	if err := pool.Unpin(fa.ID, true); err != nil {
		t.Fatal(err)
	}
	fb, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Unpin(fb.ID, true); err != nil {
		t.Fatal(err)
	}
	// The pool is full of dirty pages; admitting a third must try to
	// write one back, which fails.
	if _, err := pool.NewPage(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("want injected write failure, got %v", err)
	}
	if got := pool.Resident(); got != 2 {
		t.Fatalf("resident after failed eviction: %d, want 2", got)
	}
	// The dirty data must still be in the pool, not half-lost: a Get
	// must hit the frame without a store read.
	before := pool.Stats()
	f, err := pool.Get(fa.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(f.Data, []byte("precious")) {
		t.Fatalf("dirty page contents lost after failed eviction: %q", f.Data[:8])
	}
	after := pool.Stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("page not resident: hits %d -> %d", before.Hits, after.Hits)
	}
	if err := pool.Unpin(fa.ID, false); err != nil {
		t.Fatal(err)
	}
	// With the fault spent, the next eviction succeeds and the page
	// reaches the store intact.
	fc, err := pool.NewPage()
	if err != nil {
		t.Fatalf("eviction after fault cleared: %v", err)
	}
	if err := pool.Unpin(fc.ID, false); err != nil {
		t.Fatal(err)
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := inner.Read(fa.ID, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, []byte("precious")) {
		t.Fatalf("page reached the store corrupted: %q", buf[:8])
	}
}

package disk

import (
	"fmt"
	"sort"
	"sync"

	"probe/internal/obs"
)

// RecoverableStore is a crash-safe Store: a FileStore of checksummed
// pages guarded by a write-ahead log.
//
// Protocol (redo-only, no-force): Write never touches the page file.
// It appends a physical page image to the WAL (unsynced) and keeps
// the latest image per page in an in-memory delta. Checkpoint is the
// commit point:
//
//  1. append a commit record and group-fsync the WAL;
//  2. apply the delta — frees, then page images — to the page file;
//  3. fsync the page file;
//  4. durably stamp the superblock's checkpoint LSN;
//  5. reset the WAL and clear the delta.
//
// A crash before step 1's fsync loses at most the un-checkpointed
// delta: the page file still holds the previous checkpoint exactly. A
// crash after it is repaired by RecoverStore replaying the committed
// batch (idempotently) onto the page file. Because the page file is
// written only under a committed log, the classic WAL invariant — no
// page reaches the store before its log record is durable — holds by
// construction; disk.Pool's Checkpoint documents the matching
// flush-ordering contract for the layer above.
//
// Error handling is strict: once a WAL append, WAL sync or checkpoint
// apply fails, the store refuses further writes and checkpoints with
// the sticky first error (the lesson of the fsync-error studies: an
// I/O error during the commit protocol leaves on-disk state unknown,
// so the only safe continuation is recovery from the log). Reads stay
// available. Reopen with RecoverStore to resume.
type RecoverableStore struct {
	mu          sync.Mutex
	fs          *FileStore
	wal         *WAL
	dirty       map[PageID]*dirtyPage
	pendingFree map[PageID]uint64 // freed page -> LSN of its free record
	lsn         uint64
	failed      error
	stats       IOStats
	span        *obs.Span
	ckptHook    func(Segment) // log shipping: observes each completed batch

	walAppends       uint64
	walSyncs         uint64
	checkpoints      uint64
	pagesRecovered   uint64
	checksumFailures uint64
}

type dirtyPage struct {
	lsn uint64
	img []byte
}

// DurabilityStats counts the durability work a RecoverableStore has
// performed.
type DurabilityStats struct {
	// WALAppends is the number of records appended to the log.
	WALAppends uint64
	// WALSyncs is the number of group fsyncs issued on the log.
	WALSyncs uint64
	// Checkpoints is the number of completed checkpoints.
	Checkpoints uint64
	// PagesRecovered is the number of page images replayed from the
	// log when the store was opened.
	PagesRecovered uint64
	// ChecksumFailures counts reads that surfaced a *ChecksumError.
	ChecksumFailures uint64
}

// RecoveryInfo describes what RecoverStore found and did.
type RecoveryInfo struct {
	// Committed reports that the log held a complete committed batch
	// that was replayed onto the page file.
	Committed bool
	// RecordsReplayed is the number of valid log records scanned.
	RecordsReplayed int
	// PagesRecovered is the number of page images applied.
	PagesRecovered int
	// TornTail reports that the log ended in an incomplete record (a
	// crash mid-append), which was discarded.
	TornTail bool
	// PagesReclaimed is the number of allocated-but-never-checkpointed
	// slots (allocation stamps with LSN 0) freed during recovery.
	PagesReclaimed int
}

// walPath returns the log path paired with a store path.
func walPath(path string) string { return path + ".wal" }

// CreateRecoverableStore creates a new store (page file plus WAL) at
// path. The WAL lives beside it at path+".wal".
func CreateRecoverableStore(fsys FS, path string, pageSize int) (*RecoverableStore, error) {
	fs, err := CreateFileStoreFS(fsys, path, pageSize)
	if err != nil {
		return nil, err
	}
	wal, err := CreateWAL(fsys, walPath(path))
	if err != nil {
		fs.Close()
		return nil, err
	}
	return newRecoverable(fs, wal), nil
}

func newRecoverable(fs *FileStore, wal *WAL) *RecoverableStore {
	return &RecoverableStore{
		fs:          fs,
		wal:         wal,
		dirty:       make(map[PageID]*dirtyPage),
		pendingFree: make(map[PageID]uint64),
		lsn:         fs.MaxLSN(),
	}
}

// RecoverStore reopens the store at path after a crash or a clean
// close; the two are indistinguishable and handled identically, so
// recovery is idempotent — running it again on the result is a no-op.
//
// If the log ends in a committed batch, the batch is replayed onto
// the page file (repairing any torn checkpoint writes), the file is
// synced and stamped, and the log is reset. Otherwise the
// un-committed log tail is discarded — but only after verifying the
// page file really is the previous checkpoint: every page checksum
// must hold and no page may carry an LSN above the superblock's
// checkpoint LSN. A page file that fails that verification without a
// committed log to repair it is a double fault (e.g. a corrupted log
// and a torn checkpoint) and surfaces as *ChecksumError rather than
// silently wrong data.
func RecoverStore(fsys FS, path string) (*RecoverableStore, RecoveryInfo, error) {
	var info RecoveryInfo
	fs, err := OpenFileStoreFS(fsys, path)
	if err != nil {
		return nil, info, err
	}
	wp := walPath(path)
	var (
		wal     *WAL
		raw     []byte
		res     ReplayResult
		walErr  error
		missing bool
	)
	if _, exists, err := fsys.Stat(wp); err != nil {
		fs.Close()
		return nil, info, fmt.Errorf("disk: stat wal %s: %w", wp, err)
	} else if !exists {
		missing = true
	}
	if missing {
		wal, walErr = CreateWAL(fsys, wp)
		if walErr != nil {
			fs.Close()
			return nil, info, walErr
		}
	} else {
		wal, raw, walErr = openWAL(fsys, wp)
		if walErr != nil {
			fs.Close()
			return nil, info, walErr
		}
		res, walErr = ReplayWAL(wp, raw)
	}
	info.RecordsReplayed = len(res.Records)
	info.TornTail = res.Truncated

	rs := newRecoverable(fs, wal)
	// Allocation stamps the page file eagerly (outside the checkpoint
	// protocol) with LSN 0; every checkpointed page is rewritten with
	// its record LSN (>= 1). So LSN-0 slots found by the open scan are
	// allocations that never committed — reclaim them before replay so
	// the file holds exactly checkpointed state plus whatever the
	// committed batch below re-creates.
	if n, err := fs.reclaimUnstamped(); err != nil {
		rs.Close()
		return nil, info, err
	} else {
		info.PagesReclaimed = n
	}
	if res.Committed {
		n, maxLSN, err := rs.applyCommitted(res.Records)
		if err != nil {
			rs.Close()
			return nil, info, err
		}
		info.Committed = true
		info.PagesRecovered = n
		rs.pagesRecovered = uint64(n)
		if rem := fs.CorruptPages(); len(rem) > 0 {
			rs.Close()
			return nil, info, &ChecksumError{Path: path, Page: rem[0],
				Reason: fmt.Sprintf("%d pages unreadable after log replay", len(rem))}
		}
		if err := fs.SyncData(); err != nil {
			rs.Close()
			return nil, info, err
		}
		if err := fs.StampCheckpoint(maxLSN); err != nil {
			rs.Close()
			return nil, info, err
		}
		if err := wal.Reset(); err != nil {
			rs.Close()
			return nil, info, err
		}
	} else {
		// No committed batch: the page file must be exactly the last
		// checkpoint, or nothing can vouch for it.
		if corrupt := fs.CorruptPages(); len(corrupt) > 0 {
			rs.Close()
			return nil, info, &ChecksumError{Path: path, Page: corrupt[0],
				Reason: fmt.Sprintf("%d torn or corrupt pages with no committed log to repair them", len(corrupt))}
		}
		if fs.MaxLSN() > fs.CheckpointLSN() {
			rs.Close()
			return nil, info, &ChecksumError{Path: path,
				Reason: fmt.Sprintf("page LSN %d beyond checkpoint LSN %d with no committed log", fs.MaxLSN(), fs.CheckpointLSN())}
		}
		if walErr != nil {
			// The log itself was corrupt, but the page file verified
			// clean: the previous checkpoint is intact and the log
			// held nothing committed. Start it fresh.
			walErr = nil
		}
		if err := wal.Reset(); err != nil {
			rs.Close()
			return nil, info, err
		}
	}
	rs.lsn = fs.MaxLSN()
	if ck := fs.CheckpointLSN(); ck > rs.lsn {
		rs.lsn = ck
	}
	return rs, info, nil
}

// applyCommitted replays a committed batch onto the page file,
// returning the number of page images applied and the batch's max
// LSN. Replay is idempotent: page writes are physical images and
// allocation replay tolerates already-applied state.
func (s *RecoverableStore) applyCommitted(recs []WALRecord) (int, uint64, error) {
	return applyRecords(s.fs, s.wal.path, recs)
}

// applyRecords replays a record batch onto a page file. It is the
// shared apply path for crash recovery (applyCommitted) and replica
// log shipping (ApplyWALSegment); name labels errors with the batch's
// source.
func applyRecords(fs *FileStore, name string, recs []WALRecord) (int, uint64, error) {
	type pageState struct {
		alloc bool
		free  bool
		img   []byte
		lsn   uint64
	}
	state := make(map[PageID]*pageState)
	get := func(id PageID) *pageState {
		st, ok := state[id]
		if !ok {
			st = &pageState{}
			state[id] = st
		}
		return st
	}
	var maxLSN uint64
	for _, rec := range recs {
		if rec.LSN > maxLSN {
			maxLSN = rec.LSN
		}
		switch rec.Kind {
		case RecAlloc:
			st := get(rec.Page)
			st.alloc, st.free = true, false
			if st.img == nil {
				st.lsn = rec.LSN
			}
		case RecFree:
			st := get(rec.Page)
			st.free, st.img, st.lsn = true, nil, rec.LSN
		case RecPage:
			if len(rec.Payload) != fs.PageSize() {
				return 0, 0, &ChecksumError{Path: name, Page: rec.Page,
					Reason: fmt.Sprintf("log image has %d bytes, page size is %d", len(rec.Payload), fs.PageSize())}
			}
			st := get(rec.Page)
			st.img, st.lsn, st.free = rec.Payload, rec.LSN, false
		case RecCommit:
			if _, m, ok := decodeCommitPayload(rec.Payload); ok && m > maxLSN {
				maxLSN = m
			}
		}
	}
	ids := make([]PageID, 0, len(state))
	for id := range state {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	applied := 0
	for _, id := range ids {
		st := state[id]
		if st.free {
			if fs.isAllocated(id) {
				if err := fs.FreeLSN(id, st.lsn); err != nil {
					return 0, 0, err
				}
			}
			continue
		}
		if st.alloc || st.img != nil {
			if err := fs.allocateExact(id); err != nil {
				return 0, 0, err
			}
		}
		if st.img != nil {
			if err := fs.WriteLSN(id, st.img, st.lsn); err != nil {
				return 0, 0, err
			}
			applied++
		} else if st.alloc {
			// Allocated in the batch but never written: stamp the zero
			// page with the allocation record's LSN so the slot reads
			// as checkpointed (LSN >= 1), not as a reclaimable leak.
			if err := fs.WriteLSN(id, make([]byte, fs.PageSize()), st.lsn); err != nil {
				return 0, 0, err
			}
			applied++
		}
	}
	return applied, maxLSN, nil
}

// fail records the store's first fatal error and returns it.
func (s *RecoverableStore) fail(err error) error {
	if s.failed == nil {
		s.failed = fmt.Errorf("disk: store needs recovery: %w", err)
	}
	return err
}

// PageSize implements Store.
func (s *RecoverableStore) PageSize() int { return s.fs.PageSize() }

// Allocate implements Store. The allocation is logged; the zero page
// joins the delta so the next checkpoint materializes it.
func (s *RecoverableStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return InvalidPage, s.failed
	}
	id, err := s.fs.Allocate()
	if err != nil {
		// Sticky like every write-path failure: the slot stamp may have
		// partially reached the file, and the caller (a B+-tree split,
		// say) may be mid-mutation — only recovery can vouch for the
		// state now.
		return InvalidPage, s.fail(err)
	}
	s.lsn++
	if err := s.wal.Append(WALRecord{Kind: RecAlloc, Page: id, LSN: s.lsn}); err != nil {
		return InvalidPage, s.fail(err)
	}
	s.walAppends++
	s.span.Inc(obs.WALAppends)
	s.dirty[id] = &dirtyPage{lsn: s.lsn, img: make([]byte, s.fs.PageSize())}
	s.stats.Allocs++
	return id, nil
}

// Read implements Store: the un-checkpointed delta first, then the
// verified page file.
func (s *RecoverableStore) Read(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(buf) != s.fs.PageSize() {
		return fmt.Errorf("disk: read buffer has %d bytes, want %d", len(buf), s.fs.PageSize())
	}
	if _, freed := s.pendingFree[id]; freed {
		return fmt.Errorf("disk: read of freed page %d", id)
	}
	if dp, ok := s.dirty[id]; ok {
		copy(buf, dp.img)
		s.stats.Reads++
		s.span.Inc(obs.PhysReads)
		return nil
	}
	if err := s.fs.Read(id, buf); err != nil {
		if _, ok := err.(*ChecksumError); ok {
			s.checksumFailures++
			s.span.Inc(obs.ChecksumFailures)
		}
		return err
	}
	s.stats.Reads++
	s.span.Inc(obs.PhysReads)
	return nil
}

// Write implements Store: the image is logged (write-ahead, unsynced)
// and retained in the delta; the page file is untouched until the
// next checkpoint commits.
func (s *RecoverableStore) Write(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if len(buf) != s.fs.PageSize() {
		return fmt.Errorf("disk: write buffer has %d bytes, want %d", len(buf), s.fs.PageSize())
	}
	if _, freed := s.pendingFree[id]; freed {
		return fmt.Errorf("disk: write of freed page %d", id)
	}
	if !s.fs.isAllocated(id) {
		return fmt.Errorf("disk: write of unallocated page %d", id)
	}
	s.lsn++
	if err := s.wal.Append(WALRecord{Kind: RecPage, Page: id, LSN: s.lsn, Payload: buf}); err != nil {
		return s.fail(err)
	}
	s.walAppends++
	s.span.Inc(obs.WALAppends)
	img := make([]byte, len(buf))
	copy(img, buf)
	s.dirty[id] = &dirtyPage{lsn: s.lsn, img: img}
	s.stats.Writes++
	s.span.Inc(obs.PhysWrites)
	return nil
}

// Free implements Store. The free is logged and deferred: the page
// file slot keeps its last checkpointed contents until the next
// checkpoint commits, so a crash cannot destroy state the previous
// checkpoint still references.
func (s *RecoverableStore) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if _, freed := s.pendingFree[id]; freed {
		return fmt.Errorf("disk: free of freed page %d", id)
	}
	if !s.fs.isAllocated(id) {
		return fmt.Errorf("disk: free of unallocated page %d", id)
	}
	s.lsn++
	if err := s.wal.Append(WALRecord{Kind: RecFree, Page: id, LSN: s.lsn}); err != nil {
		return s.fail(err)
	}
	s.walAppends++
	s.span.Inc(obs.WALAppends)
	delete(s.dirty, id)
	s.pendingFree[id] = s.lsn
	s.stats.Frees++
	return nil
}

// Checkpoint makes every write so far durable (the commit point of
// the protocol above). It is cheap when nothing changed.
func (s *RecoverableStore) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if len(s.dirty) == 0 && len(s.pendingFree) == 0 && s.wal.Records() == 0 {
		return nil
	}
	maxLSN := s.lsn
	if err := s.wal.AppendCommit(maxLSN); err != nil {
		return s.fail(err)
	}
	s.walAppends++
	s.span.Inc(obs.WALAppends)
	if err := s.wal.Sync(); err != nil {
		return s.fail(err)
	}
	s.walSyncs++
	s.span.Inc(obs.WALSyncs)

	frees := make([]PageID, 0, len(s.pendingFree))
	for id := range s.pendingFree {
		frees = append(frees, id)
	}
	sort.Slice(frees, func(i, j int) bool { return frees[i] < frees[j] })
	for _, id := range frees {
		if err := s.fs.FreeLSN(id, s.pendingFree[id]); err != nil {
			return s.fail(err)
		}
	}
	ids := make([]PageID, 0, len(s.dirty))
	for id := range s.dirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		dp := s.dirty[id]
		if err := s.fs.WriteLSN(id, dp.img, dp.lsn); err != nil {
			return s.fail(err)
		}
	}
	if err := s.fs.SyncData(); err != nil {
		return s.fail(err)
	}
	if err := s.fs.StampCheckpoint(maxLSN); err != nil {
		return s.fail(err)
	}
	if err := s.wal.Reset(); err != nil {
		return s.fail(err)
	}
	var seg Segment
	if s.ckptHook != nil {
		// Compact the batch for shipping: the final free set plus the
		// latest image per dirty page — exactly what was just applied to
		// the page file. Images are copied so the segment stays valid
		// after the hook returns.
		seg.MaxLSN = maxLSN
		seg.Records = make([]WALRecord, 0, len(frees)+len(ids))
		for _, id := range frees {
			seg.Records = append(seg.Records, WALRecord{Kind: RecFree, Page: id, LSN: s.pendingFree[id]})
		}
		for _, id := range ids {
			dp := s.dirty[id]
			seg.Records = append(seg.Records, WALRecord{
				Kind: RecPage, Page: id, LSN: dp.lsn,
				Payload: append([]byte(nil), dp.img...),
			})
		}
	}
	s.dirty = make(map[PageID]*dirtyPage)
	s.pendingFree = make(map[PageID]uint64)
	s.checkpoints++
	if s.ckptHook != nil {
		s.ckptHook(seg)
	}
	return nil
}

// NumPages implements Store.
func (s *RecoverableStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs.NumPages() - len(s.pendingFree)
}

// Stats implements Store, counting logical page operations against
// this store (the FileStore underneath keeps its own physical
// counters).
func (s *RecoverableStore) Stats() IOStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Store.
func (s *RecoverableStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = IOStats{}
}

// DurabilityStats returns the store's durability counters.
func (s *RecoverableStore) DurabilityStats() DurabilityStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return DurabilityStats{
		WALAppends:       s.walAppends,
		WALSyncs:         s.walSyncs,
		Checkpoints:      s.checkpoints,
		PagesRecovered:   s.pagesRecovered,
		ChecksumFailures: s.checksumFailures,
	}
}

// AttachSpan directs per-span attribution of I/O and durability
// counters at sp until the next call, returning the previous span
// (nil detaches); the MemStore/Pool contract.
func (s *RecoverableStore) AttachSpan(sp *obs.Span) *obs.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.span
	s.span = sp
	return prev
}

// Failed returns the sticky error that froze the store, if any.
func (s *RecoverableStore) Failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// Close closes the page file and the log. It does NOT checkpoint:
// un-checkpointed writes are discarded by design (they were never
// acknowledged). Call Checkpoint first for a durable clean shutdown.
// Close is idempotent.
func (s *RecoverableStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.fs.Close()
	if werr := s.wal.Close(); err == nil {
		err = werr
	}
	return err
}

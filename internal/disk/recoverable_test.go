package disk_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"probe/internal/disk"
	"probe/internal/disk/faultfs"
)

// page builds a page-sized payload with a recognizable fill.
func page(size int, fill byte) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestRecoverableCheckpointAndReopen(t *testing.T) {
	fsys := faultfs.New()
	rs, err := disk.CreateRecoverableStore(fsys, "db", 128)
	if err != nil {
		t.Fatal(err)
	}
	var ids []disk.PageID
	for i := 0; i < 3; i++ {
		id, err := rs.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if err := rs.Write(id, page(128, byte('A'+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ds := rs.DurabilityStats()
	if ds.WALAppends == 0 || ds.WALSyncs == 0 || ds.Checkpoints != 1 {
		t.Fatalf("durability stats after checkpoint: %+v", ds)
	}
	// Overwrite one page and free another WITHOUT checkpointing: a
	// crash must roll both back.
	if err := rs.Write(ids[0], page(128, 'Z')); err != nil {
		t.Fatal(err)
	}
	if err := rs.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	// The dirty read must see the new data before the crash...
	buf := make([]byte, 128)
	if err := rs.Read(ids[0], buf); err != nil || buf[0] != 'Z' {
		t.Fatalf("dirty read: %v, buf[0]=%c", err, buf[0])
	}

	img := fsys.CrashImage()
	rs2, info, err := disk.RecoverStore(img, "db")
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rs2.Close()
	if info.Committed {
		t.Fatalf("no committed batch expected: %+v", info)
	}
	// ...and the recovered store must see the checkpointed data.
	for i, id := range ids {
		if err := rs2.Read(id, buf); err != nil {
			t.Fatalf("read %d after recovery: %v", id, err)
		}
		if !bytes.Equal(buf, page(128, byte('A'+i))) {
			t.Fatalf("page %d rolled forward past the checkpoint", id)
		}
	}
	if rs2.NumPages() != 3 {
		t.Fatalf("NumPages after recovery: %d", rs2.NumPages())
	}
}

func TestRecoverableCommittedBatchReplay(t *testing.T) {
	// Crash between the WAL commit fsync and the data-file apply: the
	// batch must be rolled forward on recovery. The schedule is found
	// by scanning fault indices for one that dies inside Checkpoint.
	for fault := 1; fault < 60; fault++ {
		fsys := faultfs.New()
		rs, err := disk.CreateRecoverableStore(fsys, "db", 128)
		if err != nil {
			t.Fatal(err)
		}
		id, err := rs.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.Write(id, page(128, 'Q')); err != nil {
			t.Fatal(err)
		}
		if err := rs.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := rs.Write(id, page(128, 'R')); err != nil {
			t.Fatal(err)
		}
		fsys.Arm(faultfs.Plan{Seed: int64(fault), CrashAt: fault})
		ckErr := rs.Checkpoint()
		if !fsys.Crashed() {
			if ckErr != nil {
				t.Fatalf("fault %d: checkpoint failed without crash: %v", fault, ckErr)
			}
			break // schedule exhausted the checkpoint's own writes
		}
		img := fsys.CrashImage()
		rs2, _, err := disk.RecoverStore(img, "db")
		if err != nil {
			t.Fatalf("fault %d: recover: %v", fault, err)
		}
		buf := make([]byte, 128)
		if err := rs2.Read(id, buf); err != nil {
			t.Fatalf("fault %d: read: %v", fault, err)
		}
		// Either the old or the new checkpoint, depending on whether
		// the commit fsync landed — never a mix, never garbage.
		if buf[0] != 'Q' && buf[0] != 'R' {
			t.Fatalf("fault %d: impossible page contents %q", fault, buf[0])
		}
		if !bytes.Equal(buf, page(128, buf[0])) {
			t.Fatalf("fault %d: torn page survived recovery", fault)
		}
		rs2.Close()
	}
}

func TestRecoverableStickyFailure(t *testing.T) {
	fsys := faultfs.New()
	rs, err := disk.CreateRecoverableStore(fsys, "db", 128)
	if err != nil {
		t.Fatal(err)
	}
	id, err := rs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	fsys.Arm(faultfs.Plan{FailAt: 1}) // the next WAL append fails
	if err := rs.Write(id, page(128, 'X')); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("want injected failure, got %v", err)
	}
	fsys.Disarm()
	// The store is frozen: every write-path operation reports the
	// sticky error, telling the operator to recover from the log.
	if err := rs.Write(id, page(128, 'X')); err == nil || !strings.Contains(err.Error(), "needs recovery") {
		t.Fatalf("write after failure: %v", err)
	}
	if err := rs.Checkpoint(); err == nil || !strings.Contains(err.Error(), "needs recovery") {
		t.Fatalf("checkpoint after failure: %v", err)
	}
	if _, err := rs.Allocate(); err == nil {
		t.Fatal("allocate after failure succeeded")
	}
	if rs.Failed() == nil {
		t.Fatal("Failed() nil after failure")
	}
	// Reads stay available.
	buf := make([]byte, 128)
	if err := rs.Read(id, buf); err != nil {
		t.Fatalf("read after failure: %v", err)
	}
}

func TestRecoverableChecksumErrorOnCorruption(t *testing.T) {
	fsys := faultfs.New()
	rs, err := disk.CreateRecoverableStore(fsys, "db", 128)
	if err != nil {
		t.Fatal(err)
	}
	id, err := rs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Write(id, page(128, 'C')); err != nil {
		t.Fatal(err)
	}
	if err := rs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Flip one bit of the page's slot on "disk", behind the store's
	// back (media corruption).
	f, err := fsys.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	off := int64(64 + 16 + 5) // superblock + slot header + 5 into the payload
	if _, err := f.ReadAt(one, off); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0x40
	if _, err := f.WriteAt(one, off); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	var ce *disk.ChecksumError
	if err := rs.Read(id, buf); !errors.As(err, &ce) {
		t.Fatalf("read of corrupted page: want ChecksumError, got %v", err)
	}
	if ce.Page != id {
		t.Fatalf("ChecksumError names page %d, want %d", ce.Page, id)
	}
	if rs.DurabilityStats().ChecksumFailures != 1 {
		t.Fatalf("checksum failure not counted: %+v", rs.DurabilityStats())
	}
	// Recovery with no committed log cannot vouch for the page either:
	// the double fault surfaces as ChecksumError, never as wrong data.
	img := fsys.Clone()
	if _, _, err := disk.RecoverStore(img, "db"); !errors.As(err, &ce) {
		t.Fatalf("recover over corruption: want ChecksumError, got %v", err)
	}
}

func TestRecoverableFreeDeferredToCheckpoint(t *testing.T) {
	fsys := faultfs.New()
	rs, err := disk.CreateRecoverableStore(fsys, "db", 128)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := rs.Allocate()
	b, _ := rs.Allocate()
	if err := rs.Write(a, page(128, 'a')); err != nil {
		t.Fatal(err)
	}
	if err := rs.Write(b, page(128, 'b')); err != nil {
		t.Fatal(err)
	}
	if err := rs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := rs.Free(b); err != nil {
		t.Fatal(err)
	}
	if rs.NumPages() != 1 {
		t.Fatalf("NumPages with pending free: %d", rs.NumPages())
	}
	if err := rs.Read(b, make([]byte, 128)); err == nil {
		t.Fatal("read of freed page succeeded")
	}
	// Crash before the free's checkpoint: the page must come back.
	img := fsys.CrashImage()
	rs2, _, err := disk.RecoverStore(img, "db")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := rs2.Read(b, buf); err != nil || buf[0] != 'b' {
		t.Fatalf("freed-but-uncommitted page lost: %v", err)
	}
	rs2.Close()
	// Checkpoint the free for real: it must survive recovery.
	if err := rs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	img = fsys.CrashImage()
	rs3, _, err := disk.RecoverStore(img, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer rs3.Close()
	if rs3.NumPages() != 1 {
		t.Fatalf("NumPages after committed free: %d", rs3.NumPages())
	}
	if err := rs3.Read(b, buf); err == nil {
		t.Fatal("committed-freed page still readable")
	}
}

func TestRecoverableIdempotentRecover(t *testing.T) {
	fsys := faultfs.New()
	rs, err := disk.CreateRecoverableStore(fsys, "db", 128)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := rs.Allocate()
	if err := rs.Write(id, page(128, 'I')); err != nil {
		t.Fatal(err)
	}
	if err := rs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	img := fsys.CrashImage()
	for round := 0; round < 3; round++ {
		rs2, _, err := disk.RecoverStore(img, "db")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		buf := make([]byte, 128)
		if err := rs2.Read(id, buf); err != nil || buf[0] != 'I' {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := rs2.Close(); err != nil {
			t.Fatalf("round %d close: %v", round, err)
		}
	}
}

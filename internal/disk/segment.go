package disk

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// This file is the physical-replication face of the WAL: a checkpoint
// batch, compacted to its net effect (latest image per page, final
// frees), packaged as a Segment a primary can ship to read replicas.
// A replica applies segments in order to a copy of the page file with
// ApplyWALSegment; because the records are physical page images, the
// replica's file converges to byte-identical checkpointed state
// without understanding anything above the page layer.

// Segment is one shipped checkpoint batch: the compacted records and
// the LSN the page file's superblock is stamped with after applying
// them. Segments must be applied in MaxLSN order; applying one twice
// is harmless (physical images are idempotent).
type Segment struct {
	MaxLSN  uint64
	Records []WALRecord
}

// SetCheckpointHook installs fn to observe every completed checkpoint
// batch: fn runs inside Checkpoint, after the batch is durable on this
// store, with the compacted segment it shipped to the page file. The
// primary side of log shipping subscribes here. fn must not call back
// into the store. A nil fn unsubscribes.
func (s *RecoverableStore) SetCheckpointHook(fn func(Segment)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ckptHook = fn
}

// ApplyWALSegment applies one shipped segment to the page file at
// path: replay, data sync, checkpoint stamp. The file must hold the
// checkpointed state the segment was built against (the primary's
// previous checkpoint); out-of-order segments are rejected by the LSN
// monotonicity check.
func ApplyWALSegment(fsys FS, path string, seg Segment) error {
	fs, err := OpenFileStoreFS(fsys, path)
	if err != nil {
		return err
	}
	defer fs.Close()
	if fs.CheckpointLSN() > seg.MaxLSN {
		return fmt.Errorf("disk: segment max LSN %d behind page file checkpoint %d", seg.MaxLSN, fs.CheckpointLSN())
	}
	if _, _, err := applyRecords(fs, path, seg.Records); err != nil {
		return err
	}
	if err := fs.SyncData(); err != nil {
		return err
	}
	return fs.StampCheckpoint(seg.MaxLSN)
}

// RawImage returns the page file's raw bytes — superblock, headers,
// checksums and all. The caller coordinates quiescence
// (RecoverableStore holds its mutex), under which the bytes are a
// consistent point-in-time copy.
func (s *FileStore) RawImage() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("disk: raw image of closed store %s", s.path)
	}
	size, err := s.f.Size()
	if err != nil {
		return nil, fmt.Errorf("disk: stat %s: %w", s.path, err)
	}
	buf := make([]byte, size)
	if size > 0 {
		if err := readFull(s.f, buf, 0); err != nil {
			return nil, fmt.Errorf("disk: read %s: %w", s.path, err)
		}
	}
	return buf, nil
}

// PageFileImage snapshots the store's checkpointed state: the page
// file bytes (which, under the store mutex, hold exactly the last
// checkpoint — the un-checkpointed delta lives in the WAL and memory)
// and the checkpoint LSN the image is stamped with. The replica
// bootstrap path: write these bytes, then apply segments with MaxLSN
// above the returned LSN.
func (s *RecoverableStore) PageFileImage() ([]byte, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return nil, 0, s.failed
	}
	img, err := s.fs.RawImage()
	if err != nil {
		return nil, 0, err
	}
	return img, s.fs.CheckpointLSN(), nil
}

// CheckpointLSN returns the LSN of the store's last durable
// checkpoint.
func (s *RecoverableStore) CheckpointLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs.CheckpointLSN()
}

// EncodeSegment serializes a segment for the replication stream:
//
//	[max LSN u64][count u32] record*  then [crc u32] over all of it
//
// with each record in the WAL's own framing (EncodeWALRecord), so the
// per-record checksums travel too.
func EncodeSegment(seg Segment) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint64(b, seg.MaxLSN)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(seg.Records)))
	for _, rec := range seg.Records {
		b = append(b, EncodeWALRecord(rec)...)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
}

// DecodeSegment parses EncodeSegment's framing, verifying the outer
// and every per-record checksum. It never panics on arbitrary input.
func DecodeSegment(data []byte) (Segment, error) {
	var seg Segment
	if len(data) < 16 {
		return seg, fmt.Errorf("disk: segment truncated (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(tail); got != want {
		return seg, fmt.Errorf("disk: segment crc mismatch")
	}
	seg.MaxLSN = binary.LittleEndian.Uint64(body[0:8])
	count := binary.LittleEndian.Uint32(body[8:12])
	off := 12
	for i := uint32(0); i < count; i++ {
		if len(body)-off < recHeaderLen {
			return Segment{}, fmt.Errorf("disk: segment record %d truncated", i)
		}
		rec := body[off:]
		payloadLen := int(binary.LittleEndian.Uint32(rec[17:21]))
		if payloadLen > maxWALPayload || len(rec) < recHeaderLen+payloadLen {
			return Segment{}, fmt.Errorf("disk: segment record %d payload overruns", i)
		}
		end := recHeaderLen + payloadLen
		want := binary.LittleEndian.Uint32(rec[0:4])
		if got := crc32.Checksum(rec[4:end], castagnoli); got != want {
			return Segment{}, fmt.Errorf("disk: segment record %d crc mismatch", i)
		}
		seg.Records = append(seg.Records, WALRecord{
			Kind:    RecordKind(rec[4]),
			Page:    PageID(binary.LittleEndian.Uint32(rec[5:9])),
			LSN:     binary.LittleEndian.Uint64(rec[9:17]),
			Payload: append([]byte(nil), rec[recHeaderLen:end]...),
		})
		off += end
	}
	if off != len(body) {
		return Segment{}, fmt.Errorf("disk: %d trailing bytes after segment records", len(body)-off)
	}
	return seg, nil
}

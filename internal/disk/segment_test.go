package disk_test

import (
	"bytes"
	"strings"
	"testing"

	"probe/internal/disk"
	"probe/internal/disk/faultfs"
)

// writeImage materializes a raw page-file image at path on fsys — the
// replica bootstrap step.
func writeImage(t *testing.T, fsys disk.FS, path string, img []byte) {
	t.Helper()
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(img, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// rawFile reads a file's full contents from fsys.
func rawFile(t *testing.T, fsys disk.FS, path string) []byte {
	t.Helper()
	f, err := fsys.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

// TestSegmentShippingConverges drives a primary through several
// checkpointed batches with the hook installed, applies every shipped
// segment to a replica page file bootstrapped from the primary's
// initial image, and checks the replica file is byte-identical to the
// primary's checkpointed state after each batch.
func TestSegmentShippingConverges(t *testing.T) {
	fsys := faultfs.New()
	rs, err := disk.CreateRecoverableStore(fsys, "primary", 128)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	var segs []disk.Segment
	rs.SetCheckpointHook(func(seg disk.Segment) { segs = append(segs, seg) })

	// Bootstrap the replica from the empty primary's image.
	img, lsn, err := rs.PageFileImage()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 0 {
		t.Fatalf("fresh store checkpoint LSN = %d", lsn)
	}
	writeImage(t, fsys, "replica", img)

	// Batch 1: three pages.
	var ids []disk.PageID
	for i := 0; i < 3; i++ {
		id, err := rs.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if err := rs.Write(id, page(128, byte('A'+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Batch 2: overwrite one, free one, allocate a new one.
	if err := rs.Write(ids[0], page(128, 'Z')); err != nil {
		t.Fatal(err)
	}
	if err := rs.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	id4, err := rs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Write(id4, page(128, 'Q')); err != nil {
		t.Fatal(err)
	}
	if err := rs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// An idle checkpoint ships nothing.
	if err := rs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(segs))
	}
	if segs[0].MaxLSN >= segs[1].MaxLSN {
		t.Fatalf("segment LSNs not increasing: %d then %d", segs[0].MaxLSN, segs[1].MaxLSN)
	}

	for i, seg := range segs {
		// Ship through the wire encoding to cover it too.
		dec, err := disk.DecodeSegment(disk.EncodeSegment(seg))
		if err != nil {
			t.Fatalf("segment %d round trip: %v", i, err)
		}
		if err := disk.ApplyWALSegment(fsys, "replica", dec); err != nil {
			t.Fatalf("apply segment %d: %v", i, err)
		}
	}

	want, wantLSN, err := rs.PageFileImage()
	if err != nil {
		t.Fatal(err)
	}
	if wantLSN != segs[1].MaxLSN {
		t.Fatalf("primary checkpoint LSN %d, last segment %d", wantLSN, segs[1].MaxLSN)
	}
	got := rawFile(t, fsys, "replica")
	if !bytes.Equal(got, want) {
		t.Fatalf("replica page file diverges: %d vs %d bytes", len(got), len(want))
	}

	// The replica file opens as a store seeing exactly the primary's data.
	fs2, err := disk.OpenFileStoreFS(fsys, "replica")
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	buf := make([]byte, 128)
	if err := fs2.Read(ids[0], buf); err != nil || buf[0] != 'Z' {
		t.Fatalf("replica read of overwritten page: %v, buf[0]=%c", err, buf[0])
	}
	if err := fs2.Read(ids[2], buf); err == nil {
		t.Fatal("replica still serves the freed page")
	}
}

// TestSegmentLateBootstrap checks the catch-up path: a replica
// bootstrapped from a mid-stream image only needs the segments after
// its image's LSN.
func TestSegmentLateBootstrap(t *testing.T) {
	fsys := faultfs.New()
	rs, err := disk.CreateRecoverableStore(fsys, "primary", 128)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	var segs []disk.Segment
	rs.SetCheckpointHook(func(seg disk.Segment) { segs = append(segs, seg) })

	id, err := rs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Write(id, page(128, 'a')); err != nil {
		t.Fatal(err)
	}
	if err := rs.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Bootstrap AFTER the first checkpoint: its segment is already in
	// the image.
	img, lsn, err := rs.PageFileImage()
	if err != nil {
		t.Fatal(err)
	}
	writeImage(t, fsys, "replica", img)

	if err := rs.Write(id, page(128, 'b')); err != nil {
		t.Fatal(err)
	}
	if err := rs.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	for _, seg := range segs {
		if seg.MaxLSN <= lsn {
			continue // already in the bootstrap image
		}
		if err := disk.ApplyWALSegment(fsys, "replica", seg); err != nil {
			t.Fatal(err)
		}
	}
	want, _, err := rs.PageFileImage()
	if err != nil {
		t.Fatal(err)
	}
	if got := rawFile(t, fsys, "replica"); !bytes.Equal(got, want) {
		t.Fatal("late-bootstrapped replica diverges from primary")
	}
}

// TestApplyWALSegmentRejectsStale pins the monotonicity check: a
// segment older than the file's checkpoint is refused.
func TestApplyWALSegmentRejectsStale(t *testing.T) {
	fsys := faultfs.New()
	rs, err := disk.CreateRecoverableStore(fsys, "primary", 128)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	var segs []disk.Segment
	rs.SetCheckpointHook(func(seg disk.Segment) { segs = append(segs, seg) })
	for i := 0; i < 2; i++ {
		id, err := rs.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.Write(id, page(128, byte('a'+i))); err != nil {
			t.Fatal(err)
		}
		if err := rs.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	img, _, err := rs.PageFileImage()
	if err != nil {
		t.Fatal(err)
	}
	writeImage(t, fsys, "replica", img)
	if err := disk.ApplyWALSegment(fsys, "replica", segs[0]); err == nil {
		t.Fatal("stale segment accepted")
	} else if !strings.Contains(err.Error(), "behind") {
		t.Fatalf("stale segment error: %v", err)
	}
}

// TestDecodeSegmentRejectsCorruption flips bytes across an encoded
// segment and checks every corruption is caught — the shipped stream
// is checksummed end to end.
func TestDecodeSegmentRejectsCorruption(t *testing.T) {
	seg := disk.Segment{
		MaxLSN: 42,
		Records: []disk.WALRecord{
			{Kind: disk.RecFree, Page: 7, LSN: 40},
			{Kind: disk.RecPage, Page: 3, LSN: 41, Payload: page(128, 'x')},
		},
	}
	enc := disk.EncodeSegment(seg)
	if _, err := disk.DecodeSegment(enc); err != nil {
		t.Fatalf("clean segment rejected: %v", err)
	}
	for off := 0; off < len(enc); off += 7 {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x40
		if _, err := disk.DecodeSegment(bad); err == nil {
			t.Fatalf("corruption at offset %d undetected", off)
		}
	}
	if _, err := disk.DecodeSegment(enc[:10]); err == nil {
		t.Fatal("truncated segment accepted")
	}
	if _, err := disk.DecodeSegment(nil); err == nil {
		t.Fatal("empty segment accepted")
	}
}

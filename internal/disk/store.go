// Package disk simulates the storage layer under the zkd B+-tree: a
// store of fixed-size pages with I/O accounting, and a buffer pool
// with pluggable eviction (LRU by default, matching Section 4's
// observation that "the LRU buffering strategy will work well because
// of our reliance on merging").
//
// The paper's experiments report page-access counts, not wall-clock
// times; the store counts every physical read and write so the
// experiment harness can reproduce those numbers exactly.
package disk

import (
	"fmt"
	"sync"
	"time"

	"probe/internal/obs"
)

// PageID identifies a page in a store. Zero is never a valid page.
type PageID uint32

// InvalidPage is the zero PageID, used as a null reference.
const InvalidPage PageID = 0

// DefaultPageSize is the page size used when none is specified.
const DefaultPageSize = 4096

// IOStats counts physical page operations on a store.
type IOStats struct {
	Reads  uint64
	Writes uint64
	Allocs uint64
	Frees  uint64
}

// Store is a collection of fixed-size pages addressed by PageID.
type Store interface {
	// PageSize returns the fixed size of every page in bytes.
	PageSize() int
	// Allocate reserves a new zeroed page and returns its id.
	Allocate() (PageID, error)
	// Read copies the page's contents into buf (len PageSize).
	Read(id PageID, buf []byte) error
	// Write replaces the page's contents with buf (len PageSize).
	Write(id PageID, buf []byte) error
	// Free releases the page for reuse.
	Free(id PageID) error
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Stats returns the I/O counters accumulated so far.
	Stats() IOStats
	// ResetStats zeroes the I/O counters.
	ResetStats()
}

// MemStore is an in-memory Store. It is safe for concurrent use.
type MemStore struct {
	mu       sync.Mutex
	pageSize int
	pages    map[PageID][]byte
	freeList []PageID
	next     PageID
	stats    IOStats
	span     *obs.Span // per-span attribution target; see AttachSpan
}

// NewMemStore creates an in-memory store with the given page size.
func NewMemStore(pageSize int) (*MemStore, error) {
	if pageSize < 64 {
		return nil, fmt.Errorf("disk: page size %d too small (minimum 64)", pageSize)
	}
	return &MemStore{
		pageSize: pageSize,
		pages:    make(map[PageID][]byte),
		next:     1,
	}, nil
}

// MustMemStore is NewMemStore panicking on error.
func MustMemStore(pageSize int) *MemStore {
	s, err := NewMemStore(pageSize)
	if err != nil {
		panic(err)
	}
	return s
}

// PageSize implements Store.
func (s *MemStore) PageSize() int { return s.pageSize }

// Allocate implements Store.
func (s *MemStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var id PageID
	if n := len(s.freeList); n > 0 {
		id = s.freeList[n-1]
		s.freeList = s.freeList[:n-1]
	} else {
		id = s.next
		if id == 0 {
			return InvalidPage, fmt.Errorf("disk: page ids exhausted")
		}
		s.next++
	}
	s.pages[id] = make([]byte, s.pageSize)
	s.stats.Allocs++
	return id, nil
}

// Read implements Store.
func (s *MemStore) Read(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[id]
	if !ok {
		return fmt.Errorf("disk: read of unallocated page %d", id)
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("disk: read buffer has %d bytes, want %d", len(buf), s.pageSize)
	}
	copy(buf, p)
	s.stats.Reads++
	s.span.Inc(obs.PhysReads)
	return nil
}

// Write implements Store.
func (s *MemStore) Write(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[id]
	if !ok {
		return fmt.Errorf("disk: write of unallocated page %d", id)
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("disk: write buffer has %d bytes, want %d", len(buf), s.pageSize)
	}
	copy(p, buf)
	s.stats.Writes++
	s.span.Inc(obs.PhysWrites)
	return nil
}

// Free implements Store.
func (s *MemStore) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pages[id]; !ok {
		return fmt.Errorf("disk: free of unallocated page %d", id)
	}
	delete(s.pages, id)
	s.freeList = append(s.freeList, id)
	s.stats.Frees++
	return nil
}

// NumPages implements Store.
func (s *MemStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// Stats implements Store.
func (s *MemStore) Stats() IOStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Store.
func (s *MemStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = IOStats{}
}

// AttachSpan directs per-span attribution of physical reads and
// writes at sp until the next AttachSpan call, returning the
// previously attached span (nil detaches). Attribution is additional
// to the store's lifetime counters, mirroring Pool.AttachSpan.
func (s *MemStore) AttachSpan(sp *obs.Span) *obs.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.span
	s.span = sp
	return prev
}

// SimulatedTime converts I/O counts into simulated elapsed time under
// a simple disk model: every physical read or write costs one random
// access. With the ~30ms access time of the paper's era, it
// extrapolates what a 1986 testbed would have spent on the same page
// workload. Allocations and frees are metadata and not charged.
func (s IOStats) SimulatedTime(perAccess time.Duration) time.Duration {
	return time.Duration(s.Reads+s.Writes) * perAccess
}

// EraDiskAccess is a representative mid-1980s disk access time.
const EraDiskAccess = 30 * time.Millisecond

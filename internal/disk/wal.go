package disk

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// The write-ahead log is an append-only sequence of physical records:
//
//	file   = header record*
//	header = [magic "ZKDWAL01" 8B][version u32][crc u32 over 0..12]
//	record = [crc u32][kind u8][page u32][lsn u64][len u32][payload]
//
// A record's CRC32C covers everything after the crc field. The log
// carries page images (RecPage), allocation events (RecAlloc,
// RecFree) and one RecCommit as the final record of a checkpoint
// batch; Reset truncates the log back to its header after the batch
// has been applied to the page file, so a log never holds more than
// one committed batch.
//
// Group fsync: Append only writes into the OS page cache; Sync makes
// everything appended so far durable with a single fsync. A batch of
// any size therefore costs one fsync at its commit point.
const (
	walMagic     = "ZKDWAL01"
	walVersion   = 1
	walHeaderLen = 16
	recHeaderLen = 4 + 1 + 4 + 8 + 4
	// maxWALPayload bounds a record's declared payload length during
	// replay, so a corrupted length field cannot force a huge
	// allocation.
	maxWALPayload = 1 << 26
)

// RecordKind is the type tag of a WAL record.
type RecordKind uint8

const (
	// RecPage is a full physical page image.
	RecPage RecordKind = 1
	// RecAlloc records a page allocation.
	RecAlloc RecordKind = 2
	// RecFree records a page free.
	RecFree RecordKind = 3
	// RecCommit seals a checkpoint batch. Its payload is
	// [record count u32][max LSN u64]; the count must match the
	// number of records preceding it for the batch to be considered
	// committed.
	RecCommit RecordKind = 4
)

// String implements fmt.Stringer.
func (k RecordKind) String() string {
	switch k {
	case RecPage:
		return "page"
	case RecAlloc:
		return "alloc"
	case RecFree:
		return "free"
	case RecCommit:
		return "commit"
	}
	return fmt.Sprintf("RecordKind(%d)", uint8(k))
}

// WALRecord is one decoded log record.
type WALRecord struct {
	Kind    RecordKind
	Page    PageID
	LSN     uint64
	Payload []byte
}

// EncodeWALRecord serializes a record, including its checksum.
func EncodeWALRecord(rec WALRecord) []byte {
	buf := make([]byte, recHeaderLen+len(rec.Payload))
	buf[4] = byte(rec.Kind)
	binary.LittleEndian.PutUint32(buf[5:9], uint32(rec.Page))
	binary.LittleEndian.PutUint64(buf[9:17], rec.LSN)
	binary.LittleEndian.PutUint32(buf[17:21], uint32(len(rec.Payload)))
	copy(buf[recHeaderLen:], rec.Payload)
	crc := crc32.Checksum(buf[4:], castagnoli)
	binary.LittleEndian.PutUint32(buf[0:4], crc)
	return buf
}

// EncodeWALHeader serializes the log file header.
func EncodeWALHeader() []byte {
	h := make([]byte, walHeaderLen)
	copy(h[0:8], walMagic)
	binary.LittleEndian.PutUint32(h[8:12], walVersion)
	crc := crc32.Checksum(h[:12], castagnoli)
	binary.LittleEndian.PutUint32(h[12:16], crc)
	return h
}

// ReplayResult is the outcome of scanning a log.
type ReplayResult struct {
	// Records are the decoded records in log order. When Committed is
	// true the last record is the RecCommit.
	Records []WALRecord
	// Committed reports that the log ends in a valid commit record
	// whose record count matches, i.e. the batch is complete and must
	// be applied.
	Committed bool
	// Truncated reports that scanning stopped at an invalid or
	// incomplete record before the end of the data — a torn tail. The
	// records before TailOffset are still valid.
	Truncated bool
	// TailOffset is the byte offset at which scanning stopped.
	TailOffset int64
}

// ReplayWAL scans raw log bytes and returns the valid record prefix.
// It never panics on arbitrary input.
//
// Classification: an empty or header-truncated file is an empty log
// (a crash during log reset); a syntactically invalid record ends the
// valid prefix as a torn tail (Truncated), because records past an
// unsynced hole are indistinguishable from garbage; bytes following a
// valid commit record, or a corrupt header of full length, are
// corruption (*ChecksumError) — they cannot result from any crash of
// the logging protocol. Whether discarding a torn tail is safe is
// decided by the caller against the page file (see RecoverStore).
func ReplayWAL(path string, data []byte) (ReplayResult, error) {
	var res ReplayResult
	if len(data) < walHeaderLen {
		// A torn header write during create/reset; the log holds
		// nothing.
		res.TailOffset = int64(len(data))
		res.Truncated = len(data) > 0
		return res, nil
	}
	if string(data[0:8]) != walMagic {
		return res, &ChecksumError{Path: path, Reason: "bad WAL magic"}
	}
	want := binary.LittleEndian.Uint32(data[12:16])
	if got := crc32.Checksum(data[:12], castagnoli); got != want {
		return res, &ChecksumError{Path: path, Reason: "WAL header crc mismatch"}
	}
	off := int64(walHeaderLen)
	n := int64(len(data))
	for off < n {
		if res.Committed {
			return ReplayResult{}, &ChecksumError{Path: path, Reason: "bytes after commit record"}
		}
		if n-off < recHeaderLen {
			res.Truncated, res.TailOffset = true, off
			return res, nil
		}
		rec := data[off:]
		payloadLen := int64(binary.LittleEndian.Uint32(rec[17:21]))
		if payloadLen > maxWALPayload || off+recHeaderLen+payloadLen > n {
			res.Truncated, res.TailOffset = true, off
			return res, nil
		}
		end := recHeaderLen + payloadLen
		want := binary.LittleEndian.Uint32(rec[0:4])
		if got := crc32.Checksum(rec[4:end], castagnoli); got != want {
			res.Truncated, res.TailOffset = true, off
			return res, nil
		}
		kind := RecordKind(rec[4])
		r := WALRecord{
			Kind:    kind,
			Page:    PageID(binary.LittleEndian.Uint32(rec[5:9])),
			LSN:     binary.LittleEndian.Uint64(rec[9:17]),
			Payload: append([]byte(nil), rec[recHeaderLen:end]...),
		}
		switch kind {
		case RecPage, RecAlloc, RecFree:
		case RecCommit:
			count, _, ok := decodeCommitPayload(r.Payload)
			if !ok || int(count) != len(res.Records) {
				res.Truncated, res.TailOffset = true, off
				return res, nil
			}
			res.Committed = true
		default:
			res.Truncated, res.TailOffset = true, off
			return res, nil
		}
		res.Records = append(res.Records, r)
		off += end
	}
	res.TailOffset = off
	return res, nil
}

// EncodeCommitPayload serializes a commit record's payload: the
// record count of its batch and the batch's max LSN.
func EncodeCommitPayload(count uint32, maxLSN uint64) []byte {
	p := make([]byte, 12)
	binary.LittleEndian.PutUint32(p[0:4], count)
	binary.LittleEndian.PutUint64(p[4:12], maxLSN)
	return p
}

func decodeCommitPayload(p []byte) (count uint32, maxLSN uint64, ok bool) {
	if len(p) != 12 {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint32(p[0:4]), binary.LittleEndian.Uint64(p[4:12]), true
}

// WAL is an open write-ahead log.
type WAL struct {
	mu      sync.Mutex
	f       File
	path    string
	size    int64 // end of the valid log
	records int   // records appended since the last reset
	appends uint64
	syncs   uint64
}

// CreateWAL creates (or truncates) the log at path and durably writes
// its header.
func CreateWAL(fsys FS, path string) (*WAL, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("disk: create wal %s: %w", path, err)
	}
	w := &WAL{f: f, path: path}
	if err := w.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// openWAL opens an existing log and returns its raw bytes for replay.
// The returned WAL is positioned at the end of the raw bytes; callers
// normally Reset it after applying the replayed batch.
func openWAL(fsys FS, path string) (*WAL, []byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("disk: open wal %s: %w", path, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("disk: stat wal %s: %w", path, err)
	}
	data := make([]byte, size)
	if size > 0 {
		if err := readFull(f, data, 0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("disk: read wal %s: %w", path, err)
		}
	}
	return &WAL{f: f, path: path, size: size}, data, nil
}

// writeHeader truncates the file and durably writes a fresh header.
// The caller holds w.mu (or the WAL is private).
func (w *WAL) writeHeader() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("disk: wal %s: truncate: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("disk: wal %s: sync truncate: %w", w.path, err)
	}
	if _, err := w.f.WriteAt(EncodeWALHeader(), 0); err != nil {
		return fmt.Errorf("disk: wal %s: write header: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("disk: wal %s: sync header: %w", w.path, err)
	}
	w.size = walHeaderLen
	w.records = 0
	return nil
}

// Append writes a record at the log's tail. The record is not durable
// until the next Sync.
func (w *WAL) Append(rec WALRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	buf := EncodeWALRecord(rec)
	if _, err := w.f.WriteAt(buf, w.size); err != nil {
		return fmt.Errorf("disk: wal %s: append: %w", w.path, err)
	}
	w.size += int64(len(buf))
	w.records++
	w.appends++
	return nil
}

// AppendCommit appends the batch's commit record sealing the records
// appended since the last reset.
func (w *WAL) AppendCommit(maxLSN uint64) error {
	w.mu.Lock()
	count := uint32(w.records)
	w.mu.Unlock()
	return w.Append(WALRecord{Kind: RecCommit, Payload: EncodeCommitPayload(count, maxLSN)})
}

// Sync makes every appended record durable: the group fsync at a
// batch's commit point.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("disk: wal %s: sync: %w", w.path, err)
	}
	w.syncs++
	return nil
}

// Reset durably truncates the log back to an empty header, after its
// batch has been applied to the page file.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeHeader()
}

// Records returns the number of records appended since the last
// reset.
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Appends returns the lifetime count of appended records.
func (w *WAL) Appends() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends
}

// Syncs returns the lifetime count of fsyncs issued.
func (w *WAL) Syncs() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// Close closes the log file without syncing it.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	if err != nil {
		return fmt.Errorf("disk: wal %s: close: %w", w.path, err)
	}
	return nil
}

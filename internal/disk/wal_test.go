package disk_test

import (
	"errors"
	"testing"

	"probe/internal/disk"
	"probe/internal/disk/faultfs"
)

// walBytes assembles a log image from encoded parts.
func walBytes(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func TestWALReplayRoundTrip(t *testing.T) {
	recs := []disk.WALRecord{
		{Kind: disk.RecAlloc, Page: 2, LSN: 1},
		{Kind: disk.RecPage, Page: 2, LSN: 2, Payload: []byte("hello page two!!")},
		{Kind: disk.RecFree, Page: 3, LSN: 3},
	}
	parts := [][]byte{disk.EncodeWALHeader()}
	for _, r := range recs {
		parts = append(parts, disk.EncodeWALRecord(r))
	}
	res, err := disk.ReplayWAL("t", walBytes(parts...))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Committed {
		t.Fatal("uncommitted batch reported committed")
	}
	if len(res.Records) != len(recs) {
		t.Fatalf("got %d records, want %d", len(res.Records), len(recs))
	}
	for i, r := range res.Records {
		if r.Kind != recs[i].Kind || r.Page != recs[i].Page || r.LSN != recs[i].LSN || string(r.Payload) != string(recs[i].Payload) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, r, recs[i])
		}
	}
}

func TestWALReplayEmptyAndShort(t *testing.T) {
	res, err := disk.ReplayWAL("t", nil)
	if err != nil || res.Truncated || res.Committed || len(res.Records) != 0 {
		t.Fatalf("empty log: %+v, %v", res, err)
	}
	res, err = disk.ReplayWAL("t", []byte{0x01, 0x02})
	if err != nil || !res.Truncated {
		t.Fatalf("short log should be a truncated empty log: %+v, %v", res, err)
	}
}

func TestWALReplayBadHeader(t *testing.T) {
	h := disk.EncodeWALHeader()
	h[0] ^= 0xFF // magic
	var ce *disk.ChecksumError
	if _, err := disk.ReplayWAL("t", h); !errors.As(err, &ce) {
		t.Fatalf("bad magic: want ChecksumError, got %v", err)
	}
	h = disk.EncodeWALHeader()
	h[9] ^= 0x01 // version byte, breaks the header crc
	if _, err := disk.ReplayWAL("t", h); !errors.As(err, &ce) {
		t.Fatalf("bad header crc: want ChecksumError, got %v", err)
	}
}

func TestWALReplayTornTail(t *testing.T) {
	rec := disk.EncodeWALRecord(disk.WALRecord{Kind: disk.RecPage, Page: 7, LSN: 9, Payload: []byte("payload bytes")})
	full := walBytes(disk.EncodeWALHeader(), rec, rec)
	// Cut the second record anywhere: the first must survive.
	for cut := len(full) - len(rec); cut < len(full); cut++ {
		res, err := disk.ReplayWAL("t", full[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if cut == len(full)-len(rec) {
			if res.Truncated {
				t.Fatalf("cut %d: clean end misreported as torn", cut)
			}
		} else if !res.Truncated {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		if len(res.Records) != 1 {
			t.Fatalf("cut %d: got %d records, want 1", cut, len(res.Records))
		}
	}
	// A bit flip inside a record's payload also ends the prefix there.
	flipped := walBytes(disk.EncodeWALHeader(), rec)
	flipped[len(flipped)-3] ^= 0x10
	res, err := disk.ReplayWAL("t", flipped)
	if err != nil || !res.Truncated || len(res.Records) != 0 {
		t.Fatalf("flipped record: %+v, %v", res, err)
	}
}

func TestWALReplayCommit(t *testing.T) {
	rec := disk.EncodeWALRecord(disk.WALRecord{Kind: disk.RecAlloc, Page: 2, LSN: 1})
	commit := disk.EncodeWALRecord(disk.WALRecord{Kind: disk.RecCommit, Payload: disk.EncodeCommitPayload(1, 1)})
	res, err := disk.ReplayWAL("t", walBytes(disk.EncodeWALHeader(), rec, commit))
	if err != nil || !res.Committed {
		t.Fatalf("committed batch: %+v, %v", res, err)
	}
	// A commit whose record count disagrees is not a commit.
	badCommit := disk.EncodeWALRecord(disk.WALRecord{Kind: disk.RecCommit, Payload: disk.EncodeCommitPayload(5, 1)})
	res, err = disk.ReplayWAL("t", walBytes(disk.EncodeWALHeader(), rec, badCommit))
	if err != nil || res.Committed || !res.Truncated {
		t.Fatalf("count-mismatched commit: %+v, %v", res, err)
	}
	// Bytes after a valid commit are corruption, not a torn tail.
	var ce *disk.ChecksumError
	if _, err := disk.ReplayWAL("t", walBytes(disk.EncodeWALHeader(), rec, commit, []byte{0xAB})); !errors.As(err, &ce) {
		t.Fatalf("bytes after commit: want ChecksumError, got %v", err)
	}
}

func TestWALAppendSyncThroughFS(t *testing.T) {
	fsys := faultfs.New()
	w, err := disk.CreateWAL(fsys, "log")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(disk.WALRecord{Kind: disk.RecPage, Page: 4, LSN: 1, Payload: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Appends() != 2 || w.Syncs() != 1 || w.Records() != 2 {
		t.Fatalf("counters: appends=%d syncs=%d records=%d", w.Appends(), w.Syncs(), w.Records())
	}
	// The synced bytes survive a crash and replay as a committed batch.
	img := fsys.CrashImage()
	f, err := img.Open("log")
	if err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		t.Fatal(err)
	}
	res, err := disk.ReplayWAL("log", data)
	if err != nil || !res.Committed || len(res.Records) != 2 {
		t.Fatalf("replay after crash: %+v, %v", res, err)
	}
	// Reset truncates back to an empty log.
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 {
		t.Fatalf("records after reset: %d", w.Records())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

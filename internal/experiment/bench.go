package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"probe"
	"probe/internal/core"
	"probe/internal/decompose"
	"probe/internal/disk"
	"probe/internal/obs"
	"probe/internal/workload"
)

// BenchSchema identifies the BENCH_spatial.json document format.
// Consumers (CI trend plots, regression checks) key on it; bump the
// suffix when a field changes meaning or disappears — adding fields
// is compatible.
const BenchSchema = "probe-bench/v1"

// BenchReport is the bench-trajectory document: one self-contained
// JSON snapshot of the library's performance on the paper's
// workloads, emitted by `experiments -bench` and archived per commit
// by CI so throughput can be tracked over the repository's history.
type BenchReport struct {
	Schema  string        `json:"schema"`
	Quick   bool          `json:"quick"`
	Host    Host          `json:"host"`
	Config  BenchSettings `json:"config"`
	Ranges  []RangeBench  `json:"range_queries"`
	Joins   []JoinBench   `json:"joins"`
	Inserts []InsertBench `json:"inserts"`
	Mixed   []MixedBench  `json:"mixed"`
}

// Host records the execution environment throughput numbers were
// measured on, so trend consumers can separate code changes from
// machine changes. Adding it is schema-compatible (fields only ever
// accrete within a schema version).
type Host struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

// CurrentHost snapshots the running process's environment.
func CurrentHost() Host {
	return Host{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}

// BenchSettings records the experiment parameters the numbers were
// measured under.
type BenchSettings struct {
	GridBits     int   `json:"grid_bits"`
	N            int   `json:"n"`
	LeafCapacity int   `json:"leaf_capacity"`
	PageSize     int   `json:"page_size"`
	PoolPages    int   `json:"pool_pages"`
	Seed         int64 `json:"seed"`
	Locations    int   `json:"locations"`
}

// RangeBench is one (dataset, volume, strategy) range-query cell:
// cold page counts from pool-invalidated runs, throughput from a
// warm timing loop.
type RangeBench struct {
	Dataset       string  `json:"dataset"`
	VolumePct     float64 `json:"volume_pct"`
	Strategy      string  `json:"strategy"`
	Queries       int     `json:"queries"`
	AvgColdPages  float64 `json:"avg_cold_pages"`
	AvgResults    float64 `json:"avg_results"`
	AvgEfficiency float64 `json:"avg_efficiency"`
	OpsPerSec     float64 `json:"ops_per_sec"`
}

// JoinBench is one spatial-join execution, sequential or parallel.
// The work counters come from the join's execution span, so the
// document exercises the same observability path users see.
type JoinBench struct {
	Mode            string  `json:"mode"`
	Workers         int     `json:"workers"`
	LeftItems       int     `json:"left_items"`
	RightItems      int     `json:"right_items"`
	RawPairs        int     `json:"raw_pairs"`
	DistinctPairs   int     `json:"distinct_pairs"`
	Shards          int     `json:"shards"`
	ReplicatedItems int     `json:"replicated_items"`
	MergeSteps      int64   `json:"merge_steps"`
	WallMS          float64 `json:"wall_ms"`
	PairsPerSec     float64 `json:"pairs_per_sec"`
}

// MixedBench is one cell of the mixed read/write scenario: untraced
// range-query latency percentiles through the full DB facade,
// measured solo and again with a concurrent writer committing the
// whole time. Readers run on the MVCC snapshot path, so the two
// distributions should stay close — the with-writer cell is the
// document's evidence that readers no longer stall behind a writer
// holding the database mutex.
type MixedBench struct {
	Scenario    string  `json:"scenario"` // "reader-solo" | "reader-with-writer"
	Reads       int     `json:"reads"`
	WriterOps   int     `json:"writer_ops"`
	ReadP50US   float64 `json:"read_p50_us"`
	ReadP95US   float64 `json:"read_p95_us"`
	ReadP99US   float64 `json:"read_p99_us"`
	ReadsPerSec float64 `json:"reads_per_sec"`
}

// InsertBench is one index-build measurement.
type InsertBench struct {
	Dataset       string  `json:"dataset"`
	N             int     `json:"n"`
	Mode          string  `json:"mode"` // "insert" or "bulk-load"
	InsertsPerSec float64 `json:"inserts_per_sec"`
	LeafPages     int     `json:"leaf_pages"`
}

// benchVolumes are the query volumes measured, as fractions of the
// space.
var benchVolumes = []float64{0.0025, 0.01, 0.04}

// RunBench measures the bench trajectory under cfg. quick shrinks
// the matrix (one dataset, one volume, fewer repetitions) so CI's
// smoke job finishes in seconds; the schema is identical either way.
func RunBench(cfg Config, quick bool) (*BenchReport, error) {
	rep := &BenchReport{
		Schema: BenchSchema,
		Quick:  quick,
		Host:   CurrentHost(),
		Config: BenchSettings{
			GridBits:     cfg.GridBits,
			N:            cfg.N,
			LeafCapacity: cfg.LeafCapacity,
			PageSize:     cfg.PageSize,
			PoolPages:    cfg.PoolPages,
			Seed:         cfg.Seed,
			Locations:    cfg.Locations,
		},
	}
	datasets := []Dataset{U, C, D}
	volumes := benchVolumes
	reps := 20
	if quick {
		datasets = []Dataset{U}
		volumes = []float64{0.01}
		reps = 3
	}
	strategies := []core.Strategy{core.MergeDecomposed, core.MergeLazy, core.SkipBigMin}
	for _, ds := range datasets {
		in, err := Build(cfg, ds)
		if err != nil {
			return nil, err
		}
		for _, vol := range volumes {
			spec := workload.QuerySpec{Volume: vol, Aspect: 1}
			boxes, err := workload.Queries(in.Index.Grid(), spec, cfg.Locations, cfg.Seed+int64(vol*1e6))
			if err != nil {
				return nil, err
			}
			for _, strat := range strategies {
				cell := RangeBench{
					Dataset:   ds.String(),
					VolumePct: vol * 100,
					Strategy:  strat.String(),
					Queries:   len(boxes),
				}
				// Cold pass: invalidate before each query, as the
				// paper measures.
				for _, box := range boxes {
					if err := in.Pool.Invalidate(); err != nil {
						return nil, err
					}
					_, stats, err := in.Index.RangeSearch(box, strat)
					if err != nil {
						return nil, err
					}
					cell.AvgColdPages += float64(stats.DataPages)
					cell.AvgResults += float64(stats.Results)
					cell.AvgEfficiency += stats.Efficiency(cfg.LeafCapacity)
				}
				n := float64(len(boxes))
				cell.AvgColdPages /= n
				cell.AvgResults /= n
				cell.AvgEfficiency /= n
				// Warm pass: time repeated queries against a hot pool.
				start := time.Now()
				ops := 0
				for r := 0; r < reps; r++ {
					for _, box := range boxes {
						if _, _, err := in.Index.RangeSearch(box, strat); err != nil {
							return nil, err
						}
						ops++
					}
				}
				if el := time.Since(start).Seconds(); el > 0 {
					cell.OpsPerSec = float64(ops) / el
				}
				rep.Ranges = append(rep.Ranges, cell)
			}
		}
	}
	joins, err := benchJoins(cfg, quick)
	if err != nil {
		return nil, err
	}
	rep.Joins = joins
	inserts, err := benchInserts(cfg, quick)
	if err != nil {
		return nil, err
	}
	rep.Inserts = inserts
	mixed, err := benchMixed(cfg, quick)
	if err != nil {
		return nil, err
	}
	rep.Mixed = mixed
	return rep, nil
}

// benchMixed measures untraced reader latency through probe.DB solo
// and under a concurrent insert stream.
func benchMixed(cfg Config, quick bool) ([]MixedBench, error) {
	g := cfg.Grid()
	db, err := probe.Open(g,
		probe.WithPageSize(cfg.PageSize), probe.WithPoolPages(cfg.PoolPages),
		probe.WithLeafCapacity(cfg.LeafCapacity), probe.WithBulkLoad(cfg.Points(U)))
	if err != nil {
		return nil, err
	}
	defer db.Close()
	boxes, err := workload.Queries(g, workload.QuerySpec{Volume: 0.01, Aspect: 1},
		cfg.Locations, cfg.Seed+303)
	if err != nil {
		return nil, err
	}
	reads := 2000
	if quick {
		reads = 400
	}
	measure := func(scenario string, withWriter bool) (MixedBench, error) {
		cell := MixedBench{Scenario: scenario, Reads: reads}
		var (
			stop chan struct{}
			wg   sync.WaitGroup
			ops  int
			werr error
		)
		if withWriter {
			stop = make(chan struct{})
			started := make(chan struct{})
			var once sync.Once
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer once.Do(func() { close(started) })
				side := uint32(g.SideOf(0))
				for id := uint64(1 << 40); ; id++ {
					select {
					case <-stop:
						return
					default:
					}
					p := probe.Point{ID: id, Coords: []uint32{uint32(id) % side, uint32(id*31) % side}}
					if err := db.Insert(p); err != nil {
						werr = err
						return
					}
					ops++
					once.Do(func() { close(started) })
				}
			}()
			// Don't start measuring until the writer is demonstrably
			// committing — otherwise a short read batch can finish before
			// the goroutine is even scheduled.
			<-started
		}
		lat := make([]float64, 0, reads)
		start := time.Now()
		for i := 0; i < reads; i++ {
			t0 := time.Now()
			if _, _, err := db.RangeSearch(boxes[i%len(boxes)]); err != nil {
				return cell, err
			}
			lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e3)
		}
		elapsed := time.Since(start).Seconds()
		if withWriter {
			close(stop)
			wg.Wait()
			if werr != nil {
				return cell, werr
			}
			cell.WriterOps = ops
		}
		sort.Float64s(lat)
		pct := func(q float64) float64 { return lat[int(q*float64(len(lat)-1))] }
		cell.ReadP50US = pct(0.50)
		cell.ReadP95US = pct(0.95)
		cell.ReadP99US = pct(0.99)
		if elapsed > 0 {
			cell.ReadsPerSec = float64(reads) / elapsed
		}
		return cell, nil
	}
	solo, err := measure("reader-solo", false)
	if err != nil {
		return nil, err
	}
	mixed, err := measure("reader-with-writer", true)
	if err != nil {
		return nil, err
	}
	return []MixedBench{solo, mixed}, nil
}

// benchJoins joins two decomposed region relations derived from the
// query workload, sequentially and in parallel.
func benchJoins(cfg Config, quick bool) ([]JoinBench, error) {
	nRegions := 200
	if quick {
		nRegions = 40
	}
	left, err := benchRegionItems(cfg, workload.QuerySpec{Volume: 0.002, Aspect: 1}, nRegions, cfg.Seed+101)
	if err != nil {
		return nil, err
	}
	right, err := benchRegionItems(cfg, workload.QuerySpec{Volume: 0.002, Aspect: 4}, nRegions, cfg.Seed+202)
	if err != nil {
		return nil, err
	}
	modes := []struct {
		mode    string
		workers int
	}{
		{"sequential", 0},
		{"parallel", 4},
	}
	var out []JoinBench
	for _, m := range modes {
		sp := obs.New("bench-join")
		start := time.Now()
		var stats core.JoinStats
		if m.mode == "parallel" {
			_, stats, err = core.SpatialJoinParallelDistinctTraced(left, right, core.ParallelJoinConfig{Workers: m.workers}, sp)
		} else {
			_, stats, err = core.SpatialJoinDistinctTraced(left, right, sp)
		}
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		sp.End()
		jb := JoinBench{
			Mode:            m.mode,
			Workers:         m.workers,
			LeftItems:       stats.LeftItems,
			RightItems:      stats.RightItems,
			RawPairs:        stats.RawPairs,
			DistinctPairs:   stats.DistinctPairs,
			Shards:          int(sp.Get(obs.Shards)),
			ReplicatedItems: int(sp.Get(obs.ReplicatedItems)),
			MergeSteps:      sp.Total(obs.MergeSteps),
			WallMS:          float64(wall.Microseconds()) / 1e3,
		}
		if s := wall.Seconds(); s > 0 && stats.RawPairs > 0 {
			jb.PairsPerSec = float64(stats.RawPairs) / s
		}
		out = append(out, jb)
	}
	return out, nil
}

// benchRegionItems decomposes a family of random boxes into a
// z-sorted element relation.
func benchRegionItems(cfg Config, spec workload.QuerySpec, n int, seed int64) ([]core.Item, error) {
	g := cfg.Grid()
	boxes, err := workload.Queries(g, spec, n, seed)
	if err != nil {
		return nil, err
	}
	var items []core.Item
	for i, b := range boxes {
		for _, e := range decompose.Box(g, b) {
			items = append(items, core.Item{Elem: e, ID: uint64(i + 1)})
		}
	}
	core.SortItems(items)
	return items, nil
}

// benchInserts measures index construction: one-at-a-time insertion
// and bottom-up bulk loading over the uniform data set.
func benchInserts(cfg Config, quick bool) ([]InsertBench, error) {
	n := cfg.N
	if quick {
		n = cfg.N / 5
	}
	pts := cfg.Points(U)
	if len(pts) > n {
		pts = pts[:n]
	}
	var out []InsertBench
	for _, mode := range []string{"insert", "bulk-load"} {
		store, err := disk.NewMemStore(cfg.PageSize)
		if err != nil {
			return nil, err
		}
		pool, err := disk.NewPool(store, cfg.PoolPages, disk.LRU)
		if err != nil {
			return nil, err
		}
		ix, err := core.NewIndex(pool, cfg.Grid(), core.IndexConfig{LeafCapacity: cfg.LeafCapacity})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if mode == "bulk-load" {
			if err := ix.BulkLoad(pts); err != nil {
				return nil, err
			}
		} else {
			for _, p := range pts {
				if err := ix.Insert(p); err != nil {
					return nil, err
				}
			}
		}
		el := time.Since(start).Seconds()
		ib := InsertBench{
			Dataset:   U.String(),
			N:         len(pts),
			Mode:      mode,
			LeafPages: ix.Tree().LeafPages(),
		}
		if el > 0 {
			ib.InsertsPerSec = float64(len(pts)) / el
		}
		out = append(out, ib)
	}
	return out, nil
}

// WriteJSON emits the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("experiment: encoding bench report: %w", err)
	}
	return nil
}

package experiment

import (
	"bytes"
	"encoding/json"
	"testing"
)

// benchTestConfig is a tiny configuration so the bench run stays
// test-fast.
func benchTestConfig() Config {
	cfg := DefaultConfig()
	cfg.N = 300
	cfg.GridBits = 6
	cfg.Locations = 2
	return cfg
}

// TestBenchReportSchema locks the BENCH_spatial.json document shape:
// schema identifier, section presence, and the field names CI trend
// tooling keys on.
func TestBenchReportSchema(t *testing.T) {
	rep, err := RunBench(benchTestConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != BenchSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, BenchSchema)
	}
	if len(rep.Ranges) == 0 || len(rep.Joins) == 0 || len(rep.Inserts) == 0 || len(rep.Mixed) == 0 {
		t.Fatalf("empty section: ranges=%d joins=%d inserts=%d mixed=%d",
			len(rep.Ranges), len(rep.Joins), len(rep.Inserts), len(rep.Mixed))
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted document is not valid JSON: %v", err)
	}
	for _, key := range []string{"schema", "quick", "config", "range_queries", "joins", "inserts", "mixed"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("document missing top-level key %q", key)
		}
	}
	ranges := doc["range_queries"].([]any)
	cell := ranges[0].(map[string]any)
	for _, key := range []string{"dataset", "volume_pct", "strategy", "queries",
		"avg_cold_pages", "avg_results", "avg_efficiency", "ops_per_sec"} {
		if _, ok := cell[key]; !ok {
			t.Errorf("range cell missing key %q", key)
		}
	}
	joins := doc["joins"].([]any)
	jcell := joins[0].(map[string]any)
	for _, key := range []string{"mode", "workers", "left_items", "right_items",
		"raw_pairs", "distinct_pairs", "shards", "replicated_items",
		"merge_steps", "wall_ms", "pairs_per_sec"} {
		if _, ok := jcell[key]; !ok {
			t.Errorf("join cell missing key %q", key)
		}
	}
	mixed := doc["mixed"].([]any)
	mcell := mixed[0].(map[string]any)
	for _, key := range []string{"scenario", "reads", "writer_ops",
		"read_p50_us", "read_p95_us", "read_p99_us", "reads_per_sec"} {
		if _, ok := mcell[key]; !ok {
			t.Errorf("mixed cell missing key %q", key)
		}
	}
}

// TestBenchMixedScenarios asserts the mixed section carries both
// scenarios and that the with-writer cell really ran against a live
// writer — writer_ops == 0 would mean the cell measured nothing.
func TestBenchMixedScenarios(t *testing.T) {
	mixed, err := benchMixed(benchTestConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed) != 2 {
		t.Fatalf("got %d mixed cells, want 2", len(mixed))
	}
	if mixed[0].Scenario != "reader-solo" || mixed[1].Scenario != "reader-with-writer" {
		t.Fatalf("scenarios %q/%q, want reader-solo/reader-with-writer",
			mixed[0].Scenario, mixed[1].Scenario)
	}
	if mixed[1].WriterOps == 0 {
		t.Error("reader-with-writer cell recorded no writer progress")
	}
	for _, c := range mixed {
		if c.ReadP95US <= 0 || c.ReadsPerSec <= 0 {
			t.Errorf("%s: degenerate measurements: %+v", c.Scenario, c)
		}
	}
}

// TestBenchJoinModesAgree asserts the sequential and parallel bench
// joins report identical distinct-pair counts — the bench document
// doubles as a correctness check.
func TestBenchJoinModesAgree(t *testing.T) {
	joins, err := benchJoins(benchTestConfig(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(joins) != 2 {
		t.Fatalf("got %d join cells, want 2", len(joins))
	}
	if joins[0].DistinctPairs != joins[1].DistinctPairs {
		t.Errorf("sequential distinct %d != parallel distinct %d",
			joins[0].DistinctPairs, joins[1].DistinctPairs)
	}
	if joins[0].MergeSteps == 0 {
		t.Errorf("sequential join reported no merge steps")
	}
}

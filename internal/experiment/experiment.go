// Package experiment is the harness that reproduces the paper's
// evaluation (Section 5.3.2 and Figure 6): it builds the zkd
// B+-tree over the U/C/D data sets (5000 points, 20 points per
// page), runs the query sweeps, measures data-page accesses and
// efficiency, compares them with the block-model predictions, and
// renders the page-boundary partition of the space.
package experiment

import (
	"fmt"
	"strings"

	"probe/internal/analysis"
	"probe/internal/core"
	"probe/internal/disk"
	"probe/internal/geom"
	"probe/internal/workload"
	"probe/internal/zorder"
)

// Dataset selects one of the paper's three point distributions.
type Dataset int

const (
	// U: uniformly distributed points.
	U Dataset = iota
	// C: 50 small clusters of 100 points each.
	C
	// D: points uniformly distributed along the x=y diagonal.
	D
)

// String implements fmt.Stringer.
func (d Dataset) String() string {
	switch d {
	case U:
		return "U"
	case C:
		return "C"
	case D:
		return "D"
	}
	return fmt.Sprintf("Dataset(%d)", int(d))
}

// Config fixes an experiment's parameters. The defaults mirror the
// paper: 5000 points in 2d, page capacity 20 points, queries of four
// volumes and several shapes at five random locations each.
type Config struct {
	GridBits     int // bits per dimension
	Dims         int
	N            int // number of points
	LeafCapacity int // points per page
	PageSize     int
	PoolPages    int
	Seed         int64
	Locations    int // query placements per spec
	Strategy     core.Strategy
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		GridBits:     10,
		Dims:         2,
		N:            5000,
		LeafCapacity: 20,
		PageSize:     1024,
		PoolPages:    128,
		Seed:         1986,
		Locations:    5,
		Strategy:     core.MergeLazy,
	}
}

// Grid returns the configured grid.
func (c Config) Grid() zorder.Grid { return zorder.MustGrid(c.Dims, c.GridBits) }

// Points generates the configured data set.
func (c Config) Points(ds Dataset) []geom.Point {
	g := c.Grid()
	switch ds {
	case C:
		clusters := 50
		per := c.N / clusters
		return workload.Clustered(g, clusters, per, float64(g.Side())/80, c.Seed)
	case D:
		return workload.Diagonal(g, c.N, float64(g.Side())/256, c.Seed)
	default:
		return workload.Uniform(g, c.N, c.Seed)
	}
}

// Instance is a built experiment: the index plus its storage, ready
// for measured queries.
type Instance struct {
	Config Config
	Data   Dataset
	Index  *core.Index
	Store  *disk.MemStore
	Pool   *disk.Pool
	Model  *analysis.Model
}

// Build constructs the index for a data set.
func Build(cfg Config, ds Dataset) (*Instance, error) {
	store, err := disk.NewMemStore(cfg.PageSize)
	if err != nil {
		return nil, err
	}
	pool, err := disk.NewPool(store, cfg.PoolPages, disk.LRU)
	if err != nil {
		return nil, err
	}
	ix, err := core.NewIndex(pool, cfg.Grid(), core.IndexConfig{LeafCapacity: cfg.LeafCapacity})
	if err != nil {
		return nil, err
	}
	if err := ix.BulkLoad(cfg.Points(ds)); err != nil {
		return nil, err
	}
	model, err := analysis.NewModel(cfg.Grid(), ix.Tree().LeafPages())
	if err != nil {
		return nil, err
	}
	return &Instance{Config: cfg, Data: ds, Index: ix, Store: store, Pool: pool, Model: model}, nil
}

// Row is one line of a Tables S5-S7 sweep: aggregates over the
// query placements of one (volume, aspect) spec.
type Row struct {
	Spec           workload.QuerySpec
	Queries        int
	AvgPages       float64
	MaxPages       int
	PredictedPages float64 // block-model prediction for this shape
	AvgResults     float64
	AvgEfficiency  float64
}

// RunSweep measures every query spec at cfg.Locations random
// placements. The buffer pool is invalidated before each query so the
// page counts are cold, as in the paper's measurements.
func (in *Instance) RunSweep(specs []workload.QuerySpec) ([]Row, error) {
	rows := make([]Row, 0, len(specs))
	for si, spec := range specs {
		boxes, err := workload.Queries(in.Index.Grid(), spec, in.Config.Locations, in.Config.Seed+int64(si)+1)
		if err != nil {
			return nil, err
		}
		row := Row{Spec: spec, Queries: len(boxes)}
		var predicted float64
		for _, box := range boxes {
			if err := in.Pool.Invalidate(); err != nil {
				return nil, err
			}
			_, stats, err := in.Index.RangeSearch(box, in.Config.Strategy)
			if err != nil {
				return nil, err
			}
			row.AvgPages += float64(stats.DataPages)
			if stats.DataPages > row.MaxPages {
				row.MaxPages = stats.DataPages
			}
			row.AvgResults += float64(stats.Results)
			row.AvgEfficiency += stats.Efficiency(in.Config.LeafCapacity)
			predicted += in.Model.PredictPages(box)
		}
		n := float64(len(boxes))
		row.AvgPages /= n
		row.AvgResults /= n
		row.AvgEfficiency /= n
		row.PredictedPages = predicted / n
		rows = append(rows, row)
	}
	return rows, nil
}

// Findings summarizes the paper's four Section 5.3.2 observations
// over a sweep.
type Findings struct {
	// ShapeTrend: within each volume, the narrowest shapes cost at
	// least as many pages as the squarish ones.
	ShapeTrend bool
	// UpperBoundFrac is the fraction of rows whose measured average
	// is at or below the prediction ("the predicted results provided
	// an upper bound... except for a few data points").
	UpperBoundFrac float64
	// EfficiencyGrowsWithVolume: mean efficiency is nondecreasing
	// across the sorted volumes.
	EfficiencyGrowsWithVolume bool
	// BestAspect is the aspect ratio with the highest mean
	// efficiency (the paper: square or twice as tall as wide).
	BestAspect float64
	// LowEffLowPagesFrac is the fraction of bottom-quartile-efficiency
	// rows whose page count is below the median: the paper's "low
	// efficiency was usually accompanied by a low number of page
	// accesses (fortunately)".
	LowEffLowPagesFrac float64
}

// Summarize computes the Findings of a sweep.
func Summarize(rows []Row) Findings {
	var f Findings
	// Group rows by volume.
	byVol := map[float64][]Row{}
	var vols []float64
	for _, r := range rows {
		if _, ok := byVol[r.Spec.Volume]; !ok {
			vols = append(vols, r.Spec.Volume)
		}
		byVol[r.Spec.Volume] = append(byVol[r.Spec.Volume], r)
	}
	sortFloats(vols)

	// Shape trend: most-extreme aspect vs most-square aspect.
	f.ShapeTrend = true
	for _, v := range vols {
		group := byVol[v]
		var extreme, square *Row
		for i := range group {
			r := &group[i]
			if extreme == nil || aspectExtremity(r.Spec.Aspect) > aspectExtremity(extreme.Spec.Aspect) {
				extreme = r
			}
			if square == nil || aspectExtremity(r.Spec.Aspect) < aspectExtremity(square.Spec.Aspect) {
				square = r
			}
		}
		if extreme.AvgPages < square.AvgPages {
			f.ShapeTrend = false
		}
	}

	// Upper bound fraction.
	within := 0
	for _, r := range rows {
		if r.AvgPages <= r.PredictedPages {
			within++
		}
	}
	if len(rows) > 0 {
		f.UpperBoundFrac = float64(within) / float64(len(rows))
	}

	// Efficiency vs volume.
	f.EfficiencyGrowsWithVolume = true
	prev := -1.0
	for _, v := range vols {
		sum := 0.0
		for _, r := range byVol[v] {
			sum += r.AvgEfficiency
		}
		mean := sum / float64(len(byVol[v]))
		if mean < prev {
			f.EfficiencyGrowsWithVolume = false
		}
		prev = mean
	}

	// Low efficiency accompanied by low page counts.
	if len(rows) >= 4 {
		effs := make([]float64, len(rows))
		pages := make([]float64, len(rows))
		for i, r := range rows {
			effs[i] = r.AvgEfficiency
			pages[i] = r.AvgPages
		}
		sortFloats(effs)
		sortFloats(pages)
		effQ1 := effs[len(effs)/4]
		pageMedian := pages[len(pages)/2]
		low, lowAndCheap := 0, 0
		for _, r := range rows {
			if r.AvgEfficiency <= effQ1 {
				low++
				if r.AvgPages <= pageMedian {
					lowAndCheap++
				}
			}
		}
		if low > 0 {
			f.LowEffLowPagesFrac = float64(lowAndCheap) / float64(low)
		}
	}

	// Best aspect by mean efficiency across volumes.
	byAspect := map[float64]float64{}
	counts := map[float64]int{}
	for _, r := range rows {
		byAspect[r.Spec.Aspect] += r.AvgEfficiency
		counts[r.Spec.Aspect]++
	}
	best, bestEff := 0.0, -1.0
	for a, sum := range byAspect {
		eff := sum / float64(counts[a])
		if eff > bestEff {
			best, bestEff = a, eff
		}
	}
	f.BestAspect = best
	return f
}

func aspectExtremity(a float64) float64 {
	if a < 1 {
		a = 1 / a
	}
	return a
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// FormatRows renders a sweep as the table recorded in EXPERIMENTS.md.
func FormatRows(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %-8s %-10s %-9s %-10s %-10s %-10s\n",
		"volume", "aspect", "avg-pages", "max", "predicted", "avg-hits", "efficiency")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10.4f %-8g %-10.1f %-9d %-10.1f %-10.1f %-10.3f\n",
			r.Spec.Volume, r.Spec.Aspect, r.AvgPages, r.MaxPages,
			r.PredictedPages, r.AvgResults, r.AvgEfficiency)
	}
	return b.String()
}

// LeafBoundaries returns the first z key of every leaf page, in
// order: the page partition of the space.
func (in *Instance) LeafBoundaries() ([]uint64, error) {
	var bounds []uint64
	c := in.Index.Tree().Cursor()
	var last disk.PageID
	ok, err := c.First()
	for ok {
		if c.LeafID() != last {
			bounds = append(bounds, c.Key().Hi)
			last = c.LeafID()
		}
		ok, err = c.Next()
	}
	if err != nil {
		return nil, err
	}
	return bounds, nil
}

// RenderPartition draws Figure 6: the partitioning of the space
// induced by page boundaries, sampled onto a width x height character
// raster. Each cell shows a character identifying the leaf page
// covering the cell's center pixel; neighbouring cells with different
// pages therefore show the page boundaries.
func (in *Instance) RenderPartition(width, height int) (string, error) {
	if in.Index.Grid().Dims() != 2 || !in.Index.Grid().Symmetric() {
		return "", fmt.Errorf("experiment: partition rendering requires a symmetric 2d grid")
	}
	bounds, err := in.LeafBoundaries()
	if err != nil {
		return "", err
	}
	g := in.Index.Grid()
	const alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	var b strings.Builder
	fmt.Fprintf(&b, "partition of %v into %d pages (experiment %v)\n", g, len(bounds), in.Data)
	for row := height - 1; row >= 0; row-- {
		for col := 0; col < width; col++ {
			x := uint32((uint64(col)*2 + 1) * g.Side() / uint64(2*width))
			y := uint32((uint64(row)*2 + 1) * g.Side() / uint64(2*height))
			z := g.ShuffleKey([]uint32{x, y})
			idx := pageOf(bounds, z)
			b.WriteByte(alphabet[idx%len(alphabet)])
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// pageOf returns the index of the leaf whose z range covers z: the
// last boundary <= z (page 0 covers everything before the second
// boundary).
func pageOf(bounds []uint64, z uint64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if bounds[mid] <= z {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

package experiment

import (
	"strings"
	"testing"

	"probe/internal/analysis"
	"probe/internal/workload"
)

// smallConfig shrinks the paper configuration so the full test suite
// stays fast; the full-size run lives in the benchmarks.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.N = 1500
	cfg.GridBits = 8
	cfg.Locations = 3
	return cfg
}

func smallSpecs() []workload.QuerySpec {
	return []workload.QuerySpec{
		{Volume: 0.01, Aspect: 16},
		{Volume: 0.01, Aspect: 1},
		{Volume: 0.09, Aspect: 16},
		{Volume: 0.09, Aspect: 1},
		{Volume: 0.09, Aspect: 0.5},
	}
}

func TestBuildInstances(t *testing.T) {
	cfg := smallConfig()
	for _, ds := range []Dataset{U, C, D} {
		in, err := Build(cfg, ds)
		if err != nil {
			t.Fatalf("%v: %v", ds, err)
		}
		if in.Index.Len() != cfg.N {
			t.Errorf("%v: indexed %d points, want %d", ds, in.Index.Len(), cfg.N)
		}
		if in.Index.Tree().LeafPages() < cfg.N/cfg.LeafCapacity {
			t.Errorf("%v: too few leaf pages", ds)
		}
		if ds.String() == "" {
			t.Errorf("dataset string empty")
		}
	}
	if Dataset(9).String() == "" {
		t.Errorf("unknown dataset string empty")
	}
}

func TestRunSweepProducesSaneRows(t *testing.T) {
	in, err := Build(smallConfig(), U)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := in.RunSweep(smallSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(smallSpecs()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AvgPages <= 0 || r.MaxPages <= 0 {
			t.Errorf("row %v has no page accesses", r.Spec)
		}
		if float64(r.MaxPages) < r.AvgPages {
			t.Errorf("max < avg in %v", r.Spec)
		}
		if r.PredictedPages <= 0 {
			t.Errorf("no prediction for %v", r.Spec)
		}
		if r.AvgEfficiency < 0 || r.AvgEfficiency > 1 {
			t.Errorf("efficiency %v out of range", r.AvgEfficiency)
		}
	}
	out := FormatRows("test", rows)
	if !strings.Contains(out, "efficiency") || len(strings.Split(out, "\n")) < len(rows)+2 {
		t.Errorf("FormatRows output malformed:\n%s", out)
	}
}

// TestPaperFindingsOnUniform verifies the paper's four observations
// hold on experiment U (the one the paper says matches the analysis
// most closely).
func TestPaperFindingsOnUniform(t *testing.T) {
	cfg := smallConfig()
	cfg.N = 3000
	in, err := Build(cfg, U)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := in.RunSweep(workload.PaperSpecs())
	if err != nil {
		t.Fatal(err)
	}
	f := Summarize(rows)
	if !f.ShapeTrend {
		t.Errorf("shape trend (narrow costs more) not observed")
	}
	if f.UpperBoundFrac < 0.75 {
		t.Errorf("prediction is an upper bound for only %.0f%% of rows", f.UpperBoundFrac*100)
	}
	if !f.EfficiencyGrowsWithVolume {
		t.Errorf("efficiency did not grow with volume")
	}
	if f.BestAspect < 0.25 || f.BestAspect > 2 {
		t.Errorf("best aspect %g far from the predicted square/2:1-tall band", f.BestAspect)
	}
}

func TestLeafBoundariesAndPartition(t *testing.T) {
	in, err := Build(smallConfig(), D)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := in.LeafBoundaries()
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != in.Index.Tree().LeafPages() {
		t.Fatalf("boundaries %d, leaves %d", len(bounds), in.Index.Tree().LeafPages())
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i-1] >= bounds[i] {
			t.Fatalf("boundaries not increasing at %d", i)
		}
	}
	art, err := in.RenderPartition(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(art), "\n")
	if len(lines) != 17 { // header + 16 rows
		t.Fatalf("partition render has %d lines", len(lines))
	}
	for _, l := range lines[1:] {
		if len(l) != 32 {
			t.Fatalf("row width %d", len(l))
		}
	}
	// On the diagonal data set the corners off the diagonal share
	// huge pages, so the top-left corner and bottom-right corner of
	// the render should be sparse (few distinct characters).
	distinct := map[byte]bool{}
	for _, l := range lines[1:] {
		distinct[l[0]] = true
	}
	if len(distinct) > len(bounds) {
		t.Errorf("renderer invented pages")
	}
}

func TestPageOf(t *testing.T) {
	bounds := []uint64{0, 100, 200}
	cases := []struct {
		z    uint64
		want int
	}{{0, 0}, {50, 0}, {100, 1}, {199, 1}, {200, 2}, {5000, 2}}
	for _, c := range cases {
		if got := pageOf(bounds, c.z); got != c.want {
			t.Errorf("pageOf(%d) = %d, want %d", c.z, got, c.want)
		}
	}
	// A z below the first boundary (possible when the first leaf's
	// first key is nonzero) maps to page 0.
	if pageOf([]uint64{100, 200}, 5) != 0 {
		t.Errorf("below-first-boundary z should map to page 0")
	}
}

func TestSpaceTable(t *testing.T) {
	rows := SpaceTable(7, PaperSpacePairs())
	if len(rows) != len(PaperSpacePairs()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.E != r.EDoubled {
			t.Errorf("cyclicity violated for (%d,%d): %d vs %d", r.U, r.V, r.E, r.EDoubled)
		}
		if r.EExp > r.E {
			t.Errorf("boundary expansion grew elements for (%d,%d)", r.U, r.V)
		}
		if r.AreaGrow < 0 {
			t.Errorf("area shrank for (%d,%d)", r.U, r.V)
		}
	}
	out := FormatSpaceTable(rows)
	if !strings.Contains(out, "E(U,V)") {
		t.Errorf("space table malformed")
	}
}

func TestBitSpan(t *testing.T) {
	cases := []struct {
		x    uint32
		want int
	}{{0, 0}, {1, 1}, {2, 1}, {3, 2}, {0b100100, 4}, {0b01101101, 7}, {1 << 31, 1}}
	for _, c := range cases {
		if got := bitSpan(c.x); got != c.want {
			t.Errorf("bitSpan(%b) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestRunPartialMatch(t *testing.T) {
	in, err := Build(smallConfig(), U)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := in.RunPartialMatch([][]bool{
		{true, false},
		{false, true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.T != 1 || r.K != 2 {
			t.Errorf("row dims wrong: %+v", r)
		}
		if r.AvgPages <= 0 || r.Predicted <= 0 {
			t.Errorf("empty measurements: %+v", r)
		}
		// The partial-match prediction should be an upper bound
		// within a small tolerance.
		if r.AvgPages > r.Predicted*2 {
			t.Errorf("partial match used %.1f pages, prediction %.1f", r.AvgPages, r.Predicted)
		}
	}
	if !strings.Contains(FormatPartialTable(rows), "predicted") {
		t.Errorf("partial table malformed")
	}
}

func TestRunKdComparison(t *testing.T) {
	in, err := Build(smallConfig(), U)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := in.RunKdComparison(smallSpecs())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ZkdPages <= 0 || r.KdLeaves <= 0 {
			t.Errorf("empty comparison row %+v", r)
		}
		// "Comparable to the kd tree": within a factor of 4 either way.
		ratio := r.ZkdPages / r.KdLeaves
		if ratio > 4 || ratio < 0.25 {
			t.Errorf("structures not comparable on %v: ratio %.2f", r.Spec, ratio)
		}
	}
	if !strings.Contains(FormatKdTable(rows), "zkd-pages") {
		t.Errorf("kd table malformed")
	}
}

func TestFullSpacePrediction(t *testing.T) {
	in, err := Build(smallConfig(), U)
	if err != nil {
		t.Fatal(err)
	}
	if p := in.fullSpacePrediction(); p != float64(in.Index.Tree().LeafPages()) {
		t.Errorf("full-space prediction %v, want N=%d", p, in.Index.Tree().LeafPages())
	}
}

func TestProximityTableFormatting(t *testing.T) {
	g := smallConfig().Grid()
	samples := analysis.MeasureProximity(g, []uint32{1, 8, 32}, 16)
	out := FormatProximityTable(samples)
	if !strings.Contains(out, "frac-close") || len(strings.Split(strings.TrimSpace(out), "\n")) != len(samples)+2 {
		t.Errorf("proximity table malformed:\n%s", out)
	}
}

// TestPagesPerBlockBound measures the Section 5.2 constant: under the
// block model, pages per block is bounded by ~6 in 2d; the measured
// mean should sit near that bound (boundary effects allow some slack,
// the paper's bound is for the idealized fixed-size-page partition).
func TestPagesPerBlockBound(t *testing.T) {
	in, err := Build(smallConfig(), U)
	if err != nil {
		t.Fatal(err)
	}
	row, err := in.MeasurePagesPerBlock()
	if err != nil {
		t.Fatal(err)
	}
	if row.Blocks < 4 {
		t.Fatalf("too few blocks: %+v", row)
	}
	if row.MeanPages < 1 || row.MeanPages > 2*analysis.PagesPerBlock(2)+2 {
		t.Errorf("mean pages per block %.1f far from the 2d bound %.1f",
			row.MeanPages, analysis.PagesPerBlock(2))
	}
	if float64(row.MaxPages) < row.MeanPages {
		t.Errorf("max below mean: %+v", row)
	}
}

// TestLowEfficiencyLowPages checks the paper's parenthetical finding:
// rows with the worst efficiency are also cheap in pages.
func TestLowEfficiencyLowPages(t *testing.T) {
	cfg := smallConfig()
	cfg.N = 3000
	in, err := Build(cfg, U)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := in.RunSweep(workload.PaperSpecs())
	if err != nil {
		t.Fatal(err)
	}
	f := Summarize(rows)
	if f.LowEffLowPagesFrac < 0.6 {
		t.Errorf("only %.0f%% of low-efficiency rows were cheap in pages",
			f.LowEffLowPagesFrac*100)
	}
}

func TestRenderPartitionRequiresSymmetric2D(t *testing.T) {
	cfg := smallConfig()
	cfg.Dims = 3
	in, err := Build(cfg, U)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.RenderPartition(8, 8); err == nil {
		t.Errorf("3d partition render accepted")
	}
}

package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"probe/internal/analysis"
	"probe/internal/decompose"
	"probe/internal/geom"
	"probe/internal/gridfile"
	"probe/internal/kdtree"
	"probe/internal/rtree"
	"probe/internal/workload"
	"probe/internal/zorder"
)

// This file produces the remaining tables of EXPERIMENTS.md: the
// Section 5.1 space-requirements table, the Section 5.2 proximity
// table, the Section 5.3.1 partial-match table, and the kd-tree
// comparison.

// SpaceRow is one line of Table S1.
type SpaceRow struct {
	U, V     uint32
	E        int // elements in the decomposition of the U x V box
	EDoubled int // E(2U, 2V) on the doubled grid — equals E (cyclicity)
	BitSpan  int // positions between first and last 1 bits of U|V
	M        int // boundary expansion amount
	EExp     int // E after expanding boundaries by m bits
	AreaGrow float64
}

// SpaceTable sweeps E(U,V) for the Section 5.1 analysis: cyclicity,
// bit-span dependence and the boundary-expansion optimization
// (m = 4 unless the value is already aligned).
func SpaceTable(d int, pairs [][2]uint32) []SpaceRow {
	g := zorder.MustGrid(2, d)
	g2 := zorder.MustGrid(2, d+1)
	rows := make([]SpaceRow, 0, len(pairs))
	for _, p := range pairs {
		u, v := p[0], p[1]
		const m = 4
		// The table's sides are far below 2^32, so the expanded
		// values fit back into uint32.
		eu := uint32(decompose.ExpandBoundary(u, m))
		ev := uint32(decompose.ExpandBoundary(v, m))
		row := SpaceRow{
			U: u, V: v,
			E:        decompose.E(g, u, v),
			EDoubled: decompose.E(g2, 2*u, 2*v),
			BitSpan:  bitSpan(u | v),
			M:        m,
			EExp:     decompose.E(g, eu, ev),
			AreaGrow: float64(eu)*float64(ev)/(float64(u)*float64(v)) - 1,
		}
		rows = append(rows, row)
	}
	return rows
}

// bitSpan returns the number of bit positions between the first and
// last 1 bits of x, inclusive (0 for x == 0).
func bitSpan(x uint32) int {
	if x == 0 {
		return 0
	}
	hi := 31
	for x&(1<<uint(hi)) == 0 {
		hi--
	}
	lo := 0
	for x&(1<<uint(lo)) == 0 {
		lo++
	}
	return hi - lo + 1
}

// FormatSpaceTable renders Table S1.
func FormatSpaceTable(rows []SpaceRow) string {
	var b strings.Builder
	b.WriteString("Table S1: space requirements E(U,V) (Section 5.1)\n")
	fmt.Fprintf(&b, "%-6s %-6s %-8s %-9s %-8s %-4s %-8s %-9s\n",
		"U", "V", "E(U,V)", "E(2U,2V)", "bitspan", "m", "E(expd)", "area+%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-6d %-8d %-9d %-8d %-4d %-8d %-9.1f\n",
			r.U, r.V, r.E, r.EDoubled, r.BitSpan, r.M, r.EExp, r.AreaGrow*100)
	}
	return b.String()
}

// FormatProximityTable renders Table S2 from analysis samples.
func FormatProximityTable(samples []analysis.ProximitySample) string {
	var b strings.Builder
	b.WriteString("Table S2: proximity preservation (Section 5.2)\n")
	fmt.Fprintf(&b, "%-10s %-8s %-12s %-12s %-12s %-10s\n",
		"spatial-d", "pairs", "mean-zd", "median-zd", "p90-zd", "frac-close")
	for _, s := range samples {
		fmt.Fprintf(&b, "%-10d %-8d %-12.0f %-12.0f %-12.0f %-10.2f\n",
			s.SpatialDist, s.Pairs, s.MeanZDist, s.MedianZDist, s.P90ZDist, s.FracZClose)
	}
	return b.String()
}

// PartialRow is one line of Table S4.
type PartialRow struct {
	K, T      int
	Queries   int
	AvgPages  float64
	Predicted float64
}

// RunPartialMatch measures partial-match queries restricting t of k
// dimensions against the O(N^(1-t/k)) prediction.
func (in *Instance) RunPartialMatch(masks [][]bool) ([]PartialRow, error) {
	g := in.Index.Grid()
	rows := make([]PartialRow, 0, len(masks))
	for mi, mask := range masks {
		t := 0
		for _, r := range mask {
			if r {
				t++
			}
		}
		boxes := workload.PartialMatches(g, mask, in.Config.Locations, in.Config.Seed+100+int64(mi))
		row := PartialRow{K: g.Dims(), T: t, Queries: len(boxes)}
		for _, box := range boxes {
			if err := in.Pool.Invalidate(); err != nil {
				return nil, err
			}
			_, stats, err := in.Index.RangeSearch(box, in.Config.Strategy)
			if err != nil {
				return nil, err
			}
			row.AvgPages += float64(stats.DataPages)
		}
		row.AvgPages /= float64(len(boxes))
		pred, err := in.Model.PredictPartialMatch(t)
		if err != nil {
			return nil, err
		}
		row.Predicted = pred
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatPartialTable renders Table S4.
func FormatPartialTable(rows []PartialRow) string {
	var b strings.Builder
	b.WriteString("Table S4: partial match O(N^(1-t/k)) (Section 5.3.1)\n")
	fmt.Fprintf(&b, "%-4s %-4s %-8s %-10s %-10s\n", "k", "t", "queries", "avg-pages", "predicted")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d %-4d %-8d %-10.1f %-10.1f\n", r.K, r.T, r.Queries, r.AvgPages, r.Predicted)
	}
	return b.String()
}

// KdRow is one line of Table S8: the zkd B+-tree vs the bucket kd
// tree and the grid file [NIEV84] on the same workload.
type KdRow struct {
	Spec        workload.QuerySpec
	ZkdPages    float64
	KdLeaves    float64
	GridBuckets float64
	RtreeLeaves float64
	ZkdN        int // total leaf pages in the B+-tree
	KdN         int // total leaves in the kd tree
	GridN       int // total buckets in the grid file
	RtreeN      int // total leaves in the R-tree
}

// RunKdComparison runs the sweep on all three structures. The kd
// tree's buckets and the grid file's buckets hold the same number of
// points as the B+-tree's leaves.
func (in *Instance) RunKdComparison(specs []workload.QuerySpec) ([]KdRow, error) {
	pts := in.Config.Points(in.Data)
	kt, err := kdtree.BuildBucket(pts, in.Config.LeafCapacity)
	if err != nil {
		return nil, err
	}
	gf, err := gridfile.New(in.Index.Grid(), in.Config.LeafCapacity)
	if err != nil {
		return nil, err
	}
	rt, err := rtree.New(in.Index.Grid().Dims(), in.Config.LeafCapacity)
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		if err := gf.Insert(p); err != nil {
			return nil, err
		}
		if err := rt.Insert(p); err != nil {
			return nil, err
		}
	}
	rows := make([]KdRow, 0, len(specs))
	for si, spec := range specs {
		boxes, err := workload.Queries(in.Index.Grid(), spec, in.Config.Locations, in.Config.Seed+int64(si)+1)
		if err != nil {
			return nil, err
		}
		row := KdRow{
			Spec: spec,
			ZkdN: in.Index.Tree().LeafPages(), KdN: kt.Leaves(),
			GridN: gf.Buckets(), RtreeN: rt.Leaves(),
		}
		for _, box := range boxes {
			if err := in.Pool.Invalidate(); err != nil {
				return nil, err
			}
			zres, stats, err := in.Index.RangeSearch(box, in.Config.Strategy)
			if err != nil {
				return nil, err
			}
			kres, leaves := kt.RangeSearch(box)
			gres, buckets := gf.RangeSearch(box)
			rres, _, rleaves := rt.RangeSearch(box)
			if len(zres) != len(kres) || len(zres) != len(gres) || len(zres) != len(rres) {
				return nil, fmt.Errorf("experiment: structures disagree: %d vs %d vs %d vs %d results",
					len(zres), len(kres), len(gres), len(rres))
			}
			row.ZkdPages += float64(stats.DataPages)
			row.KdLeaves += float64(leaves)
			row.GridBuckets += float64(buckets)
			row.RtreeLeaves += float64(rleaves)
		}
		n := float64(len(boxes))
		row.ZkdPages /= n
		row.KdLeaves /= n
		row.GridBuckets /= n
		row.RtreeLeaves /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatKdTable renders Table S8.
func FormatKdTable(rows []KdRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %-11s %-10s %-12s %-12s %-8s\n",
		"volume", "aspect", "zkd-pages", "kd-leaves", "grid-bkts", "rtree-lvs", "zkd/kd")
	for _, r := range rows {
		ratio := 0.0
		if r.KdLeaves > 0 {
			ratio = r.ZkdPages / r.KdLeaves
		}
		fmt.Fprintf(&b, "%-10.4f %-8g %-11.1f %-10.1f %-12.1f %-12.1f %-8.2f\n",
			r.Spec.Volume, r.Spec.Aspect, r.ZkdPages, r.KdLeaves, r.GridBuckets, r.RtreeLeaves, ratio)
	}
	return b.String()
}

// PaperSpacePairs returns the (U, V) pairs used for Table S1,
// covering aligned, nearly aligned and worst-case bit patterns.
func PaperSpacePairs() [][2]uint32 {
	return [][2]uint32{
		{32, 32},
		{33, 33},
		{31, 31},
		{63, 63},
		{64, 64},
		{0b01101101, 0b01011011},
		{100, 100},
		{96, 96},
		{127, 1},
		{1, 127},
		{85, 51},
	}
}

// checkVolumeBox is kept for tests: predicted pages of the full space
// equal N.
func (in *Instance) fullSpacePrediction() float64 {
	return in.Model.PredictPages(geom.FullBox(in.Index.Grid()))
}

// BlockRow is the measured pages-per-block distribution of Section
// 5.2: under the fixed-size-page assumption, the number of pages per
// (aligned, equal-size) block is bounded by a constant — 6 in 2d.
type BlockRow struct {
	BlockBits int // block side = 2^BlockBits
	Blocks    int
	MeanPages float64
	MaxPages  int
}

// MeasurePagesPerBlock tiles the space with aligned square blocks
// sized so that there are about N/6 of them (each block should hold
// about the bound's worth of pages) and counts, for each block, how
// many leaf pages overlap its z range.
func (in *Instance) MeasurePagesPerBlock() (BlockRow, error) {
	g := in.Index.Grid()
	bounds, err := in.LeafBoundaries()
	if err != nil {
		return BlockRow{}, err
	}
	n := len(bounds)
	ppb := analysis.PagesPerBlock(g.Dims())
	targetBlocks := float64(n) / ppb
	if targetBlocks < 1 {
		targetBlocks = 1
	}
	// Aligned blocks have side 2^m; blocks count = (side/2^m)^k.
	perDim := math.Pow(targetBlocks, 1/float64(g.Dims()))
	m := g.BitsPerDim() - int(math.Round(math.Log2(perDim)))
	if m < 0 {
		m = 0
	}
	if m > g.BitsPerDim() {
		m = g.BitsPerDim()
	}
	// Each block is an element of length k*(d-m): iterate them in z
	// order; their z ranges tile the key space.
	prefixBits := g.Dims() * (g.BitsPerDim() - m)
	blocks := 1 << uint(prefixBits)
	row := BlockRow{BlockBits: m, Blocks: blocks}
	total := 0
	for b := 0; b < blocks; b++ {
		e := zorder.NewElement(uint64(b), prefixBits)
		lo, hi := e.MinZ(), e.MaxZ(g.TotalBits())
		// Pages overlapping = boundaries in (lo, hi] plus the page
		// covering lo.
		first := sort.Search(len(bounds), func(i int) bool { return bounds[i] > lo })
		last := sort.Search(len(bounds), func(i int) bool { return bounds[i] > hi })
		pages := last - first + 1
		total += pages
		if pages > row.MaxPages {
			row.MaxPages = pages
		}
	}
	row.MeanPages = float64(total) / float64(blocks)
	return row, nil
}

// Package geom provides the geometric substrate for approximate
// geometry: integer boxes over a grid, and spatial objects exposing
// the Inside/Outside/Crosses classification oracle that drives the
// decomposition algorithm (Section 3.1 of the paper: "All that is
// required is a procedure that indicates whether a given element is
// inside a given spatial object, outside the object, or crosses the
// boundary of the object").
package geom

import (
	"fmt"

	"probe/internal/zorder"
)

// Class is the classification of a grid region against a spatial
// object.
type Class int

const (
	// Outside: no pixel of the region belongs to the object.
	Outside Class = iota
	// Inside: every pixel of the region belongs to the object.
	Inside
	// Crosses: the region straddles the object's boundary (or the
	// object cannot cheaply prove Inside/Outside; conservative
	// Crosses answers are allowed except for single-pixel regions).
	Crosses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Outside:
		return "outside"
	case Inside:
		return "inside"
	case Crosses:
		return "crosses"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Object is a k-dimensional spatial object that can classify grid
// regions. Classify receives the inclusive pixel bounds of a region
// obtained by recursive splitting. For a single-pixel region
// (lo == hi) the result must be Inside or Outside, never Crosses.
type Object interface {
	// Dims returns the dimensionality of the object.
	Dims() int
	// Classify classifies the region [lo, hi] (inclusive pixel
	// coordinates per dimension).
	Classify(lo, hi []uint32) Class
}

// Box is an axis-parallel box of grid pixels with inclusive bounds.
// It is both the query shape of range searches (Figure 1) and a
// spatial object in its own right.
type Box struct {
	Lo, Hi []uint32
}

// NewBox builds a box and validates that the bounds have equal arity
// and lo <= hi in every dimension.
func NewBox(lo, hi []uint32) (Box, error) {
	if len(lo) != len(hi) || len(lo) == 0 {
		return Box{}, fmt.Errorf("geom: box bounds have arity %d vs %d", len(lo), len(hi))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Box{}, fmt.Errorf("geom: box dimension %d has lo %d > hi %d", i, lo[i], hi[i])
		}
	}
	return Box{Lo: append([]uint32(nil), lo...), Hi: append([]uint32(nil), hi...)}, nil
}

// MustBox is NewBox panicking on error.
func MustBox(lo, hi []uint32) Box {
	b, err := NewBox(lo, hi)
	if err != nil {
		panic(err)
	}
	return b
}

// Box2 builds a 2-d box from scalar bounds.
func Box2(xlo, xhi, ylo, yhi uint32) Box {
	return MustBox([]uint32{xlo, ylo}, []uint32{xhi, yhi})
}

// Dims implements Object.
func (b Box) Dims() int { return len(b.Lo) }

// ContainsPoint reports whether the pixel lies inside the box.
func (b Box) ContainsPoint(p []uint32) bool {
	for i := range b.Lo {
		if p[i] < b.Lo[i] || p[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsBox reports whether the box contains the region [lo, hi].
func (b Box) ContainsBox(lo, hi []uint32) bool {
	for i := range b.Lo {
		if lo[i] < b.Lo[i] || hi[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether the box intersects the region [lo, hi].
func (b Box) Intersects(lo, hi []uint32) bool {
	for i := range b.Lo {
		if hi[i] < b.Lo[i] || lo[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// IntersectsBox reports whether two boxes share a pixel.
func (b Box) IntersectsBox(o Box) bool { return b.Intersects(o.Lo, o.Hi) }

// Classify implements Object.
func (b Box) Classify(lo, hi []uint32) Class {
	if !b.Intersects(lo, hi) {
		return Outside
	}
	if b.ContainsBox(lo, hi) {
		return Inside
	}
	return Crosses
}

// Side returns hi-lo+1 for dimension i.
func (b Box) Side(i int) uint64 { return uint64(b.Hi[i]) - uint64(b.Lo[i]) + 1 }

// Volume returns the number of pixels in the box.
func (b Box) Volume() uint64 {
	v := uint64(1)
	for i := range b.Lo {
		v *= b.Side(i)
	}
	return v
}

// VolumeFraction returns the box volume as a fraction of grid g's
// volume, the quantity v of the paper's O(vN) page-access result.
func (b Box) VolumeFraction(g zorder.Grid) float64 {
	f := 1.0
	for i := range b.Lo {
		f *= float64(b.Side(i)) / float64(g.SideOf(i))
	}
	return f
}

// Equal reports deep equality of two boxes.
func (b Box) Equal(o Box) bool {
	if len(b.Lo) != len(o.Lo) {
		return false
	}
	for i := range b.Lo {
		if b.Lo[i] != o.Lo[i] || b.Hi[i] != o.Hi[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (b Box) String() string {
	s := "box("
	for i := range b.Lo {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d..%d", b.Lo[i], b.Hi[i])
	}
	return s + ")"
}

// FullBox returns the box covering the entire grid.
func FullBox(g zorder.Grid) Box {
	lo := make([]uint32, g.Dims())
	hi := make([]uint32, g.Dims())
	for i := range hi {
		hi[i] = uint32(g.SideOf(i) - 1)
	}
	return Box{Lo: lo, Hi: hi}
}

// PartialMatchBox builds the box of a partial-match query on grid g:
// restricted[i] pins dimension i to value[i]; unrestricted dimensions
// span the whole axis (Section 5.3.1).
func PartialMatchBox(g zorder.Grid, restricted []bool, value []uint32) Box {
	b := FullBox(g)
	for i, r := range restricted {
		if r {
			b.Lo[i] = value[i]
			b.Hi[i] = value[i]
		}
	}
	return b
}

package geom

import (
	"math/rand"
	"testing"

	"probe/internal/zorder"
)

func TestNewBoxValidation(t *testing.T) {
	if _, err := NewBox([]uint32{1, 2}, []uint32{3, 4}); err != nil {
		t.Fatalf("valid box rejected: %v", err)
	}
	if _, err := NewBox([]uint32{5, 2}, []uint32{3, 4}); err == nil {
		t.Errorf("inverted bounds accepted")
	}
	if _, err := NewBox([]uint32{1}, []uint32{3, 4}); err == nil {
		t.Errorf("arity mismatch accepted")
	}
	if _, err := NewBox(nil, nil); err == nil {
		t.Errorf("empty box accepted")
	}
}

func TestBoxCopiesBounds(t *testing.T) {
	lo := []uint32{1, 2}
	hi := []uint32{3, 4}
	b := MustBox(lo, hi)
	lo[0] = 99
	if b.Lo[0] != 1 {
		t.Errorf("NewBox must copy its bounds")
	}
}

func TestBoxPredicates(t *testing.T) {
	b := Box2(1, 3, 0, 4) // Figure 1's query box
	if !b.ContainsPoint([]uint32{1, 0}) || !b.ContainsPoint([]uint32{3, 4}) {
		t.Errorf("corners must be contained")
	}
	if b.ContainsPoint([]uint32{0, 0}) || b.ContainsPoint([]uint32{4, 2}) {
		t.Errorf("outside points contained")
	}
	if !b.ContainsBox([]uint32{2, 1}, []uint32{3, 2}) {
		t.Errorf("inner box not contained")
	}
	if b.ContainsBox([]uint32{2, 1}, []uint32{5, 2}) {
		t.Errorf("straddling box contained")
	}
	if !b.Intersects([]uint32{3, 4}, []uint32{9, 9}) {
		t.Errorf("touching box should intersect")
	}
	if b.Intersects([]uint32{4, 5}, []uint32{9, 9}) {
		t.Errorf("disjoint box intersects")
	}
	if !b.IntersectsBox(Box2(0, 1, 0, 0)) {
		t.Errorf("IntersectsBox wrong")
	}
}

func TestBoxClassify(t *testing.T) {
	b := Box2(2, 5, 2, 5)
	if b.Classify([]uint32{3, 3}, []uint32{4, 4}) != Inside {
		t.Errorf("inner region should be Inside")
	}
	if b.Classify([]uint32{6, 6}, []uint32{7, 7}) != Outside {
		t.Errorf("outer region should be Outside")
	}
	if b.Classify([]uint32{0, 0}, []uint32{3, 3}) != Crosses {
		t.Errorf("straddling region should be Crosses")
	}
	// Single pixels never classify as Crosses.
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			p := []uint32{x, y}
			if c := b.Classify(p, p); c == Crosses {
				t.Fatalf("pixel (%d,%d) classified Crosses", x, y)
			}
		}
	}
}

func TestBoxVolume(t *testing.T) {
	b := Box2(1, 3, 0, 4)
	if b.Volume() != 15 {
		t.Errorf("Volume = %d, want 15", b.Volume())
	}
	if b.Side(0) != 3 || b.Side(1) != 5 {
		t.Errorf("Side wrong")
	}
	g := zorder.MustGrid(2, 3)
	if f := FullBox(g).VolumeFraction(g); f != 1.0 {
		t.Errorf("full box fraction = %v", f)
	}
	if f := Box2(0, 3, 0, 3).VolumeFraction(g); f != 0.25 {
		t.Errorf("quadrant fraction = %v, want 0.25", f)
	}
	// Volume of a maximal 32-bit box must not overflow.
	big := MustBox([]uint32{0, 0}, []uint32{1<<32 - 1, 1<<32 - 1})
	if big.Volume() != 0 { // 2^64 wraps; accepted sentinel for the full space
		t.Logf("full 64-bit volume wraps to %d", big.Volume())
	}
}

func TestBoxEqualString(t *testing.T) {
	a := Box2(1, 3, 0, 4)
	if !a.Equal(Box2(1, 3, 0, 4)) || a.Equal(Box2(1, 3, 0, 5)) {
		t.Errorf("Equal wrong")
	}
	if a.Equal(MustBox([]uint32{1}, []uint32{3})) {
		t.Errorf("Equal across arities")
	}
	if a.String() != "box(1..3, 0..4)" {
		t.Errorf("String = %q", a.String())
	}
}

func TestPartialMatchBox(t *testing.T) {
	g := zorder.MustGrid(3, 4)
	b := PartialMatchBox(g, []bool{true, false, true}, []uint32{7, 0, 3})
	want := MustBox([]uint32{7, 0, 3}, []uint32{7, 15, 3})
	if !b.Equal(want) {
		t.Errorf("PartialMatchBox = %v, want %v", b, want)
	}
}

// classifyConsistent checks the Object contract on every region of a
// small grid against a per-pixel membership function.
func classifyConsistent(t *testing.T, obj Object, side uint32, member func(x, y uint32) bool) {
	t.Helper()
	for xlo := uint32(0); xlo < side; xlo++ {
		for xhi := xlo; xhi < side; xhi++ {
			for ylo := uint32(0); ylo < side; ylo++ {
				for yhi := ylo; yhi < side; yhi++ {
					lo := []uint32{xlo, ylo}
					hi := []uint32{xhi, yhi}
					all, none := true, true
					for x := xlo; x <= xhi; x++ {
						for y := ylo; y <= yhi; y++ {
							if member(x, y) {
								none = false
							} else {
								all = false
							}
						}
					}
					c := obj.Classify(lo, hi)
					switch {
					case all && c == Outside:
						t.Fatalf("region [%v %v] all-black classified Outside", lo, hi)
					case none && c == Inside:
						t.Fatalf("region [%v %v] all-white classified Inside", lo, hi)
					case !all && c == Inside:
						t.Fatalf("region [%v %v] not all black but Inside", lo, hi)
					case !none && c == Outside:
						t.Fatalf("region [%v %v] has black pixels but Outside", lo, hi)
					}
					if xlo == xhi && ylo == yhi && c == Crosses {
						t.Fatalf("pixel (%d,%d) classified Crosses", xlo, ylo)
					}
				}
			}
		}
	}
}

func TestDiskClassify(t *testing.T) {
	d, err := NewDisk([]float64{8, 8}, 5)
	if err != nil {
		t.Fatal(err)
	}
	member := func(x, y uint32) bool {
		dx := float64(x) + 0.5 - 8
		dy := float64(y) + 0.5 - 8
		return dx*dx+dy*dy <= 25
	}
	classifyConsistent(t, d, 16, member)
}

// TestDiskClassifyExact: for a convex object, Crosses should only be
// reported when the region really straddles the boundary.
func TestDiskClassifyExact(t *testing.T) {
	d, _ := NewDisk([]float64{8, 8}, 5)
	member := func(x, y uint32) bool {
		dx := float64(x) + 0.5 - 8
		dy := float64(y) + 0.5 - 8
		return dx*dx+dy*dy <= 25
	}
	for xlo := uint32(0); xlo < 16; xlo += 2 {
		for ylo := uint32(0); ylo < 16; ylo += 2 {
			lo := []uint32{xlo, ylo}
			hi := []uint32{xlo + 1, ylo + 1}
			c := d.Classify(lo, hi)
			blacks := 0
			for x := xlo; x <= xlo+1; x++ {
				for y := ylo; y <= ylo+1; y++ {
					if member(x, y) {
						blacks++
					}
				}
			}
			if c == Crosses && (blacks == 0 || blacks == 4) {
				t.Errorf("disk Crosses on uniform region [%v %v] (%d black)", lo, hi, blacks)
			}
		}
	}
}

func TestDiskValidation(t *testing.T) {
	if _, err := NewDisk(nil, 1); err == nil {
		t.Errorf("empty center accepted")
	}
	if _, err := NewDisk([]float64{0}, -1); err == nil {
		t.Errorf("negative radius accepted")
	}
	d, _ := NewDisk([]float64{1, 2, 3}, 1)
	if d.Dims() != 3 {
		t.Errorf("Dims wrong")
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	// A right triangle (0,0) (8,0) (0,8).
	p := MustPolygon(Vertex{0, 0}, Vertex{8, 0}, Vertex{0, 8})
	cases := []struct {
		x, y float64
		want bool
	}{
		{1, 1, true},
		{3.9, 3.9, true},
		{4.1, 4.1, false},
		{4, 4, true}, // on the hypotenuse
		{0, 0, true}, // vertex
		{8.5, 0, false},
		{-1, 1, false},
		{2, 0, true}, // on an edge
	}
	for _, c := range cases {
		if got := p.ContainsPoint(c.x, c.y); got != c.want {
			t.Errorf("ContainsPoint(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestPolygonClassify(t *testing.T) {
	p := MustPolygon(Vertex{0, 0}, Vertex{16, 0}, Vertex{0, 16})
	member := func(x, y uint32) bool {
		return p.ContainsPoint(float64(x)+0.5, float64(y)+0.5)
	}
	classifyConsistent(t, p, 8, member)
}

func TestConcavePolygonClassify(t *testing.T) {
	// An L shape.
	p := MustPolygon(
		Vertex{0, 0}, Vertex{12, 0}, Vertex{12, 4},
		Vertex{4, 4}, Vertex{4, 12}, Vertex{0, 12},
	)
	member := func(x, y uint32) bool {
		return p.ContainsPoint(float64(x)+0.5, float64(y)+0.5)
	}
	classifyConsistent(t, p, 8, member)
	if p.Dims() != 2 {
		t.Errorf("Dims wrong")
	}
}

func TestPolygonValidation(t *testing.T) {
	if _, err := NewPolygon([]Vertex{{0, 0}, {1, 1}}); err == nil {
		t.Errorf("2-vertex polygon accepted")
	}
}

func TestPolygonBoundingBox(t *testing.T) {
	p := MustPolygon(Vertex{2.5, 3.5}, Vertex{10.9, 3.5}, Vertex{2.5, 7.2})
	b := p.BoundingBox(16)
	if !b.Equal(Box2(2, 10, 3, 7)) {
		t.Errorf("BoundingBox = %v", b)
	}
	// Clamping.
	q := MustPolygon(Vertex{-5, -5}, Vertex{100, -5}, Vertex{-5, 100})
	if !q.BoundingBox(16).Equal(Box2(0, 15, 0, 15)) {
		t.Errorf("clamped BoundingBox = %v", q.BoundingBox(16))
	}
}

func TestRasterClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bits := make([]bool, 8*8)
	for i := range bits {
		bits[i] = rng.Intn(3) == 0
	}
	r := NewRaster(8, 8, func(x, y int) bool { return bits[y*8+x] })
	member := func(x, y uint32) bool { return bits[y*8+x] }
	classifyConsistent(t, r, 8, member)
}

func TestRasterBeyondBounds(t *testing.T) {
	// A raster smaller than the grid treats out-of-bitmap pixels as white.
	r := NewRaster(4, 4, func(x, y int) bool { return true })
	if r.Classify([]uint32{0, 0}, []uint32{3, 3}) != Inside {
		t.Errorf("bitmap interior should be Inside")
	}
	if r.Classify([]uint32{4, 4}, []uint32{7, 7}) != Outside {
		t.Errorf("beyond bitmap should be Outside")
	}
	if r.Classify([]uint32{0, 0}, []uint32{7, 7}) != Crosses {
		t.Errorf("straddling bitmap edge should be Crosses")
	}
	if !r.Black(3, 3) || r.Black(4, 3) {
		t.Errorf("Black wrong")
	}
}

func TestRasterCount(t *testing.T) {
	r := NewRaster(4, 4, func(x, y int) bool { return x == y })
	if r.Count(0, 0, 3, 3) != 4 {
		t.Errorf("diagonal count = %d, want 4", r.Count(0, 0, 3, 3))
	}
	if r.Count(1, 0, 3, 1) != 1 {
		t.Errorf("sub count = %d, want 1", r.Count(1, 0, 3, 1))
	}
	if r.Count(5, 5, 9, 9) != 0 {
		t.Errorf("out-of-bounds count should be 0")
	}
}

func TestClassString(t *testing.T) {
	if Inside.String() != "inside" || Outside.String() != "outside" || Crosses.String() != "crosses" {
		t.Errorf("Class strings wrong")
	}
	if Class(42).String() == "" {
		t.Errorf("unknown class should still render")
	}
}

func TestPolygonCoverageClassify(t *testing.T) {
	p := MustPolygon(Vertex{X: 1.2, Y: 1.2}, Vertex{X: 6.7, Y: 1.6}, Vertex{X: 3.1, Y: 6.9})
	pc := PolygonCoverage{P: p}
	if pc.Dims() != 2 {
		t.Errorf("Dims wrong")
	}
	member := func(x, y uint32) bool { return pc.coveredPixel(x, y) }
	classifyConsistent(t, pc, 8, member)
	// Coverage is a superset of center sampling.
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			if p.ContainsPoint(float64(x)+0.5, float64(y)+0.5) && !pc.coveredPixel(x, y) {
				t.Fatalf("coverage misses center-sampled pixel (%d,%d)", x, y)
			}
		}
	}
}

func TestPolygonCoverageSliver(t *testing.T) {
	// A sliver passing through pixel corners without covering any
	// center must still be covered.
	p := MustPolygon(Vertex{X: 0.9, Y: 0.9}, Vertex{X: 1.1, Y: 0.9}, Vertex{X: 1.1, Y: 1.1}, Vertex{X: 0.9, Y: 1.1})
	pc := PolygonCoverage{P: p}
	if !pc.coveredPixel(0, 0) || !pc.coveredPixel(1, 1) || !pc.coveredPixel(0, 1) || !pc.coveredPixel(1, 0) {
		t.Errorf("sliver not covered by its corner pixels")
	}
	if pc.coveredPixel(3, 3) {
		t.Errorf("distant pixel covered")
	}
}

func TestPolylineClassify(t *testing.T) {
	p, err := NewPolyline([]Vertex{{X: 0.5, Y: 0.5}, {X: 6.5, Y: 3.5}, {X: 6.5, Y: 7.5}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dims() != 2 {
		t.Errorf("Dims wrong")
	}
	member := func(x, y uint32) bool {
		return p.intersectsRect(float64(x), float64(y), float64(x)+1, float64(y)+1)
	}
	classifyConsistent(t, p, 8, member)
	// The endpoints' pixels are covered.
	if p.Classify([]uint32{0, 0}, []uint32{0, 0}) != Inside {
		t.Errorf("start pixel not covered")
	}
	if p.Classify([]uint32{6, 7}, []uint32{6, 7}) != Inside {
		t.Errorf("end pixel not covered")
	}
	if p.Classify([]uint32{0, 7}, []uint32{0, 7}) != Outside {
		t.Errorf("far pixel covered")
	}
}

func TestPolylineValidation(t *testing.T) {
	if _, err := NewPolyline([]Vertex{{X: 1, Y: 1}}); err == nil {
		t.Errorf("single-vertex polyline accepted")
	}
}

func TestPolylineDecomposable(t *testing.T) {
	// A polyline's decomposition is thin: element count tracks its
	// length, not any area.
	p, _ := NewPolyline([]Vertex{{X: 1, Y: 1}, {X: 30, Y: 20}, {X: 5, Y: 28}})
	member := func(x, y uint32) bool {
		return p.intersectsRect(float64(x), float64(y), float64(x)+1, float64(y)+1)
	}
	count := 0
	for x := uint32(0); x < 32; x++ {
		for y := uint32(0); y < 32; y++ {
			if member(x, y) {
				count++
			}
		}
	}
	if count == 0 || count > 150 {
		t.Errorf("polyline covers %d pixels of 1024; expected a thin band", count)
	}
}

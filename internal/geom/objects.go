package geom

import "fmt"

// This file implements the non-box spatial objects used by the
// examples and the Section 6 algorithms. Pixel semantics: a pixel
// (x1,...,xk) belongs to an object when its center point
// (x1+0.5, ..., xk+0.5) lies inside or on the boundary of the object,
// matching the paper's "pixels [that] lie inside or on the boundary".
//
// Classify may answer Crosses conservatively on multi-pixel regions
// (the decomposition then simply splits further), but it is exact on
// single pixels, so decompositions are exact.

// Disk is a k-dimensional ball given by a center and radius in
// continuous grid coordinates.
type Disk struct {
	Center []float64
	Radius float64
}

// NewDisk constructs a Disk.
func NewDisk(center []float64, radius float64) (Disk, error) {
	if len(center) == 0 {
		return Disk{}, fmt.Errorf("geom: disk needs at least one dimension")
	}
	if radius < 0 {
		return Disk{}, fmt.Errorf("geom: negative disk radius %v", radius)
	}
	return Disk{Center: append([]float64(nil), center...), Radius: radius}, nil
}

// Dims implements Object.
func (d Disk) Dims() int { return len(d.Center) }

// Classify implements Object. The pixel centers of region [lo, hi]
// fill the closed rectangle [lo+0.5, hi+0.5]; because the ball is
// convex, the farthest center from d.Center is at a rectangle corner
// and the nearest is the rectangle's closest point, so the
// classification is exact at every level.
func (d Disk) Classify(lo, hi []uint32) Class {
	r2 := d.Radius * d.Radius
	var near2, far2 float64
	for i := range d.Center {
		cLo := float64(lo[i]) + 0.5
		cHi := float64(hi[i]) + 0.5
		// Nearest coordinate of the center rectangle to d.Center[i].
		n := d.Center[i]
		if n < cLo {
			n = cLo
		} else if n > cHi {
			n = cHi
		}
		dn := n - d.Center[i]
		near2 += dn * dn
		// Farthest corner coordinate.
		fLo := d.Center[i] - cLo
		if fLo < 0 {
			fLo = -fLo
		}
		fHi := cHi - d.Center[i]
		if fHi < 0 {
			fHi = -fHi
		}
		f := fLo
		if fHi > f {
			f = fHi
		}
		far2 += f * f
	}
	switch {
	case far2 <= r2:
		return Inside
	case near2 > r2:
		return Outside
	default:
		return Crosses
	}
}

// Vertex is a 2-d point in continuous grid coordinates.
type Vertex struct {
	X, Y float64
}

// Polygon is a simple (non-self-intersecting) 2-d polygon given by its
// vertices in order (either winding). Points on an edge count as
// inside.
type Polygon struct {
	V []Vertex
}

// NewPolygon validates and constructs a polygon.
func NewPolygon(v []Vertex) (Polygon, error) {
	if len(v) < 3 {
		return Polygon{}, fmt.Errorf("geom: polygon needs >= 3 vertices, got %d", len(v))
	}
	return Polygon{V: append([]Vertex(nil), v...)}, nil
}

// MustPolygon is NewPolygon panicking on error.
func MustPolygon(v ...Vertex) Polygon {
	p, err := NewPolygon(v)
	if err != nil {
		panic(err)
	}
	return p
}

// Dims implements Object.
func (p Polygon) Dims() int { return 2 }

// ContainsPoint reports whether (x, y) is inside or on the boundary of
// the polygon (even-odd rule with an on-edge check).
func (p Polygon) ContainsPoint(x, y float64) bool {
	n := len(p.V)
	inside := false
	for i := 0; i < n; i++ {
		a, b := p.V[i], p.V[(i+1)%n]
		if onSegment(a, b, x, y) {
			return true
		}
		// Ray casting toward +x.
		if (a.Y > y) != (b.Y > y) {
			xi := a.X + (y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if x < xi {
				inside = !inside
			}
		}
	}
	return inside
}

// onSegment reports whether (x,y) lies on segment ab (with a small
// tolerance for the collinearity test).
func onSegment(a, b Vertex, x, y float64) bool {
	cross := (b.X-a.X)*(y-a.Y) - (b.Y-a.Y)*(x-a.X)
	if cross > 1e-9 || cross < -1e-9 {
		return false
	}
	if x < min2(a.X, b.X)-1e-9 || x > max2(a.X, b.X)+1e-9 {
		return false
	}
	if y < min2(a.Y, b.Y)-1e-9 || y > max2(a.Y, b.Y)+1e-9 {
		return false
	}
	return true
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// segmentIntersectsRect reports whether segment ab intersects the
// closed rectangle [x0,x1] x [y0,y1], by Liang-Barsky clipping.
func segmentIntersectsRect(a, b Vertex, x0, y0, x1, y1 float64) bool {
	t0, t1 := 0.0, 1.0
	dx, dy := b.X-a.X, b.Y-a.Y
	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0
		}
		r := q / p
		if p < 0 {
			if r > t1 {
				return false
			}
			if r > t0 {
				t0 = r
			}
		} else {
			if r < t0 {
				return false
			}
			if r < t1 {
				t1 = r
			}
		}
		return true
	}
	return clip(-dx, a.X-x0) && clip(dx, x1-a.X) &&
		clip(-dy, a.Y-y0) && clip(dy, y1-a.Y) && t0 <= t1
}

// Classify implements Object. On multi-pixel regions it tests whether
// any polygon edge enters the rectangle of pixel centers; if none
// does, the whole rectangle is on one side of the boundary and a
// single center query decides which. Single-pixel regions use the
// exact point test.
func (p Polygon) Classify(lo, hi []uint32) Class {
	cx := float64(lo[0]) + 0.5
	cy := float64(lo[1]) + 0.5
	if lo[0] == hi[0] && lo[1] == hi[1] {
		if p.ContainsPoint(cx, cy) {
			return Inside
		}
		return Outside
	}
	x0, y0 := cx, cy
	x1 := float64(hi[0]) + 0.5
	y1 := float64(hi[1]) + 0.5
	n := len(p.V)
	for i := 0; i < n; i++ {
		if segmentIntersectsRect(p.V[i], p.V[(i+1)%n], x0, y0, x1, y1) {
			return Crosses
		}
	}
	if p.ContainsPoint(cx, cy) {
		return Inside
	}
	return Outside
}

// BoundingBox returns the inclusive pixel box covering the polygon,
// clamped to [0, side-1].
func (p Polygon) BoundingBox(side uint32) Box {
	minX, minY := p.V[0].X, p.V[0].Y
	maxX, maxY := minX, minY
	for _, v := range p.V[1:] {
		minX, maxX = min2(minX, v.X), max2(maxX, v.X)
		minY, maxY = min2(minY, v.Y), max2(maxY, v.Y)
	}
	clampF := func(f float64) uint32 {
		if f < 0 {
			return 0
		}
		if f > float64(side-1) {
			return side - 1
		}
		return uint32(f)
	}
	return Box2(clampF(minX), clampF(maxX), clampF(minY), clampF(maxY))
}

// PolygonCoverage wraps a polygon with coverage semantics: a pixel
// belongs to the object when the polygon intersects the pixel's
// closed unit square [x, x+1] x [y, y+1], not merely when it covers
// the center. This is the conservative decomposition needed by
// broad-phase interference detection (Section 6): the approximation
// is a superset of the exact shape, so overlap tests have no false
// negatives.
type PolygonCoverage struct {
	P Polygon
}

// Dims implements Object.
func (pc PolygonCoverage) Dims() int { return 2 }

// coveredPixel reports whether the polygon touches the closed unit
// square of pixel (x, y).
func (pc PolygonCoverage) coveredPixel(x, y uint32) bool {
	x0, y0 := float64(x), float64(y)
	x1, y1 := x0+1, y0+1
	n := len(pc.P.V)
	for i := 0; i < n; i++ {
		if segmentIntersectsRect(pc.P.V[i], pc.P.V[(i+1)%n], x0, y0, x1, y1) {
			return true
		}
	}
	// No edge enters the square: it is entirely inside or outside.
	return pc.P.ContainsPoint(x0+0.5, y0+0.5)
}

// Classify implements Object.
func (pc PolygonCoverage) Classify(lo, hi []uint32) Class {
	if lo[0] == hi[0] && lo[1] == hi[1] {
		if pc.coveredPixel(lo[0], lo[1]) {
			return Inside
		}
		return Outside
	}
	// The region's pixels fill the closed rectangle [lo, hi+1].
	x0, y0 := float64(lo[0]), float64(lo[1])
	x1, y1 := float64(hi[0])+1, float64(hi[1])+1
	n := len(pc.P.V)
	for i := 0; i < n; i++ {
		if segmentIntersectsRect(pc.P.V[i], pc.P.V[(i+1)%n], x0, y0, x1, y1) {
			return Crosses
		}
	}
	if pc.P.ContainsPoint((x0+x1)/2, (y0+y1)/2) {
		return Inside
	}
	return Outside
}

// Raster is a 2-d object given by an explicit bitmap, as for LANDSAT
// data where "the grid representation is considered to be precise"
// (Section 2). Classification uses a summed-area table, so it is exact
// at every level.
type Raster struct {
	w, h int
	sum  []uint64 // (w+1)*(h+1) prefix sums of black pixels
}

// NewRaster builds a raster from a row-major bitmap: black[y*w+x]
// marks pixel (x, y).
func NewRaster(w, h int, black func(x, y int) bool) *Raster {
	r := &Raster{w: w, h: h, sum: make([]uint64, (w+1)*(h+1))}
	stride := w + 1
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := uint64(0)
			if black(x, y) {
				v = 1
			}
			r.sum[(y+1)*stride+x+1] = v +
				r.sum[y*stride+x+1] + r.sum[(y+1)*stride+x] - r.sum[y*stride+x]
		}
	}
	return r
}

// Dims implements Object.
func (r *Raster) Dims() int { return 2 }

// Count returns the number of black pixels in the inclusive rectangle.
func (r *Raster) Count(xlo, ylo, xhi, yhi uint32) uint64 {
	if int(xlo) >= r.w || int(ylo) >= r.h {
		return 0
	}
	if int(xhi) >= r.w {
		xhi = uint32(r.w - 1)
	}
	if int(yhi) >= r.h {
		yhi = uint32(r.h - 1)
	}
	stride := r.w + 1
	a := r.sum[int(yhi+1)*stride+int(xhi+1)]
	b := r.sum[int(ylo)*stride+int(xhi+1)]
	c := r.sum[int(yhi+1)*stride+int(xlo)]
	d := r.sum[int(ylo)*stride+int(xlo)]
	return a - b - c + d
}

// Black reports whether pixel (x, y) is black.
func (r *Raster) Black(x, y uint32) bool { return r.Count(x, y, x, y) == 1 }

// Classify implements Object.
func (r *Raster) Classify(lo, hi []uint32) Class {
	n := r.Count(lo[0], lo[1], hi[0], hi[1])
	if n == 0 {
		return Outside
	}
	area := (uint64(hi[0]) - uint64(lo[0]) + 1) * (uint64(hi[1]) - uint64(lo[1]) + 1)
	// Pixels beyond the bitmap bounds are white.
	if uint64(hi[0]) >= uint64(r.w) || uint64(hi[1]) >= uint64(r.h) {
		return Crosses
	}
	if n == area {
		return Inside
	}
	return Crosses
}

// Polyline is a 2-d path of connected segments with coverage
// semantics: a pixel belongs to the object when any segment passes
// through the pixel's closed unit square. It models linear map
// features (roads, rivers, tracks) in cartographic layers.
type Polyline struct {
	V []Vertex
}

// NewPolyline validates and constructs a polyline.
func NewPolyline(v []Vertex) (Polyline, error) {
	if len(v) < 2 {
		return Polyline{}, fmt.Errorf("geom: polyline needs >= 2 vertices, got %d", len(v))
	}
	return Polyline{V: append([]Vertex(nil), v...)}, nil
}

// Dims implements Object.
func (p Polyline) Dims() int { return 2 }

// intersectsRect reports whether any segment touches the closed
// rectangle.
func (p Polyline) intersectsRect(x0, y0, x1, y1 float64) bool {
	for i := 0; i+1 < len(p.V); i++ {
		if segmentIntersectsRect(p.V[i], p.V[i+1], x0, y0, x1, y1) {
			return true
		}
	}
	return false
}

// Classify implements Object. A polyline has no interior, so
// multi-pixel regions touched by a segment are always Crosses.
func (p Polyline) Classify(lo, hi []uint32) Class {
	x0, y0 := float64(lo[0]), float64(lo[1])
	x1, y1 := float64(hi[0])+1, float64(hi[1])+1
	if !p.intersectsRect(x0, y0, x1, y1) {
		return Outside
	}
	if lo[0] == hi[0] && lo[1] == hi[1] {
		return Inside
	}
	return Crosses
}

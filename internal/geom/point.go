package geom

import "fmt"

// Point is an identified grid point: a tuple of the range-query
// problem viewed as a pixel in the k-dimensional grid (Section 2).
type Point struct {
	ID     uint64
	Coords []uint32
}

// Pt2 builds a 2-d point.
func Pt2(id uint64, x, y uint32) Point {
	return Point{ID: id, Coords: []uint32{x, y}}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("p%d%v", p.ID, p.Coords) }

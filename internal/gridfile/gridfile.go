// Package gridfile implements the grid file of Nievergelt,
// Hinterberger and Sevcik [NIEV84], one of the grid-partitioning
// multidimensional structures the paper surveys in Section 2
// ("Grid methods construct a grid out of (k-1)-dimensional
// partitions"). It serves as a second baseline next to the kd tree:
// its bucket accesses are directly comparable to the zkd B+-tree's
// data-page accesses.
//
// The implementation follows the classic design: per-dimension linear
// scales partition the space into a grid of cells; a directory maps
// every cell to a bucket; several cells may share a bucket, but each
// bucket's cell region is always a box (the convexity invariant).
// Splitting a full bucket either divides its cell region (when it
// spans more than one cell) or refines a linear scale (doubling the
// directory along that dimension).
package gridfile

import (
	"fmt"
	"sort"

	"probe/internal/geom"
	"probe/internal/zorder"
)

// File is a grid file over a grid's coordinate space.
type File struct {
	g        zorder.Grid
	capacity int
	// scales[d] holds the split points of dimension d, ascending:
	// cell i of dimension d covers [scales[d][i-1], scales[d][i]),
	// with implicit bounds 0 and 2^bits.
	scales [][]uint32
	// dir maps cell coordinates (row-major, dimension 0 fastest) to
	// bucket indexes.
	dir     []int
	buckets []*bucket
	size    int
	// stats
	bucketAccesses uint64
}

type bucket struct {
	points []geom.Point
	// region: inclusive cell-index bounds per dimension.
	cellLo, cellHi []int
}

// New creates an empty grid file with the given bucket capacity.
func New(g zorder.Grid, capacity int) (*File, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("gridfile: capacity %d < 1", capacity)
	}
	f := &File{
		g:        g,
		capacity: capacity,
		scales:   make([][]uint32, g.Dims()),
	}
	b := &bucket{
		cellLo: make([]int, g.Dims()),
		cellHi: make([]int, g.Dims()),
	}
	f.buckets = []*bucket{b}
	f.dir = []int{0}
	return f, nil
}

// Len returns the number of stored points.
func (f *File) Len() int { return f.size }

// Buckets returns the number of buckets (data pages).
func (f *File) Buckets() int { return len(f.buckets) }

// DirectorySize returns the number of directory cells.
func (f *File) DirectorySize() int { return len(f.dir) }

// ResetStats zeroes the bucket-access counter.
func (f *File) ResetStats() { f.bucketAccesses = 0 }

// BucketAccesses returns the buckets touched since the last reset.
func (f *File) BucketAccesses() uint64 { return f.bucketAccesses }

// cells returns the directory extent of dimension d.
func (f *File) cells(d int) int { return len(f.scales[d]) + 1 }

// cellOf returns the cell index of coordinate c in dimension d.
func (f *File) cellOf(d int, c uint32) int {
	return sort.Search(len(f.scales[d]), func(i int) bool { return f.scales[d][i] > c })
}

// dirIndex flattens cell coordinates.
func (f *File) dirIndex(cell []int) int {
	idx := 0
	stride := 1
	for d := 0; d < f.g.Dims(); d++ {
		idx += cell[d] * stride
		stride *= f.cells(d)
	}
	return idx
}

// Insert adds a point, splitting buckets and refining scales as
// needed.
func (f *File) Insert(p geom.Point) error {
	if !f.g.Valid(p.Coords) {
		return fmt.Errorf("gridfile: point %v outside %v", p, f.g)
	}
	for {
		cell := make([]int, f.g.Dims())
		for d := range cell {
			cell[d] = f.cellOf(d, p.Coords[d])
		}
		bi := f.dir[f.dirIndex(cell)]
		b := f.buckets[bi]
		if len(b.points) < f.capacity {
			b.points = append(b.points, p)
			f.size++
			return nil
		}
		if err := f.split(bi); err != nil {
			return err
		}
	}
}

// split divides bucket bi. If its region spans more than one cell in
// some dimension, the region is halved and a new bucket takes one
// half. Otherwise a linear scale is refined first.
func (f *File) split(bi int) error {
	b := f.buckets[bi]
	// Find a dimension where the region spans >= 2 cells, preferring
	// the widest span so regions stay squarish.
	dim := -1
	span := 1
	for d := 0; d < f.g.Dims(); d++ {
		s := b.cellHi[d] - b.cellLo[d] + 1
		if s > span {
			dim, span = d, s
		}
	}
	if dim < 0 {
		// Single cell: refine a scale through this bucket's cell,
		// choosing the dimension with the widest coordinate interval.
		d, mid, ok := f.chooseRefinement(b)
		if !ok {
			return fmt.Errorf("gridfile: bucket overflow beyond resolution (%d identical points?)", len(b.points))
		}
		f.refineScale(d, mid)
		// After refinement the bucket spans 2 cells in d; fall through.
		dim = d
	}
	// Halve the region along dim.
	lo, hi := b.cellLo[dim], b.cellHi[dim]
	mid := (lo + hi) / 2 // left keeps [lo, mid], right takes [mid+1, hi]
	right := &bucket{
		cellLo: append([]int(nil), b.cellLo...),
		cellHi: append([]int(nil), b.cellHi...),
	}
	right.cellLo[dim] = mid + 1
	b.cellHi[dim] = mid
	ri := len(f.buckets)
	f.buckets = append(f.buckets, right)
	// Repoint directory cells in the right half.
	f.forEachCell(right.cellLo, right.cellHi, func(idx int) {
		f.dir[idx] = ri
	})
	// Redistribute points.
	var keep []geom.Point
	boundary := f.cellUpper(dim, mid) // first coordinate of cell mid+1
	for _, p := range b.points {
		if p.Coords[dim] >= boundary {
			right.points = append(right.points, p)
		} else {
			keep = append(keep, p)
		}
	}
	b.points = keep
	return nil
}

// cellUpper returns the exclusive upper coordinate bound of cell i in
// dimension d (i.e. the first coordinate of cell i+1).
func (f *File) cellUpper(d, i int) uint32 {
	if i >= len(f.scales[d]) {
		return uint32(f.g.Side() - 1) // unreachable as a lower bound
	}
	return f.scales[d][i]
}

// chooseRefinement picks the dimension and midpoint to refine for a
// single-cell bucket. It returns ok == false when every dimension's
// interval has shrunk to one coordinate.
func (f *File) chooseRefinement(b *bucket) (int, uint32, bool) {
	bestDim, bestWidth := -1, uint64(1)
	var bestMid uint32
	for d := 0; d < f.g.Dims(); d++ {
		cell := b.cellLo[d]
		var lo, hi uint64 // [lo, hi) coordinate interval of the cell
		if cell > 0 {
			lo = uint64(f.scales[d][cell-1])
		}
		hi = f.g.Side()
		if cell < len(f.scales[d]) {
			hi = uint64(f.scales[d][cell])
		}
		width := hi - lo
		if width > bestWidth {
			bestDim, bestWidth = d, width
			bestMid = uint32(lo + width/2)
		}
	}
	if bestDim < 0 {
		return 0, 0, false
	}
	return bestDim, bestMid, true
}

// refineScale inserts a split point into dimension d's scale and
// rebuilds the directory with the dimension's cell count increased by
// one. Buckets' cell regions are remapped.
func (f *File) refineScale(d int, split uint32) {
	pos := sort.Search(len(f.scales[d]), func(i int) bool { return f.scales[d][i] >= split })
	oldCells := make([]int, f.g.Dims())
	for dd := range oldCells {
		oldCells[dd] = f.cells(dd)
	}
	f.scales[d] = append(f.scales[d], 0)
	copy(f.scales[d][pos+1:], f.scales[d][pos:])
	f.scales[d][pos] = split

	// Remap bucket regions: cells at index >= pos in dimension d
	// shift up by one; the cell that was split now spans [pos, pos+1].
	for _, b := range f.buckets {
		if b.cellLo[d] > pos {
			b.cellLo[d]++
		}
		if b.cellHi[d] >= pos {
			b.cellHi[d]++
		}
	}
	// Rebuild the directory at the new shape.
	newDir := make([]int, len(f.dir)/oldCells[d]*(oldCells[d]+1))
	cell := make([]int, f.g.Dims())
	var fill func(dd int)
	fill = func(dd int) {
		if dd == f.g.Dims() {
			// Locate the bucket covering this cell via the old
			// coordinates: dimension d index pos+1 maps back to pos.
			for _, bi := range f.dirOrder() {
				b := f.buckets[bi]
				inside := true
				for e := 0; e < f.g.Dims(); e++ {
					if cell[e] < b.cellLo[e] || cell[e] > b.cellHi[e] {
						inside = false
						break
					}
				}
				if inside {
					newDir[f.dirIndexWith(cell)] = bi
					return
				}
			}
			panic("gridfile: directory cell has no bucket")
		}
		for c := 0; c < f.cells(dd); c++ {
			cell[dd] = c
			fill(dd + 1)
		}
	}
	fill(0)
	f.dir = newDir
}

// dirOrder returns bucket indexes (identity order).
func (f *File) dirOrder() []int {
	order := make([]int, len(f.buckets))
	for i := range order {
		order[i] = i
	}
	return order
}

// dirIndexWith flattens cell coordinates with the current shape.
func (f *File) dirIndexWith(cell []int) int { return f.dirIndex(cell) }

// forEachCell visits the directory indexes of a cell box.
func (f *File) forEachCell(lo, hi []int, fn func(idx int)) {
	cell := append([]int(nil), lo...)
	var walk func(d int)
	walk = func(d int) {
		if d == f.g.Dims() {
			fn(f.dirIndex(cell))
			return
		}
		for c := lo[d]; c <= hi[d]; c++ {
			cell[d] = c
			walk(d + 1)
		}
	}
	walk(0)
}

// RangeSearch returns all points inside the box and the number of
// distinct buckets accessed.
func (f *File) RangeSearch(box geom.Box) ([]geom.Point, int) {
	lo := make([]int, f.g.Dims())
	hi := make([]int, f.g.Dims())
	for d := 0; d < f.g.Dims(); d++ {
		lo[d] = f.cellOf(d, box.Lo[d])
		hi[d] = f.cellOf(d, box.Hi[d])
	}
	seen := make(map[int]bool)
	var out []geom.Point
	f.forEachCell(lo, hi, func(idx int) {
		bi := f.dir[idx]
		if seen[bi] {
			return
		}
		seen[bi] = true
		f.bucketAccesses++
		for _, p := range f.buckets[bi].points {
			if box.ContainsPoint(p.Coords) {
				out = append(out, p)
			}
		}
	})
	return out, len(seen)
}

// CheckInvariants verifies the grid file's structure: every directory
// cell points to a bucket whose region covers it, bucket regions are
// boxes partitioning the directory, every point lies inside its
// bucket's coordinate region, and no bucket exceeds capacity.
func (f *File) CheckInvariants() error {
	counted := 0
	cellCount := make([]int, len(f.buckets))
	cell := make([]int, f.g.Dims())
	var walk func(d int) error
	walk = func(d int) error {
		if d == f.g.Dims() {
			bi := f.dir[f.dirIndex(cell)]
			if bi < 0 || bi >= len(f.buckets) {
				return fmt.Errorf("cell %v points to bad bucket %d", cell, bi)
			}
			b := f.buckets[bi]
			for e := 0; e < f.g.Dims(); e++ {
				if cell[e] < b.cellLo[e] || cell[e] > b.cellHi[e] {
					return fmt.Errorf("cell %v outside its bucket's region", cell)
				}
			}
			cellCount[bi]++
			return nil
		}
		for c := 0; c < f.cells(d); c++ {
			cell[d] = c
			if err := walk(d + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return err
	}
	for bi, b := range f.buckets {
		if len(b.points) > f.capacity {
			return fmt.Errorf("bucket %d overfull: %d > %d", bi, len(b.points), f.capacity)
		}
		// Region cell count must match the directory cells mapped to it.
		region := 1
		for d := 0; d < f.g.Dims(); d++ {
			if b.cellLo[d] > b.cellHi[d] || b.cellHi[d] >= f.cells(d) {
				return fmt.Errorf("bucket %d has bad region", bi)
			}
			region *= b.cellHi[d] - b.cellLo[d] + 1
		}
		if region != cellCount[bi] {
			return fmt.Errorf("bucket %d region covers %d cells but directory maps %d", bi, region, cellCount[bi])
		}
		// Points must lie within the bucket's coordinate region.
		for _, p := range b.points {
			for d := 0; d < f.g.Dims(); d++ {
				c := f.cellOf(d, p.Coords[d])
				if c < b.cellLo[d] || c > b.cellHi[d] {
					return fmt.Errorf("bucket %d holds point %v outside its region", bi, p)
				}
			}
		}
		counted += len(b.points)
	}
	if counted != f.size {
		return fmt.Errorf("stored %d points, counter says %d", counted, f.size)
	}
	return nil
}

package gridfile

import (
	"math/rand"
	"sort"
	"testing"

	"probe/internal/geom"
	"probe/internal/workload"
	"probe/internal/zorder"
)

func ids(pts []geom.Point) []uint64 {
	out := make([]uint64, len(pts))
	for i, p := range pts {
		out[i] = p.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewValidation(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	if _, err := New(g, 0); err == nil {
		t.Errorf("zero capacity accepted")
	}
	f, err := New(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 || f.Buckets() != 1 || f.DirectorySize() != 1 {
		t.Errorf("fresh file state wrong")
	}
	if err := f.Insert(geom.Point{ID: 1, Coords: []uint32{99, 0}}); err == nil {
		t.Errorf("out-of-grid point accepted")
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	f, _ := New(g, 3)
	pts := []geom.Point{
		geom.Pt2(1, 5, 5), geom.Pt2(2, 50, 50), geom.Pt2(3, 10, 60),
		geom.Pt2(4, 60, 10), geom.Pt2(5, 30, 30), geom.Pt2(6, 31, 29),
	}
	for _, p := range pts {
		if err := f.Insert(p); err != nil {
			t.Fatal(err)
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", p.ID, err)
		}
	}
	got, buckets := f.RangeSearch(geom.Box2(0, 35, 0, 35))
	if !equal(ids(got), []uint64{1, 5, 6}) {
		t.Fatalf("search = %v", ids(got))
	}
	if buckets < 1 || buckets > f.Buckets() {
		t.Fatalf("bucket count %d out of range", buckets)
	}
}

// TestRandomizedAgainstBruteForce inserts the paper's workloads and
// cross-checks range queries with a scan.
func TestRandomizedAgainstBruteForce(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	datasets := map[string][]geom.Point{
		"uniform":   workload.Uniform(g, 1200, 41),
		"clustered": workload.Clustered(g, 12, 100, 4, 42),
		"diagonal":  workload.Diagonal(g, 1200, 2, 43),
	}
	rng := rand.New(rand.NewSource(44))
	for name, pts := range datasets {
		f, _ := New(g, 20)
		for _, p := range pts {
			if err := f.Insert(p); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if f.Len() != len(pts) {
			t.Fatalf("%s: Len = %d", name, f.Len())
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for trial := 0; trial < 40; trial++ {
			x1, x2 := uint32(rng.Intn(256)), uint32(rng.Intn(256))
			y1, y2 := uint32(rng.Intn(256)), uint32(rng.Intn(256))
			if x1 > x2 {
				x1, x2 = x2, x1
			}
			if y1 > y2 {
				y1, y2 = y2, y1
			}
			box := geom.Box2(x1, x2, y1, y2)
			got, _ := f.RangeSearch(box)
			var want []uint64
			for _, p := range pts {
				if box.ContainsPoint(p.Coords) {
					want = append(want, p.ID)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !equal(ids(got), want) {
				t.Fatalf("%s: box %v: got %d, want %d", name, box, len(got), len(want))
			}
		}
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	f, _ := New(g, 4)
	// Up to capacity duplicates are fine.
	for i := uint64(0); i < 4; i++ {
		if err := f.Insert(geom.Pt2(i, 7, 7)); err != nil {
			t.Fatal(err)
		}
	}
	// More identical points than a bucket holds cannot be split apart.
	if err := f.Insert(geom.Pt2(99, 7, 7)); err == nil {
		t.Errorf("overflow of identical points should fail")
	}
}

func TestThreeDimensional(t *testing.T) {
	g := zorder.MustGrid(3, 5)
	f, _ := New(g, 8)
	pts := workload.Uniform(g, 500, 45)
	for _, p := range pts {
		if err := f.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	box := geom.MustBox([]uint32{4, 4, 4}, []uint32{20, 20, 20})
	got, _ := f.RangeSearch(box)
	var want []uint64
	for _, p := range pts {
		if box.ContainsPoint(p.Coords) {
			want = append(want, p.ID)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if !equal(ids(got), want) {
		t.Fatalf("3d search wrong: %d vs %d", len(got), len(want))
	}
}

func TestBucketAccessStats(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	f, _ := New(g, 20)
	for _, p := range workload.Uniform(g, 1000, 46) {
		f.Insert(p)
	}
	f.ResetStats()
	_, n := f.RangeSearch(geom.Box2(0, 50, 0, 50))
	if uint64(n) != f.BucketAccesses() {
		t.Errorf("stats %d != distinct buckets %d", f.BucketAccesses(), n)
	}
	small := f.BucketAccesses()
	f.ResetStats()
	f.RangeSearch(geom.Box2(0, 255, 0, 255))
	if f.BucketAccesses() <= small {
		t.Errorf("larger query should touch more buckets")
	}
}

// TestBucketOccupancy: grid-file splitting keeps buckets reasonably
// full on uniform data (the structure's design goal of ~69% average
// occupancy; we assert a loose lower bound).
func TestBucketOccupancy(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	f, _ := New(g, 20)
	pts := workload.Uniform(g, 5000, 47)
	for _, p := range pts {
		if err := f.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	occ := float64(f.Len()) / float64(f.Buckets()*20)
	if occ < 0.3 {
		t.Errorf("average occupancy %.2f too low (%d buckets)", occ, f.Buckets())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Package interfere implements interference detection for mechanical
// CAD (Section 6): the broad phase re-expresses the localized set
// operations of [MANT83] as a spatial join of decomposed parts, and a
// narrow phase refines the surviving candidate pairs with exact
// polygon intersection tests. The spatial join prunes the quadratic
// all-pairs work down to pairs whose approximations actually overlap.
package interfere

import (
	"fmt"

	"probe/internal/core"
	"probe/internal/decompose"
	"probe/internal/geom"
	"probe/internal/zorder"
)

// Part is a machine part: an identified polygon in the plane.
type Part struct {
	ID      uint64
	Outline geom.Polygon
}

// Pair is an unordered pair of interfering part ids, with A < B.
type Pair struct {
	A, B uint64
}

// Stats describes one interference-detection run.
type Stats struct {
	Parts      int
	AllPairs   int // the quadratic baseline's pair count
	Candidates int // pairs surviving the spatial-join broad phase
	Confirmed  int // pairs surviving exact refinement
	Elements   int // total decomposed elements
}

// Detect finds all pairs of parts whose outlines intersect. The
// decomposition resolution is capped at maxLen bits (0 = full
// resolution); a coarser cap yields a faster broad phase with more
// false candidates for the narrow phase to reject — never false
// negatives, because the capped decomposition is an outer
// approximation.
func Detect(g zorder.Grid, parts []Part, maxLen int) ([]Pair, Stats, error) {
	stats := Stats{Parts: len(parts), AllPairs: len(parts) * (len(parts) - 1) / 2}
	ids := make(map[uint64]bool, len(parts))
	var items []core.Item
	for _, p := range parts {
		if ids[p.ID] {
			return nil, stats, fmt.Errorf("interfere: duplicate part id %d", p.ID)
		}
		ids[p.ID] = true
		// Coverage semantics make the decomposition a superset of the
		// exact outline, so the broad phase never loses a pair.
		elems, err := decompose.Object(g, geom.PolygonCoverage{P: p.Outline}, decompose.Options{MaxLen: maxLen})
		if err != nil {
			return nil, stats, fmt.Errorf("interfere: part %d: %w", p.ID, err)
		}
		for _, e := range elems {
			items = append(items, core.Item{Elem: e, ID: p.ID})
		}
	}
	stats.Elements = len(items)
	core.SortItems(items)

	// Self spatial join; keep each unordered pair once.
	raw, err := core.SpatialJoin(items, items)
	if err != nil {
		return nil, stats, err
	}
	seen := make(map[Pair]bool)
	var candidates []Pair
	for _, p := range raw {
		if p.A == p.B {
			continue
		}
		pr := Pair{A: p.A, B: p.B}
		if pr.A > pr.B {
			pr.A, pr.B = pr.B, pr.A
		}
		if !seen[pr] {
			seen[pr] = true
			candidates = append(candidates, pr)
		}
	}
	stats.Candidates = len(candidates)

	// Narrow phase: exact polygon intersection.
	byID := make(map[uint64]geom.Polygon, len(parts))
	for _, p := range parts {
		byID[p.ID] = p.Outline
	}
	var confirmed []Pair
	for _, pr := range candidates {
		if PolygonsIntersect(byID[pr.A], byID[pr.B]) {
			confirmed = append(confirmed, pr)
		}
	}
	stats.Confirmed = len(confirmed)
	sortPairs(confirmed)
	return confirmed, stats, nil
}

func sortPairs(pairs []Pair) {
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && less(pairs[j], pairs[j-1]); j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
}

func less(a, b Pair) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

// PolygonsIntersect reports whether two simple polygons share any
// point (boundaries touching counts).
func PolygonsIntersect(p, q geom.Polygon) bool {
	for i := range p.V {
		a1 := p.V[i]
		a2 := p.V[(i+1)%len(p.V)]
		for j := range q.V {
			if segmentsIntersect(a1, a2, q.V[j], q.V[(j+1)%len(q.V)]) {
				return true
			}
		}
	}
	// No edge crossings: one polygon may still contain the other.
	if p.ContainsPoint(q.V[0].X, q.V[0].Y) {
		return true
	}
	if q.ContainsPoint(p.V[0].X, p.V[0].Y) {
		return true
	}
	return false
}

// segmentsIntersect reports whether closed segments ab and cd share a
// point.
func segmentsIntersect(a, b, c, d geom.Vertex) bool {
	d1 := cross(c, d, a)
	d2 := cross(c, d, b)
	d3 := cross(a, b, c)
	d4 := cross(a, b, d)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	return (d1 == 0 && onSeg(c, d, a)) ||
		(d2 == 0 && onSeg(c, d, b)) ||
		(d3 == 0 && onSeg(a, b, c)) ||
		(d4 == 0 && onSeg(a, b, d))
}

func cross(a, b, p geom.Vertex) float64 {
	return (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
}

func onSeg(a, b, p geom.Vertex) bool {
	return min(a.X, b.X) <= p.X && p.X <= max(a.X, b.X) &&
		min(a.Y, b.Y) <= p.Y && p.Y <= max(a.Y, b.Y)
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// DetectAllPairs is the quadratic baseline: exact intersection tests
// on every pair, no spatial pruning.
func DetectAllPairs(parts []Part) []Pair {
	var out []Pair
	for i := 0; i < len(parts); i++ {
		for j := i + 1; j < len(parts); j++ {
			if PolygonsIntersect(parts[i].Outline, parts[j].Outline) {
				pr := Pair{A: parts[i].ID, B: parts[j].ID}
				if pr.A > pr.B {
					pr.A, pr.B = pr.B, pr.A
				}
				out = append(out, pr)
			}
		}
	}
	sortPairs(out)
	return out
}

package interfere

import (
	"math/rand"
	"testing"

	"probe/internal/geom"
	"probe/internal/zorder"
)

func square(cx, cy, half float64) geom.Polygon {
	return geom.MustPolygon(
		geom.Vertex{X: cx - half, Y: cy - half},
		geom.Vertex{X: cx + half, Y: cy - half},
		geom.Vertex{X: cx + half, Y: cy + half},
		geom.Vertex{X: cx - half, Y: cy + half},
	)
}

func triangle(cx, cy, r float64) geom.Polygon {
	return geom.MustPolygon(
		geom.Vertex{X: cx, Y: cy + r},
		geom.Vertex{X: cx - r, Y: cy - r},
		geom.Vertex{X: cx + r, Y: cy - r},
	)
}

func TestSegmentsIntersect(t *testing.T) {
	v := func(x, y float64) geom.Vertex { return geom.Vertex{X: x, Y: y} }
	cases := []struct {
		a, b, c, d geom.Vertex
		want       bool
	}{
		{v(0, 0), v(4, 4), v(0, 4), v(4, 0), true},  // crossing
		{v(0, 0), v(1, 1), v(2, 2), v(3, 3), false}, // collinear apart
		{v(0, 0), v(2, 2), v(1, 1), v(3, 3), true},  // collinear overlap
		{v(0, 0), v(2, 0), v(2, 0), v(4, 0), true},  // touching endpoints
		{v(0, 0), v(2, 0), v(1, 1), v(1, 2), false}, // above
		{v(0, 0), v(2, 0), v(1, 0), v(1, 2), true},  // T contact
	}
	for i, c := range cases {
		if got := segmentsIntersect(c.a, c.b, c.c, c.d); got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestPolygonsIntersect(t *testing.T) {
	a := square(10, 10, 4)
	cases := []struct {
		q    geom.Polygon
		want bool
	}{
		{square(12, 12, 4), true},  // overlapping
		{square(30, 30, 4), false}, // far away
		{square(10, 10, 1), true},  // contained
		{square(18, 10, 4), true},  // edge contact at x=14
		{square(40, 10, 2), false},
		{triangle(10, 10, 20), true}, // contains a
	}
	for i, c := range cases {
		if got := PolygonsIntersect(a, c.q); got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
		if got := PolygonsIntersect(c.q, a); got != c.want {
			t.Errorf("case %d reversed: got %v, want %v", i, got, c.want)
		}
	}
}

func TestDetectSimpleScene(t *testing.T) {
	g := zorder.MustGrid(2, 7)
	parts := []Part{
		{ID: 1, Outline: square(20, 20, 8)},
		{ID: 2, Outline: square(30, 20, 8)},   // overlaps 1
		{ID: 3, Outline: square(90, 90, 8)},   // isolated
		{ID: 4, Outline: triangle(25, 25, 5)}, // overlaps 1 and 2
	}
	pairs, stats, err := Detect(g, parts, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Pair{{1, 2}, {1, 4}, {2, 4}}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v, want %v (stats %+v)", pairs, want, stats)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pairs = %v, want %v", pairs, want)
		}
	}
	if stats.Candidates < stats.Confirmed {
		t.Errorf("stats inconsistent: %+v", stats)
	}
	if stats.AllPairs != 6 {
		t.Errorf("all-pairs = %d, want 6", stats.AllPairs)
	}
}

// TestDetectMatchesAllPairsBaseline on random scenes, at full and at
// coarse resolution.
func TestDetectMatchesAllPairsBaseline(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		var parts []Part
		for i := 0; i < 25; i++ {
			cx := 20 + rng.Float64()*216
			cy := 20 + rng.Float64()*216
			r := 3 + rng.Float64()*12
			var poly geom.Polygon
			if i%2 == 0 {
				poly = square(cx, cy, r)
			} else {
				poly = triangle(cx, cy, r)
			}
			parts = append(parts, Part{ID: uint64(i + 1), Outline: poly})
		}
		want := DetectAllPairs(parts)
		for _, maxLen := range []int{0, 10} {
			got, stats, err := Detect(g, parts, maxLen)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d maxLen %d: %d pairs, want %d (stats %+v)",
					trial, maxLen, len(got), len(want), stats)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: pair %d = %v, want %v", trial, i, got[i], want[i])
				}
			}
			if stats.Candidates > stats.AllPairs {
				t.Errorf("broad phase produced more candidates than all-pairs: %+v", stats)
			}
		}
	}
}

// TestBroadPhasePrunes: on a sparse scene the spatial join should
// consider far fewer pairs than the quadratic baseline.
func TestBroadPhasePrunes(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	var parts []Part
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			parts = append(parts, Part{
				ID:      uint64(i*8 + j + 1),
				Outline: square(float64(i)*32+12, float64(j)*32+12, 5),
			})
		}
	}
	pairs, stats, err := Detect(g, parts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Fatalf("grid-arranged parts should not interfere: %v", pairs)
	}
	if stats.Candidates*4 > stats.AllPairs {
		t.Errorf("broad phase pruned poorly: %d candidates of %d pairs",
			stats.Candidates, stats.AllPairs)
	}
}

func TestCoarseDetectionNoFalseNegatives(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	parts := []Part{
		{ID: 1, Outline: square(100, 100, 10)},
		{ID: 2, Outline: square(115, 100, 10)}, // overlaps by 5 units
	}
	for maxLen := 2; maxLen <= 16; maxLen += 2 {
		pairs, _, err := Detect(g, parts, maxLen)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != 1 {
			t.Errorf("maxLen %d: coarse detection missed the overlap", maxLen)
		}
	}
}

func TestDetectDuplicateID(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	parts := []Part{
		{ID: 1, Outline: square(10, 10, 3)},
		{ID: 1, Outline: square(30, 30, 3)},
	}
	if _, _, err := Detect(g, parts, 0); err == nil {
		t.Errorf("duplicate part id accepted")
	}
}

func TestDetectEmptyScene(t *testing.T) {
	g := zorder.MustGrid(2, 6)
	pairs, stats, err := Detect(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 || stats.Parts != 0 {
		t.Errorf("empty scene: %v %+v", pairs, stats)
	}
}

package kdtree

import (
	"fmt"
	"sort"

	"probe/internal/geom"
)

// BucketTree is a paged kd tree: internal nodes split on alternating
// dimensions at the median, leaves ("buckets") hold up to Capacity
// points and model disk pages. Range queries count the leaves they
// touch; that count plays the role of the data-page accesses measured
// for the zkd B+-tree.
type BucketTree struct {
	root     *bnode
	k        int
	capacity int
	size     int
	leaves   int
}

type bnode struct {
	// Internal node fields.
	dim         int
	split       uint32 // left: coord <= split; right: coord > split
	left, right *bnode
	// Leaf field.
	points []geom.Point
	leaf   bool
}

// BuildBucket constructs a bucket kd tree with the given leaf
// capacity (use the same value as the B+-tree's leaf capacity for a
// fair page-count comparison).
func BuildBucket(points []geom.Point, capacity int) (*BucketTree, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("kdtree: no points")
	}
	if capacity < 1 {
		return nil, fmt.Errorf("kdtree: bucket capacity %d < 1", capacity)
	}
	k := len(points[0].Coords)
	for _, p := range points {
		if len(p.Coords) != k {
			return nil, fmt.Errorf("kdtree: point %d has %d dims, want %d", p.ID, len(p.Coords), k)
		}
	}
	t := &BucketTree{k: k, capacity: capacity, size: len(points)}
	pts := append([]geom.Point(nil), points...)
	t.root = t.build(pts, 0)
	return t, nil
}

func (t *BucketTree) build(pts []geom.Point, depth int) *bnode {
	if len(pts) <= t.capacity {
		t.leaves++
		return &bnode{leaf: true, points: pts}
	}
	dim := depth % t.k
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Coords[dim] != pts[j].Coords[dim] {
			return pts[i].Coords[dim] < pts[j].Coords[dim]
		}
		return pts[i].ID < pts[j].ID
	})
	mid := len(pts) / 2
	split := pts[mid-1].Coords[dim]
	// Keep equal coordinates together on the left; if every point
	// shares the split coordinate in this dimension, try the next
	// dimensions before giving up and making an oversized leaf.
	lt := sort.Search(len(pts), func(i int) bool { return pts[i].Coords[dim] > split })
	if lt == len(pts) {
		// The median value is the maximum; split below it instead.
		maxV := pts[len(pts)-1].Coords[dim]
		firstMax := sort.Search(len(pts), func(i int) bool { return pts[i].Coords[dim] >= maxV })
		if firstMax == 0 {
			// This dimension is constant; try the remaining ones.
			for delta := 1; delta < t.k; delta++ {
				if varies(pts, (depth+delta)%t.k) {
					return t.build(pts, depth+delta)
				}
			}
			// All points coincide; an oversized leaf is unavoidable.
			t.leaves++
			return &bnode{leaf: true, points: pts}
		}
		split = pts[firstMax-1].Coords[dim]
		lt = firstMax
	}
	n := &bnode{dim: dim, split: split}
	n.left = t.build(pts[:lt], depth+1)
	n.right = t.build(pts[lt:], depth+1)
	return n
}

// varies reports whether the points take more than one value in the
// given dimension.
func varies(pts []geom.Point, dim int) bool {
	for _, p := range pts[1:] {
		if p.Coords[dim] != pts[0].Coords[dim] {
			return true
		}
	}
	return false
}

// Len returns the number of points.
func (t *BucketTree) Len() int { return t.size }

// Leaves returns the number of leaf buckets (the N of the page-access
// analysis).
func (t *BucketTree) Leaves() int { return t.leaves }

// Capacity returns the leaf capacity.
func (t *BucketTree) Capacity() int { return t.capacity }

// RangeSearch returns all points inside the box and the number of
// leaf buckets (data pages) accessed.
func (t *BucketTree) RangeSearch(box geom.Box) (results []geom.Point, leafAccesses int) {
	var walk func(n *bnode)
	walk = func(n *bnode) {
		if n.leaf {
			leafAccesses++
			for _, p := range n.points {
				if box.ContainsPoint(p.Coords) {
					results = append(results, p)
				}
			}
			return
		}
		if box.Lo[n.dim] <= n.split {
			walk(n.left)
		}
		if box.Hi[n.dim] > n.split {
			walk(n.right)
		}
	}
	walk(t.root)
	return results, leafAccesses
}

// Package kdtree implements the kd tree of [BENT75], the practical
// solution the paper compares against ("performance is comparable to
// that of other practical solutions (e.g. the kd tree)", Section 2).
//
// Two variants are provided. Tree is the classic in-memory kd tree.
// BucketTree is a paged variant whose leaves hold a fixed number of
// points — its leaf accesses are directly comparable to the zkd
// B+-tree's data-page accesses, giving the apples-to-apples numbers
// for the Table S8 comparison.
package kdtree

import (
	"fmt"
	"sort"

	"probe/internal/geom"
)

// Tree is an in-memory kd tree built by median splits, so it is
// balanced.
type Tree struct {
	root *node
	k    int
	size int
}

type node struct {
	point       geom.Point
	dim         int
	left, right *node
}

// Build constructs a balanced kd tree over the points. The points
// slice is copied; all points must share the same dimensionality.
func Build(points []geom.Point) (*Tree, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("kdtree: no points")
	}
	k := len(points[0].Coords)
	for _, p := range points {
		if len(p.Coords) != k {
			return nil, fmt.Errorf("kdtree: point %d has %d dims, want %d", p.ID, len(p.Coords), k)
		}
	}
	pts := append([]geom.Point(nil), points...)
	t := &Tree{k: k, size: len(pts)}
	t.root = t.build(pts, 0)
	return t, nil
}

func (t *Tree) build(pts []geom.Point, depth int) *node {
	if len(pts) == 0 {
		return nil
	}
	dim := depth % t.k
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Coords[dim] != pts[j].Coords[dim] {
			return pts[i].Coords[dim] < pts[j].Coords[dim]
		}
		return pts[i].ID < pts[j].ID
	})
	mid := len(pts) / 2
	n := &node{point: pts[mid], dim: dim}
	n.left = t.build(pts[:mid], depth+1)
	n.right = t.build(pts[mid+1:], depth+1)
	return n
}

// Len returns the number of points.
func (t *Tree) Len() int { return t.size }

// RangeSearch returns all points inside the box, along with the
// number of tree nodes visited.
func (t *Tree) RangeSearch(box geom.Box) (results []geom.Point, visited int) {
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		visited++
		c := n.point.Coords[n.dim]
		if box.ContainsPoint(n.point.Coords) {
			results = append(results, n.point)
		}
		if box.Lo[n.dim] <= c {
			walk(n.left)
		}
		if box.Hi[n.dim] >= c {
			walk(n.right)
		}
	}
	walk(t.root)
	return results, visited
}

package kdtree

import (
	"math/rand"
	"sort"
	"testing"

	"probe/internal/geom"
	"probe/internal/workload"
	"probe/internal/zorder"
)

func bruteRange(pts []geom.Point, box geom.Box) []uint64 {
	var ids []uint64
	for _, p := range pts {
		if box.ContainsPoint(p.Coords) {
			ids = append(ids, p.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sortedIDs(pts []geom.Point) []uint64 {
	ids := make([]uint64, len(pts))
	for i, p := range pts {
		ids[i] = p.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randBoxes(g zorder.Grid, n int, seed int64) []geom.Box {
	rng := rand.New(rand.NewSource(seed))
	boxes := make([]geom.Box, n)
	for i := range boxes {
		lo := make([]uint32, g.Dims())
		hi := make([]uint32, g.Dims())
		for d := range lo {
			a := uint32(rng.Uint64() % g.Side())
			b := uint32(rng.Uint64() % g.Side())
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		boxes[i] = geom.Box{Lo: lo, Hi: hi}
	}
	return boxes
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Errorf("empty point set accepted")
	}
	bad := []geom.Point{geom.Pt2(0, 1, 2), {ID: 1, Coords: []uint32{1}}}
	if _, err := Build(bad); err == nil {
		t.Errorf("mixed dimensionality accepted")
	}
	if _, err := BuildBucket(nil, 4); err == nil {
		t.Errorf("empty bucket tree accepted")
	}
	if _, err := BuildBucket(bad, 4); err == nil {
		t.Errorf("mixed-dim bucket tree accepted")
	}
	pts := []geom.Point{geom.Pt2(0, 1, 2)}
	if _, err := BuildBucket(pts, 0); err == nil {
		t.Errorf("zero capacity accepted")
	}
}

func TestTreeRangeSearch(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	pts := workload.Uniform(g, 1000, 1)
	tree, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 1000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	for _, box := range randBoxes(g, 50, 2) {
		got, visited := tree.RangeSearch(box)
		want := bruteRange(pts, box)
		if !equalIDs(sortedIDs(got), want) {
			t.Fatalf("box %v: got %d results, want %d", box, len(got), len(want))
		}
		if visited <= 0 || visited > tree.Len() {
			t.Fatalf("visited = %d out of range", visited)
		}
	}
}

func TestTreeRangeSearch3D(t *testing.T) {
	g := zorder.MustGrid(3, 5)
	pts := workload.Uniform(g, 500, 3)
	tree, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, box := range randBoxes(g, 30, 4) {
		got, _ := tree.RangeSearch(box)
		if !equalIDs(sortedIDs(got), bruteRange(pts, box)) {
			t.Fatalf("3d range search wrong for %v", box)
		}
	}
}

func TestTreeDuplicateCoordinates(t *testing.T) {
	pts := []geom.Point{
		geom.Pt2(0, 5, 5), geom.Pt2(1, 5, 5), geom.Pt2(2, 5, 5),
		geom.Pt2(3, 2, 2), geom.Pt2(4, 7, 7),
	}
	tree, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tree.RangeSearch(geom.Box2(5, 5, 5, 5))
	if !equalIDs(sortedIDs(got), []uint64{0, 1, 2}) {
		t.Fatalf("duplicate-coordinate search = %v", sortedIDs(got))
	}
}

func TestBucketTreeRangeSearch(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	for _, gen := range []struct {
		name string
		pts  []geom.Point
	}{
		{"uniform", workload.Uniform(g, 1000, 5)},
		{"clustered", workload.Clustered(g, 20, 50, 4, 6)},
		{"diagonal", workload.Diagonal(g, 1000, 2, 7)},
	} {
		tree, err := BuildBucket(gen.pts, 20)
		if err != nil {
			t.Fatal(err)
		}
		if tree.Len() != len(gen.pts) {
			t.Fatalf("%s: Len = %d", gen.name, tree.Len())
		}
		if tree.Capacity() != 20 {
			t.Fatalf("Capacity = %d", tree.Capacity())
		}
		for _, box := range randBoxes(g, 40, 8) {
			got, leaves := tree.RangeSearch(box)
			if !equalIDs(sortedIDs(got), bruteRange(gen.pts, box)) {
				t.Fatalf("%s: wrong result for %v", gen.name, box)
			}
			if leaves < 1 || leaves > tree.Leaves() {
				t.Fatalf("%s: leaf accesses %d out of range", gen.name, leaves)
			}
		}
	}
}

func TestBucketTreeLeafCount(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	pts := workload.Uniform(g, 5000, 9)
	tree, err := BuildBucket(pts, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Median splits keep buckets at least half full except in
	// degenerate duplicate cases, so 5000/20=250 <= leaves <= 500.
	if tree.Leaves() < 250 || tree.Leaves() > 520 {
		t.Errorf("leaves = %d, outside [250,520]", tree.Leaves())
	}
}

func TestBucketTreeAllIdenticalPoints(t *testing.T) {
	pts := make([]geom.Point, 50)
	for i := range pts {
		pts[i] = geom.Pt2(uint64(i), 3, 3)
	}
	tree, err := BuildBucket(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tree.RangeSearch(geom.Box2(3, 3, 3, 3))
	if len(got) != 50 {
		t.Errorf("identical points: found %d of 50", len(got))
	}
	if got2, _ := tree.RangeSearch(geom.Box2(0, 2, 0, 2)); len(got2) != 0 {
		t.Errorf("identical points: spurious results %v", got2)
	}
}

func TestBucketTreeDegenerateDimension(t *testing.T) {
	// All x equal: splitting must fall through to y.
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Pt2(uint64(i), 7, uint32(i))
	}
	tree, err := BuildBucket(pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tree.RangeSearch(geom.Box2(0, 15, 10, 19))
	if !equalIDs(sortedIDs(got), []uint64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}) {
		t.Errorf("degenerate-dimension search wrong: %v", sortedIDs(got))
	}
	if tree.Leaves() < 100/8 {
		t.Errorf("tree did not split on y: %d leaves", tree.Leaves())
	}
}

// TestBucketLeafAccessScaling: the kd tree's page accesses grow with
// query volume, the property the paper's analysis predicts for both
// structures.
func TestBucketLeafAccessScaling(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	pts := workload.Uniform(g, 5000, 10)
	tree, _ := BuildBucket(pts, 20)
	avg := func(vol float64) float64 {
		boxes, err := workload.Queries(g, workload.QuerySpec{Volume: vol, Aspect: 1}, 20, 11)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, b := range boxes {
			_, n := tree.RangeSearch(b)
			total += n
		}
		return float64(total) / float64(len(boxes))
	}
	small, large := avg(0.01), avg(0.16)
	if large <= small {
		t.Errorf("leaf accesses should grow with volume: %.1f vs %.1f", small, large)
	}
}

// Package loadgen drives a probed server with a mixed open-loop
// workload and reports throughput and latency percentiles. It backs
// probed's -loadgen mode and the BENCH_server.json CI emitter.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"probe"
	"probe/client"
	"probe/internal/obs"
)

// Config tunes one load-generation run. Zero values select the
// defaults in brackets.
type Config struct {
	// Addr is the server to drive (required).
	Addr string
	// Conns is the number of concurrent client connections [8].
	Conns int
	// Duration is how long to drive load [5s].
	Duration time.Duration
	// Seed makes the workload reproducible [1].
	Seed int64
	// InsertEvery makes every Nth operation an INSERT of a small
	// point batch [10]; 0 disables inserts.
	InsertEvery int
	// JoinEvery makes every Nth operation a small JOIN [25]; 0
	// disables joins.
	JoinEvery int
	// NearestEvery makes every Nth operation an NNEAREST [15]; 0
	// disables them. All remaining operations are RANGE queries.
	NearestEvery int
	// QueryEvery makes every Nth operation a parsed spatial SQL QUERY
	// (protocol 1.3) alternating between a row select and an aggregate
	// over a random box [12]; 0 disables them.
	QueryEvery int
	// TxEvery makes every Nth operation a multi-statement transaction
	// (BEGIN, a small insert batch, a range over it, COMMIT) [20]; 0
	// disables transactions. A COMMIT losing first-committer-wins
	// validation counts in Report.Conflicts, not Errors.
	TxEvery int
	// BoxSide caps the side length of generated range boxes [128].
	BoxSide uint32
	// Metrics, when non-nil, receives a "loadgen.latency.<op>"
	// histogram observation (nanoseconds) for every successful
	// operation, so a run's latency distribution can be exported
	// through the same Registry machinery the server uses.
	Metrics *obs.Registry
	// Cluster marks the target as a zrouted coordinator: the router
	// scatter-gathers single requests but does not route
	// multi-statement transactions, so the tx slice of the mix is
	// disabled.
	Cluster bool
}

func (c *Config) fillDefaults() {
	if c.Conns <= 0 {
		c.Conns = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.InsertEvery == 0 {
		c.InsertEvery = 10
	}
	if c.JoinEvery == 0 {
		c.JoinEvery = 25
	}
	if c.NearestEvery == 0 {
		c.NearestEvery = 15
	}
	if c.QueryEvery == 0 {
		c.QueryEvery = 12
	}
	if c.TxEvery == 0 {
		c.TxEvery = 20
	}
	if c.Cluster {
		c.TxEvery = -1
	}
	if c.BoxSide == 0 {
		c.BoxSide = 128
	}
}

// OpStats is the latency distribution of one operation kind within a
// run.
type OpStats struct {
	Ops int           `json:"ops"`
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
}

// Report is the outcome of a run: counts, throughput, and latency
// percentiles over all successful operations, overall and broken
// down per operation kind ("range", "nearest", "join", "insert",
// "query", "tx").
type Report struct {
	Conns      int                `json:"conns"`
	Ops        int                `json:"ops"`
	Errors     int                `json:"errors"`
	Overloaded int                `json:"overloaded"`
	Conflicts  int                `json:"conflicts"`
	Elapsed    time.Duration      `json:"elapsed_ns"`
	QPS        float64            `json:"qps"`
	P50        time.Duration      `json:"p50_ns"`
	P95        time.Duration      `json:"p95_ns"`
	P99        time.Duration      `json:"p99_ns"`
	PerOp      map[string]OpStats `json:"per_op,omitempty"`
}

func (r Report) String() string {
	return fmt.Sprintf("conns=%d ops=%d errors=%d overloaded=%d conflicts=%d qps=%.0f p50=%s p95=%s p99=%s",
		r.Conns, r.Ops, r.Errors, r.Overloaded, r.Conflicts, r.QPS, r.P50, r.P95, r.P99)
}

// Run drives the server at cfg.Addr for cfg.Duration with cfg.Conns
// connections and returns the aggregate report. Overloaded responses
// count separately from errors: they are the admission control
// working as designed, and the generator backs off briefly when it
// sees one.
func Run(cfg Config) (Report, error) {
	cfg.fillDefaults()
	if cfg.Addr == "" {
		return Report{}, errors.New("loadgen: no server address")
	}

	type workerResult struct {
		perOp      map[string][]time.Duration
		errors     int
		overloaded int
		conflicts  int
		err        error // fatal setup error
	}
	results := make([]workerResult, cfg.Conns)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			res.perOp = make(map[string][]time.Duration)
			cl, err := client.Dial(cfg.Addr)
			if err != nil {
				res.err = err
				return
			}
			defer cl.Close()
			bits := cl.GridBits()
			side := make([]uint32, len(bits))
			for i, b := range bits {
				side[i] = uint32(1) << uint(b)
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			ctx := context.Background()
			idBase := uint64(1_000_000 * (w + 1))
			for op := 0; time.Now().Before(deadline); op++ {
				t0 := time.Now()
				var err error
				var kind string
				switch {
				// The tx case must precede insert: the default cadences
				// (TxEvery 20, InsertEvery 10) overlap on op%20==19, and
				// the earlier case would swallow every tx slot.
				case cfg.TxEvery > 0 && op%cfg.TxEvery == cfg.TxEvery-1:
					kind = "tx"
					err = func() error {
						tx, err := cl.Begin(ctx)
						if err != nil {
							return err
						}
						defer tx.Rollback(ctx)
						pts := make([]probe.Point, 4)
						lo := make([]uint32, len(side))
						hi := make([]uint32, len(side))
						for d := range lo {
							lo[d] = uint32(rng.Intn(int(side[d] - cfg.BoxSide)))
							hi[d] = lo[d] + cfg.BoxSide - 1
						}
						for i := range pts {
							coords := make([]uint32, len(side))
							for d := range coords {
								coords[d] = lo[d] + uint32(rng.Intn(int(cfg.BoxSide)))
							}
							idBase++
							pts[i] = probe.Point{ID: idBase, Coords: coords}
						}
						if _, err := tx.Insert(ctx, pts); err != nil {
							return err
						}
						if _, _, err := tx.Range(ctx, lo, hi); err != nil {
							return err
						}
						_, err = tx.Commit(ctx)
						return err
					}()
				case cfg.QueryEvery > 0 && op%cfg.QueryEvery == cfg.QueryEvery-1:
					kind = "query"
					lo := make([]uint32, len(side))
					hi := make([]uint32, len(side))
					for d := range lo {
						lo[d] = uint32(rng.Intn(int(side[d] - cfg.BoxSide)))
						hi[d] = lo[d] + uint32(rng.Intn(int(cfg.BoxSide)))
					}
					var box strings.Builder
					for d := range lo {
						if d > 0 {
							box.WriteString(", ")
						}
						fmt.Fprintf(&box, "%d, %d", lo[d], hi[d])
					}
					text := fmt.Sprintf("SELECT id FROM points WHERE CONTAINS(BOX(%s)) LIMIT 100", box.String())
					if op%(2*cfg.QueryEvery) == cfg.QueryEvery-1 {
						text = fmt.Sprintf("SELECT COUNT(*) FROM points WHERE INTERSECTS(BOX(%s))", box.String())
					}
					_, err = cl.Query(ctx, text)
				case cfg.InsertEvery > 0 && op%cfg.InsertEvery == cfg.InsertEvery-1:
					kind = "insert"
					pts := make([]probe.Point, 8)
					for i := range pts {
						coords := make([]uint32, len(side))
						for d := range coords {
							coords[d] = uint32(rng.Intn(int(side[d])))
						}
						idBase++
						pts[i] = probe.Point{ID: idBase, Coords: coords}
					}
					_, err = cl.Insert(ctx, pts)
				case cfg.JoinEvery > 0 && op%cfg.JoinEvery == cfg.JoinEvery-1:
					kind = "join"
					mk := func(base uint64) []client.BoxItem {
						items := make([]client.BoxItem, 10)
						for i := range items {
							lo := make([]uint32, len(side))
							hi := make([]uint32, len(side))
							for d := range lo {
								lo[d] = uint32(rng.Intn(int(side[d] - cfg.BoxSide)))
								hi[d] = lo[d] + uint32(rng.Intn(int(cfg.BoxSide)))
							}
							items[i] = client.BoxItem{ID: base + uint64(i), Lo: lo, Hi: hi}
						}
						return items
					}
					_, _, err = cl.Join(ctx, mk(0), mk(100), 0)
				case cfg.NearestEvery > 0 && op%cfg.NearestEvery == cfg.NearestEvery-1:
					kind = "nearest"
					q := make([]uint32, len(side))
					for d := range q {
						q[d] = uint32(rng.Intn(int(side[d])))
					}
					_, _, err = cl.Nearest(ctx, q, 5, probe.Euclidean)
				default:
					kind = "range"
					lo := make([]uint32, len(side))
					hi := make([]uint32, len(side))
					for d := range lo {
						lo[d] = uint32(rng.Intn(int(side[d] - cfg.BoxSide)))
						hi[d] = lo[d] + uint32(rng.Intn(int(cfg.BoxSide)))
					}
					_, _, err = cl.Range(ctx, lo, hi)
				}
				switch {
				case err == nil:
					d := time.Since(t0)
					res.perOp[kind] = append(res.perOp[kind], d)
					if cfg.Metrics != nil {
						cfg.Metrics.Histogram("loadgen.latency." + kind).Observe(d.Nanoseconds())
					}
				case errors.Is(err, client.ErrOverloaded):
					res.overloaded++
					time.Sleep(time.Millisecond) // back off, then retry
				case errors.Is(err, client.ErrTxConflict):
					res.conflicts++ // lost the commit race: by design, retryable
				default:
					res.errors++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	perOp := make(map[string][]time.Duration)
	rep := Report{Conns: cfg.Conns, Elapsed: elapsed}
	for _, res := range results {
		if res.err != nil {
			return rep, res.err
		}
		for kind, lats := range res.perOp {
			all = append(all, lats...)
			perOp[kind] = append(perOp[kind], lats...)
		}
		rep.Errors += res.errors
		rep.Overloaded += res.overloaded
		rep.Conflicts += res.conflicts
	}
	rep.Ops = len(all)
	if elapsed > 0 {
		rep.QPS = float64(rep.Ops) / elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		rep.P50 = percentile(all, 0.50)
		rep.P95 = percentile(all, 0.95)
		rep.P99 = percentile(all, 0.99)
		rep.PerOp = make(map[string]OpStats, len(perOp))
		for kind, lats := range perOp {
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			rep.PerOp[kind] = OpStats{
				Ops: len(lats),
				P50: percentile(lats, 0.50),
				P95: percentile(lats, 0.95),
				P99: percentile(lats, 0.99),
			}
		}
	}
	return rep, nil
}

// percentile reads the q-quantile from sorted latencies.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

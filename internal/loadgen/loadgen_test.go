package loadgen

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"probe"
	"probe/internal/obs"
	"probe/internal/server"
)

// TestPercentile pins the edge cases the index arithmetic has to
// survive: an empty slice must not panic (or index -1), a single
// sample is every percentile, and on larger inputs the quantiles are
// ordered and drawn from the data.
func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.99); got != 0 {
		t.Fatalf("percentile(nil) = %v, want 0", got)
	}
	if got := percentile([]time.Duration{}, 0.50); got != 0 {
		t.Fatalf("percentile(empty) = %v, want 0", got)
	}

	single := []time.Duration{42 * time.Millisecond}
	for _, q := range []float64{0, 0.50, 0.95, 0.99, 1} {
		if got := percentile(single, q); got != 42*time.Millisecond {
			t.Fatalf("percentile(single, %v) = %v, want 42ms", q, got)
		}
	}

	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Millisecond
	}
	p50 := percentile(sorted, 0.50)
	p95 := percentile(sorted, 0.95)
	p99 := percentile(sorted, 0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles out of order: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if p99 != 99*time.Millisecond {
		t.Fatalf("p99 = %v, want 99ms (nearest-rank on 1..100ms)", p99)
	}
	if p50 < 50*time.Millisecond || p50 > 51*time.Millisecond {
		t.Fatalf("p50 = %v, want ~50ms", p50)
	}
}

func TestRunRejectsMissingAddr(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("Run with no address succeeded")
	}
}

// TestRunPerOp drives a real in-process server briefly and checks
// that the report's per-op breakdown and the caller's obs histograms
// both account for every successful operation.
func TestRunPerOp(t *testing.T) {
	g, err := probe.NewGrid(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	db, err := probe.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pts := make([]probe.Point, 5000)
	for i := range pts {
		pts[i] = probe.Point{
			ID:     uint64(i + 1),
			Coords: []uint32{uint32(rng.Intn(1024)), uint32(rng.Intn(1024))},
		}
	}
	if err := db.InsertAll(pts); err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	reg := obs.NewRegistry()
	rep, err := Run(Config{
		Addr:     ln.Addr().String(),
		Conns:    2,
		Duration: 300 * time.Millisecond,
		Seed:     7,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 {
		t.Fatal("no operations completed")
	}
	sum := 0
	for kind, st := range rep.PerOp {
		if st.Ops == 0 {
			t.Errorf("per-op %q has zero ops", kind)
		}
		if st.P50 > st.P95 || st.P95 > st.P99 {
			t.Errorf("per-op %q quantiles out of order: %+v", kind, st)
		}
		sum += st.Ops
		if got := reg.Histogram("loadgen.latency." + kind).Snapshot().Count; got != int64(st.Ops) {
			t.Errorf("histogram loadgen.latency.%s count %d, report says %d", kind, got, st.Ops)
		}
	}
	if sum != rep.Ops {
		t.Errorf("per-op counts sum to %d, total ops %d", sum, rep.Ops)
	}
	if _, ok := rep.PerOp["range"]; !ok {
		t.Errorf("no range ops in a mixed workload: %v", rep.PerOp)
	}
	if _, ok := rep.PerOp["query"]; !ok {
		t.Errorf("no query ops in a mixed workload: %v", rep.PerOp)
	}
}

package obs

// Span-tree wire codec: the binary form a server ships its per-request
// trace tree in (docs/server.md, TRACE frame) so a coordinator can
// graft backend subtrees under its own fan-out spans and a client can
// re-render the whole cluster's tree with the ordinary Render.
//
// The encoding is canonical: for any byte string b that DecodeSpan
// accepts, EncodeSpan(DecodeSpan(b)) reproduces b exactly. That
// property is what makes the fuzz target in codec_test.go a real
// differential check, and it falls out of three rules the decoder
// enforces: counter entries carry only nonzero values, in strictly
// ascending counter order; durations are at least 1ns (EncodeSpan
// clamps, and a sealed Span can never hold 0); and no trailing bytes
// follow the root node.
//
// Layout (all integers little-endian):
//
//	u8  version (1)
//	node:
//	  u32 nameLen | name bytes
//	  u64 duration (ns, >= 1)
//	  u8  nCounters | nCounters × (u8 counterID | u64 value)
//	  u32 nChildren | nChildren × node
//
// The decoder is hardened against hostile input: name length, tree
// depth, and total node count are capped, claimed counts are checked
// against the bytes actually present before any allocation, and any
// violation rejects the whole tree — a coordinator never grafts a
// half-decoded subtree.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

const (
	// spanCodecVersion is the leading version byte. Additions bump it;
	// a decoder rejects versions it does not know.
	spanCodecVersion = 1

	// maxSpanName caps one span's name length; EncodeSpan truncates,
	// DecodeSpan rejects.
	maxSpanName = 1024
	// maxSpanDepth caps tree depth on decode.
	maxSpanDepth = 64
	// maxSpanNodes caps total decoded nodes across the tree.
	maxSpanNodes = 4096

	// minNodeBytes is the smallest possible encoded node (empty name,
	// no counters, no children): 4 + 8 + 1 + 4.
	minNodeBytes = 17
)

// ErrSpanCodec wraps every DecodeSpan rejection, so callers can treat
// "malformed trace" as one condition without matching message text.
var ErrSpanCodec = errors.New("malformed span tree")

// EncodeSpan serializes a span tree to its canonical wire form. The
// duration written for each node is its Duration() at encode time
// (clamped to >= 1ns), so encode a sealed tree — encoding a running
// span freezes whatever has elapsed. A nil span encodes to nil.
func EncodeSpan(s *Span) []byte {
	if s == nil {
		return nil
	}
	b := make([]byte, 1, 256)
	b[0] = spanCodecVersion
	return appendSpan(b, s)
}

func appendSpan(b []byte, s *Span) []byte {
	name := s.name
	if len(name) > maxSpanName {
		name = name[:maxSpanName]
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(name)))
	b = append(b, name...)
	d := int64(s.Duration())
	if d < 1 {
		d = 1
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(d))

	n := 0
	var ids [NumCounters]uint8
	var vals [NumCounters]int64
	for c := Counter(0); c < NumCounters; c++ {
		if v := s.counters[c].Load(); v != 0 {
			ids[n], vals[n] = uint8(c), v
			n++
		}
	}
	b = append(b, uint8(n))
	for i := 0; i < n; i++ {
		b = append(b, ids[i])
		b = binary.LittleEndian.AppendUint64(b, uint64(vals[i]))
	}

	kids := s.Children()
	b = binary.LittleEndian.AppendUint32(b, uint32(len(kids)))
	for _, ch := range kids {
		b = appendSpan(b, ch)
	}
	return b
}

// spanDec is the decode cursor, carrying the shared node budget.
type spanDec struct {
	b     []byte
	off   int
	nodes int
}

func (d *spanDec) fail(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSpanCodec, fmt.Sprintf(format, args...))
}

func (d *spanDec) remaining() int { return len(d.b) - d.off }

func (d *spanDec) u8() (uint8, error) {
	if d.remaining() < 1 {
		return 0, d.fail("truncated at byte %d", d.off)
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *spanDec) u32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, d.fail("truncated at byte %d", d.off)
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *spanDec) u64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, d.fail("truncated at byte %d", d.off)
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

// DecodeSpan parses a canonical span-tree encoding back into a sealed
// Span tree. Rejections (wrapped in ErrSpanCodec): unknown version,
// truncation, trailing bytes, oversized names, counts exceeding the
// bytes present, depth or node budget exceeded, unknown or
// out-of-order counter IDs, zero counter values, and zero durations —
// everything EncodeSpan cannot produce. Decoding nil or empty input
// yields a nil span (the encoding of nil).
func DecodeSpan(b []byte) (*Span, error) {
	if len(b) == 0 {
		return nil, nil
	}
	d := &spanDec{b: b}
	v, err := d.u8()
	if err != nil {
		return nil, err
	}
	if v != spanCodecVersion {
		return nil, d.fail("unknown version %d", v)
	}
	s, err := d.node(0)
	if err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, d.fail("%d trailing bytes after root", d.remaining())
	}
	return s, nil
}

func (d *spanDec) node(depth int) (*Span, error) {
	if depth > maxSpanDepth {
		return nil, d.fail("depth exceeds %d", maxSpanDepth)
	}
	d.nodes++
	if d.nodes > maxSpanNodes {
		return nil, d.fail("node count exceeds %d", maxSpanNodes)
	}

	nameLen, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nameLen > maxSpanName {
		return nil, d.fail("name length %d exceeds %d", nameLen, maxSpanName)
	}
	if d.remaining() < int(nameLen) {
		return nil, d.fail("name truncated at byte %d", d.off)
	}
	name := string(d.b[d.off : d.off+int(nameLen)])
	d.off += int(nameLen)

	dur, err := d.u64()
	if err != nil {
		return nil, err
	}
	if dur == 0 {
		return nil, d.fail("zero duration")
	}
	s := NewSealed(name, time.Duration(dur))

	nc, err := d.u8()
	if err != nil {
		return nil, err
	}
	if nc > uint8(NumCounters) {
		return nil, d.fail("counter count %d exceeds %d", nc, NumCounters)
	}
	prev := -1
	for i := 0; i < int(nc); i++ {
		id, err := d.u8()
		if err != nil {
			return nil, err
		}
		if id >= uint8(NumCounters) {
			return nil, d.fail("unknown counter id %d", id)
		}
		if int(id) <= prev {
			return nil, d.fail("counter ids not strictly ascending")
		}
		prev = int(id)
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		if v == 0 {
			return nil, d.fail("zero counter value")
		}
		s.counters[id].Store(int64(v))
	}

	nk, err := d.u32()
	if err != nil {
		return nil, err
	}
	// Each child occupies at least minNodeBytes; a claimed count the
	// payload cannot hold is rejected before any child allocation.
	if int64(nk)*minNodeBytes > int64(d.remaining()) {
		return nil, d.fail("child count %d exceeds payload", nk)
	}
	for i := 0; i < int(nk); i++ {
		ch, err := d.node(depth + 1)
		if err != nil {
			return nil, err
		}
		s.children = append(s.children, ch)
	}
	return s, nil
}

// NewSealed returns a span that is already ended with the given
// duration (clamped to >= 1ns, the sealed minimum). It is the
// constructor for synthetic nodes — a coordinator's per-backend
// fan-out spans, decoded remote subtrees — whose timing was measured
// elsewhere.
func NewSealed(name string, dur time.Duration) *Span {
	if dur < 1 {
		dur = 1
	}
	s := &Span{name: name, start: time.Now()}
	s.dur.Store(int64(dur))
	return s
}

// Attach adds an existing span tree as a child of s, in creation
// order alongside Child-created spans. No-op when either side is nil.
// The attached tree must not be attached twice (a span tree is a
// tree, not a DAG).
func (s *Span) Attach(child *Span) {
	if s == nil || child == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
}

// NewTraceID mints a nonzero random 64-bit trace ID. Zero is reserved
// as "no trace ID" on the wire, so the generator never returns it.
func NewTraceID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// TraceIDString renders a trace ID the one way every log line, store
// entry, and CLI prints it — 16 lowercase hex digits — so one grep
// correlates a request across the fleet.
func TraceIDString(id uint64) string {
	return fmt.Sprintf("%016x", id)
}

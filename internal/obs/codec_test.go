package obs

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// buildTree constructs a deterministic sealed tree exercising names,
// counters, and nesting.
func buildTree() *Span {
	root := NewSealed("router.range", 1500*time.Microsecond)
	root.Add(Results, 42)
	sh0 := NewSealed("fanout.shard0.primary", 900*time.Microsecond)
	sh0.Add(Elements, 100)
	sh0.Add(DataPages, 7)
	exec := NewSealed("server.exec", 640*time.Microsecond)
	exec.Add(PoolGets, 12)
	exec.Add(PoolHits, 9)
	sh0.Attach(exec)
	root.Attach(sh0)
	sh1 := NewSealed("fanout.shard1.replica", 1100*time.Microsecond)
	sh1.Add(Seeks, 3)
	root.Attach(sh1)
	root.Attach(NewSealed("merge", 80*time.Microsecond))
	return root
}

// TestSpanCodecRoundTrip pins the property the router depends on:
// serialize → parse → render is byte-identical, and re-encoding the
// parsed tree reproduces the original bytes (canonical encoding).
func TestSpanCodecRoundTrip(t *testing.T) {
	root := buildTree()
	enc := EncodeSpan(root)
	dec, err := DecodeSpan(enc)
	if err != nil {
		t.Fatalf("DecodeSpan: %v", err)
	}
	if got, want := dec.Render(true), root.Render(true); got != want {
		t.Errorf("render mismatch after round trip:\ngot:\n%swant:\n%s", got, want)
	}
	if got, want := dec.Render(false), root.Render(false); got != want {
		t.Errorf("untimed render mismatch:\ngot:\n%swant:\n%s", got, want)
	}
	re := EncodeSpan(dec)
	if !bytes.Equal(re, enc) {
		t.Errorf("re-encode not byte-identical: %d vs %d bytes", len(re), len(enc))
	}
}

// TestSpanCodecLiveTree encodes a tree built through the ordinary
// New/Child/End path (the server's actual shape).
func TestSpanCodecLiveTree(t *testing.T) {
	root := New("range")
	root.Add(Results, 5)
	c := root.Child("pool")
	c.Add(PoolGets, 3)
	c.End()
	root.End()
	dec, err := DecodeSpan(EncodeSpan(root))
	if err != nil {
		t.Fatalf("DecodeSpan: %v", err)
	}
	if got, want := dec.Render(true), root.Render(true); got != want {
		t.Errorf("render mismatch:\ngot:\n%swant:\n%s", got, want)
	}
	if dec.Total(PoolGets) != 3 || dec.Get(Results) != 5 {
		t.Errorf("counters lost: pool-gets=%d results=%d", dec.Total(PoolGets), dec.Get(Results))
	}
}

func TestSpanCodecNil(t *testing.T) {
	if b := EncodeSpan(nil); b != nil {
		t.Errorf("EncodeSpan(nil) = %v, want nil", b)
	}
	s, err := DecodeSpan(nil)
	if err != nil || s != nil {
		t.Errorf("DecodeSpan(nil) = %v, %v; want nil, nil", s, err)
	}
}

// TestSpanCodecTruncation: every proper prefix of a valid encoding is
// rejected — a torn frame never yields a half tree.
func TestSpanCodecTruncation(t *testing.T) {
	enc := EncodeSpan(buildTree())
	for i := 1; i < len(enc); i++ {
		if _, err := DecodeSpan(enc[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", i, len(enc))
		} else if !errors.Is(err, ErrSpanCodec) {
			t.Fatalf("prefix error not ErrSpanCodec: %v", err)
		}
	}
}

// TestSpanCodecCorruption: targeted malformed inputs are rejected.
func TestSpanCodecCorruption(t *testing.T) {
	valid := EncodeSpan(buildTree())

	node := func(name string, dur uint64, counters []byte, nkids uint32) []byte {
		var b []byte
		b = binary.LittleEndian.AppendUint32(b, uint32(len(name)))
		b = append(b, name...)
		b = binary.LittleEndian.AppendUint64(b, dur)
		b = append(b, counters...)
		b = binary.LittleEndian.AppendUint32(b, nkids)
		return b
	}
	frame := func(payload []byte) []byte { return append([]byte{spanCodecVersion}, payload...) }
	cnt := func(entries ...[2]uint64) []byte {
		b := []byte{uint8(len(entries))}
		for _, e := range entries {
			b = append(b, uint8(e[0]))
			b = binary.LittleEndian.AppendUint64(b, e[1])
		}
		return b
	}

	cases := map[string][]byte{
		"bad version":        append([]byte{99}, valid[1:]...),
		"trailing bytes":     append(append([]byte{}, valid...), 0),
		"zero duration":      frame(node("x", 0, []byte{0}, 0)),
		"zero counter value": frame(node("x", 1, cnt([2]uint64{0, 0}), 0)),
		"unknown counter id": frame(node("x", 1, cnt([2]uint64{uint64(NumCounters), 5}), 0)),
		"descending ids":     frame(node("x", 1, cnt([2]uint64{3, 1}, [2]uint64{1, 1}), 0)),
		"duplicate ids":      frame(node("x", 1, cnt([2]uint64{3, 1}, [2]uint64{3, 1}), 0)),
		"counter overcount":  frame(node("x", 1, []byte{uint8(NumCounters) + 1}, 0)),
		"huge name": frame(func() []byte {
			var b []byte
			b = binary.LittleEndian.AppendUint32(b, maxSpanName+1)
			return b
		}()),
		"huge child count": frame(node("x", 1, []byte{0}, 1<<30)),
		"empty input tail": {spanCodecVersion},
	}
	for name, b := range cases {
		if _, err := DecodeSpan(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		} else if !errors.Is(err, ErrSpanCodec) {
			t.Errorf("%s: error not ErrSpanCodec: %v", name, err)
		}
	}
}

// TestSpanCodecDepthAndNodeCaps: a chain deeper than maxSpanDepth and
// a tree wider than maxSpanNodes are rejected; one node under each cap
// is accepted.
func TestSpanCodecDepthAndNodeCaps(t *testing.T) {
	chain := func(depth int) *Span {
		root := NewSealed("d0", 1)
		cur := root
		for i := 1; i < depth; i++ {
			next := NewSealed("d", 1)
			cur.Attach(next)
			cur = next
		}
		return root
	}
	if _, err := DecodeSpan(EncodeSpan(chain(maxSpanDepth + 1))); err != nil {
		t.Errorf("depth %d rejected: %v", maxSpanDepth+1, err)
	}
	if _, err := DecodeSpan(EncodeSpan(chain(maxSpanDepth + 2))); err == nil {
		t.Errorf("depth %d accepted", maxSpanDepth+2)
	}

	wide := NewSealed("root", 1)
	for i := 0; i < maxSpanNodes; i++ { // root + maxSpanNodes children
		wide.Attach(NewSealed("c", 1))
	}
	if _, err := DecodeSpan(EncodeSpan(wide)); err == nil {
		t.Errorf("%d nodes accepted, cap is %d", maxSpanNodes+1, maxSpanNodes)
	}
}

// TestSpanCodecRandomTrees is the property test over generated trees:
// for 200 seeded random shapes, decode(encode(t)) renders identically
// and re-encodes to the same bytes.
func TestSpanCodecRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1986))
	var gen func(depth int) *Span
	gen = func(depth int) *Span {
		s := NewSealed(randName(rng), time.Duration(1+rng.Int63n(int64(time.Second))))
		for c := Counter(0); c < NumCounters; c++ {
			if rng.Intn(4) == 0 {
				s.Add(c, 1+rng.Int63n(1<<40))
			}
		}
		if depth < 5 {
			for i := 0; i < rng.Intn(4); i++ {
				s.Attach(gen(depth + 1))
			}
		}
		return s
	}
	for i := 0; i < 200; i++ {
		root := gen(0)
		enc := EncodeSpan(root)
		dec, err := DecodeSpan(enc)
		if err != nil {
			t.Fatalf("tree %d: decode: %v", i, err)
		}
		if got, want := dec.Render(true), root.Render(true); got != want {
			t.Fatalf("tree %d: render mismatch:\ngot:\n%swant:\n%s", i, got, want)
		}
		if !bytes.Equal(EncodeSpan(dec), enc) {
			t.Fatalf("tree %d: re-encode not canonical", i)
		}
	}
}

func randName(rng *rand.Rand) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789.-"
	n := rng.Intn(24)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alpha[rng.Intn(len(alpha))])
	}
	return b.String()
}

// FuzzSpanCodec is the differential fuzz target: any input the
// decoder accepts must re-encode to exactly the input bytes (the
// canonical-encoding property), and the decoded tree must render
// stably through a second round trip.
func FuzzSpanCodec(f *testing.F) {
	f.Add(EncodeSpan(buildTree()))
	f.Add(EncodeSpan(NewSealed("", 1)))
	f.Add([]byte{spanCodecVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSpan(b)
		if err != nil {
			return
		}
		re := EncodeSpan(s)
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted input is not canonical:\n in: %x\nout: %x", b, re)
		}
		s2, err := DecodeSpan(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if s2.Render(true) != s.Render(true) {
			t.Fatal("render unstable across round trips")
		}
	})
}

func TestNewTraceID(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("NewTraceID returned 0")
		}
		seen[id] = true
	}
	if len(seen) < 100 {
		t.Errorf("only %d distinct ids in 100 draws", len(seen))
	}
	if got := TraceIDString(0xabc); got != "0000000000000abc" {
		t.Errorf("TraceIDString = %q", got)
	}
}

func TestTraceStore(t *testing.T) {
	ts := NewTraceStore(3)
	if ts.Len() != 0 || ts.Snapshot() != nil && len(ts.Snapshot()) != 0 {
		t.Fatal("new store not empty")
	}
	for i := 1; i <= 5; i++ {
		ts.Add(TraceRecord{
			TraceID: uint64(i), Op: "range", Start: time.Unix(int64(i), 0),
			Dur: time.Duration(i) * time.Millisecond, Status: "ok", Kind: TraceKindSlow,
		})
	}
	if ts.Len() != 3 || ts.Total() != 5 {
		t.Fatalf("len=%d total=%d, want 3, 5", ts.Len(), ts.Total())
	}
	snap := ts.Snapshot()
	for i, want := range []uint64{5, 4, 3} { // newest first, oldest evicted
		if snap[i].TraceID != want {
			t.Errorf("snap[%d].TraceID = %d, want %d", i, snap[i].TraceID, want)
		}
	}

	var sb strings.Builder
	if err := ts.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Total  uint64 `json:"total"`
		Traces []struct {
			TraceID string `json:"trace_id"`
			Op      string `json:"op"`
			Kind    string `json:"kind"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("WriteJSON not JSON: %v\n%s", err, sb.String())
	}
	if doc.Total != 5 || len(doc.Traces) != 3 || doc.Traces[0].TraceID != "0000000000000005" {
		t.Errorf("JSON doc = %+v", doc)
	}

	sb.Reset()
	rec := TraceRecord{TraceID: 7, Op: "query", Kind: TraceKindTraced, Status: "ok", Root: buildTree()}
	ts.Add(rec)
	if err := ts.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "trace_id=0000000000000007") ||
		!strings.Contains(sb.String(), "fanout.shard0.primary") {
		t.Errorf("WriteText missing fields:\n%s", sb.String())
	}
}

// TestTraceStoreNil: the nil store is a no-op, like the nil span.
func TestTraceStoreNil(t *testing.T) {
	var ts *TraceStore
	ts.Add(TraceRecord{})
	if ts.Len() != 0 || ts.Total() != 0 || ts.Snapshot() != nil {
		t.Fatal("nil store not inert")
	}
}

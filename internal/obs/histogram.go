package obs

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"
	"sync/atomic"
)

// Gauge is an instantaneous int64 metric — a level, not a cumulative
// count: in-flight requests, active sessions, resident pages. It is
// safe for concurrent use and the zero value is ready. The
// distinction from Int matters for exposition: a Prometheus scrape
// renders an Int as a counter and a Gauge as a gauge.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by delta (negative deltas lower it).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc and Dec move the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// String implements Var (and expvar.Var) as a JSON number.
func (g *Gauge) String() string { return strconv.FormatInt(g.v.Load(), 10) }

// histBuckets is the number of log2 buckets: bucket 0 holds the value
// 0 (and clamped negatives), bucket i >= 1 holds values v with
// bits.Len64(v) == i, i.e. 2^(i-1) <= v <= 2^i - 1. Every int64 value
// lands in exactly one bucket.
const histBuckets = 65

// Histogram is a lock-free log-bucketed distribution of int64
// observations: request latencies in nanoseconds, pages read per
// query. Observe is a handful of atomic adds — no locks, no
// allocation — so it belongs on hot paths; Snapshot reads a coherent-
// enough view for monitoring (buckets are read individually, so a
// snapshot racing concurrent Observes may be off by the observations
// in flight, never torn within one counter).
//
// Buckets are powers of two, which bounds the relative quantile error
// at 2x worst case; Snapshot interpolates linearly inside a bucket,
// and the exact maximum is tracked separately so the tail is never
// under-reported. The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a value to its log2 bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketUpper is the largest value bucket i can hold.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxInt64
	}
	return (int64(1) << i) - 1
}

// bucketLower is the smallest value bucket i can hold.
func bucketLower(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		// 1<<63 overflows int64; the top bucket's range is pinned to
		// its upper bound so the exposition never emits it as a
		// spurious below-max boundary.
		return math.MaxInt64
	}
	return int64(1) << (i - 1)
}

// Observe records one value. Negative values clamp to zero. Safe for
// concurrent use; allocation-free.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistSnapshot is one consistent-enough reading of a Histogram: total
// count and sum, the exact maximum, and the per-bucket counts the
// quantile estimates are computed from.
type HistSnapshot struct {
	Count, Sum, Max int64
	Buckets         [histBuckets]int64
}

// Snapshot reads the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucketed
// counts: it walks to the bucket containing the target rank and
// interpolates linearly inside it, clamping the top to the exact
// observed maximum. Returns 0 for an empty histogram.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			lo, hi := bucketLower(i), bucketUpper(i)
			if hi > s.Max {
				hi = s.Max // the top bucket cannot exceed the exact max
			}
			if hi <= lo {
				return lo
			}
			frac := (rank - seen) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		seen += float64(c)
	}
	return s.Max
}

// Mean returns the arithmetic mean of the observations, 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// String implements Var (and expvar.Var) as a JSON object carrying
// the summary statistics a dashboard wants at a glance.
func (h *Histogram) String() string {
	s := h.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, `{"count": %d, "sum": %d, "max": %d, "p50": %d, "p95": %d, "p99": %d}`,
		s.Count, s.Sum, s.Max, s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99))
	return b.String()
}

package obs

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Quantile(0.5) != 0 || s.Max != 0 {
		t.Fatalf("empty histogram snapshot: %+v", s)
	}
	h.Observe(0)
	h.Observe(1)
	h.Observe(-5) // clamps to 0
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Sum != 1 {
		t.Fatalf("sum = %d, want 1", s.Sum)
	}
	if s.Max != 1 {
		t.Fatalf("max = %d, want 1", s.Max)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 {
		t.Fatalf("buckets = %v %v, want 2 1", s.Buckets[0], s.Buckets[1])
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 62, 63}, {1<<63 - 1, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		b := bucketOf(c.v)
		if lo, hi := bucketLower(b), bucketUpper(b); c.v < lo || c.v > hi {
			t.Errorf("value %d outside its bucket [%d, %d]", c.v, lo, hi)
		}
	}
}

// TestHistogramQuantileError pins the accuracy contract: log2 buckets
// with interpolation estimate any quantile of a random workload
// within a factor of two of the exact order statistic.
func TestHistogramQuantileError(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h Histogram
	var exact []int64
	for i := 0; i < 20000; i++ {
		// Log-uniform values spanning microseconds to seconds in ns.
		v := int64(1000 * (1 << uint(rng.Intn(20))))
		v += rng.Int63n(v)
		h.Observe(v)
		exact = append(exact, v)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
		want := exact[int(q*float64(len(exact)-1))]
		got := s.Quantile(q)
		if got < want/2 || got > want*2 {
			t.Errorf("q%.2f: estimate %d not within 2x of exact %d", q, got, want)
		}
	}
	if got := s.Quantile(1.0); got > s.Max {
		t.Errorf("q1.0 = %d exceeds exact max %d", got, s.Max)
	}
}

// TestHistogramObserveAllocs pins the hot path: observing into a
// histogram (and moving a gauge) never allocates, so an instrumented
// request path costs only the atomics.
func TestHistogramObserveAllocs(t *testing.T) {
	var h Histogram
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
		g.Inc()
		g.Dec()
	}); n != 0 {
		t.Fatalf("Observe/Inc/Dec allocated %.1f times per run, want 0", n)
	}
}

// TestRegistryUnobservedHistogramAllocs: fetching an already-created
// histogram from the registry and not observing stays zero-alloc —
// the lookup is a read-locked map hit, nothing more.
func TestRegistryUnobservedHistogramAllocs(t *testing.T) {
	r := NewRegistry()
	r.Histogram("server.latency.range") // create once
	if n := testing.AllocsPerRun(1000, func() {
		_ = r.Histogram("server.latency.range")
	}); n != 0 {
		t.Fatalf("registry histogram lookup allocated %.1f times per run, want 0", n)
	}
	if got := r.Histogram("server.latency.range").Count(); got != 0 {
		t.Fatalf("unobserved histogram count = %d, want 0", got)
	}
}

// TestRegistryConcurrentStress hammers histogram observes, gauge
// add/sub, counter adds, and /metrics rendering from concurrent
// goroutines; run under -race this proves the registry's concurrency
// contract, and afterwards the totals must balance.
func TestRegistryConcurrentStress(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				r.Histogram("lat").Observe(int64(i))
				r.Gauge("inflight").Inc()
				r.Int("requests").Add(1)
				r.Gauge("inflight").Dec()
				if i%64 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb, "probe"); err != nil {
						t.Errorf("WritePrometheus: %v", err)
						return
					}
					_ = r.String()
					r.DoNumeric(func(string, int64) {})
				}
			}
		}(w)
	}
	wg.Wait()

	if got := r.Histogram("lat").Count(); got != workers*perW {
		t.Fatalf("histogram count = %d, want %d", got, workers*perW)
	}
	if got := r.Gauge("inflight").Value(); got != 0 {
		t.Fatalf("gauge did not balance: %d", got)
	}
	if got := r.Int("requests").Value(); got != workers*perW {
		t.Fatalf("counter = %d, want %d", got, workers*perW)
	}
}

// TestWritePrometheus checks the exposition contract: counter with
// _total, gauge bare, histogram with monotonic cumulative buckets and
// sum/count lines, all parseable as "name{labels} value".
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Int("server.requests").Add(7)
	r.Gauge("server.inflight").Set(3)
	h := r.Histogram("server.latency.range_ns")
	for _, v := range []int64{100, 200, 4000, 4001, 90000} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb, "probe"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE probe_server_requests_total counter\nprobe_server_requests_total 7\n",
		"# TYPE probe_server_inflight gauge\nprobe_server_inflight 3\n",
		"# TYPE probe_server_latency_range_ns histogram\n",
		"probe_server_latency_range_ns_bucket{le=\"+Inf\"} 5\n",
		"probe_server_latency_range_ns_sum 98301\n",
		"probe_server_latency_range_ns_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Bucket series must be cumulative (non-decreasing).
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "probe_server_latency_range_ns_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket series not cumulative at %q", line)
		}
		last = v
	}
	if last != 5 {
		t.Fatalf("final bucket cumulative = %d, want 5", last)
	}
}

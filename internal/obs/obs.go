// Package obs is the observability layer under every query operator:
// a lightweight hierarchical tracing and metrics facility. The
// paper's entire experimental argument (Section 5) is made in counted
// work — page accesses, elements generated, merge steps — so the
// operators report their work through obs spans, and the facade
// assembles the unified QueryStats and ExplainAnalyze reports from
// them.
//
// A Span is one node of a per-query trace tree: it carries a
// monotonic start time, a duration sealed by End, and a fixed array
// of typed counters (see Counter). Counters are atomics, so many
// goroutines — the shards of a parallel join, concurrent cursors over
// one tree — may Add to one span or to sibling child spans without
// external locking.
//
// The whole API is nil-tolerant: every method on a nil *Span is a
// no-op (or zero), so operators thread a possibly-nil span through
// their hot loops unconditionally. The disabled path performs no
// allocation and no atomic writes; TestNoopSpanAllocs and
// BenchmarkNoopSpan pin that down with testing.AllocsPerRun.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter names one typed work counter of a span. The set is the
// union of the work measures the paper reports (pages accessed,
// elements generated, merge steps) and the ones the implementation
// adds around them (buffer pool and physical I/O attribution, B+-tree
// traversal work, join shard accounting).
type Counter uint8

const (
	// Elements counts decomposition elements generated or consumed
	// (the paper's sequence-B records).
	Elements Counter = iota
	// BigMinSkips counts BIGMIN/LITMAX computations (strategy C's
	// substitute for elements).
	BigMinSkips
	// Seeks counts random accesses into the point sequence.
	Seeks
	// DataPages counts distinct leaf pages touched by one operator.
	DataPages
	// Results counts rows an operator reported.
	Results
	// NodeVisits counts internal B+-tree nodes visited on descents.
	NodeVisits
	// LeafScans counts leaf-page loads (including rescans, unlike
	// DataPages which is distinct).
	LeafScans
	// PoolGets/PoolHits/PoolMisses/PoolEvictions/PoolWriteBacks are
	// buffer-pool accesses attributed to the span.
	PoolGets
	PoolHits
	PoolMisses
	PoolEvictions
	PoolWriteBacks
	// PhysReads/PhysWrites are physical page transfers attributed to
	// the span.
	PhysReads
	PhysWrites
	// ItemsLeft/ItemsRight count join input items (per shard on shard
	// spans).
	ItemsLeft
	ItemsRight
	// RawPairs counts pairs emitted by the merge before the
	// deduplicating projection; DistinctPairs after it.
	RawPairs
	DistinctPairs
	// MergeSteps counts items consumed by the join merge loop.
	MergeSteps
	// ReplicatedItems counts the net extra item copies a z-prefix
	// partitioning processed (the replication overhead of
	// docs/parallelism.md).
	ReplicatedItems
	// Shards counts join partitions actually executed.
	Shards
	// WALAppends/WALSyncs count write-ahead-log records appended and
	// group fsyncs issued by a durable store.
	WALAppends
	WALSyncs
	// PagesRecovered counts page images replayed from the log when a
	// durable store was reopened.
	PagesRecovered
	// ChecksumFailures counts reads that failed page verification.
	ChecksumFailures

	// NumCounters is the number of defined counters.
	NumCounters
)

var counterNames = [NumCounters]string{
	Elements:         "elements",
	BigMinSkips:      "bigmin-skips",
	Seeks:            "seeks",
	DataPages:        "data-pages",
	Results:          "results",
	NodeVisits:       "node-visits",
	LeafScans:        "leaf-scans",
	PoolGets:         "pool-gets",
	PoolHits:         "pool-hits",
	PoolMisses:       "pool-misses",
	PoolEvictions:    "pool-evictions",
	PoolWriteBacks:   "pool-write-backs",
	PhysReads:        "phys-reads",
	PhysWrites:       "phys-writes",
	ItemsLeft:        "items-left",
	ItemsRight:       "items-right",
	RawPairs:         "raw-pairs",
	DistinctPairs:    "distinct-pairs",
	MergeSteps:       "merge-steps",
	ReplicatedItems:  "replicated-items",
	Shards:           "shards",
	WALAppends:       "wal-appends",
	WALSyncs:         "wal-syncs",
	PagesRecovered:   "pages-recovered",
	ChecksumFailures: "checksum-failures",
}

// String implements fmt.Stringer.
func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("Counter(%d)", uint8(c))
}

// Span is one node of a trace: a named operator execution with typed
// counters, a monotonic start time, and child spans. The zero of the
// API is the nil span: every method no-ops (or returns zero) on nil,
// so disabled tracing costs nothing.
type Span struct {
	name     string
	start    time.Time // monotonic reading included
	dur      atomic.Int64
	counters [NumCounters]atomic.Int64

	mu       sync.Mutex
	children []*Span
}

// New starts a root span. The returned span's clock is running; call
// End to seal its duration.
func New(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts a sub-span under s and returns it. On a nil span it
// returns nil, keeping the whole subtree disabled.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := New(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Add increments a counter. Safe for concurrent use; no-op on nil.
func (s *Span) Add(c Counter, n int64) {
	if s == nil {
		return
	}
	s.counters[c].Add(n)
}

// Inc is Add(c, 1).
func (s *Span) Inc(c Counter) { s.Add(c, 1) }

// Get returns the span's own value of a counter (not including
// children); 0 on nil.
func (s *Span) Get(c Counter) int64 {
	if s == nil {
		return 0
	}
	return s.counters[c].Load()
}

// Total returns the counter summed over the span and all descendants.
func (s *Span) Total(c Counter) int64 {
	if s == nil {
		return 0
	}
	t := s.counters[c].Load()
	for _, ch := range s.Children() {
		t += ch.Total(c)
	}
	return t
}

// End seals the span's duration from its monotonic start time. Only
// the first End takes effect; no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := int64(time.Since(s.start))
	if d < 1 {
		d = 1 // a sealed span is distinguishable from a running one
	}
	s.dur.CompareAndSwap(0, d)
}

// Duration returns the sealed duration, or the running elapsed time
// if End has not been called; 0 on nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if d := s.dur.Load(); d != 0 {
		return time.Duration(d)
	}
	return time.Since(s.start)
}

// Name returns the span's name; "" on nil.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Children returns a snapshot of the span's direct children in
// creation order; nil on nil.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	s.mu.Unlock()
	return out
}

// Render formats the span tree, one line per span, children indented.
// Counters appear in Counter order and only when nonzero, so the
// output is deterministic for a deterministic workload. withTimings
// appends wall-clock durations; leave it false for golden files.
func (s *Span) Render(withTimings bool) string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.render(&b, 0, withTimings)
	return b.String()
}

func (s *Span) render(b *strings.Builder, depth int, withTimings bool) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(s.name)
	for c := Counter(0); c < NumCounters; c++ {
		if v := s.counters[c].Load(); v != 0 {
			fmt.Fprintf(b, " %s=%d", c, v)
		}
	}
	if withTimings {
		fmt.Fprintf(b, " (%v)", s.Duration().Round(time.Microsecond))
	}
	b.WriteByte('\n')
	for _, ch := range s.Children() {
		ch.render(b, depth+1, withTimings)
	}
}

// String implements fmt.Stringer as Render without timings.
func (s *Span) String() string { return s.Render(false) }

// Sorted-keys helper shared with the registry.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package obs

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

// The registry and its metrics must satisfy the expvar.Var contract
// so long-running processes can expvar.Publish them.
var (
	_ expvar.Var = (*Int)(nil)
	_ expvar.Var = (*Registry)(nil)
)

func TestSpanCountersAndTree(t *testing.T) {
	root := New("query")
	root.Add(Seeks, 3)
	root.Inc(Seeks)
	if got := root.Get(Seeks); got != 4 {
		t.Fatalf("Seeks = %d, want 4", got)
	}
	child := root.Child("pool")
	child.Add(PoolGets, 10)
	child.Add(PoolHits, 7)
	grand := child.Child("phys")
	grand.Add(PhysReads, 3)
	if got := root.Total(PoolGets); got != 10 {
		t.Errorf("Total(PoolGets) = %d", got)
	}
	if got := root.Total(PhysReads); got != 3 {
		t.Errorf("Total(PhysReads) = %d", got)
	}
	if got := root.Get(PhysReads); got != 0 {
		t.Errorf("Get(PhysReads) on root = %d, want 0", got)
	}
	kids := root.Children()
	if len(kids) != 1 || kids[0].Name() != "pool" {
		t.Errorf("children = %v", kids)
	}
}

func TestSpanEndSealsDuration(t *testing.T) {
	s := New("op")
	time.Sleep(time.Millisecond)
	s.End()
	d := s.Duration()
	if d <= 0 {
		t.Fatalf("duration %v not positive", d)
	}
	time.Sleep(2 * time.Millisecond)
	if got := s.Duration(); got != d {
		t.Errorf("duration moved after End: %v -> %v", d, got)
	}
	// Second End is a no-op.
	s.End()
	if got := s.Duration(); got != d {
		t.Errorf("second End changed duration")
	}
}

func TestSpanRenderDeterministic(t *testing.T) {
	s := New("range-search")
	s.Add(Seeks, 2)
	s.Add(DataPages, 5)
	c := s.Child("buffer-pool")
	c.Add(PoolGets, 9)
	want := "range-search seeks=2 data-pages=5\n  buffer-pool pool-gets=9\n"
	if got := s.Render(false); got != want {
		t.Errorf("Render = %q, want %q", got, want)
	}
	if got := s.String(); got != want {
		t.Errorf("String = %q", got)
	}
	if timed := s.Render(true); !strings.Contains(timed, "(") {
		t.Errorf("timed render lacks durations: %q", timed)
	}
}

func TestSpanConcurrentAdds(t *testing.T) {
	s := New("parallel")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := s.Child("shard")
			for i := 0; i < 1000; i++ {
				sh.Inc(MergeSteps)
				s.Inc(RawPairs)
			}
			sh.End()
		}()
	}
	wg.Wait()
	if got := s.Get(RawPairs); got != 8000 {
		t.Errorf("RawPairs = %d", got)
	}
	if got := s.Total(MergeSteps); got != 8000 {
		t.Errorf("Total(MergeSteps) = %d", got)
	}
	if len(s.Children()) != 8 {
		t.Errorf("children = %d", len(s.Children()))
	}
}

// TestNilSpanIsNoop exercises the whole API on a nil span: the
// disabled path every operator threads through its hot loops.
func TestNilSpanIsNoop(t *testing.T) {
	var s *Span
	s.Add(Seeks, 5)
	s.Inc(Elements)
	s.End()
	if s.Get(Seeks) != 0 || s.Total(Seeks) != 0 {
		t.Errorf("nil span holds counters")
	}
	if c := s.Child("x"); c != nil {
		t.Errorf("nil span produced a child")
	}
	if s.Duration() != 0 || s.Name() != "" || s.Render(true) != "" || s.Children() != nil {
		t.Errorf("nil span accessors not zero")
	}
}

// TestNoopSpanAllocs proves the acceptance criterion: the disabled
// (nil-span) path performs zero allocations.
func TestNoopSpanAllocs(t *testing.T) {
	var s *Span
	allocs := testing.AllocsPerRun(1000, func() {
		c := s.Child("op")
		c.Add(Seeks, 1)
		c.Inc(Elements)
		_ = c.Get(DataPages)
		_ = c.Total(DataPages)
		c.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op tracer allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkNoopSpan is the same proof in benchmark form
// (run with -benchmem: expect 0 B/op, 0 allocs/op).
func BenchmarkNoopSpan(b *testing.B) {
	var s *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := s.Child("op")
		c.Add(Seeks, 1)
		c.Inc(Elements)
		c.End()
	}
}

// BenchmarkEnabledSpanAdd measures the enabled fast path (one atomic
// add) for the docs' overhead claim.
func BenchmarkEnabledSpanAdd(b *testing.B) {
	s := New("op")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(Seeks, 1)
	}
}

func TestCounterNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < NumCounters; c++ {
		name := c.String()
		if name == "" || strings.HasPrefix(name, "Counter(") {
			t.Errorf("counter %d has no name", c)
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	if got := Counter(200).String(); !strings.HasPrefix(got, "Counter(") {
		t.Errorf("out-of-range counter String = %q", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Int("queries").Add(2)
	r.Int("pages").Set(7)
	if r.Int("queries").Value() != 2 {
		t.Errorf("queries = %d", r.Int("queries").Value())
	}
	// String must be valid JSON with sorted keys.
	var decoded map[string]int64
	if err := json.Unmarshal([]byte(r.String()), &decoded); err != nil {
		t.Fatalf("registry String not JSON: %v\n%s", err, r.String())
	}
	if decoded["pages"] != 7 || decoded["queries"] != 2 {
		t.Errorf("decoded = %v", decoded)
	}
	var names []string
	r.Do(func(name string, v Var) { names = append(names, name) })
	if len(names) != 2 || names[0] != "pages" || names[1] != "queries" {
		t.Errorf("Do order = %v", names)
	}
}

func TestRegistryAddSpan(t *testing.T) {
	r := NewRegistry()
	s := New("range-search")
	s.Add(DataPages, 3)
	s.Child("pool").Add(PoolGets, 9)
	r.AddSpan("range-search", s)
	r.AddSpan("range-search", nil) // untraced op still counts
	if got := r.Int("range-search.count").Value(); got != 2 {
		t.Errorf("count = %d", got)
	}
	if got := r.Int("range-search.data-pages").Value(); got != 3 {
		t.Errorf("data-pages = %d", got)
	}
	if got := r.Int("range-search.pool-gets").Value(); got != 9 {
		t.Errorf("pool-gets = %d (child totals must merge)", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Int("shared").Add(1)
				_ = r.String()
			}
		}()
	}
	wg.Wait()
	if got := r.Int("shared").Value(); got != 4000 {
		t.Errorf("shared = %d", got)
	}
}

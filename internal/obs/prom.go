package obs

import (
	"fmt"
	"io"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition
// format (version 0.0.4), so a live server can be scraped without
// importing a client library. The mapping, documented in
// docs/observability.md:
//
//   - metric names are sanitized ('.' and every other character
//     outside [a-zA-Z0-9_] becomes '_') and prefixed with the
//     caller's namespace, e.g. "server.requests" under namespace
//     "probe_server" becomes probe_server_requests;
//   - Int counters render as TYPE counter with a "_total" suffix;
//   - Gauges render as TYPE gauge, unsuffixed;
//   - Histograms render as classic TYPE histogram series: cumulative
//     "_bucket" samples with le labels at the log2 bucket upper
//     bounds, then "_sum" and "_count". Values are whatever unit the
//     histogram observed (the server's "server.latency.<op>" series
//     observe nanoseconds).

// promName sanitizes a registry metric name into a Prometheus metric
// name component.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders every metric in the registry to w in the
// Prometheus text exposition format, each name prefixed with
// namespace and an underscore (empty namespace = no prefix). Metrics
// appear in sorted name order, so output is deterministic for a
// quiescent registry. The first write error aborts the walk.
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	prefix := ""
	if namespace != "" {
		prefix = promName(namespace) + "_"
	}

	var err error
	write := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	r.mu.RLock()
	ints := make(map[string]*Int, len(r.ints))
	for k, v := range r.ints {
		ints[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	for _, k := range sortedKeys(ints) {
		name := prefix + promName(k) + "_total"
		write("# TYPE %s counter\n%s %d\n", name, name, ints[k].Value())
	}
	for _, k := range sortedKeys(gauges) {
		name := prefix + promName(k)
		write("# TYPE %s gauge\n%s %d\n", name, name, gauges[k].Value())
	}
	for _, k := range sortedKeys(hists) {
		name := prefix + promName(k)
		s := hists[k].Snapshot()
		write("# TYPE %s histogram\n", name)
		var cum int64
		for i, c := range s.Buckets {
			cum += c
			// Only emit boundaries up to the bucket holding the max:
			// the dozens of empty buckets above it would be identical
			// +Inf-equal lines.
			if i == 0 || bucketLower(i) <= s.Max {
				write("%s_bucket{le=\"%d\"} %d\n", name, bucketUpper(i), cum)
			}
		}
		// cum, not s.Count: a snapshot racing concurrent Observes can
		// read count and buckets slightly apart, and le="+Inf" must
		// stay monotonic with the bucket series.
		write("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		write("%s_sum %d\n%s_count %d\n", name, s.Sum, name, cum)
	}
	return err
}

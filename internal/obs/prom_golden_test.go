package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// sorted metric order (counters, then gauges, then histograms),
// counter "_total" suffix, bare gauge, the histogram's cumulative
// "_bucket" series with log2 le boundaries up to the max observation,
// the "+Inf" closing bucket, and "_sum"/"_count". Name sanitization
// ('.' and '-' to '_') is exercised by the metric names themselves.
// Any formatting drift here is a scrape-breaking change: update the
// golden only together with docs/observability.md.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Int("server.requests").Add(3)
	r.Int("router.cancelled").Add(0)
	r.Gauge("repl.caught-up").Set(1)
	h := r.Histogram("server.latency.range")
	for _, v := range []int64{0, 1, 5, 1000} {
		h.Observe(v)
	}

	const golden = `# TYPE probe_test_router_cancelled_total counter
probe_test_router_cancelled_total 0
# TYPE probe_test_server_requests_total counter
probe_test_server_requests_total 3
# TYPE probe_test_repl_caught_up gauge
probe_test_repl_caught_up 1
# TYPE probe_test_server_latency_range histogram
probe_test_server_latency_range_bucket{le="0"} 1
probe_test_server_latency_range_bucket{le="1"} 2
probe_test_server_latency_range_bucket{le="3"} 2
probe_test_server_latency_range_bucket{le="7"} 3
probe_test_server_latency_range_bucket{le="15"} 3
probe_test_server_latency_range_bucket{le="31"} 3
probe_test_server_latency_range_bucket{le="63"} 3
probe_test_server_latency_range_bucket{le="127"} 3
probe_test_server_latency_range_bucket{le="255"} 3
probe_test_server_latency_range_bucket{le="511"} 3
probe_test_server_latency_range_bucket{le="1023"} 4
probe_test_server_latency_range_bucket{le="+Inf"} 4
probe_test_server_latency_range_sum 1006
probe_test_server_latency_range_count 4
`

	var sb strings.Builder
	if err := r.WritePrometheus(&sb, "probe_test"); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != golden {
		t.Errorf("exposition drifted from the golden.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestWritePrometheusGoldenNoNamespace pins the empty-namespace form:
// no prefix, no leading underscore.
func TestWritePrometheusGoldenNoNamespace(t *testing.T) {
	r := NewRegistry()
	r.Int("requests").Add(1)
	const golden = "# TYPE requests_total counter\nrequests_total 1\n"
	var sb strings.Builder
	if err := r.WritePrometheus(&sb, ""); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != golden {
		t.Errorf("exposition drifted from the golden.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

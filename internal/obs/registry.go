package obs

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Var is the expvar.Var interface restated (a metric that renders
// itself as a valid JSON value). The registry and its metrics satisfy
// it, so a long-running process can hand them to expvar.Publish and
// serve them from /debug/vars without this package importing expvar
// (and without its side effect of registering HTTP handlers).
type Var interface {
	String() string
}

// Int is a cumulative int64 metric, safe for concurrent use. The
// zero value is ready to use.
type Int struct {
	v atomic.Int64
}

// Add increments the metric.
func (i *Int) Add(delta int64) { i.v.Add(delta) }

// Set replaces the metric's value.
func (i *Int) Set(v int64) { i.v.Store(v) }

// Value returns the current value.
func (i *Int) Value() int64 { return i.v.Load() }

// String implements Var (and expvar.Var) as a JSON number.
func (i *Int) String() string { return strconv.FormatInt(i.v.Load(), 10) }

// Registry is a named set of cumulative metrics for long-running use:
// the DB merges every query's span counters into its registry, so a
// server exposes lifetime totals (pages read, buffer hit counts,
// queries executed) alongside the per-query QueryStats. All methods
// are safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	ints map[string]*Int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ints: make(map[string]*Int)}
}

// Int returns the named metric, creating it at zero on first use.
func (r *Registry) Int(name string) *Int {
	r.mu.RLock()
	i, ok := r.ints[name]
	r.mu.RUnlock()
	if ok {
		return i
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok = r.ints[name]; ok {
		return i
	}
	i = &Int{}
	r.ints[name] = i
	return i
}

// Do calls fn for every metric in sorted name order.
func (r *Registry) Do(fn func(name string, v Var)) {
	r.mu.RLock()
	snapshot := make(map[string]*Int, len(r.ints))
	for k, v := range r.ints {
		snapshot[k] = v
	}
	r.mu.RUnlock()
	for _, k := range sortedKeys(snapshot) {
		fn(k, snapshot[k])
	}
}

// String implements Var (and expvar.Var) as a JSON object with
// sorted keys, so publishing the whole registry as one expvar works.
func (r *Registry) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	r.Do(func(name string, v Var) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Quote(name))
		b.WriteString(": ")
		b.WriteString(v.String())
	})
	b.WriteByte('}')
	return b.String()
}

// AddSpan merges a span subtree's counter totals into the registry
// under "prefix.counter" names, and bumps "prefix.count" by one. Nil
// spans merge nothing (the count still bumps: the operation ran, just
// untraced).
func (r *Registry) AddSpan(prefix string, s *Span) {
	r.Int(prefix + ".count").Add(1)
	if s == nil {
		return
	}
	for c := Counter(0); c < NumCounters; c++ {
		if v := s.Total(c); v != 0 {
			r.Int(prefix + "." + c.String()).Add(v)
		}
	}
}

package obs

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Var is the expvar.Var interface restated (a metric that renders
// itself as a valid JSON value). The registry and its metrics satisfy
// it, so a long-running process can hand them to expvar.Publish and
// serve them from /debug/vars without this package importing expvar
// (and without its side effect of registering HTTP handlers).
type Var interface {
	String() string
}

// Int is a cumulative int64 metric, safe for concurrent use. The
// zero value is ready to use.
type Int struct {
	v atomic.Int64
}

// Add increments the metric.
func (i *Int) Add(delta int64) { i.v.Add(delta) }

// Set replaces the metric's value.
func (i *Int) Set(v int64) { i.v.Store(v) }

// Value returns the current value.
func (i *Int) Value() int64 { return i.v.Load() }

// String implements Var (and expvar.Var) as a JSON number.
func (i *Int) String() string { return strconv.FormatInt(i.v.Load(), 10) }

// Registry is a named set of metrics for long-running use: the DB
// merges every query's span counters into its registry, and the
// network server keeps its request counters, level gauges, and
// latency histograms in one, so lifetime totals are exposable
// alongside the per-query QueryStats.
//
// Three metric kinds live side by side: Int (cumulative counter),
// Gauge (instantaneous level), and Histogram (log-bucketed
// distribution). Names must be unique across kinds — registering
// "x" as both a counter and a gauge renders both and confuses every
// consumer, so don't. All methods are safe for concurrent use;
// metric lookups are read-locked and the metrics themselves are
// lock-free atomics.
type Registry struct {
	mu     sync.RWMutex
	ints   map[string]*Int
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ints:   make(map[string]*Int),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Int returns the named counter, creating it at zero on first use.
func (r *Registry) Int(name string) *Int {
	r.mu.RLock()
	i, ok := r.ints[name]
	r.mu.RUnlock()
	if ok {
		return i
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok = r.ints[name]; ok {
		return i
	}
	i = &Int{}
	r.ints[name] = i
	return i
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it empty on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Do calls fn for every metric — counters, gauges, and histograms —
// in sorted name order.
func (r *Registry) Do(fn func(name string, v Var)) {
	r.mu.RLock()
	snapshot := make(map[string]Var, len(r.ints)+len(r.gauges)+len(r.hists))
	for k, v := range r.ints {
		snapshot[k] = v
	}
	for k, v := range r.gauges {
		snapshot[k] = v
	}
	for k, v := range r.hists {
		snapshot[k] = v
	}
	r.mu.RUnlock()
	for _, k := range sortedKeys(snapshot) {
		fn(k, snapshot[k])
	}
}

// DoNumeric calls fn for every scalar reading the registry can
// produce, in sorted name order: counters and gauges by value, and
// each histogram flattened into "<name>.count", "<name>.p50",
// "<name>.p95", "<name>.p99", and "<name>.max". This is the registry
// view the STATS wire opcode ships: flat, typed, and append-only.
func (r *Registry) DoNumeric(fn func(name string, value int64)) {
	r.mu.RLock()
	ints := make(map[string]*Int, len(r.ints))
	for k, v := range r.ints {
		ints[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	flat := make(map[string]int64, len(ints)+len(gauges)+5*len(hists))
	for k, v := range ints {
		flat[k] = v.Value()
	}
	for k, v := range gauges {
		flat[k] = v.Value()
	}
	for k, h := range hists {
		s := h.Snapshot()
		flat[k+".count"] = s.Count
		flat[k+".p50"] = s.Quantile(0.50)
		flat[k+".p95"] = s.Quantile(0.95)
		flat[k+".p99"] = s.Quantile(0.99)
		flat[k+".max"] = s.Max
	}
	for _, k := range sortedKeys(flat) {
		fn(k, flat[k])
	}
}

// String implements Var (and expvar.Var) as a JSON object with
// sorted keys, so publishing the whole registry as one expvar works.
// Counters and gauges render as numbers, histograms as summary
// objects.
func (r *Registry) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	r.Do(func(name string, v Var) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Quote(name))
		b.WriteString(": ")
		b.WriteString(v.String())
	})
	b.WriteByte('}')
	return b.String()
}

// AddSpan merges a span subtree's counter totals into the registry
// under "prefix.counter" names, and bumps "prefix.count" by one. Nil
// spans merge nothing (the count still bumps: the operation ran, just
// untraced).
func (r *Registry) AddSpan(prefix string, s *Span) {
	r.Int(prefix + ".count").Add(1)
	if s == nil {
		return
	}
	for c := Counter(0); c < NumCounters; c++ {
		if v := s.Total(c); v != 0 {
			r.Int(prefix + "." + c.String()).Add(v)
		}
	}
}

package obs

// TraceStore is the in-memory ring buffer behind /debug/traces: the
// last N interesting requests (slow, sampled, or client-traced), each
// with its trace ID, outcome, and — when the request ran traced — its
// full span tree. It answers "what did the slow requests actually do"
// without log archaeology: curl the admin endpoint, grep the trace ID
// from the store against the fleet's structured logs.

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Trace-record kinds: why a request was recorded.
const (
	// TraceKindTraced marks a request the client explicitly traced
	// (FlagTrace set).
	TraceKindTraced = "traced"
	// TraceKindSlow marks a request at/above the slow-query threshold.
	TraceKindSlow = "slow"
	// TraceKindSampled marks a request caught by the every-Nth sample.
	TraceKindSampled = "sampled"
)

// TraceRecord is one stored request trace.
type TraceRecord struct {
	TraceID uint64
	Op      string
	Start   time.Time
	Dur     time.Duration
	Status  string // "ok" or the wire error code name
	Kind    string // TraceKind*
	Root    *Span  // nil when the request ran untraced
}

// TraceStore is a fixed-capacity ring of TraceRecords, newest
// overwriting oldest. All methods are safe for concurrent use and
// nil-tolerant, so an unconfigured store costs one nil check.
type TraceStore struct {
	mu    sync.Mutex
	buf   []TraceRecord
	next  int
	total uint64
}

// NewTraceStore returns a store keeping the last n records; n <= 0
// picks the default capacity (64).
func NewTraceStore(n int) *TraceStore {
	if n <= 0 {
		n = 64
	}
	return &TraceStore{buf: make([]TraceRecord, 0, n)}
}

// Add records one request, evicting the oldest once full. No-op on a
// nil store.
func (ts *TraceStore) Add(rec TraceRecord) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	if len(ts.buf) < cap(ts.buf) {
		ts.buf = append(ts.buf, rec)
	} else {
		ts.buf[ts.next] = rec
		ts.next = (ts.next + 1) % cap(ts.buf)
	}
	ts.total++
	ts.mu.Unlock()
}

// Len returns the number of records currently held.
func (ts *TraceStore) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.buf)
}

// Total returns how many records have ever been added (including
// evicted ones).
func (ts *TraceStore) Total() uint64 {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.total
}

// Snapshot returns the held records newest-first.
func (ts *TraceStore) Snapshot() []TraceRecord {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceRecord, 0, len(ts.buf))
	// Records live at next-1, next-2, ... wrapping; when the ring is
	// not yet full, next is 0 and the newest is the last appended.
	for i := 0; i < len(ts.buf); i++ {
		idx := ts.next - 1 - i
		for idx < 0 {
			idx += len(ts.buf)
		}
		out = append(out, ts.buf[idx])
	}
	return out
}

// traceJSON is the /debug/traces JSON shape for one record. The span
// tree ships rendered (the same text Render(true) produces) rather
// than as a nested object: it is a human debugging artifact, and the
// rendered form is what the logs and zquery print, so the three
// surfaces stay grep-compatible.
type traceJSON struct {
	TraceID string `json:"trace_id"`
	Op      string `json:"op"`
	Start   string `json:"start"`
	DurNS   int64  `json:"dur_ns"`
	Status  string `json:"status"`
	Kind    string `json:"kind"`
	Trace   string `json:"trace,omitempty"`
}

// WriteJSON renders the store newest-first as one JSON document:
// {"total": N, "traces": [...]}.
func (ts *TraceStore) WriteJSON(w io.Writer) error {
	recs := ts.Snapshot()
	doc := struct {
		Total  uint64      `json:"total"`
		Traces []traceJSON `json:"traces"`
	}{Total: ts.Total(), Traces: make([]traceJSON, 0, len(recs))}
	for _, r := range recs {
		doc.Traces = append(doc.Traces, traceJSON{
			TraceID: TraceIDString(r.TraceID),
			Op:      r.Op,
			Start:   r.Start.UTC().Format(time.RFC3339Nano),
			DurNS:   int64(r.Dur),
			Status:  r.Status,
			Kind:    r.Kind,
			Trace:   r.Root.Render(true),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteText renders the store newest-first as indented text, one
// header line per record followed by its span tree.
func (ts *TraceStore) WriteText(w io.Writer) error {
	for _, r := range ts.Snapshot() {
		_, err := fmt.Fprintf(w, "trace_id=%s op=%s kind=%s status=%s dur=%v start=%s\n",
			TraceIDString(r.TraceID), r.Op, r.Kind, r.Status, r.Dur,
			r.Start.UTC().Format(time.RFC3339Nano))
		if err != nil {
			return err
		}
		if tree := r.Root.Render(true); tree != "" {
			for _, line := range splitLines(tree) {
				if _, err := fmt.Fprintf(w, "  %s\n", line); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// splitLines splits rendered span text into its non-empty lines.
func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// Package overlay implements polygon overlay on element sequences
// (Section 6): union, intersection and difference of decomposed
// spatial objects computed directly by merging their z-ordered
// element sequences, never touching individual pixels. Costs are
// proportional to the number of elements — i.e. to object boundary
// length — while the pixel-at-a-time grid algorithm the paper
// contrasts with pays for object area. GridRasterize provides that
// baseline for the Table S9 benchmark.
package overlay

import (
	"fmt"

	"probe/internal/decompose"
	"probe/internal/zorder"
)

// checkRegion validates that a sequence is sorted and pairwise
// disjoint: the canonical form produced by decomposition.
func checkRegion(elems []zorder.Element) error {
	for i := 1; i < len(elems); i++ {
		if elems[i-1].Compare(elems[i]) >= 0 {
			return fmt.Errorf("overlay: elements out of z order at %d", i)
		}
		if !elems[i-1].Disjoint(elems[i]) {
			return fmt.Errorf("overlay: overlapping elements at %d", i)
		}
	}
	return nil
}

// Intersect returns the region covered by both input regions, as a
// sorted disjoint element sequence. Each input must be sorted and
// disjoint (as produced by decompose). Time O(len(a)+len(b)).
func Intersect(a, b []zorder.Element) ([]zorder.Element, error) {
	if err := checkRegion(a); err != nil {
		return nil, err
	}
	if err := checkRegion(b); err != nil {
		return nil, err
	}
	var out []zorder.Element
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Contains(b[j]):
			out = append(out, b[j])
			j++
		case b[j].Contains(a[i]):
			out = append(out, a[i])
			i++
		case a[i].Precedes(b[j]):
			i++
		default:
			j++
		}
	}
	return out, nil
}

// Union returns the region covered by either input region, condensed
// to its minimal element sequence.
func Union(a, b []zorder.Element) ([]zorder.Element, error) {
	if err := checkRegion(a); err != nil {
		return nil, err
	}
	if err := checkRegion(b); err != nil {
		return nil, err
	}
	// Merge in z order (containers sort before their contents), then
	// drop elements covered by an earlier one; Condense merges
	// completed sibling pairs.
	merged := make([]zorder.Element, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		if j >= len(b) || (i < len(a) && a[i].Compare(b[j]) <= 0) {
			merged = append(merged, a[i])
			i++
		} else {
			merged = append(merged, b[j])
			j++
		}
	}
	var out []zorder.Element
	for _, e := range merged {
		if len(out) > 0 && out[len(out)-1].Contains(e) {
			continue
		}
		out = append(out, e)
	}
	return decompose.Condense(out), nil
}

// Subtract returns the region covered by a but not b.
func Subtract(a, b []zorder.Element) ([]zorder.Element, error) {
	if err := checkRegion(a); err != nil {
		return nil, err
	}
	if err := checkRegion(b); err != nil {
		return nil, err
	}
	var out []zorder.Element
	j := 0
	for _, e := range a {
		// Skip b elements entirely before e.
		for j < len(b) && b[j].MaxZ(zorder.MaxBits) < e.MinZ() {
			j++
		}
		// Is e inside some b element?
		if j < len(b) && b[j].Contains(e) {
			continue
		}
		// Collect the b elements contained in e (they are consecutive).
		k := j
		var holes []zorder.Element
		for k < len(b) && e.Contains(b[k]) {
			holes = append(holes, b[k])
			k++
		}
		if len(holes) == 0 {
			out = append(out, e)
			continue
		}
		out = appendSubtract(out, e, holes)
	}
	return out, nil
}

// appendSubtract emits e minus the given holes (all strictly
// contained in e, sorted) by splitting e recursively.
func appendSubtract(out []zorder.Element, e zorder.Element, holes []zorder.Element) []zorder.Element {
	if len(holes) == 0 {
		out = append(out, e)
		return out
	}
	if holes[0] == e {
		return out // fully covered
	}
	c0, c1 := e.Child(0), e.Child(1)
	split := 0
	for split < len(holes) && c0.Contains(holes[split]) {
		split++
	}
	out = appendSubtract(out, c0, holes[:split])
	return appendSubtract(out, c1, holes[split:])
}

// XOR returns the symmetric difference of the two regions.
func XOR(a, b []zorder.Element) ([]zorder.Element, error) {
	ab, err := Subtract(a, b)
	if err != nil {
		return nil, err
	}
	ba, err := Subtract(b, a)
	if err != nil {
		return nil, err
	}
	return Union(ab, ba)
}

// Area returns the number of pixels of grid g covered by the region.
func Area(g zorder.Grid, elems []zorder.Element) uint64 {
	return decompose.PixelCount(g, elems)
}

// Covers reports whether the region covers the pixel with the given
// full-resolution z key, by binary search. The region must be sorted
// and disjoint.
func Covers(g zorder.Grid, elems []zorder.Element, z uint64) bool {
	p := zorder.Element{Bits: z, Len: uint8(g.TotalBits())}
	lo, hi := 0, len(elems)
	for lo < hi {
		mid := (lo + hi) / 2
		if elems[mid].MinZ() <= z {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo > 0 && elems[lo-1].Contains(p)
}

// GridRasterize expands a region into an explicit bitmap, the
// representation whose per-pixel costs the AG algorithms avoid. It is
// the baseline for the overlay benchmark; it requires a 2-d grid
// small enough to materialize.
func GridRasterize(g zorder.Grid, elems []zorder.Element) ([]bool, error) {
	if g.Dims() != 2 {
		return nil, fmt.Errorf("overlay: rasterize requires a 2-d grid")
	}
	if g.TotalBits() > 28 {
		return nil, fmt.Errorf("overlay: grid too large to rasterize (%d bits)", g.TotalBits())
	}
	side := int(g.Side())
	bm := make([]bool, side*side)
	for _, e := range elems {
		lo, hi := g.Region(e)
		for y := int(lo[1]); y <= int(hi[1]); y++ {
			row := bm[y*side : (y+1)*side]
			for x := int(lo[0]); x <= int(hi[0]); x++ {
				row[x] = true
			}
		}
	}
	return bm, nil
}

// GridIntersect is the pixel-at-a-time overlay baseline: rasterize
// both regions and AND them, returning the number of pixels in the
// intersection. Its cost is proportional to the area of the space.
func GridIntersect(g zorder.Grid, a, b []zorder.Element) (uint64, error) {
	ba, err := GridRasterize(g, a)
	if err != nil {
		return 0, err
	}
	bb, err := GridRasterize(g, b)
	if err != nil {
		return 0, err
	}
	var n uint64
	for i := range ba {
		if ba[i] && bb[i] {
			n++
		}
	}
	return n, nil
}

// ContainsRegion reports whether region a covers every pixel of
// region b ("Containment implies overlap but not vice versa",
// Section 6). Both inputs must be sorted and disjoint. Time
// O(len(a)+len(b)).
func ContainsRegion(a, b []zorder.Element) (bool, error) {
	if err := checkRegion(a); err != nil {
		return false, err
	}
	if err := checkRegion(b); err != nil {
		return false, err
	}
	i := 0
	for _, e := range b {
		// Elements of a wholly before e cannot cover it.
		for i < len(a) && a[i].MaxZ(zorder.MaxBits) < e.MinZ() {
			i++
		}
		if i >= len(a) || !a[i].Contains(e) {
			// e might still be covered by several smaller a-elements
			// only if those tile e exactly; recurse on e's halves.
			if !coveredBy(a[i:], e) {
				return false, nil
			}
		}
	}
	return true, nil
}

// coveredBy reports whether element e is fully covered by the sorted
// disjoint elements of a (which may subdivide e).
func coveredBy(a []zorder.Element, e zorder.Element) bool {
	if len(a) == 0 {
		return false
	}
	if a[0].Contains(e) {
		return true
	}
	if int(e.Len) >= zorder.MaxBits {
		return false
	}
	c0, c1 := e.Child(0), e.Child(1)
	// Partition a's elements under e between the two halves.
	split := 0
	for split < len(a) && c0.MaxZ(zorder.MaxBits) >= a[split].MinZ() {
		split++
	}
	return coveredBy(a[:split], c0) && coveredBy(a[split:], c1)
}

package overlay

import (
	"math/rand"
	"testing"

	"probe/internal/decompose"
	"probe/internal/geom"
	"probe/internal/zorder"
)

// refRegion is a brute-force pixel-set model of a region.
func refRegion(g zorder.Grid, elems []zorder.Element) map[uint64]bool {
	set := make(map[uint64]bool)
	for _, e := range elems {
		lo, hi := g.Region(e)
		for x := lo[0]; ; x++ {
			for y := lo[1]; ; y++ {
				set[g.ShuffleKey([]uint32{x, y})] = true
				if y == hi[1] {
					break
				}
			}
			if x == hi[0] {
				break
			}
		}
	}
	return set
}

func checkMatchesRef(t *testing.T, g zorder.Grid, got []zorder.Element, want map[uint64]bool) {
	t.Helper()
	if err := checkRegion(got); err != nil {
		t.Fatalf("result malformed: %v", err)
	}
	gotSet := refRegion(g, got)
	if len(gotSet) != len(want) {
		t.Fatalf("result covers %d pixels, want %d", len(gotSet), len(want))
	}
	for z := range want {
		if !gotSet[z] {
			t.Fatalf("missing pixel %x", z)
		}
	}
}

func randRegion(t *testing.T, g zorder.Grid, rng *rand.Rand) []zorder.Element {
	t.Helper()
	// Union of a few random boxes gives irregular regions.
	var acc []zorder.Element
	for n := 0; n < 3; n++ {
		a := uint32(rng.Uint64() % g.Side())
		b := uint32(rng.Uint64() % g.Side())
		c := uint32(rng.Uint64() % g.Side())
		d := uint32(rng.Uint64() % g.Side())
		if a > b {
			a, b = b, a
		}
		if c > d {
			c, d = d, c
		}
		box := decompose.Box(g, geom.Box2(a, b, c, d))
		var err error
		acc, err = Union(acc, box)
		if err != nil {
			t.Fatal(err)
		}
	}
	return acc
}

func setOp(a, b map[uint64]bool, op string) map[uint64]bool {
	out := make(map[uint64]bool)
	switch op {
	case "and":
		for z := range a {
			if b[z] {
				out[z] = true
			}
		}
	case "or":
		for z := range a {
			out[z] = true
		}
		for z := range b {
			out[z] = true
		}
	case "sub":
		for z := range a {
			if !b[z] {
				out[z] = true
			}
		}
	case "xor":
		for z := range a {
			if !b[z] {
				out[z] = true
			}
		}
		for z := range b {
			if !a[z] {
				out[z] = true
			}
		}
	}
	return out
}

// TestSetOperationsAgainstPixelModel: every overlay operation matches
// the brute-force pixel-set computation on random regions.
func TestSetOperationsAgainstPixelModel(t *testing.T) {
	g := zorder.MustGrid(2, 5)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		ra := randRegion(t, g, rng)
		rb := randRegion(t, g, rng)
		pa, pb := refRegion(g, ra), refRegion(g, rb)

		got, err := Intersect(ra, rb)
		if err != nil {
			t.Fatal(err)
		}
		checkMatchesRef(t, g, got, setOp(pa, pb, "and"))

		got, err = Union(ra, rb)
		if err != nil {
			t.Fatal(err)
		}
		checkMatchesRef(t, g, got, setOp(pa, pb, "or"))

		got, err = Subtract(ra, rb)
		if err != nil {
			t.Fatal(err)
		}
		checkMatchesRef(t, g, got, setOp(pa, pb, "sub"))

		got, err = XOR(ra, rb)
		if err != nil {
			t.Fatal(err)
		}
		checkMatchesRef(t, g, got, setOp(pa, pb, "xor"))
	}
}

func TestIntersectDisjointRegions(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	a := decompose.Box(g, geom.Box2(0, 3, 0, 3))
	b := decompose.Box(g, geom.Box2(8, 11, 8, 11))
	got, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("disjoint intersection = %v", got)
	}
}

func TestSubtractSelf(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	a := decompose.Box(g, geom.Box2(3, 9, 2, 13))
	got, err := Subtract(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("a - a = %v", got)
	}
}

func TestUnionSelfIsIdentity(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	a := decompose.Box(g, geom.Box2(3, 9, 2, 13))
	got, err := Union(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if Area(g, got) != Area(g, a) {
		t.Errorf("a OR a has area %d, want %d", Area(g, got), Area(g, a))
	}
}

func TestEmptyOperands(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	a := decompose.Box(g, geom.Box2(0, 5, 0, 5))
	if got, _ := Intersect(a, nil); len(got) != 0 {
		t.Errorf("a AND empty = %v", got)
	}
	if got, _ := Union(a, nil); Area(g, got) != Area(g, a) {
		t.Errorf("a OR empty wrong")
	}
	if got, _ := Subtract(nil, a); len(got) != 0 {
		t.Errorf("empty - a = %v", got)
	}
	if got, _ := Subtract(a, nil); Area(g, got) != Area(g, a) {
		t.Errorf("a - empty wrong")
	}
}

func TestRejectsMalformedInput(t *testing.T) {
	bad := []zorder.Element{
		zorder.MustParseElement("01"),
		zorder.MustParseElement("00"),
	}
	if _, err := Intersect(bad, nil); err == nil {
		t.Errorf("unsorted input accepted by Intersect")
	}
	if _, err := Union(nil, bad); err == nil {
		t.Errorf("unsorted input accepted by Union")
	}
	if _, err := Subtract(bad, nil); err == nil {
		t.Errorf("unsorted input accepted by Subtract")
	}
	overlapping := []zorder.Element{
		zorder.MustParseElement("0"),
		zorder.MustParseElement("01"),
	}
	if _, err := Intersect(overlapping, nil); err == nil {
		t.Errorf("overlapping input accepted")
	}
}

func TestCovers(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	box := geom.Box2(3, 9, 2, 13)
	region := decompose.Box(g, box)
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			want := box.ContainsPoint([]uint32{x, y})
			if got := Covers(g, region, g.ShuffleKey([]uint32{x, y})); got != want {
				t.Fatalf("Covers(%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
	if Covers(g, nil, 0) {
		t.Errorf("empty region covers nothing")
	}
}

func TestGridRasterizeAndIntersect(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	a := decompose.Box(g, geom.Box2(0, 7, 0, 7))
	b := decompose.Box(g, geom.Box2(4, 11, 4, 11))
	n, err := GridIntersect(g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 { // 4x4 overlap
		t.Errorf("grid intersect = %d, want 16", n)
	}
	ag, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if Area(g, ag) != n {
		t.Errorf("AG and grid algorithms disagree: %d vs %d", Area(g, ag), n)
	}
}

func TestGridRasterizeErrors(t *testing.T) {
	if _, err := GridRasterize(zorder.MustGrid(3, 4), nil); err == nil {
		t.Errorf("3d rasterize accepted")
	}
	if _, err := GridRasterize(zorder.MustGrid(2, 16), nil); err == nil {
		t.Errorf("huge rasterize accepted")
	}
}

// TestElementCountTracksBoundary: the motivating property of AG
// overlay — element counts scale with boundary, not area. Doubling
// the resolution of the same geometric object roughly doubles its
// element count (perimeter) rather than quadrupling it (area).
func TestElementCountTracksBoundary(t *testing.T) {
	counts := make(map[int]int)
	for _, d := range []int{5, 6, 7, 8} {
		g := zorder.MustGrid(2, d)
		disk, _ := geom.NewDisk([]float64{float64(g.Side()) / 2, float64(g.Side()) / 2}, float64(g.Side())/3)
		elems, err := decompose.Object(g, disk, decompose.Options{})
		if err != nil {
			t.Fatal(err)
		}
		counts[d] = len(elems)
	}
	for d := 6; d <= 8; d++ {
		growth := float64(counts[d]) / float64(counts[d-1])
		if growth > 3 {
			t.Errorf("element count grew %.1fx from d=%d to d=%d (area-like, not boundary-like)",
				growth, d-1, d)
		}
	}
}

func TestContainsRegion(t *testing.T) {
	g := zorder.MustGrid(2, 5)
	big := decompose.Box(g, geom.Box2(2, 20, 2, 20))
	small := decompose.Box(g, geom.Box2(5, 10, 5, 10))
	if ok, err := ContainsRegion(big, small); err != nil || !ok {
		t.Errorf("big should contain small: %v %v", ok, err)
	}
	if ok, _ := ContainsRegion(small, big); ok {
		t.Errorf("small cannot contain big")
	}
	partial := decompose.Box(g, geom.Box2(15, 25, 15, 25))
	if ok, _ := ContainsRegion(big, partial); ok {
		t.Errorf("partial overlap is not containment")
	}
	// A region always contains itself and the empty region.
	if ok, _ := ContainsRegion(big, big); !ok {
		t.Errorf("region should contain itself")
	}
	if ok, _ := ContainsRegion(big, nil); !ok {
		t.Errorf("region should contain empty region")
	}
	if ok, _ := ContainsRegion(nil, small); ok {
		t.Errorf("empty region contains nothing")
	}
	if _, err := ContainsRegion([]zorder.Element{
		zorder.MustParseElement("01"), zorder.MustParseElement("00"),
	}, nil); err == nil {
		t.Errorf("unsorted input accepted")
	}
}

// TestContainsRegionTiledCover: containment must hold when the
// container's elements subdivide the contained element.
func TestContainsRegionTiledCover(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	// a = two L-shaped unions whose union covers the quadrant 0..7 x 0..7
	left := decompose.Box(g, geom.Box2(0, 3, 0, 7))
	right := decompose.Box(g, geom.Box2(4, 7, 0, 7))
	a, err := Union(left, right)
	if err != nil {
		t.Fatal(err)
	}
	// Shatter a into pixels so containment requires tiling.
	var pixels []zorder.Element
	for _, e := range a {
		lo, hi := g.Region(e)
		for x := lo[0]; x <= hi[0]; x++ {
			for y := lo[1]; y <= hi[1]; y++ {
				pixels = append(pixels, g.Shuffle([]uint32{x, y}))
			}
		}
	}
	sortElements(pixels)
	quadrant := decompose.Box(g, geom.Box2(0, 7, 0, 7))
	if ok, err := ContainsRegion(pixels, quadrant); err != nil || !ok {
		t.Errorf("pixel tiling should contain the quadrant: %v %v", ok, err)
	}
	// Remove one pixel: no longer contained.
	missing := pixels[:len(pixels)-1]
	if ok, _ := ContainsRegion(missing, quadrant); ok {
		t.Errorf("incomplete tiling reported as containing")
	}
}

func sortElements(elems []zorder.Element) {
	for i := 1; i < len(elems); i++ {
		for j := i; j > 0 && elems[j].Compare(elems[j-1]) < 0; j-- {
			elems[j], elems[j-1] = elems[j-1], elems[j]
		}
	}
}

// TestContainsRegionRandom cross-checks against the pixel model.
func TestContainsRegionRandom(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		ra := randRegion(t, g, rng)
		rb := randRegion(t, g, rng)
		got, err := ContainsRegion(ra, rb)
		if err != nil {
			t.Fatal(err)
		}
		pa, pb := refRegion(g, ra), refRegion(g, rb)
		want := true
		for z := range pb {
			if !pa[z] {
				want = false
				break
			}
		}
		if got != want {
			t.Fatalf("trial %d: ContainsRegion = %v, want %v", trial, got, want)
		}
	}
}

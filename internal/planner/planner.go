// Package planner implements set-at-a-time query planning over
// spatial relations: the "optimizations of set-at-a-time operators
// [that] must be done by the DBMS" (Section 2). Given the block-model
// cost estimates of Section 5, the planner chooses between access
// paths — a z-ordered index scan versus a sequential heap scan for
// range queries, and merge join versus index nested-loop join for
// spatial joins — and exposes EXPLAIN-style descriptions of its
// choices.
package planner

import (
	"fmt"
	"sort"

	"probe/internal/analysis"
	"probe/internal/core"
	"probe/internal/decompose"
	"probe/internal/geom"
	"probe/internal/obs"
	"probe/internal/zorder"
)

// Table is one spatial relation known to the planner: a set of
// points with an optional z-ordered index.
type Table struct {
	Name  string
	Index *core.Index  // nil when the relation has no spatial index
	Heap  []geom.Point // the base data, always present
	// HeapPointsPerPage models the heap's packing for scan costing;
	// zero defaults to the index leaf capacity or 20.
	HeapPointsPerPage int
	// Stats holds ANALYZE-collected statistics; nil means the planner
	// falls back to the uniform block model.
	Stats *TableStats
}

func (t *Table) pointsPerPage() int {
	if t.HeapPointsPerPage > 0 {
		return t.HeapPointsPerPage
	}
	if t.Index != nil {
		return t.Index.Tree().LeafCapacity()
	}
	return 20
}

// heapPages is the sequential-scan cost in pages. When the table has
// no materialized heap (index-only tables), the index's point count
// stands in for the row count.
func (t *Table) heapPages() float64 {
	rows := len(t.Heap)
	if rows == 0 && t.Index != nil {
		rows = t.Index.Len()
	}
	pp := t.pointsPerPage()
	return float64((rows + pp - 1) / pp)
}

// Config tunes the planner.
type Config struct {
	// RandomAccessPenalty scales index-scan page estimates to account
	// for random I/O being slower than sequential (the classic
	// optimizer fudge factor). Default 1.5.
	RandomAccessPenalty float64
	// Strategy used by index scans. Default MergeLazy.
	Strategy core.Strategy
	// Parallelism is the degree of parallelism for merge spatial
	// joins: > 1 executes the element-relation merge with that many
	// workers over z-prefix partitions (see docs/parallelism.md).
	// 0 or 1 keeps the join sequential.
	Parallelism int
}

func (c Config) penalty() float64 {
	if c.RandomAccessPenalty <= 0 {
		return 1.5
	}
	return c.RandomAccessPenalty
}

// Plan is an executable access path with its cost estimate.
type Plan struct {
	// Description is the EXPLAIN line, e.g.
	// "index scan on points (est. 12.3 pages)".
	Description string
	// Access names the chosen access path: "index-scan" or
	// "seq-scan". EXPLAIN ANALYZE uses it as the operator name.
	Access string
	// EstimatedPages is the block-model cost estimate.
	EstimatedPages float64
	run            func(sp *obs.Span) ([]geom.Point, core.SearchStats, error)
}

// Execute runs the plan.
func (p *Plan) Execute() ([]geom.Point, core.SearchStats, error) { return p.run(nil) }

// ExecuteTraced runs the plan with per-operator attribution on sp
// (nil behaves exactly like Execute).
func (p *Plan) ExecuteTraced(sp *obs.Span) ([]geom.Point, core.SearchStats, error) {
	return p.run(sp)
}

// PlanRange chooses an access path for a range query on the table.
func PlanRange(t *Table, box geom.Box, cfg Config) (*Plan, error) {
	if len(t.Heap) == 0 && t.Index == nil {
		return nil, fmt.Errorf("planner: table %q has no data", t.Name)
	}
	scan := heapScanPlan(t, box)
	if t.Index == nil {
		return scan, nil
	}
	var est float64
	how := "block model"
	if t.Stats != nil {
		e, err := estimatePagesFromStats(t, box, t.Stats)
		if err != nil {
			return nil, err
		}
		est = e * cfg.penalty()
		how = "statistics"
	} else {
		model, err := analysis.NewModel(t.Index.Grid(), t.Index.Tree().LeafPages())
		if err != nil {
			return nil, err
		}
		est = model.PredictPages(box) * cfg.penalty()
	}
	idx := &Plan{
		Description:    fmt.Sprintf("index scan on %s %v (est. %.1f pages via %s)", t.Name, box, est, how),
		Access:         "index-scan",
		EstimatedPages: est,
		run: func(sp *obs.Span) ([]geom.Point, core.SearchStats, error) {
			return t.Index.RangeSearchTraced(box, cfg.Strategy, sp)
		},
	}
	if idx.EstimatedPages <= scan.EstimatedPages {
		return idx, nil
	}
	return scan, nil
}

func heapScanPlan(t *Table, box geom.Box) *Plan {
	pages := t.heapPages()
	return &Plan{
		Description:    fmt.Sprintf("seq scan on %s filter %v (est. %.1f pages)", t.Name, box, pages),
		Access:         "seq-scan",
		EstimatedPages: pages,
		run: func(sp *obs.Span) ([]geom.Point, core.SearchStats, error) {
			var out []geom.Point
			for _, p := range t.Heap {
				if box.ContainsPoint(p.Coords) {
					out = append(out, p)
				}
			}
			sortByZ(t, out)
			stats := core.SearchStats{
				DataPages: int(t.heapPages()),
				Results:   len(out),
			}
			sp.Add(obs.DataPages, int64(stats.DataPages))
			sp.Add(obs.Results, int64(stats.Results))
			return out, stats, nil
		},
	}
}

// sortByZ orders heap-scan output like an index scan so plans are
// interchangeable.
func sortByZ(t *Table, pts []geom.Point) {
	if t.Index == nil {
		return
	}
	g := t.Index.Grid()
	sort.Slice(pts, func(i, j int) bool {
		zi, zj := g.ShuffleKey(pts[i].Coords), g.ShuffleKey(pts[j].Coords)
		if zi != zj {
			return zi < zj
		}
		return pts[i].ID < pts[j].ID
	})
}

// RegionJoinResult pairs a region id with a matching point.
type RegionJoinResult struct {
	RegionID uint64
	Point    geom.Point
}

// Region is one row of a region relation to be joined against a
// point table.
type Region struct {
	ID  uint64
	Box geom.Box
}

// PlanRegionJoin chooses between the two spatial-join strategies of
// Section 4 for joining a set of regions against an indexed point
// table:
//
//   - merge join: decompose every region, sort the element relation,
//     and merge it against the full point sequence (cost ~ one pass
//     over all data pages);
//   - index nested loop: one indexed range query per region (cost ~
//     the sum of per-region block-model estimates, with the random
//     access penalty).
type JoinPlan struct {
	Description string
	// Access names the chosen join method: "index-nested-loop-join"
	// or "merge-join". EXPLAIN ANALYZE uses it as the operator name.
	Access         string
	EstimatedPages float64
	run            func(sp *obs.Span) ([]RegionJoinResult, error)
}

// Execute runs the join plan.
func (p *JoinPlan) Execute() ([]RegionJoinResult, error) { return p.run(nil) }

// ExecuteTraced runs the join plan with per-operator attribution on
// sp (nil behaves exactly like Execute).
func (p *JoinPlan) ExecuteTraced(sp *obs.Span) ([]RegionJoinResult, error) {
	return p.run(sp)
}

// PlanRegionJoin builds the chosen plan.
func PlanRegionJoin(t *Table, regions []Region, cfg Config) (*JoinPlan, error) {
	if t.Index == nil {
		return nil, fmt.Errorf("planner: region join requires an index on %q", t.Name)
	}
	model, err := analysis.NewModel(t.Index.Grid(), t.Index.Tree().LeafPages())
	if err != nil {
		return nil, err
	}
	var nlCost float64
	for _, r := range regions {
		nlCost += model.PredictPages(r.Box)
	}
	nlCost *= cfg.penalty()
	mergeCost := float64(t.Index.Tree().LeafPages())

	if nlCost <= mergeCost {
		return &JoinPlan{
			Description: fmt.Sprintf(
				"index nested loop join: %d regions x index scan on %s (est. %.1f pages)",
				len(regions), t.Name, nlCost),
			Access:         "index-nested-loop-join",
			EstimatedPages: nlCost,
			run:            func(sp *obs.Span) ([]RegionJoinResult, error) { return nestedLoopJoin(t, regions, cfg, sp) },
		}, nil
	}
	how := "sequential"
	if cfg.Parallelism > 1 {
		how = fmt.Sprintf("parallel x%d", cfg.Parallelism)
	}
	return &JoinPlan{
		Description: fmt.Sprintf(
			"merge spatial join (%s): decompose %d regions, one pass over %s (est. %.1f pages)",
			how, len(regions), t.Name, mergeCost),
		Access:         "merge-join",
		EstimatedPages: mergeCost,
		run:            func(sp *obs.Span) ([]RegionJoinResult, error) { return mergeJoin(t, regions, cfg, sp) },
	}, nil
}

func nestedLoopJoin(t *Table, regions []Region, cfg Config, sp *obs.Span) ([]RegionJoinResult, error) {
	var out []RegionJoinResult
	for _, r := range regions {
		pts, _, err := t.Index.RangeSearchTraced(r.Box, cfg.Strategy, sp)
		if err != nil {
			return nil, err
		}
		for _, p := range pts {
			out = append(out, RegionJoinResult{RegionID: r.ID, Point: p})
		}
	}
	sortResults(out)
	return out, nil
}

func mergeJoin(t *Table, regions []Region, cfg Config, sp *obs.Span) ([]RegionJoinResult, error) {
	g := t.Index.Grid()
	// Build the region element relation.
	var items []core.Item
	byID := make(map[uint64]geom.Box, len(regions))
	for _, r := range regions {
		if _, dup := byID[r.ID]; dup {
			return nil, fmt.Errorf("planner: duplicate region id %d", r.ID)
		}
		byID[r.ID] = r.Box
		for _, e := range decompose.Box(g, r.Box) {
			items = append(items, core.Item{Elem: e, ID: r.ID})
		}
	}
	core.SortItems(items)
	// One pass over the point sequence.
	var pItems []core.Item
	c := t.Index.Tree().Cursor()
	pointByID := make(map[uint64]geom.Point, t.Index.Len())
	for ok, err := c.First(); ok; ok, err = c.Next() {
		if err != nil {
			return nil, err
		}
		k := c.Key()
		pItems = append(pItems, core.Item{
			Elem: zorder.Element{Bits: k.Hi, Len: uint8(g.TotalBits())},
			ID:   k.Lo,
		})
		pointByID[k.Lo] = geom.Point{ID: k.Lo, Coords: g.UnshuffleKey(k.Hi)}
	}
	var pairs []core.Pair
	var err error
	if cfg.Parallelism > 1 {
		pairs, err = core.SpatialJoinParallelTraced(pItems, items, core.ParallelJoinConfig{Workers: cfg.Parallelism}, sp)
	} else {
		pairs, err = core.SpatialJoinTraced(pItems, items, sp)
	}
	if err != nil {
		return nil, err
	}
	// The merge multiply-reports an overlap per element pair (and the
	// parallel form also per shard); project to distinct pairs before
	// materializing results.
	pairs = core.DedupPairs(pairs)
	var out []RegionJoinResult
	for _, pr := range pairs {
		out = append(out, RegionJoinResult{RegionID: pr.B, Point: pointByID[pr.A]})
	}
	sortResults(out)
	return out, nil
}

func sortResults(out []RegionJoinResult) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].RegionID != out[j].RegionID {
			return out[i].RegionID < out[j].RegionID
		}
		return out[i].Point.ID < out[j].Point.ID
	})
}

package planner

import (
	"sort"
	"strings"
	"testing"

	"probe/internal/core"
	"probe/internal/disk"
	"probe/internal/geom"
	"probe/internal/workload"
	"probe/internal/zorder"
)

func newTable(t *testing.T, g zorder.Grid, n int, seed int64) *Table {
	t.Helper()
	pts := workload.Uniform(g, n, seed)
	pool := disk.MustPool(disk.MustMemStore(1024), 256, disk.LRU)
	ix, err := core.NewIndexBulk(pool, g, core.IndexConfig{LeafCapacity: 20}, pts, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &Table{Name: "points", Index: ix, Heap: pts}
}

func TestPlanRangeChoosesIndexForSmallBoxes(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	tab := newTable(t, g, 5000, 1)
	plan, err := PlanRange(tab, geom.Box2(100, 160, 100, 160), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Description, "index scan") {
		t.Errorf("small box should use the index: %s", plan.Description)
	}
	if plan.EstimatedPages <= 0 || plan.EstimatedPages >= tab.heapPages() {
		t.Errorf("index estimate %v should beat scan %v", plan.EstimatedPages, tab.heapPages())
	}
}

func TestPlanRangeChoosesScanForHugeBoxes(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	tab := newTable(t, g, 5000, 2)
	plan, err := PlanRange(tab, geom.FullBox(g), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Description, "seq scan") {
		t.Errorf("whole-space query should use a scan: %s", plan.Description)
	}
}

func TestPlansReturnIdenticalResults(t *testing.T) {
	g := zorder.MustGrid(2, 9)
	tab := newTable(t, g, 3000, 3)
	boxes := []geom.Box{
		geom.Box2(10, 60, 10, 60),
		geom.Box2(0, 511, 0, 511),
		geom.Box2(100, 400, 0, 511),
	}
	for _, box := range boxes {
		// Force both plans and compare.
		idxPlan, err := PlanRange(tab, box, Config{RandomAccessPenalty: 0.0001})
		if err != nil {
			t.Fatal(err)
		}
		scanPlan := heapScanPlan(tab, box)
		a, _, err := idxPlan.Execute()
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := scanPlan.Execute()
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("box %v: plans disagree: %d vs %d", box, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("box %v: order differs at %d", box, i)
			}
		}
	}
}

func TestPlanRangeWithoutIndex(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	tab := &Table{Name: "heap", Heap: workload.Uniform(g, 500, 4)}
	plan, err := PlanRange(tab, geom.Box2(0, 50, 0, 50), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Description, "seq scan") {
		t.Errorf("index-less table must scan")
	}
	got, stats, err := plan.Execute()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range tab.Heap {
		if p.Coords[0] <= 50 && p.Coords[1] <= 50 {
			want++
		}
	}
	if len(got) != want || stats.Results != want {
		t.Errorf("scan found %d, want %d", len(got), want)
	}
}

func TestPlanRangeEmptyTable(t *testing.T) {
	if _, err := PlanRange(&Table{Name: "empty"}, geom.Box2(0, 1, 0, 1), Config{}); err == nil {
		t.Errorf("empty table accepted")
	}
}

func TestPlanRegionJoinChoices(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	tab := newTable(t, g, 5000, 5)

	// Few small regions: nested loop should win.
	small := []Region{
		{ID: 1, Box: geom.Box2(0, 30, 0, 30)},
		{ID: 2, Box: geom.Box2(500, 540, 500, 540)},
	}
	plan, err := PlanRegionJoin(tab, small, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Description, "nested loop") {
		t.Errorf("few small regions should use nested loop: %s", plan.Description)
	}

	// Many large regions: merge join should win.
	var large []Region
	for i := 0; i < 40; i++ {
		lo := uint32(i * 20)
		large = append(large, Region{ID: uint64(i + 1), Box: geom.Box2(lo, lo+500, 0, 800)})
	}
	plan, err = PlanRegionJoin(tab, large, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Description, "merge spatial join") {
		t.Errorf("many large regions should merge: %s", plan.Description)
	}
}

func TestRegionJoinPlansAgree(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	tab := newTable(t, g, 1500, 6)
	regions := []Region{
		{ID: 10, Box: geom.Box2(0, 100, 0, 100)},
		{ID: 20, Box: geom.Box2(50, 200, 50, 200)},
		{ID: 30, Box: geom.Box2(240, 255, 240, 255)},
	}
	nl, err := nestedLoopJoin(tab, regions, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := mergeJoin(tab, regions, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl) != len(mg) {
		t.Fatalf("join strategies disagree: %d vs %d results", len(nl), len(mg))
	}
	for i := range nl {
		if nl[i].RegionID != mg[i].RegionID || nl[i].Point.ID != mg[i].Point.ID {
			t.Fatalf("join results differ at %d: %+v vs %+v", i, nl[i], mg[i])
		}
	}
	// Cross-check against brute force.
	var brute []RegionJoinResult
	for _, r := range regions {
		for _, p := range tab.Heap {
			if r.Box.ContainsPoint(p.Coords) {
				brute = append(brute, RegionJoinResult{RegionID: r.ID, Point: p})
			}
		}
	}
	sort.Slice(brute, func(i, j int) bool {
		if brute[i].RegionID != brute[j].RegionID {
			return brute[i].RegionID < brute[j].RegionID
		}
		return brute[i].Point.ID < brute[j].Point.ID
	})
	if len(brute) != len(nl) {
		t.Fatalf("brute force disagrees: %d vs %d", len(brute), len(nl))
	}
	for i := range brute {
		if brute[i].RegionID != nl[i].RegionID || brute[i].Point.ID != nl[i].Point.ID {
			t.Fatalf("brute force differs at %d", i)
		}
	}
}

func TestRegionJoinValidation(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	tab := &Table{Name: "noindex", Heap: workload.Uniform(g, 10, 7)}
	if _, err := PlanRegionJoin(tab, nil, Config{}); err == nil {
		t.Errorf("join without index accepted")
	}
	indexed := newTable(t, g, 100, 8)
	dup := []Region{{ID: 1, Box: geom.Box2(0, 1, 0, 1)}, {ID: 1, Box: geom.Box2(2, 3, 2, 3)}}
	if _, err := mergeJoin(indexed, dup, Config{}, nil); err == nil {
		t.Errorf("duplicate region ids accepted by merge join")
	}
}

func TestJoinPlanExecute(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	tab := newTable(t, g, 800, 9)
	plan, err := PlanRegionJoin(tab, []Region{{ID: 1, Box: geom.Box2(0, 40, 0, 40)}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Execute()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range tab.Heap {
		if p.Coords[0] <= 40 && p.Coords[1] <= 40 {
			want++
		}
	}
	if len(res) != want {
		t.Errorf("join returned %d, want %d", len(res), want)
	}
	if plan.EstimatedPages <= 0 {
		t.Errorf("no estimate")
	}
}

// TestAnalyzeAdaptsToSkew: on diagonal data the uniform block model
// badly overestimates off-diagonal queries; leaf-boundary statistics
// fix that and keep index scans chosen.
func TestAnalyzeAdaptsToSkew(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	pts := workload.Diagonal(g, 5000, 3, 50)
	pool := disk.MustPool(disk.MustMemStore(1024), 256, disk.LRU)
	ix, err := core.NewIndexBulk(pool, g, core.IndexConfig{LeafCapacity: 20}, pts, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab := &Table{Name: "diag", Index: ix, Heap: pts}

	// An off-diagonal box: almost no data there.
	box := geom.Box2(700, 1000, 0, 300)
	before, err := PlanRange(tab, box, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Analyze(tab); err != nil {
		t.Fatal(err)
	}
	if tab.Stats == nil || len(tab.Stats.Boundaries) != ix.Tree().LeafPages() {
		t.Fatalf("analyze collected %d boundaries, want %d",
			len(tab.Stats.Boundaries), ix.Tree().LeafPages())
	}
	after, err := PlanRange(tab, box, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(after.Description, "statistics") {
		t.Fatalf("statistics not used: %s", after.Description)
	}
	if after.EstimatedPages >= before.EstimatedPages {
		t.Errorf("stats estimate %.1f should beat block model %.1f on skew",
			after.EstimatedPages, before.EstimatedPages)
	}
	// The statistics estimate should be close to the truth.
	_, stats, err := ix.RangeSearch(box, core.MergeLazy)
	if err != nil {
		t.Fatal(err)
	}
	if after.EstimatedPages < float64(stats.DataPages) {
		t.Errorf("stats estimate %.1f below actual %d pages", after.EstimatedPages, stats.DataPages)
	}
	if after.EstimatedPages > 10*float64(stats.DataPages)+10 {
		t.Errorf("stats estimate %.1f far above actual %d pages", after.EstimatedPages, stats.DataPages)
	}
}

func TestAnalyzeRequiresIndex(t *testing.T) {
	if err := Analyze(&Table{Name: "noidx"}); err == nil {
		t.Errorf("analyze without index accepted")
	}
}

// TestStatsEstimateTracksActual: across random boxes on every
// distribution the statistics estimate (before the penalty factor)
// tracks the true page count closely — it may fall short by a few
// pages because a seek can land on a neighboring leaf that holds no
// in-range keys.
func TestStatsEstimateTracksActual(t *testing.T) {
	g := zorder.MustGrid(2, 9)
	for name, pts := range map[string][]geom.Point{
		"uniform":  workload.Uniform(g, 2000, 51),
		"diagonal": workload.Diagonal(g, 2000, 3, 52),
	} {
		pool := disk.MustPool(disk.MustMemStore(1024), 256, disk.LRU)
		ix, err := core.NewIndexBulk(pool, g, core.IndexConfig{LeafCapacity: 20}, pts, 0)
		if err != nil {
			t.Fatal(err)
		}
		tab := &Table{Name: name, Index: ix, Heap: pts}
		if err := Analyze(tab); err != nil {
			t.Fatal(err)
		}
		boxes, err := workload.Queries(g, workload.QuerySpec{Volume: 0.05, Aspect: 2}, 10, 53)
		if err != nil {
			t.Fatal(err)
		}
		for _, box := range boxes {
			est, err := estimatePagesFromStats(tab, box, tab.Stats)
			if err != nil {
				t.Fatal(err)
			}
			_, stats, err := ix.RangeSearch(box, core.MergeLazy)
			if err != nil {
				t.Fatal(err)
			}
			if est+4 < float64(stats.DataPages) {
				t.Errorf("%s: estimate %.1f far below actual %d for %v", name, est, stats.DataPages, box)
			}
			if est > 3*float64(stats.DataPages)+5 {
				t.Errorf("%s: estimate %.1f far above actual %d for %v", name, est, stats.DataPages, box)
			}
		}
	}
}

// TestRegionJoinParallelismKnob: the merge join must produce the same
// results at any degree of parallelism, and the plan must say which
// it used.
func TestRegionJoinParallelismKnob(t *testing.T) {
	g := zorder.MustGrid(2, 8)
	tab := newTable(t, g, 1500, 11)
	var regions []Region
	for i := 0; i < 30; i++ {
		lo := uint32(i * 8)
		regions = append(regions, Region{ID: uint64(i + 1), Box: geom.Box2(lo, lo+120, 0, 200)})
	}
	seq, err := mergeJoin(tab, regions, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		got, err := mergeJoin(tab, regions, Config{Parallelism: par}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(seq) {
			t.Fatalf("parallelism %d: %d results, sequential %d", par, len(got), len(seq))
		}
		for i := range got {
			if got[i].RegionID != seq[i].RegionID || got[i].Point.ID != seq[i].Point.ID {
				t.Fatalf("parallelism %d: result %d differs", par, i)
			}
		}
	}
	plan, err := PlanRegionJoin(tab, regions, Config{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Description, "merge spatial join") &&
		!strings.Contains(plan.Description, "parallel x4") {
		t.Errorf("merge plan does not mention parallel degree: %s", plan.Description)
	}
}

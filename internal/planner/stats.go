package planner

import (
	"fmt"
	"sort"

	"probe/internal/decompose"
	"probe/internal/disk"
	"probe/internal/geom"
)

// TableStats holds collected statistics for a table: the z-key
// boundaries of its index's leaf pages. Because every leaf holds
// about the same number of points, the boundaries form an equi-depth
// histogram over the z axis — the planner's answer to data skew,
// which the uniform block model cannot see.
type TableStats struct {
	// Boundaries[i] is the first z key of leaf i, ascending.
	Boundaries []uint64
	// Points is the indexed point count at analysis time.
	Points int
}

// Analyze scans the table's index and attaches leaf-boundary
// statistics (the DBMS's ANALYZE). The scan costs one pass over the
// data pages; afterwards estimates are computed from the statistics
// alone.
func Analyze(t *Table) error {
	if t.Index == nil {
		return fmt.Errorf("planner: analyze requires an index on %q", t.Name)
	}
	c := t.Index.Tree().Cursor()
	var bounds []uint64
	var lastLeaf disk.PageID
	ok, err := c.First()
	for ok {
		if c.LeafID() != lastLeaf {
			bounds = append(bounds, c.Key().Hi)
			lastLeaf = c.LeafID()
		}
		ok, err = c.Next()
	}
	if err != nil {
		return err
	}
	t.Stats = &TableStats{Boundaries: bounds, Points: t.Index.Len()}
	return nil
}

// estimatePagesFromStats predicts the data pages a range query
// touches by decomposing the box and counting the leaves whose z
// intervals the box's elements overlap. It is exact about which
// leaves *can* contain matches, so it adapts to skew: a box in an
// empty corner of a diagonal data set maps to one huge leaf.
func estimatePagesFromStats(t *Table, box geom.Box, stats *TableStats) (float64, error) {
	g := t.Index.Grid()
	// Cap decomposition depth: precision beyond a few times the leaf
	// count adds nothing to the estimate.
	maxLen := 2
	for (1<<uint(maxLen)) < 4*len(stats.Boundaries) && maxLen < g.TotalBits() {
		maxLen++
	}
	elems, err := decompose.Object(g, box, decompose.Options{MaxLen: maxLen})
	if err != nil {
		return 0, err
	}
	// Convert element z ranges to leaf-index intervals and count
	// distinct leaves across all of them.
	total := 0
	prevLast := -1
	for _, e := range elems {
		lo, hi := e.MinZ(), e.MaxZ(g.TotalBits())
		first := sort.Search(len(stats.Boundaries), func(i int) bool { return stats.Boundaries[i] > lo })
		last := sort.Search(len(stats.Boundaries), func(i int) bool { return stats.Boundaries[i] > hi })
		// Leaves [first-1, last-1] overlap; clamp the lower end.
		f := first - 1
		if f < 0 {
			f = 0
		}
		l := last - 1
		if l < 0 {
			l = 0
		}
		if f <= prevLast {
			f = prevLast + 1
		}
		if l >= f {
			total += l - f + 1
			prevLast = l
		}
	}
	return float64(total), nil
}

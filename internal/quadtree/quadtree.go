// Package quadtree implements the pointer-based region quadtree of
// the image-processing-and-vision literature ([SAME85a]), the
// structure whose grid-optimizing role the paper's approximate
// geometry subsumes (Section 2). A quadtree node covers a square
// power-of-two region; leaves are uniformly black or white, interior
// nodes have four children (NW/NE/SW/SE in the usual presentation;
// here indexed by the two splitting bits).
//
// The package provides conversions in both directions between
// quadtrees and z-ordered element sequences — the "linear quadtree"
// correspondence of [GARG82]: an element sequence is exactly the
// sorted list of a quadtree's black leaves, keyed by interleaved
// locational codes. Set operations are implemented directly on the
// pointer structure as the IPV baseline for the overlay comparison.
package quadtree

import (
	"fmt"

	"probe/internal/zorder"
)

// Tree is a region quadtree over a 2-d grid of side 2^d.
type Tree struct {
	d    int
	root *node
}

// node is a quadtree node. A nil child pointer array marks a leaf;
// black is meaningful only for leaves.
type node struct {
	black    bool
	children *[4]*node
}

func (n *node) leaf() bool { return n.children == nil }

// New creates an all-white quadtree of side 2^d (1 <= d <= 14).
func New(d int) (*Tree, error) {
	if d < 1 || d > 14 {
		return nil, fmt.Errorf("quadtree: depth %d outside [1,14]", d)
	}
	return &Tree{d: d, root: &node{}}, nil
}

// Depth returns d (the tree covers a 2^d x 2^d grid).
func (t *Tree) Depth() int { return t.d }

// FromElements builds a quadtree from a z-ordered element sequence on
// grid g (which must be 2-d with the same depth). This is the linear
// quadtree decoding of [GARG82].
func FromElements(g zorder.Grid, elems []zorder.Element) (*Tree, error) {
	if g.Dims() != 2 {
		return nil, fmt.Errorf("quadtree: requires a 2-d grid")
	}
	t, err := New(g.BitsPerDim())
	if err != nil {
		return nil, err
	}
	for _, e := range elems {
		if int(e.Len) > g.TotalBits() {
			return nil, fmt.Errorf("quadtree: element %v longer than grid resolution", e)
		}
		if e.Len%2 != 0 {
			// An odd-length element is half a quadrant: paint both
			// halves' quadrant codes by extending with 0 and 1.
			t.paint(e.Child(0))
			t.paint(e.Child(1))
			continue
		}
		t.paint(e)
	}
	t.root = condense(t.root)
	return t, nil
}

// paint blackens the region named by an even-length element.
func (t *Tree) paint(e zorder.Element) {
	n := t.root
	for level := 0; level < int(e.Len); level += 2 {
		if n.leaf() && n.black {
			return // already covered
		}
		if n.leaf() {
			n.children = &[4]*node{{}, {}, {}, {}}
		}
		q := e.Bit(level)<<1 | e.Bit(level+1)
		n = n.children[q]
	}
	n.black = true
	n.children = nil
}

// condense merges uniform subtrees bottom-up.
func condense(n *node) *node {
	if n.leaf() {
		return n
	}
	allBlack, allWhite := true, true
	for i, c := range n.children {
		c = condense(c)
		n.children[i] = c
		if !c.leaf() {
			allBlack, allWhite = false, false
		} else if c.black {
			allWhite = false
		} else {
			allBlack = false
		}
	}
	if allBlack {
		return &node{black: true}
	}
	if allWhite {
		return &node{}
	}
	return n
}

// Elements returns the tree's black region as a z-ordered element
// sequence on grid g: the linear quadtree encoding. Quadrant codes
// visit children in z order, so no sort is needed.
func (t *Tree) Elements(g zorder.Grid) ([]zorder.Element, error) {
	if g.Dims() != 2 || g.BitsPerDim() != t.d {
		return nil, fmt.Errorf("quadtree: grid %v does not match depth %d", g, t.d)
	}
	var out []zorder.Element
	var walk func(n *node, e zorder.Element)
	walk = func(n *node, e zorder.Element) {
		if n.leaf() {
			if n.black {
				out = append(out, e)
			}
			return
		}
		for q := 0; q < 4; q++ {
			walk(n.children[q], e.Child(q>>1).Child(q&1))
		}
	}
	walk(t.root, zorder.Element{})
	return out, nil
}

// Black reports whether pixel (x, y) is black.
func (t *Tree) Black(x, y uint32) bool {
	if x>>uint(t.d) != 0 || y>>uint(t.d) != 0 {
		return false
	}
	n := t.root
	for bit := t.d - 1; bit >= 0; bit-- {
		if n.leaf() {
			return n.black
		}
		q := int(x>>uint(bit)&1)<<1 | int(y>>uint(bit)&1)
		n = n.children[q]
	}
	return n.leaf() && n.black
}

// Nodes returns the total node count (the IPV structure's size
// metric).
func (t *Tree) Nodes() int {
	var count func(n *node) int
	count = func(n *node) int {
		if n.leaf() {
			return 1
		}
		total := 1
		for _, c := range n.children {
			total += count(c)
		}
		return total
	}
	return count(t.root)
}

// Area returns the number of black pixels.
func (t *Tree) Area() uint64 {
	var walk func(n *node, side uint64) uint64
	walk = func(n *node, side uint64) uint64 {
		if n.leaf() {
			if n.black {
				return side * side
			}
			return 0
		}
		var total uint64
		for _, c := range n.children {
			total += walk(c, side/2)
		}
		return total
	}
	return walk(t.root, 1<<uint(t.d))
}

// Intersect returns a AND b as a new tree (both must share depth):
// the classic recursive quadtree set operation.
func Intersect(a, b *Tree) (*Tree, error) {
	if a.d != b.d {
		return nil, fmt.Errorf("quadtree: depth mismatch %d vs %d", a.d, b.d)
	}
	return &Tree{d: a.d, root: condense(intersectNodes(a.root, b.root))}, nil
}

func intersectNodes(a, b *node) *node {
	if a.leaf() {
		if !a.black {
			return &node{}
		}
		return cloneNode(b)
	}
	if b.leaf() {
		if !b.black {
			return &node{}
		}
		return cloneNode(a)
	}
	out := &node{children: &[4]*node{}}
	for q := 0; q < 4; q++ {
		out.children[q] = intersectNodes(a.children[q], b.children[q])
	}
	return out
}

// Union returns a OR b as a new tree.
func Union(a, b *Tree) (*Tree, error) {
	if a.d != b.d {
		return nil, fmt.Errorf("quadtree: depth mismatch %d vs %d", a.d, b.d)
	}
	return &Tree{d: a.d, root: condense(unionNodes(a.root, b.root))}, nil
}

func unionNodes(a, b *node) *node {
	if a.leaf() {
		if a.black {
			return &node{black: true}
		}
		return cloneNode(b)
	}
	if b.leaf() {
		if b.black {
			return &node{black: true}
		}
		return cloneNode(a)
	}
	out := &node{children: &[4]*node{}}
	for q := 0; q < 4; q++ {
		out.children[q] = unionNodes(a.children[q], b.children[q])
	}
	return out
}

func cloneNode(n *node) *node {
	if n.leaf() {
		return &node{black: n.black}
	}
	out := &node{children: &[4]*node{}}
	for q := 0; q < 4; q++ {
		out.children[q] = cloneNode(n.children[q])
	}
	return out
}

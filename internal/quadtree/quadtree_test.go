package quadtree

import (
	"math/rand"
	"testing"

	"probe/internal/decompose"
	"probe/internal/geom"
	"probe/internal/overlay"
	"probe/internal/zorder"
)

func randRegion(t *testing.T, g zorder.Grid, rng *rand.Rand) []zorder.Element {
	t.Helper()
	var acc []zorder.Element
	for n := 0; n < 3; n++ {
		a := uint32(rng.Uint64() % g.Side())
		b := uint32(rng.Uint64() % g.Side())
		c := uint32(rng.Uint64() % g.Side())
		d := uint32(rng.Uint64() % g.Side())
		if a > b {
			a, b = b, a
		}
		if c > d {
			c, d = d, c
		}
		box := decompose.Box(g, geom.Box2(a, b, c, d))
		var err error
		acc, err = overlay.Union(acc, box)
		if err != nil {
			t.Fatal(err)
		}
	}
	return acc
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Errorf("depth 0 accepted")
	}
	if _, err := New(15); err == nil {
		t.Errorf("depth 15 accepted")
	}
	tr, err := New(4)
	if err != nil || tr.Depth() != 4 {
		t.Fatalf("New(4): %v", err)
	}
	if tr.Area() != 0 || tr.Nodes() != 1 {
		t.Errorf("fresh tree not all-white")
	}
}

// TestLinearQuadtreeRoundTrip: elements -> quadtree -> elements is
// the identity on canonical (condensed) sequences — the [GARG82]
// correspondence.
func TestLinearQuadtreeRoundTrip(t *testing.T) {
	g := zorder.MustGrid(2, 5)
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 30; trial++ {
		region := randRegion(t, g, rng)
		tr, err := FromElements(g, region)
		if err != nil {
			t.Fatal(err)
		}
		back, err := tr.Elements(g)
		if err != nil {
			t.Fatal(err)
		}
		// The round trip canonicalizes to even-length (quadrant)
		// elements; compare pixel sets and z order.
		for i := 1; i < len(back); i++ {
			if back[i-1].Compare(back[i]) >= 0 {
				t.Fatalf("trial %d: round trip out of z order", trial)
			}
		}
		if overlay.Area(g, back) != overlay.Area(g, region) {
			t.Fatalf("trial %d: area changed %d -> %d", trial,
				overlay.Area(g, region), overlay.Area(g, back))
		}
		for x := uint32(0); x < uint32(g.Side()); x++ {
			for y := uint32(0); y < uint32(g.Side()); y++ {
				z := g.ShuffleKey([]uint32{x, y})
				if overlay.Covers(g, region, z) != tr.Black(x, y) {
					t.Fatalf("trial %d: pixel (%d,%d) disagrees", trial, x, y)
				}
			}
		}
	}
}

func TestFromElementsOddLength(t *testing.T) {
	// A 2x1 element (odd length) splits into two quadtree quadrants.
	g := zorder.MustGrid(2, 3)
	e := zorder.MustParseElement("001") // x 2..3, y 0..3
	tr, err := FromElements(g, []zorder.Element{e})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Area() != 8 {
		t.Fatalf("area = %d, want 8", tr.Area())
	}
	for x := uint32(2); x <= 3; x++ {
		for y := uint32(0); y <= 3; y++ {
			if !tr.Black(x, y) {
				t.Fatalf("(%d,%d) should be black", x, y)
			}
		}
	}
	if tr.Black(1, 0) || tr.Black(4, 0) {
		t.Errorf("spurious black pixels")
	}
}

func TestFromElementsValidation(t *testing.T) {
	if _, err := FromElements(zorder.MustGrid(3, 4), nil); err == nil {
		t.Errorf("3d grid accepted")
	}
	g := zorder.MustGrid(2, 3)
	long := zorder.NewElement(0, 20)
	if _, err := FromElements(g, []zorder.Element{long}); err == nil {
		t.Errorf("over-long element accepted")
	}
	if _, err := (&Tree{d: 4, root: &node{}}).Elements(g); err == nil {
		t.Errorf("depth mismatch accepted by Elements")
	}
}

// TestSetOpsMatchOverlay: quadtree AND/OR equals the element-merge
// overlay on random regions.
func TestSetOpsMatchOverlay(t *testing.T) {
	g := zorder.MustGrid(2, 5)
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 20; trial++ {
		ra := randRegion(t, g, rng)
		rb := randRegion(t, g, rng)
		ta, err := FromElements(g, ra)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := FromElements(g, rb)
		if err != nil {
			t.Fatal(err)
		}

		qi, err := Intersect(ta, tb)
		if err != nil {
			t.Fatal(err)
		}
		oi, err := overlay.Intersect(ra, rb)
		if err != nil {
			t.Fatal(err)
		}
		if qi.Area() != overlay.Area(g, oi) {
			t.Fatalf("trial %d: AND area %d vs %d", trial, qi.Area(), overlay.Area(g, oi))
		}

		qu, err := Union(ta, tb)
		if err != nil {
			t.Fatal(err)
		}
		ou, err := overlay.Union(ra, rb)
		if err != nil {
			t.Fatal(err)
		}
		if qu.Area() != overlay.Area(g, ou) {
			t.Fatalf("trial %d: OR area %d vs %d", trial, qu.Area(), overlay.Area(g, ou))
		}
		// Spot-check pixels.
		for probe := 0; probe < 50; probe++ {
			x := uint32(rng.Uint64() % g.Side())
			y := uint32(rng.Uint64() % g.Side())
			z := g.ShuffleKey([]uint32{x, y})
			if qi.Black(x, y) != overlay.Covers(g, oi, z) {
				t.Fatalf("trial %d: AND pixel (%d,%d) differs", trial, x, y)
			}
			if qu.Black(x, y) != overlay.Covers(g, ou, z) {
				t.Fatalf("trial %d: OR pixel (%d,%d) differs", trial, x, y)
			}
		}
	}
}

func TestSetOpsDepthMismatch(t *testing.T) {
	a, _ := New(3)
	b, _ := New(4)
	if _, err := Intersect(a, b); err == nil {
		t.Errorf("depth mismatch accepted by Intersect")
	}
	if _, err := Union(a, b); err == nil {
		t.Errorf("depth mismatch accepted by Union")
	}
}

func TestBlackOutOfBounds(t *testing.T) {
	g := zorder.MustGrid(2, 3)
	tr, _ := FromElements(g, decompose.Box(g, geom.FullBox(g)))
	if tr.Area() != 64 {
		t.Fatalf("full region area %d", tr.Area())
	}
	if tr.Nodes() != 1 {
		t.Errorf("full region should condense to one node, got %d", tr.Nodes())
	}
	if tr.Black(8, 0) || tr.Black(0, 99) {
		t.Errorf("out-of-bounds pixels black")
	}
}

// TestNodesTrackBoundary: like element counts, quadtree size tracks
// object boundary, not area.
func TestNodesTrackBoundary(t *testing.T) {
	prev := 0
	for d := 4; d <= 7; d++ {
		g := zorder.MustGrid(2, d)
		disk, _ := geom.NewDisk([]float64{float64(g.Side()) / 2, float64(g.Side()) / 2}, float64(g.Side())/3)
		elems, err := decompose.Object(g, disk, decompose.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := FromElements(g, elems)
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && tr.Nodes() > prev*3 {
			t.Errorf("d=%d: node count grew area-like: %d from %d", d, tr.Nodes(), prev)
		}
		prev = tr.Nodes()
	}
}

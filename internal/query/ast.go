// Package query implements the spatial query language: a small SQL
// dialect over the point index — SELECT with spatial predicates
// (CONTAINS, INTERSECTS, NEAREST), region joins, GROUP BY, ORDER BY
// and LIMIT — parsed by a hand-written recursive-descent parser into
// a typed AST, compiled through the cost-based planner into the
// relational operators, and executed streaming. It is the relational
// spatial language the paper argues belongs inside the DBMS, serving
// as the text protocol of the QUERY opcode (wire 1.3).
//
// The full grammar is documented in docs/query.md.
package query

import (
	"fmt"
	"strconv"
	"strings"
)

// ErrorKind distinguishes the two typed failure classes a statement
// can hit before execution; the wire protocol maps them to distinct
// error codes (CodeParse, CodePlan).
type ErrorKind int

const (
	// KindParse marks lexical and syntactic errors: the text is not a
	// well-formed statement.
	KindParse ErrorKind = iota + 1
	// KindPlan marks semantic errors from compilation: the statement
	// parsed but cannot run against this database (unknown column,
	// dimension mismatch, invalid aggregate...).
	KindPlan
)

// Error is the typed error every Parse/Compile failure returns.
type Error struct {
	Kind ErrorKind
	// Pos is the byte offset into the statement text where the error
	// was detected (parse errors only; -1 when not applicable).
	Pos int
	Msg string
}

// Error implements error.
func (e *Error) Error() string {
	switch {
	case e.Kind == KindParse && e.Pos >= 0:
		return fmt.Sprintf("parse error at offset %d: %s", e.Pos, e.Msg)
	case e.Kind == KindParse:
		return "parse error: " + e.Msg
	default:
		return "plan error: " + e.Msg
	}
}

func parseErrf(pos int, format string, args ...interface{}) *Error {
	return &Error{Kind: KindParse, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func planErrf(format string, args ...interface{}) *Error {
	return &Error{Kind: KindPlan, Pos: -1, Msg: fmt.Sprintf(format, args...)}
}

// Statement is one parsed statement: a SELECT, optionally wrapped in
// EXPLAIN.
type Statement struct {
	Explain bool
	Select  *Select
}

// Select is the SELECT clause tree.
type Select struct {
	Distinct bool
	// Star is SELECT *; Items is nil when set.
	Star  bool
	Items []SelectItem
	From  string
	Join  *Join
	// Where is the AND-list of predicates (nil when absent).
	Where   []Pred
	GroupBy []string
	OrderBy []OrderKey
	// Limit is -1 when absent.
	Limit int64
}

// AggFunc is an aggregate in a select item.
type AggFunc int

const (
	// AggNone marks a plain column reference.
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggMin
	AggMax
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return fmt.Sprintf("AggFunc(%d)", int(f))
}

// SelectItem is one output column: a plain column or an aggregate,
// optionally renamed with AS.
type SelectItem struct {
	Agg AggFunc
	// Col is the column name; "*" only for COUNT(*).
	Col string
	As  string
}

// Join is the region join clause: JOIN REGIONS(...) ON INTERSECTS.
type Join struct {
	Regions []Region
}

// Region is one inline region literal: an id and a box.
type Region struct {
	ID  uint64
	Box BoxLit
}

// BoxLit is a box literal: per-dimension (lo, hi) pairs in dimension
// order — BOX(xlo, xhi, ylo, yhi, ...).
type BoxLit struct {
	Bounds []uint32
}

// PointLit is a point literal: POINT(x, y, ...).
type PointLit struct {
	Coords []uint32
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Col  string
	Desc bool
}

// CmpOp is a comparison operator.
type CmpOp int

const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return fmt.Sprintf("CmpOp(%d)", int(op))
}

// Pred is one WHERE predicate.
type Pred interface {
	isPred()
	String() string
}

// BoxPred is CONTAINS(box) or INTERSECTS(box). On a point index the
// two are equivalent (a point intersects a box iff the box contains
// it); both spellings are kept so the AST round-trips.
type BoxPred struct {
	// Contains distinguishes the CONTAINS spelling from INTERSECTS.
	Contains bool
	Box      BoxLit
}

// NearestPred is NEAREST(point, k).
type NearestPred struct {
	Point PointLit
	K     int64
}

// CmpPred compares a column against an integer literal.
type CmpPred struct {
	Col   string
	Op    CmpOp
	Value int64
}

func (*BoxPred) isPred()     {}
func (*NearestPred) isPred() {}
func (*CmpPred) isPred()     {}

// String renders the statement in canonical form: uppercase keywords,
// single spaces, explicit DESC only. The round-trip property the
// fuzzer enforces is Parse(s).String() parses to an equal AST.
func (st *Statement) String() string {
	var b strings.Builder
	if st.Explain {
		b.WriteString("EXPLAIN ")
	}
	b.WriteString(st.Select.String())
	return b.String()
}

// String renders the SELECT in canonical form.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Star {
		b.WriteString("*")
	} else {
		for i, it := range s.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(it.String())
		}
	}
	b.WriteString(" FROM ")
	b.WriteString(s.From)
	if s.Join != nil {
		b.WriteString(" JOIN REGIONS(")
		for i, r := range s.Join.Regions {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strconv.FormatUint(r.ID, 10))
			b.WriteString(" ")
			b.WriteString(r.Box.String())
		}
		b.WriteString(") ON INTERSECTS")
	}
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range s.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(s.GroupBy, ", "))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, k := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k.Col)
			if k.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.FormatInt(s.Limit, 10))
	}
	return b.String()
}

func (it SelectItem) String() string {
	var b strings.Builder
	if it.Agg == AggNone {
		b.WriteString(it.Col)
	} else {
		b.WriteString(it.Agg.String())
		b.WriteString("(")
		b.WriteString(it.Col)
		b.WriteString(")")
	}
	if it.As != "" {
		b.WriteString(" AS ")
		b.WriteString(it.As)
	}
	return b.String()
}

func (bx BoxLit) String() string {
	return "BOX(" + joinU32(bx.Bounds) + ")"
}

func (p PointLit) String() string {
	return "POINT(" + joinU32(p.Coords) + ")"
}

func joinU32(vs []uint32) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatUint(uint64(v), 10)
	}
	return strings.Join(parts, ", ")
}

func (p *BoxPred) String() string {
	if p.Contains {
		return "CONTAINS(" + p.Box.String() + ")"
	}
	return "INTERSECTS(" + p.Box.String() + ")"
}

func (p *NearestPred) String() string {
	return fmt.Sprintf("NEAREST(%s, %d)", p.Point.String(), p.K)
}

func (p *CmpPred) String() string {
	return fmt.Sprintf("%s %s %d", p.Col, p.Op, p.Value)
}

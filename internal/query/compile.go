package query

import (
	"context"
	"fmt"
	"math"
	"sort"

	"probe/internal/core"
	"probe/internal/decompose"
	"probe/internal/geom"
	"probe/internal/planner"
	"probe/internal/relation"
	"probe/internal/zorder"
)

// Engine is the execution surface a compiled plan runs against. Both
// the database and a transaction implement it (probe's adapters), so
// one plan serves plain connections and QUERY-inside-BEGIN alike —
// a transaction engine answers from its snapshot plus its own writes.
type Engine interface {
	// Grid is the coordinate grid; it must match the grid the plan was
	// compiled against.
	Grid() zorder.Grid
	// Table is the planner's view of the underlying index for
	// cost-based access-path choice, or nil when no cost model applies
	// (transaction views fall back to fixed strategies).
	Table() *planner.Table
	// RangeFunc streams every point in the box in z order; returning
	// false stops the scan early.
	RangeFunc(ctx context.Context, box geom.Box, fn func(geom.Point) bool) error
	// Nearest returns the k points nearest to q under the Euclidean
	// metric, sorted by distance.
	Nearest(ctx context.Context, q []uint32, k int) ([]core.Neighbor, error)
}

// TableName is the only table the language knows: the point index.
const TableName = "points"

type planMode int

const (
	modeScan planMode = iota
	modeNearest
	modeJoin
)

// Plan is a compiled, executable statement. A plan is bound to the
// grid it was compiled against but not to an engine: the same plan
// can run against the database or a transaction view.
type Plan struct {
	grid zorder.Grid
	sel  *Select

	mode    planMode
	scanBox geom.Box // modeScan: the folded index search box
	empty   bool     // WHERE bounds are contradictory: zero rows, no scan
	nearest *NearestPred
	regions []planner.Region

	base     relation.Schema
	residual []Pred                    // predicates applied after the base scan
	filter   func(relation.Tuple) bool // compiled residual filter (nil when none)

	grouped   bool
	groupCols []string
	aggs      []relation.Agg

	out    relation.Schema
	outIdx []int // output column positions in the pre-projection schema

	orderIdx  []int // ORDER BY key positions in the output schema
	orderDesc []bool

	streamable bool
}

// Columns returns the output schema.
func (p *Plan) Columns() relation.Schema { return p.out }

// coordNames names the coordinate columns: x, y, z, w for up to four
// dimensions, c0..cN beyond.
func coordNames(dims int) []string {
	if dims <= 4 {
		return []string{"x", "y", "z", "w"}[:dims]
	}
	names := make([]string, dims)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
	}
	return names
}

// Compile checks the statement against the grid and builds an
// executable plan. All failures are *Error with KindPlan.
func Compile(g zorder.Grid, sel *Select) (*Plan, error) {
	if sel.From != TableName {
		return nil, planErrf("unknown table %q (the point index is %q)", sel.From, TableName)
	}
	p := &Plan{grid: g, sel: sel, scanBox: geom.FullBox(g)}
	dims := g.Dims()

	// Classify the WHERE predicates.
	var boxPreds []*BoxPred
	var cmpPreds []*CmpPred
	for _, pred := range sel.Where {
		switch q := pred.(type) {
		case *BoxPred:
			if err := validBox(g, q.Box); err != nil {
				return nil, err
			}
			boxPreds = append(boxPreds, q)
		case *NearestPred:
			if p.nearest != nil {
				return nil, planErrf("at most one NEAREST predicate per query")
			}
			if len(q.Point.Coords) != dims {
				return nil, planErrf("NEAREST point has %d coordinates, grid has %d dimensions", len(q.Point.Coords), dims)
			}
			if !g.Valid(q.Point.Coords) {
				return nil, planErrf("NEAREST point %v outside the grid", q.Point.Coords)
			}
			p.nearest = q
		case *CmpPred:
			cmpPreds = append(cmpPreds, q)
		}
	}

	// Pick the mode and the base schema.
	switch {
	case sel.Join != nil:
		if p.nearest != nil {
			return nil, planErrf("NEAREST cannot be combined with JOIN")
		}
		p.mode = modeJoin
		seen := make(map[uint64]bool, len(sel.Join.Regions))
		for _, r := range sel.Join.Regions {
			if err := validBox(g, r.Box); err != nil {
				return nil, err
			}
			if seen[r.ID] {
				return nil, planErrf("duplicate region id %d", r.ID)
			}
			seen[r.ID] = true
			p.regions = append(p.regions, planner.Region{ID: r.ID, Box: boxOf(r.Box)})
		}
	case p.nearest != nil:
		p.mode = modeNearest
	default:
		p.mode = modeScan
	}
	p.base = baseSchema(g, p.mode)

	// Fold what the index can answer into the scan box; everything
	// else becomes a residual filter over base tuples.
	if p.mode == modeScan {
		p.foldScanBox(boxPreds, cmpPreds)
	} else {
		for _, bp := range boxPreds {
			p.residual = append(p.residual, bp)
		}
		for _, cp := range cmpPreds {
			p.residual = append(p.residual, cp)
		}
	}
	// Validate residual comparison columns against the base schema.
	for _, pred := range p.residual {
		if cp, ok := pred.(*CmpPred); ok {
			if p.base.Index(cp.Col) < 0 {
				return nil, planErrf("unknown column %q in WHERE (have %v)", cp.Col, p.base)
			}
		}
	}
	p.filter = p.compileFilter()

	if err := p.compileOutput(); err != nil {
		return nil, err
	}

	// ORDER BY references output columns.
	for _, k := range sel.OrderBy {
		j := p.out.Index(k.Col)
		if j < 0 {
			return nil, planErrf("ORDER BY column %q is not in the output (have %v)", k.Col, p.out)
		}
		p.orderIdx = append(p.orderIdx, j)
		p.orderDesc = append(p.orderDesc, k.Desc)
	}

	p.streamable = p.mode == modeScan && !sel.Distinct && !p.grouped &&
		len(sel.OrderBy) == 0
	return p, nil
}

// validBox checks a box literal's shape against the grid: one (lo,
// hi) pair per dimension, lo <= hi, inside the grid.
func validBox(g zorder.Grid, b BoxLit) error {
	if len(b.Bounds) != 2*g.Dims() {
		return planErrf("BOX has %d bounds, need %d (lo, hi per dimension)", len(b.Bounds), 2*g.Dims())
	}
	for d := 0; d < g.Dims(); d++ {
		lo, hi := b.Bounds[2*d], b.Bounds[2*d+1]
		if lo > hi {
			return planErrf("BOX dimension %d has lo %d > hi %d", d, lo, hi)
		}
		if uint64(hi) >= g.SideOf(d) {
			return planErrf("BOX dimension %d bound %d outside the grid (side %d)", d, hi, g.SideOf(d))
		}
	}
	return nil
}

func boxOf(b BoxLit) geom.Box {
	dims := len(b.Bounds) / 2
	lo := make([]uint32, dims)
	hi := make([]uint32, dims)
	for d := 0; d < dims; d++ {
		lo[d], hi[d] = b.Bounds[2*d], b.Bounds[2*d+1]
	}
	return geom.MustBox(lo, hi)
}

func baseSchema(g zorder.Grid, mode planMode) relation.Schema {
	dims := g.Dims()
	cols := make(relation.Schema, 0, dims+3)
	if mode == modeJoin {
		cols = append(cols, relation.Column{Name: "region", Type: relation.TID})
	}
	cols = append(cols, relation.Column{Name: "id", Type: relation.TID})
	for _, name := range coordNames(dims) {
		cols = append(cols, relation.Column{Name: name, Type: relation.TInt})
	}
	if mode == modeNearest {
		cols = append(cols, relation.Column{Name: "dist", Type: relation.TFloat})
	}
	return cols
}

// foldScanBox tightens the index search box with every box predicate
// and every foldable coordinate comparison; unfoldable comparisons
// (!=, non-coordinate columns) stay residual. Contradictory bounds
// mark the plan provably empty.
func (p *Plan) foldScanBox(boxPreds []*BoxPred, cmpPreds []*CmpPred) {
	dims := p.grid.Dims()
	lo := make([]int64, dims)
	hi := make([]int64, dims)
	for d := 0; d < dims; d++ {
		hi[d] = int64(p.grid.SideOf(d)) - 1
	}
	for _, bp := range boxPreds {
		for d := 0; d < dims; d++ {
			lo[d] = max64(lo[d], int64(bp.Box.Bounds[2*d]))
			hi[d] = min64(hi[d], int64(bp.Box.Bounds[2*d+1]))
		}
	}
	coordIdx := make(map[string]int, dims)
	for d, name := range coordNames(dims) {
		coordIdx[name] = d
	}
	for _, cp := range cmpPreds {
		d, isCoord := coordIdx[cp.Col]
		if !isCoord || cp.Op == OpNe {
			p.residual = append(p.residual, cp)
			continue
		}
		switch cp.Op {
		case OpEq:
			lo[d] = max64(lo[d], cp.Value)
			hi[d] = min64(hi[d], cp.Value)
		case OpLt:
			if cp.Value == math.MinInt64 {
				// x < MinInt64 matches nothing; Value-1 would wrap
				// to MaxInt64 and silently drop the bound.
				p.empty = true
				return
			}
			hi[d] = min64(hi[d], cp.Value-1)
		case OpLe:
			hi[d] = min64(hi[d], cp.Value)
		case OpGt:
			if cp.Value == math.MaxInt64 {
				// x > MaxInt64 matches nothing; Value+1 would wrap
				// to MinInt64 and silently drop the bound.
				p.empty = true
				return
			}
			lo[d] = max64(lo[d], cp.Value+1)
		case OpGe:
			lo[d] = max64(lo[d], cp.Value)
		}
	}
	blo := make([]uint32, dims)
	bhi := make([]uint32, dims)
	for d := 0; d < dims; d++ {
		if lo[d] > hi[d] {
			p.empty = true
			return
		}
		blo[d], bhi[d] = uint32(lo[d]), uint32(hi[d])
	}
	p.scanBox = geom.MustBox(blo, bhi)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// compileFilter builds one closure evaluating every residual
// predicate against a base tuple.
func (p *Plan) compileFilter() func(relation.Tuple) bool {
	if len(p.residual) == 0 {
		return nil
	}
	dims := p.grid.Dims()
	coordBase := p.base.Index(coordNames(dims)[0])
	type test func(relation.Tuple) bool
	var tests []test
	for _, pred := range p.residual {
		switch q := pred.(type) {
		case *BoxPred:
			box := boxOf(q.Box)
			tests = append(tests, func(t relation.Tuple) bool {
				for d := 0; d < dims; d++ {
					v := t[coordBase+d].(int64)
					if v < int64(box.Lo[d]) || v > int64(box.Hi[d]) {
						return false
					}
				}
				return true
			})
		case *CmpPred:
			j := p.base.Index(q.Col)
			op, val := q.Op, q.Value
			switch p.base[j].Type {
			case relation.TID:
				tests = append(tests, func(t relation.Tuple) bool {
					v := t[j].(uint64)
					// val is non-negative by construction (unsigned literal).
					return cmpUint(v, uint64(val), op)
				})
			case relation.TInt:
				tests = append(tests, func(t relation.Tuple) bool {
					return cmpInt(t[j].(int64), val, op)
				})
			case relation.TFloat:
				tests = append(tests, func(t relation.Tuple) bool {
					return cmpFloat(t[j].(float64), float64(val), op)
				})
			}
		}
	}
	return func(t relation.Tuple) bool {
		for _, f := range tests {
			if !f(t) {
				return false
			}
		}
		return true
	}
}

func cmpUint(a, b uint64, op CmpOp) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	}
	return false
}

func cmpInt(a, b int64, op CmpOp) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	}
	return false
}

func cmpFloat(a, b float64, op CmpOp) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	}
	return false
}

// compileOutput resolves the select list into the output schema, the
// grouping spec, and the projection mapping.
func (p *Plan) compileOutput() error {
	sel := p.sel
	if sel.Star {
		if len(sel.GroupBy) > 0 {
			return planErrf("SELECT * cannot be combined with GROUP BY")
		}
		p.out = p.base
		p.outIdx = make([]int, len(p.base))
		for i := range p.outIdx {
			p.outIdx[i] = i
		}
		return nil
	}
	hasAgg := false
	for _, it := range sel.Items {
		if it.Agg != AggNone {
			hasAgg = true
		}
	}
	p.grouped = hasAgg || len(sel.GroupBy) > 0
	if !p.grouped {
		cols := make([]relation.Column, len(sel.Items))
		p.outIdx = make([]int, len(sel.Items))
		for i, it := range sel.Items {
			j := p.base.Index(it.Col)
			if j < 0 {
				return planErrf("unknown column %q (have %v)", it.Col, p.base)
			}
			name := it.Col
			if it.As != "" {
				name = it.As
			}
			cols[i] = relation.Column{Name: name, Type: p.base[j].Type}
			p.outIdx[i] = j
		}
		out, err := relation.NewSchema(cols...)
		if err != nil {
			return planErrf("duplicate output column (rename with AS): %v", err)
		}
		p.out = out
		return nil
	}

	// Grouped (or globally aggregated) query: validate group columns,
	// then map each select item to the GroupBy operator's output —
	// group columns first (in GROUP BY order), aggregates after.
	groupPos := make(map[string]int, len(sel.GroupBy))
	for _, col := range sel.GroupBy {
		if p.base.Index(col) < 0 {
			return planErrf("unknown GROUP BY column %q (have %v)", col, p.base)
		}
		if _, dup := groupPos[col]; dup {
			return planErrf("duplicate GROUP BY column %q", col)
		}
		groupPos[col] = len(p.groupCols)
		p.groupCols = append(p.groupCols, col)
	}
	cols := make([]relation.Column, len(sel.Items))
	p.outIdx = make([]int, len(sel.Items))
	for i, it := range sel.Items {
		if it.Agg == AggNone {
			gp, ok := groupPos[it.Col]
			if !ok {
				if p.base.Index(it.Col) < 0 {
					return planErrf("unknown column %q (have %v)", it.Col, p.base)
				}
				return planErrf("column %q must appear in GROUP BY or inside an aggregate", it.Col)
			}
			name := it.Col
			if it.As != "" {
				name = it.As
			}
			cols[i] = relation.Column{Name: name, Type: p.base[p.base.Index(it.Col)].Type}
			p.outIdx[i] = gp
			continue
		}
		typ, err := p.aggType(it)
		if err != nil {
			return err
		}
		name := it.As
		if name == "" {
			name = defaultAggName(it)
		}
		cols[i] = relation.Column{Name: name, Type: typ}
		p.outIdx[i] = len(p.groupCols) + len(p.aggs)
		p.aggs = append(p.aggs, relation.Agg{Func: aggFuncOf(it.Agg), Col: it.Col, As: name})
	}
	out, err := relation.NewSchema(cols...)
	if err != nil {
		return planErrf("duplicate output column (rename with AS): %v", err)
	}
	p.out = out
	return nil
}

// aggType validates an aggregate item and returns its output type.
func (p *Plan) aggType(it SelectItem) (relation.Type, error) {
	if it.Agg == AggCount {
		if it.Col != "*" && p.base.Index(it.Col) < 0 {
			return 0, planErrf("unknown column %q in COUNT (have %v)", it.Col, p.base)
		}
		return relation.TInt, nil
	}
	j := p.base.Index(it.Col)
	if j < 0 {
		return 0, planErrf("unknown column %q in %v (have %v)", it.Col, it.Agg, p.base)
	}
	typ := p.base[j].Type
	switch it.Agg {
	case AggSum:
		if typ != relation.TInt && typ != relation.TFloat {
			return 0, planErrf("SUM over %v column %q", typ, it.Col)
		}
	case AggMin, AggMax:
		if typ != relation.TInt && typ != relation.TFloat && typ != relation.TID {
			return 0, planErrf("%v over %v column %q", it.Agg, typ, it.Col)
		}
	}
	return typ, nil
}

func defaultAggName(it SelectItem) string {
	if it.Agg == AggCount {
		if it.Col == "*" {
			return "count"
		}
		return "count_" + it.Col
	}
	var f string
	switch it.Agg {
	case AggSum:
		f = "sum"
	case AggMin:
		f = "min"
	case AggMax:
		f = "max"
	}
	return f + "_" + it.Col
}

func aggFuncOf(a AggFunc) relation.AggFunc {
	switch a {
	case AggSum:
		return relation.Sum
	case AggMin:
		return relation.Min
	case AggMax:
		return relation.Max
	}
	return relation.Count
}

// Run executes the plan against the engine, streaming output tuples
// to emit; emit returning false stops the query early. Streamable
// plans (pure index scans without grouping, ordering or DISTINCT)
// pipe rows straight off the index merge, so a cancelled context or
// a false emit stops the scan within one page read. Plans that need
// the whole input (aggregates, ORDER BY, DISTINCT, joins, NEAREST)
// materialize first.
func (p *Plan) Run(ctx context.Context, eng Engine, emit func(relation.Tuple) bool) error {
	if p.empty {
		return nil
	}
	if p.streamable {
		return p.runStreaming(ctx, eng, emit)
	}
	rel, err := p.materialize(ctx, eng)
	if err != nil {
		return err
	}
	rel, err = p.finish(rel)
	if err != nil {
		return err
	}
	for _, t := range rel.Tuples {
		if !emit(t) {
			return nil
		}
	}
	return nil
}

func (p *Plan) runStreaming(ctx context.Context, eng Engine, emit func(relation.Tuple) bool) error {
	limit := p.sel.Limit
	if limit == 0 {
		return nil
	}
	var emitted int64
	return eng.RangeFunc(ctx, p.scanBox, func(pt geom.Point) bool {
		t := p.pointTuple(pt)
		if p.filter != nil && !p.filter(t) {
			return true
		}
		if !emit(p.project(t)) {
			return false
		}
		emitted++
		return limit < 0 || emitted < limit
	})
}

// pointTuple converts a scanned point into a base tuple (scan and
// nearest modes; join tuples carry the region id in front).
func (p *Plan) pointTuple(pt geom.Point) relation.Tuple {
	t := make(relation.Tuple, 0, len(p.base))
	t = append(t, pt.ID)
	for _, c := range pt.Coords {
		t = append(t, int64(c))
	}
	return t
}

// project maps a pre-projection tuple to the output columns (no
// duplicate elimination; DISTINCT is applied separately).
func (p *Plan) project(t relation.Tuple) relation.Tuple {
	out := make(relation.Tuple, len(p.outIdx))
	for i, j := range p.outIdx {
		out[i] = t[j]
	}
	return out
}

// materialize builds the filtered base relation.
func (p *Plan) materialize(ctx context.Context, eng Engine) (*relation.Relation, error) {
	rel := relation.New(p.base)
	keep := func(t relation.Tuple) {
		if p.filter == nil || p.filter(t) {
			rel.Tuples = append(rel.Tuples, t)
		}
	}
	switch p.mode {
	case modeScan:
		err := eng.RangeFunc(ctx, p.scanBox, func(pt geom.Point) bool {
			keep(p.pointTuple(pt))
			return true
		})
		if err != nil {
			return nil, err
		}
	case modeNearest:
		nbs, err := eng.Nearest(ctx, p.nearest.Point.Coords, int(p.nearest.K))
		if err != nil {
			return nil, err
		}
		for _, nb := range nbs {
			t := p.pointTuple(nb.Point)
			keep(append(t, nb.Dist))
		}
	case modeJoin:
		results, err := p.runJoin(ctx, eng)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			t := make(relation.Tuple, 0, len(p.base))
			t = append(t, r.RegionID, r.Point.ID)
			for _, c := range r.Point.Coords {
				t = append(t, int64(c))
			}
			keep(t)
		}
	}
	return rel, nil
}

// runJoin executes the region join through the engine, using the
// cost-based planner to pick the strategy when a cost model is
// available (database engines); transaction views use the index
// nested loop, which needs only range scans over the snapshot.
func (p *Plan) runJoin(ctx context.Context, eng Engine) ([]planner.RegionJoinResult, error) {
	if t := eng.Table(); t != nil && t.Index != nil {
		jp, err := planner.PlanRegionJoin(t, p.regions, planner.Config{})
		if err != nil {
			return nil, err
		}
		if jp.Access == "merge-join" {
			return p.mergeJoin(ctx, eng)
		}
	}
	return p.nestedLoopJoin(ctx, eng)
}

func (p *Plan) nestedLoopJoin(ctx context.Context, eng Engine) ([]planner.RegionJoinResult, error) {
	var out []planner.RegionJoinResult
	for _, r := range p.regions {
		err := eng.RangeFunc(ctx, r.Box, func(pt geom.Point) bool {
			out = append(out, planner.RegionJoinResult{RegionID: r.ID, Point: pt})
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	sortJoinResults(out)
	return out, nil
}

// mergeJoin is the paper's element-relation merge executed through
// the engine: decompose every region, stream the whole point sequence
// once, and merge in z order.
func (p *Plan) mergeJoin(ctx context.Context, eng Engine) ([]planner.RegionJoinResult, error) {
	g := p.grid
	var regionItems []core.Item
	for _, r := range p.regions {
		for _, e := range decompose.Box(g, r.Box) {
			regionItems = append(regionItems, core.Item{Elem: e, ID: r.ID})
		}
	}
	var pItems []core.Item
	pointByID := make(map[uint64]geom.Point)
	err := eng.RangeFunc(ctx, geom.FullBox(g), func(pt geom.Point) bool {
		pItems = append(pItems, core.Item{
			Elem: zorder.Element{Bits: g.ShuffleKey(pt.Coords), Len: uint8(g.TotalBits())},
			ID:   pt.ID,
		})
		pointByID[pt.ID] = pt
		return true
	})
	if err != nil {
		return nil, err
	}
	core.SortItems(pItems)
	core.SortItems(regionItems)
	pairs, err := core.SpatialJoin(pItems, regionItems)
	if err != nil {
		return nil, err
	}
	pairs = core.DedupPairs(pairs)
	out := make([]planner.RegionJoinResult, 0, len(pairs))
	for _, pr := range pairs {
		out = append(out, planner.RegionJoinResult{RegionID: pr.B, Point: pointByID[pr.A]})
	}
	sortJoinResults(out)
	return out, nil
}

func sortJoinResults(out []planner.RegionJoinResult) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].RegionID != out[j].RegionID {
			return out[i].RegionID < out[j].RegionID
		}
		return out[i].Point.ID < out[j].Point.ID
	})
}

// finish applies grouping, projection, DISTINCT, ORDER BY and LIMIT
// to the filtered base relation.
func (p *Plan) finish(rel *relation.Relation) (*relation.Relation, error) {
	var err error
	if p.grouped {
		rel, err = relation.GroupBy(rel, p.groupCols, p.aggs)
		if err != nil {
			return nil, planErrf("%v", err)
		}
	}
	projected := relation.New(p.out)
	for _, t := range rel.Tuples {
		projected.Tuples = append(projected.Tuples, p.project(t))
	}
	rel = projected
	if p.sel.Distinct {
		names := make([]string, len(p.out))
		for i, c := range p.out {
			names[i] = c.Name
		}
		rel, err = relation.Project(rel, names...)
		if err != nil {
			return nil, planErrf("%v", err)
		}
	}
	if len(p.orderIdx) > 0 {
		p.sortTuples(rel.Tuples)
	}
	if p.sel.Limit >= 0 && int64(len(rel.Tuples)) > p.sel.Limit {
		rel.Tuples = rel.Tuples[:p.sel.Limit]
	}
	return rel, nil
}

// sortTuples is the multi-key stable sort ORDER BY needs (the
// relation package's SortBy is single-key ascending).
func (p *Plan) sortTuples(tuples []relation.Tuple) {
	sort.SliceStable(tuples, func(a, b int) bool {
		for k, j := range p.orderIdx {
			c := cmpValues(tuples[a][j], tuples[b][j])
			if c == 0 {
				continue
			}
			if p.orderDesc[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// cmpValues orders two same-typed relation values.
func cmpValues(a, b relation.Value) int {
	switch av := a.(type) {
	case uint64:
		bv := b.(uint64)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
	case int64:
		bv := b.(int64)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
	case float64:
		bv := b.(float64)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
	case string:
		bv := b.(string)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
	}
	return 0
}

// MaxNearestK bounds NEAREST's k so a hostile query cannot demand an
// unbounded candidate set. (math.MaxInt32 already bounds it at parse
// time; this is the documented alias.)
const MaxNearestK = math.MaxInt32

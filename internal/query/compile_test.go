package query

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"probe/internal/core"
	"probe/internal/geom"
	"probe/internal/planner"
	"probe/internal/relation"
	"probe/internal/zorder"
)

// fakeEngine is a cost-model-free Engine over an in-memory point
// slice, standing in for a transaction view.
type fakeEngine struct {
	g   zorder.Grid
	pts []geom.Point
}

func (e *fakeEngine) Grid() zorder.Grid     { return e.g }
func (e *fakeEngine) Table() *planner.Table { return nil }
func (e *fakeEngine) RangeFunc(ctx context.Context, box geom.Box, fn func(geom.Point) bool) error {
	for _, p := range e.pts {
		if box.ContainsPoint(p.Coords) && !fn(p) {
			return nil
		}
	}
	return nil
}

func (e *fakeEngine) Nearest(ctx context.Context, q []uint32, k int) ([]core.Neighbor, error) {
	return nil, errors.New("fakeEngine: no nearest")
}

func mustCompile(t *testing.T, g zorder.Grid, sql string) *Plan {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	p, err := Compile(g, st.Select)
	if err != nil {
		t.Fatalf("Compile(%q): %v", sql, err)
	}
	return p
}

// TestCompileScanBoxFolding: every box predicate and foldable
// coordinate comparison tightens the index search box; contradictions
// make the plan provably empty instead of scanning.
func TestCompileScanBoxFolding(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	cases := []struct {
		sql    string
		lo, hi []uint32
		empty  bool
	}{
		{sql: "SELECT * FROM points", lo: []uint32{0, 0}, hi: []uint32{1023, 1023}},
		{sql: "SELECT * FROM points WHERE CONTAINS(BOX(10, 90, 20, 80))", lo: []uint32{10, 20}, hi: []uint32{90, 80}},
		{sql: "SELECT * FROM points WHERE CONTAINS(BOX(10, 90, 20, 80)) AND INTERSECTS(BOX(50, 200, 0, 60))",
			lo: []uint32{50, 20}, hi: []uint32{90, 60}},
		{sql: "SELECT * FROM points WHERE x >= 100 AND x < 200 AND y = 7", lo: []uint32{100, 7}, hi: []uint32{199, 7}},
		{sql: "SELECT * FROM points WHERE x > 100 AND x <= 200", lo: []uint32{101, 0}, hi: []uint32{200, 1023}},
		{sql: "SELECT * FROM points WHERE x > 100 AND x < 50", empty: true},
		{sql: "SELECT * FROM points WHERE CONTAINS(BOX(0, 40, 0, 40)) AND CONTAINS(BOX(60, 90, 0, 40))", empty: true},
	}
	for _, tc := range cases {
		p := mustCompile(t, g, tc.sql)
		if p.empty != tc.empty {
			t.Errorf("%q: empty = %v, want %v", tc.sql, p.empty, tc.empty)
			continue
		}
		if tc.empty {
			continue
		}
		if !reflect.DeepEqual(p.scanBox.Lo, tc.lo) || !reflect.DeepEqual(p.scanBox.Hi, tc.hi) {
			t.Errorf("%q: scan box %v..%v, want %v..%v", tc.sql, p.scanBox.Lo, p.scanBox.Hi, tc.lo, tc.hi)
		}
	}
}

// TestCompileResidualStaysResidual: != and id comparisons cannot fold
// into the scan box and must survive as residual filters.
func TestCompileResidualStaysResidual(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	p := mustCompile(t, g, "SELECT * FROM points WHERE x != 7 AND id >= 3")
	if len(p.residual) != 2 {
		t.Fatalf("residual count %d, want 2", len(p.residual))
	}
	if p.scanBox.Lo[0] != 0 || p.scanBox.Hi[0] != 1023 {
		t.Fatalf("unfoldable predicates narrowed the scan box: %v", p.scanBox)
	}
	if p.filter == nil {
		t.Fatal("no compiled filter for residual predicates")
	}
}

// TestCompileStreamable: only pure scans stream; grouping, ordering,
// DISTINCT, NEAREST, and JOIN all materialize.
func TestCompileStreamable(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	cases := []struct {
		sql  string
		want bool
	}{
		{"SELECT * FROM points WHERE CONTAINS(BOX(0, 100, 0, 100)) LIMIT 5", true},
		{"SELECT id FROM points WHERE x > 3", true},
		{"SELECT id FROM points ORDER BY id", false},
		{"SELECT DISTINCT x FROM points", false},
		{"SELECT COUNT(*) FROM points", false},
		{"SELECT id, dist FROM points WHERE NEAREST(POINT(1, 1), 3)", false},
		{"SELECT region, id FROM points JOIN REGIONS(1 BOX(0, 10, 0, 10)) ON INTERSECTS", false},
	}
	for _, tc := range cases {
		if p := mustCompile(t, g, tc.sql); p.streamable != tc.want {
			t.Errorf("%q: streamable = %v, want %v", tc.sql, p.streamable, tc.want)
		}
	}
}

// TestCompileErrors: every rejected statement fails with a typed
// KindPlan error naming the offending symbol.
func TestCompileErrors(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT * FROM elsewhere", "unknown table"},
		{"SELECT nope FROM points", `unknown column "nope"`},
		{"SELECT id FROM points WHERE z = 1", `unknown column "z"`},
		{"SELECT * FROM points WHERE CONTAINS(BOX(0, 10, 0, 10, 0, 10))", "bounds"},
		{"SELECT * FROM points WHERE CONTAINS(BOX(10, 5, 0, 10))", "lo"},
		{"SELECT * FROM points WHERE CONTAINS(BOX(0, 5000, 0, 10))", "outside the grid"},
		{"SELECT * FROM points WHERE NEAREST(POINT(5000, 0), 3)", "outside the grid"},
		{"SELECT * FROM points WHERE NEAREST(POINT(1, 1), 2) AND NEAREST(POINT(2, 2), 2)", "at most one NEAREST"},
		{"SELECT id FROM points JOIN REGIONS(1 BOX(0, 1, 0, 1)) ON INTERSECTS WHERE NEAREST(POINT(1, 1), 2)", "cannot be combined"},
		{"SELECT region FROM points JOIN REGIONS(1 BOX(0, 1, 0, 1), 1 BOX(2, 3, 2, 3)) ON INTERSECTS", "duplicate region"},
		{"SELECT * FROM points GROUP BY x", "GROUP BY"},
		{"SELECT x, COUNT(*) FROM points GROUP BY y", "must appear in GROUP BY"},
		{"SELECT COUNT(*) FROM points GROUP BY nope", `unknown GROUP BY column "nope"`},
		{"SELECT id FROM points ORDER BY x", "not in the output"},
		{"SELECT id, id FROM points", "duplicate output column"},
		{"SELECT SUM(id) FROM points", "SUM over"},
	}
	for _, tc := range cases {
		st, err := Parse(tc.sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.sql, err)
		}
		_, err = Compile(g, st.Select)
		if err == nil {
			t.Errorf("%q compiled, want plan error %q", tc.sql, tc.want)
			continue
		}
		var qe *Error
		if !errors.As(err, &qe) || qe.Kind != KindPlan {
			t.Errorf("%q: error %v is not KindPlan", tc.sql, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %q does not mention %q", tc.sql, err, tc.want)
		}
	}
}

// TestRunAgainstFakeEngine executes representative plans against the
// nil-table engine, pinning tuple shapes and operator stacking
// without a database.
func TestRunAgainstFakeEngine(t *testing.T) {
	g := zorder.MustGrid(2, 4)
	eng := &fakeEngine{g: g, pts: []geom.Point{
		{ID: 1, Coords: []uint32{1, 1}},
		{ID: 2, Coords: []uint32{2, 3}},
		{ID: 3, Coords: []uint32{2, 3}}, // same cell, distinct id
		{ID: 4, Coords: []uint32{8, 8}},
	}}
	ctx := context.Background()
	collect := func(sql string) []relation.Tuple {
		t.Helper()
		p := mustCompile(t, g, sql)
		var rows []relation.Tuple
		if err := p.Run(ctx, eng, func(tp relation.Tuple) bool {
			rows = append(rows, tp)
			return true
		}); err != nil {
			t.Fatalf("Run(%q): %v", sql, err)
		}
		return rows
	}

	rows := collect("SELECT id FROM points WHERE CONTAINS(BOX(0, 3, 0, 3)) ORDER BY id DESC")
	want := []relation.Tuple{{uint64(3)}, {uint64(2)}, {uint64(1)}}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("ordered scan: got %v, want %v", rows, want)
	}

	rows = collect("SELECT DISTINCT x, y FROM points WHERE CONTAINS(BOX(0, 3, 0, 3)) ORDER BY x")
	want = []relation.Tuple{{int64(1), int64(1)}, {int64(2), int64(3)}}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("distinct: got %v, want %v", rows, want)
	}

	rows = collect("SELECT COUNT(*) AS n, MAX(x) AS mx FROM points")
	want = []relation.Tuple{{int64(4), int64(8)}}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("aggregate: got %v, want %v", rows, want)
	}

	rows = collect("SELECT region, COUNT(*) AS n FROM points JOIN REGIONS(7 BOX(0, 3, 0, 3), 9 BOX(0, 15, 0, 15)) ON INTERSECTS GROUP BY region ORDER BY region")
	want = []relation.Tuple{{uint64(7), int64(3)}, {uint64(9), int64(4)}}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("join group: got %v, want %v", rows, want)
	}

	if rows = collect("SELECT id FROM points WHERE x > 10 AND x < 5"); len(rows) != 0 {
		t.Errorf("empty plan emitted %v", rows)
	}
}

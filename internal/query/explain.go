package query

import (
	"fmt"
	"strings"

	"probe/internal/planner"
	"probe/internal/relation"
)

// ExplainText renders the plan as an indented operator tree, one
// operator per line, leaf (the access path) last. The access-path
// line comes from the cost-based planner when the engine has a cost
// model, so EXPLAIN shows the same choice execution makes; rendering
// is deterministic for a given dataset (the golden tests under
// testdata/explain byte-compare it).
func (p *Plan) ExplainText(eng Engine) string {
	lines := []string{}
	sel := p.sel
	if sel.Limit >= 0 {
		lines = append(lines, fmt.Sprintf("limit %d", sel.Limit))
	}
	if len(sel.OrderBy) > 0 {
		keys := make([]string, len(sel.OrderBy))
		for i, k := range sel.OrderBy {
			keys[i] = k.Col
			if k.Desc {
				keys[i] += " desc"
			}
		}
		lines = append(lines, "sort by "+strings.Join(keys, ", "))
	}
	if sel.Distinct {
		lines = append(lines, "distinct")
	}
	if !sel.Star {
		names := make([]string, len(p.out))
		for i, c := range p.out {
			names[i] = c.Name
		}
		lines = append(lines, "select "+strings.Join(names, ", "))
	}
	if p.grouped {
		var parts []string
		for _, a := range p.aggs {
			col := a.Col
			if a.Func == relation.Count {
				col = "*"
			}
			parts = append(parts, fmt.Sprintf("%v(%s) as %s", a.Func, col, a.As))
		}
		line := "aggregate"
		if len(p.groupCols) > 0 {
			line = "group by " + strings.Join(p.groupCols, ", ")
		}
		if len(parts) > 0 {
			line += ": " + strings.Join(parts, ", ")
		}
		lines = append(lines, line)
	}
	if len(p.residual) > 0 {
		parts := make([]string, len(p.residual))
		for i, pred := range p.residual {
			parts[i] = pred.String()
		}
		lines = append(lines, "filter "+strings.Join(parts, " AND "))
	}
	lines = append(lines, p.accessLine(eng))

	var b strings.Builder
	for i, line := range lines {
		b.WriteString(strings.Repeat("  ", i))
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// accessLine describes the leaf access path.
func (p *Plan) accessLine(eng Engine) string {
	if p.empty {
		return "empty result (contradictory WHERE bounds)"
	}
	t := eng.Table()
	switch p.mode {
	case modeNearest:
		return fmt.Sprintf("nearest %d to %v on %s (euclidean, expanding search)",
			p.nearest.K, p.nearest.Point.Coords, TableName)
	case modeJoin:
		if t != nil && t.Index != nil {
			if jp, err := planner.PlanRegionJoin(t, p.regions, planner.Config{}); err == nil {
				return jp.Description
			}
		}
		return fmt.Sprintf("index nested loop join: %d regions x index scan on %s (tx view)",
			len(p.regions), TableName)
	default:
		if t != nil {
			if pl, err := planner.PlanRange(t, p.scanBox, planner.Config{}); err == nil {
				return pl.Description
			}
		}
		return fmt.Sprintf("index scan on %s %v (tx view)", TableName, p.scanBox)
	}
}

package query

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzParseQuery is the parser's safety net: on every input the
// parser must return without panicking, and every input it accepts
// must render (String()) to text that re-parses to an equal AST — the
// round-trip property that pins the canonical form. The seed corpus
// under testdata/queries holds one statement per file.
func FuzzParseQuery(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "queries", "*.sql"))
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Fatal("no seed corpus under testdata/queries")
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("SELECT")
	f.Add("\x00\xff(")
	f.Add("SELECT * FROM points WHERE x = 18446744073709551615")
	f.Fuzz(func(t *testing.T, text string) {
		st, err := Parse(text)
		if err != nil {
			return
		}
		rendered := st.String()
		st2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", text, rendered, err)
		}
		if !reflect.DeepEqual(st, st2) {
			t.Fatalf("round trip changed AST for %q (rendered %q):\n%#v\nvs\n%#v", text, rendered, st, st2)
		}
	})
}

package query

import (
	"testing"

	"probe/internal/zorder"
)

func TestGtMaxInt64Overflow(t *testing.T) {
	g := zorder.MustGrid(2, 10)
	st, err := Parse("SELECT * FROM points WHERE x > 9223372036854775807")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(g, st.Select)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("empty=%v scanBox=%v residual=%d", plan.empty, plan.scanBox, len(plan.residual))
	if !plan.empty {
		t.Errorf("x > MaxInt64 can match no row; plan should be empty, got scanBox=%v residual=%d", plan.scanBox, len(plan.residual))
	}
}
